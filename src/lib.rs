//! MGG-rs: a Rust reproduction of **MGG — Accelerating Graph Neural
//! Networks with Fine-Grained Intra-Kernel Communication-Computation
//! Pipelining on Multi-GPU Platforms** (OSDI 2023).
//!
//! The paper's system is CUDA + NVSHMEM on a DGX-A100; this reproduction
//! rebuilds every layer of it in Rust on a deterministic discrete-event
//! multi-GPU simulator, so the algorithms, the pipelining, and the whole
//! evaluation run anywhere. See `DESIGN.md` for the system inventory and
//! the per-experiment index, and `EXPERIMENTS.md` for paper-vs-measured
//! results.
//!
//! # Crate map
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`sim`] | `mgg-sim` | multi-GPU platform simulator (SMs, warps, HBM/NVLink/NVSwitch/PCIe) |
//! | [`fault`] | `mgg-fault` | deterministic seed-derived fault schedules (link degradation, stragglers, dropped one-sided ops, permanent GPU/link failures) |
//! | [`failover`] | `mgg-failover` | elastic failover: heartbeat health monitoring, route planning around dead links, checkpoint/resume |
//! | [`graph`] | `mgg-graph` | CSR graphs, generators, Table-3 dataset stand-ins, partitioning |
//! | [`runtime`] | `mgg-runtime` | deterministic parallel runtime (ordered-merge `par_map`, disjoint-slice workers) |
//! | [`shmem`] | `mgg-shmem` | NVSHMEM-like symmetric heap (PGAS) |
//! | [`uvm`] | `mgg-uvm` | unified-virtual-memory substrate (page faults, migration) |
//! | [`collective`] | `mgg-collective` | NCCL-like host-initiated collectives |
//! | [`gnn`] | `mgg-gnn` | tensors, GCN/GIN models, reference aggregation, training |
//! | [`core`] | `mgg-core` | **the MGG system**: workload management, placement, pipelined kernel, model, tuner |
//! | [`telemetry`] | `mgg-telemetry` | spans/counters/histograms, derived pipeline metrics, Chrome-trace export |
//! | [`baselines`] | `mgg-baselines` | UVM / direct-NVSHMEM / DGCL / NCCL-ring comparison engines |
//!
//! # Quickstart
//!
//! ```
//! use mgg::core::{MggConfig, MggEngine};
//! use mgg::gnn::reference::{aggregate, AggregateMode};
//! use mgg::gnn::Matrix;
//! use mgg::graph::generators::rmat::{rmat, RmatConfig};
//! use mgg::sim::ClusterSpec;
//!
//! // A power-law graph and node features.
//! let graph = rmat(&RmatConfig::graph500(10, 8_000, 42));
//! let x = Matrix::glorot(graph.num_nodes(), 64, 7);
//!
//! // MGG on a simulated 4-GPU DGX-A100.
//! let mut engine = MggEngine::new(
//!     &graph,
//!     ClusterSpec::dgx_a100(4),
//!     MggConfig::default_fixed(),
//!     AggregateMode::GcnNorm,
//! );
//! let out = engine.aggregate_values(&x);
//! let simulated_ns = engine.simulate_aggregation_ns(64).unwrap();
//!
//! // Distributed result equals the single-machine reference.
//! let reference = aggregate(&graph, &x, AggregateMode::GcnNorm);
//! assert!(out.max_abs_diff(&reference) < 1e-3);
//! assert!(simulated_ns > 0);
//! ```

#![deny(missing_docs)]

pub use mgg_baselines as baselines;
pub use mgg_cache as cache;
pub use mgg_churn as churn;
pub use mgg_collective as collective;
pub use mgg_core as core;
pub use mgg_failover as failover;
pub use mgg_fault as fault;
pub use mgg_gnn as gnn;
pub use mgg_graph as graph;
pub use mgg_runtime as runtime;
pub use mgg_serve as serve;
pub use mgg_shmem as shmem;
pub use mgg_sim as sim;
pub use mgg_telemetry as telemetry;
pub use mgg_uvm as uvm;
