//! PUT-based communication variant (§3.3's rejected alternative).
//!
//! The paper chooses one-sided GET because "when using PUT, we have to
//! employ a complex receiver-side synchronization mechanism to
//! consistently check the local memory buffer for making sure that the
//! required node embedding arrives before its aggregation begins",
//! costing extra computation. This engine implements that alternative so
//! the claim is measurable:
//!
//! 1. **Push phase**: every GPU walks its *outgoing* adjacency (the
//!    transpose of its consumers' remote lists) and PUTs each needed row
//!    into the consumer's staging buffer, then writes a completion flag.
//! 2. **Barrier** (`nvshmem_barrier_all`).
//! 3. **Aggregate phase**: consumers poll the arrival flags (the extra
//!    receiver-side synchronization compute), then aggregate staged rows
//!    from local memory.
//!
//! Same wire volume as GET, but the phases serialize at the barrier and
//! the receiver pays polling overhead — which is exactly why GET wins.

use mgg_gnn::models::Aggregator;
use mgg_gnn::reference::{aggregate, AggregateMode};
use mgg_gnn::Matrix;
use mgg_graph::partition::locality::{self, LocalityPartition};
use mgg_graph::partition::neighbor::{partition_rows, NeighborPartition, PartitionKind};
use mgg_graph::{CsrGraph, NodeSplit};
use mgg_shmem::barrier_all;
use mgg_sim::{
    Cluster, ClusterSpec, GpuSim, KernelLaunch, KernelProgram, KernelStats, NoPaging, SimTime,
    WarpOp,
};

use mgg_core::kernel::aggregation_cycles;

const WPB: u32 = 4;

/// Cycles a consumer warp spends polling arrival flags per partition (the
/// receiver-side synchronization the paper wants to avoid).
const POLL_CYCLES_PER_PARTITION: u32 = 180;

/// The PUT-based aggregation engine.
pub struct PutBasedEngine {
    /// The simulated platform the engine runs on.
    pub cluster: Cluster,
    graph: CsrGraph,
    parts: Vec<LocalityPartition>,
    /// Per GPU: outgoing pushes (destination GPU, rows) — one per remote
    /// edge whose source this GPU owns, grouped into warp-sized batches.
    push_batches: Vec<Vec<(u16, u32)>>,
    /// Per GPU: neighbor partitions over local + staged (all-local) data.
    agg_parts: Vec<Vec<NeighborPartition>>,
    mode: AggregateMode,
    /// Statistics of the most recent simulated kernel.
    pub last_stats: Option<KernelStats>,
    /// Simulated duration of the inter-phase barrier.
    pub last_barrier_ns: SimTime,
}

struct PushKernel<'a> {
    batches: &'a [Vec<(u16, u32)>],
    dim: usize,
}

struct AggKernel<'a> {
    parts: &'a [Vec<NeighborPartition>],
    dim: usize,
}

impl PutBasedEngine {
    /// Builds the engine (edge-balanced split, same as MGG's placement).
    pub fn new(graph: &CsrGraph, spec: ClusterSpec, mode: AggregateMode) -> Self {
        let split = NodeSplit::edge_balanced(graph, spec.num_gpus);
        let parts = locality::build(graph, &split);
        // Outgoing pushes: invert each consumer's remote list. A push of
        // `k` rows to one destination is one batch (warp-level put).
        const BATCH: u32 = 16;
        let mut push_batches: Vec<Vec<(u16, u32)>> = vec![Vec::new(); spec.num_gpus];
        let mut pending: Vec<Vec<u32>> = vec![vec![0u32; spec.num_gpus]; spec.num_gpus];
        for p in &parts {
            for rr in p.remote.adj() {
                let src = rr.owner as usize;
                let dst = p.pe;
                pending[src][dst] += 1;
                if pending[src][dst] == BATCH {
                    push_batches[src].push((dst as u16, BATCH));
                    pending[src][dst] = 0;
                }
            }
        }
        for (src, row) in pending.into_iter().enumerate() {
            for (dst, rem) in row.into_iter().enumerate() {
                if rem > 0 {
                    push_batches[src].push((dst as u16, rem));
                }
            }
        }
        // Aggregation phase: everything is local after staging; partition
        // the full per-node neighbor lists.
        let agg_parts = parts
            .iter()
            .map(|p| {
                // Combined row lengths: local + remote (staged) neighbors.
                let rows = p.local.num_rows();
                let mut row_ptr = Vec::with_capacity(rows + 1);
                row_ptr.push(0u64);
                for r in 0..rows as u32 {
                    let len = p.local.row(r).len() + p.remote.row(r).len();
                    row_ptr.push(row_ptr.last().unwrap() + len as u64);
                }
                partition_rows(&row_ptr, 16, PartitionKind::Local)
            })
            .collect();
        PutBasedEngine {
            cluster: Cluster::new(spec),
            graph: graph.clone(),
            parts,
            push_batches,
            agg_parts,
            mode,
            last_stats: None,
            last_barrier_ns: 0,
        }
    }

    /// Simulates one aggregation: push, barrier, aggregate.
    pub fn simulate_aggregation_ns(&mut self, dim: usize) -> SimTime {
        self.cluster.reset();
        // Phase 1: pushes.
        let push = PushKernel { batches: &self.push_batches, dim };
        let push_stats = GpuSim::run(&mut self.cluster, &push, &mut NoPaging)
            .expect("push kernel launch is valid");
        let push_ns = push_stats.makespan_ns();
        // Phase 2: barrier (receiver must not aggregate early). The
        // barrier's completion time is measured on the same channel state,
        // so it already covers draining the posted puts still in flight
        // when the push kernel's warps retired — take the max rather than
        // summing, to avoid double-counting the overlap.
        self.last_barrier_ns = barrier_all(&mut self.cluster);
        let comm_done = push_ns.max(self.last_barrier_ns);
        // Phase 3: all-local aggregation with flag polling.
        let agg = AggKernel { parts: &self.agg_parts, dim };
        let agg_stats = GpuSim::run(&mut self.cluster, &agg, &mut NoPaging)
            .expect("aggregate kernel launch is valid");
        let agg_ns = agg_stats.makespan_ns();
        self.last_stats = Some(agg_stats);
        comm_done + agg_ns + 2 * self.cluster.spec.kernel_launch_ns
    }

    /// Fraction of edges staged through PUTs.
    pub fn remote_fraction(&self) -> f64 {
        let total: usize =
            self.parts.iter().map(|p| p.local.num_entries() + p.remote.num_entries()).sum();
        let remote: usize = self.parts.iter().map(|p| p.remote.num_entries()).sum();
        if total == 0 {
            0.0
        } else {
            remote as f64 / total as f64
        }
    }
}

impl KernelProgram for PushKernel<'_> {
    fn launch(&self, pe: usize) -> KernelLaunch {
        let warps = self.batches[pe].len() as u32;
        KernelLaunch {
            blocks: warps.div_ceil(WPB).max(1),
            warps_per_block: WPB,
            smem_per_block: 2 * (self.dim as u32) * 4,
        }
    }

    fn warp_ops(&self, pe: usize, block: u32, warp: u32) -> Vec<WarpOp> {
        let i = (block * WPB + warp) as usize;
        let Some(&(dst, rows)) = self.batches[pe].get(i) else {
            return Vec::new();
        };
        let row_bytes = (self.dim * 4) as u32;
        let mut ops = Vec::with_capacity(rows as usize + 2);
        // Read the rows locally, then put them to the consumer's staging
        // buffer (posted), then put the arrival flag.
        ops.push(WarpOp::GlobalRead { bytes: rows * row_bytes });
        for _ in 0..rows {
            ops.push(WarpOp::RemotePut { peer: dst, bytes: row_bytes });
        }
        ops.push(WarpOp::RemotePut { peer: dst, bytes: 8 }); // flag
        ops
    }
}

impl KernelProgram for AggKernel<'_> {
    fn launch(&self, pe: usize) -> KernelLaunch {
        let warps = self.parts[pe].len() as u32;
        KernelLaunch {
            blocks: warps.div_ceil(WPB).max(1),
            warps_per_block: WPB,
            smem_per_block: 2 * (self.dim as u32) * 4,
        }
    }

    fn warp_ops(&self, pe: usize, block: u32, warp: u32) -> Vec<WarpOp> {
        let i = (block * WPB + warp) as usize;
        let Some(p) = self.parts[pe].get(i) else {
            return Vec::new();
        };
        let row_bytes = (self.dim * 4) as u32;
        vec![
            // Receiver-side synchronization: poll the arrival flags.
            WarpOp::Compute { cycles: POLL_CYCLES_PER_PARTITION },
            WarpOp::GlobalRead { bytes: p.len * row_bytes },
            WarpOp::Compute { cycles: aggregation_cycles(p.len, self.dim) },
            WarpOp::GlobalWrite { bytes: row_bytes },
        ]
    }
}

impl Aggregator for PutBasedEngine {
    fn aggregate(&mut self, x: &Matrix) -> (Matrix, u64) {
        let ns = self.simulate_aggregation_ns(x.cols());
        (aggregate(&self.graph, x, self.mode), ns)
    }

    fn mode(&self) -> AggregateMode {
        self.mode
    }

    fn aggregate_only(&mut self, x: &Matrix) -> Matrix {
        aggregate(&self.graph, x, self.mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgg_core::{MggConfig, MggEngine};
    use mgg_graph::generators::rmat::{rmat, RmatConfig};

    fn graph() -> CsrGraph {
        rmat(&RmatConfig::graph500(9, 5_000, 97))
    }

    #[test]
    fn push_batches_cover_all_remote_edges() {
        let g = graph();
        let e = PutBasedEngine::new(&g, ClusterSpec::dgx_a100(4), AggregateMode::Sum);
        let pushed: u64 = e
            .push_batches
            .iter()
            .flatten()
            .map(|&(_, rows)| rows as u64)
            .sum();
        let remote: u64 = e.parts.iter().map(|p| p.remote.num_entries() as u64).sum();
        assert_eq!(pushed, remote);
    }

    #[test]
    fn values_match_reference() {
        let g = graph();
        let x = Matrix::glorot(g.num_nodes(), 7, 5);
        let mut e = PutBasedEngine::new(&g, ClusterSpec::dgx_a100(4), AggregateMode::Sum);
        let (vals, ns) = e.aggregate(&x);
        assert!(ns > 0);
        assert!(e.last_barrier_ns > 0);
        let want = aggregate(&g, &x, AggregateMode::Sum);
        assert!(vals.max_abs_diff(&want) < 1e-6);
    }

    #[test]
    fn get_beats_put_as_the_paper_argues() {
        let g = graph();
        let dim = 64;
        let mut put = PutBasedEngine::new(&g, ClusterSpec::dgx_a100(8), AggregateMode::Sum);
        let t_put = put.simulate_aggregation_ns(dim);
        let mut get = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(8),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let t_get = get.simulate_aggregation_ns(dim).unwrap();
        assert!(
            t_put > t_get,
            "PUT ({t_put}) must lose to the GET pipeline ({t_get})"
        );
    }
}
