//! DGCL-like engine (§5.2, Table 4).
//!
//! DGCL preprocesses each input graph with a dedicated
//! communication-minimizing partitioning algorithm (slow — the paper
//! measures tens to hundreds of seconds), then executes every layer as
//! two strictly serialized phases:
//!
//! 1. a graph-aware **allgather** that lands all needed remote neighbor
//!    embeddings in local memory, and
//! 2. a single-GPU aggregation kernel over now-local data (DGL's kernel:
//!    one warp per node, no workload adaptation).
//!
//! Nothing overlaps: the aggregation cannot start until the allgather
//! finishes — the design MGG's intra-kernel pipelining dismantles.
//!
//! Preprocessing here really runs the multilevel partitioner and is
//! measured in *wall-clock* time (both DGCL's and MGG's preprocessing are
//! host-side CPU algorithms, so wall-clock is the honest comparison);
//! execution time is simulated like every other engine.

use std::time::Instant;

use mgg_collective::{ring_allgather, COLLECTIVE_LAUNCH_NS};
use mgg_gnn::models::Aggregator;
use mgg_gnn::reference::{aggregate, AggregateMode};
use mgg_gnn::Matrix;
use mgg_graph::partition::multilevel::{self, MultilevelConfig};
use mgg_graph::{CsrGraph, NodeId};
use mgg_sim::{
    Cluster, ClusterSpec, GpuSim, KernelLaunch, KernelProgram, KernelStats, NoPaging, WarpOp,
};

use mgg_core::kernel::aggregation_cycles;

/// Warps per block of the DGL-style kernel.
const WPB: u32 = 8;

/// Wall-clock preprocessing comparison (Table 4, columns 2–3).
#[derive(Debug, Clone, Copy)]
pub struct DgclPreprocessReport {
    /// DGCL's multilevel partitioning, wall-clock nanoseconds.
    pub dgcl_wall_ns: u128,
    /// MGG's split pipeline (Algorithm 1 + locality + neighbor split) on
    /// the same graph, wall-clock nanoseconds.
    pub mgg_wall_ns: u128,
    /// Resulting edge cut of DGCL's partitioning.
    pub dgcl_edge_cut: u64,
}

impl DgclPreprocessReport {
    /// MGG's preprocessing speedup over DGCL's.
    pub fn mgg_speedup(&self) -> f64 {
        self.dgcl_wall_ns as f64 / self.mgg_wall_ns.max(1) as f64
    }
}

/// The DGCL-like execution engine.
pub struct DgclEngine {
    /// The simulated platform the engine runs on.
    pub cluster: Cluster,
    graph: CsrGraph,
    /// Partition label per node (from the multilevel preprocessing).
    labels: Vec<u16>,
    /// Per GPU: owned nodes in label order.
    owned: Vec<Vec<NodeId>>,
    /// Per GPU: bytes of its rows other GPUs need (allgather contribution).
    contrib: Vec<u64>,
    mode: AggregateMode,
    /// Statistics of the most recent simulated aggregation kernel.
    pub last_stats: Option<KernelStats>,
    /// Simulated duration of the most recent allgather phase.
    pub last_allgather_ns: u64,
}

struct DglKernel<'a> {
    graph: &'a CsrGraph,
    owned: &'a [Vec<NodeId>],
    dim: usize,
}

impl DgclEngine {
    /// Runs DGCL's preprocessing (wall-clock measured) and builds the
    /// engine. Also times MGG's preprocessing on the same graph for the
    /// Table-4 comparison.
    pub fn new(
        graph: &CsrGraph,
        spec: ClusterSpec,
        mode: AggregateMode,
    ) -> (Self, DgclPreprocessReport) {
        let num_gpus = spec.num_gpus;

        // DGCL preprocessing: multilevel communication-minimizing
        // partitioning, wall-clock timed. Like DGCL's dedicated algorithm
        // (and standard partitioner practice), it runs several randomized
        // trials and keeps the lowest cut — quality over preprocessing
        // speed, which is exactly the tradeoff Table 4 exposes.
        let t0 = Instant::now();
        let part = (0..3u64)
            .map(|trial| {
                let mut cfg = MultilevelConfig::new(num_gpus);
                cfg.seed = cfg.seed.wrapping_add(trial);
                cfg.refine_passes = 6;
                multilevel::partition(graph, &cfg)
            })
            .min_by_key(|p| p.edge_cut)
            .expect("at least one trial");
        let dgcl_wall_ns = t0.elapsed().as_nanos();

        // MGG preprocessing on the same graph, for the report.
        let t1 = Instant::now();
        let placement = mgg_core::placement::HybridPlacement::plan(graph, num_gpus);
        let _plans = mgg_core::workload::build_plans(&placement, 16);
        let mgg_wall_ns = t1.elapsed().as_nanos();

        let report = DgclPreprocessReport {
            dgcl_wall_ns,
            mgg_wall_ns,
            dgcl_edge_cut: part.edge_cut,
        };

        // Ownership lists per GPU.
        let mut owned: Vec<Vec<NodeId>> = vec![Vec::new(); num_gpus];
        for (v, &l) in part.labels.iter().enumerate() {
            owned[l as usize].push(v as NodeId);
        }

        // Allgather contributions: for each owner, the unique rows any
        // other GPU's aggregation needs (dedup per requester), in bytes
        // per f32 row unit — scaled by dim at simulation time.
        let n = graph.num_nodes();
        let mut unique_rows_needed = vec![0u64; num_gpus];
        let mut seen = vec![u32::MAX; n];
        for (req, nodes) in owned.iter().enumerate() {
            for &v in nodes {
                for &u in graph.neighbors(v) {
                    let owner = part.labels[u as usize] as usize;
                    if owner != req && seen[u as usize] != req as u32 {
                        seen[u as usize] = req as u32;
                        unique_rows_needed[owner] += 1;
                    }
                }
            }
        }

        let engine = DgclEngine {
            cluster: Cluster::new(spec),
            graph: graph.clone(),
            labels: part.labels,
            owned,
            contrib: unique_rows_needed,
            mode,
            last_stats: None,
            last_allgather_ns: 0,
        };
        (engine, report)
    }

    /// Partition labels produced by preprocessing.
    pub fn labels(&self) -> &[u16] {
        &self.labels
    }

    /// Simulates one aggregation: allgather phase, then the local kernel.
    pub fn simulate_aggregation_ns(&mut self, dim: usize) -> u64 {
        self.cluster.reset();
        // Phase 1: graph-aware allgather of needed remote rows.
        let contrib_bytes: Vec<u64> =
            self.contrib.iter().map(|&rows| rows * dim as u64 * 4).collect();
        let gather_ns = ring_allgather(&mut self.cluster, &contrib_bytes);
        self.last_allgather_ns = gather_ns;
        // Phase 2: local aggregation with the DGL-style kernel. Strictly
        // after the allgather (kernel-boundary semantics).
        let kernel = DglKernel { graph: &self.graph, owned: &self.owned, dim };
        let stats = GpuSim::run(&mut self.cluster, &kernel, &mut NoPaging)
            .expect("DGL kernel launch is valid");
        let agg_ns = stats.makespan_ns();
        self.last_stats = Some(stats);
        gather_ns + agg_ns + COLLECTIVE_LAUNCH_NS
    }
}

impl KernelProgram for DglKernel<'_> {
    fn launch(&self, pe: usize) -> KernelLaunch {
        let warps = self.owned[pe].len() as u32;
        KernelLaunch {
            blocks: warps.div_ceil(WPB).max(1),
            warps_per_block: WPB,
            smem_per_block: 2 * (self.dim as u32) * 4,
        }
    }

    fn warp_ops(&self, pe: usize, block: u32, warp: u32) -> Vec<WarpOp> {
        let i = (block * WPB + warp) as usize;
        let Some(&v) = self.owned[pe].get(i) else {
            return Vec::new();
        };
        let deg = self.graph.degree(v) as u32;
        if deg == 0 {
            return Vec::new();
        }
        let row_bytes = (self.dim * 4) as u32;
        // DGL-style node-per-warp kernel: scattered per-neighbor row
        // loads with a dependent accumulate after each — the
        // "offline-optimized single-GPU kernel that cannot adapt towards
        // different GNN inputs" of §5.2. Hub warps serialize their whole
        // neighborhood on device-memory latency.
        let mut ops = Vec::with_capacity(2 * deg as usize + 1);
        let per_neighbor = aggregation_cycles(1, self.dim);
        for _ in 0..deg {
            ops.push(WarpOp::GlobalRead { bytes: row_bytes });
            ops.push(WarpOp::Compute { cycles: per_neighbor });
        }
        ops.push(WarpOp::GlobalWrite { bytes: row_bytes });
        ops
    }
}

impl Aggregator for DgclEngine {
    fn aggregate(&mut self, x: &Matrix) -> (Matrix, u64) {
        let ns = self.simulate_aggregation_ns(x.cols());
        (aggregate(&self.graph, x, self.mode), ns)
    }

    fn aggregate_only(&mut self, x: &Matrix) -> Matrix {
        aggregate(&self.graph, x, self.mode)
    }

    fn mode(&self) -> AggregateMode {
        self.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgg_graph::generators::rmat::{rmat, RmatConfig};

    fn graph() -> CsrGraph {
        rmat(&RmatConfig::graph500(9, 5_000, 41))
    }

    #[test]
    fn preprocessing_report_populated() {
        let g = graph();
        let (_, report) = DgclEngine::new(&g, ClusterSpec::dgx_a100(4), AggregateMode::Sum);
        assert!(report.dgcl_wall_ns > 0);
        assert!(report.mgg_wall_ns > 0);
        assert!(
            report.mgg_speedup() > 1.0,
            "MGG preprocessing must be faster (speedup {})",
            report.mgg_speedup()
        );
    }

    #[test]
    fn execution_has_both_phases() {
        let g = graph();
        let (mut e, _) = DgclEngine::new(&g, ClusterSpec::dgx_a100(4), AggregateMode::Sum);
        let total = e.simulate_aggregation_ns(64);
        assert!(e.last_allgather_ns > 0);
        let agg = e.last_stats.as_ref().unwrap().makespan_ns();
        assert!(total >= e.last_allgather_ns + agg);
    }

    #[test]
    fn values_match_reference() {
        let g = graph();
        let x = Matrix::glorot(g.num_nodes(), 8, 5);
        let (mut e, _) = DgclEngine::new(&g, ClusterSpec::dgx_a100(2), AggregateMode::GcnNorm);
        let (vals, _) = e.aggregate(&x);
        let want = aggregate(&g, &x, AggregateMode::GcnNorm);
        assert!(vals.max_abs_diff(&want) < 1e-6);
    }

    #[test]
    fn ownership_covers_all_nodes_once() {
        let g = graph();
        let (e, _) = DgclEngine::new(&g, ClusterSpec::dgx_a100(4), AggregateMode::Sum);
        let total: usize = e.owned.iter().map(|o| o.len()).sum();
        assert_eq!(total, g.num_nodes());
    }
}
