//! The UVM-based multi-GPU GNN design (§2.2, §5.1).
//!
//! Graph and embeddings live in one unified virtual address space; GPUs
//! touch embedding rows by virtual address and the driver migrates 64 KiB
//! pages on fault. Following the paper's baseline construction, the kernel
//! keeps MGG's neighbor partitioning (a kernel-quality optimization) but
//! has *no* hybrid placement and no locality split — every neighbor access
//! goes through the paging path, local or not.
//!
//! Each measured iteration starts cold (residency reset): in end-to-end
//! GNN execution the dense phases and other layers' working sets evict the
//! aggregation pages between kernels, which is exactly the page-thrashing
//! regime the paper profiles in Figure 3.

use mgg_gnn::models::Aggregator;
use mgg_gnn::reference::{aggregate, AggregateMode};
use mgg_gnn::Matrix;
use mgg_graph::partition::neighbor::{partition_rows, NeighborPartition, PartitionKind};
use mgg_graph::{CsrGraph, NodeSplit};
use mgg_sim::{
    Cluster, ClusterSpec, GpuSim, KernelLaunch, KernelProgram, KernelStats, TraceEvent, WarpOp,
};
use mgg_telemetry::{PipelineMetrics, Telemetry};
use mgg_uvm::{UvmConfig, UvmSpace, UvmStats};

use mgg_core::kernel::aggregation_cycles;

/// Fixed neighbor-partition size for the UVM kernel.
const UVM_PS: usize = 16;
/// Fixed warps per block for the UVM kernel.
const UVM_WPB: u32 = 4;

/// The immutable, shareable part of the engine (what the kernel reads).
struct UvmWorkload {
    graph: CsrGraph,
    /// Per GPU: neighbor partitions over the whole neighbor lists of its
    /// owned nodes (no locality split).
    parts: Vec<Vec<NeighborPartition>>,
    /// Per GPU: flat-adjacency base offset of the owned node range.
    row_base: Vec<u64>,
    page_bytes: u64,
}

/// The UVM-based aggregation engine.
pub struct UvmGnnEngine {
    /// The simulated platform the engine runs on.
    pub cluster: Cluster,
    workload: UvmWorkload,
    uvm: UvmSpace,
    mode: AggregateMode,
    /// Statistics of the most recent simulated kernel.
    pub last_stats: Option<KernelStats>,
    /// UVM fault statistics of the most recent simulated kernel.
    pub last_uvm_stats: Option<UvmStats>,
    /// Warp trace of the most recent run, when tracing was requested or
    /// telemetry is enabled.
    pub last_trace: Option<Vec<TraceEvent>>,
    telemetry: Telemetry,
}

struct UvmKernel<'a> {
    workload: &'a UvmWorkload,
    dim: usize,
}

impl UvmGnnEngine {
    /// Builds the engine over the GPUs of `spec` with a uniform node
    /// split (the baseline has no edge-balancing workload management).
    pub fn new(graph: &CsrGraph, spec: ClusterSpec, mode: AggregateMode) -> Self {
        let num_gpus = spec.num_gpus;
        let split = NodeSplit::uniform(graph.num_nodes(), num_gpus);
        let mut parts = Vec::with_capacity(num_gpus);
        let mut row_base = Vec::with_capacity(num_gpus);
        for pe in 0..num_gpus {
            let range = split.range(pe);
            let lo = range.start as usize;
            let hi = range.end as usize;
            // Row pointers of the owned slice, rebased to the slice start.
            let base = graph.row_ptr()[lo];
            let local_ptr: Vec<u64> =
                graph.row_ptr()[lo..=hi].iter().map(|&p| p - base).collect();
            parts.push(partition_rows(&local_ptr, UVM_PS, PartitionKind::Local));
            row_base.push(base);
        }
        // Residency capacity: the whole table fits (modern 40 GB GPUs);
        // the cost driver is cold faulting + fabric migration. Pages are
        // GPU-resident and interleaved (the steady-state regime for data
        // in aggregate device memory).
        let cfg = UvmConfig::a100_resident(1 << 20);
        let uvm = UvmSpace::new(num_gpus, cfg);
        let page_bytes = uvm.page_bytes();
        UvmGnnEngine {
            cluster: Cluster::new(spec),
            workload: UvmWorkload { graph: graph.clone(), parts, row_base, page_bytes },
            uvm,
            mode,
            last_stats: None,
            last_uvm_stats: None,
            last_trace: None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Installs a telemetry handle; subsequent runs record `launch` and
    /// `aggregate` phase spans, the warp trace, and derived pipeline
    /// metrics into it.
    /// Installs a telemetry handle for subsequent simulations.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The currently installed telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Simulates one cold aggregation pass at dimension `dim`.
    pub fn simulate_aggregation(&mut self, dim: usize) -> KernelStats {
        self.simulate_aggregation_impl(dim, false).0
    }

    /// Like [`UvmGnnEngine::simulate_aggregation`], returning the warp
    /// trace as well. Tracing never changes the statistics.
    pub fn simulate_aggregation_traced(
        &mut self,
        dim: usize,
    ) -> (KernelStats, Vec<TraceEvent>) {
        let (stats, trace) = self.simulate_aggregation_impl(dim, true);
        (stats, trace.expect("trace requested"))
    }

    fn simulate_aggregation_impl(
        &mut self,
        dim: usize,
        want_trace: bool,
    ) -> (KernelStats, Option<Vec<TraceEvent>>) {
        let tel = self.telemetry.clone();
        let want_trace = want_trace || tel.is_enabled();
        let (stats, trace) = {
            let _launch = tel.span("launch");
            self.cluster.reset();
            self.uvm.reset();
            let kernel = UvmKernel { workload: &self.workload, dim };
            drop(_launch);
            let _agg = tel.span("aggregate");
            if want_trace {
                let (stats, events) =
                    GpuSim::run_traced(&mut self.cluster, &kernel, &mut self.uvm)
                        .expect("UVM kernel launch is valid");
                (stats, Some(events))
            } else {
                let stats = GpuSim::run(&mut self.cluster, &kernel, &mut self.uvm)
                    .expect("UVM kernel launch is valid");
                (stats, None)
            }
        };
        if tel.is_enabled() {
            let events = trace.as_deref().unwrap_or(&[]);
            tel.counter_add("engine.kernels", 1);
            tel.add_trace_events(events);
            tel.set_pipeline(PipelineMetrics::derive(&stats, events));
        }
        self.last_stats = Some(stats.clone());
        self.last_uvm_stats = Some(self.uvm.stats().clone());
        self.last_trace = trace.clone();
        (stats, trace)
    }

    /// Simulated end-to-end duration (kernel + launch overhead).
    pub fn simulate_aggregation_ns(&mut self, dim: usize) -> u64 {
        let launch = self.cluster.spec.kernel_launch_ns;
        self.simulate_aggregation(dim).makespan_ns() + launch
    }
}

impl UvmWorkload {
    /// Unified-space page holding embedding row `v` at dimension `dim`.
    fn page_of_row(&self, v: u64, dim: usize) -> u64 {
        v * (dim as u64) * 4 / self.page_bytes
    }
}

impl KernelProgram for UvmKernel<'_> {
    fn launch(&self, pe: usize) -> KernelLaunch {
        let warps = self.workload.parts[pe].len() as u32;
        KernelLaunch {
            blocks: warps.div_ceil(UVM_WPB),
            warps_per_block: UVM_WPB,
            smem_per_block: (UVM_PS as u32) * 4 + 2 * (self.dim as u32) * 4,
        }
    }

    fn warp_ops(&self, pe: usize, block: u32, warp: u32) -> Vec<WarpOp> {
        let w = (block * UVM_WPB + warp) as usize;
        let Some(part) = self.workload.parts[pe].get(w) else {
            return Vec::new();
        };
        let row_bytes = (self.dim * 4) as u32;
        let base = self.workload.row_base[pe];
        let start = (base + part.start) as usize;
        let end = start + part.len as usize;
        let mut ops = Vec::with_capacity(part.len as usize + 2);
        for &u in &self.workload.graph.col_idx()[start..end] {
            let page = self.workload.page_of_row(u as u64, self.dim);
            ops.push(WarpOp::PageAccess { page, bytes: row_bytes });
        }
        ops.push(WarpOp::Compute { cycles: aggregation_cycles(part.len, self.dim) });
        ops.push(WarpOp::GlobalWrite { bytes: row_bytes });
        ops
    }
}

impl Aggregator for UvmGnnEngine {
    fn aggregate(&mut self, x: &Matrix) -> (Matrix, u64) {
        let ns = self.simulate_aggregation_ns(x.cols());
        // Functionally, UVM is a single address space: the reference
        // aggregation is exactly what the kernel computes.
        (aggregate(&self.workload.graph, x, self.mode), ns)
    }

    fn aggregate_only(&mut self, x: &Matrix) -> Matrix {
        aggregate(&self.workload.graph, x, self.mode)
    }

    fn mode(&self) -> AggregateMode {
        self.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgg_graph::generators::rmat::{rmat, RmatConfig};

    fn graph() -> CsrGraph {
        rmat(&RmatConfig::graph500(9, 5_000, 31))
    }

    #[test]
    fn produces_time_and_fault_stats() {
        let g = graph();
        let mut e = UvmGnnEngine::new(&g, ClusterSpec::dgx_a100(2), AggregateMode::Sum);
        let ns = e.simulate_aggregation_ns(64);
        assert!(ns > 0);
        let stats = e.last_uvm_stats.as_ref().unwrap();
        assert!(stats.total_faults() > 0, "cold run must fault");
    }

    #[test]
    fn faults_grow_with_gpu_count() {
        // Figure 3's shape: every added GPU cold-faults its own copy of
        // the shared pages.
        let g = graph();
        let faults = |gpus| {
            let mut e = UvmGnnEngine::new(&g, ClusterSpec::dgx_a100(gpus), AggregateMode::Sum);
            e.simulate_aggregation(64);
            e.last_uvm_stats.as_ref().unwrap().total_faults()
        };
        let f2 = faults(2);
        let f8 = faults(8);
        assert!(f8 > f2, "f8={f8} f2={f2}");
    }

    #[test]
    fn fault_duration_grows_with_gpu_count() {
        let g = graph();
        let duration = |gpus| {
            let mut e = UvmGnnEngine::new(&g, ClusterSpec::dgx_a100(gpus), AggregateMode::Sum);
            e.simulate_aggregation(64);
            e.last_uvm_stats.as_ref().unwrap().total_fault_duration_ns()
        };
        assert!(duration(8) > duration(2));
    }

    #[test]
    fn values_match_reference() {
        let g = graph();
        let x = Matrix::glorot(g.num_nodes(), 8, 3);
        let mut e = UvmGnnEngine::new(&g, ClusterSpec::dgx_a100(4), AggregateMode::GcnNorm);
        let (vals, _) = e.aggregate(&x);
        let want = aggregate(&g, &x, AggregateMode::GcnNorm);
        assert!(vals.max_abs_diff(&want) < 1e-6);
    }

    #[test]
    fn traced_run_matches_untraced_and_reports_blocking_overlap() {
        let g = graph();
        let mut e = UvmGnnEngine::new(&g, ClusterSpec::dgx_a100(2), AggregateMode::Sum);
        let plain = e.simulate_aggregation(32);
        let (traced, events) = e.simulate_aggregation_traced(32);
        assert_eq!(plain, traced, "tracing must not change stats");
        assert!(!events.is_empty());
        assert_eq!(e.last_trace.as_ref().unwrap().len(), events.len());

        let tel = Telemetry::enabled();
        e.set_telemetry(tel.clone());
        let with_tel = e.simulate_aggregation(32);
        assert_eq!(plain, with_tel, "telemetry must not change stats");
        let snap = tel.snapshot();
        let pipeline = snap.pipeline.expect("pipeline metrics derived");
        // UVM page faults block the warp, so nothing hides the migrations.
        assert_eq!(pipeline.overlap_efficiency, 0.0);
        assert!(pipeline.comm_ns > 0, "paging traffic must be visible");
        assert!(snap.spans.iter().any(|s| s.name == "launch"));
        assert!(snap.spans.iter().any(|s| s.name == "aggregate"));
    }

    #[test]
    fn repeated_measurements_are_stable() {
        let g = graph();
        let mut e = UvmGnnEngine::new(&g, ClusterSpec::dgx_a100(2), AggregateMode::Sum);
        let a = e.simulate_aggregation_ns(32);
        let b = e.simulate_aggregation_ns(32);
        assert_eq!(a, b, "reset must make runs independent");
    }
}
