//! The Figure-2 NCCL study: ring forwarding of node-embedding shards.
//!
//! Reconstructs the paper's §2.1 motivating experiment: a 1-layer GNN
//! where each GPU holds a shard of the embedding matrix and, after
//! aggregating with its current shard, forwards it to the next GPU until
//! every GPU has seen every shard. Communication (NCCL-style bulk ring
//! steps, host-initiated) and computation (aggregation kernels) strictly
//! alternate — NCCL calls cannot run inside a compute kernel — so the two
//! phases add up, and the paper's observation is that the transfer side
//! costs >5× the aggregation side.

use mgg_collective::COLLECTIVE_LAUNCH_NS;
use mgg_graph::partition::neighbor::{partition_rows, PartitionKind};
use mgg_graph::{CsrGraph, NodeSplit};
use mgg_sim::{
    Cluster, ClusterSpec, GpuSim, KernelLaunch, KernelProgram, NoPaging, WarpOp,
};

use mgg_core::kernel::aggregation_cycles;

/// Outcome of the ring study.
#[derive(Debug, Clone, Copy)]
pub struct NcclRingReport {
    /// Total simulated communication time (all ring steps + launches).
    pub comm_ns: u64,
    /// Total simulated aggregation time (all per-step kernels).
    pub comp_ns: u64,
    /// Ring steps executed (`num_gpus - 1` shard rotations).
    pub steps: usize,
}

impl NcclRingReport {
    /// The Figure-2 ratio.
    pub fn comm_to_comp(&self) -> f64 {
        self.comm_ns as f64 / self.comp_ns.max(1) as f64
    }
}

/// Per-row software overhead of the NCCL-style vector transfer path
/// (message setup, progress-engine handoff). NCCL sustains near-peak
/// bandwidth only on large contiguous buffers; row-granular embedding
/// forwarding pays this per message.
pub const NCCL_PER_MSG_NS: u64 = 350;

/// A plain local aggregation kernel over all edges, neighbor-partitioned,
/// used to cost the compute side of each ring step.
struct LocalAggKernel<'a> {
    parts: Vec<Vec<mgg_graph::partition::neighbor::NeighborPartition>>,
    graph: &'a CsrGraph,
    dim: usize,
}

const WPB: u32 = 4;

impl KernelProgram for LocalAggKernel<'_> {
    fn launch(&self, pe: usize) -> KernelLaunch {
        let warps = self.parts[pe].len() as u32;
        KernelLaunch {
            blocks: warps.div_ceil(WPB).max(1),
            warps_per_block: WPB,
            smem_per_block: 2 * (self.dim as u32) * 4,
        }
    }

    fn warp_ops(&self, pe: usize, block: u32, warp: u32) -> Vec<WarpOp> {
        let w = (block * WPB + warp) as usize;
        let Some(p) = self.parts[pe].get(w) else {
            return Vec::new();
        };
        let row_bytes = (self.dim * 4) as u32;
        let _ = self.graph;
        vec![
            WarpOp::GlobalRead { bytes: p.len * row_bytes },
            WarpOp::Compute { cycles: aggregation_cycles(p.len, self.dim) },
            WarpOp::GlobalWrite { bytes: row_bytes },
        ]
    }
}

/// Runs the 1-layer ring-forwarding GNN and reports the comm/comp split.
pub fn nccl_ring_study(graph: &CsrGraph, spec: ClusterSpec, dim: usize) -> NcclRingReport {
    let n = spec.num_gpus;
    let mut cluster = Cluster::new(spec);
    let split = NodeSplit::uniform(graph.num_nodes(), n);

    // Compute side: across all rotation steps each GPU aggregates all of
    // its nodes' edges exactly once; simulate that total as one
    // neighbor-partitioned local kernel (sources are local by the time
    // they are aggregated — the shard was forwarded in).
    let parts: Vec<_> = (0..n)
        .map(|pe| {
            let range = split.range(pe);
            let lo = range.start as usize;
            let hi = range.end as usize;
            let base = graph.row_ptr()[lo];
            let local_ptr: Vec<u64> =
                graph.row_ptr()[lo..=hi].iter().map(|&p| p - base).collect();
            partition_rows(&local_ptr, 16, PartitionKind::Local)
        })
        .collect();
    let kernel = LocalAggKernel { parts, graph, dim };
    let stats = GpuSim::run(&mut cluster, &kernel, &mut NoPaging)
        .expect("ring aggregation kernel is valid");
    // Each of the n-1 steps launches its own aggregation kernel.
    let comp_ns = stats.makespan_ns()
        + (n.saturating_sub(1) as u64) * cluster.spec.kernel_launch_ns;

    // Communication side: n-1 shard rotations. The shard is a set of
    // *node-embedding rows*, and this is where NCCL falls down (§2.1:
    // "NCCL's inefficiency in transferring vector-based node
    // embeddings"): the transport moves the shard as per-row vector
    // messages, each paying a fixed software overhead, instead of one
    // saturating contiguous copy.
    cluster.reset();
    let max_shard_rows =
        (0..n).map(|pe| split.part_nodes(pe)).max().unwrap_or(0) as u64;
    let row_bytes = dim as u64 * 4;
    let mut t = 0;
    let steps = n.saturating_sub(1);
    for _ in 0..steps {
        let mut step_end = t;
        for pe in 0..n {
            let mut tp = t;
            for _ in 0..max_shard_rows {
                tp += NCCL_PER_MSG_NS;
                let done = cluster.ic.bulk_link_transfer(tp, pe, (pe + 1) % n, row_bytes);
                step_end = step_end.max(done);
            }
            step_end = step_end.max(tp);
        }
        t = step_end + COLLECTIVE_LAUNCH_NS;
    }
    NcclRingReport { comm_ns: t, comp_ns, steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgg_graph::generators::rmat::{rmat, RmatConfig};

    #[test]
    fn comm_dominates_comp() {
        // The Figure-2 observation: >5x on a Reddit-like dense graph.
        let g = rmat(&RmatConfig::graph500(11, 60_000, 43));
        let report = nccl_ring_study(&g, ClusterSpec::dgx_a100(8), 602);
        assert_eq!(report.steps, 7);
        assert!(
            report.comm_to_comp() > 2.0,
            "comm/comp = {:.2}",
            report.comm_to_comp()
        );
    }

    #[test]
    fn single_gpu_has_no_comm_steps() {
        let g = rmat(&RmatConfig::graph500(9, 4_000, 47));
        let report = nccl_ring_study(&g, ClusterSpec::dgx_a100(1), 64);
        assert_eq!(report.steps, 0);
        assert_eq!(report.comm_ns, 0);
        assert!(report.comp_ns > 0);
    }

    #[test]
    fn comm_grows_with_dim() {
        let g = rmat(&RmatConfig::graph500(9, 4_000, 53));
        let small = nccl_ring_study(&g, ClusterSpec::dgx_a100(4), 32);
        let big = nccl_ring_study(&g, ClusterSpec::dgx_a100(4), 512);
        assert!(big.comm_ns > small.comm_ns);
    }
}
