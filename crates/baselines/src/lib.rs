//! Baseline multi-GPU GNN engines.
//!
//! The comparison systems of the paper's evaluation, each built on the
//! same substrates as MGG so differences come from the *designs*:
//!
//! * [`uvm_gnn`] — the Unified-Virtual-Memory design of §5.1: one flat
//!   address space, page-fault-driven residency, no hybrid placement.
//! * [`direct_nvshmem`] — the §2.3 strawman: NVSHMEM gets issued
//!   on-demand, blocking, one warp per node, no workload management.
//! * [`dgcl`] — the DGCL-like design of §5.2: expensive
//!   communication-minimizing preprocessing, then allgather-then-aggregate
//!   execution with no communication-computation overlap.
//! * [`nccl_ring`] — the Figure-2 NCCL study: ring forwarding of
//!   embedding shards with kernel-boundary serialization.
//! * [`put_based`] — §3.3's rejected PUT-based communication variant
//!   (staging + barrier + receiver-side polling), measurable against the
//!   GET pipeline.

#![deny(missing_docs)]

pub mod dgcl;
pub mod direct_nvshmem;
pub mod nccl_ring;
pub mod put_based;
pub mod uvm_gnn;

pub use dgcl::{DgclEngine, DgclPreprocessReport};
pub use direct_nvshmem::DirectNvshmemEngine;
pub use nccl_ring::{nccl_ring_study, NcclRingReport};
pub use put_based::PutBasedEngine;
pub use uvm_gnn::UvmGnnEngine;
