//! Direct NVSHMEM: the §2.3 strawman (Table 1).
//!
//! Embeddings live in the symmetric heap (uniform node split), but the
//! kernel applies none of MGG's management: one warp per node, and every
//! remote neighbor is fetched with an *on-demand blocking* GET right when
//! the aggregation needs it. The paper shows this is "not a free lunch" —
//! on average slower than the UVM design — because (i) each blocking GET
//! exposes the full fabric latency to its warp, (ii) hub nodes serialize
//! thousands of GETs on a single warp, and (iii) warps flip between
//! computation and communication, defeating the SM scheduler.

use mgg_gnn::models::Aggregator;
use mgg_gnn::reference::{aggregate, AggregateMode};
use mgg_gnn::Matrix;
use mgg_graph::partition::locality::{self, LocalityPartition};
use mgg_graph::{CsrGraph, NodeSplit};
use mgg_sim::{
    Cluster, ClusterSpec, GpuSim, KernelLaunch, KernelProgram, KernelStats, NoPaging, WarpOp,
};

use mgg_core::kernel::aggregation_cycles;

/// Warps per block of the naive kernel.
const WPB: u32 = 8;

/// Warp-side software cycles per on-demand blocking GET (argument
/// marshalling, symmetric-address translation, quiet). MGG's batched
/// `_nbi` path amortizes this; issuing gets one by one on demand pays it
/// per neighbor — part of §2.3's "non-trivial overheads (e.g.,
/// communication warm-up costs)".
const GET_SW_CYCLES: u32 = 280;

/// The direct-NVSHMEM aggregation engine.
pub struct DirectNvshmemEngine {
    /// The simulated platform the engine runs on.
    pub cluster: Cluster,
    graph: CsrGraph,
    parts: Vec<LocalityPartition>,
    mode: AggregateMode,
    /// Statistics of the most recent simulated kernel.
    pub last_stats: Option<KernelStats>,
}

struct DirectKernel<'a> {
    parts: &'a [LocalityPartition],
    dim: usize,
}

impl DirectNvshmemEngine {
    /// Builds the engine with a uniform node split.
    pub fn new(graph: &CsrGraph, spec: ClusterSpec, mode: AggregateMode) -> Self {
        let split = NodeSplit::uniform(graph.num_nodes(), spec.num_gpus);
        let parts = locality::build(graph, &split);
        DirectNvshmemEngine {
            cluster: Cluster::new(spec),
            graph: graph.clone(),
            parts,
            mode,
            last_stats: None,
        }
    }

    /// Simulates one aggregation pass at dimension `dim`.
    pub fn simulate_aggregation(&mut self, dim: usize) -> KernelStats {
        self.cluster.reset();
        let kernel = DirectKernel { parts: &self.parts, dim };
        let stats = GpuSim::run(&mut self.cluster, &kernel, &mut NoPaging)
            .expect("direct kernel launch is valid");
        self.last_stats = Some(stats.clone());
        stats
    }

    /// Simulated end-to-end duration (kernel + launch overhead).
    pub fn simulate_aggregation_ns(&mut self, dim: usize) -> u64 {
        let launch = self.cluster.spec.kernel_launch_ns;
        self.simulate_aggregation(dim).makespan_ns() + launch
    }
}

impl KernelProgram for DirectKernel<'_> {
    fn launch(&self, pe: usize) -> KernelLaunch {
        let warps = self.parts[pe].local.num_rows() as u32;
        KernelLaunch {
            blocks: warps.div_ceil(WPB).max(1),
            warps_per_block: WPB,
            smem_per_block: 2 * (self.dim as u32) * 4,
        }
    }

    fn warp_ops(&self, pe: usize, block: u32, warp: u32) -> Vec<WarpOp> {
        let r = (block * WPB + warp) as usize;
        let part = &self.parts[pe];
        if r >= part.local.num_rows() {
            return Vec::new();
        }
        let row_bytes = (self.dim * 4) as u32;
        let local = part.local.row(r as u32);
        let remote = part.remote.row(r as u32);
        if local.is_empty() && remote.is_empty() {
            return Vec::new();
        }
        let mut ops = Vec::with_capacity(remote.len() * 2 + 4);
        // Local neighbors: a single coalesced sweep plus the arithmetic.
        if !local.is_empty() {
            ops.push(WarpOp::GlobalRead { bytes: local.len() as u32 * row_bytes });
            ops.push(WarpOp::Compute {
                cycles: aggregation_cycles(local.len() as u32, self.dim),
            });
        }
        // Remote neighbors: on-demand blocking GET, then aggregate that
        // one row, then the next — the §2.3 "frequently switching between
        // local computation and remote access" pattern.
        for rr in remote {
            ops.push(WarpOp::Compute { cycles: GET_SW_CYCLES });
            ops.push(WarpOp::RemoteGet { peer: rr.owner, bytes: row_bytes, nbi: false });
            ops.push(WarpOp::Compute { cycles: aggregation_cycles(1, self.dim) });
        }
        ops.push(WarpOp::GlobalWrite { bytes: row_bytes });
        ops
    }
}

impl Aggregator for DirectNvshmemEngine {
    fn aggregate(&mut self, x: &Matrix) -> (Matrix, u64) {
        let ns = self.simulate_aggregation_ns(x.cols());
        (aggregate(&self.graph, x, self.mode), ns)
    }

    fn aggregate_only(&mut self, x: &Matrix) -> Matrix {
        aggregate(&self.graph, x, self.mode)
    }

    fn mode(&self) -> AggregateMode {
        self.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgg_graph::generators::rmat::{rmat, RmatConfig};

    fn graph() -> CsrGraph {
        rmat(&RmatConfig::graph500(9, 5_000, 37))
    }

    #[test]
    fn runs_and_times() {
        let g = graph();
        let mut e = DirectNvshmemEngine::new(&g, ClusterSpec::dgx_a100(4), AggregateMode::Sum);
        let ns = e.simulate_aggregation_ns(64);
        assert!(ns > 0);
        let stats = e.last_stats.as_ref().unwrap();
        assert!(stats.traffic.remote_bytes() > 0);
    }

    #[test]
    fn values_match_reference() {
        let g = graph();
        let x = Matrix::glorot(g.num_nodes(), 6, 9);
        let mut e = DirectNvshmemEngine::new(&g, ClusterSpec::dgx_a100(2), AggregateMode::Mean);
        let (vals, _) = e.aggregate(&x);
        let want = aggregate(&g, &x, AggregateMode::Mean);
        assert!(vals.max_abs_diff(&want) < 1e-6);
    }

    #[test]
    fn blocking_gets_hurt_on_skewed_graphs() {
        // The hub's warp serializes its remote gets, so the direct design
        // must be far slower than MGG on the same skewed graph.
        use mgg_core::{MggConfig, MggEngine};
        let g = mgg_graph::generators::regular::star(3_000);
        let dim = 128;
        let mut direct =
            DirectNvshmemEngine::new(&g, ClusterSpec::dgx_a100(4), AggregateMode::Sum);
        let t_direct = direct.simulate_aggregation_ns(dim);
        let mut mgg = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let t_mgg = mgg.simulate_aggregation_ns(dim).unwrap();
        assert!(
            t_direct > 3 * t_mgg,
            "direct {t_direct} vs mgg {t_mgg}: expected a big gap on the star"
        );
    }
}
