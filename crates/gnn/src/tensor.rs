//! Minimal dense `f32` tensor kernels.
//!
//! Row-major matrices and the handful of dense operations GNN models need.
//! These stand in for cuBLAS/cuDNN on the functional side; their simulated
//! GPU cost is modeled separately by [`crate::models::DenseCostModel`].

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A dense row-major `f32` matrix.
///
/// # Examples
///
/// ```
/// use mgg_gnn::Matrix;
///
/// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// let b = Matrix::from_vec(2, 1, vec![1.0, 1.0]);
/// let c = a.matmul(&b);
/// assert_eq!(c.data(), &[3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds from a flat row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Glorot-uniform initialization, seeded.
    pub fn glorot(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let limit = (6.0 / (rows + cols) as f64).sqrt();
        let data =
            (0..rows * cols).map(|_| rng.random_range(-limit..limit) as f32).collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat data, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Flat data, mutable.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r`, mutable.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self @ other` with a cache-friendly i-k-j loop.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self^T @ other` without materializing the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "outer dimensions must agree");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ other^T`.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = other.row(j);
                *o = a_row.iter().zip(b_row).map(|(&a, &b)| a * b).sum();
            }
        }
        out
    }

    /// Elementwise ReLU, in place.
    pub fn relu_inplace(&mut self) {
        for x in &mut self.data {
            if *x < 0.0 {
                *x = 0.0;
            }
        }
    }

    /// Elementwise ReLU derivative mask applied to `grad` (in place):
    /// `grad[i] = 0` where `pre[i] <= 0`.
    pub fn relu_backward_inplace(grad: &mut Matrix, pre: &Matrix) {
        assert_eq!(grad.data.len(), pre.data.len(), "shape mismatch");
        for (g, &p) in grad.data.iter_mut().zip(&pre.data) {
            if p <= 0.0 {
                *g = 0.0;
            }
        }
    }

    /// Row-wise softmax, in place (numerically stabilized).
    pub fn softmax_rows_inplace(&mut self) {
        for r in 0..self.rows {
            let row = self.row_mut(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            if sum > 0.0 {
                for x in row.iter_mut() {
                    *x /= sum;
                }
            }
        }
    }

    /// `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.data.len(), other.data.len(), "shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scales every element.
    pub fn scale(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Maximum absolute elementwise difference to `other`.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.data.len(), other.data.len(), "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

/// Mean cross-entropy of softmax `probs` against integer `labels`,
/// restricted to `mask` rows (all rows when `mask` is `None`).
pub fn cross_entropy(probs: &Matrix, labels: &[u32], mask: Option<&[bool]>) -> f32 {
    assert_eq!(probs.rows(), labels.len(), "one label per row");
    let mut loss = 0.0f64;
    let mut count = 0usize;
    for (r, &y) in labels.iter().enumerate() {
        if let Some(m) = mask {
            if !m[r] {
                continue;
            }
        }
        let p = probs.row(r)[y as usize].max(1e-12);
        loss -= (p as f64).ln();
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        (loss / count as f64) as f32
    }
}

/// Fraction of rows whose argmax equals the label, over `mask` rows.
pub fn accuracy(logits: &Matrix, labels: &[u32], mask: Option<&[bool]>) -> f64 {
    assert_eq!(logits.rows(), labels.len(), "one label per row");
    let mut correct = 0usize;
    let mut count = 0usize;
    for (r, &y) in labels.iter().enumerate() {
        if let Some(m) = mask {
            if !m[r] {
                continue;
            }
        }
        let row = logits.row(r);
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN logits"))
            .map(|(i, _)| i)
            .unwrap_or(0);
        if pred == y as usize {
            correct += 1;
        }
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        correct as f64 / count as f64
    }
}

/// Adam optimizer state for one parameter matrix.
#[derive(Debug, Clone)]
pub struct Adam {
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
}

impl Adam {
    /// Adam with the usual defaults for a parameter of `len` elements.
    pub fn new(len: usize, lr: f32) -> Self {
        Adam { m: vec![0.0; len], v: vec![0.0; len], t: 0, lr, beta1: 0.9, beta2: 0.999, eps: 1e-8 }
    }

    /// One update step: `param -= lr * m_hat / (sqrt(v_hat) + eps)`.
    pub fn step(&mut self, param: &mut Matrix, grad: &Matrix) {
        assert_eq!(param.data().len(), self.m.len(), "parameter shape changed");
        assert_eq!(grad.data().len(), self.m.len(), "gradient shape mismatch");
        self.t += 1;
        let b1c = 1.0 - self.beta1.powi(self.t as i32);
        let b2c = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, &g), (m, v)) in param
            .data_mut()
            .iter_mut()
            .zip(grad.data())
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            *m = self.beta1 * *m + (1.0 - self.beta1) * g;
            *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
            let m_hat = *m / b1c;
            let v_hat = *v / b2c;
            *p -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a.row(i)[k] * b.row(k)[j];
                }
                out.row_mut(i)[j] = s;
            }
        }
        out
    }

    #[test]
    fn matmul_matches_naive() {
        let a = Matrix::glorot(7, 5, 1);
        let b = Matrix::glorot(5, 3, 2);
        let fast = a.matmul(&b);
        let slow = naive_matmul(&a, &b);
        assert!(fast.max_abs_diff(&slow) < 1e-5);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Matrix::glorot(6, 4, 3);
        let b = Matrix::glorot(6, 2, 4);
        // a^T b via naive on transposed a.
        let mut at = Matrix::zeros(4, 6);
        for i in 0..6 {
            for j in 0..4 {
                at.row_mut(j)[i] = a.row(i)[j];
            }
        }
        assert!(a.t_matmul(&b).max_abs_diff(&naive_matmul(&at, &b)) < 1e-5);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Matrix::glorot(3, 4, 5);
        let b = Matrix::glorot(2, 4, 6);
        let mut bt = Matrix::zeros(4, 2);
        for i in 0..2 {
            for j in 0..4 {
                bt.row_mut(j)[i] = b.row(i)[j];
            }
        }
        assert!(a.matmul_t(&b).max_abs_diff(&naive_matmul(&a, &bt)) < 1e-5);
    }

    #[test]
    fn relu_and_backward() {
        let mut x = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -3.0]);
        let pre = x.clone();
        x.relu_inplace();
        assert_eq!(x.data(), &[0.0, 0.0, 2.0, 0.0]);
        let mut g = Matrix::from_vec(1, 4, vec![1.0, 1.0, 1.0, 1.0]);
        Matrix::relu_backward_inplace(&mut g, &pre);
        assert_eq!(g.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut x = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0]);
        x.softmax_rows_inplace();
        for r in 0..2 {
            let s: f32 = x.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(x.row(r).iter().all(|&p| p >= 0.0));
        }
        // Softmax is monotone in the logits.
        assert!(x.row(0)[2] > x.row(0)[0]);
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_zero() {
        let probs = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let loss = cross_entropy(&probs, &[0, 1], None);
        assert!(loss.abs() < 1e-6);
    }

    #[test]
    fn accuracy_with_mask() {
        let logits = Matrix::from_vec(3, 2, vec![2.0, 1.0, 0.0, 1.0, 3.0, 0.0]);
        // Predictions: 0, 1, 0. Labels: 0, 0, 0.
        let acc_all = accuracy(&logits, &[0, 0, 0], None);
        assert!((acc_all - 2.0 / 3.0).abs() < 1e-9);
        let mask = [true, true, false];
        let acc_masked = accuracy(&logits, &[0, 0, 0], Some(&mask));
        assert!((acc_masked - 0.5).abs() < 1e-9);
    }

    #[test]
    fn adam_reduces_quadratic_loss() {
        // Minimize ||w||^2: gradient is 2w, Adam must shrink w.
        let mut w = Matrix::from_vec(1, 3, vec![1.0, -2.0, 3.0]);
        let mut opt = Adam::new(3, 0.1);
        for _ in 0..200 {
            let mut g = w.clone();
            g.scale(2.0);
            opt.step(&mut w, &g);
        }
        assert!(w.data().iter().all(|&x| x.abs() < 0.05), "w={:?}", w.data());
    }

    #[test]
    fn glorot_is_seeded_and_bounded() {
        let a = Matrix::glorot(4, 4, 9);
        let b = Matrix::glorot(4, 4, 9);
        assert_eq!(a, b);
        let limit = (6.0f64 / 8.0).sqrt() as f32;
        assert!(a.data().iter().all(|&x| x.abs() <= limit));
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
        proptest::collection::vec(-10.0f32..10.0, rows * cols)
            .prop_map(move |data| Matrix::from_vec(rows, cols, data))
    }

    proptest! {
        #[test]
        fn matmul_distributes_over_addition(
            a in arb_matrix(4, 3),
            b in arb_matrix(4, 3),
            c in arb_matrix(3, 5),
        ) {
            // (A + B) C == A C + B C, up to FP tolerance.
            let mut ab = a.clone();
            ab.axpy(1.0, &b);
            let lhs = ab.matmul(&c);
            let mut rhs = a.matmul(&c);
            rhs.axpy(1.0, &b.matmul(&c));
            prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
        }

        #[test]
        fn transpose_products_agree(
            a in arb_matrix(5, 4),
            b in arb_matrix(5, 3),
        ) {
            // a.t_matmul(b) == (b.t_matmul(a))^T — verify via matmul_t.
            let atb = a.t_matmul(&b); // 4 x 3
            let bta = b.t_matmul(&a); // 3 x 4
            for i in 0..4 {
                for j in 0..3 {
                    prop_assert!((atb.row(i)[j] - bta.row(j)[i]).abs() < 1e-3);
                }
            }
        }

        #[test]
        fn softmax_is_shift_invariant(
            logits in proptest::collection::vec(-5.0f32..5.0, 6),
            shift in -100.0f32..100.0,
        ) {
            let mut a = Matrix::from_vec(1, 6, logits.clone());
            let mut b = Matrix::from_vec(1, 6, logits.iter().map(|&x| x + shift).collect());
            a.softmax_rows_inplace();
            b.softmax_rows_inplace();
            prop_assert!(a.max_abs_diff(&b) < 1e-4);
        }

        #[test]
        fn accuracy_and_cross_entropy_are_bounded(
            logits in arb_matrix(8, 3),
            labels in proptest::collection::vec(0u32..3, 8),
        ) {
            let mut p = logits.clone();
            p.softmax_rows_inplace();
            let loss = cross_entropy(&p, &labels, None);
            prop_assert!(loss >= 0.0);
            let acc = accuracy(&logits, &labels, None);
            prop_assert!((0.0..=1.0).contains(&acc));
        }
    }
}
