//! Uniform neighbor sampling (the "GNN w/ sampling" side of Table 5).
//!
//! Sampling caps each node's aggregation at `fanout` uniformly chosen
//! neighbors, the conventional GraphSAGE recipe the paper compares against
//! ("we follow the conventional way for GNN sampling", §5.3). It trades
//! accuracy for less aggregation work.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use mgg_graph::{CsrGraph, GraphBuilder, NodeId};

/// Neighbor-sampling configuration.
#[derive(Debug, Clone, Copy)]
pub struct SamplingConfig {
    /// Maximum neighbors kept per node.
    pub fanout: usize,
    /// RNG seed; re-seeded per epoch from this base.
    pub seed: u64,
}

/// Samples up to `fanout` neighbors per node, uniformly without
/// replacement (reservoir sampling keeps it O(degree) per node).
pub fn sample_neighbors(graph: &CsrGraph, cfg: &SamplingConfig) -> CsrGraph {
    assert!(cfg.fanout >= 1, "fanout must be at least 1");
    let n = graph.num_nodes();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = GraphBuilder::new(n).dedup(false);
    let mut reservoir: Vec<NodeId> = Vec::with_capacity(cfg.fanout);
    for v in 0..n as NodeId {
        let nbrs = graph.neighbors(v);
        reservoir.clear();
        for (i, &u) in nbrs.iter().enumerate() {
            if i < cfg.fanout {
                reservoir.push(u);
            } else {
                let j = rng.random_range(0..=i);
                if j < cfg.fanout {
                    reservoir[j] = u;
                }
            }
        }
        for &u in &reservoir {
            b.add_edge(v, u);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgg_graph::generators::regular::{ring, star};
    use mgg_graph::generators::rmat::{rmat, RmatConfig};

    #[test]
    fn degrees_are_capped() {
        let g = star(100);
        let s = sample_neighbors(&g, &SamplingConfig { fanout: 5, seed: 1 });
        assert_eq!(s.degree(0), 5);
        assert_eq!(s.degree(1), 1, "leaves keep their single neighbor");
    }

    #[test]
    fn small_degrees_untouched() {
        let g = ring(10);
        let s = sample_neighbors(&g, &SamplingConfig { fanout: 8, seed: 2 });
        assert_eq!(s, g);
    }

    #[test]
    fn sampled_neighbors_are_a_subset() {
        let g = rmat(&RmatConfig::graph500(9, 4_000, 5));
        let s = sample_neighbors(&g, &SamplingConfig { fanout: 4, seed: 3 });
        for v in 0..g.num_nodes() as NodeId {
            for &u in s.neighbors(v) {
                assert!(g.neighbors(v).contains(&u), "({v},{u}) not in original");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = rmat(&RmatConfig::graph500(8, 2_000, 7));
        let a = sample_neighbors(&g, &SamplingConfig { fanout: 3, seed: 9 });
        let b = sample_neighbors(&g, &SamplingConfig { fanout: 3, seed: 9 });
        let c = sample_neighbors(&g, &SamplingConfig { fanout: 3, seed: 10 });
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn reduces_edge_count_on_dense_graph() {
        let g = rmat(&RmatConfig::graph500(9, 30_000, 11));
        let s = sample_neighbors(&g, &SamplingConfig { fanout: 4, seed: 1 });
        assert!(s.num_edges() < g.num_edges() / 2);
    }
}
