//! GNN substrate: tensors, models, reference aggregation, sampling and
//! training.
//!
//! The paper evaluates two models (§5): a 2-layer GCN with 16 hidden
//! dimensions (Equation 4) and a 5-layer GIN with 64 hidden dimensions
//! (Equation 5). This crate implements both, plus:
//!
//! * [`tensor`] — a minimal dense `f32` kernel set (GEMM, ReLU, softmax,
//!   cross-entropy) standing in for cuBLAS/cuDNN's dense side;
//! * [`mod@reference`] — single-address-space CPU aggregation, the ground
//!   truth every distributed engine must match bit-for-bit up to FP
//!   reassociation;
//! * [`sampling`] — uniform neighbor sampling (the "GNN w/ sampling"
//!   column of Table 5);
//! * [`train`] — full-batch GCN training with hand-derived gradients and
//!   Adam, used to measure the accuracy-latency tradeoff of Table 5;
//! * [`features`] — label-correlated synthetic node features so the
//!   classification task is learnable on the synthetic graphs.

#![deny(missing_docs)]

pub mod features;
pub mod gat;
pub mod inference;
pub mod models;
pub mod reference;
pub mod sampling;
pub mod tensor;
pub mod train;

pub use models::{Aggregator, DenseCostModel, Gcn, Gin, LayerTiming, ModelKind};
pub use reference::{aggregate, AggregateMode, ReferenceAggregator};
pub use tensor::Matrix;
