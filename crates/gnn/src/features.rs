//! Synthetic node features correlated with class labels.
//!
//! The Table-5 experiment trains real classifiers, so the synthetic inputs
//! must carry signal: each node's feature vector is Gaussian noise plus a
//! class-dependent offset in a class-specific coordinate block. Neighbor
//! aggregation then genuinely denoises (SBM neighbors mostly share the
//! label), which is what makes full-graph aggregation measurably more
//! accurate than sampled aggregation.

use rand::rngs::StdRng;
use rand::SeedableRng;

use mgg_graph::generators::distributions::normal;

use crate::tensor::Matrix;

/// Generates `n x dim` features for `labels` over `classes` classes.
///
/// `signal` controls separability: 0 is pure noise, ~1 is easy.
pub fn label_features(
    labels: &[u32],
    classes: usize,
    dim: usize,
    signal: f64,
    seed: u64,
) -> Matrix {
    assert!(classes >= 1, "need at least one class");
    assert!(dim >= 1, "need at least one feature dim");
    let n = labels.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Matrix::zeros(n, dim);
    // Block width per class (at least one coordinate each, wrapping when
    // classes > dim).
    let block = (dim / classes).max(1);
    for (r, &y) in labels.iter().enumerate() {
        let row = x.row_mut(r);
        for v in row.iter_mut() {
            *v = normal(&mut rng, 0.0, 1.0) as f32;
        }
        let start = (y as usize * block) % dim;
        for k in 0..block {
            row[(start + k) % dim] += signal as f32;
        }
    }
    x
}

/// Deterministic train/val/test masks with the given fractions.
pub fn split_masks(
    n: usize,
    train_frac: f64,
    val_frac: f64,
    seed: u64,
) -> (Vec<bool>, Vec<bool>, Vec<bool>) {
    assert!(train_frac + val_frac < 1.0, "fractions must leave room for test");
    use rand::RngExt;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut train = vec![false; n];
    let mut val = vec![false; n];
    let mut test = vec![false; n];
    for i in 0..n {
        let r: f64 = rng.random();
        if r < train_frac {
            train[i] = true;
        } else if r < train_frac + val_frac {
            val[i] = true;
        } else {
            test[i] = true;
        }
    }
    (train, val, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn features_are_class_separable() {
        let labels: Vec<u32> = (0..200).map(|i| (i % 2) as u32).collect();
        let x = label_features(&labels, 2, 8, 2.0, 3);
        // Mean of the class-0 block coordinate must be higher for class 0.
        let mean_at = |class: u32, coord: usize| -> f32 {
            let (mut s, mut c) = (0.0, 0);
            for (r, &y) in labels.iter().enumerate() {
                if y == class {
                    s += x.row(r)[coord];
                    c += 1;
                }
            }
            s / c as f32
        };
        assert!(mean_at(0, 0) > mean_at(1, 0) + 1.0);
        assert!(mean_at(1, 4) > mean_at(0, 4) + 1.0);
    }

    #[test]
    fn more_classes_than_dims_still_works() {
        let labels: Vec<u32> = (0..50).map(|i| (i % 10) as u32).collect();
        let x = label_features(&labels, 10, 4, 1.0, 7);
        assert_eq!(x.rows(), 50);
        assert_eq!(x.cols(), 4);
    }

    #[test]
    fn masks_partition_nodes() {
        let (tr, va, te) = split_masks(1_000, 0.5, 0.2, 11);
        for i in 0..1_000 {
            let count = tr[i] as u32 + va[i] as u32 + te[i] as u32;
            assert_eq!(count, 1, "node {i} in {count} splits");
        }
        let n_tr = tr.iter().filter(|&&b| b).count();
        assert!((400..600).contains(&n_tr), "train size {n_tr}");
    }

    #[test]
    #[should_panic(expected = "leave room for test")]
    fn masks_reject_full_split() {
        let _ = split_masks(10, 0.8, 0.2, 1);
    }
}
