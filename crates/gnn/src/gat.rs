//! Graph Attention Network (GAT) support.
//!
//! The paper positions GIN as "the reference architecture for many other
//! advanced GNNs with more edge properties, such as Graph Attention
//! Network" (§5). GAT's edge property is the attention coefficient: each
//! layer computes, per directed edge `(v, u)`,
//!
//! ```text
//! e(v,u)     = LeakyReLU(a_dst · h_v + a_src · h_u)
//! alpha(v,u) = softmax_u e(v,u)            (over v's neighbors)
//! out_v      = sum_u alpha(v,u) * h_u
//! ```
//!
//! On the distributed engines this costs one scalar (dim-1) exchange for
//! the neighbor scores plus one weighted aggregation at the hidden width —
//! the same access pattern MGG's pipeline already serves, which is why the
//! locality split carries original edge indices.

use mgg_graph::{CsrGraph, NodeId};

use crate::tensor::Matrix;

/// Backend capable of GAT's two sparse phases.
pub trait GatBackend {
    /// Computes per-edge softmax attention weights (indexed by the input
    /// graph's flat adjacency) from per-node scores; returns the weights
    /// and the simulated duration of the scalar score exchange.
    fn attention(&mut self, s_dst: &[f32], s_src: &[f32], slope: f32) -> (Vec<f32>, u64);

    /// Aggregates `x` with the given per-edge weights; returns values and
    /// the simulated duration.
    fn aggregate_weighted(&mut self, x: &Matrix, w: &[f32]) -> (Matrix, u64);
}

#[inline]
fn leaky_relu(x: f32, slope: f32) -> f32 {
    if x >= 0.0 {
        x
    } else {
        slope * x
    }
}

/// Computes the per-edge attention weights on a plain graph (the
/// reference path): leaky-ReLU scores, softmax per destination row.
pub fn reference_attention(
    graph: &CsrGraph,
    s_dst: &[f32],
    s_src: &[f32],
    slope: f32,
) -> Vec<f32> {
    assert_eq!(s_dst.len(), graph.num_nodes(), "one dst score per node");
    assert_eq!(s_src.len(), graph.num_nodes(), "one src score per node");
    let mut w = vec![0.0f32; graph.num_edges()];
    for v in 0..graph.num_nodes() as NodeId {
        let base = graph.row_ptr()[v as usize] as usize;
        let nbrs = graph.neighbors(v);
        if nbrs.is_empty() {
            continue;
        }
        // Stabilized softmax over the row's scores.
        let mut max = f32::NEG_INFINITY;
        for (k, &u) in nbrs.iter().enumerate() {
            let e = leaky_relu(s_dst[v as usize] + s_src[u as usize], slope);
            w[base + k] = e;
            max = max.max(e);
        }
        let mut sum = 0.0f32;
        for k in 0..nbrs.len() {
            w[base + k] = (w[base + k] - max).exp();
            sum += w[base + k];
        }
        if sum > 0.0 {
            for k in 0..nbrs.len() {
                w[base + k] /= sum;
            }
        }
    }
    w
}

/// The reference (single-address-space) GAT backend.
#[derive(Debug, Clone)]
pub struct ReferenceGatBackend {
    /// The graph attention coefficients and aggregation run over.
    pub graph: CsrGraph,
}

impl GatBackend for ReferenceGatBackend {
    fn attention(&mut self, s_dst: &[f32], s_src: &[f32], slope: f32) -> (Vec<f32>, u64) {
        (reference_attention(&self.graph, s_dst, s_src, slope), 0)
    }

    fn aggregate_weighted(&mut self, x: &Matrix, w: &[f32]) -> (Matrix, u64) {
        (crate::reference::aggregate_edge_weighted(&self.graph, x, w), 0)
    }
}

/// One single-head GAT layer.
#[derive(Debug, Clone)]
pub struct GatLayer {
    /// Linear projection applied before attention.
    pub w: Matrix,
    /// Attention vector dotted with the source projection.
    pub a_src: Vec<f32>,
    /// Attention vector dotted with the destination projection.
    pub a_dst: Vec<f32>,
}

impl GatLayer {
    /// Glorot-initialized layer mapping `in_dim -> out_dim`.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        let a = Matrix::glorot(2, out_dim, seed.wrapping_add(7));
        GatLayer {
            w: Matrix::glorot(in_dim, out_dim, seed),
            a_src: a.row(0).to_vec(),
            a_dst: a.row(1).to_vec(),
        }
    }
}

/// A 2-layer single-head GAT with the usual LeakyReLU slope.
#[derive(Debug, Clone)]
pub struct Gat {
    /// The two layers, hidden then output.
    pub layers: Vec<GatLayer>,
    /// LeakyReLU negative slope used in the attention logits.
    pub slope: f32,
}

/// Per-layer GAT timing breakdown.
#[derive(Debug, Clone, Copy, Default)]
pub struct GatLayerTiming {
    /// Scalar score exchange + softmax.
    pub attention_ns: u64,
    /// Weighted neighbor aggregation.
    pub aggregate_ns: u64,
}

impl Gat {
    /// Builds `in_dim -> hidden -> classes`.
    pub fn new(in_dim: usize, hidden: usize, classes: usize, seed: u64) -> Self {
        Gat {
            layers: vec![
                GatLayer::new(in_dim, hidden, seed),
                GatLayer::new(hidden, classes, seed.wrapping_add(100)),
            ],
            slope: 0.2,
        }
    }

    /// Full forward pass through `backend`.
    pub fn forward(&self, backend: &mut dyn GatBackend, x: &Matrix) -> (Matrix, Vec<GatLayerTiming>) {
        let mut h = x.clone();
        let mut timings = Vec::with_capacity(self.layers.len());
        for (i, layer) in self.layers.iter().enumerate() {
            let z = h.matmul(&layer.w);
            // Per-node scalar scores.
            let dot = |a: &[f32], row: &[f32]| -> f32 {
                a.iter().zip(row).map(|(&p, &q)| p * q).sum()
            };
            let s_src: Vec<f32> = (0..z.rows()).map(|r| dot(&layer.a_src, z.row(r))).collect();
            let s_dst: Vec<f32> = (0..z.rows()).map(|r| dot(&layer.a_dst, z.row(r))).collect();
            let (alpha, t_attn) = backend.attention(&s_dst, &s_src, self.slope);
            let (mut out, t_agg) = backend.aggregate_weighted(&z, &alpha);
            if i + 1 != self.layers.len() {
                out.relu_inplace();
            }
            timings.push(GatLayerTiming { attention_ns: t_attn, aggregate_ns: t_agg });
            h = out;
        }
        (h, timings)
    }
}

/// A multi-head GAT layer: `heads` independent single-head layers whose
/// outputs concatenate (the standard GAT construction for hidden layers).
#[derive(Debug, Clone)]
pub struct MultiHeadGatLayer {
    /// The independent heads; outputs concatenate in head order.
    pub heads: Vec<GatLayer>,
}

impl MultiHeadGatLayer {
    /// `heads` heads of `in_dim -> head_dim`, concatenating to
    /// `heads * head_dim`.
    pub fn new(in_dim: usize, head_dim: usize, heads: usize, seed: u64) -> Self {
        assert!(heads >= 1, "need at least one head");
        MultiHeadGatLayer {
            heads: (0..heads)
                .map(|h| GatLayer::new(in_dim, head_dim, seed.wrapping_add(31 * h as u64)))
                .collect(),
        }
    }

    /// Forward through `backend`; returns the concatenated output and the
    /// summed per-head timing.
    pub fn forward(
        &self,
        backend: &mut dyn GatBackend,
        h: &Matrix,
        slope: f32,
    ) -> (Matrix, GatLayerTiming) {
        let head_dim = self.heads[0].w.cols();
        let n = h.rows();
        let mut out = Matrix::zeros(n, head_dim * self.heads.len());
        let mut timing = GatLayerTiming::default();
        for (hi, layer) in self.heads.iter().enumerate() {
            let z = h.matmul(&layer.w);
            let dot = |a: &[f32], row: &[f32]| -> f32 {
                a.iter().zip(row).map(|(&p, &q)| p * q).sum()
            };
            let s_src: Vec<f32> = (0..n).map(|r| dot(&layer.a_src, z.row(r))).collect();
            let s_dst: Vec<f32> = (0..n).map(|r| dot(&layer.a_dst, z.row(r))).collect();
            let (alpha, t_attn) = backend.attention(&s_dst, &s_src, slope);
            let (agg, t_agg) = backend.aggregate_weighted(&z, &alpha);
            timing.attention_ns += t_attn;
            timing.aggregate_ns += t_agg;
            for r in 0..n {
                out.row_mut(r)[hi * head_dim..(hi + 1) * head_dim]
                    .copy_from_slice(agg.row(r));
            }
        }
        (out, timing)
    }
}

#[cfg(test)]
mod multi_head_tests {
    use super::*;
    use mgg_graph::generators::rmat::{rmat, RmatConfig};

    #[test]
    fn concatenation_shape_and_head_independence() {
        let g = rmat(&RmatConfig::graph500(8, 1_500, 19));
        let x = Matrix::glorot(g.num_nodes(), 10, 23);
        let layer = MultiHeadGatLayer::new(10, 4, 3, 29);
        let mut backend = ReferenceGatBackend { graph: g.clone() };
        let (out, _) = layer.forward(&mut backend, &x, 0.2);
        assert_eq!(out.cols(), 12);

        // Head 1's slice equals running that head as a single-head model.
        let single = Gat { layers: vec![layer.heads[1].clone()], slope: 0.2 };
        let mut backend2 = ReferenceGatBackend { graph: g };
        let (want, _) = single.forward(&mut backend2, &x);
        for r in 0..out.rows() {
            for c in 0..4 {
                assert!(
                    (out.row(r)[4 + c] - want.row(r)[c]).abs() < 1e-6,
                    "head slice mismatch at ({r},{c})"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "need at least one head")]
    fn rejects_zero_heads() {
        let _ = MultiHeadGatLayer::new(4, 4, 0, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{aggregate, AggregateMode};
    use mgg_graph::generators::regular::{path, star};
    use mgg_graph::generators::rmat::{rmat, RmatConfig};

    #[test]
    fn attention_rows_sum_to_one() {
        let g = rmat(&RmatConfig::graph500(8, 2_000, 5));
        let n = g.num_nodes();
        let s_dst: Vec<f32> = (0..n).map(|i| (i % 5) as f32 - 2.0).collect();
        let s_src: Vec<f32> = (0..n).map(|i| (i % 3) as f32).collect();
        let w = reference_attention(&g, &s_dst, &s_src, 0.2);
        for v in 0..n as NodeId {
            let base = g.row_ptr()[v as usize] as usize;
            let deg = g.degree(v);
            if deg == 0 {
                continue;
            }
            let sum: f32 = w[base..base + deg].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {v} sums to {sum}");
            assert!(w[base..base + deg].iter().all(|&a| a >= 0.0));
        }
    }

    #[test]
    fn zero_scores_reduce_to_mean_aggregation() {
        let g = star(6);
        let x = Matrix::glorot(6, 4, 9);
        let zeros = vec![0.0f32; 6];
        let w = reference_attention(&g, &zeros, &zeros, 0.2);
        let got = crate::reference::aggregate_edge_weighted(&g, &x, &w);
        let want = aggregate(&g, &x, AggregateMode::Mean);
        assert!(got.max_abs_diff(&want) < 1e-5);
    }

    #[test]
    fn attention_prefers_high_score_neighbors() {
        // Node 1 of a path has neighbors 0 and 2; boost 2's source score.
        let g = path(3);
        let mut s_src = vec![0.0f32; 3];
        s_src[2] = 5.0;
        let w = reference_attention(&g, &[0.0; 3], &s_src, 0.2);
        let base = g.row_ptr()[1] as usize;
        assert!(w[base + 1] > 0.9, "neighbor 2 should dominate: {}", w[base + 1]);
        assert!(w[base] < 0.1);
    }

    #[test]
    fn gat_forward_shapes_and_finite() {
        let g = rmat(&RmatConfig::graph500(8, 2_000, 11));
        let x = Matrix::glorot(g.num_nodes(), 12, 13);
        let model = Gat::new(12, 8, 3, 17);
        let mut backend = ReferenceGatBackend { graph: g };
        let (logits, timings) = model.forward(&mut backend, &x);
        assert_eq!(logits.cols(), 3);
        assert_eq!(timings.len(), 2);
        assert!(logits.data().iter().all(|v| v.is_finite()));
    }
}

/// Full GAT training (single head, 2 layers) with hand-derived attention
/// backpropagation.
///
/// The chain through each layer `out_v = sum_u alpha(v,u) z_u` with
/// `alpha = softmax_row(leaky(s_dst[v] + s_src[u]))`, `z = h W`,
/// `s_src = z a_src`, `s_dst = z a_dst`:
///
/// ```text
/// dalpha(v,u) = dout_v · z_u
/// dz_u       += alpha(v,u) dout_v                     (weighted adjoint)
/// de          = alpha ⊙ (dalpha - Σ_u alpha dalpha)   (softmax backward)
/// ds_dst[v]   = Σ_u de(v,u) leaky'(e_raw)
/// ds_src[u]  += de(v,u) leaky'(e_raw)                 (scatter)
/// dz         += ds_src ⊗ a_src + ds_dst ⊗ a_dst
/// da_src      = z^T ds_src,  da_dst = z^T ds_dst
/// dW          = h^T dz,  dh = dz W^T
/// ```
pub mod train {
    use super::*;
    use super::reference_attention;
    use crate::reference::{aggregate_edge_weighted, aggregate_edge_weighted_adjoint};
    use crate::tensor::{accuracy, cross_entropy, Adam, Matrix};

    /// Per-layer forward cache for backprop.
    struct LayerCache {
        h: Matrix,
        z: Matrix,
        alpha: Vec<f32>,
        e_raw: Vec<f32>,
        pre_relu: Option<Matrix>,
    }

    fn raw_scores(graph: &CsrGraph, s_dst: &[f32], s_src: &[f32]) -> Vec<f32> {
        let mut e = vec![0.0f32; graph.num_edges()];
        for v in 0..graph.num_nodes() as NodeId {
            let base = graph.row_ptr()[v as usize] as usize;
            for (k, &u) in graph.neighbors(v).iter().enumerate() {
                e[base + k] = s_dst[v as usize] + s_src[u as usize];
            }
        }
        e
    }

    /// Gradients of the attention weights with respect to the raw scores
    /// (softmax backward per destination row), then through LeakyReLU.
    fn attention_backward(
        graph: &CsrGraph,
        alpha: &[f32],
        e_raw: &[f32],
        dalpha: &[f32],
        slope: f32,
    ) -> (Vec<f32>, Vec<f32>) {
        let n = graph.num_nodes();
        let mut ds_dst = vec![0.0f32; n];
        let mut ds_src = vec![0.0f32; n];
        for v in 0..n as NodeId {
            let base = graph.row_ptr()[v as usize] as usize;
            let nbrs = graph.neighbors(v);
            if nbrs.is_empty() {
                continue;
            }
            let dot: f32 = (0..nbrs.len()).map(|k| alpha[base + k] * dalpha[base + k]).sum();
            for (k, &u) in nbrs.iter().enumerate() {
                let de = alpha[base + k] * (dalpha[base + k] - dot);
                let lp = if e_raw[base + k] >= 0.0 { 1.0 } else { slope };
                let d = de * lp;
                ds_dst[v as usize] += d;
                ds_src[u as usize] += d;
            }
        }
        (ds_dst, ds_src)
    }

    /// Result of a GAT training run.
    pub struct GatTrainResult {
        /// Loss after each epoch.
        pub train_losses: Vec<f32>,
        /// Accuracy on the held-out test split after training.
        pub test_accuracy: f64,
    }

    /// Trains a 2-layer single-head GAT on `graph` with full-batch Adam.
    #[allow(clippy::too_many_arguments)]
    pub fn train_gat(
        graph: &CsrGraph,
        x: &Matrix,
        labels: &[u32],
        classes: usize,
        hidden: usize,
        train_mask: &[bool],
        test_mask: &[bool],
        epochs: usize,
        lr: f32,
        seed: u64,
    ) -> GatTrainResult {
        let n = graph.num_nodes();
        let slope = 0.2f32;
        let mut model = Gat::new(x.cols(), hidden, classes, seed);
        let mut opt_w: Vec<Adam> =
            model.layers.iter().map(|l| Adam::new(l.w.data().len(), lr)).collect();
        let mut opt_a: Vec<(Adam, Adam)> = model
            .layers
            .iter()
            .map(|l| (Adam::new(l.a_src.len(), lr), Adam::new(l.a_dst.len(), lr)))
            .collect();
        let batch = train_mask.iter().filter(|&&b| b).count().max(1);
        let mut losses = Vec::with_capacity(epochs);

        for _ in 0..epochs {
            // Forward with caches.
            let mut caches: Vec<LayerCache> = Vec::new();
            let mut h = x.clone();
            for (i, layer) in model.layers.iter().enumerate() {
                let z = h.matmul(&layer.w);
                let dot = |a: &[f32], row: &[f32]| -> f32 {
                    a.iter().zip(row).map(|(&p, &q)| p * q).sum()
                };
                let s_src: Vec<f32> = (0..n).map(|r| dot(&layer.a_src, z.row(r))).collect();
                let s_dst: Vec<f32> = (0..n).map(|r| dot(&layer.a_dst, z.row(r))).collect();
                let e_raw = raw_scores(graph, &s_dst, &s_src);
                let alpha = reference_attention(graph, &s_dst, &s_src, slope);
                let mut out = aggregate_edge_weighted(graph, &z, &alpha);
                let pre = if i + 1 != model.layers.len() {
                    let pre = out.clone();
                    out.relu_inplace();
                    Some(pre)
                } else {
                    None
                };
                caches.push(LayerCache { h: h.clone(), z, alpha, e_raw, pre_relu: pre });
                h = out;
            }
            let mut p = h.clone();
            p.softmax_rows_inplace();
            losses.push(cross_entropy(&p, labels, Some(train_mask)));

            // Loss gradient.
            let mut dout = p;
            for (row, (&y, &m)) in labels.iter().zip(train_mask).enumerate() {
                let o = dout.row_mut(row);
                if m {
                    o[y as usize] -= 1.0;
                    o.iter_mut().for_each(|v| *v /= batch as f32);
                } else {
                    o.iter_mut().for_each(|v| *v = 0.0);
                }
            }

            // Backward through the layers.
            for (i, layer) in model.layers.iter_mut().enumerate().rev() {
                let cache = &caches[i];
                if let Some(pre) = &cache.pre_relu {
                    Matrix::relu_backward_inplace(&mut dout, pre);
                }
                // dalpha(v,u) = dout_v · z_u.
                let mut dalpha = vec![0.0f32; graph.num_edges()];
                for v in 0..n as NodeId {
                    let base = graph.row_ptr()[v as usize] as usize;
                    let dv = dout.row(v as usize);
                    for (k, &u) in graph.neighbors(v).iter().enumerate() {
                        dalpha[base + k] = dv
                            .iter()
                            .zip(cache.z.row(u as usize))
                            .map(|(&a, &b)| a * b)
                            .sum();
                    }
                }
                // dz from the aggregation (weighted adjoint)...
                let mut dz = aggregate_edge_weighted_adjoint(graph, &dout, &cache.alpha);
                // ...plus through the scores.
                let (ds_dst, ds_src) =
                    attention_backward(graph, &cache.alpha, &cache.e_raw, &dalpha, slope);
                let dim_out = cache.z.cols();
                let mut da_src = vec![0.0f32; dim_out];
                let mut da_dst = vec![0.0f32; dim_out];
                for r in 0..n {
                    let zr = cache.z.row(r);
                    let dzr = dz.row_mut(r);
                    for c in 0..dim_out {
                        dzr[c] += ds_src[r] * layer.a_src[c] + ds_dst[r] * layer.a_dst[c];
                        da_src[c] += ds_src[r] * zr[c];
                        da_dst[c] += ds_dst[r] * zr[c];
                    }
                }
                let dw = cache.h.t_matmul(&dz);
                dout = dz.matmul_t(&layer.w);
                opt_w[i].step(&mut layer.w, &dw);
                let (oa, ob) = &mut opt_a[i];
                let mut a_src_m = Matrix::from_vec(1, dim_out, layer.a_src.clone());
                oa.step(&mut a_src_m, &Matrix::from_vec(1, dim_out, da_src));
                layer.a_src = a_src_m.data().to_vec();
                let mut a_dst_m = Matrix::from_vec(1, dim_out, layer.a_dst.clone());
                ob.step(&mut a_dst_m, &Matrix::from_vec(1, dim_out, da_dst));
                layer.a_dst = a_dst_m.data().to_vec();
            }
        }

        // Evaluation.
        let mut backend = ReferenceGatBackend { graph: graph.clone() };
        let (logits, _) = model.forward(&mut backend, x);
        GatTrainResult {
            train_losses: losses,
            test_accuracy: accuracy(&logits, labels, Some(test_mask)),
        }
    }
}

#[cfg(test)]
mod train_tests {
    use super::train::train_gat;
    use super::*;
    use crate::features::{label_features, split_masks};
    use mgg_graph::generators::random::{sbm, SbmConfig};

    #[test]
    fn gat_training_learns_on_communities() {
        let out = sbm(&SbmConfig {
            block_sizes: vec![90, 90],
            avg_degree_in: 10.0,
            avg_degree_out: 1.5,
            seed: 71,
        });
        let x = label_features(&out.labels, 2, 10, 0.5, 72);
        let (tr, _, te) = split_masks(out.graph.num_nodes(), 0.4, 0.2, 73);
        let r = train_gat(&out.graph, &x, &out.labels, 2, 8, &tr, &te, 60, 0.01, 74);
        let first = r.train_losses[0];
        let last = *r.train_losses.last().unwrap();
        assert!(last < 0.7 * first, "loss {first} -> {last}");
        assert!(r.test_accuracy > 0.75, "acc {}", r.test_accuracy);
    }

    #[test]
    fn gat_gradient_check_attention_path() {
        // Numerically verify d(loss)/d(a_src) on a tiny graph — the
        // trickiest path (through softmax attention).
        use crate::reference::aggregate_edge_weighted;
        use crate::tensor::{cross_entropy, Matrix};
        let out = sbm(&SbmConfig {
            block_sizes: vec![12, 12],
            avg_degree_in: 5.0,
            avg_degree_out: 1.0,
            seed: 81,
        });
        let g = out.graph;
        let n = g.num_nodes();
        let x = label_features(&out.labels, 2, 5, 0.8, 82);
        let y = out.labels.clone();
        let mask = vec![true; n];
        let w = Matrix::glorot(5, 2, 1);
        let a_src0: Vec<f32> = Matrix::glorot(1, 2, 2).data().to_vec();
        let a_dst: Vec<f32> = Matrix::glorot(1, 2, 3).data().to_vec();
        let slope = 0.2;

        let loss = |a_src: &[f32]| -> f64 {
            let z = x.matmul(&w);
            let dot = |a: &[f32], row: &[f32]| -> f32 {
                a.iter().zip(row).map(|(&p, &q)| p * q).sum()
            };
            let s_src: Vec<f32> = (0..n).map(|r| dot(a_src, z.row(r))).collect();
            let s_dst: Vec<f32> = (0..n).map(|r| dot(&a_dst, z.row(r))).collect();
            let alpha = reference_attention(&g, &s_dst, &s_src, slope);
            let logits = aggregate_edge_weighted(&g, &z, &alpha);
            let mut p = logits;
            p.softmax_rows_inplace();
            cross_entropy(&p, &y, Some(&mask)) as f64
        };

        // Analytic via the training internals: replicate one backward.
        let z = x.matmul(&w);
        let dotf = |a: &[f32], row: &[f32]| -> f32 {
            a.iter().zip(row).map(|(&p, &q)| p * q).sum()
        };
        let s_src: Vec<f32> = (0..n).map(|r| dotf(&a_src0, z.row(r))).collect();
        let s_dst: Vec<f32> = (0..n).map(|r| dotf(&a_dst, z.row(r))).collect();
        let alpha = reference_attention(&g, &s_dst, &s_src, slope);
        let logits = aggregate_edge_weighted(&g, &z, &alpha);
        let mut p = logits;
        p.softmax_rows_inplace();
        let mut dout = p;
        for (row, &yy) in y.iter().enumerate() {
            let o = dout.row_mut(row);
            o[yy as usize] -= 1.0;
            o.iter_mut().for_each(|v| *v /= n as f32);
        }
        // dalpha and backward through softmax+leaky to ds_src.
        let mut dalpha = vec![0.0f32; g.num_edges()];
        let mut e_raw = vec![0.0f32; g.num_edges()];
        for v in 0..n as u32 {
            let base = g.row_ptr()[v as usize] as usize;
            for (k, &u) in g.neighbors(v).iter().enumerate() {
                e_raw[base + k] = s_dst[v as usize] + s_src[u as usize];
                dalpha[base + k] = dout
                    .row(v as usize)
                    .iter()
                    .zip(z.row(u as usize))
                    .map(|(&a, &b)| a * b)
                    .sum();
            }
        }
        let mut ds_src = vec![0.0f32; n];
        for v in 0..n as u32 {
            let base = g.row_ptr()[v as usize] as usize;
            let nbrs = g.neighbors(v);
            if nbrs.is_empty() {
                continue;
            }
            let dsum: f32 =
                (0..nbrs.len()).map(|k| alpha[base + k] * dalpha[base + k]).sum();
            for (k, &u) in nbrs.iter().enumerate() {
                let de = alpha[base + k] * (dalpha[base + k] - dsum);
                let lp = if e_raw[base + k] >= 0.0 { 1.0 } else { slope };
                ds_src[u as usize] += de * lp;
            }
        }
        let mut da_src = [0.0f32; 2];
        for (r, &ds) in ds_src.iter().enumerate() {
            for (c, d) in da_src.iter_mut().enumerate() {
                *d += ds * z.row(r)[c];
            }
        }

        let eps = 1e-3f32;
        for c in 0..2 {
            let mut ap = a_src0.clone();
            ap[c] += eps;
            let mut am = a_src0.clone();
            am[c] -= eps;
            let num = (loss(&ap) - loss(&am)) / (2.0 * eps as f64);
            let ana = da_src[c] as f64;
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + ana.abs()),
                "attention grad mismatch at {c}: numeric {num} analytic {ana}"
            );
        }
    }
}
