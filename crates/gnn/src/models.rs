//! GNN model definitions and their dense-side cost model.
//!
//! Models are parameterized over an [`Aggregator`], the one operation that
//! differs between execution engines: the CPU reference, MGG's pipelined
//! multi-GPU kernel, the UVM baseline, and so on all plug in here. The
//! dense side (weight multiplies, activations) is functionally computed on
//! the CPU and *timed* with [`DenseCostModel`], standing in for cuBLAS as
//! the paper does (§5 "Platforms & Tools").

use crate::reference::AggregateMode;
use crate::tensor::Matrix;

/// The pluggable sparse-aggregation engine.
pub trait Aggregator {
    /// Aggregates neighbor rows of `x`; returns the result and the
    /// simulated duration in nanoseconds.
    fn aggregate(&mut self, x: &Matrix) -> (Matrix, u64);

    /// The combination rule this engine was built for.
    fn mode(&self) -> AggregateMode;

    /// Aggregates values without timing. Simulated engines override this
    /// to skip the timing replay — useful when the caller already knows
    /// the (deterministic) duration for this dimension, e.g. a training
    /// loop running hundreds of structurally identical epochs.
    fn aggregate_only(&mut self, x: &Matrix) -> Matrix {
        self.aggregate(x).0
    }
}

/// Analytic timing for dense operations on the simulated platform.
#[derive(Debug, Clone, Copy)]
pub struct DenseCostModel {
    /// Sustained fp32 FLOPs per nanosecond per GPU (A100 peak is ~19.5e3;
    /// real GEMMs at GNN sizes sustain far less).
    pub flops_per_ns_per_gpu: f64,
    /// GPUs sharing the (row-partitioned) dense work.
    pub num_gpus: usize,
    /// Launch overhead per dense kernel, nanoseconds.
    pub launch_ns: u64,
}

impl DenseCostModel {
    /// Default for `n` A100s.
    pub fn a100(num_gpus: usize) -> Self {
        DenseCostModel { flops_per_ns_per_gpu: 9_000.0, num_gpus: num_gpus.max(1), launch_ns: 6_000 }
    }

    /// Simulated time of an `m x k @ k x n` GEMM row-partitioned over GPUs.
    pub fn gemm_ns(&self, m: usize, k: usize, n: usize) -> u64 {
        let flops = 2.0 * m as f64 * k as f64 * n as f64;
        (flops / (self.flops_per_ns_per_gpu * self.num_gpus as f64)) as u64 + self.launch_ns
    }

    /// Simulated time of an elementwise op over `m x n`.
    pub fn elementwise_ns(&self, m: usize, n: usize) -> u64 {
        let elems = m as f64 * n as f64;
        (elems / (self.flops_per_ns_per_gpu * 0.25 * self.num_gpus as f64)) as u64
            + self.launch_ns
    }
}

/// Per-layer simulated timing breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LayerTiming {
    /// Simulated time in the sparse aggregation.
    pub aggregate_ns: u64,
    /// Simulated time in the dense matmuls/activations.
    pub dense_ns: u64,
}

impl LayerTiming {
    /// Total of both phases.
    pub fn total_ns(&self) -> u64 {
        self.aggregate_ns + self.dense_ns
    }
}

/// Which paper model a configuration corresponds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// 2-layer GCN, 16 hidden dims (§5, Equation 4).
    Gcn,
    /// 5-layer GIN, 64 hidden dims (§5, Equation 5).
    Gin,
}

impl ModelKind {
    /// Aggregation rule the model's layers use.
    pub fn aggregate_mode(&self) -> AggregateMode {
        match self {
            ModelKind::Gcn => AggregateMode::GcnNorm,
            ModelKind::Gin => AggregateMode::Sum,
        }
    }

    /// Number of aggregation layers.
    pub fn num_layers(&self) -> usize {
        match self {
            ModelKind::Gcn => 2,
            ModelKind::Gin => 5,
        }
    }

    /// Hidden dimension from the paper's settings.
    pub fn hidden_dim(&self) -> usize {
        match self {
            ModelKind::Gcn => 16,
            ModelKind::Gin => 64,
        }
    }
}

/// The 2-layer GCN of Equation 4: `Z = softmax(Â ReLU(Â X W1) W2)`
/// (softmax is applied by the loss).
#[derive(Debug, Clone)]
pub struct Gcn {
    /// First-layer weights.
    pub w1: Matrix,
    /// Second-layer weights.
    pub w2: Matrix,
}

impl Gcn {
    /// Glorot-initialized GCN.
    pub fn new(in_dim: usize, hidden: usize, classes: usize, seed: u64) -> Self {
        Gcn {
            w1: Matrix::glorot(in_dim, hidden, seed),
            w2: Matrix::glorot(hidden, classes, seed.wrapping_add(1)),
        }
    }

    /// Paper configuration (16 hidden dims).
    pub fn paper(in_dim: usize, classes: usize, seed: u64) -> Self {
        Self::new(in_dim, ModelKind::Gcn.hidden_dim(), classes, seed)
    }

    /// Full forward pass; returns logits and per-layer timings.
    ///
    /// Each layer exploits the linearity of GCN aggregation to pick the
    /// cheaper operand order (the standard GNN-system optimization): when
    /// the weight multiply *shrinks* the embedding (`in_dim > out_dim`),
    /// it transforms first and aggregates the narrow result — e.g.
    /// Reddit's 602-dim inputs aggregate at 16 dims, which is what makes
    /// fine-grained remote access affordable at all.
    pub fn forward(
        &self,
        agg: &mut dyn Aggregator,
        x: &Matrix,
        cost: &DenseCostModel,
    ) -> (Matrix, Vec<LayerTiming>) {
        debug_assert_eq!(agg.mode(), AggregateMode::GcnNorm, "GCN needs GcnNorm aggregation");
        let n = x.rows();
        let layer = |agg: &mut dyn Aggregator, h: &Matrix, w: &Matrix| -> (Matrix, LayerTiming) {
            let dense_ns = cost.gemm_ns(n, h.cols(), w.cols());
            if h.cols() > w.cols() {
                // Transform first: aggregate the narrow embedding.
                let hw = h.matmul(w);
                let (out, agg_ns) = agg.aggregate(&hw);
                (out, LayerTiming { aggregate_ns: agg_ns, dense_ns })
            } else {
                let (a, agg_ns) = agg.aggregate(h);
                (a.matmul(w), LayerTiming { aggregate_ns: agg_ns, dense_ns })
            }
        };
        let (mut h1, mut t1) = layer(agg, x, &self.w1);
        h1.relu_inplace();
        t1.dense_ns += cost.elementwise_ns(n, self.w1.cols());
        let (logits, t2) = layer(agg, &h1, &self.w2);
        (logits, vec![t1, t2])
    }
}

/// One GIN layer: `h' = MLP((1 + eps) * h + sum_neighbors h_u)` with a
/// two-linear MLP (Equation 5).
#[derive(Debug, Clone)]
pub struct GinLayer {
    /// The learnable self-loop weight `eps`.
    pub eps: f32,
    /// First MLP linear.
    pub w1: Matrix,
    /// Second MLP linear.
    pub w2: Matrix,
}

/// The 5-layer GIN of §5 plus a linear classifier head.
#[derive(Debug, Clone)]
pub struct Gin {
    /// The five GIN layers.
    pub layers: Vec<GinLayer>,
    /// Linear classifier head.
    pub head: Matrix,
}

impl Gin {
    /// Glorot-initialized GIN with `num_layers` layers of width `hidden`.
    pub fn new(
        in_dim: usize,
        hidden: usize,
        classes: usize,
        num_layers: usize,
        seed: u64,
    ) -> Self {
        assert!(num_layers >= 1, "need at least one layer");
        let mut layers = Vec::with_capacity(num_layers);
        let mut d = in_dim;
        for l in 0..num_layers {
            layers.push(GinLayer {
                eps: 0.0,
                w1: Matrix::glorot(d, hidden, seed.wrapping_add(2 * l as u64)),
                w2: Matrix::glorot(hidden, hidden, seed.wrapping_add(2 * l as u64 + 1)),
            });
            d = hidden;
        }
        Gin { layers, head: Matrix::glorot(hidden, classes, seed.wrapping_add(999)) }
    }

    /// Paper configuration (5 layers, 64 hidden dims).
    pub fn paper(in_dim: usize, classes: usize, seed: u64) -> Self {
        Self::new(in_dim, ModelKind::Gin.hidden_dim(), classes, ModelKind::Gin.num_layers(), seed)
    }

    /// Full forward pass; returns logits and per-layer timings (the head
    /// GEMM is folded into the last layer's dense time).
    pub fn forward(
        &self,
        agg: &mut dyn Aggregator,
        x: &Matrix,
        cost: &DenseCostModel,
    ) -> (Matrix, Vec<LayerTiming>) {
        debug_assert_eq!(agg.mode(), AggregateMode::Sum, "GIN needs Sum aggregation");
        let n = x.rows();
        let mut h = x.clone();
        let mut timings = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let (mut a, t_agg) = agg.aggregate(&h);
            // (1 + eps) * h + neighbor sum.
            a.axpy(1.0 + layer.eps, &h);
            let mut z = a.matmul(&layer.w1);
            z.relu_inplace();
            let out = z.matmul(&layer.w2);
            let dense = cost.gemm_ns(n, h.cols(), layer.w1.cols())
                + cost.elementwise_ns(n, layer.w1.cols())
                + cost.gemm_ns(n, layer.w1.cols(), layer.w2.cols());
            timings.push(LayerTiming { aggregate_ns: t_agg, dense_ns: dense });
            h = out;
        }
        let logits = h.matmul(&self.head);
        if let Some(last) = timings.last_mut() {
            last.dense_ns += cost.gemm_ns(n, h.cols(), self.head.cols());
        }
        (logits, timings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{aggregate, AggregateMode, ReferenceAggregator};
    use mgg_graph::generators::regular::ring;

    #[test]
    fn dense_cost_scales_with_flops_and_gpus() {
        let c1 = DenseCostModel::a100(1);
        let c4 = DenseCostModel::a100(4);
        let small = c1.gemm_ns(1_000, 602, 64);
        let big = c1.gemm_ns(4_000, 602, 64);
        // Compute scales 4x; the fixed launch overhead dampens the ratio.
        assert!(big > 2 * small, "big={big} small={small}");
        let quad = 4 * (small - c1.launch_ns) + c1.launch_ns;
        assert!((big as i64 - quad as i64).abs() <= 8, "big={big} quad={quad}");
        assert!(c4.gemm_ns(4_000, 602, 64) < big);
    }

    #[test]
    fn gcn_forward_matches_manual_composition() {
        let g = ring(6);
        let x = Matrix::glorot(6, 4, 3);
        let model = Gcn::new(4, 8, 3, 5);
        let mut agg = ReferenceAggregator { graph: g.clone(), mode: AggregateMode::GcnNorm };
        let (logits, timings) = model.forward(&mut agg, &x, &DenseCostModel::a100(1));
        assert_eq!(logits.rows(), 6);
        assert_eq!(logits.cols(), 3);
        assert_eq!(timings.len(), 2);

        // Manual: logits = Â relu(Â x W1) W2.
        let a1 = aggregate(&g, &x, AggregateMode::GcnNorm);
        let mut h1 = a1.matmul(&model.w1);
        h1.relu_inplace();
        let a2 = aggregate(&g, &h1, AggregateMode::GcnNorm);
        let want = a2.matmul(&model.w2);
        assert!(logits.max_abs_diff(&want) < 1e-5);
    }

    #[test]
    fn gin_forward_shapes_and_layer_count() {
        let g = ring(5);
        let x = Matrix::glorot(5, 7, 11);
        let model = Gin::paper(7, 4, 2);
        let mut agg = ReferenceAggregator { graph: g, mode: AggregateMode::Sum };
        let (logits, timings) = model.forward(&mut agg, &x, &DenseCostModel::a100(2));
        assert_eq!(logits.rows(), 5);
        assert_eq!(logits.cols(), 4);
        assert_eq!(timings.len(), 5);
        assert!(timings.iter().all(|t| t.dense_ns > 0));
    }

    #[test]
    fn gin_eps_shifts_self_contribution() {
        let g = mgg_graph::generators::regular::path(2);
        let x = Matrix::from_vec(2, 1, vec![1.0, 2.0]);
        let mut model = Gin::new(1, 1, 1, 1, 1);
        // Make the MLP identity-ish: w1 = w2 = [1], head = [1].
        model.layers[0].w1 = Matrix::from_vec(1, 1, vec![1.0]);
        model.layers[0].w2 = Matrix::from_vec(1, 1, vec![1.0]);
        model.head = Matrix::from_vec(1, 1, vec![1.0]);
        let cost = DenseCostModel::a100(1);
        let mut agg = ReferenceAggregator {
            graph: g.clone(),
            mode: AggregateMode::Sum,
        };
        model.layers[0].eps = 0.0;
        let (z0, _) = model.forward(&mut agg, &x, &cost);
        model.layers[0].eps = 1.0;
        let (z1, _) = model.forward(&mut agg, &x, &cost);
        // Node 0: eps=0 -> 2 + 1 = 3; eps=1 -> 2 + 2 = 4.
        assert!((z0.row(0)[0] - 3.0).abs() < 1e-6);
        assert!((z1.row(0)[0] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn model_kind_paper_settings() {
        assert_eq!(ModelKind::Gcn.num_layers(), 2);
        assert_eq!(ModelKind::Gcn.hidden_dim(), 16);
        assert_eq!(ModelKind::Gin.num_layers(), 5);
        assert_eq!(ModelKind::Gin.hidden_dim(), 64);
        assert_eq!(ModelKind::Gcn.aggregate_mode(), AggregateMode::GcnNorm);
        assert_eq!(ModelKind::Gin.aggregate_mode(), AggregateMode::Sum);
    }
}

/// One GraphSAGE layer (mean aggregator): `h' = relu(W_self·h + W_neigh·mean(h_N))`.
///
/// The paper lists GraphSAGE among the GNNs whose backbone is GCN (§5);
/// it runs on the same engines with [`AggregateMode::Mean`].
#[derive(Debug, Clone)]
pub struct SageLayer {
    /// Weights applied to the node's own features.
    pub w_self: Matrix,
    /// Weights applied to the mean-aggregated neighborhood.
    pub w_neigh: Matrix,
}

/// A 2-layer GraphSAGE model with a linear head folded into layer 2.
#[derive(Debug, Clone)]
pub struct Sage {
    /// The two layers, hidden then output.
    pub layers: Vec<SageLayer>,
}

impl Sage {
    /// Glorot-initialized GraphSAGE: `in_dim -> hidden -> classes`.
    pub fn new(in_dim: usize, hidden: usize, classes: usize, seed: u64) -> Self {
        Sage {
            layers: vec![
                SageLayer {
                    w_self: Matrix::glorot(in_dim, hidden, seed),
                    w_neigh: Matrix::glorot(in_dim, hidden, seed.wrapping_add(1)),
                },
                SageLayer {
                    w_self: Matrix::glorot(hidden, classes, seed.wrapping_add(2)),
                    w_neigh: Matrix::glorot(hidden, classes, seed.wrapping_add(3)),
                },
            ],
        }
    }

    /// Full forward pass; returns logits and per-layer timings.
    pub fn forward(
        &self,
        agg: &mut dyn Aggregator,
        x: &Matrix,
        cost: &DenseCostModel,
    ) -> (Matrix, Vec<LayerTiming>) {
        debug_assert_eq!(agg.mode(), AggregateMode::Mean, "GraphSAGE needs Mean aggregation");
        let n = x.rows();
        let mut h = x.clone();
        let mut timings = Vec::with_capacity(self.layers.len());
        for (i, layer) in self.layers.iter().enumerate() {
            let (m, agg_ns) = agg.aggregate(&h);
            let mut out = h.matmul(&layer.w_self);
            let neigh = m.matmul(&layer.w_neigh);
            out.axpy(1.0, &neigh);
            let is_last = i + 1 == self.layers.len();
            if !is_last {
                out.relu_inplace();
            }
            let dense_ns = 2 * cost.gemm_ns(n, h.cols(), layer.w_self.cols())
                + cost.elementwise_ns(n, layer.w_self.cols());
            timings.push(LayerTiming { aggregate_ns: agg_ns, dense_ns });
            h = out;
        }
        (h, timings)
    }
}

#[cfg(test)]
mod sage_tests {
    use super::*;
    use crate::reference::{aggregate, AggregateMode, ReferenceAggregator};
    use mgg_graph::generators::regular::{ring, star};

    #[test]
    fn sage_forward_shapes() {
        let g = ring(8);
        let x = Matrix::glorot(8, 6, 3);
        let model = Sage::new(6, 5, 3, 7);
        let mut agg = ReferenceAggregator { graph: g, mode: AggregateMode::Mean };
        let (logits, timings) = model.forward(&mut agg, &x, &DenseCostModel::a100(2));
        assert_eq!(logits.rows(), 8);
        assert_eq!(logits.cols(), 3);
        assert_eq!(timings.len(), 2);
    }

    #[test]
    fn sage_layer_matches_manual_composition() {
        let g = star(5);
        let x = Matrix::glorot(5, 4, 11);
        let model = Sage::new(4, 3, 2, 13);
        let mut agg = ReferenceAggregator { graph: g.clone(), mode: AggregateMode::Mean };
        let (got, _) = model.forward(&mut agg, &x, &DenseCostModel::a100(1));

        // Manual composition of the same two layers.
        let l = &model.layers[0];
        let m = aggregate(&g, &x, AggregateMode::Mean);
        let mut h = x.matmul(&l.w_self);
        h.axpy(1.0, &m.matmul(&l.w_neigh));
        h.relu_inplace();
        let l = &model.layers[1];
        let m = aggregate(&g, &h, AggregateMode::Mean);
        let mut want = h.matmul(&l.w_self);
        want.axpy(1.0, &m.matmul(&l.w_neigh));
        assert!(got.max_abs_diff(&want) < 1e-5);
    }
}
