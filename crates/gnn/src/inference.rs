//! Classification evaluation utilities beyond plain accuracy.

use crate::tensor::Matrix;

/// Row-wise top-`k` predicted class indices, most probable first.
pub fn top_k(logits: &Matrix, k: usize) -> Vec<Vec<u32>> {
    let k = k.min(logits.cols());
    (0..logits.rows())
        .map(|r| {
            let mut idx: Vec<u32> = (0..logits.cols() as u32).collect();
            idx.sort_by(|&a, &b| {
                logits.row(r)[b as usize]
                    .partial_cmp(&logits.row(r)[a as usize])
                    .expect("no NaN logits")
            });
            idx.truncate(k);
            idx
        })
        .collect()
}

/// Fraction of rows whose label appears in the top-`k` predictions.
pub fn top_k_accuracy(logits: &Matrix, labels: &[u32], k: usize, mask: Option<&[bool]>) -> f64 {
    assert_eq!(logits.rows(), labels.len(), "one label per row");
    let preds = top_k(logits, k);
    let mut hit = 0usize;
    let mut count = 0usize;
    for (r, &y) in labels.iter().enumerate() {
        if let Some(m) = mask {
            if !m[r] {
                continue;
            }
        }
        count += 1;
        if preds[r].contains(&y) {
            hit += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        hit as f64 / count as f64
    }
}

/// A `classes x classes` confusion matrix: `m[actual][predicted]`.
pub fn confusion_matrix(
    logits: &Matrix,
    labels: &[u32],
    classes: usize,
    mask: Option<&[bool]>,
) -> Vec<Vec<u64>> {
    assert_eq!(logits.rows(), labels.len(), "one label per row");
    let mut m = vec![vec![0u64; classes]; classes];
    for (r, &y) in labels.iter().enumerate() {
        if let Some(mk) = mask {
            if !mk[r] {
                continue;
            }
        }
        let row = logits.row(r);
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN logits"))
            .map(|(i, _)| i)
            .unwrap_or(0);
        m[y as usize][pred] += 1;
    }
    m
}

/// Macro-averaged F1 over classes (classes with no support are skipped).
pub fn macro_f1(confusion: &[Vec<u64>]) -> f64 {
    let classes = confusion.len();
    let mut f1_sum = 0.0f64;
    let mut counted = 0usize;
    for (c, row) in confusion.iter().enumerate() {
        let tp = row[c] as f64;
        let actual: u64 = row.iter().sum();
        let predicted: u64 = (0..classes).map(|r| confusion[r][c]).sum();
        if actual == 0 {
            continue;
        }
        counted += 1;
        let recall = tp / actual as f64;
        let precision = if predicted == 0 { 0.0 } else { tp / predicted as f64 };
        if precision + recall > 0.0 {
            f1_sum += 2.0 * precision * recall / (precision + recall);
        }
    }
    if counted == 0 {
        0.0
    } else {
        f1_sum / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logits() -> Matrix {
        // Rows predict classes 0, 1, 1.
        Matrix::from_vec(3, 3, vec![3.0, 1.0, 0.0, 0.0, 2.0, 1.0, 0.5, 4.0, 0.0])
    }

    #[test]
    fn top_k_orders_by_probability() {
        let t = top_k(&logits(), 2);
        assert_eq!(t[0], vec![0, 1]);
        assert_eq!(t[1], vec![1, 2]);
    }

    #[test]
    fn top_k_accuracy_grows_with_k() {
        let labels = [2u32, 2, 1];
        let l = logits();
        let a1 = top_k_accuracy(&l, &labels, 1, None);
        let a2 = top_k_accuracy(&l, &labels, 2, None);
        let a3 = top_k_accuracy(&l, &labels, 3, None);
        assert!(a1 <= a2 && a2 <= a3);
        assert!((a3 - 1.0).abs() < 1e-12, "top-all is always a hit");
    }

    #[test]
    fn confusion_matrix_counts() {
        let labels = [0u32, 1, 0];
        let m = confusion_matrix(&logits(), &labels, 3, None);
        assert_eq!(m[0][0], 1); // row 0: actual 0 predicted 0
        assert_eq!(m[1][1], 1); // row 1: actual 1 predicted 1
        assert_eq!(m[0][1], 1); // row 2: actual 0 predicted 1
    }

    #[test]
    fn perfect_predictions_give_f1_one() {
        let m = vec![vec![5, 0], vec![0, 7]];
        assert!((macro_f1(&m) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_support_classes_are_skipped() {
        let m = vec![vec![4, 0, 0], vec![0, 3, 0], vec![0, 0, 0]];
        assert!((macro_f1(&m) - 1.0).abs() < 1e-12);
    }
}
