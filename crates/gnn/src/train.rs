//! Full-batch GCN training with hand-derived gradients.
//!
//! Powers the Table-5 accuracy-latency study: the same model is trained
//! once with full-graph aggregation and once with per-epoch neighbor
//! sampling, and the test accuracies are compared. Gradients are derived
//! manually for the 2-layer GCN (Equation 4):
//!
//! ```text
//! H1 = Â X          A1 = H1 W1      R = relu(A1)
//! H2 = Â R          Z  = H2 W2      P = softmax(Z)
//! dZ  = (P - Y) / |train|                (masked rows only)
//! dW2 = H2^T dZ      dH2 = dZ W2^T
//! dR  = Â^T dH2      dA1 = dR ⊙ relu'(A1)
//! dW1 = H1^T dA1
//! ```
//!
//! `Â^T` uses [`crate::reference::aggregate_adjoint`], which matters when
//! training on sampled (directed) subgraphs.

use mgg_graph::CsrGraph;

use crate::reference::{aggregate, aggregate_adjoint, AggregateMode};
use crate::sampling::{sample_neighbors, SamplingConfig};
use crate::tensor::{accuracy, cross_entropy, Adam, Matrix};

/// Training hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Weight-init and sampling seed.
    pub seed: u64,
    /// When set, each epoch trains on a freshly sampled subgraph.
    pub sampling: Option<SamplingConfig>,
}

impl TrainConfig {
    /// Paper-style defaults (2-layer GCN with 16 hidden dims).
    pub fn paper(epochs: usize, seed: u64) -> Self {
        TrainConfig { epochs, hidden: 16, lr: 0.01, seed, sampling: None }
    }

    /// Same, with neighbor sampling at the given fanout.
    pub fn paper_sampled(epochs: usize, seed: u64, fanout: usize) -> Self {
        TrainConfig {
            sampling: Some(SamplingConfig { fanout, seed }),
            ..Self::paper(epochs, seed)
        }
    }
}

/// Outcome of one training run.
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// Loss after each epoch.
    pub train_losses: Vec<f32>,
    /// Accuracy on the validation split.
    pub val_accuracy: f64,
    /// Accuracy on the test split.
    pub test_accuracy: f64,
    /// Directed edges aggregated per epoch (full graph or sampled) —
    /// proportional to the aggregation latency the engines would simulate.
    pub edges_per_epoch: usize,
}

/// Trains a 2-layer GCN and evaluates on the masks.
///
/// Evaluation always uses the *full* graph (standard practice for
/// sampled-training GNNs is full-neighborhood inference at test time;
/// the accuracy gap of Table 5 comes from the training signal).
#[allow(clippy::too_many_arguments)]
pub fn train_gcn(
    graph: &CsrGraph,
    x: &Matrix,
    labels: &[u32],
    classes: usize,
    train_mask: &[bool],
    val_mask: &[bool],
    test_mask: &[bool],
    cfg: &TrainConfig,
) -> TrainResult {
    let n = graph.num_nodes();
    assert_eq!(x.rows(), n, "one feature row per node");
    assert_eq!(labels.len(), n, "one label per node");
    let mut w1 = Matrix::glorot(x.cols(), cfg.hidden, cfg.seed);
    let mut w2 = Matrix::glorot(cfg.hidden, classes, cfg.seed.wrapping_add(1));
    let mut opt1 = Adam::new(w1.data().len(), cfg.lr);
    let mut opt2 = Adam::new(w2.data().len(), cfg.lr);
    let batch = train_mask.iter().filter(|&&b| b).count().max(1);
    let mut losses = Vec::with_capacity(cfg.epochs);
    let mut edges_per_epoch = graph.num_edges();

    for epoch in 0..cfg.epochs {
        // Pick this epoch's aggregation graph.
        let sampled;
        let g_train: &CsrGraph = match cfg.sampling {
            Some(sc) => {
                sampled = sample_neighbors(
                    graph,
                    &SamplingConfig { fanout: sc.fanout, seed: sc.seed.wrapping_add(epoch as u64) },
                );
                edges_per_epoch = sampled.num_edges();
                &sampled
            }
            None => graph,
        };

        // Forward.
        let h1 = aggregate(g_train, x, AggregateMode::GcnNorm);
        let a1 = h1.matmul(&w1);
        let mut r = a1.clone();
        r.relu_inplace();
        let h2 = aggregate(g_train, &r, AggregateMode::GcnNorm);
        let z = h2.matmul(&w2);
        let mut p = z.clone();
        p.softmax_rows_inplace();
        losses.push(cross_entropy(&p, labels, Some(train_mask)));

        // Backward.
        let mut dz = p;
        for (row, (&y, &m)) in labels.iter().zip(train_mask).enumerate() {
            let out = dz.row_mut(row);
            if m {
                out[y as usize] -= 1.0;
                for v in out.iter_mut() {
                    *v /= batch as f32;
                }
            } else {
                out.iter_mut().for_each(|v| *v = 0.0);
            }
        }
        let dw2 = h2.t_matmul(&dz);
        let dh2 = dz.matmul_t(&w2);
        let mut dr = aggregate_adjoint(g_train, &dh2, AggregateMode::GcnNorm);
        Matrix::relu_backward_inplace(&mut dr, &a1);
        let dw1 = h1.t_matmul(&dr);

        opt2.step(&mut w2, &dw2);
        opt1.step(&mut w1, &dw1);
    }

    // Full-graph evaluation.
    let h1 = aggregate(graph, x, AggregateMode::GcnNorm);
    let mut r = h1.matmul(&w1);
    r.relu_inplace();
    let h2 = aggregate(graph, &r, AggregateMode::GcnNorm);
    let logits = h2.matmul(&w2);
    TrainResult {
        train_losses: losses,
        val_accuracy: accuracy(&logits, labels, Some(val_mask)),
        test_accuracy: accuracy(&logits, labels, Some(test_mask)),
        edges_per_epoch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{label_features, split_masks};
    use mgg_graph::generators::random::{sbm, SbmConfig};

    fn toy_task() -> (CsrGraph, Matrix, Vec<u32>, Vec<bool>, Vec<bool>, Vec<bool>) {
        let out = sbm(&SbmConfig {
            block_sizes: vec![120, 120],
            avg_degree_in: 10.0,
            avg_degree_out: 1.0,
            seed: 21,
        });
        let x = label_features(&out.labels, 2, 16, 0.8, 22);
        let (tr, va, te) = split_masks(out.graph.num_nodes(), 0.4, 0.2, 23);
        (out.graph, x, out.labels, tr, va, te)
    }

    #[test]
    fn loss_decreases_and_accuracy_beats_chance() {
        let (g, x, y, tr, va, te) = toy_task();
        let res =
            train_gcn(&g, &x, &y, 2, &tr, &va, &te, &TrainConfig::paper(60, 1));
        let first = res.train_losses[0];
        let last = *res.train_losses.last().unwrap();
        assert!(last < 0.7 * first, "loss {first} -> {last}");
        assert!(res.test_accuracy > 0.8, "test accuracy {}", res.test_accuracy);
    }

    #[test]
    fn sampling_reduces_edges_and_costs_accuracy() {
        let (g, x, y, tr, va, te) = toy_task();
        let full = train_gcn(&g, &x, &y, 2, &tr, &va, &te, &TrainConfig::paper(60, 1));
        let sampled = train_gcn(
            &g,
            &x,
            &y,
            2,
            &tr,
            &va,
            &te,
            &TrainConfig::paper_sampled(60, 1, 2),
        );
        assert!(sampled.edges_per_epoch < full.edges_per_epoch);
        assert!(
            sampled.test_accuracy <= full.test_accuracy + 0.02,
            "sampled {} vs full {}",
            sampled.test_accuracy,
            full.test_accuracy
        );
    }

    #[test]
    fn gradient_check_small_gcn() {
        // Numerical gradient check of dW1 on a tiny task.
        let (g, x, y, tr, _, _) = toy_task();
        // Shrink to 30 nodes for the O(params * forward) check... use a
        // sub-problem by masking only a few training nodes.
        let w1 = Matrix::glorot(x.cols(), 4, 3);
        let w2 = Matrix::glorot(4, 2, 4);
        let batch = tr.iter().filter(|&&b| b).count().max(1);

        let loss = |w1: &Matrix| -> f64 {
            let h1 = aggregate(&g, &x, AggregateMode::GcnNorm);
            let a1 = h1.matmul(w1);
            let mut r = a1.clone();
            r.relu_inplace();
            let h2 = aggregate(&g, &r, AggregateMode::GcnNorm);
            let z = h2.matmul(&w2);
            let mut p = z;
            p.softmax_rows_inplace();
            cross_entropy(&p, &y, Some(&tr)) as f64
        };

        // Analytic dW1.
        let h1 = aggregate(&g, &x, AggregateMode::GcnNorm);
        let a1 = h1.matmul(&w1);
        let mut r = a1.clone();
        r.relu_inplace();
        let h2 = aggregate(&g, &r, AggregateMode::GcnNorm);
        let z = h2.matmul(&w2);
        let mut dz = z;
        dz.softmax_rows_inplace();
        for (row, (&yy, &m)) in y.iter().zip(&tr).enumerate() {
            let out = dz.row_mut(row);
            if m {
                out[yy as usize] -= 1.0;
                out.iter_mut().for_each(|v| *v /= batch as f32);
            } else {
                out.iter_mut().for_each(|v| *v = 0.0);
            }
        }
        let dh2 = dz.matmul_t(&w2);
        let mut dr = aggregate_adjoint(&g, &dh2, AggregateMode::GcnNorm);
        Matrix::relu_backward_inplace(&mut dr, &a1);
        let dw1 = h1.t_matmul(&dr);

        // Compare a few coordinates against central differences.
        let eps = 1e-3f32;
        for &(i, j) in &[(0usize, 0usize), (3, 2), (7, 1)] {
            let idx = i * 4 + j;
            let mut wp = w1.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = w1.clone();
            wm.data_mut()[idx] -= eps;
            let num = (loss(&wp) - loss(&wm)) / (2.0 * eps as f64);
            let ana = dw1.data()[idx] as f64;
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + ana.abs()),
                "grad mismatch at ({i},{j}): numeric {num} analytic {ana}"
            );
        }
    }
}

/// Outcome of training on a distributed aggregation engine.
#[derive(Debug, Clone)]
pub struct DistTrainReport {
    /// Functional training outcome (losses, accuracies).
    pub result: TrainResult,
    /// Simulated time of one training epoch (aggregations + dense ops).
    pub epoch_ns: u64,
    /// Simulated time of the whole run (`epochs * epoch_ns`).
    pub total_ns: u64,
}

/// Trains the 2-layer GCN with every aggregation executed by a
/// distributed `engine` (MGG, the UVM design, ...), returning accuracy
/// plus the simulated per-epoch time.
///
/// Each epoch needs four aggregations at the hidden width — two forward
/// (both layers aggregate the transformed, narrow embedding) and two
/// backward (the adjoints of the same operators). The engine must use
/// [`AggregateMode::GcnNorm`] over a **symmetric** graph, so the operator
/// is self-adjoint and the engine serves both directions.
///
/// Timing is measured on the first epoch and reused (the simulation is
/// deterministic and structurally identical across epochs), so the
/// wall-clock cost of this function is one timed epoch plus cheap
/// functional epochs.
#[allow(clippy::too_many_arguments)]
pub fn train_gcn_on_engine(
    engine: &mut dyn crate::models::Aggregator,
    x: &Matrix,
    labels: &[u32],
    classes: usize,
    train_mask: &[bool],
    val_mask: &[bool],
    test_mask: &[bool],
    cfg: &TrainConfig,
    cost: &crate::models::DenseCostModel,
) -> DistTrainReport {
    assert!(cfg.sampling.is_none(), "engine training is full-graph");
    assert_eq!(
        engine.mode(),
        AggregateMode::GcnNorm,
        "engine training requires GcnNorm aggregation"
    );
    let n = x.rows();
    assert_eq!(labels.len(), n, "one label per node");
    let hidden = cfg.hidden;
    let mut w1 = Matrix::glorot(x.cols(), hidden, cfg.seed);
    let mut w2 = Matrix::glorot(hidden, classes, cfg.seed.wrapping_add(1));
    let mut opt1 = Adam::new(w1.data().len(), cfg.lr);
    let mut opt2 = Adam::new(w2.data().len(), cfg.lr);
    let batch = train_mask.iter().filter(|&&b| b).count().max(1);
    let mut losses = Vec::with_capacity(cfg.epochs);
    let mut agg_ns_epoch = 0u64;

    for epoch in 0..cfg.epochs {
        // One aggregation, timed only on the first epoch.
        let mut agg = |m: &Matrix, eng: &mut dyn crate::models::Aggregator| -> Matrix {
            if epoch == 0 {
                let (out, ns) = eng.aggregate(m);
                agg_ns_epoch += ns;
                out
            } else {
                eng.aggregate_only(m)
            }
        };

        // Forward, transform-first on layer 1 (aggregate at `hidden`).
        let z1 = x.matmul(&w1);
        let a1 = agg(&z1, engine);
        let mut r = a1.clone();
        r.relu_inplace();
        let p2 = agg(&r, engine);
        let z = p2.matmul(&w2);
        let mut p = z.clone();
        p.softmax_rows_inplace();
        losses.push(cross_entropy(&p, labels, Some(train_mask)));

        // Backward.
        let mut dz = p;
        for (row, (&y, &m)) in labels.iter().zip(train_mask).enumerate() {
            let out = dz.row_mut(row);
            if m {
                out[y as usize] -= 1.0;
                out.iter_mut().for_each(|v| *v /= batch as f32);
            } else {
                out.iter_mut().for_each(|v| *v = 0.0);
            }
        }
        let dw2 = p2.t_matmul(&dz);
        // dR = Â^T (dZ W2^T); the engine is self-adjoint on symmetric
        // graphs, so the same aggregation serves the transpose.
        let dzw = dz.matmul_t(&w2);
        let mut dr = agg(&dzw, engine);
        Matrix::relu_backward_inplace(&mut dr, &a1);
        // dZ1 = Â^T dR; dW1 = X^T dZ1.
        let dz1 = agg(&dr, engine);
        let dw1 = x.t_matmul(&dz1);

        opt2.step(&mut w2, &dw2);
        opt1.step(&mut w1, &dw1);
    }

    // Dense-op timing per epoch: forward + backward GEMMs and pointwise.
    let in_dim = x.cols();
    let dense_ns = cost.gemm_ns(n, in_dim, hidden)          // X W1
        + cost.elementwise_ns(n, hidden)                    // relu
        + cost.gemm_ns(n, hidden, classes)                  // (ÂR) W2
        + cost.elementwise_ns(n, classes)                   // softmax
        + cost.gemm_ns(n, hidden, classes)                  // dW2
        + cost.gemm_ns(n, classes, hidden)                  // dZ W2^T
        + cost.elementwise_ns(n, hidden)                    // relu'
        + cost.gemm_ns(n, in_dim, hidden);                  // dW1
    let epoch_ns = agg_ns_epoch + dense_ns;

    // Full-graph evaluation (functional only).
    let z1 = x.matmul(&w1);
    let mut r = engine.aggregate_only(&z1);
    r.relu_inplace();
    let p2 = engine.aggregate_only(&r);
    let logits = p2.matmul(&w2);
    DistTrainReport {
        result: TrainResult {
            train_losses: losses,
            val_accuracy: accuracy(&logits, labels, Some(val_mask)),
            test_accuracy: accuracy(&logits, labels, Some(test_mask)),
            edges_per_epoch: 0,
        },
        epoch_ns,
        total_ns: epoch_ns * cfg.epochs as u64,
    }
}

#[cfg(test)]
mod engine_training_tests {
    use super::*;
    use crate::features::{label_features, split_masks};
    use crate::models::DenseCostModel;
    use crate::reference::ReferenceAggregator;
    use mgg_graph::generators::random::{sbm, SbmConfig};

    #[test]
    fn engine_training_learns_and_times() {
        let out = sbm(&SbmConfig {
            block_sizes: vec![120, 120],
            avg_degree_in: 10.0,
            avg_degree_out: 1.0,
            seed: 31,
        });
        let x = label_features(&out.labels, 2, 16, 0.6, 32);
        let (tr, va, te) = split_masks(out.graph.num_nodes(), 0.4, 0.2, 33);
        let mut engine = ReferenceAggregator {
            graph: out.graph.clone(),
            mode: AggregateMode::GcnNorm,
        };
        let report = train_gcn_on_engine(
            &mut engine,
            &x,
            &out.labels,
            2,
            &tr,
            &va,
            &te,
            &TrainConfig::paper(60, 41),
            &DenseCostModel::a100(4),
        );
        assert!(report.result.test_accuracy > 0.8, "acc {}", report.result.test_accuracy);
        // The reference engine reports zero aggregation time but the dense
        // cost model still charges the GEMMs.
        assert!(report.epoch_ns > 0);
        assert_eq!(report.total_ns, report.epoch_ns * 60);
        let first = report.result.train_losses[0];
        let last = *report.result.train_losses.last().unwrap();
        assert!(last < 0.7 * first, "loss {first} -> {last}");
    }

    #[test]
    fn engine_training_matches_reference_training_loss_curve() {
        // The transform-first engine path and the aggregate-first
        // reference path are the same math; their loss curves must agree
        // closely despite FP reassociation.
        let out = sbm(&SbmConfig {
            block_sizes: vec![80, 80],
            avg_degree_in: 8.0,
            avg_degree_out: 1.0,
            seed: 41,
        });
        let x = label_features(&out.labels, 2, 12, 0.6, 42);
        let (tr, va, te) = split_masks(out.graph.num_nodes(), 0.4, 0.2, 43);
        let cfg = TrainConfig::paper(25, 44);
        let plain = train_gcn(&out.graph, &x, &out.labels, 2, &tr, &va, &te, &cfg);
        let mut engine = ReferenceAggregator {
            graph: out.graph.clone(),
            mode: AggregateMode::GcnNorm,
        };
        let via_engine = train_gcn_on_engine(
            &mut engine,
            &x,
            &out.labels,
            2,
            &tr,
            &va,
            &te,
            &cfg,
            &DenseCostModel::a100(1),
        );
        for (a, b) in plain.train_losses.iter().zip(&via_engine.result.train_losses) {
            assert!((a - b).abs() < 0.05, "loss curves diverged: {a} vs {b}");
        }
    }
}

/// Trains a GIN (Equation 5) with every aggregation executed by a
/// distributed engine; `eps` is kept fixed at 0 as in the common GIN-0
/// variant. Returns accuracy plus the simulated per-epoch time.
///
/// Per epoch each of the `num_layers` layers costs one forward aggregation
/// and one backward (adjoint) aggregation at its input width, all served
/// by the engine (self-adjoint on symmetric graphs), plus the MLP GEMMs.
#[allow(clippy::too_many_arguments)]
pub fn train_gin_on_engine(
    engine: &mut dyn crate::models::Aggregator,
    x: &Matrix,
    labels: &[u32],
    classes: usize,
    num_layers: usize,
    hidden: usize,
    train_mask: &[bool],
    val_mask: &[bool],
    test_mask: &[bool],
    cfg: &TrainConfig,
    cost: &crate::models::DenseCostModel,
) -> DistTrainReport {
    assert!(cfg.sampling.is_none(), "engine training is full-graph");
    assert_eq!(engine.mode(), AggregateMode::Sum, "GIN uses Sum aggregation");
    assert!(num_layers >= 1, "need at least one layer");
    let n = x.rows();
    assert_eq!(labels.len(), n, "one label per node");

    // Parameters: per layer an MLP (w1: d_in x hidden, w2: hidden x hidden),
    // plus a classifier head.
    let mut w1s: Vec<Matrix> = Vec::new();
    let mut w2s: Vec<Matrix> = Vec::new();
    let mut d = x.cols();
    for l in 0..num_layers {
        w1s.push(Matrix::glorot(d, hidden, cfg.seed.wrapping_add(2 * l as u64)));
        w2s.push(Matrix::glorot(hidden, hidden, cfg.seed.wrapping_add(2 * l as u64 + 1)));
        d = hidden;
    }
    let mut head = Matrix::glorot(hidden, classes, cfg.seed.wrapping_add(999));
    let mut opts1: Vec<Adam> = w1s.iter().map(|w| Adam::new(w.data().len(), cfg.lr)).collect();
    let mut opts2: Vec<Adam> = w2s.iter().map(|w| Adam::new(w.data().len(), cfg.lr)).collect();
    let mut opt_head = Adam::new(head.data().len(), cfg.lr);
    let batch = train_mask.iter().filter(|&&b| b).count().max(1);
    let mut losses = Vec::with_capacity(cfg.epochs);
    let mut agg_ns_epoch = 0u64;

    for epoch in 0..cfg.epochs {
        let mut agg = |m: &Matrix, eng: &mut dyn crate::models::Aggregator| -> Matrix {
            if epoch == 0 {
                let (out, ns) = eng.aggregate(m);
                agg_ns_epoch += ns;
                out
            } else {
                eng.aggregate_only(m)
            }
        };

        // Forward, caching per-layer intermediates for backprop.
        let mut hs: Vec<Matrix> = vec![x.clone()]; // layer inputs
        let mut aggs: Vec<Matrix> = Vec::new(); // a_l = agg(h_l) + h_l
        let mut z1s: Vec<Matrix> = Vec::new(); // pre-ReLU
        for l in 0..num_layers {
            let h = hs.last().expect("non-empty").clone();
            let mut a = agg(&h, engine);
            a.axpy(1.0, &h); // (1 + eps) h with eps = 0
            let z1 = a.matmul(&w1s[l]);
            let mut r = z1.clone();
            r.relu_inplace();
            let out = r.matmul(&w2s[l]);
            aggs.push(a);
            z1s.push(z1);
            hs.push(out);
        }
        let h_last = hs.last().expect("non-empty");
        let z = h_last.matmul(&head);
        let mut p = z.clone();
        p.softmax_rows_inplace();
        losses.push(cross_entropy(&p, labels, Some(train_mask)));

        // Backward.
        let mut dz = p;
        for (row, (&y, &m)) in labels.iter().zip(train_mask).enumerate() {
            let out = dz.row_mut(row);
            if m {
                out[y as usize] -= 1.0;
                out.iter_mut().for_each(|v| *v /= batch as f32);
            } else {
                out.iter_mut().for_each(|v| *v = 0.0);
            }
        }
        let dhead = h_last.t_matmul(&dz);
        let mut dh = dz.matmul_t(&head);
        for l in (0..num_layers).rev() {
            // out = relu(a W1) W2.
            let mut r = z1s[l].clone();
            r.relu_inplace();
            let dw2 = r.t_matmul(&dh);
            let mut dr = dh.matmul_t(&w2s[l]);
            Matrix::relu_backward_inplace(&mut dr, &z1s[l]);
            let dw1 = aggs[l].t_matmul(&dr);
            let da = dr.matmul_t(&w1s[l]);
            // a = agg(h) + h  =>  dh = agg^T(da) + da.
            let mut dh_next = agg(&da, engine);
            dh_next.axpy(1.0, &da);
            opts2[l].step(&mut w2s[l], &dw2);
            opts1[l].step(&mut w1s[l], &dw1);
            dh = dh_next;
        }
        opt_head.step(&mut head, &dhead);
    }

    // Dense timing: two GEMMs + ReLU per layer forward, three GEMMs per
    // layer backward, plus the head.
    let mut dense_ns = 0u64;
    let mut d = x.cols();
    for _ in 0..num_layers {
        dense_ns += cost.gemm_ns(n, d, hidden)
            + cost.elementwise_ns(n, hidden)
            + cost.gemm_ns(n, hidden, hidden) // forward
            + cost.gemm_ns(n, hidden, hidden) // dW2
            + cost.gemm_ns(n, hidden, hidden) // dr
            + cost.gemm_ns(n, d, hidden); // dW1 / da
        d = hidden;
    }
    dense_ns += 2 * cost.gemm_ns(n, hidden, classes);
    let epoch_ns = agg_ns_epoch + dense_ns;

    // Evaluation.
    let mut h = x.clone();
    for l in 0..num_layers {
        let mut a = engine.aggregate_only(&h);
        a.axpy(1.0, &h);
        let mut r = a.matmul(&w1s[l]);
        r.relu_inplace();
        h = r.matmul(&w2s[l]);
    }
    let logits = h.matmul(&head);
    DistTrainReport {
        result: TrainResult {
            train_losses: losses,
            val_accuracy: accuracy(&logits, labels, Some(val_mask)),
            test_accuracy: accuracy(&logits, labels, Some(test_mask)),
            edges_per_epoch: 0,
        },
        epoch_ns,
        total_ns: epoch_ns * cfg.epochs as u64,
    }
}

#[cfg(test)]
mod gin_training_tests {
    use super::*;
    use crate::features::{label_features, split_masks};
    use crate::models::DenseCostModel;
    use crate::reference::ReferenceAggregator;
    use mgg_graph::generators::random::{sbm, SbmConfig};

    #[test]
    fn gin_training_learns_on_communities() {
        let out = sbm(&SbmConfig {
            block_sizes: vec![110, 110],
            avg_degree_in: 10.0,
            avg_degree_out: 1.5,
            seed: 51,
        });
        let x = label_features(&out.labels, 2, 12, 0.5, 52);
        let (tr, va, te) = split_masks(out.graph.num_nodes(), 0.4, 0.2, 53);
        let mut engine =
            ReferenceAggregator { graph: out.graph.clone(), mode: AggregateMode::Sum };
        let report = train_gin_on_engine(
            &mut engine,
            &x,
            &out.labels,
            2,
            3,  // layers
            16, // hidden
            &tr,
            &va,
            &te,
            &TrainConfig { epochs: 80, hidden: 16, lr: 0.005, seed: 54, sampling: None },
            &DenseCostModel::a100(4),
        );
        let first = report.result.train_losses[0];
        let last = *report.result.train_losses.last().unwrap();
        assert!(last < 0.6 * first, "loss {first} -> {last}");
        assert!(report.result.test_accuracy > 0.75, "acc {}", report.result.test_accuracy);
        assert!(report.epoch_ns > 0);
    }

    #[test]
    fn gin_gradient_check_one_layer() {
        // Numerical check of dW1 for a single GIN layer + head.
        let out = sbm(&SbmConfig {
            block_sizes: vec![30, 30],
            avg_degree_in: 6.0,
            avg_degree_out: 1.0,
            seed: 61,
        });
        let g = out.graph;
        let x = label_features(&out.labels, 2, 6, 0.8, 62);
        let y = out.labels.clone();
        let mask = vec![true; g.num_nodes()];
        let w1 = Matrix::glorot(6, 4, 1);
        let w2 = Matrix::glorot(4, 4, 2);
        let head = Matrix::glorot(4, 2, 3);
        let batch = g.num_nodes();

        let forward = |w1: &Matrix| -> (f64, Matrix, Matrix, Matrix) {
            let mut a = crate::reference::aggregate(&g, &x, AggregateMode::Sum);
            a.axpy(1.0, &x);
            let z1 = a.matmul(w1);
            let mut r = z1.clone();
            r.relu_inplace();
            let h = r.matmul(&w2);
            let z = h.matmul(&head);
            let mut p = z;
            p.softmax_rows_inplace();
            (cross_entropy(&p, &y, Some(&mask)) as f64, a, z1, p)
        };

        // Analytic dW1.
        let (_, a, z1, p) = forward(&w1);
        let mut dz = p;
        for (row, &yy) in y.iter().enumerate() {
            let out = dz.row_mut(row);
            out[yy as usize] -= 1.0;
            out.iter_mut().for_each(|v| *v /= batch as f32);
        }
        let dh = dz.matmul_t(&head);
        let mut dr = dh.matmul_t(&w2);
        Matrix::relu_backward_inplace(&mut dr, &z1);
        let dw1 = a.t_matmul(&dr);

        let eps = 1e-3f32;
        for &(i, j) in &[(0usize, 0usize), (3, 2), (5, 1)] {
            let idx = i * 4 + j;
            let mut wp = w1.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = w1.clone();
            wm.data_mut()[idx] -= eps;
            let num = (forward(&wp).0 - forward(&wm).0) / (2.0 * eps as f64);
            let ana = dw1.data()[idx] as f64;
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + ana.abs()),
                "grad mismatch at ({i},{j}): numeric {num} analytic {ana}"
            );
        }
    }
}
