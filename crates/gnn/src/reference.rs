//! Single-address-space reference aggregation.
//!
//! This is the ground truth every distributed engine (MGG, UVM,
//! direct-NVSHMEM, DGCL) must reproduce: a plain CPU sparse-dense multiply
//! over the whole graph. Distributed engines may reassociate floating-point
//! sums, so comparisons use a small tolerance.

use mgg_graph::{CsrGraph, NodeId};

use crate::models::Aggregator;
use crate::tensor::Matrix;

/// Neighbor combination rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateMode {
    /// Plain neighbor sum (GIN's inner sum, Equation 5).
    Sum,
    /// GCN symmetric normalization: `sum_u norm[v] * norm[u] * x[u]` plus
    /// the self term `norm[v]^2 * x[v]` (the self-loop of \hat{A}).
    GcnNorm,
    /// Mean over neighbors (GraphSAGE-mean style, used by the sampling
    /// comparison).
    Mean,
}

/// Aggregates `x` (one row per node) over `graph` in a single pass.
pub fn aggregate(graph: &CsrGraph, x: &Matrix, mode: AggregateMode) -> Matrix {
    assert_eq!(graph.num_nodes(), x.rows(), "one feature row per node");
    let dim = x.cols();
    let mut out = Matrix::zeros(x.rows(), dim);
    let norm = match mode {
        AggregateMode::GcnNorm => graph.gcn_norm(),
        _ => Vec::new(),
    };
    for v in 0..graph.num_nodes() as NodeId {
        let nbrs = graph.neighbors(v);
        let (acc_start, acc_end) = (v as usize * dim, (v as usize + 1) * dim);
        match mode {
            AggregateMode::Sum => {
                for &u in nbrs {
                    let src = x.row(u as usize);
                    let dst = &mut out.data_mut()[acc_start..acc_end];
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d += s;
                    }
                }
            }
            AggregateMode::Mean => {
                let inv = if nbrs.is_empty() { 0.0 } else { 1.0 / nbrs.len() as f32 };
                for &u in nbrs {
                    let src = x.row(u as usize);
                    let dst = &mut out.data_mut()[acc_start..acc_end];
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d += s * inv;
                    }
                }
            }
            AggregateMode::GcnNorm => {
                let nv = norm[v as usize];
                for &u in nbrs {
                    let w = nv * norm[u as usize];
                    let src = x.row(u as usize);
                    let dst = &mut out.data_mut()[acc_start..acc_end];
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d += s * w;
                    }
                }
                // Self-loop term of \hat{A} = A + I.
                let w = nv * nv;
                let src: Vec<f32> = x.row(v as usize).to_vec();
                let dst = &mut out.data_mut()[acc_start..acc_end];
                for (d, s) in dst.iter_mut().zip(src) {
                    *d += s * w;
                }
            }
        }
    }
    out
}

/// Adjoint (transpose) of [`aggregate`]: scatters `g[v]` to every neighbor
/// `u` of `v` with the same coefficients the forward pass used.
///
/// Needed by backpropagation when the aggregation operator is not
/// symmetric — e.g. the per-epoch sampled subgraphs of Table 5, where edge
/// `(v, u)` exists without its mirror.
pub fn aggregate_adjoint(graph: &CsrGraph, g: &Matrix, mode: AggregateMode) -> Matrix {
    assert_eq!(graph.num_nodes(), g.rows(), "one gradient row per node");
    let dim = g.cols();
    let mut out = Matrix::zeros(g.rows(), dim);
    let norm = match mode {
        AggregateMode::GcnNorm => graph.gcn_norm(),
        _ => Vec::new(),
    };
    for v in 0..graph.num_nodes() as NodeId {
        let nbrs = graph.neighbors(v);
        let src: Vec<f32> = g.row(v as usize).to_vec();
        match mode {
            AggregateMode::Sum => {
                for &u in nbrs {
                    let dst = out.row_mut(u as usize);
                    for (d, &s) in dst.iter_mut().zip(&src) {
                        *d += s;
                    }
                }
            }
            AggregateMode::Mean => {
                let inv = if nbrs.is_empty() { 0.0 } else { 1.0 / nbrs.len() as f32 };
                for &u in nbrs {
                    let dst = out.row_mut(u as usize);
                    for (d, &s) in dst.iter_mut().zip(&src) {
                        *d += s * inv;
                    }
                }
            }
            AggregateMode::GcnNorm => {
                let nv = norm[v as usize];
                for &u in nbrs {
                    let w = nv * norm[u as usize];
                    let dst = out.row_mut(u as usize);
                    for (d, &s) in dst.iter_mut().zip(&src) {
                        *d += s * w;
                    }
                }
                let w = nv * nv;
                let dst = out.row_mut(v as usize);
                for (d, &s) in dst.iter_mut().zip(&src) {
                    *d += s * w;
                }
            }
        }
    }
    out
}

/// An [`Aggregator`] backed by the reference implementation (zero simulated
/// time — it represents the ideal single-GPU-unbounded-memory oracle).
#[derive(Debug, Clone)]
pub struct ReferenceAggregator {
    /// The graph aggregated over.
    pub graph: CsrGraph,
    /// Neighbor combination rule (sum, mean, GCN-normalized).
    pub mode: AggregateMode,
}

impl Aggregator for ReferenceAggregator {
    fn aggregate(&mut self, x: &Matrix) -> (Matrix, u64) {
        (aggregate(&self.graph, x, self.mode), 0)
    }

    fn mode(&self) -> AggregateMode {
        self.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgg_graph::generators::regular::{path, star};

    fn feat(n: usize, dim: usize) -> Matrix {
        Matrix::from_vec(n, dim, (0..n * dim).map(|i| (i % 7) as f32 - 3.0).collect())
    }

    #[test]
    fn sum_on_path() {
        // Path 0-1-2: node 1 aggregates x0 + x2.
        let g = path(3);
        let x = Matrix::from_vec(3, 2, vec![1.0, 2.0, 10.0, 20.0, 100.0, 200.0]);
        let out = aggregate(&g, &x, AggregateMode::Sum);
        assert_eq!(out.row(1), &[101.0, 202.0]);
        assert_eq!(out.row(0), &[10.0, 20.0]);
    }

    #[test]
    fn mean_divides_by_degree() {
        let g = star(3); // hub 0 with leaves 1, 2
        let x = Matrix::from_vec(3, 1, vec![0.0, 3.0, 5.0]);
        let out = aggregate(&g, &x, AggregateMode::Mean);
        assert_eq!(out.row(0), &[4.0]);
        assert_eq!(out.row(1), &[0.0]);
    }

    #[test]
    fn mean_of_isolated_node_is_zero() {
        let g = CsrGraph::empty(2);
        let x = feat(2, 3);
        let out = aggregate(&g, &x, AggregateMode::Mean);
        assert!(out.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gcn_norm_includes_self_loop() {
        // Isolated node: output = x * (1/sqrt(1+0))^2 = x.
        let g = CsrGraph::empty(1);
        let x = Matrix::from_vec(1, 2, vec![3.0, -1.0]);
        let out = aggregate(&g, &x, AggregateMode::GcnNorm);
        assert!((out.row(0)[0] - 3.0).abs() < 1e-6);
        assert!((out.row(0)[1] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn gcn_norm_is_symmetric_operator() {
        // For symmetric graphs, the aggregation matrix D^-1/2 (A+I) D^-1/2
        // is symmetric: <Ax, y> == <x, Ay>.
        let g = path(5);
        let x = feat(5, 1);
        let y = Matrix::from_vec(5, 1, vec![2.0, -1.0, 0.5, 3.0, 1.0]);
        let ax = aggregate(&g, &x, AggregateMode::GcnNorm);
        let ay = aggregate(&g, &y, AggregateMode::GcnNorm);
        let dot = |a: &Matrix, b: &Matrix| -> f32 {
            a.data().iter().zip(b.data()).map(|(&p, &q)| p * q).sum()
        };
        assert!((dot(&ax, &y) - dot(&x, &ay)).abs() < 1e-4);
    }

    #[test]
    fn adjoint_matches_forward_on_symmetric_graph() {
        // On a symmetric graph with GcnNorm, the operator is self-adjoint.
        let g = path(6);
        let x = feat(6, 3);
        let fwd = aggregate(&g, &x, AggregateMode::GcnNorm);
        let adj = aggregate_adjoint(&g, &x, AggregateMode::GcnNorm);
        assert!(fwd.max_abs_diff(&adj) < 1e-5);
    }

    #[test]
    fn adjoint_is_true_transpose_on_directed_graph() {
        // Directed edge 0 <- 1 only: forward moves x1 into row 0; adjoint
        // moves g0 into row 1.
        let g = CsrGraph::from_raw(vec![0, 1, 1], vec![1]);
        let x = Matrix::from_vec(2, 1, vec![5.0, 7.0]);
        let fwd = aggregate(&g, &x, AggregateMode::Sum);
        assert_eq!(fwd.data(), &[7.0, 0.0]);
        let adj = aggregate_adjoint(&g, &x, AggregateMode::Sum);
        assert_eq!(adj.data(), &[0.0, 5.0]);
    }

    #[test]
    fn adjoint_inner_product_identity() {
        // <A x, y> == <x, A^T y> for any mode, including Mean on a
        // directed sampled-like graph.
        let g = CsrGraph::from_raw(vec![0, 2, 3, 3], vec![1, 2, 0]);
        let x = feat(3, 2);
        let y = Matrix::from_vec(3, 2, vec![1.0, -2.0, 0.5, 3.0, -1.0, 2.0]);
        for mode in [AggregateMode::Sum, AggregateMode::Mean, AggregateMode::GcnNorm] {
            let ax = aggregate(&g, &x, mode);
            let aty = aggregate_adjoint(&g, &y, mode);
            let dot = |a: &Matrix, b: &Matrix| -> f32 {
                a.data().iter().zip(b.data()).map(|(&p, &q)| p * q).sum()
            };
            assert!(
                (dot(&ax, &y) - dot(&x, &aty)).abs() < 1e-4,
                "adjoint identity failed for {mode:?}"
            );
        }
    }

    #[test]
    fn reference_aggregator_reports_zero_time() {
        let g = path(4);
        let mut r = ReferenceAggregator { graph: g, mode: AggregateMode::Sum };
        let x = feat(4, 2);
        let (_, ns) = Aggregator::aggregate(&mut r, &x);
        assert_eq!(ns, 0);
    }
}

/// Aggregates with a caller-provided weight per directed edge:
/// `out[v] = sum_k w[e_k] * x[u_k]` where `e_k` indexes the graph's flat
/// adjacency. This is the primitive behind attention-style GNNs (GAT):
/// the weights are the per-edge attention coefficients.
pub fn aggregate_edge_weighted(graph: &CsrGraph, x: &Matrix, w: &[f32]) -> Matrix {
    assert_eq!(graph.num_nodes(), x.rows(), "one feature row per node");
    assert_eq!(graph.num_edges(), w.len(), "one weight per directed edge");
    let dim = x.cols();
    let mut out = Matrix::zeros(x.rows(), dim);
    for v in 0..graph.num_nodes() as NodeId {
        let base = graph.row_ptr()[v as usize] as usize;
        let acc_start = v as usize * dim;
        for (k, &u) in graph.neighbors(v).iter().enumerate() {
            let weight = w[base + k];
            let src = x.row(u as usize);
            let dst = &mut out.data_mut()[acc_start..acc_start + dim];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d += weight * s;
            }
        }
    }
    out
}

#[cfg(test)]
mod edge_weighted_tests {
    use super::*;
    use mgg_graph::generators::regular::path;

    #[test]
    fn unit_weights_reduce_to_sum() {
        let g = path(5);
        let x = Matrix::glorot(5, 3, 3);
        let w = vec![1.0f32; g.num_edges()];
        let weighted = aggregate_edge_weighted(&g, &x, &w);
        let plain = aggregate(&g, &x, AggregateMode::Sum);
        assert!(weighted.max_abs_diff(&plain) < 1e-6);
    }

    #[test]
    fn weights_scale_contributions() {
        // Path 0-1-2: node 1's neighbors are 0 and 2 in sorted order.
        let g = path(3);
        let x = Matrix::from_vec(3, 1, vec![1.0, 10.0, 100.0]);
        let mut w = vec![0.0f32; g.num_edges()];
        // Find node 1's edges in the flat adjacency.
        let base = g.row_ptr()[1] as usize;
        w[base] = 2.0; // neighbor 0
        w[base + 1] = 0.5; // neighbor 2
        let out = aggregate_edge_weighted(&g, &x, &w);
        assert!((out.row(1)[0] - (2.0 * 1.0 + 0.5 * 100.0)).abs() < 1e-6);
        assert_eq!(out.row(0)[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "one weight per directed edge")]
    fn weight_length_checked() {
        let g = path(3);
        let x = Matrix::zeros(3, 1);
        let _ = aggregate_edge_weighted(&g, &x, &[1.0]);
    }
}

/// Multi-threaded [`aggregate`] for large graphs: output rows are
/// partitioned into disjoint slices processed on the [`mgg_runtime`]
/// worker pool, so the result is bit-identical to the serial version at
/// any thread count.
pub fn aggregate_parallel(
    graph: &CsrGraph,
    x: &Matrix,
    mode: AggregateMode,
    threads: usize,
) -> Matrix {
    assert_eq!(graph.num_nodes(), x.rows(), "one feature row per node");
    let threads = threads.max(1);
    let n = graph.num_nodes();
    let dim = x.cols();
    if threads == 1 || n < 1024 {
        return aggregate(graph, x, mode);
    }
    let norm = match mode {
        AggregateMode::GcnNorm => graph.gcn_norm(),
        _ => Vec::new(),
    };
    let mut out = Matrix::zeros(n, dim);
    mgg_runtime::with_threads(threads, || {
        // Pool-granularity chunks with a minimum-work floor: tiny chunks
        // pay more in dispatch than they earn in overlap, so the floor
        // collapses small inputs into fewer jobs. Chunk edges never enter
        // the per-row math, so output bits are chunk-size independent.
        let rows_per = mgg_runtime::chunk_len(n, 256);
        let _lbl = mgg_runtime::profile::region_label("gnn.reference");
        mgg_runtime::par_chunks_mut(out.data_mut(), rows_per * dim, |t, chunk| {
            let start = t * rows_per;
            for (r, dst) in chunk.chunks_mut(dim).enumerate() {
                let v = (start + r) as NodeId;
                let nbrs = graph.neighbors(v);
                match mode {
                    AggregateMode::Sum => {
                        for &u in nbrs {
                            for (d, &s) in dst.iter_mut().zip(x.row(u as usize)) {
                                *d += s;
                            }
                        }
                    }
                    AggregateMode::Mean => {
                        let inv = if nbrs.is_empty() { 0.0 } else { 1.0 / nbrs.len() as f32 };
                        for &u in nbrs {
                            for (d, &s) in dst.iter_mut().zip(x.row(u as usize)) {
                                *d += s * inv;
                            }
                        }
                    }
                    AggregateMode::GcnNorm => {
                        let nv = norm[v as usize];
                        for &u in nbrs {
                            let w = nv * norm[u as usize];
                            for (d, &s) in dst.iter_mut().zip(x.row(u as usize)) {
                                *d += s * w;
                            }
                        }
                        let w = nv * nv;
                        for (d, &s) in dst.iter_mut().zip(x.row(v as usize)) {
                            *d += s * w;
                        }
                    }
                }
            }
        })
    });
    out
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use mgg_graph::generators::rmat::{rmat, RmatConfig};

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let g = rmat(&RmatConfig::graph500(11, 20_000, 91));
        let x = Matrix::glorot(g.num_nodes(), 17, 3);
        for mode in [AggregateMode::Sum, AggregateMode::Mean, AggregateMode::GcnNorm] {
            let serial = aggregate(&g, &x, mode);
            for threads in [2, 3, 8] {
                let par = aggregate_parallel(&g, &x, mode, threads);
                assert_eq!(par, serial, "mode {mode:?}, {threads} threads");
            }
        }
    }

    #[test]
    fn small_graphs_fall_back_to_serial() {
        let g = mgg_graph::generators::regular::ring(16);
        let x = Matrix::glorot(16, 4, 1);
        let out = aggregate_parallel(&g, &x, AggregateMode::Sum, 8);
        assert_eq!(out, aggregate(&g, &x, AggregateMode::Sum));
    }
}

/// Adjoint of [`aggregate_edge_weighted`]: scatters `g[v]` to each
/// neighbor `u` with the same per-edge weights
/// (`out[u] += w[e] * g[v]` for every edge `e = (v, u)`).
pub fn aggregate_edge_weighted_adjoint(graph: &CsrGraph, g: &Matrix, w: &[f32]) -> Matrix {
    assert_eq!(graph.num_nodes(), g.rows(), "one gradient row per node");
    assert_eq!(graph.num_edges(), w.len(), "one weight per directed edge");
    let dim = g.cols();
    let mut out = Matrix::zeros(g.rows(), dim);
    for v in 0..graph.num_nodes() as NodeId {
        let base = graph.row_ptr()[v as usize] as usize;
        let src: Vec<f32> = g.row(v as usize).to_vec();
        for (k, &u) in graph.neighbors(v).iter().enumerate() {
            let weight = w[base + k];
            let dst = out.row_mut(u as usize);
            for (d, &s) in dst.iter_mut().zip(&src) {
                *d += weight * s;
            }
        }
    }
    out
}

#[cfg(test)]
mod weighted_adjoint_tests {
    use super::*;
    use mgg_graph::generators::rmat::{rmat, RmatConfig};

    #[test]
    fn weighted_adjoint_inner_product_identity() {
        let g = rmat(&RmatConfig::graph500(7, 600, 3));
        let x = Matrix::glorot(g.num_nodes(), 3, 1);
        let y = Matrix::glorot(g.num_nodes(), 3, 2);
        let w: Vec<f32> = (0..g.num_edges()).map(|i| ((i % 9) as f32) / 4.0 - 1.0).collect();
        let ax = aggregate_edge_weighted(&g, &x, &w);
        let aty = aggregate_edge_weighted_adjoint(&g, &y, &w);
        let dot = |a: &Matrix, b: &Matrix| -> f64 {
            a.data().iter().zip(b.data()).map(|(&p, &q)| (p * q) as f64).sum()
        };
        assert!((dot(&ax, &y) - dot(&x, &aty)).abs() < 1e-2);
    }
}
