//! Unified Virtual Memory (UVM) substrate.
//!
//! Models the CUDA UVM behaviour the paper profiles in §2.2 and competes
//! against in §5.1:
//!
//! * A single virtual address space backed by host memory; data becomes
//!   resident on a GPU only by **page migration** triggered by a GPU-side
//!   **page fault**.
//! * Pages are large (64 KiB migration granularity on modern drivers)
//!   while a node embedding is small (≤ 2.4 KiB for dim-602 floats), so
//!   fault-driven migration wastes most of each page — one of the two UVM
//!   pathologies the paper measures.
//! * Fault servicing has a long fixed latency and limited concurrency, and
//!   the migration itself crosses the *shared* host PCIe path, so fault
//!   pressure grows with GPU count (Figure 3).
//! * Per-GPU residency is capacity-limited with LRU eviction; re-fetching
//!   an evicted page is counted as **thrash**.
//!
//! The model implements [`mgg_sim::PageHandler`], so any kernel trace
//! containing [`mgg_sim::WarpOp::PageAccess`] operations runs against it.

#![deny(missing_docs)]

use std::collections::HashMap;

use mgg_sim::{Interconnect, MultiServerQueue, PageAccessOutcome, PageHandler, SimTime};
use serde::Serialize;

/// Where a faulted page migrates from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationSource {
    /// Pages are staged in host memory; every migration crosses the
    /// shared PCIe path (the §2.2 CPU-to-GPU regime, Figure 3).
    Host,
    /// Pages are GPU-resident, interleaved round-robin across devices;
    /// migrations (read-duplications) cross the GPU fabric, with the
    /// page's home GPU always holding it. This is the steady-state regime
    /// for data that fits in aggregate device memory.
    PeerInterleaved,
}

/// Configuration of the UVM model.
#[derive(Debug, Clone, Copy)]
pub struct UvmConfig {
    /// Migration granularity in bytes (CUDA migrates 64 KiB blocks).
    pub page_bytes: u64,
    /// Resident-page capacity per GPU.
    pub capacity_pages: usize,
    /// Fixed driver latency per fault, in nanoseconds.
    pub fault_latency_ns: u64,
    /// Faults a GPU can service concurrently (the driver batches fault
    /// groups, so this can exceed a handful).
    pub fault_concurrency: u32,
    /// Consecutive pages fetched per fault (batch prefetching, the
    /// ASPLOS'20-style optimization the paper cites; 1 disables it).
    pub prefetch_batch: u32,
    /// Migration path.
    pub source: MigrationSource,
    /// Access-counter threshold (A100 behaviour): a page migrates only on
    /// its `N`-th touch from a GPU; earlier touches are serviced as
    /// direct remote accesses without migration. `1` migrates on first
    /// touch (pre-Ampere behaviour).
    pub migrate_after_touches: u32,
}

impl UvmConfig {
    /// Defaults matching the DGX-A100 model in `mgg-sim`, host staging.
    pub fn a100(capacity_pages: usize) -> Self {
        UvmConfig {
            page_bytes: 64 * 1024,
            capacity_pages,
            fault_latency_ns: 25_000,
            fault_concurrency: 8,
            prefetch_batch: 1,
            source: MigrationSource::Host,
            migrate_after_touches: 1,
        }
    }

    /// Same, with batched prefetching enabled.
    pub fn a100_batched(capacity_pages: usize, batch: u32) -> Self {
        UvmConfig { prefetch_batch: batch.max(1), ..Self::a100(capacity_pages) }
    }

    /// GPU-resident configuration for data that fits in aggregate device
    /// memory: peer-to-peer migration and deeper fault batching. The page
    /// size is scaled to 16 KiB so that the page-to-embedding-table ratio
    /// of the full-size datasets is preserved at the benchmark scale, and
    /// the driver's tree prefetcher pulls 4-page (64 KiB) regions per
    /// fault, as CUDA's heuristic does.
    pub fn a100_resident(capacity_pages: usize) -> Self {
        UvmConfig {
            page_bytes: 16 * 1024,
            capacity_pages,
            fault_latency_ns: 25_000,
            fault_concurrency: 16,
            prefetch_batch: 4,
            source: MigrationSource::PeerInterleaved,
            migrate_after_touches: 1,
        }
    }
}

/// Counters reported per GPU.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct UvmGpuStats {
    /// Page faults taken.
    pub faults: u64,
    /// Page accesses that hit a resident page.
    pub hits: u64,
    /// Total nanoseconds spent inside fault handling (service + wait).
    pub fault_duration_ns: u64,
    /// Bytes migrated from host to this GPU.
    pub migrated_bytes: u64,
    /// Pages evicted.
    pub evictions: u64,
    /// Faults on pages previously evicted from this GPU (thrash).
    pub thrash_refetches: u64,
    /// Touches serviced as direct remote accesses below the
    /// access-counter migration threshold.
    pub remote_accesses: u64,
}

/// Aggregate UVM statistics.
#[derive(Debug, Clone, Default, Serialize)]
pub struct UvmStats {
    /// Per-GPU fault/migration counters, indexed by PE.
    pub per_gpu: Vec<UvmGpuStats>,
}

impl UvmStats {
    /// Total faults across GPUs.
    pub fn total_faults(&self) -> u64 {
        self.per_gpu.iter().map(|g| g.faults).sum()
    }

    /// Total time spent in fault handling across GPUs.
    pub fn total_fault_duration_ns(&self) -> u64 {
        self.per_gpu.iter().map(|g| g.fault_duration_ns).sum()
    }
}

#[derive(Debug)]
struct PageCache {
    /// page -> (ready time, LRU tick).
    resident: HashMap<u64, (SimTime, u64)>,
    /// Pages ever evicted, for thrash accounting.
    evicted_once: HashMap<u64, u32>,
    /// page -> access count (for the access-counter threshold).
    touches: HashMap<u64, u32>,
    tick: u64,
}

impl PageCache {
    fn new() -> Self {
        PageCache {
            resident: HashMap::new(),
            evicted_once: HashMap::new(),
            touches: HashMap::new(),
            tick: 0,
        }
    }
}

/// The unified address space with per-GPU residency tracking.
///
/// # Examples
///
/// ```
/// use mgg_sim::{Cluster, ClusterSpec, PageHandler};
/// use mgg_uvm::{UvmConfig, UvmSpace};
///
/// let mut cluster = Cluster::new(ClusterSpec::dgx_a100(2));
/// let mut uvm = UvmSpace::new(2, UvmConfig::a100(64));
///
/// // First touch faults (driver latency + migration)...
/// let miss = uvm.access(0, 0, 7, &mut cluster.ic);
/// assert!(!miss.hit);
/// // ...after which the page is resident.
/// let hit = uvm.access(miss.ready_at, 0, 7, &mut cluster.ic);
/// assert!(hit.hit);
/// ```
#[derive(Debug)]
pub struct UvmSpace {
    cfg: UvmConfig,
    caches: Vec<PageCache>,
    fault_queues: Vec<MultiServerQueue>,
    stats: UvmStats,
}

impl UvmSpace {
    /// Creates the space for `num_gpus` GPUs.
    pub fn new(num_gpus: usize, cfg: UvmConfig) -> Self {
        assert!(cfg.page_bytes > 0, "page size must be positive");
        assert!(cfg.capacity_pages > 0, "capacity must be positive");
        UvmSpace {
            cfg,
            caches: (0..num_gpus).map(|_| PageCache::new()).collect(),
            fault_queues: (0..num_gpus)
                .map(|_| MultiServerQueue::new(cfg.fault_concurrency))
                .collect(),
            stats: UvmStats { per_gpu: vec![UvmGpuStats::default(); num_gpus] },
        }
    }

    /// Page number containing byte `addr`.
    pub fn page_of(&self, addr: u64) -> u64 {
        addr / self.cfg.page_bytes
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.cfg.page_bytes
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &UvmStats {
        &self.stats
    }

    /// Clears residency and counters (fresh kernel, same configuration).
    pub fn reset(&mut self) {
        for c in &mut self.caches {
            c.resident.clear();
            c.evicted_once.clear();
            c.touches.clear();
            c.tick = 0;
        }
        for q in &mut self.fault_queues {
            q.reset();
        }
        for s in &mut self.stats.per_gpu {
            *s = UvmGpuStats::default();
        }
    }

    fn evict_if_needed(&mut self, gpu: usize) {
        let cache = &mut self.caches[gpu];
        while cache.resident.len() > self.cfg.capacity_pages {
            // Evict the least recently used page.
            let (&victim, _) = cache
                .resident
                .iter()
                .min_by_key(|(_, &(_, tick))| tick)
                .expect("non-empty cache");
            cache.resident.remove(&victim);
            *cache.evicted_once.entry(victim).or_insert(0) += 1;
            self.stats.per_gpu[gpu].evictions += 1;
        }
    }
}

impl PageHandler for UvmSpace {
    fn access(
        &mut self,
        now: SimTime,
        gpu: usize,
        page: u64,
        ic: &mut Interconnect,
    ) -> PageAccessOutcome {
        let tick = {
            let cache = &mut self.caches[gpu];
            cache.tick += 1;
            cache.tick
        };
        // With interleaved residency, a page's home GPU always holds it.
        let home = match self.cfg.source {
            MigrationSource::Host => None,
            MigrationSource::PeerInterleaved => Some((page % self.caches.len() as u64) as usize),
        };
        if home == Some(gpu) {
            self.stats.per_gpu[gpu].hits += 1;
            return PageAccessOutcome { ready_at: now, hit: true };
        }
        if let Some(&(ready, _)) = self.caches[gpu].resident.get(&page) {
            self.caches[gpu].resident.insert(page, (ready, tick));
            self.stats.per_gpu[gpu].hits += 1;
            return PageAccessOutcome { ready_at: ready.max(now), hit: true };
        }
        // Access counters: below the threshold, service the touch as a
        // direct remote access (one cache line over the fabric or host
        // path) without migrating the page.
        if self.cfg.migrate_after_touches > 1 {
            let count = {
                let c = self.caches[gpu].touches.entry(page).or_insert(0);
                *c += 1;
                *c
            };
            if count < self.cfg.migrate_after_touches {
                const LINE: u64 = 256;
                let ready = match home {
                    None => ic.host_transfer(now, LINE),
                    Some(h) => ic.remote_transfer(now, h, gpu, LINE),
                };
                self.stats.per_gpu[gpu].remote_accesses += 1;
                return PageAccessOutcome { ready_at: ready, hit: false };
            }
        }
        // Fault: driver servicing with bounded concurrency, then migration
        // of `prefetch_batch` consecutive pages from the source.
        let service_done = self.fault_queues[gpu].submit(now, self.cfg.fault_latency_ns);
        let batch = self.cfg.prefetch_batch.max(1) as u64;
        let bytes = self.cfg.page_bytes * batch;
        let ready = match home {
            None => ic.host_transfer(service_done, bytes),
            Some(h) => ic.remote_transfer(service_done, h, gpu, bytes),
        };
        {
            let s = &mut self.stats.per_gpu[gpu];
            s.faults += 1;
            s.fault_duration_ns += ready.saturating_sub(now);
            s.migrated_bytes += bytes;
            if self.caches[gpu].evicted_once.contains_key(&page) {
                s.thrash_refetches += 1;
            }
        }
        for p in page..page + batch {
            self.caches[gpu].resident.insert(p, (ready, tick));
        }
        self.evict_if_needed(gpu);
        PageAccessOutcome { ready_at: ready, hit: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgg_sim::{Cluster, ClusterSpec};

    fn setup(gpus: usize, capacity: usize) -> (Cluster, UvmSpace) {
        let cluster = Cluster::new(ClusterSpec::dgx_a100(gpus));
        let uvm = UvmSpace::new(gpus, UvmConfig::a100(capacity));
        (cluster, uvm)
    }

    #[test]
    fn first_touch_faults_then_hits() {
        let (mut c, mut uvm) = setup(2, 16);
        let miss = uvm.access(0, 0, 7, &mut c.ic);
        assert!(!miss.hit);
        assert!(miss.ready_at >= 25_000, "fault must pay driver latency");
        let hit = uvm.access(miss.ready_at, 0, 7, &mut c.ic);
        assert!(hit.hit);
        assert_eq!(hit.ready_at, miss.ready_at);
        assert_eq!(uvm.stats().per_gpu[0].faults, 1);
        assert_eq!(uvm.stats().per_gpu[0].hits, 1);
    }

    #[test]
    fn residency_is_per_gpu() {
        let (mut c, mut uvm) = setup(2, 16);
        let _ = uvm.access(0, 0, 7, &mut c.ic);
        let other = uvm.access(0, 1, 7, &mut c.ic);
        assert!(!other.hit, "GPU 1 must fault independently");
        assert_eq!(uvm.total_faults_for_test(), 2);
    }

    #[test]
    fn capacity_eviction_and_thrash() {
        let (mut c, mut uvm) = setup(1, 2);
        let mut t = 0;
        for p in 0..3u64 {
            t = uvm.access(t, 0, p, &mut c.ic).ready_at;
        }
        assert_eq!(uvm.stats().per_gpu[0].evictions, 1);
        // Page 0 was evicted; touching it again is thrash.
        let out = uvm.access(t, 0, 0, &mut c.ic);
        assert!(!out.hit);
        assert_eq!(uvm.stats().per_gpu[0].thrash_refetches, 1);
    }

    #[test]
    fn lru_keeps_recent_pages() {
        let (mut c, mut uvm) = setup(1, 2);
        let t1 = uvm.access(0, 0, 0, &mut c.ic).ready_at;
        let t2 = uvm.access(t1, 0, 1, &mut c.ic).ready_at;
        // Touch page 0 so page 1 becomes the LRU victim.
        let t3 = uvm.access(t2, 0, 0, &mut c.ic).ready_at;
        let t4 = uvm.access(t3, 0, 2, &mut c.ic).ready_at; // evicts 1
        let again = uvm.access(t4, 0, 0, &mut c.ic);
        assert!(again.hit, "page 0 must have survived LRU");
    }

    #[test]
    fn host_path_is_shared_across_gpus() {
        // Concurrent faults from many GPUs must queue on the host channel:
        // the last completion with 8 GPUs exceeds the one with 2.
        let last_ready = |gpus: usize| {
            let (mut c, mut uvm) = setup(gpus, 1024);
            (0..gpus as u64 * 4)
                .map(|i| uvm.access(0, (i % gpus as u64) as usize, i, &mut c.ic).ready_at)
                .max()
                .unwrap()
        };
        assert!(last_ready(8) > last_ready(2));
    }

    #[test]
    fn prefetch_batch_cuts_faults() {
        let faults = |batch| {
            let cluster = Cluster::new(ClusterSpec::dgx_a100(1));
            let mut c = cluster;
            let mut uvm = UvmSpace::new(1, UvmConfig::a100_batched(1024, batch));
            let mut t = 0;
            for p in 0..64u64 {
                t = uvm.access(t, 0, p, &mut c.ic).ready_at;
            }
            uvm.stats().per_gpu[0].faults
        };
        assert_eq!(faults(1), 64);
        assert_eq!(faults(8), 8);
    }

    #[test]
    fn reset_clears_state() {
        let (mut c, mut uvm) = setup(1, 8);
        let _ = uvm.access(0, 0, 3, &mut c.ic);
        uvm.reset();
        assert_eq!(uvm.stats().total_faults(), 0);
        let out = uvm.access(0, 0, 3, &mut c.ic);
        assert!(!out.hit, "residency must be cleared by reset");
    }

    impl UvmSpace {
        fn total_faults_for_test(&self) -> u64 {
            self.stats.total_faults()
        }
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;
    use mgg_sim::{Cluster, ClusterSpec};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn access_accounting_is_consistent(
            accesses in proptest::collection::vec((0usize..4, 0u64..64), 1..120),
            capacity in 1usize..64,
        ) {
            let mut cluster = Cluster::new(ClusterSpec::dgx_a100(4));
            let mut uvm = UvmSpace::new(4, UvmConfig::a100(capacity));
            let mut now = 0;
            for &(gpu, page) in &accesses {
                let out = uvm.access(now, gpu, page, &mut cluster.ic);
                // Ready time never precedes the access.
                prop_assert!(out.ready_at >= now);
                now = out.ready_at;
            }
            let stats = uvm.stats();
            let total: u64 = stats
                .per_gpu
                .iter()
                .map(|g| g.hits + g.faults)
                .sum();
            prop_assert_eq!(total, accesses.len() as u64);
            // Thrash refetches never exceed faults; evictions only happen
            // when capacity was exceeded.
            for g in &stats.per_gpu {
                prop_assert!(g.thrash_refetches <= g.faults);
            }
        }

        #[test]
        fn unbounded_capacity_faults_once_per_page(
            pages in proptest::collection::vec(0u64..32, 1..80),
        ) {
            let mut cluster = Cluster::new(ClusterSpec::dgx_a100(2));
            let mut uvm = UvmSpace::new(2, UvmConfig::a100(1 << 20));
            let mut now = 0;
            for &p in &pages {
                now = uvm.access(now, 0, p, &mut cluster.ic).ready_at;
            }
            let distinct: std::collections::HashSet<_> = pages.iter().collect();
            prop_assert_eq!(uvm.stats().per_gpu[0].faults, distinct.len() as u64);
            prop_assert_eq!(uvm.stats().per_gpu[0].evictions, 0);
        }
    }
}

#[cfg(test)]
mod access_counter_tests {
    use super::*;
    use mgg_sim::{Cluster, ClusterSpec};

    fn cfg(threshold: u32) -> UvmConfig {
        UvmConfig { migrate_after_touches: threshold, ..UvmConfig::a100_resident(1 << 20) }
    }

    #[test]
    fn below_threshold_touches_do_not_migrate() {
        let mut c = Cluster::new(ClusterSpec::dgx_a100(2));
        let mut uvm = UvmSpace::new(2, cfg(3));
        // Page 1 homes on GPU 1; GPU 0 touches it.
        let mut t = 0;
        for _ in 0..2 {
            let out = uvm.access(t, 0, 1, &mut c.ic);
            assert!(!out.hit);
            t = out.ready_at;
        }
        let s = uvm.stats().per_gpu[0];
        assert_eq!(s.remote_accesses, 2);
        assert_eq!(s.faults, 0, "no migration before the threshold");
        // Third touch crosses the threshold: migration happens.
        let out = uvm.access(t, 0, 1, &mut c.ic);
        assert!(!out.hit);
        let s = uvm.stats().per_gpu[0];
        assert_eq!(s.faults, 1);
        // Fourth touch hits the now-resident page.
        let out = uvm.access(out.ready_at, 0, 1, &mut c.ic);
        assert!(out.hit);
    }

    #[test]
    fn remote_accesses_are_cheaper_than_faults() {
        let mut c1 = Cluster::new(ClusterSpec::dgx_a100(2));
        let mut counters = UvmSpace::new(2, cfg(8));
        let direct = counters.access(0, 0, 1, &mut c1.ic).ready_at;
        let mut c2 = Cluster::new(ClusterSpec::dgx_a100(2));
        let mut eager = UvmSpace::new(2, cfg(1));
        let fault = eager.access(0, 0, 1, &mut c2.ic).ready_at;
        assert!(
            direct * 5 < fault,
            "direct access ({direct}) should be much cheaper than a fault ({fault})"
        );
    }

    #[test]
    fn home_gpu_never_counts_touches() {
        let mut c = Cluster::new(ClusterSpec::dgx_a100(2));
        let mut uvm = UvmSpace::new(2, cfg(4));
        // Page 0 homes on GPU 0 under PeerInterleaved: always a hit there.
        let out = uvm.access(0, 0, 0, &mut c.ic);
        assert!(out.hit);
        assert_eq!(uvm.stats().per_gpu[0].remote_accesses, 0);
    }
}
