//! Epoch-boundary checkpoints for failover resume.
//!
//! A checkpoint captures everything needed to resume aggregation after a
//! permanent failure without redoing finished epochs: the partition bound
//! vector (ownership ranges), the feature dimension, and the aggregated
//! feature matrix at the last epoch boundary. A FNV-1a checksum over the
//! payload guards against torn or corrupted snapshots — a restore that
//! fails validation is treated as "no checkpoint" rather than silently
//! resuming from bad state.
//!
//! Two stores are provided: [`MemoryStore`] (the default inside
//! `simulate_aggregation`, zero I/O) and [`FileStore`] (JSON files, one per
//! epoch, for CLI runs that should survive the process).

use serde::{Deserialize, Serialize};

/// One epoch-boundary snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Epoch this snapshot closes (resume starts at `epoch + 1`).
    pub epoch: u64,
    /// Feature dimension of `features`.
    pub dim: usize,
    /// Partition bound vector (`NodeSplit::bounds`) active at the snapshot.
    pub bounds: Vec<u32>,
    /// Aggregated features, row-major `[num_nodes x dim]`.
    pub features: Vec<f32>,
    /// FNV-1a over the payload; see [`Checkpoint::is_valid`].
    pub checksum: u64,
}

/// FNV-1a over a byte stream, seeded with the standard offset basis.
fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn payload_checksum(epoch: u64, dim: usize, bounds: &[u32], features: &[f32]) -> u64 {
    let header = epoch
        .to_le_bytes()
        .into_iter()
        .chain((dim as u64).to_le_bytes());
    let bounds_bytes = bounds.iter().flat_map(|b| b.to_le_bytes());
    // Hash the exact bit patterns so restore equality is bit-equality.
    let feature_bytes = features.iter().flat_map(|f| f.to_bits().to_le_bytes());
    fnv1a(header.chain(bounds_bytes).chain(feature_bytes))
}

impl Checkpoint {
    /// Builds a checkpoint, computing its checksum.
    pub fn new(epoch: u64, dim: usize, bounds: Vec<u32>, features: Vec<f32>) -> Self {
        let checksum = payload_checksum(epoch, dim, &bounds, &features);
        Checkpoint { epoch, dim, bounds, features, checksum }
    }

    /// True when the stored checksum matches the payload.
    pub fn is_valid(&self) -> bool {
        self.checksum == payload_checksum(self.epoch, self.dim, &self.bounds, &self.features)
    }
}

/// Persistence behind checkpoint/resume. Implementations keep only the
/// latest valid checkpoint reachable; resume always restarts from the most
/// recent epoch boundary.
pub trait CheckpointStore {
    /// Persists `ckpt`; replaces any older snapshot.
    fn save(&mut self, ckpt: Checkpoint) -> Result<(), String>;
    /// The most recent *valid* checkpoint, if any.
    fn latest(&self) -> Option<Checkpoint>;
}

/// In-memory store: the engine's default (checkpoints live only as long as
/// the run, which is exactly the resume scope of a simulation).
#[derive(Debug, Default)]
pub struct MemoryStore {
    latest: Option<Checkpoint>,
}

impl MemoryStore {
    /// An empty store holding no checkpoint.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CheckpointStore for MemoryStore {
    fn save(&mut self, ckpt: Checkpoint) -> Result<(), String> {
        if !ckpt.is_valid() {
            return Err("refusing to store checkpoint with bad checksum".into());
        }
        self.latest = Some(ckpt);
        Ok(())
    }

    fn latest(&self) -> Option<Checkpoint> {
        self.latest.clone().filter(Checkpoint::is_valid)
    }
}

/// File-backed store: one JSON document per epoch under `dir`, named
/// `ckpt-<epoch>.json`. Corrupt or truncated files are skipped on load.
#[derive(Debug)]
pub struct FileStore {
    dir: std::path::PathBuf,
}

impl FileStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<std::path::PathBuf>) -> Result<Self, String> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("checkpoint dir {}: {e}", dir.display()))?;
        Ok(FileStore { dir })
    }

    fn path_for(&self, epoch: u64) -> std::path::PathBuf {
        self.dir.join(format!("ckpt-{epoch}.json"))
    }
}

impl CheckpointStore for FileStore {
    fn save(&mut self, ckpt: Checkpoint) -> Result<(), String> {
        if !ckpt.is_valid() {
            return Err("refusing to store checkpoint with bad checksum".into());
        }
        let text = serde_json::to_string(&ckpt).map_err(|e| e.to_string())?;
        let path = self.path_for(ckpt.epoch);
        // Write-then-rename so a crash mid-write never leaves a torn file
        // under the canonical name.
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, text).map_err(|e| format!("{}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path).map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(())
    }

    fn latest(&self) -> Option<Checkpoint> {
        let mut best: Option<Checkpoint> = None;
        let entries = std::fs::read_dir(&self.dir).ok()?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if !name.starts_with("ckpt-") || !name.ends_with(".json") {
                continue;
            }
            let Ok(text) = std::fs::read_to_string(entry.path()) else { continue };
            let Ok(ckpt) = serde_json::from_str::<Checkpoint>(&text) else { continue };
            if !ckpt.is_valid() {
                continue;
            }
            if best.as_ref().is_none_or(|b| ckpt.epoch > b.epoch) {
                best = Some(ckpt);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(epoch: u64) -> Checkpoint {
        Checkpoint::new(
            epoch,
            2,
            vec![0, 4, 8],
            vec![1.0, 2.5, -0.25, 0.0, 3.5, 1.5, 0.75, -1.0],
        )
    }

    #[test]
    fn checksum_validates_and_detects_corruption() {
        let mut c = sample(3);
        assert!(c.is_valid());
        c.features[1] += 1.0;
        assert!(!c.is_valid());
    }

    #[test]
    fn memory_store_roundtrip_keeps_latest() {
        let mut store = MemoryStore::new();
        assert!(store.latest().is_none());
        store.save(sample(0)).unwrap();
        store.save(sample(1)).unwrap();
        assert_eq!(store.latest().unwrap().epoch, 1);
    }

    #[test]
    fn memory_store_rejects_corrupt() {
        let mut store = MemoryStore::new();
        let mut c = sample(0);
        c.checksum ^= 1;
        assert!(store.save(c).is_err());
    }

    #[test]
    fn file_store_roundtrip_bit_identical() {
        let dir = std::env::temp_dir().join(format!("mgg-ckpt-{}", std::process::id()));
        let mut store = FileStore::open(&dir).unwrap();
        let c = sample(5);
        store.save(c.clone()).unwrap();
        store.save(sample(2)).unwrap();
        let restored = store.latest().unwrap();
        assert_eq!(restored, c, "latest-epoch checkpoint must win, bit-identical");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_store_skips_corrupt_files() {
        let dir = std::env::temp_dir().join(format!("mgg-ckpt-bad-{}", std::process::id()));
        let mut store = FileStore::open(&dir).unwrap();
        store.save(sample(1)).unwrap();
        std::fs::write(dir.join("ckpt-9.json"), "{not json").unwrap();
        let restored = store.latest().unwrap();
        assert_eq!(restored.epoch, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
