//! Elastic failover for the MGG engine.
//!
//! Permanent GPU and link failures (modeled by [`mgg_fault::PermanentFault`])
//! must never take the whole job down. This crate supplies the control-plane
//! half of recovery:
//!
//! 1. **Detection** — a [`HealthMonitor`] replays the deterministic heartbeat
//!    history implied by a fault schedule and scores each GPU with a
//!    phi-accrual-style suspicion value, yielding a [`ClusterView`] of alive,
//!    suspected, and dead GPUs plus the set of still-usable links.
//! 2. **Routing** — [`plan_route`] finds a surviving path around a dead
//!    NVLink (shortest hop-count over `usable_links`), falling back to
//!    host/PCIe staging when the fabric is partitioned.
//! 3. **Checkpointing** — the [`checkpoint`] module persists epoch-boundary
//!    partition state + aggregated features so a run interrupted mid-epoch
//!    resumes from the last epoch boundary instead of restarting.
//!
//! Everything here is deterministic: given the same fault schedule and
//! horizon, the monitor produces bit-identical cluster views, so recovery
//! decisions replay exactly.
//!
//! The execution half — halting dead warps, charging timeout latencies,
//! re-splitting the graph over survivors — lives in `mgg-sim` and
//! `mgg-core`; this crate is dependency-light (`mgg-fault` + serde) so both
//! can use it without cycles.

#![deny(missing_docs)]

pub mod checkpoint;

use mgg_fault::{FaultSchedule, HEARTBEAT_PERIOD_NS};
use serde::{Deserialize, Serialize};

/// Thresholds of the phi-accrual-style failure detector.
///
/// Classic phi-accrual estimates `phi = -log10 P(heartbeat still pending)`
/// from an inter-arrival distribution. The simulator's heartbeats are
/// perfectly periodic, so the distribution degenerates and phi reduces to a
/// linear ramp: each missed period adds [`MonitorPolicy::phi_per_miss`] to
/// the score. The suspect/dead thresholds keep the classic two-stage shape
/// (suspicion before declaration) with deterministic crossing times.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorPolicy {
    /// Heartbeat probe period, in simulated nanoseconds.
    pub heartbeat_ns: u64,
    /// Suspicion added per fully missed heartbeat period.
    pub phi_per_miss: f64,
    /// Phi at which a GPU becomes suspected (excluded from new work, still
    /// counted as reachable).
    pub suspect_phi: f64,
    /// Phi at which a GPU is declared dead (triggers evacuation).
    pub dead_phi: f64,
}

impl Default for MonitorPolicy {
    fn default() -> Self {
        MonitorPolicy {
            heartbeat_ns: HEARTBEAT_PERIOD_NS,
            phi_per_miss: 0.8,
            suspect_phi: 1.0,
            dead_phi: 3.0,
        }
    }
}

impl MonitorPolicy {
    /// Time from a GPU's death to its phi crossing [`Self::dead_phi`]:
    /// the detection latency charged by the failover path.
    pub fn detection_delay_ns(&self) -> u64 {
        let misses = (self.dead_phi / self.phi_per_miss).ceil().max(1.0) as u64;
        misses * self.heartbeat_ns
    }
}

/// Liveness classification of one GPU at the observation horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GpuStatus {
    /// Heartbeats current; full participant.
    Alive,
    /// Missed enough heartbeats to cross `suspect_phi` but not `dead_phi`.
    Suspected,
    /// Crossed `dead_phi`; shard must be evacuated.
    Dead,
}

/// Deterministic snapshot of cluster health at a given horizon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterView {
    /// GPUs with current heartbeats, ascending.
    pub alive: Vec<usize>,
    /// GPUs between the suspect and dead thresholds, ascending.
    pub suspected: Vec<usize>,
    /// GPUs past the dead threshold, ascending.
    pub dead: Vec<usize>,
    /// Unordered pairs `(a, b)`, `a < b`, whose direct link is still up and
    /// whose endpoints are both undead.
    pub usable_links: Vec<(usize, usize)>,
}

impl ClusterView {
    /// Total GPUs covered by this view.
    pub fn num_gpus(&self) -> usize {
        self.alive.len() + self.suspected.len() + self.dead.len()
    }

    /// True when every GPU is alive and every link usable for its size.
    pub fn all_healthy(&self) -> bool {
        let n = self.num_gpus();
        self.dead.is_empty()
            && self.suspected.is_empty()
            && self.usable_links.len() == n * n.saturating_sub(1) / 2
    }

    /// Whether `gpu` is declared dead.
    pub fn is_dead(&self, gpu: usize) -> bool {
        self.dead.binary_search(&gpu).is_ok()
    }

    /// Whether the direct `(a, b)` link is usable.
    pub fn link_usable(&self, a: usize, b: usize) -> bool {
        let key = (a.min(b), a.max(b));
        self.usable_links.binary_search(&key).is_ok()
    }

    /// Survivor GPUs (alive + suspected), ascending: the set a recovery
    /// re-split distributes shards over.
    pub fn survivors(&self) -> Vec<usize> {
        let mut s: Vec<usize> =
            self.alive.iter().chain(self.suspected.iter()).copied().collect();
        s.sort_unstable();
        s
    }

    /// Survivors minus administratively-down shards, ascending — the set
    /// actually taking traffic under elastic membership. A drained shard
    /// is healthy (its links still relay traffic, unlike a dead GPU's);
    /// it just holds no rows, so rebalance and admission planes must plan
    /// around this set, not [`ClusterView::survivors`].
    pub fn rotation(&self, admin_down: &[usize]) -> Vec<usize> {
        self.survivors().into_iter().filter(|g| !admin_down.contains(g)).collect()
    }
}

/// Heartbeat-driven failure detector.
///
/// The monitor does not run inside the discrete-event simulation; it replays
/// the heartbeat outcomes the schedule *implies* (a probe of GPU `g` at time
/// `t` succeeds iff `g` has not died by `t`), which is equivalent to probing
/// over the fabric in the simulator but keeps detection free of event-queue
/// interleaving — the view is a pure function of `(schedule, horizon)`.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    num_gpus: usize,
    policy: MonitorPolicy,
}

impl HealthMonitor {
    /// A monitor for `num_gpus` peers under `policy` (panics on a
    /// degenerate policy: zero heartbeat or non-positive phi thresholds).
    pub fn new(num_gpus: usize, policy: MonitorPolicy) -> Self {
        assert!(num_gpus >= 1, "need at least one GPU");
        assert!(policy.heartbeat_ns > 0, "heartbeat period must be positive");
        assert!(
            policy.phi_per_miss > 0.0 && policy.suspect_phi > 0.0,
            "phi thresholds must be positive"
        );
        assert!(
            policy.dead_phi >= policy.suspect_phi,
            "dead_phi must not undercut suspect_phi"
        );
        HealthMonitor { num_gpus, policy }
    }

    /// A monitor with the default [`MonitorPolicy`].
    pub fn with_defaults(num_gpus: usize) -> Self {
        Self::new(num_gpus, MonitorPolicy::default())
    }

    /// The policy this monitor scores against.
    pub fn policy(&self) -> &MonitorPolicy {
        &self.policy
    }

    /// Suspicion score of `gpu` at `horizon_ns` under `sched`.
    ///
    /// The last heartbeat received from a GPU that dies at `d` is the last
    /// probe at or before `d`; phi then ramps by `phi_per_miss` per elapsed
    /// period. A live GPU's last heartbeat is the most recent probe, so its
    /// phi never reaches one full miss.
    pub fn phi(&self, sched: &FaultSchedule, gpu: usize, horizon_ns: u64) -> f64 {
        let hb = self.policy.heartbeat_ns;
        let last_beat = match sched.gpu_dead_at(gpu) {
            Some(d) if d <= horizon_ns => (d / hb) * hb,
            _ => (horizon_ns / hb) * hb,
        };
        let missed = (horizon_ns - last_beat) / hb;
        missed as f64 * self.policy.phi_per_miss
    }

    /// Classifies every GPU and link at `horizon_ns`.
    pub fn observe(&self, sched: &FaultSchedule, horizon_ns: u64) -> ClusterView {
        let (mut alive, mut suspected, mut dead) = (Vec::new(), Vec::new(), Vec::new());
        for g in 0..self.num_gpus {
            let phi = self.phi(sched, g, horizon_ns);
            if phi >= self.policy.dead_phi {
                dead.push(g);
            } else if phi >= self.policy.suspect_phi {
                suspected.push(g);
            } else {
                alive.push(g);
            }
        }
        let mut usable_links = Vec::new();
        for a in 0..self.num_gpus {
            for b in a + 1..self.num_gpus {
                let endpoint_dead =
                    dead.binary_search(&a).is_ok() || dead.binary_search(&b).is_ok();
                let link_down = matches!(
                    sched.link_dead_at(a, b),
                    Some(at) if at <= horizon_ns
                );
                if !endpoint_dead && !link_down {
                    usable_links.push((a, b));
                }
            }
        }
        ClusterView { alive, suspected, dead, usable_links }
    }

    /// Whether `gpu` passes the health gate for (re-)joining the serving
    /// rotation at `horizon_ns`: its suspicion score must sit strictly
    /// below the suspect threshold. A suspected shard may still be alive,
    /// but admitting it would route traffic onto a member the monitor is
    /// about to evict — joins are the one transition that can afford to
    /// wait for a clean bill of health.
    pub fn join_admissible(&self, sched: &FaultSchedule, gpu: usize, horizon_ns: u64) -> bool {
        self.phi(sched, gpu, horizon_ns) < self.policy.suspect_phi
    }

    /// The earliest horizon at which every permanent fault in `sched` has
    /// been *detected* (each dead GPU's phi has crossed `dead_phi`). Link
    /// failures are observed immediately by the endpoint's transfer error,
    /// so only GPU deaths contribute detection delay.
    pub fn detection_horizon_ns(&self, sched: &FaultSchedule) -> Option<u64> {
        let last_fault = sched.permanent().iter().map(|f| f.at_ns()).max()?;
        let gpu_delay = if sched.dead_gpus().is_empty() {
            0
        } else {
            self.policy.detection_delay_ns()
        };
        Some(last_fault + gpu_delay)
    }
}

/// A communication path between two undead GPUs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// The direct link is up.
    Direct,
    /// Relay through the listed intermediate GPUs (in order, excluding
    /// the endpoints), all hops over usable links.
    Relay(Vec<usize>),
    /// No fabric path survives; stage through host memory over PCIe.
    HostStaged,
}

/// Plans a path from `src` to `dst` over the view's usable links:
/// direct if up, otherwise the shortest relay (BFS, deterministic
/// lowest-id tie-break), otherwise host staging. Returns `None` when either
/// endpoint is dead (no route can help; the shard must be evacuated).
pub fn plan_route(view: &ClusterView, src: usize, dst: usize) -> Option<Route> {
    if view.is_dead(src) || view.is_dead(dst) {
        return None;
    }
    if src == dst {
        return Some(Route::Direct);
    }
    if view.link_usable(src, dst) {
        return Some(Route::Direct);
    }
    // BFS over usable links; neighbors visited in ascending id order, so
    // the first path found is the deterministic shortest route.
    let n = view.num_gpus();
    let mut prev: Vec<Option<usize>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    visited[src] = true;
    queue.push_back(src);
    'bfs: while let Some(u) = queue.pop_front() {
        for v in 0..n {
            if u != v && !visited[v] && view.link_usable(u, v) {
                visited[v] = true;
                prev[v] = Some(u);
                if v == dst {
                    break 'bfs;
                }
                queue.push_back(v);
            }
        }
    }
    if visited[dst] {
        let mut hops = Vec::new();
        let mut cur = dst;
        while let Some(p) = prev[cur] {
            if p != src {
                hops.push(p);
            }
            cur = p;
        }
        hops.reverse();
        return Some(Route::Relay(hops));
    }
    Some(Route::HostStaged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgg_fault::FaultSpec;

    #[test]
    fn healthy_cluster_is_all_alive() {
        let m = HealthMonitor::with_defaults(4);
        let sched = FaultSchedule::quiet(4);
        let view = m.observe(&sched, 100_000);
        assert_eq!(view.alive, vec![0, 1, 2, 3]);
        assert!(view.dead.is_empty() && view.suspected.is_empty());
        assert_eq!(view.usable_links.len(), 6);
        assert!(view.all_healthy());
        assert_eq!(m.detection_horizon_ns(&sched), None);
    }

    #[test]
    fn dead_gpu_crosses_thresholds_in_order() {
        let m = HealthMonitor::with_defaults(4);
        let sched = FaultSchedule::gpu_failure(4, 2, 2_000);
        // Right at death: still alive (no misses yet).
        let v = m.observe(&sched, 2_000);
        assert!(!v.is_dead(2));
        // After two missed periods: phi = 1.6 -> suspected.
        let v = m.observe(&sched, 4_000);
        assert_eq!(v.suspected, vec![2]);
        // After the detection delay: dead.
        let at = 2_000 + m.policy().detection_delay_ns();
        let v = m.observe(&sched, at);
        assert_eq!(v.dead, vec![2]);
        assert_eq!(v.survivors(), vec![0, 1, 3]);
        // All links touching 2 are unusable.
        for other in [0usize, 1, 3] {
            assert!(!v.link_usable(2, other));
        }
        assert_eq!(v.usable_links.len(), 3);
        assert_eq!(m.detection_horizon_ns(&sched), Some(at));
    }

    #[test]
    fn phi_is_deterministic_and_monotone() {
        let m = HealthMonitor::with_defaults(2);
        let sched = FaultSchedule::gpu_failure(2, 1, 1_500);
        let mut last = 0.0;
        for t in (2_000..10_000).step_by(500) {
            let phi = m.phi(&sched, 1, t);
            assert_eq!(phi, m.phi(&sched, 1, t), "phi must be deterministic");
            assert!(phi >= last, "phi must not decrease");
            last = phi;
        }
        assert_eq!(m.phi(&sched, 0, 10_000), 0.0, "live GPU stays at zero");
    }

    #[test]
    fn link_down_excluded_but_endpoints_alive() {
        let m = HealthMonitor::with_defaults(4);
        let sched = FaultSchedule::link_down(4, 0, 2, 1_000);
        let v = m.observe(&sched, 5_000);
        assert_eq!(v.alive, vec![0, 1, 2, 3]);
        assert!(!v.link_usable(0, 2));
        assert!(v.link_usable(0, 1) && v.link_usable(2, 3));
        assert_eq!(v.usable_links.len(), 5);
        // Before the failure instant the link is still usable.
        assert!(m.observe(&sched, 500).link_usable(0, 2));
    }

    #[test]
    fn routes_direct_relay_and_host_staged() {
        let m = HealthMonitor::with_defaults(4);
        // One link down: relay around it.
        let sched = FaultSchedule::link_down(4, 0, 2, 0);
        let v = m.observe(&sched, 1_000);
        assert_eq!(plan_route(&v, 0, 1), Some(Route::Direct));
        assert_eq!(plan_route(&v, 0, 2), Some(Route::Relay(vec![1])));
        assert_eq!(plan_route(&v, 2, 0), Some(Route::Relay(vec![1])));
        // GPU 3 fully cut off from 0: all its links down -> host staging.
        let sched = FaultSchedule::link_down(4, 0, 3, 0)
            .with_permanent(mgg_fault::PermanentFault::LinkDown { src: 1, dst: 3, at_ns: 0 })
            .with_permanent(mgg_fault::PermanentFault::LinkDown { src: 2, dst: 3, at_ns: 0 });
        let v = m.observe(&sched, 1_000);
        assert_eq!(plan_route(&v, 0, 3), Some(Route::HostStaged));
        // Dead endpoint: no route.
        let sched = FaultSchedule::gpu_failure(4, 3, 0);
        let v = m.observe(&sched, 100_000);
        assert_eq!(plan_route(&v, 0, 3), None);
        assert_eq!(plan_route(&v, 0, 1), Some(Route::Direct));
    }

    #[test]
    fn observe_is_pure() {
        let m = HealthMonitor::with_defaults(8);
        let spec = FaultSpec { seed: 77, gpu_failures: 2, link_failures: 3, ..FaultSpec::quiet() };
        let sched = FaultSchedule::derive(&spec, 8);
        let a = m.observe(&sched, 50_000);
        let b = m.observe(&sched, 50_000);
        assert_eq!(a, b);
    }

    #[test]
    fn detection_delay_matches_policy_math() {
        let p = MonitorPolicy::default();
        // ceil(3.0 / 0.8) = 4 missed periods.
        assert_eq!(p.detection_delay_ns(), 4 * p.heartbeat_ns);
    }

    #[test]
    fn rotation_excludes_admin_down_but_keeps_them_as_survivors() {
        let m = HealthMonitor::with_defaults(4);
        let sched = FaultSchedule::gpu_failure(4, 2, 0);
        let v = m.observe(&sched, 100_000);
        assert_eq!(v.survivors(), vec![0, 1, 3]);
        // Draining shard 1 removes it from rotation without declaring it dead.
        assert_eq!(v.rotation(&[1]), vec![0, 3]);
        assert_eq!(v.survivors(), vec![0, 1, 3], "drain must not change survivorship");
        // Admin-down on an already-dead shard is a no-op.
        assert_eq!(v.rotation(&[2]), vec![0, 1, 3]);
        assert_eq!(v.rotation(&[]), v.survivors());
    }

    #[test]
    fn join_gate_tracks_the_suspect_threshold() {
        let m = HealthMonitor::with_defaults(4);
        let quiet = FaultSchedule::quiet(4);
        for g in 0..4 {
            assert!(m.join_admissible(&quiet, g, 1_000_000));
        }
        let sched = FaultSchedule::gpu_failure(4, 2, 2_000);
        // At the death instant no heartbeat has been missed yet.
        assert!(m.join_admissible(&sched, 2, 2_000));
        // Once observe() would classify it suspected, the join gate closes
        // at exactly the same horizon.
        let suspect_at = 4_000;
        assert_eq!(m.observe(&sched, suspect_at).suspected, vec![2]);
        assert!(!m.join_admissible(&sched, 2, suspect_at));
        // Healthy peers remain admissible throughout.
        assert!(m.join_admissible(&sched, 0, suspect_at));
    }
}
