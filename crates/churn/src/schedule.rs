//! Deterministic churn schedules: seeded graph-delta streams batched at
//! epoch fences, merged with scripted shard-membership events.
//!
//! The same reproducibility contract as `mgg_serve::workload`: every
//! stochastic choice comes from one `StdRng` seeded from
//! [`ChurnSpec::seed`], so a spec fully determines the churn stream. The
//! derived [`ChurnSchedule`] is a `(time, seq)`-ordered event list the
//! serving loop merges with query arrivals and shard timers — replaying
//! it is bit-identical at any host thread count.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::delta::GraphDelta;

/// How a shard's membership changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipChange {
    /// The shard stops accepting *new* work but finishes what it holds;
    /// capacity planning treats it as on its way out.
    Drain,
    /// The shard leaves the fleet: remaining queued work migrates to the
    /// surviving shards (cost-charged, loss-free).
    Leave,
    /// The shard (re)joins the fleet and starts a cache warm-up window
    /// before it pulls its full share of load.
    Join,
}

impl MembershipChange {
    /// Lower-case name used by CLI flags and JSON reports.
    pub fn name(&self) -> &'static str {
        match self {
            MembershipChange::Drain => "drain",
            MembershipChange::Leave => "leave",
            MembershipChange::Join => "join",
        }
    }
}

/// One scripted membership event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipEvent {
    /// Affected shard.
    pub shard: u16,
    /// Instant the change takes effect, in simulated nanoseconds.
    pub at_ns: u64,
    /// What happens to the shard.
    pub change: MembershipChange,
}

/// Optional burst window: the delta rates are multiplied by `mult`
/// inside `[start_ns, end_ns)` — the "mutation burst" of the churn
/// drills.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstWindow {
    /// Burst start (inclusive), simulated nanoseconds.
    pub start_ns: u64,
    /// Burst end (exclusive), simulated nanoseconds.
    pub end_ns: u64,
    /// Rate multiplier inside the window (≥ 0).
    pub mult: f64,
}

/// Full description of one churn plane. Two equal specs always derive
/// identical schedules.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnSpec {
    /// Seed of every stochastic decision in the delta stream.
    pub seed: u64,
    /// Length of the churn window in simulated nanoseconds.
    pub duration_ns: u64,
    /// Epoch-fence cadence: deltas arriving in `((k-1)·f, k·f]` apply
    /// together at the fence instant `k·f`.
    pub fence_interval_ns: u64,
    /// Mean undirected-edge insertions per simulated second.
    pub edge_insert_rate: f64,
    /// Mean undirected-edge removals per simulated second.
    pub edge_remove_rate: f64,
    /// Mean feature-row updates per simulated second.
    pub feature_update_rate: f64,
    /// Mean node insertions per simulated second.
    pub node_insert_rate: f64,
    /// Mean node tombstonings per simulated second.
    pub node_remove_rate: f64,
    /// Optional mutation-burst window multiplying all delta rates.
    pub burst: Option<BurstWindow>,
    /// Scripted shard join/drain/leave events.
    pub membership: Vec<MembershipEvent>,
    /// Cache warm-up window a joining shard serves at reduced efficiency.
    pub warmup_ns: u64,
}

impl ChurnSpec {
    /// A schedule with no deltas and no membership events — the identity
    /// churn plane every pre-churn scenario implicitly runs under.
    pub fn quiet(duration_ns: u64) -> Self {
        ChurnSpec {
            seed: 0,
            duration_ns,
            fence_interval_ns: 250_000,
            edge_insert_rate: 0.0,
            edge_remove_rate: 0.0,
            feature_update_rate: 0.0,
            node_insert_rate: 0.0,
            node_remove_rate: 0.0,
            burst: None,
            membership: Vec::new(),
            warmup_ns: 200_000,
        }
    }

    /// A balanced mutation mix at `deltas_per_sec` total, split 40%
    /// edge-insert / 25% edge-remove / 25% feature-update / 5% node-insert
    /// / 5% node-remove — the base spec the CLI and bench drills mutate.
    pub fn steady(seed: u64, duration_ns: u64, deltas_per_sec: f64) -> Self {
        ChurnSpec {
            seed,
            edge_insert_rate: deltas_per_sec * 0.40,
            edge_remove_rate: deltas_per_sec * 0.25,
            feature_update_rate: deltas_per_sec * 0.25,
            node_insert_rate: deltas_per_sec * 0.05,
            node_remove_rate: deltas_per_sec * 0.05,
            ..ChurnSpec::quiet(duration_ns)
        }
    }

    /// True when the spec derives an empty schedule.
    pub fn is_quiet(&self) -> bool {
        self.total_rate() <= 0.0 && self.membership.is_empty()
    }

    fn total_rate(&self) -> f64 {
        self.edge_insert_rate
            + self.edge_remove_rate
            + self.feature_update_rate
            + self.node_insert_rate
            + self.node_remove_rate
    }

    fn burst_mult(&self, t_ns: u64) -> f64 {
        match self.burst {
            Some(b) if t_ns >= b.start_ns && t_ns < b.end_ns => b.mult.max(0.0),
            _ => 1.0,
        }
    }
}

/// What happens at one churn instant.
#[derive(Debug, Clone, PartialEq)]
pub enum ChurnEventKind {
    /// A membership change; ordered *before* a fence at the same instant
    /// so capacity changes take effect before the fence's apply stall.
    Membership(MembershipEvent),
    /// An epoch fence carrying every delta that arrived since the
    /// previous fence, in arrival order.
    Fence {
        /// Batched deltas, in generation (timestamp) order.
        deltas: Vec<GraphDelta>,
    },
}

/// One entry of the derived `(time, seq)`-ordered churn event list.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnEvent {
    /// Instant the event fires, simulated nanoseconds.
    pub at_ns: u64,
    /// Total order tiebreaker within the schedule.
    pub seq: u64,
    /// The event payload.
    pub kind: ChurnEventKind,
}

/// A fully derived churn plane: the `(time, seq)`-ordered event list the
/// serving loop replays.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnSchedule {
    spec: ChurnSpec,
    events: Vec<ChurnEvent>,
    num_deltas: u64,
}

impl ChurnSchedule {
    /// Derives the schedule of `spec` over a graph of `num_nodes` nodes.
    ///
    /// Delta timestamps come from a merged Poisson process at the summed
    /// rate (time-rescaled through the burst window, exactly like the
    /// workload generator's non-homogeneous arrivals); each event's kind
    /// is then drawn proportionally to the per-kind rates and its node
    /// targets uniformly over `0..num_nodes`. Deltas are batched into the
    /// next fence at `⌈t / fence⌉ · fence` (clamped to the duration) and
    /// merged with the scripted membership events into one ordered list.
    pub fn derive(spec: &ChurnSpec, num_nodes: usize) -> Self {
        assert!(num_nodes > 0, "churn needs a non-empty graph");
        let fence = spec.fence_interval_ns.max(1);
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut stamped: Vec<(u64, GraphDelta)> = Vec::new();
        let total = spec.total_rate();
        if total > 0.0 {
            let base_rate_per_ns = total / 1e9;
            let mut t = 0u64;
            loop {
                let mut mult = spec.burst_mult(t);
                while mult <= 0.0 {
                    // Jump past a zero-rate burst window analytically.
                    t = spec.burst.map(|b| b.end_ns).unwrap_or(t + 1_000).max(t + 1);
                    if t >= spec.duration_ns {
                        break;
                    }
                    mult = spec.burst_mult(t);
                }
                if t >= spec.duration_ns {
                    break;
                }
                let rate = base_rate_per_ns * mult;
                let u: f64 = rng.random::<f64>();
                let gap = (-(1.0 - u).ln() / rate).ceil().max(1.0);
                if gap > spec.duration_ns as f64 {
                    break;
                }
                t = t.saturating_add(gap as u64);
                if t >= spec.duration_ns {
                    break;
                }
                stamped.push((t, draw_delta(spec, &mut rng, num_nodes)));
            }
        }

        // Batch deltas into fences: everything stamped in ((k-1)f, kf]
        // applies at kf (the final fence clamps to the duration so late
        // deltas still land inside the window).
        let mut events: Vec<(u64, u8, usize, ChurnEventKind)> = Vec::new();
        let mut i = 0usize;
        let num_deltas = stamped.len() as u64;
        while i < stamped.len() {
            let fence_at = (stamped[i].0.div_ceil(fence) * fence).min(spec.duration_ns);
            let mut deltas = Vec::new();
            while i < stamped.len()
                && (stamped[i].0.div_ceil(fence) * fence).min(spec.duration_ns) == fence_at
            {
                deltas.push(stamped[i].1.clone());
                i += 1;
            }
            events.push((fence_at, 1, events.len(), ChurnEventKind::Fence { deltas }));
        }
        for (j, m) in spec.membership.iter().enumerate() {
            events.push((m.at_ns, 0, j, ChurnEventKind::Membership(*m)));
        }
        // Total order: time, then membership-before-fence, then original
        // position — a pure function of the spec.
        events.sort_by_key(|a| (a.0, a.1, a.2));
        let events = events
            .into_iter()
            .enumerate()
            .map(|(seq, (at_ns, _, _, kind))| ChurnEvent { at_ns, seq: seq as u64, kind })
            .collect();
        ChurnSchedule { spec: spec.clone(), events, num_deltas }
    }

    /// A schedule with no events.
    pub fn quiet(duration_ns: u64) -> Self {
        ChurnSchedule { spec: ChurnSpec::quiet(duration_ns), events: Vec::new(), num_deltas: 0 }
    }

    /// The spec this schedule was derived from.
    pub fn spec(&self) -> &ChurnSpec {
        &self.spec
    }

    /// The `(time, seq)`-ordered event list.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Total number of graph deltas across all fences.
    pub fn num_deltas(&self) -> u64 {
        self.num_deltas
    }

    /// True when the schedule carries no events.
    pub fn is_quiet(&self) -> bool {
        self.events.is_empty()
    }
}

fn uniform_node(rng: &mut StdRng, num_nodes: usize) -> u32 {
    ((rng.random::<f64>() * num_nodes as f64) as usize).min(num_nodes - 1) as u32
}

fn draw_delta(spec: &ChurnSpec, rng: &mut StdRng, num_nodes: usize) -> GraphDelta {
    // Kind drawn proportionally to the per-kind rates; node targets drawn
    // afterwards so the RNG consumption order is fixed per kind.
    let total = spec.total_rate();
    let pick = rng.random::<f64>() * total;
    let mut acc = spec.edge_insert_rate;
    if pick < acc {
        let src = uniform_node(rng, num_nodes);
        let dst = uniform_node(rng, num_nodes);
        return GraphDelta::EdgeInsert { src, dst };
    }
    acc += spec.edge_remove_rate;
    if pick < acc {
        let src = uniform_node(rng, num_nodes);
        let dst = uniform_node(rng, num_nodes);
        return GraphDelta::EdgeRemove { src, dst };
    }
    acc += spec.feature_update_rate;
    if pick < acc {
        return GraphDelta::FeatureUpdate { node: uniform_node(rng, num_nodes) };
    }
    acc += spec.node_insert_rate;
    if pick < acc {
        let fanout = 1 + (rng.random::<f64>() * 3.0) as usize;
        let neighbors = (0..fanout).map(|_| uniform_node(rng, num_nodes)).collect();
        return GraphDelta::NodeInsert { neighbors };
    }
    GraphDelta::NodeRemove { node: uniform_node(rng, num_nodes) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(seed: u64) -> ChurnSpec {
        ChurnSpec::steady(seed, 2_000_000, 5_000_000.0) // ~10 deltas over 2 ms
    }

    #[test]
    fn same_spec_same_schedule() {
        let spec = base(11);
        let a = ChurnSchedule::derive(&spec, 1024);
        let b = ChurnSchedule::derive(&spec, 1024);
        assert_eq!(a, b);
        let c = ChurnSchedule::derive(&base(12), 1024);
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn events_are_time_seq_ordered_and_fence_aligned() {
        let mut spec = base(3);
        spec.membership.push(MembershipEvent {
            shard: 1,
            at_ns: 700_000,
            change: MembershipChange::Drain,
        });
        let sched = ChurnSchedule::derive(&spec, 512);
        assert!(!sched.is_quiet());
        for w in sched.events().windows(2) {
            assert!((w[0].at_ns, w[0].seq) < (w[1].at_ns, w[1].seq));
        }
        for ev in sched.events() {
            assert!(ev.at_ns <= spec.duration_ns);
            if let ChurnEventKind::Fence { deltas } = &ev.kind {
                assert!(!deltas.is_empty(), "fences only exist to carry deltas");
                assert!(
                    ev.at_ns % spec.fence_interval_ns == 0 || ev.at_ns == spec.duration_ns,
                    "fence at {} not aligned to {}",
                    ev.at_ns,
                    spec.fence_interval_ns
                );
            }
        }
    }

    #[test]
    fn delta_volume_tracks_the_rate() {
        let mut spec = base(5);
        spec.duration_ns = 10_000_000;
        spec.edge_insert_rate = 2_000_000.0;
        spec.edge_remove_rate = 0.0;
        spec.feature_update_rate = 0.0;
        spec.node_insert_rate = 0.0;
        spec.node_remove_rate = 0.0;
        let sched = ChurnSchedule::derive(&spec, 256);
        let expected = 2_000_000.0 * 10_000_000.0 / 1e9; // 20
        let got = sched.num_deltas() as f64;
        assert!(
            (got - expected).abs() / expected < 0.6,
            "got {got} deltas, expected ~{expected}"
        );
        for ev in sched.events() {
            if let ChurnEventKind::Fence { deltas } = &ev.kind {
                assert!(deltas
                    .iter()
                    .all(|d| matches!(d, GraphDelta::EdgeInsert { .. })));
            }
        }
    }

    #[test]
    fn burst_concentrates_deltas() {
        let mut spec = base(9);
        spec.duration_ns = 4_000_000;
        spec.burst = Some(BurstWindow { start_ns: 1_000_000, end_ns: 2_000_000, mult: 8.0 });
        let sched = ChurnSchedule::derive(&spec, 512);
        let mut in_burst = 0u64;
        let mut outside = 0u64;
        for ev in sched.events() {
            if let ChurnEventKind::Fence { deltas } = &ev.kind {
                // Fence instants trail their deltas by < one interval.
                if ev.at_ns > 1_000_000 && ev.at_ns <= 2_000_000 + spec.fence_interval_ns {
                    in_burst += deltas.len() as u64;
                } else {
                    outside += deltas.len() as u64;
                }
            }
        }
        assert!(
            in_burst > outside,
            "8x burst must dominate the stream ({in_burst} in vs {outside} out)"
        );
    }

    #[test]
    fn membership_orders_before_a_same_instant_fence() {
        let mut spec = base(7);
        // Force a membership event onto a fence instant.
        spec.membership.push(MembershipEvent {
            shard: 0,
            at_ns: spec.fence_interval_ns,
            change: MembershipChange::Join,
        });
        let sched = ChurnSchedule::derive(&spec, 512);
        let at = spec.fence_interval_ns;
        let same: Vec<_> = sched.events().iter().filter(|e| e.at_ns == at).collect();
        if same.len() == 2 {
            assert!(matches!(same[0].kind, ChurnEventKind::Membership(_)));
            assert!(matches!(same[1].kind, ChurnEventKind::Fence { .. }));
        }
    }

    #[test]
    fn quiet_spec_quiet_schedule() {
        let spec = ChurnSpec::quiet(1_000_000);
        assert!(spec.is_quiet());
        let sched = ChurnSchedule::derive(&spec, 64);
        assert!(sched.is_quiet());
        assert_eq!(sched.events().len(), 0);
        assert_eq!(ChurnSchedule::quiet(1_000_000).events().len(), 0);
    }
}
