//! # mgg-churn — deterministic live-graph churn and elastic membership
//!
//! The serving stack (`mgg-serve` + `mgg-core`) assumes a static graph
//! and a fixed shard fleet. This crate supplies the *churn plane* that
//! lifts both assumptions without giving up the workspace-wide replay
//! contract:
//!
//! - [`GraphDelta`] / [`apply_deltas`] — transactional batch mutation of
//!   a `CsrGraph` (undirected edge insert/remove, feature updates,
//!   append-only node insertion, tombstoning node removal). Application
//!   is a pure function of `(graph, batch)` and reports exactly which
//!   pre-existing rows changed, so the engine can invalidate precisely
//!   the affected cache rows instead of flushing.
//! - [`ChurnSpec`] / [`ChurnSchedule`] — a seeded, `(time, seq)`-ordered
//!   event stream of epoch **fences** (each carrying the deltas that
//!   arrived since the previous fence) and scripted shard
//!   [`MembershipEvent`]s (`Join`/`Drain`/`Leave`). The serving loop
//!   merges this stream with query arrivals and timers; equal specs
//!   derive bit-identical schedules at any host thread count.
//!
//! Epoch-fence semantics: deltas never apply mid-flight. They batch
//! until the next fence instant, where the engine applies them as one
//! transaction, bumps the version of every affected row, and charges a
//! bounded apply stall — queries dispatched before the fence see the old
//! graph, queries after see the new one, and nothing ever observes a
//! half-applied batch.
//!
//! ```
//! use mgg_churn::{apply_deltas, ChurnSchedule, ChurnSpec, GraphDelta};
//! use mgg_graph::CsrGraph;
//!
//! let g = CsrGraph::from_raw(vec![0, 1, 2], vec![1, 0]);
//! let (g2, fx) = apply_deltas(&g, &[GraphDelta::NodeInsert { neighbors: vec![0] }]).unwrap();
//! assert_eq!(g2.num_nodes(), 3);
//! assert_eq!(fx.affected, vec![0]); // node 0 gained an edge; row 0 is stale
//!
//! let sched = ChurnSchedule::derive(&ChurnSpec::steady(7, 1_000_000, 4_000_000.0), 1024);
//! assert_eq!(sched, ChurnSchedule::derive(sched.spec(), 1024)); // replayable
//! ```

#![deny(missing_docs)]

mod delta;
mod schedule;

pub use delta::{apply_deltas, DeltaEffects, GraphDelta};
pub use schedule::{
    BurstWindow, ChurnEvent, ChurnEventKind, ChurnSchedule, ChurnSpec, MembershipChange,
    MembershipEvent,
};
