//! Transactional batch application of graph deltas to a CSR graph.

use std::collections::{BTreeSet, HashMap, HashSet};

use mgg_graph::CsrGraph;

/// One live mutation of the serving graph.
///
/// Edge deltas are undirected (both endpoint rows change), matching the
/// symmetric adjacency every GNN workload in this workspace uses. Node
/// removal is a *tombstone*: the node's incident edges disappear but its
/// dense id survives as an isolated placeholder, so node ids — and with
/// them the `NodeSplit` bounds and every resident `(PE, row)` cache
/// address of an untouched node — stay valid across the batch. Node
/// insertion appends fresh ids at the top of the id space for the same
/// reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphDelta {
    /// Adds the undirected edge `{src, dst}` (no-op if already present).
    EdgeInsert {
        /// One endpoint.
        src: u32,
        /// The other endpoint.
        dst: u32,
    },
    /// Removes the undirected edge `{src, dst}` (no-op if absent).
    EdgeRemove {
        /// One endpoint.
        src: u32,
        /// The other endpoint.
        dst: u32,
    },
    /// The node's embedding row changed upstream; topology is untouched
    /// but every cached copy of the row is now stale.
    FeatureUpdate {
        /// The updated node.
        node: u32,
    },
    /// Appends a new node wired to `neighbors` (undirected).
    NodeInsert {
        /// Existing nodes the new node connects to.
        neighbors: Vec<u32>,
    },
    /// Tombstones `node`: drops all incident edges, keeps the id.
    NodeRemove {
        /// The removed node.
        node: u32,
    },
}

/// What one [`apply_deltas`] batch actually did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaEffects {
    /// Pre-existing nodes whose adjacency row or feature row changed —
    /// exactly the rows whose cached copies must be invalidated. Sorted,
    /// deduplicated. Freshly inserted nodes are *not* listed (they were
    /// never cached).
    pub affected: Vec<u32>,
    /// Nodes appended by `NodeInsert` deltas.
    pub inserted_nodes: usize,
    /// Nodes tombstoned by `NodeRemove` deltas.
    pub removed_nodes: usize,
    /// Undirected edges actually added (no-op inserts excluded).
    pub edges_added: u64,
    /// Undirected edges actually removed (no-op removes excluded).
    pub edges_removed: u64,
    /// Feature rows marked dirty.
    pub feature_updates: u64,
}

/// Applies `deltas` to `graph` as one transaction and returns the new
/// graph plus the batch's effects.
///
/// The batch is validated up front: a delta referencing a node outside
/// `0..num_nodes` (inserted nodes count from `num_nodes` in batch order
/// and may be referenced by *later* deltas in the same batch) rejects the
/// whole batch with no partial application. Application is a pure
/// function of `(graph, deltas)` — iteration never touches hash-map
/// order, so the output CSR is bit-identical across runs and platforms.
pub fn apply_deltas(graph: &CsrGraph, deltas: &[GraphDelta]) -> Result<(CsrGraph, DeltaEffects), String> {
    let n_old = graph.num_nodes() as u32;
    let mut n_new = n_old;
    // Validate the whole batch before touching anything (transactional).
    for (i, d) in deltas.iter().enumerate() {
        let check = |v: u32, what: &str| -> Result<(), String> {
            if v >= n_new {
                Err(format!("delta {i}: {what} node {v} out of range (graph has {n_new} nodes)"))
            } else {
                Ok(())
            }
        };
        match d {
            GraphDelta::EdgeInsert { src, dst } | GraphDelta::EdgeRemove { src, dst } => {
                check(*src, "edge")?;
                check(*dst, "edge")?;
            }
            GraphDelta::FeatureUpdate { node } | GraphDelta::NodeRemove { node } => {
                check(*node, "target")?;
            }
            GraphDelta::NodeInsert { neighbors } => {
                for &nb in neighbors {
                    check(nb, "neighbor")?;
                }
                n_new += 1;
            }
        }
    }

    let mut fx = DeltaEffects::default();
    let mut affected: BTreeSet<u32> = BTreeSet::new();
    // Per-row edit lists. Hash maps are only ever *indexed* (by row id in
    // 0..n order), never iterated, so they cannot perturb determinism.
    let mut inserts: HashMap<u32, Vec<u32>> = HashMap::new();
    let mut removes: HashMap<u32, HashSet<u32>> = HashMap::new();
    let mut tombstoned: HashSet<u32> = HashSet::new();
    let has_edge = |v: u32, u: u32| -> bool {
        v < n_old && graph.neighbors(v).contains(&u)
    };
    // Whether the *edited* row currently contains the edge (base CSR,
    // minus pending removes, plus pending inserts).
    let edge_present = |v: u32,
                        u: u32,
                        inserts: &HashMap<u32, Vec<u32>>,
                        removes: &HashMap<u32, HashSet<u32>>| {
        let base = has_edge(v, u) && !removes.get(&v).is_some_and(|r| r.contains(&u));
        base || inserts.get(&v).is_some_and(|i| i.contains(&u))
    };
    let mut next_id = n_old;
    for d in deltas {
        match d {
            GraphDelta::EdgeInsert { src, dst } => {
                if *src == *dst || edge_present(*src, *dst, &inserts, &removes) {
                    continue; // self-loop or duplicate: no-op
                }
                if tombstoned.contains(src) || tombstoned.contains(dst) {
                    continue; // edge to a tombstoned node: no-op
                }
                inserts.entry(*src).or_default().push(*dst);
                inserts.entry(*dst).or_default().push(*src);
                removes.get_mut(src).map(|r| r.remove(dst));
                removes.get_mut(dst).map(|r| r.remove(src));
                fx.edges_added += 1;
                if *src < n_old {
                    affected.insert(*src);
                }
                if *dst < n_old {
                    affected.insert(*dst);
                }
            }
            GraphDelta::EdgeRemove { src, dst } => {
                if !edge_present(*src, *dst, &inserts, &removes) {
                    continue; // absent edge: no-op
                }
                removes.entry(*src).or_default().insert(*dst);
                removes.entry(*dst).or_default().insert(*src);
                if let Some(i) = inserts.get_mut(src) {
                    i.retain(|&u| u != *dst);
                }
                if let Some(i) = inserts.get_mut(dst) {
                    i.retain(|&u| u != *src);
                }
                fx.edges_removed += 1;
                if *src < n_old {
                    affected.insert(*src);
                }
                if *dst < n_old {
                    affected.insert(*dst);
                }
            }
            GraphDelta::FeatureUpdate { node } => {
                fx.feature_updates += 1;
                if *node < n_old {
                    affected.insert(*node);
                }
            }
            GraphDelta::NodeInsert { neighbors } => {
                let v = next_id;
                next_id += 1;
                fx.inserted_nodes += 1;
                let mut seen = Vec::new();
                for &nb in neighbors {
                    if nb == v || seen.contains(&nb) || tombstoned.contains(&nb) {
                        continue;
                    }
                    seen.push(nb);
                    inserts.entry(v).or_default().push(nb);
                    inserts.entry(nb).or_default().push(v);
                    fx.edges_added += 1;
                    if nb < n_old {
                        affected.insert(nb);
                    }
                }
            }
            GraphDelta::NodeRemove { node } => {
                if tombstoned.contains(node) {
                    continue; // double-remove: no-op
                }
                tombstoned.insert(*node);
                fx.removed_nodes += 1;
                if *node < n_old {
                    affected.insert(*node);
                }
                // Surviving neighbors lose an adjacency entry.
                let mut dropped = 0u64;
                if *node < n_old {
                    for &u in graph.neighbors(*node) {
                        if removes.get(node).is_some_and(|r| r.contains(&u)) {
                            continue; // already removed this batch
                        }
                        dropped += 1;
                        if u < n_old && !tombstoned.contains(&u) {
                            affected.insert(u);
                        }
                    }
                }
                if let Some(ins) = inserts.get(node) {
                    dropped += ins.len() as u64;
                    for &u in ins {
                        if u < n_old {
                            affected.insert(u);
                        }
                    }
                }
                fx.edges_removed += dropped;
                // The tombstone filter below drops the reciprocal entries;
                // record explicit removes for rows edited this batch.
            }
        }
    }

    // Rebuild the CSR in one pass, row-major: retained base edges keep
    // their original order, batch inserts append in delta order.
    let mut row_ptr: Vec<u64> = Vec::with_capacity(n_new as usize + 1);
    row_ptr.push(0);
    let mut col_idx: Vec<u32> = Vec::with_capacity(graph.num_edges() + inserts.len());
    for v in 0..n_new {
        if !tombstoned.contains(&v) {
            if v < n_old {
                let rm = removes.get(&v);
                for &u in graph.neighbors(v) {
                    if tombstoned.contains(&u) || rm.is_some_and(|r| r.contains(&u)) {
                        continue;
                    }
                    col_idx.push(u);
                }
            }
            if let Some(ins) = inserts.get(&v) {
                for &u in ins {
                    if !tombstoned.contains(&u) {
                        col_idx.push(u);
                    }
                }
            }
        }
        row_ptr.push(col_idx.len() as u64);
    }
    fx.affected = affected.into_iter().collect();
    Ok((CsrGraph::from_raw(row_ptr, col_idx), fx))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u32) -> CsrGraph {
        // 0-1-2-...-(n-1) path, undirected.
        let mut row_ptr = vec![0u64];
        let mut col = Vec::new();
        for v in 0..n {
            if v > 0 {
                col.push(v - 1);
            }
            if v + 1 < n {
                col.push(v + 1);
            }
            row_ptr.push(col.len() as u64);
        }
        CsrGraph::from_raw(row_ptr, col)
    }

    #[test]
    fn edge_insert_and_remove_round_trip() {
        let g = line(4);
        let (g2, fx) = apply_deltas(&g, &[GraphDelta::EdgeInsert { src: 0, dst: 3 }]).unwrap();
        assert_eq!(fx.edges_added, 1);
        assert_eq!(fx.affected, vec![0, 3]);
        assert!(g2.neighbors(0).contains(&3) && g2.neighbors(3).contains(&0));
        let (g3, fx) = apply_deltas(&g2, &[GraphDelta::EdgeRemove { src: 3, dst: 0 }]).unwrap();
        assert_eq!(fx.edges_removed, 1);
        assert_eq!(g3.row_ptr(), g.row_ptr());
        assert_eq!(g3.col_idx(), g.col_idx());
    }

    #[test]
    fn duplicate_insert_and_absent_remove_are_noops() {
        let g = line(4);
        let (g2, fx) = apply_deltas(
            &g,
            &[
                GraphDelta::EdgeInsert { src: 0, dst: 1 }, // already present
                GraphDelta::EdgeRemove { src: 0, dst: 3 }, // absent
                GraphDelta::EdgeInsert { src: 2, dst: 2 }, // self-loop
            ],
        )
        .unwrap();
        assert_eq!(fx.edges_added, 0);
        assert_eq!(fx.edges_removed, 0);
        assert!(fx.affected.is_empty());
        assert_eq!(g2.col_idx(), g.col_idx());
    }

    #[test]
    fn node_insert_appends_and_wires_neighbors() {
        let g = line(3);
        let (g2, fx) =
            apply_deltas(&g, &[GraphDelta::NodeInsert { neighbors: vec![0, 2] }]).unwrap();
        assert_eq!(g2.num_nodes(), 4);
        assert_eq!(fx.inserted_nodes, 1);
        assert_eq!(fx.affected, vec![0, 2], "existing endpoints are affected, new node is not");
        assert_eq!(g2.neighbors(3), &[0, 2]);
        assert!(g2.neighbors(0).contains(&3));
        // Pre-existing rows other than the endpoints are untouched.
        assert_eq!(g2.neighbors(1), g.neighbors(1));
    }

    #[test]
    fn node_remove_tombstones_and_detaches() {
        let g = line(4);
        let (g2, fx) = apply_deltas(&g, &[GraphDelta::NodeRemove { node: 1 }]).unwrap();
        assert_eq!(g2.num_nodes(), 4, "tombstone keeps the id space dense");
        assert_eq!(fx.removed_nodes, 1);
        assert_eq!(fx.edges_removed, 2);
        assert_eq!(fx.affected, vec![0, 1, 2]);
        assert!(g2.neighbors(1).is_empty());
        assert!(!g2.neighbors(0).contains(&1));
        assert!(!g2.neighbors(2).contains(&1));
    }

    #[test]
    fn out_of_range_rejects_the_whole_batch() {
        let g = line(3);
        let err = apply_deltas(
            &g,
            &[
                GraphDelta::EdgeInsert { src: 0, dst: 2 },
                GraphDelta::EdgeInsert { src: 0, dst: 99 },
            ],
        )
        .unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn later_deltas_may_reference_batch_inserted_nodes() {
        let g = line(2);
        let (g2, _) = apply_deltas(
            &g,
            &[
                GraphDelta::NodeInsert { neighbors: vec![] }, // node 2
                GraphDelta::EdgeInsert { src: 2, dst: 0 },
            ],
        )
        .unwrap();
        assert!(g2.neighbors(2).contains(&0));
    }

    #[test]
    fn batch_application_is_deterministic() {
        let g = line(16);
        let deltas = vec![
            GraphDelta::EdgeInsert { src: 0, dst: 8 },
            GraphDelta::NodeRemove { node: 3 },
            GraphDelta::NodeInsert { neighbors: vec![5, 9] },
            GraphDelta::FeatureUpdate { node: 7 },
            GraphDelta::EdgeRemove { src: 9, dst: 10 },
        ];
        let a = apply_deltas(&g, &deltas).unwrap();
        let b = apply_deltas(&g, &deltas).unwrap();
        assert_eq!(a.0.row_ptr(), b.0.row_ptr());
        assert_eq!(a.0.col_idx(), b.0.col_idx());
        assert_eq!(a.1, b.1);
    }
}
