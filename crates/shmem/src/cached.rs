//! The caching read path: a [`TieredCache`] per issuing PE in front of the
//! resilience plane.
//!
//! [`CachedRegion`] is what the engine threads between aggregation and the
//! symmetric heap. A remote row that was fetched recently is served from
//! the issuing GPU's local cache (no fabric transaction, no retry
//! exposure); duplicate requests inside one non-blocking batch window
//! coalesce onto the first request's landing buffer, the way a warp-scope
//! coalescer merges duplicate in-flight GETs.
//!
//! With a host tier attached ([`CachedRegion::with_host_tier`]) an L1
//! eviction demotes its payload into host DRAM instead of dropping it, and
//! an L1 miss probes that tier before touching the fabric — the value-plane
//! twin of the simulator's L2 pricing. [`CachedRegion::prefetch`] is the
//! value-plane twin of the planner's speculative `_nbi` fills: it stages a
//! row into L1 ahead of the demand access.
//!
//! Correctness invariant: both tiers store exact copies of rows read from
//! the region, and the region's rows do not change while a `CachedRegion`
//! borrows it — so every `get`/`get_nbi` writes bit-identical data into
//! `dst` whether it hit (either tier), missed, was prefetched, or
//! coalesced. Caching changes *which* requests touch the fabric, never the
//! values.

use std::collections::HashMap;

use mgg_cache::{
    CacheConfig, CacheKey, CachePolicy, CacheStats, TierLookup, TierStats, TieredCache,
    WarpCoalescer,
};
use mgg_fault::FaultSchedule;

use crate::region::SymmetricRegion;
use crate::resilience::{ResilienceStats, ResilientRegion, ShmemError};

/// Per-issuing-PE cache state: the tiered replacement cache plus the
/// current non-blocking batch window.
#[derive(Debug)]
struct PeCache {
    cache: TieredCache,
    /// L1 row payloads, parallel to the L1 cache's slots.
    rows: Vec<Vec<f32>>,
    /// Host-tier row payloads, parallel to the [`mgg_cache::HostTier`]'s
    /// slots. Empty when no host tier is attached.
    host_rows: Vec<Vec<f32>>,
    /// The warp-scope batch window: keys already requested since the last
    /// `begin_batch`/`quiet`.
    coalescer: WarpCoalescer,
    /// Landing buffers of the current window, so coalesced duplicates can
    /// read their payload even if the backing slot was since evicted (a
    /// real coalescer holds the landing buffer for the window's lifetime).
    inflight: HashMap<u64, Vec<f32>>,
}

impl PeCache {
    fn new(capacity_rows: usize, cfg: &CacheConfig, l2: Option<(usize, CachePolicy)>) -> Self {
        // Guarded L1: an undersized per-PE cache degrades to pass-through
        // instead of thrashing (see `EmbedCache::with_thrash_guard`, which
        // `TieredCache::new` applies).
        let mut cache = TieredCache::new(capacity_rows, cfg.policy);
        if let Some((l2_rows, l2_policy)) = l2 {
            cache = cache.with_host_tier(l2_rows, l2_policy);
        }
        PeCache {
            cache,
            rows: Vec::new(),
            host_rows: Vec::new(),
            coalescer: WarpCoalescer::new(),
            inflight: HashMap::new(),
        }
    }

    fn store(&mut self, slot: Option<usize>, data: &[f32]) {
        if let Some(slot) = slot {
            if self.rows.len() <= slot {
                self.rows.resize(slot + 1, Vec::new());
            }
            self.rows[slot].clear();
            self.rows[slot].extend_from_slice(data);
        }
    }

    fn store_host(&mut self, slot: usize, data: Vec<f32>) {
        if self.host_rows.len() <= slot {
            self.host_rows.resize(slot + 1, Vec::new());
        }
        self.host_rows[slot] = data;
    }

    /// Applies the payload movement a [`TierLookup`] implies and returns
    /// the host-tier payload it was served from, if any.
    ///
    /// Order is load-bearing twice over: the L2-served payload is read
    /// *before* the demotion write-back (a promotion frees the L2 slot and
    /// the demotion may reuse that very slot), and the L1 victim's payload
    /// is moved down *before* the caller's `store` overwrites the reused
    /// L1 slot with the new row.
    fn settle(&mut self, look: &TierLookup) -> Option<Vec<f32>> {
        let served = look.l2_slot.map(|s| self.host_rows[s].clone());
        self.demote_payload(look.slot, look.demote_slot);
        served
    }

    /// Moves the evicted L1 payload (still sitting at the reused `l1_slot`)
    /// down into the host tier's `l2_slot`.
    fn demote_payload(&mut self, l1_slot: Option<usize>, l2_slot: Option<usize>) {
        if let (Some(l1), Some(l2)) = (l1_slot, l2_slot) {
            let victim = if self.rows.len() > l1 {
                std::mem::take(&mut self.rows[l1])
            } else {
                Vec::new()
            };
            self.store_host(l2, victim);
        }
    }
}

/// A caching view of a [`SymmetricRegion`]: remote GETs consult a per-PE
/// [`TieredCache`] first and fall through to a [`ResilientRegion`] on miss.
///
/// Each issuing PE gets an independent cache (GPUs do not share HBM), built
/// lazily on first use so a view serving one partition pays for one cache.
#[derive(Debug)]
pub struct CachedRegion<'a> {
    region: &'a SymmetricRegion,
    inner: ResilientRegion<'a>,
    cfg: CacheConfig,
    capacity_rows: usize,
    row_bytes: u32,
    l2: Option<(usize, CachePolicy)>,
    pes: Vec<Option<PeCache>>,
}

impl<'a> CachedRegion<'a> {
    /// Wraps `region` with per-PE caches sized for `dim`-wide f32 rows
    /// under `cfg`'s byte budget, fetching misses through a resilient view
    /// that consults `faults`.
    pub fn new(
        region: &'a SymmetricRegion,
        faults: Option<&'a FaultSchedule>,
        cfg: CacheConfig,
        dim: usize,
    ) -> Self {
        let pes = region.num_pes();
        let row_bytes = (dim * 4) as u32;
        CachedRegion {
            region,
            inner: ResilientRegion::new(region, faults),
            cfg,
            capacity_rows: cfg.capacity_rows(row_bytes),
            row_bytes,
            l2: None,
            pes: (0..pes).map(|_| None).collect(),
        }
    }

    /// Attaches a host-DRAM tier under `l2`'s byte budget: L1 evictions
    /// demote into it and L1 misses probe it before the fabric. Call
    /// before the first access (per-PE caches are built lazily; ones that
    /// already exist keep their single-tier shape).
    pub fn with_host_tier(mut self, l2: CacheConfig) -> Self {
        self.l2 = Some((l2.capacity_rows(self.row_bytes), l2.policy));
        self
    }

    /// Opens a new non-blocking batch window for `issuing_pe`: duplicate
    /// keys requested after this point coalesce onto one fabric
    /// transaction until [`CachedRegion::quiet`] closes the window.
    pub fn begin_batch(&mut self, issuing_pe: usize) {
        let pc = self.pe_cache(issuing_pe);
        pc.coalescer.begin();
        pc.inflight.clear();
    }

    /// Blocking cached GET. Returns `true` when served from the cache
    /// hierarchy — either tier — without a fabric transaction. Full misses
    /// fetch through the resilience plane and are admitted to L1.
    pub fn get(
        &mut self,
        dst: &mut [f32],
        issuing_pe: usize,
        src_pe: usize,
        src_row: u32,
    ) -> Result<bool, ShmemError> {
        let key = CacheKey { pe: src_pe as u16, row: src_row };
        let pc = self.pe_cache(issuing_pe);
        let lookup = pc.cache.access(key);
        if lookup.l1_hit {
            dst.copy_from_slice(&pc.rows[lookup.slot.expect("hit has a slot")]);
            return Ok(true);
        }
        if let Some(served) = pc.settle(&lookup) {
            // Host-tier hit: the payload crosses PCIe, not the fabric. A
            // promotion re-stores it in L1; under a bypassing L1 guard
            // `lookup.slot` is `None` and the row simply stays in L2.
            dst.copy_from_slice(&served);
            pc.store(lookup.slot, &served);
            return Ok(true);
        }
        if let Err(e) = self.inner.get(dst, issuing_pe, src_pe, src_row) {
            // The miss admitted the key but its payload never arrived;
            // drop it so a later request refetches instead of hitting on
            // stale slot contents.
            self.pes[issuing_pe].as_mut().expect("cache built above").cache.invalidate(key);
            return Err(e);
        }
        self.pes[issuing_pe].as_mut().expect("cache built above").store(lookup.slot, dst);
        Ok(false)
    }

    /// Non-blocking cached GET, mirroring
    /// [`ResilientRegion::get_nbi`]'s semantics: the copy into `dst` is
    /// immediate (functional data plane), completion of fabric misses is
    /// settled by [`CachedRegion::quiet`]. Within the current batch window
    /// a duplicate `(src_pe, src_row)` coalesces: it reads the first
    /// request's landing buffer and issues nothing.
    pub fn get_nbi(
        &mut self,
        dst: &mut [f32],
        issuing_pe: usize,
        src_pe: usize,
        src_row: u32,
    ) -> Result<(), ShmemError> {
        let key = CacheKey { pe: src_pe as u16, row: src_row };
        let pc = self.pe_cache(issuing_pe);
        if !pc.coalescer.admit(key) {
            pc.cache.note_coalesced(1);
            let landed = pc
                .inflight
                .get(&key.pack())
                .expect("coalesced key has a landing buffer in this window");
            dst.copy_from_slice(landed);
            return Ok(());
        }
        let lookup = pc.cache.access(key);
        if lookup.l1_hit {
            let slot = lookup.slot.expect("hit has a slot");
            let row = pc.rows[slot].clone();
            dst.copy_from_slice(&row);
            pc.inflight.insert(key.pack(), row);
            return Ok(());
        }
        if let Some(served) = pc.settle(&lookup) {
            dst.copy_from_slice(&served);
            pc.store(lookup.slot, &served);
            pc.inflight.insert(key.pack(), served);
            return Ok(());
        }
        if let Err(e) = self.inner.get_nbi(dst, issuing_pe, src_pe, src_row) {
            // No landing buffer ever arrived: retract the key from the
            // window (so duplicates refetch rather than coalescing onto
            // nothing) and drop the admitted-but-empty cache entry.
            let pc = self.pes[issuing_pe].as_mut().expect("cache built above");
            pc.coalescer.retract(key);
            pc.cache.invalidate(key);
            return Err(e);
        }
        let pc = self.pes[issuing_pe].as_mut().expect("cache built above");
        pc.store(lookup.slot, dst);
        pc.inflight.insert(key.pack(), dst.to_vec());
        Ok(())
    }

    /// Settles outstanding non-blocking operations of `issuing_pe` and
    /// closes its batch window.
    pub fn quiet(&mut self, issuing_pe: usize) -> Result<(), ShmemError> {
        self.inner.quiet(issuing_pe)?;
        if let Some(pc) = self.pes[issuing_pe].as_mut() {
            pc.inflight.clear();
            pc.coalescer.begin();
        }
        Ok(())
    }

    /// Speculatively stages `(src_pe, src_row)` in `issuing_pe`'s L1 ahead
    /// of the demand access — the value-plane twin of the planner's posted
    /// `_nbi` prefetch fills. Returns whether a fill was issued; refusals
    /// (row already resident in either tier, L1 bypassing or zero-sized,
    /// coordinates out of range) issue nothing.
    ///
    /// Prefetches read the region directly rather than through the
    /// resilience plane: a speculative fill is posted and never waited on,
    /// so a lost fill would merely leave the row non-resident — the model
    /// does not roll fault dice for it, and issuing prefetches therefore
    /// never perturbs the retry/drop sequence demand fetches observe.
    pub fn prefetch(&mut self, issuing_pe: usize, src_pe: usize, src_row: u32) -> bool {
        if src_pe >= self.region.num_pes() || src_row as usize >= self.region.rows_on(src_pe) {
            return false;
        }
        let data = self.region.row(src_pe, src_row).to_vec();
        let key = CacheKey { pe: src_pe as u16, row: src_row };
        let pc = self.pe_cache(issuing_pe);
        let Some(adm) = pc.cache.admit_prefetch(key, 0) else { return false };
        // Victim payload out of the reused L1 slot *before* the store
        // below overwrites it.
        pc.demote_payload(Some(adm.slot), adm.demote_slot);
        pc.store(Some(adm.slot), &data);
        true
    }

    /// Drops all cached rows on every PE (counters survive) — the
    /// invalidation hook for re-planning and recovery. Covers both tiers.
    pub fn flush(&mut self) {
        for pc in self.pes.iter_mut().flatten() {
            pc.cache.flush();
            pc.host_rows.clear();
            pc.inflight.clear();
            pc.coalescer.begin();
        }
    }

    /// Targeted invalidation of one `(src_pe, src_row)` across every
    /// issuing PE's cache *and* its open batch window — the epoch-fence
    /// hook for live-graph deltas: the mutated row is dropped everywhere
    /// (a pending coalesced request is retracted so duplicates refetch
    /// instead of reading the pre-mutation landing buffer) while every
    /// other resident row stays warm. Returns how many caches held it.
    pub fn invalidate_row(&mut self, src_pe: usize, src_row: u32) -> usize {
        let key = CacheKey { pe: src_pe as u16, row: src_row };
        let mut dropped = 0;
        for pc in self.pes.iter_mut().flatten() {
            if pc.cache.invalidate(key) {
                dropped += 1;
            }
            pc.coalescer.retract(key);
            pc.inflight.remove(&key.pack());
        }
        dropped
    }

    /// Cache counters rolled up over all issuing PEs. L1-only, identical
    /// to the untiered counters for the same access stream (host-tier hits
    /// still count as L1 misses here).
    pub fn stats(&self) -> CacheStats {
        let mut acc = CacheStats::default();
        for pc in self.pes.iter().flatten() {
            acc.merge(&pc.cache.stats());
        }
        acc
    }

    /// Host-tier and prefetch counters rolled up over all issuing PEs.
    /// All-zero when no host tier is attached and nothing was prefetched.
    pub fn tier_stats(&self) -> TierStats {
        let mut acc = TierStats::default();
        for pc in self.pes.iter().flatten() {
            acc.merge(&pc.cache.tier_stats());
        }
        acc
    }

    /// Stale detections across every PE's tiers — accesses that found a
    /// resident row at the wrong version. The churn drills pin this at 0.
    pub fn stale_reads(&self) -> u64 {
        self.pes.iter().flatten().map(|pc| pc.cache.stale_hits()).sum()
    }

    /// Whether every PE's host tier satisfies the conservation identity
    /// `demotions == resident + dropped + promotions + invalidated`.
    pub fn l2_conserves(&self) -> bool {
        self.pes.iter().flatten().all(|pc| pc.cache.l2_conserves())
    }

    /// What the underlying resilience plane had to do for the misses.
    pub fn resilience(&self) -> ResilienceStats {
        self.inner.stats()
    }

    fn pe_cache(&mut self, issuing_pe: usize) -> &mut PeCache {
        let slot = &mut self.pes[issuing_pe];
        if slot.is_none() {
            *slot = Some(PeCache::new(self.capacity_rows, &self.cfg, self.l2));
        }
        slot.as_mut().expect("just built")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgg_cache::CachePolicy;

    fn region(pes: usize, rows: usize, dim: usize) -> SymmetricRegion {
        let mut r = SymmetricRegion::zeros(&vec![rows; pes], dim);
        for pe in 0..pes {
            for row in 0..rows {
                let v: Vec<f32> =
                    (0..dim).map(|d| (pe * 1000 + row * 10 + d) as f32).collect();
                r.put(&v, pe, row as u32);
            }
        }
        r
    }

    fn cfg_mb(mb: u32) -> CacheConfig {
        CacheConfig::from_mb(mb).with_policy(CachePolicy::Lru)
    }

    #[test]
    fn cached_values_match_the_region() {
        let r = region(2, 8, 4);
        let mut c = CachedRegion::new(&r, None, cfg_mb(1), 4);
        let mut dst = vec![0.0f32; 4];
        for row in 0..8u32 {
            c.begin_batch(0);
            c.get_nbi(&mut dst, 0, 1, row).unwrap();
            assert_eq!(dst, r.row(1, row), "miss must return the region row");
            c.get_nbi(&mut dst, 0, 1, row).unwrap();
            assert_eq!(dst, r.row(1, row), "coalesced dup must return the same row");
            c.quiet(0).unwrap();
            c.get(&mut dst, 0, 1, row).unwrap();
            assert_eq!(dst, r.row(1, row), "hit must return the same row");
        }
        let s = c.stats();
        assert_eq!(s.misses, 8);
        assert_eq!(s.coalesced, 8);
        assert_eq!(s.hits, 8);
    }

    #[test]
    fn second_batch_hits_instead_of_refetching() {
        let r = region(2, 4, 4);
        let mut c = CachedRegion::new(&r, None, cfg_mb(1), 4);
        let mut dst = vec![0.0f32; 4];
        for _ in 0..2 {
            c.begin_batch(0);
            for row in 0..4u32 {
                c.get_nbi(&mut dst, 0, 1, row).unwrap();
            }
            c.quiet(0).unwrap();
        }
        let s = c.stats();
        assert_eq!(s.misses, 4, "first batch misses");
        assert_eq!(s.hits, 4, "second batch is fully resident");
        assert_eq!(s.coalesced, 0);
        assert_eq!(c.resilience().gets, 4, "only misses touch the fabric");
    }

    #[test]
    fn duplicates_after_quiet_hit_rather_than_coalesce() {
        let r = region(2, 2, 2);
        let mut c = CachedRegion::new(&r, None, cfg_mb(1), 2);
        let mut dst = vec![0.0f32; 2];
        c.begin_batch(0);
        c.get_nbi(&mut dst, 0, 1, 0).unwrap();
        c.quiet(0).unwrap(); // closes the window
        c.get_nbi(&mut dst, 0, 1, 0).unwrap();
        let s = c.stats();
        assert_eq!((s.misses, s.hits, s.coalesced), (1, 1, 0));
    }

    #[test]
    fn invalidate_row_drops_exactly_the_mutated_row() {
        let mut r = region(2, 4, 2);
        let mut c = CachedRegion::new(&r, None, cfg_mb(1), 2);
        let mut dst = vec![0.0f32; 2];
        c.begin_batch(0);
        for row in 0..4u32 {
            c.get_nbi(&mut dst, 0, 1, row).unwrap();
        }
        c.quiet(0).unwrap();
        // Row 2 mutates (an epoch-fence feature update); invalidate it.
        assert_eq!(c.invalidate_row(1, 2), 1);
        drop(c);
        r.put(&[777.0, 888.0], 1, 2);
        let mut c = CachedRegion::new(&r, None, cfg_mb(1), 2);
        c.begin_batch(0);
        c.get_nbi(&mut dst, 0, 1, 2).unwrap();
        assert_eq!(dst, vec![777.0, 888.0], "refetch must see the new payload");
    }

    #[test]
    fn invalidate_row_retracts_an_open_window_entry() {
        let r = region(2, 4, 2);
        let mut c = CachedRegion::new(&r, None, cfg_mb(1), 2);
        let mut dst = vec![0.0f32; 2];
        c.begin_batch(0);
        c.get_nbi(&mut dst, 0, 1, 0).unwrap();
        // Fence lands mid-window: the pending request is retracted, so a
        // duplicate refetches instead of coalescing onto the stale buffer.
        c.invalidate_row(1, 0);
        c.get_nbi(&mut dst, 0, 1, 0).unwrap();
        assert_eq!(dst, r.row(1, 0));
        let s = c.stats();
        assert_eq!(s.coalesced, 0, "retracted keys must not coalesce");
        assert_eq!(s.misses, 2, "both requests crossed the fabric");
        // Untouched rows elsewhere stay warm.
        c.get_nbi(&mut dst, 0, 1, 1).unwrap();
        c.quiet(0).unwrap();
        c.get(&mut dst, 0, 1, 1).unwrap();
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn zero_capacity_still_returns_correct_values() {
        let r = region(2, 4, 4);
        let cfg = CacheConfig { capacity_bytes: 0, policy: CachePolicy::Lru };
        let mut c = CachedRegion::new(&r, None, cfg, 4);
        let mut dst = vec![0.0f32; 4];
        c.begin_batch(0);
        for row in 0..4u32 {
            c.get_nbi(&mut dst, 0, 1, row).unwrap();
            assert_eq!(dst, r.row(1, row));
            // Duplicate inside the window still coalesces off the landing
            // buffer even though nothing is ever resident.
            c.get_nbi(&mut dst, 0, 1, row).unwrap();
            assert_eq!(dst, r.row(1, row));
        }
        c.quiet(0).unwrap();
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.coalesced), (0, 4, 4));
    }

    #[test]
    fn coalesced_read_survives_eviction_of_its_slot() {
        // Capacity 1 row: A hits nothing, B's miss evicts A, then the
        // duplicate of A must still read A's landing buffer.
        let dim = 2usize;
        let r = region(2, 4, dim);
        let cfg = CacheConfig {
            capacity_bytes: (dim * 4) as u64, // exactly one row
            policy: CachePolicy::Lru,
        };
        let mut c = CachedRegion::new(&r, None, cfg, dim);
        let mut dst = vec![0.0f32; dim];
        c.begin_batch(0);
        c.get_nbi(&mut dst, 0, 1, 0).unwrap(); // A: miss, resident
        c.get_nbi(&mut dst, 0, 1, 1).unwrap(); // B: miss, evicts A
        c.get_nbi(&mut dst, 0, 1, 0).unwrap(); // dup A: coalesced
        assert_eq!(dst, r.row(1, 0));
        c.quiet(0).unwrap();
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.coalesced, s.evictions), (0, 2, 1, 1));
    }

    #[test]
    fn flush_invalidates_residency() {
        let r = region(2, 4, 4);
        let mut c = CachedRegion::new(&r, None, cfg_mb(1), 4);
        let mut dst = vec![0.0f32; 4];
        c.get(&mut dst, 0, 1, 0).unwrap();
        assert!(c.get(&mut dst, 0, 1, 0).unwrap(), "resident before flush");
        c.flush();
        assert!(!c.get(&mut dst, 0, 1, 0).unwrap(), "cold after flush");
        assert_eq!(dst, r.row(1, 0));
    }

    #[test]
    fn failed_blocking_fetch_leaves_the_key_refetchable() {
        use mgg_fault::FaultSpec;
        // A drop schedule dense enough that blocking misses routinely
        // exhaust the retry budget. A failed miss admitted the key before
        // the fetch; it must be dropped again (payload never arrived), so
        // a retry re-misses and — when the fabric finally delivers —
        // returns exact bytes instead of hitting on stale slot contents.
        let r = region(2, 8, 4);
        let spec = FaultSpec { seed: 1, drop_rate: 0.97, ..FaultSpec::quiet() };
        let sched = FaultSchedule::derive(&spec, 2);
        let mut c = CachedRegion::new(&r, Some(&sched), cfg_mb(1), 4);
        let mut dst = vec![0.0f32; 4];
        let (mut errs, mut oks) = (0u32, 0u32);
        for _ in 0..6 {
            for row in 0..8u32 {
                match c.get(&mut dst, 0, 1, row) {
                    Ok(_) => {
                        assert_eq!(dst, r.row(1, row));
                        oks += 1;
                    }
                    Err(_) => errs += 1,
                }
            }
        }
        assert!(errs > 0, "a 0.97 drop rate must exhaust the retry budget");
        assert!(oks > 0, "some retries must eventually land");
    }

    #[test]
    fn failed_nbi_fetch_does_not_poison_the_window() {
        // An erroring non-blocking GET must retract the key from the
        // batch window: with no landing buffer ever arriving, a duplicate
        // request must take the fetch path again (and fail the same way)
        // rather than panic reading a landing buffer that does not exist.
        let r = region(2, 4, 4);
        let mut c = CachedRegion::new(&r, None, cfg_mb(1), 4);
        let mut dst = vec![0.0f32; 4];
        c.begin_batch(0);
        assert!(c.get_nbi(&mut dst, 0, 1, 99).is_err());
        assert!(c.get_nbi(&mut dst, 0, 1, 99).is_err());
        // The window itself still works for keys that do land.
        c.get_nbi(&mut dst, 0, 1, 0).unwrap();
        c.get_nbi(&mut dst, 0, 1, 0).unwrap();
        assert_eq!(dst, r.row(1, 0));
        c.quiet(0).unwrap();
    }

    #[test]
    fn tiered_values_match_the_region_and_skip_the_fabric() {
        // L1 one row, L2 big enough for the set: after the first pass every
        // re-reference is served from the hierarchy (L1 or L2), with exact
        // bytes and no further fabric traffic.
        let dim = 4usize;
        let r = region(2, 8, dim);
        let l1 = CacheConfig { capacity_bytes: (dim * 4) as u64, policy: CachePolicy::Lru };
        let mut c = CachedRegion::new(&r, None, l1, dim).with_host_tier(cfg_mb(1));
        let mut dst = vec![0.0f32; dim];
        for pass in 0..3 {
            for row in 0..8u32 {
                let served = c.get(&mut dst, 0, 1, row).unwrap();
                assert_eq!(dst, r.row(1, row), "pass {pass} row {row}");
                assert_eq!(served, pass > 0, "later passes never leave the hierarchy");
            }
        }
        let ts = c.tier_stats();
        assert!(ts.demotions > 0 && ts.l2_hits > 0);
        assert_eq!(c.resilience().gets, 8, "only first-pass misses crossed the fabric");
        assert!(c.l2_conserves());
        assert_eq!(c.stale_reads(), 0);
    }

    #[test]
    fn tiered_nbi_path_serves_exact_bytes_from_l2() {
        let dim = 2usize;
        let r = region(2, 6, dim);
        let l1 = CacheConfig { capacity_bytes: (dim * 4) as u64, policy: CachePolicy::Lru };
        let mut c = CachedRegion::new(&r, None, l1, dim).with_host_tier(cfg_mb(1));
        let mut dst = vec![0.0f32; dim];
        for _ in 0..2 {
            c.begin_batch(0);
            for row in 0..6u32 {
                c.get_nbi(&mut dst, 0, 1, row).unwrap();
                assert_eq!(dst, r.row(1, row));
            }
            c.quiet(0).unwrap();
        }
        assert_eq!(c.resilience().gets, 6, "second batch is L2-resident");
        assert!(c.tier_stats().l2_hits > 0);
        assert!(c.l2_conserves());
    }

    #[test]
    fn prefetch_stages_rows_ahead_of_the_demand_access() {
        let r = region(2, 4, 4);
        let mut c = CachedRegion::new(&r, None, cfg_mb(1), 4).with_host_tier(cfg_mb(1));
        assert!(c.prefetch(0, 1, 3));
        assert!(!c.prefetch(0, 1, 3), "already resident: refused");
        assert!(!c.prefetch(0, 1, 99), "out of range: refused");
        let mut dst = vec![0.0f32; 4];
        assert!(c.get(&mut dst, 0, 1, 3).unwrap(), "demand access is an L1 hit");
        assert_eq!(dst, r.row(1, 3));
        assert_eq!(c.resilience().gets, 0, "the prefetched row never crossed the fabric plane");
        let ts = c.tier_stats();
        assert_eq!((ts.prefetch_issued, ts.prefetch_useful), (1, 1));
    }

    #[test]
    fn invalidate_row_and_flush_cover_the_host_tier() {
        let dim = 2usize;
        let r = region(2, 4, dim);
        let l1 = CacheConfig { capacity_bytes: (dim * 4) as u64, policy: CachePolicy::Lru };
        let mut c = CachedRegion::new(&r, None, l1, dim).with_host_tier(cfg_mb(1));
        let mut dst = vec![0.0f32; dim];
        for row in 0..4u32 {
            c.get(&mut dst, 0, 1, row).unwrap();
        }
        // Rows 0..3 sit in L2 (L1 holds only row 3). Targeted invalidation
        // must reach them there.
        assert_eq!(c.invalidate_row(1, 0), 1);
        assert!(!c.get(&mut dst, 0, 1, 0).unwrap(), "invalidated row refetches");
        c.flush();
        assert!(!c.get(&mut dst, 0, 1, 2).unwrap(), "flush empties both tiers");
        assert_eq!(dst, r.row(1, 2));
        assert!(c.l2_conserves());
    }

    #[test]
    fn issuing_pes_have_independent_caches() {
        let r = region(3, 4, 4);
        let mut c = CachedRegion::new(&r, None, cfg_mb(1), 4);
        let mut dst = vec![0.0f32; 4];
        c.get(&mut dst, 0, 2, 0).unwrap();
        // Same source row from a different issuing PE: its own cold cache.
        assert!(!c.get(&mut dst, 1, 2, 0).unwrap());
        assert_eq!(c.stats().misses, 2);
    }
}
