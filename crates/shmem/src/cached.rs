//! The caching read path: an [`EmbedCache`] per issuing PE in front of the
//! resilience plane.
//!
//! [`CachedRegion`] is what the engine threads between aggregation and the
//! symmetric heap. A remote row that was fetched recently is served from
//! the issuing GPU's local cache (no fabric transaction, no retry
//! exposure); duplicate requests inside one non-blocking batch window
//! coalesce onto the first request's landing buffer, the way a warp-scope
//! coalescer merges duplicate in-flight GETs.
//!
//! Correctness invariant: the cache stores exact copies of rows read from
//! the region, and the region's rows do not change while a `CachedRegion`
//! borrows it — so every `get`/`get_nbi` writes bit-identical data into
//! `dst` whether it hit, missed, or coalesced. Caching changes *which*
//! requests touch the fabric, never the values.

use std::collections::HashMap;

use mgg_cache::{CacheConfig, CacheKey, CacheStats, EmbedCache, WarpCoalescer};
use mgg_fault::FaultSchedule;

use crate::region::SymmetricRegion;
use crate::resilience::{ResilienceStats, ResilientRegion, ShmemError};

/// Per-issuing-PE cache state: the replacement cache plus the current
/// non-blocking batch window.
#[derive(Debug)]
struct PeCache {
    cache: EmbedCache,
    /// Row payloads, parallel to the cache's slots.
    rows: Vec<Vec<f32>>,
    /// The warp-scope batch window: keys already requested since the last
    /// `begin_batch`/`quiet`.
    coalescer: WarpCoalescer,
    /// Landing buffers of the current window, so coalesced duplicates can
    /// read their payload even if the backing slot was since evicted (a
    /// real coalescer holds the landing buffer for the window's lifetime).
    inflight: HashMap<u64, Vec<f32>>,
}

impl PeCache {
    fn new(capacity_rows: usize, cfg: &CacheConfig) -> Self {
        PeCache {
            // Guarded: an undersized per-PE cache degrades to pass-through
            // instead of thrashing (see `EmbedCache::with_thrash_guard`).
            cache: EmbedCache::with_thrash_guard(capacity_rows, cfg.policy),
            rows: Vec::new(),
            coalescer: WarpCoalescer::new(),
            inflight: HashMap::new(),
        }
    }

    fn store(&mut self, slot: Option<usize>, data: &[f32]) {
        if let Some(slot) = slot {
            if self.rows.len() <= slot {
                self.rows.resize(slot + 1, Vec::new());
            }
            self.rows[slot].clear();
            self.rows[slot].extend_from_slice(data);
        }
    }
}

/// A caching view of a [`SymmetricRegion`]: remote GETs consult a per-PE
/// [`EmbedCache`] first and fall through to a [`ResilientRegion`] on miss.
///
/// Each issuing PE gets an independent cache (GPUs do not share HBM), built
/// lazily on first use so a view serving one partition pays for one cache.
#[derive(Debug)]
pub struct CachedRegion<'a> {
    inner: ResilientRegion<'a>,
    cfg: CacheConfig,
    capacity_rows: usize,
    pes: Vec<Option<PeCache>>,
}

impl<'a> CachedRegion<'a> {
    /// Wraps `region` with per-PE caches sized for `dim`-wide f32 rows
    /// under `cfg`'s byte budget, fetching misses through a resilient view
    /// that consults `faults`.
    pub fn new(
        region: &'a SymmetricRegion,
        faults: Option<&'a FaultSchedule>,
        cfg: CacheConfig,
        dim: usize,
    ) -> Self {
        let pes = region.num_pes();
        CachedRegion {
            inner: ResilientRegion::new(region, faults),
            cfg,
            capacity_rows: cfg.capacity_rows((dim * 4) as u32),
            pes: (0..pes).map(|_| None).collect(),
        }
    }

    /// Opens a new non-blocking batch window for `issuing_pe`: duplicate
    /// keys requested after this point coalesce onto one fabric
    /// transaction until [`CachedRegion::quiet`] closes the window.
    pub fn begin_batch(&mut self, issuing_pe: usize) {
        let pc = self.pe_cache(issuing_pe);
        pc.coalescer.begin();
        pc.inflight.clear();
    }

    /// Blocking cached GET. Returns `true` when served from the cache
    /// (no fabric transaction). Misses fetch through the resilience plane
    /// and are admitted to the cache.
    pub fn get(
        &mut self,
        dst: &mut [f32],
        issuing_pe: usize,
        src_pe: usize,
        src_row: u32,
    ) -> Result<bool, ShmemError> {
        let key = CacheKey { pe: src_pe as u16, row: src_row };
        let lookup = self.pe_cache(issuing_pe).cache.access(key);
        if lookup.hit {
            let pc = self.pes[issuing_pe].as_ref().expect("hit implies cache");
            dst.copy_from_slice(&pc.rows[lookup.slot.expect("hit has a slot")]);
            return Ok(true);
        }
        if let Err(e) = self.inner.get(dst, issuing_pe, src_pe, src_row) {
            // The miss admitted the key but its payload never arrived;
            // drop it so a later request refetches instead of hitting on
            // stale slot contents.
            self.pes[issuing_pe].as_mut().expect("cache built above").cache.invalidate(key);
            return Err(e);
        }
        self.pes[issuing_pe].as_mut().expect("cache built above").store(lookup.slot, dst);
        Ok(false)
    }

    /// Non-blocking cached GET, mirroring
    /// [`ResilientRegion::get_nbi`]'s semantics: the copy into `dst` is
    /// immediate (functional data plane), completion of fabric misses is
    /// settled by [`CachedRegion::quiet`]. Within the current batch window
    /// a duplicate `(src_pe, src_row)` coalesces: it reads the first
    /// request's landing buffer and issues nothing.
    pub fn get_nbi(
        &mut self,
        dst: &mut [f32],
        issuing_pe: usize,
        src_pe: usize,
        src_row: u32,
    ) -> Result<(), ShmemError> {
        let key = CacheKey { pe: src_pe as u16, row: src_row };
        let pc = self.pe_cache(issuing_pe);
        if !pc.coalescer.admit(key) {
            pc.cache.note_coalesced(1);
            let landed = pc
                .inflight
                .get(&key.pack())
                .expect("coalesced key has a landing buffer in this window");
            dst.copy_from_slice(landed);
            return Ok(());
        }
        let lookup = pc.cache.access(key);
        if lookup.hit {
            let slot = lookup.slot.expect("hit has a slot");
            let row = pc.rows[slot].clone();
            dst.copy_from_slice(&row);
            pc.inflight.insert(key.pack(), row);
            return Ok(());
        }
        if let Err(e) = self.inner.get_nbi(dst, issuing_pe, src_pe, src_row) {
            // No landing buffer ever arrived: retract the key from the
            // window (so duplicates refetch rather than coalescing onto
            // nothing) and drop the admitted-but-empty cache entry.
            let pc = self.pes[issuing_pe].as_mut().expect("cache built above");
            pc.coalescer.retract(key);
            pc.cache.invalidate(key);
            return Err(e);
        }
        let pc = self.pes[issuing_pe].as_mut().expect("cache built above");
        pc.store(lookup.slot, dst);
        pc.inflight.insert(key.pack(), dst.to_vec());
        Ok(())
    }

    /// Settles outstanding non-blocking operations of `issuing_pe` and
    /// closes its batch window.
    pub fn quiet(&mut self, issuing_pe: usize) -> Result<(), ShmemError> {
        self.inner.quiet(issuing_pe)?;
        if let Some(pc) = self.pes[issuing_pe].as_mut() {
            pc.inflight.clear();
            pc.coalescer.begin();
        }
        Ok(())
    }

    /// Drops all cached rows on every PE (counters survive) — the
    /// invalidation hook for re-planning and recovery.
    pub fn flush(&mut self) {
        for pc in self.pes.iter_mut().flatten() {
            pc.cache.flush();
            pc.inflight.clear();
            pc.coalescer.begin();
        }
    }

    /// Targeted invalidation of one `(src_pe, src_row)` across every
    /// issuing PE's cache *and* its open batch window — the epoch-fence
    /// hook for live-graph deltas: the mutated row is dropped everywhere
    /// (a pending coalesced request is retracted so duplicates refetch
    /// instead of reading the pre-mutation landing buffer) while every
    /// other resident row stays warm. Returns how many caches held it.
    pub fn invalidate_row(&mut self, src_pe: usize, src_row: u32) -> usize {
        let key = CacheKey { pe: src_pe as u16, row: src_row };
        let mut dropped = 0;
        for pc in self.pes.iter_mut().flatten() {
            if pc.cache.invalidate(key) {
                dropped += 1;
            }
            pc.coalescer.retract(key);
            pc.inflight.remove(&key.pack());
        }
        dropped
    }

    /// Cache counters rolled up over all issuing PEs.
    pub fn stats(&self) -> CacheStats {
        let mut acc = CacheStats::default();
        for pc in self.pes.iter().flatten() {
            acc.merge(&pc.cache.stats());
        }
        acc
    }

    /// What the underlying resilience plane had to do for the misses.
    pub fn resilience(&self) -> ResilienceStats {
        self.inner.stats()
    }

    fn pe_cache(&mut self, issuing_pe: usize) -> &mut PeCache {
        let slot = &mut self.pes[issuing_pe];
        if slot.is_none() {
            *slot = Some(PeCache::new(self.capacity_rows, &self.cfg));
        }
        slot.as_mut().expect("just built")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgg_cache::CachePolicy;

    fn region(pes: usize, rows: usize, dim: usize) -> SymmetricRegion {
        let mut r = SymmetricRegion::zeros(&vec![rows; pes], dim);
        for pe in 0..pes {
            for row in 0..rows {
                let v: Vec<f32> =
                    (0..dim).map(|d| (pe * 1000 + row * 10 + d) as f32).collect();
                r.put(&v, pe, row as u32);
            }
        }
        r
    }

    fn cfg_mb(mb: u32) -> CacheConfig {
        CacheConfig::from_mb(mb).with_policy(CachePolicy::Lru)
    }

    #[test]
    fn cached_values_match_the_region() {
        let r = region(2, 8, 4);
        let mut c = CachedRegion::new(&r, None, cfg_mb(1), 4);
        let mut dst = vec![0.0f32; 4];
        for row in 0..8u32 {
            c.begin_batch(0);
            c.get_nbi(&mut dst, 0, 1, row).unwrap();
            assert_eq!(dst, r.row(1, row), "miss must return the region row");
            c.get_nbi(&mut dst, 0, 1, row).unwrap();
            assert_eq!(dst, r.row(1, row), "coalesced dup must return the same row");
            c.quiet(0).unwrap();
            c.get(&mut dst, 0, 1, row).unwrap();
            assert_eq!(dst, r.row(1, row), "hit must return the same row");
        }
        let s = c.stats();
        assert_eq!(s.misses, 8);
        assert_eq!(s.coalesced, 8);
        assert_eq!(s.hits, 8);
    }

    #[test]
    fn second_batch_hits_instead_of_refetching() {
        let r = region(2, 4, 4);
        let mut c = CachedRegion::new(&r, None, cfg_mb(1), 4);
        let mut dst = vec![0.0f32; 4];
        for _ in 0..2 {
            c.begin_batch(0);
            for row in 0..4u32 {
                c.get_nbi(&mut dst, 0, 1, row).unwrap();
            }
            c.quiet(0).unwrap();
        }
        let s = c.stats();
        assert_eq!(s.misses, 4, "first batch misses");
        assert_eq!(s.hits, 4, "second batch is fully resident");
        assert_eq!(s.coalesced, 0);
        assert_eq!(c.resilience().gets, 4, "only misses touch the fabric");
    }

    #[test]
    fn duplicates_after_quiet_hit_rather_than_coalesce() {
        let r = region(2, 2, 2);
        let mut c = CachedRegion::new(&r, None, cfg_mb(1), 2);
        let mut dst = vec![0.0f32; 2];
        c.begin_batch(0);
        c.get_nbi(&mut dst, 0, 1, 0).unwrap();
        c.quiet(0).unwrap(); // closes the window
        c.get_nbi(&mut dst, 0, 1, 0).unwrap();
        let s = c.stats();
        assert_eq!((s.misses, s.hits, s.coalesced), (1, 1, 0));
    }

    #[test]
    fn invalidate_row_drops_exactly_the_mutated_row() {
        let mut r = region(2, 4, 2);
        let mut c = CachedRegion::new(&r, None, cfg_mb(1), 2);
        let mut dst = vec![0.0f32; 2];
        c.begin_batch(0);
        for row in 0..4u32 {
            c.get_nbi(&mut dst, 0, 1, row).unwrap();
        }
        c.quiet(0).unwrap();
        // Row 2 mutates (an epoch-fence feature update); invalidate it.
        assert_eq!(c.invalidate_row(1, 2), 1);
        drop(c);
        r.put(&[777.0, 888.0], 1, 2);
        let mut c = CachedRegion::new(&r, None, cfg_mb(1), 2);
        c.begin_batch(0);
        c.get_nbi(&mut dst, 0, 1, 2).unwrap();
        assert_eq!(dst, vec![777.0, 888.0], "refetch must see the new payload");
    }

    #[test]
    fn invalidate_row_retracts_an_open_window_entry() {
        let r = region(2, 4, 2);
        let mut c = CachedRegion::new(&r, None, cfg_mb(1), 2);
        let mut dst = vec![0.0f32; 2];
        c.begin_batch(0);
        c.get_nbi(&mut dst, 0, 1, 0).unwrap();
        // Fence lands mid-window: the pending request is retracted, so a
        // duplicate refetches instead of coalescing onto the stale buffer.
        c.invalidate_row(1, 0);
        c.get_nbi(&mut dst, 0, 1, 0).unwrap();
        assert_eq!(dst, r.row(1, 0));
        let s = c.stats();
        assert_eq!(s.coalesced, 0, "retracted keys must not coalesce");
        assert_eq!(s.misses, 2, "both requests crossed the fabric");
        // Untouched rows elsewhere stay warm.
        c.get_nbi(&mut dst, 0, 1, 1).unwrap();
        c.quiet(0).unwrap();
        c.get(&mut dst, 0, 1, 1).unwrap();
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn zero_capacity_still_returns_correct_values() {
        let r = region(2, 4, 4);
        let cfg = CacheConfig { capacity_bytes: 0, policy: CachePolicy::Lru };
        let mut c = CachedRegion::new(&r, None, cfg, 4);
        let mut dst = vec![0.0f32; 4];
        c.begin_batch(0);
        for row in 0..4u32 {
            c.get_nbi(&mut dst, 0, 1, row).unwrap();
            assert_eq!(dst, r.row(1, row));
            // Duplicate inside the window still coalesces off the landing
            // buffer even though nothing is ever resident.
            c.get_nbi(&mut dst, 0, 1, row).unwrap();
            assert_eq!(dst, r.row(1, row));
        }
        c.quiet(0).unwrap();
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.coalesced), (0, 4, 4));
    }

    #[test]
    fn coalesced_read_survives_eviction_of_its_slot() {
        // Capacity 1 row: A hits nothing, B's miss evicts A, then the
        // duplicate of A must still read A's landing buffer.
        let dim = 2usize;
        let r = region(2, 4, dim);
        let cfg = CacheConfig {
            capacity_bytes: (dim * 4) as u64, // exactly one row
            policy: CachePolicy::Lru,
        };
        let mut c = CachedRegion::new(&r, None, cfg, dim);
        let mut dst = vec![0.0f32; dim];
        c.begin_batch(0);
        c.get_nbi(&mut dst, 0, 1, 0).unwrap(); // A: miss, resident
        c.get_nbi(&mut dst, 0, 1, 1).unwrap(); // B: miss, evicts A
        c.get_nbi(&mut dst, 0, 1, 0).unwrap(); // dup A: coalesced
        assert_eq!(dst, r.row(1, 0));
        c.quiet(0).unwrap();
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.coalesced, s.evictions), (0, 2, 1, 1));
    }

    #[test]
    fn flush_invalidates_residency() {
        let r = region(2, 4, 4);
        let mut c = CachedRegion::new(&r, None, cfg_mb(1), 4);
        let mut dst = vec![0.0f32; 4];
        c.get(&mut dst, 0, 1, 0).unwrap();
        assert!(c.get(&mut dst, 0, 1, 0).unwrap(), "resident before flush");
        c.flush();
        assert!(!c.get(&mut dst, 0, 1, 0).unwrap(), "cold after flush");
        assert_eq!(dst, r.row(1, 0));
    }

    #[test]
    fn failed_blocking_fetch_leaves_the_key_refetchable() {
        use mgg_fault::FaultSpec;
        // A drop schedule dense enough that blocking misses routinely
        // exhaust the retry budget. A failed miss admitted the key before
        // the fetch; it must be dropped again (payload never arrived), so
        // a retry re-misses and — when the fabric finally delivers —
        // returns exact bytes instead of hitting on stale slot contents.
        let r = region(2, 8, 4);
        let spec = FaultSpec { seed: 1, drop_rate: 0.97, ..FaultSpec::quiet() };
        let sched = FaultSchedule::derive(&spec, 2);
        let mut c = CachedRegion::new(&r, Some(&sched), cfg_mb(1), 4);
        let mut dst = vec![0.0f32; 4];
        let (mut errs, mut oks) = (0u32, 0u32);
        for _ in 0..6 {
            for row in 0..8u32 {
                match c.get(&mut dst, 0, 1, row) {
                    Ok(_) => {
                        assert_eq!(dst, r.row(1, row));
                        oks += 1;
                    }
                    Err(_) => errs += 1,
                }
            }
        }
        assert!(errs > 0, "a 0.97 drop rate must exhaust the retry budget");
        assert!(oks > 0, "some retries must eventually land");
    }

    #[test]
    fn failed_nbi_fetch_does_not_poison_the_window() {
        // An erroring non-blocking GET must retract the key from the
        // batch window: with no landing buffer ever arriving, a duplicate
        // request must take the fetch path again (and fail the same way)
        // rather than panic reading a landing buffer that does not exist.
        let r = region(2, 4, 4);
        let mut c = CachedRegion::new(&r, None, cfg_mb(1), 4);
        let mut dst = vec![0.0f32; 4];
        c.begin_batch(0);
        assert!(c.get_nbi(&mut dst, 0, 1, 99).is_err());
        assert!(c.get_nbi(&mut dst, 0, 1, 99).is_err());
        // The window itself still works for keys that do land.
        c.get_nbi(&mut dst, 0, 1, 0).unwrap();
        c.get_nbi(&mut dst, 0, 1, 0).unwrap();
        assert_eq!(dst, r.row(1, 0));
        c.quiet(0).unwrap();
    }

    #[test]
    fn issuing_pes_have_independent_caches() {
        let r = region(3, 4, 4);
        let mut c = CachedRegion::new(&r, None, cfg_mb(1), 4);
        let mut dst = vec![0.0f32; 4];
        c.get(&mut dst, 0, 2, 0).unwrap();
        // Same source row from a different issuing PE: its own cold cache.
        assert!(!c.get(&mut dst, 1, 2, 0).unwrap());
        assert_eq!(c.stats().misses, 2);
    }
}
