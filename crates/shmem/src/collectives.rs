//! Host-initiated NVSHMEM collectives: barrier and sum-reduce.
//!
//! These are the `nvshmem_barrier_all` / `nvshmem_float_sum_reduce`
//! operations the paper uses between kernels (Listing 1) and proposes for
//! workload-driven partition replicas (§6). Both plane roles are covered:
//! the functional effect acts on a [`SymmetricRegion`], and the simulated
//! duration is derived from the cluster's channels.

use mgg_sim::{Cluster, SimTime};
use mgg_telemetry::Telemetry;

use crate::region::SymmetricRegion;

/// Software overhead of one barrier round on the host+driver path.
const BARRIER_SW_NS: u64 = 4_000;

/// Simulated duration of `nvshmem_barrier_all`: a dissemination barrier
/// over the interconnect, `ceil(log2 n)` rounds of tiny messages.
pub fn barrier_all(cluster: &mut Cluster) -> SimTime {
    let n = cluster.num_gpus();
    if n <= 1 {
        return BARRIER_SW_NS;
    }
    let rounds = (usize::BITS - (n - 1).leading_zeros()) as u64;
    let mut t = 0;
    for r in 0..rounds {
        let mut round_end = t;
        for pe in 0..n {
            let peer = (pe + (1 << r)) % n;
            if peer != pe {
                let done = cluster.ic.bulk_link_transfer(t, pe, peer, 8);
                round_end = round_end.max(done);
            }
        }
        t = round_end;
    }
    t + BARRIER_SW_NS
}

/// [`barrier_all`] with the round recorded as a telemetry span plus
/// `shmem.barriers` / `shmem.barrier_ns` counters (sim-time cost).
pub fn barrier_all_telemetry(cluster: &mut Cluster, telemetry: &Telemetry) -> SimTime {
    let _span = telemetry.span("shmem.barrier");
    let t = barrier_all(cluster);
    telemetry.counter_add("shmem.barriers", 1);
    telemetry.counter_add("shmem.barrier_ns", t);
    t
}

/// All-reduce (sum) over every PE's copy of a replicated region:
/// functionally sums the per-PE buffers element-wise and writes the result
/// back to all PEs; returns the simulated duration of a ring all-reduce on
/// the same byte volume.
///
/// All PEs must hold the same number of rows (a replicated buffer, the §6
/// "workload-driven partitioning" consistency case).
pub fn sum_reduce_all(cluster: &mut Cluster, region: &mut SymmetricRegion) -> SimTime {
    let n = region.num_pes();
    assert_eq!(n, cluster.num_gpus(), "region PEs must match the cluster");
    let rows = region.rows_on(0);
    for pe in 1..n {
        assert_eq!(region.rows_on(pe), rows, "sum_reduce_all needs a replicated region");
    }
    // Functional: elementwise sum, broadcast back.
    let len = rows * region.dim();
    let mut acc = vec![0.0f32; len];
    for pe in 0..n {
        for (a, &x) in acc.iter_mut().zip(region.pe_buf(pe)) {
            *a += x;
        }
    }
    for pe in 0..n {
        region.pe_buf_mut(pe).copy_from_slice(&acc);
    }
    if n <= 1 {
        return BARRIER_SW_NS;
    }
    // Timing: ring all-reduce, 2(n-1) steps of `len/n` elements each.
    let bytes = (len * std::mem::size_of::<f32>()) as u64;
    let shard = bytes.div_ceil(n as u64);
    let mut t = 0;
    for _step in 0..(2 * (n - 1)) {
        let mut step_end = t;
        for pe in 0..n {
            let done = cluster.ic.bulk_link_transfer(t, pe, (pe + 1) % n, shard);
            step_end = step_end.max(done);
        }
        t = step_end;
    }
    t + BARRIER_SW_NS
}

/// [`sum_reduce_all`] with the ring recorded as a telemetry span plus
/// `shmem.reduces` / `shmem.reduce_ns` counters (sim-time cost).
pub fn sum_reduce_all_telemetry(
    cluster: &mut Cluster,
    region: &mut SymmetricRegion,
    telemetry: &Telemetry,
) -> SimTime {
    let _span = telemetry.span("shmem.sum_reduce");
    let t = sum_reduce_all(cluster, region);
    telemetry.counter_add("shmem.reduces", 1);
    telemetry.counter_add("shmem.reduce_ns", t);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgg_sim::ClusterSpec;

    #[test]
    fn barrier_grows_with_gpu_count() {
        let mut c2 = Cluster::new(ClusterSpec::dgx_a100(2));
        let mut c8 = Cluster::new(ClusterSpec::dgx_a100(8));
        let t2 = barrier_all(&mut c2);
        let t8 = barrier_all(&mut c8);
        assert!(t8 > t2, "t8={t8} t2={t2}");
    }

    #[test]
    fn barrier_single_gpu_is_cheap() {
        let mut c = Cluster::new(ClusterSpec::dgx_a100(1));
        assert_eq!(barrier_all(&mut c), BARRIER_SW_NS);
    }

    #[test]
    fn sum_reduce_sums_and_broadcasts() {
        let mut c = Cluster::new(ClusterSpec::dgx_a100(3));
        let mut r = SymmetricRegion::zeros(&[2, 2, 2], 2);
        for pe in 0..3 {
            r.row_mut(pe, 0)[0] = (pe + 1) as f32;
        }
        let t = sum_reduce_all(&mut c, &mut r);
        assert!(t > 0);
        for pe in 0..3 {
            assert_eq!(r.row(pe, 0)[0], 6.0);
            assert_eq!(r.row(pe, 1)[1], 0.0);
        }
    }

    #[test]
    fn instrumented_collectives_cost_the_same_and_record() {
        let tel = Telemetry::enabled();
        let mut c1 = Cluster::new(ClusterSpec::dgx_a100(4));
        let plain = barrier_all(&mut c1);
        let mut c2 = Cluster::new(ClusterSpec::dgx_a100(4));
        let instrumented = barrier_all_telemetry(&mut c2, &tel);
        assert_eq!(plain, instrumented);
        assert_eq!(tel.counter_value("shmem.barriers"), 1);
        assert_eq!(tel.counter_value("shmem.barrier_ns"), plain);

        let mut r = SymmetricRegion::zeros(&[2, 2, 2, 2], 2);
        let t = sum_reduce_all_telemetry(&mut c2, &mut r, &tel);
        assert!(t > 0);
        assert_eq!(tel.counter_value("shmem.reduces"), 1);
        assert_eq!(tel.counter_value("shmem.reduce_ns"), t);
        let names: Vec<String> =
            tel.snapshot().spans.iter().map(|s| s.name.clone()).collect();
        assert!(names.contains(&"shmem.barrier".to_string()));
        assert!(names.contains(&"shmem.sum_reduce".to_string()));
    }

    #[test]
    #[should_panic(expected = "replicated region")]
    fn sum_reduce_rejects_uneven_regions() {
        let mut c = Cluster::new(ClusterSpec::dgx_a100(2));
        let mut r = SymmetricRegion::zeros(&[2, 3], 2);
        let _ = sum_reduce_all(&mut c, &mut r);
    }
}
