//! NVSHMEM-like partitioned global address space (PGAS) over the simulated
//! cluster.
//!
//! NVSHMEM (paper §2.3, Listing 1) exposes a *symmetric heap*: the same
//! allocation call on every PE yields one region per GPU, any of which is
//! addressable from kernels on any GPU by `(PE id, offset)`. This crate
//! reproduces that model in two planes:
//!
//! * **Data plane** — [`SymmetricRegion`] holds real `f32` rows per PE and
//!   implements `get`/`put` functionally, so GNN engines produce real
//!   embedding values.
//! * **Timing plane** — remote accesses are *charged* by emitting
//!   [`mgg_sim::WarpOp::RemoteGet`] operations inside kernel traces (done
//!   by the engine crates) or, for host-initiated operations such as
//!   [`barrier_all`], by advancing the cluster channels directly.
//!
//! The split keeps values exact and timing deterministic without simulating
//! data movement byte by byte.

//! A third plane — **resilience** — wraps the data plane when a fault
//! schedule is installed: [`ResilientRegion`] retries transiently dropped
//! GETs and settles lost non-blocking completions by timeout, returning
//! [`ShmemError`] instead of hanging or panicking.

#![deny(missing_docs)]

pub mod cached;
pub mod collectives;
pub mod region;
pub mod resilience;

pub use cached::CachedRegion;
pub use collectives::{
    barrier_all, barrier_all_telemetry, sum_reduce_all, sum_reduce_all_telemetry,
};
pub use region::SymmetricRegion;
pub use resilience::{ResilienceStats, ResilientRegion, RetryPolicy, ShmemError};
