//! NVSHMEM-like partitioned global address space (PGAS) over the simulated
//! cluster.
//!
//! NVSHMEM (paper §2.3, Listing 1) exposes a *symmetric heap*: the same
//! allocation call on every PE yields one region per GPU, any of which is
//! addressable from kernels on any GPU by `(PE id, offset)`. This crate
//! reproduces that model in two planes:
//!
//! * **Data plane** — [`SymmetricRegion`] holds real `f32` rows per PE and
//!   implements `get`/`put` functionally, so GNN engines produce real
//!   embedding values.
//! * **Timing plane** — remote accesses are *charged* by emitting
//!   [`mgg_sim::WarpOp::RemoteGet`] operations inside kernel traces (done
//!   by the engine crates) or, for host-initiated operations such as
//!   [`barrier_all`], by advancing the cluster channels directly.
//!
//! The split keeps values exact and timing deterministic without simulating
//! data movement byte by byte.

pub mod collectives;
pub mod region;

pub use collectives::{barrier_all, sum_reduce_all};
pub use region::SymmetricRegion;
