//! Resilient one-sided operations: retry, timeout and completion checking.
//!
//! The plain [`crate::SymmetricRegion`] assumes a perfect
//! fabric: every GET returns and every non-blocking operation eventually
//! signals completion. Under an injected [`FaultSchedule`] that is no longer
//! true — a GET can be transiently dropped, an `_nbi` completion flag can be
//! lost. This module wraps the region with the recovery protocol a real
//! NVSHMEM-level resilience layer would implement:
//!
//! * dropped GETs are re-issued up to [`RetryPolicy::max_attempts`] times
//!   with a fixed backoff, then reported as [`ShmemError::GetFailed`];
//! * outstanding `_nbi` operations are tracked per PE and settled by
//!   [`ResilientRegion::quiet`], which detects lost completion signals by
//!   timeout instead of hanging;
//! * a permanently failed PE surfaces as [`ShmemError::PeDead`] within the
//!   bounded [`RetryPolicy::deadline_ns`] budget — total retry wall-time is
//!   capped by the deadline, not just by the attempt count, so no GET can
//!   wait on a dead peer forever.
//!
//! Everything is deterministic: the drop decisions come from the schedule's
//! stateless hash, so the timing simulator in `mgg-sim` and this functional
//! layer agree on *which* operations failed without sharing state.

use std::fmt;

use mgg_fault::{FaultSchedule, COMPLETION_TIMEOUT_NS, PEER_DEATH_TIMEOUT_NS, RETRY_BACKOFF_NS};
use mgg_telemetry::Telemetry;

use crate::region::SymmetricRegion;

/// Failure of a resilient one-sided operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShmemError {
    /// A GET kept being dropped past the retry budget.
    GetFailed {
        /// Source PE the GET targeted.
        pe: usize,
        /// Row within the source PE's region.
        row: u32,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// A row address outside the region.
    RowOutOfBounds {
        /// PE that was addressed.
        pe: usize,
        /// Requested row.
        row: u32,
        /// Rows the PE actually holds.
        rows: usize,
    },
    /// `quiet` found operations that could not be settled.
    IncompleteNbi {
        /// Issuing PE whose batch failed to drain.
        pe: usize,
        /// Operations still outstanding at the deadline.
        outstanding: u64,
    },
    /// The target PE failed permanently; the operation was abandoned after
    /// waiting out the bounded peer-death budget instead of retrying
    /// forever.
    PeDead {
        /// The dead PE.
        pe: usize,
        /// Simulated time spent waiting before abandoning.
        waited_ns: u64,
    },
}

impl fmt::Display for ShmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShmemError::GetFailed { pe, row, attempts } => {
                write!(f, "one-sided GET of row {row} from PE {pe} failed after {attempts} attempts")
            }
            ShmemError::RowOutOfBounds { pe, row, rows } => {
                write!(f, "row {row} out of bounds on PE {pe} (has {rows} rows)")
            }
            ShmemError::IncompleteNbi { pe, outstanding } => {
                write!(f, "{outstanding} non-blocking operations on PE {pe} never completed")
            }
            ShmemError::PeDead { pe, waited_ns } => {
                write!(f, "PE {pe} is permanently dead (abandoned after {waited_ns} ns)")
            }
        }
    }
}

impl std::error::Error for ShmemError {}

/// Retry/timeout budget of the resilience layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per GET (first try included).
    pub max_attempts: u32,
    /// Simulated backoff charged per retry, in nanoseconds.
    pub backoff_ns: u64,
    /// Deadline after which a lost `_nbi` completion is declared done.
    pub timeout_ns: u64,
    /// Hard cap on the *total* simulated wall-time one GET may spend in
    /// retry backoff. A permanently dead PE (or an attempt budget large
    /// enough to act like one) surfaces as [`ShmemError::PeDead`] within
    /// this budget instead of burning the whole attempt budget.
    pub deadline_ns: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            backoff_ns: RETRY_BACKOFF_NS,
            timeout_ns: COMPLETION_TIMEOUT_NS,
            deadline_ns: PEER_DEATH_TIMEOUT_NS,
        }
    }
}

/// Counters of what the resilience layer had to do.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// GETs issued through the layer.
    pub gets: u64,
    /// Re-issues after a transient drop.
    pub retries: u64,
    /// GETs that needed at least one retry but ultimately succeeded.
    pub recovered_gets: u64,
    /// Lost `_nbi` completions settled by timeout in `quiet`.
    pub timed_out_completions: u64,
    /// GETs abandoned with [`ShmemError::PeDead`] — either the target PE
    /// had a permanent failure scheduled, or retries hit the deadline.
    pub dead_peer_gets: u64,
    /// Simulated nanoseconds spent on backoff and timeouts.
    pub penalty_ns: u64,
}

/// A [`SymmetricRegion`] view whose one-sided operations survive the
/// transient failures of an installed [`FaultSchedule`].
///
/// With no schedule (or a quiet one) every operation degenerates to the
/// plain region call — same data, zero stats — so wrapping is free for
/// healthy runs.
///
/// ```
/// use mgg_fault::{FaultSchedule, FaultSpec};
/// use mgg_shmem::{ResilientRegion, SymmetricRegion};
///
/// // Two PEs, four rows each, two floats per row; one row of payload.
/// let mut region = SymmetricRegion::zeros(&[4, 4], 2);
/// region.put(&[1.0, 2.0], 1, 3);
///
/// // A lossy fabric: 20% of one-sided GETs are transiently dropped.
/// let spec = FaultSpec { seed: 7, drop_rate: 0.2, ..FaultSpec::quiet() };
/// let schedule = FaultSchedule::derive(&spec, 2);
/// let mut resilient = ResilientRegion::new(&region, Some(&schedule));
///
/// // The GET retries dropped attempts transparently; data is always exact.
/// let mut dst = [0.0f32; 2];
/// let attempts = resilient.get(&mut dst, 0, 1, 3)?;
/// assert_eq!(dst, [1.0, 2.0]);
/// assert!(attempts >= 1);
/// assert_eq!(resilient.stats().gets, 1);
/// # Ok::<(), mgg_shmem::ShmemError>(())
/// ```
#[derive(Debug)]
pub struct ResilientRegion<'a> {
    region: &'a SymmetricRegion,
    faults: Option<&'a FaultSchedule>,
    policy: RetryPolicy,
    /// Per-PE serial counter of issued GETs; must mirror the timing plane's
    /// numbering so both planes drop the same operations.
    serial: Vec<u64>,
    /// Per-PE outstanding `_nbi` completions awaiting `quiet`, with their
    /// drop decision.
    outstanding: Vec<Vec<bool>>,
    stats: ResilienceStats,
    telemetry: Telemetry,
    /// Watermark of what `stats` looked like at the last telemetry flush;
    /// per-op paths never touch the recorder lock, [`Self::flush_telemetry`]
    /// pushes the delta in one batched acquisition.
    flushed: ResilienceStats,
    /// GETs that exhausted the attempt budget (`shmem.failed_gets`); not
    /// part of [`ResilienceStats`], so tracked beside it.
    failed_gets: u64,
    flushed_failed_gets: u64,
}

impl<'a> ResilientRegion<'a> {
    /// Wraps `region`, consulting `faults` for drop decisions.
    pub fn new(region: &'a SymmetricRegion, faults: Option<&'a FaultSchedule>) -> Self {
        Self::with_policy(region, faults, RetryPolicy::default())
    }

    /// Wraps with an explicit retry budget.
    pub fn with_policy(
        region: &'a SymmetricRegion,
        faults: Option<&'a FaultSchedule>,
        policy: RetryPolicy,
    ) -> Self {
        assert!(policy.max_attempts >= 1, "need at least one attempt");
        let pes = region.num_pes();
        ResilientRegion {
            region,
            faults,
            policy,
            serial: vec![0; pes],
            outstanding: vec![Vec::new(); pes],
            stats: ResilienceStats::default(),
            telemetry: Telemetry::disabled(),
            flushed: ResilienceStats::default(),
            failed_gets: 0,
            flushed_failed_gets: 0,
        }
    }

    /// Attaches a telemetry sink: GET/retry/timeout accounting flows into
    /// its counters (`shmem.*`) alongside the local stats. Counters are
    /// flushed as batched deltas at [`ResilientRegion::quiet`] /
    /// [`ResilientRegion::flush_telemetry`] / drop rather than per
    /// operation, so the per-remote-edge hot path never contends on the
    /// recorder mutex; final counter values are identical either way
    /// (counter addition is commutative).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Pushes the stats delta accumulated since the last flush into the
    /// attached telemetry under a single recorder lock. Called
    /// automatically by [`ResilientRegion::quiet`] and on drop.
    pub fn flush_telemetry(&mut self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let d = |now: u64, then: u64| now - then;
        let mut batch = self.telemetry.batch();
        for (name, now, then) in [
            ("shmem.gets", self.stats.gets, self.flushed.gets),
            ("shmem.retries", self.stats.retries, self.flushed.retries),
            ("shmem.timeouts", self.stats.timed_out_completions, self.flushed.timed_out_completions),
            ("shmem.dead_peer_gets", self.stats.dead_peer_gets, self.flushed.dead_peer_gets),
            ("shmem.penalty_ns", self.stats.penalty_ns, self.flushed.penalty_ns),
            ("shmem.failed_gets", self.failed_gets, self.flushed_failed_gets),
        ] {
            if d(now, then) > 0 {
                batch.counter_add(name, d(now, then));
            }
        }
        batch.flush();
        self.flushed = self.stats;
        self.flushed_failed_gets = self.failed_gets;
    }

    /// Blocking resilient GET: copies row `(src_pe, src_row)` into `dst`,
    /// retrying transient drops. Returns the number of attempts used.
    pub fn get(
        &mut self,
        dst: &mut [f32],
        issuing_pe: usize,
        src_pe: usize,
        src_row: u32,
    ) -> Result<u32, ShmemError> {
        self.check_row(src_pe, src_row)?;
        self.stats.gets += 1;
        if self.pe_dead(src_pe) {
            return Err(self.abandon_dead(src_pe, self.policy.deadline_ns));
        }
        let mut attempts = 0;
        let mut waited_ns = 0u64;
        while attempts < self.policy.max_attempts {
            let dropped = self.next_drop(issuing_pe).0;
            attempts += 1;
            if !dropped {
                if attempts > 1 {
                    self.stats.recovered_gets += 1;
                }
                self.region.get(dst, src_pe, src_row);
                return Ok(attempts);
            }
            self.stats.retries += 1;
            self.stats.penalty_ns += self.policy.backoff_ns;
            waited_ns += self.policy.backoff_ns;
            if waited_ns >= self.policy.deadline_ns {
                // The attempt budget alone would keep retrying; past the
                // wall-time deadline an unresponsive PE is declared dead
                // rather than distinguished from an unlucky drop streak.
                return Err(self.abandon_dead(src_pe, waited_ns));
            }
        }
        self.failed_gets += 1;
        Err(ShmemError::GetFailed { pe: src_pe, row: src_row, attempts })
    }

    /// Non-blocking resilient GET: the copy happens immediately (the data
    /// plane is functional), but completion is only guaranteed after
    /// [`ResilientRegion::quiet`] settles it.
    pub fn get_nbi(
        &mut self,
        dst: &mut [f32],
        issuing_pe: usize,
        src_pe: usize,
        src_row: u32,
    ) -> Result<(), ShmemError> {
        self.check_row(src_pe, src_row)?;
        self.stats.gets += 1;
        if self.pe_dead(src_pe) {
            return Err(self.abandon_dead(src_pe, self.policy.deadline_ns));
        }
        let (dropped, completion_lost) = self.next_drop(issuing_pe);
        if dropped {
            // A dropped nbi GET is re-issued inline (one-sided ops have no
            // target-side state to clean up).
            self.stats.retries += 1;
            self.stats.recovered_gets += 1;
            self.stats.penalty_ns += self.policy.backoff_ns;
        }
        self.region.get(dst, src_pe, src_row);
        self.outstanding[issuing_pe].push(completion_lost);
        Ok(())
    }

    /// Settles all outstanding non-blocking operations of `issuing_pe`
    /// (mirrors `nvshmem_quiet`). Lost completion signals are detected by
    /// timeout and charged to the penalty counter.
    pub fn quiet(&mut self, issuing_pe: usize) -> Result<(), ShmemError> {
        for completion_lost in self.outstanding[issuing_pe].drain(..) {
            if completion_lost {
                self.stats.timed_out_completions += 1;
                self.stats.penalty_ns += self.policy.timeout_ns;
            }
        }
        self.flush_telemetry();
        Ok(())
    }

    /// Outstanding non-blocking operations of `pe` not yet settled.
    pub fn outstanding(&self, pe: usize) -> usize {
        self.outstanding[pe].len()
    }

    /// What the layer has done so far.
    pub fn stats(&self) -> ResilienceStats {
        self.stats
    }

    fn check_row(&self, pe: usize, row: u32) -> Result<(), ShmemError> {
        let rows = self.region.rows_on(pe);
        if (row as usize) < rows {
            Ok(())
        } else {
            Err(ShmemError::RowOutOfBounds { pe, row, rows })
        }
    }

    /// Whether `pe` has a permanent failure scheduled. The functional data
    /// plane is timeless, so a PE that dies at *any* point of the run serves
    /// no data here — the timing plane decides which in-flight operations
    /// beat the failure; this plane guarantees none of them hangs.
    fn pe_dead(&self, pe: usize) -> bool {
        self.faults.is_some_and(|s| s.gpu_dead_at(pe).is_some())
    }

    /// Records the bounded abandonment of an operation on a dead PE and
    /// builds the error for it.
    fn abandon_dead(&mut self, pe: usize, waited_ns: u64) -> ShmemError {
        self.stats.dead_peer_gets += 1;
        self.stats.penalty_ns += waited_ns;
        ShmemError::PeDead { pe, waited_ns }
    }

    /// Advances `pe`'s serial counter and returns (get dropped, completion
    /// lost) for that serial.
    fn next_drop(&mut self, pe: usize) -> (bool, bool) {
        let Some(s) = self.faults else { return (false, false) };
        let serial = self.serial[pe];
        self.serial[pe] += 1;
        (s.drops_get(pe, serial), s.drops_completion(pe, serial))
    }
}

impl Drop for ResilientRegion<'_> {
    /// Final telemetry flush: error paths that never reach `quiet` (failed
    /// or abandoned GETs) still land in the counters.
    fn drop(&mut self) {
        self.flush_telemetry();
    }
}

#[cfg(test)]
mod tests {
    use mgg_fault::FaultSpec;

    use super::*;

    fn region() -> SymmetricRegion {
        let matrix: Vec<f32> = (0..16).map(|x| x as f32).collect();
        SymmetricRegion::scatter_rows(&matrix, &[2, 2], 4)
    }

    #[test]
    fn no_faults_is_a_plain_get() {
        let r = region();
        let mut res = ResilientRegion::new(&r, None);
        let mut dst = [0.0f32; 4];
        let attempts = res.get(&mut dst, 0, 1, 0).unwrap();
        assert_eq!(attempts, 1);
        assert_eq!(dst, [8.0, 9.0, 10.0, 11.0]);
        assert_eq!(res.stats(), ResilienceStats { gets: 1, ..Default::default() });
    }

    #[test]
    fn drops_are_retried_and_data_is_exact() {
        let r = region();
        let spec = FaultSpec { seed: 123, drop_rate: 0.4, ..FaultSpec::quiet() };
        let sched = FaultSchedule::derive(&spec, 2);
        let mut res = ResilientRegion::new(&r, Some(&sched));
        let mut dst = [0.0f32; 4];
        // Enough GETs that a 40% drop rate must force retries.
        for i in 0..64 {
            let row = i % 2;
            res.get(&mut dst, 0, 1, row).unwrap();
            assert_eq!(dst[0], (8 + 4 * row) as f32, "retried GET must return true data");
        }
        let s = res.stats();
        assert!(s.retries > 0, "40% drop rate over 64 GETs must retry");
        assert_eq!(s.gets, 64);
        assert!(s.recovered_gets > 0 && s.recovered_gets <= s.retries);
        assert!(s.penalty_ns >= s.retries * RETRY_BACKOFF_NS);
    }

    #[test]
    fn retry_budget_exhaustion_reports() {
        let r = region();
        // drop_rate just below 1.0: with 2 attempts some GET fails fast.
        let spec = FaultSpec { seed: 7, drop_rate: 0.99, ..FaultSpec::quiet() };
        let sched = FaultSchedule::derive(&spec, 2);
        let policy = RetryPolicy { max_attempts: 2, ..RetryPolicy::default() };
        let mut res = ResilientRegion::with_policy(&r, Some(&sched), policy);
        let mut dst = [0.0f32; 4];
        let mut failed = false;
        for _ in 0..32 {
            if let Err(ShmemError::GetFailed { pe, attempts, .. }) = res.get(&mut dst, 0, 1, 0) {
                assert_eq!(pe, 1);
                assert_eq!(attempts, 2);
                failed = true;
                break;
            }
        }
        assert!(failed, "a 99% drop rate must exhaust a 2-attempt budget");
    }

    #[test]
    fn nbi_completions_settle_in_quiet() {
        let r = region();
        let spec = FaultSpec { seed: 99, drop_rate: 0.5, ..FaultSpec::quiet() };
        let sched = FaultSchedule::derive(&spec, 2);
        let mut res = ResilientRegion::new(&r, Some(&sched));
        let mut dst = [0.0f32; 4];
        for i in 0..32 {
            res.get_nbi(&mut dst, 0, 1, i % 2).unwrap();
        }
        assert_eq!(res.outstanding(0), 32);
        res.quiet(0).unwrap();
        assert_eq!(res.outstanding(0), 0);
        let s = res.stats();
        assert!(s.timed_out_completions > 0, "50% completion loss must time out");
        assert!(s.penalty_ns > 0);
    }

    #[test]
    fn dead_pe_surfaces_within_the_deadline_budget() {
        let r = region();
        // PE 1 fails permanently mid-run; the data plane abandons every GET
        // targeting it after exactly the peer-death budget — never a hang.
        let sched = FaultSchedule::gpu_failure(2, 1, 2_000);
        let mut res = ResilientRegion::new(&r, Some(&sched));
        let mut dst = [0.0f32; 4];
        assert_eq!(
            res.get(&mut dst, 0, 1, 0),
            Err(ShmemError::PeDead { pe: 1, waited_ns: PEER_DEATH_TIMEOUT_NS })
        );
        assert_eq!(
            res.get_nbi(&mut dst, 0, 1, 0),
            Err(ShmemError::PeDead { pe: 1, waited_ns: PEER_DEATH_TIMEOUT_NS })
        );
        assert_eq!(res.outstanding(0), 0, "an abandoned nbi GET must not await quiet");
        let s = res.stats();
        assert_eq!(s.dead_peer_gets, 2);
        assert_eq!(s.penalty_ns, 2 * PEER_DEATH_TIMEOUT_NS);
        // The surviving PE still serves data normally.
        let attempts = res.get(&mut dst, 1, 0, 0).unwrap();
        assert_eq!(attempts, 1);
        assert_eq!(dst, [0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn retry_wall_time_is_capped_by_the_deadline() {
        let r = region();
        let spec = FaultSpec { seed: 7, drop_rate: 0.99, ..FaultSpec::quiet() };
        let sched = FaultSchedule::derive(&spec, 2);
        // A huge attempt budget that would act like an infinite loop on a
        // dead peer: the wall-time deadline must cut it off first.
        let policy = RetryPolicy {
            max_attempts: 1_000,
            backoff_ns: 500,
            deadline_ns: 2_000,
            ..RetryPolicy::default()
        };
        let mut res = ResilientRegion::with_policy(&r, Some(&sched), policy);
        let mut dst = [0.0f32; 4];
        let mut abandoned = false;
        for _ in 0..32 {
            if let Err(ShmemError::PeDead { pe, waited_ns }) = res.get(&mut dst, 0, 1, 0) {
                assert_eq!(pe, 1);
                assert!(
                    waited_ns >= policy.deadline_ns
                        && waited_ns < policy.deadline_ns + policy.backoff_ns,
                    "abandonment must land on the first backoff past the deadline, \
                     got {waited_ns}"
                );
                abandoned = true;
                break;
            }
        }
        assert!(abandoned, "a 99% drop rate must hit the wall-time deadline");
    }

    #[test]
    fn telemetry_counters_mirror_stats() {
        let r = region();
        let spec = FaultSpec { seed: 123, drop_rate: 0.4, ..FaultSpec::quiet() };
        let sched = FaultSchedule::derive(&spec, 2);
        let tel = Telemetry::enabled();
        let mut res = ResilientRegion::new(&r, Some(&sched)).with_telemetry(tel.clone());
        let mut dst = [0.0f32; 4];
        for i in 0..32 {
            let _ = res.get(&mut dst, 0, 1, i % 2);
            res.get_nbi(&mut dst, 0, 1, i % 2).unwrap();
        }
        res.quiet(0).unwrap();
        let s = res.stats();
        assert_eq!(tel.counter_value("shmem.gets"), s.gets);
        assert_eq!(tel.counter_value("shmem.retries"), s.retries);
        assert_eq!(tel.counter_value("shmem.timeouts"), s.timed_out_completions);
        assert_eq!(tel.counter_value("shmem.penalty_ns"), s.penalty_ns);
        // A second flush with no new activity adds nothing (delta is 0).
        res.flush_telemetry();
        assert_eq!(tel.counter_value("shmem.gets"), s.gets);
    }

    #[test]
    fn drop_flushes_counters_without_quiet() {
        let r = region();
        let spec = FaultSpec { seed: 9, drop_rate: 0.3, ..FaultSpec::quiet() };
        let sched = FaultSchedule::derive(&spec, 2);
        let tel = Telemetry::enabled();
        let expected = {
            let mut res = ResilientRegion::new(&r, Some(&sched)).with_telemetry(tel.clone());
            let mut dst = [0.0f32; 4];
            for i in 0..16 {
                let _ = res.get(&mut dst, 0, 1, i % 2);
            }
            // No quiet(): the hot path has not touched the recorder yet.
            assert_eq!(tel.counter_value("shmem.gets"), 0);
            res.stats()
        };
        assert_eq!(tel.counter_value("shmem.gets"), expected.gets);
        assert_eq!(tel.counter_value("shmem.retries"), expected.retries);
        assert_eq!(tel.counter_value("shmem.penalty_ns"), expected.penalty_ns);
    }

    #[test]
    fn out_of_bounds_is_an_error_not_a_panic() {
        let r = region();
        let mut res = ResilientRegion::new(&r, None);
        let mut dst = [0.0f32; 4];
        assert_eq!(
            res.get(&mut dst, 0, 1, 9),
            Err(ShmemError::RowOutOfBounds { pe: 1, row: 9, rows: 2 })
        );
    }

    #[test]
    fn errors_display() {
        let e = ShmemError::GetFailed { pe: 1, row: 3, attempts: 4 };
        assert!(e.to_string().contains("after 4 attempts"));
        let e = ShmemError::IncompleteNbi { pe: 0, outstanding: 7 };
        assert!(e.to_string().contains("7 non-blocking"));
        let e = ShmemError::PeDead { pe: 2, waited_ns: 5_000 };
        assert!(e.to_string().contains("permanently dead"));
    }
}

#[cfg(test)]
mod proptests {
    use mgg_fault::FaultSpec;
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// Whatever the fault scenario, a successful resilient GET returns
        /// exactly the plain region's data: faults perturb timing and
        /// effort, never values.
        #[test]
        fn recovered_data_is_bit_exact(
            seed in 0u64..500,
            drop_rate in 0.0f64..0.6,
            dim in 1usize..8,
            rows in 1u32..6,
        ) {
            let pes = 3usize;
            let total = pes * rows as usize;
            let matrix: Vec<f32> = (0..total * dim).map(|i| i as f32 * 0.25).collect();
            let region = SymmetricRegion::scatter_rows(&matrix, &vec![rows as usize; pes], dim);
            let spec = FaultSpec { seed, drop_rate, ..FaultSpec::quiet() };
            let sched = FaultSchedule::derive(&spec, pes);
            let mut res = ResilientRegion::new(&region, Some(&sched));
            let mut dst = vec![0.0f32; dim];
            for pe in 0..pes {
                for row in 0..rows {
                    if res.get(&mut dst, (pe + 1) % pes, pe, row).is_ok() {
                        prop_assert_eq!(&dst[..], region.row(pe, row));
                    }
                }
            }
        }
    }
}
