//! The symmetric-heap region: the data plane of the PGAS model.

/// A symmetric allocation of `f32` row vectors across PEs, mirroring
/// `nvshmem_malloc` for a partitioned embedding matrix.
///
/// Each PE owns `rows_per_pe[pe]` rows of `dim` floats. A row anywhere in
/// the cluster is addressed by `(pe, local_row)` — exactly the Figure-5
/// addressing after MGG's global→local index conversion.
///
/// # Examples
///
/// ```
/// use mgg_shmem::SymmetricRegion;
///
/// // Scatter a 4x2 matrix across two PEs, two rows each.
/// let matrix: Vec<f32> = (0..8).map(|x| x as f32).collect();
/// let mut region = SymmetricRegion::scatter_rows(&matrix, &[2, 2], 2);
///
/// // A one-sided GET reads PE 1's first row from anywhere.
/// let mut dst = [0.0f32; 2];
/// region.get(&mut dst, 1, 0);
/// assert_eq!(dst, [4.0, 5.0]);
///
/// // A one-sided PUT writes it back.
/// region.put(&[9.0, 9.0], 1, 0);
/// assert_eq!(region.row(1, 0), &[9.0, 9.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SymmetricRegion {
    dim: usize,
    rows_per_pe: Vec<usize>,
    bufs: Vec<Vec<f32>>,
}

impl SymmetricRegion {
    /// Allocates `rows_per_pe[pe] x dim` zeros on every PE.
    pub fn zeros(rows_per_pe: &[usize], dim: usize) -> Self {
        assert!(!rows_per_pe.is_empty(), "need at least one PE");
        assert!(dim > 0, "dim must be positive");
        let bufs = rows_per_pe.iter().map(|&r| vec![0.0f32; r * dim]).collect();
        SymmetricRegion { dim, rows_per_pe: rows_per_pe.to_vec(), bufs }
    }

    /// Allocates and fills from a dense `rows x dim` matrix, scattering
    /// row blocks to PEs in order (PE 0 gets the first
    /// `rows_per_pe[0]` rows, and so on).
    pub fn scatter_rows(matrix: &[f32], rows_per_pe: &[usize], dim: usize) -> Self {
        let total: usize = rows_per_pe.iter().sum();
        assert_eq!(matrix.len(), total * dim, "matrix shape mismatch");
        let mut region = Self::zeros(rows_per_pe, dim);
        let mut offset = 0usize;
        for (pe, &rows) in rows_per_pe.iter().enumerate() {
            let len = rows * dim;
            region.bufs[pe].copy_from_slice(&matrix[offset..offset + len]);
            offset += len;
        }
        region
    }

    /// Number of PEs.
    pub fn num_pes(&self) -> usize {
        self.bufs.len()
    }

    /// Row-vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Rows owned by `pe`.
    pub fn rows_on(&self, pe: usize) -> usize {
        self.rows_per_pe[pe]
    }

    /// Immutable view of row `(pe, local_row)`.
    #[inline]
    pub fn row(&self, pe: usize, local_row: u32) -> &[f32] {
        let start = local_row as usize * self.dim;
        &self.bufs[pe][start..start + self.dim]
    }

    /// Mutable view of row `(pe, local_row)` — only the owning PE writes
    /// its rows in MGG, but the API does not enforce that (NVSHMEM does
    /// not either).
    #[inline]
    pub fn row_mut(&mut self, pe: usize, local_row: u32) -> &mut [f32] {
        let start = local_row as usize * self.dim;
        &mut self.bufs[pe][start..start + self.dim]
    }

    /// Functional one-sided GET: copies row `(src_pe, src_row)` into `dst`
    /// (mirrors `nvshmem_float_get` at warp scope).
    #[inline]
    pub fn get(&self, dst: &mut [f32], src_pe: usize, src_row: u32) {
        dst.copy_from_slice(self.row(src_pe, src_row));
    }

    /// Functional one-sided PUT: writes `src` into row `(dst_pe, dst_row)`.
    #[inline]
    pub fn put(&mut self, src: &[f32], dst_pe: usize, dst_row: u32) {
        self.row_mut(dst_pe, dst_row).copy_from_slice(src);
    }

    /// Gathers all PEs' rows back into one dense matrix, in PE order.
    pub fn gather_rows(&self) -> Vec<f32> {
        let total: usize = self.rows_per_pe.iter().sum();
        let mut out = Vec::with_capacity(total * self.dim);
        for buf in &self.bufs {
            out.extend_from_slice(buf);
        }
        out
    }

    /// Raw per-PE buffer (read-only), for bulk operations.
    pub fn pe_buf(&self, pe: usize) -> &[f32] {
        &self.bufs[pe]
    }

    /// Raw per-PE buffer (mutable), for bulk operations.
    pub fn pe_buf_mut(&mut self, pe: usize) -> &mut [f32] {
        &mut self.bufs[pe]
    }

    /// Bytes of one row, as they travel on the wire.
    pub fn row_bytes(&self) -> u32 {
        (self.dim * std::mem::size_of::<f32>()) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_and_gather_roundtrip() {
        let matrix: Vec<f32> = (0..12).map(|x| x as f32).collect(); // 6 rows x dim 2
        let region = SymmetricRegion::scatter_rows(&matrix, &[2, 3, 1], 2);
        assert_eq!(region.row(0, 1), &[2.0, 3.0]);
        assert_eq!(region.row(1, 0), &[4.0, 5.0]);
        assert_eq!(region.row(2, 0), &[10.0, 11.0]);
        assert_eq!(region.gather_rows(), matrix);
    }

    #[test]
    fn get_copies_remote_row() {
        let matrix: Vec<f32> = (0..8).map(|x| x as f32).collect();
        let region = SymmetricRegion::scatter_rows(&matrix, &[2, 2], 2);
        let mut dst = [0.0f32; 2];
        region.get(&mut dst, 1, 1);
        assert_eq!(dst, [6.0, 7.0]);
    }

    #[test]
    fn put_overwrites() {
        let mut region = SymmetricRegion::zeros(&[1, 1], 3);
        region.put(&[1.0, 2.0, 3.0], 1, 0);
        assert_eq!(region.row(1, 0), &[1.0, 2.0, 3.0]);
        assert_eq!(region.row(0, 0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn row_bytes_matches_dim() {
        let region = SymmetricRegion::zeros(&[1], 602);
        assert_eq!(region.row_bytes(), 602 * 4);
    }

    #[test]
    #[should_panic]
    fn out_of_range_row_panics() {
        let region = SymmetricRegion::zeros(&[1, 1], 2);
        let _ = region.row(0, 1);
    }

    #[test]
    #[should_panic(expected = "matrix shape mismatch")]
    fn scatter_shape_checked() {
        let _ = SymmetricRegion::scatter_rows(&[0.0; 5], &[2, 1], 2);
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        #[test]
        fn scatter_gather_roundtrip(
            rows_per_pe in proptest::collection::vec(0usize..20, 1..6),
            dim in 1usize..16,
        ) {
            let total: usize = rows_per_pe.iter().sum();
            let matrix: Vec<f32> = (0..total * dim).map(|i| i as f32 * 0.5).collect();
            let region = SymmetricRegion::scatter_rows(&matrix, &rows_per_pe, dim);
            prop_assert_eq!(region.gather_rows(), matrix);
        }

        #[test]
        fn put_then_get_roundtrips(
            rows in 1u32..30,
            pes in 1usize..5,
            dim in 1usize..12,
            target_pe_raw in 0usize..5,
            target_row_raw in 0u32..30,
            value in -100.0f32..100.0,
        ) {
            let target_pe = target_pe_raw % pes;
            let target_row = target_row_raw % rows;
            let mut region = SymmetricRegion::zeros(&vec![rows as usize; pes], dim);
            let payload = vec![value; dim];
            region.put(&payload, target_pe, target_row);
            let mut back = vec![0.0f32; dim];
            region.get(&mut back, target_pe, target_row);
            prop_assert_eq!(back, payload);
            // Everything else stayed zero.
            let nonzero: usize = (0..pes)
                .flat_map(|pe| (0..rows).map(move |r| (pe, r)))
                .filter(|&(pe, r)| {
                    region.row(pe, r).iter().any(|&x| x != 0.0)
                })
                .count();
            prop_assert!(nonzero <= 1);
        }
    }
}
