//! Persistent worker pool backing every parallel region in the workspace.
//!
//! PR 4's runtime spawned a fresh `std::thread::scope` per call, paying
//! thread creation + teardown on every region (the `spawn_ns` category in
//! the attribution profile) and defeating any per-worker state reuse. This
//! module replaces that with one process-wide pool of **parked** workers:
//!
//! * Workers are spawned lazily, the first time a region needs them, and
//!   then park on a condvar; dispatching a region is a mutex lock + a
//!   `notify_all`, not N `clone`/`mmap`/`exec` round-trips.
//! * A **region generation counter** tells each worker whether the
//!   published job is new to it. Workers whose lane index is beyond the
//!   region's width skip the job but still advance their generation, so a
//!   later wider region cannot confuse them.
//! * The caller participates as **lane 0** (a region of width `w` uses the
//!   caller plus `w - 1` pool workers), so the 2-thread configuration
//!   costs one parked thread, and the pool is never idle-spinning while
//!   the caller blocks.
//! * Regions are **serialized**: one region runs at a time, and nested
//!   parallel calls from inside a job run sequentially on their claiming
//!   worker (see [`in_worker`]). That makes dispatch non-reentrant, which
//!   is what rules out deadlock, and it fixes the PR 6 oversubscription
//!   where a sweep job calling `MggEngine::aggregate_values` stacked a
//!   second scoped pool on top of the first.
//! * [`shutdown`] parks the pool permanently: it joins every worker and
//!   leaves the pool in a state where the next region lazily respawns.
//!
//! # Safety contract
//!
//! The published job is a type-erased borrow of a stack closure in the
//! dispatching caller's frame. This is sound because [`run_region`] does
//! not return until every participating worker has finished the job (the
//! `remaining` count reaches zero), even when the caller's own lane
//! panics — the completion wait lives in a drop guard.

use std::any::Any;
use std::cell::Cell;
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Type-erased job: `call(data, lane)` runs one lane of the region.
#[derive(Clone, Copy)]
struct Job {
    call: unsafe fn(*const (), usize),
    data: *const (),
    /// Region width including the caller's lane 0; pool workers run lanes
    /// `1..width`.
    width: usize,
}

// SAFETY: `data` borrows a `Sync` closure that the dispatching thread
// keeps alive (and exclusive to this region) until `remaining == 0`.
unsafe impl Send for Job {}

#[derive(Default)]
struct PoolState {
    /// Bumped once per dispatched region.
    generation: u64,
    /// The region currently published to workers, if any.
    job: Option<Job>,
    /// Participating pool workers that have not yet finished the job.
    remaining: usize,
    /// Number of worker threads spawned so far.
    spawned: usize,
    /// First panic payload raised by a worker lane this region.
    panic: Option<Box<dyn Any + Send>>,
    /// Set by [`shutdown`]: workers drain and exit.
    shutdown: bool,
}

struct Pool {
    state: Mutex<PoolState>,
    /// Workers park here waiting for a new generation (or shutdown).
    work_cv: Condvar,
    /// The dispatching caller parks here waiting for `remaining == 0`.
    done_cv: Condvar,
    /// Serializes regions from concurrent callers (tests run in parallel);
    /// held for the whole region, released before panic propagation.
    dispatch: Mutex<()>,
    /// Join handles for spawned workers, harvested by [`shutdown`].
    handles: Mutex<Vec<JoinHandle<()>>>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState::default()),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
        dispatch: Mutex::new(()),
        handles: Mutex::new(Vec::new()),
    })
}

thread_local! {
    /// True on pool worker threads and on a caller thread while it is
    /// running lane 0 of a region. Nested parallel calls check this and
    /// take the sequential path instead of re-entering dispatch.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// True when the current thread is executing inside a pool region (either
/// as a pool worker or as the dispatching caller running lane 0). Parallel
/// entry points use this to run nested regions sequentially.
pub fn in_worker() -> bool {
    IN_POOL.with(|f| f.get())
}

/// RAII: marks the current thread as inside a pool region.
struct InPoolGuard {
    prev: bool,
}

impl InPoolGuard {
    fn enter() -> Self {
        let prev = IN_POOL.with(|f| f.replace(true));
        InPoolGuard { prev }
    }
}

impl Drop for InPoolGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_POOL.with(|f| f.set(prev));
    }
}

/// The parked-worker loop. `lane` is this worker's fixed lane index
/// (1-based: the caller owns lane 0).
fn worker_loop(lane: usize) {
    let p = pool();
    let _guard = InPoolGuard::enter();
    let mut seen_generation = 0u64;
    loop {
        let job = {
            let mut st = p.state.lock().expect("pool state poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation > seen_generation {
                    seen_generation = st.generation;
                    match st.job {
                        // Lanes beyond the region width skip the job but
                        // still advance their generation above.
                        Some(job) if lane < job.width => break job,
                        _ => {}
                    }
                }
                st = p.work_cv.wait(st).expect("pool state poisoned");
            }
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // SAFETY: the dispatcher keeps the closure alive until
            // `remaining` reaches zero, which happens strictly after this
            // call returns.
            unsafe { (job.call)(job.data, lane) };
        }));
        let mut st = p.state.lock().expect("pool state poisoned");
        if let Err(payload) = outcome {
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            p.done_cv.notify_all();
        }
    }
}

/// Ensures at least `lanes` pool workers exist (lanes `1..=lanes`),
/// spawning any missing ones. Called with the dispatch lock held.
fn ensure_workers(lanes: usize) {
    let p = pool();
    let mut st = p.state.lock().expect("pool state poisoned");
    if st.spawned >= lanes {
        return;
    }
    let mut handles = p.handles.lock().expect("pool handles poisoned");
    while st.spawned < lanes {
        let lane = st.spawned + 1;
        let handle = std::thread::Builder::new()
            .name(format!("mgg-pool-{lane}"))
            .spawn(move || worker_loop(lane))
            .expect("spawn pool worker");
        handles.push(handle);
        st.spawned += 1;
    }
}

unsafe fn call_thunk<F: Fn(usize) + Sync>(data: *const (), lane: usize) {
    // SAFETY: `data` was erased from `&F` by `run_region` and is alive for
    // the whole region.
    let f = unsafe { &*(data as *const F) };
    f(lane);
}

/// Waits (on drop) until every pool lane of the current region finished,
/// then harvests any worker panic. Running this in a drop guard keeps the
/// job borrow alive even when the caller's own lane 0 panics.
struct RegionCompletion {
    armed: bool,
}

impl RegionCompletion {
    /// Waits for completion and returns the first worker panic, if any.
    fn finish(mut self) -> Option<Box<dyn Any + Send>> {
        self.armed = false;
        Self::wait()
    }

    fn wait() -> Option<Box<dyn Any + Send>> {
        let p = pool();
        let mut st = p.state.lock().expect("pool state poisoned");
        while st.remaining > 0 {
            st = p.done_cv.wait(st).expect("pool state poisoned");
        }
        st.job = None;
        st.panic.take()
    }
}

impl Drop for RegionCompletion {
    fn drop(&mut self) {
        if self.armed {
            // Caller lane panicked: still must not release the job borrow
            // until the workers are done with it. Their panic (if any) is
            // dropped; the caller's unwind wins.
            drop(Self::wait());
        }
    }
}

/// Runs `f(lane)` for every lane in `0..width` — lane 0 on the calling
/// thread, lanes `1..width` on parked pool workers — and returns once all
/// lanes finished. Worker panics are re-raised on the caller.
///
/// `width` must be at least 2 (width 0/1 regions are the sequential fast
/// path and never reach the pool).
pub fn run_region<F: Fn(usize) + Sync>(width: usize, f: F) {
    debug_assert!(width >= 2, "pool regions are always multi-lane");
    let p = pool();
    // One region at a time. Nested calls never get here (`in_worker`
    // routes them to the sequential path), so this cannot self-deadlock.
    let dispatch = p.dispatch.lock().expect("pool dispatch poisoned");
    ensure_workers(width - 1);
    let job = Job {
        call: call_thunk::<F>,
        data: &f as *const F as *const (),
        width,
    };
    {
        let mut st = p.state.lock().expect("pool state poisoned");
        st.generation += 1;
        st.job = Some(job);
        st.remaining = width - 1;
        st.panic = None;
        p.work_cv.notify_all();
    }
    let completion = RegionCompletion { armed: true };
    {
        // Lane 0 runs on the caller; nested parallel calls inside the job
        // body see `in_worker()` and stay sequential.
        let _nested = InPoolGuard::enter();
        f(0);
    }
    let panic = completion.finish();
    drop(dispatch);
    if let Some(payload) = panic {
        std::panic::resume_unwind(payload);
    }
}

/// Joins every pool worker and resets the pool to its never-started state.
/// The next parallel region respawns workers lazily. Intended for clean
/// process teardown and for tests that assert pool lifecycle behavior;
/// concurrent in-flight regions finish first (dispatch is serialized).
pub fn shutdown() {
    let p = pool();
    let _dispatch = p.dispatch.lock().expect("pool dispatch poisoned");
    {
        let mut st = p.state.lock().expect("pool state poisoned");
        st.shutdown = true;
        p.work_cv.notify_all();
    }
    let handles: Vec<JoinHandle<()>> =
        std::mem::take(&mut *p.handles.lock().expect("pool handles poisoned"));
    for h in handles {
        // A worker that panicked outside a job (impossible today) would
        // surface here; pool teardown must not hide it.
        h.join().expect("pool worker exited cleanly");
    }
    let mut st = p.state.lock().expect("pool state poisoned");
    st.shutdown = false;
    st.spawned = 0;
    st.generation = 0;
    st.job = None;
    st.remaining = 0;
    st.panic = None;
}

/// Number of pool workers currently spawned (not counting callers).
/// Observability hook for tests and the attribution profiler.
pub fn spawned_workers() -> usize {
    pool().state.lock().expect("pool state poisoned").spawned
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn region_runs_every_lane_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        run_region(4, |lane| {
            hits[lane].fetch_add(1, Ordering::Relaxed);
        });
        for (lane, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "lane {lane}");
        }
        assert!(spawned_workers() >= 3);
    }

    #[test]
    fn consecutive_regions_reuse_workers_and_widths_can_shrink() {
        run_region(5, |_| {});
        let after_wide = spawned_workers();
        run_region(2, |_| {});
        assert_eq!(spawned_workers(), after_wide, "narrow region spawned nothing new");
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let result = std::panic::catch_unwind(|| {
            run_region(3, |lane| {
                if lane == 2 {
                    panic!("lane 2 exploded");
                }
            });
        });
        assert!(result.is_err());
        // The pool survives a panicking region.
        run_region(3, |_| {});
    }

    #[test]
    fn nested_regions_are_flagged_for_sequential_fallback() {
        let nested_in_pool = AtomicUsize::new(0);
        run_region(2, |_| {
            if in_worker() {
                nested_in_pool.fetch_add(1, Ordering::Relaxed);
            }
        });
        // Both lanes (caller and worker) must report in_worker.
        assert_eq!(nested_in_pool.load(Ordering::Relaxed), 2);
        assert!(!in_worker(), "flag restored after the region");
    }
}
