//! Deterministic parallel execution runtime for the MGG host stack.
//!
//! Every parallel surface in this workspace (bench sweep cells, functional
//! aggregation, chaos seed matrices, speculative tuner probes) runs through
//! this crate so there is exactly one place where the determinism contract
//! is enforced:
//!
//! * **Ordered merge** — [`par_map`]/[`par_map_indexed`] write each job's
//!   result into its input-index slot and return the slots in input order,
//!   so the output `Vec` is bit-identical to a sequential `map` at *any*
//!   thread count (including odd counts and oversubscription).
//! * **Disjoint writes** — [`par_chunks_mut`]/[`par_slices_mut`] hand each
//!   worker exclusive `&mut` windows of one buffer; the windows tile the
//!   buffer, so there is no accumulation-order freedom to lose.
//! * **No wall-clock, no RNG in jobs** — jobs must be pure functions of
//!   their input index/item. The runtime provides no ambient randomness and
//!   no timing information to jobs; anything time- or schedule-dependent
//!   belongs on the caller's side of the join.
//!
//! Scheduling is work-stealing-lite: workers claim job indices one at a
//! time from a shared atomic counter, which self-balances uneven job costs
//! without per-worker deques. The claim order is nondeterministic; the
//! merge order is not, which is all that matters for output bits.
//!
//! The pool is scoped (`std::thread::scope`), dependency-free and
//! allocation-light: no threads outlive a call, and a 1-thread
//! configuration (or a 1-item input) short-circuits to a plain sequential
//! loop on the calling thread.

pub mod profile;

use profile::{LaneRaw, RegionTimer};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide thread-count setting: 0 = auto (`available_parallelism`).
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread override installed by [`with_threads`]; 0 = none.
    static LOCAL_THREADS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Sets the process-wide worker count used by subsequent parallel calls.
/// `0` restores the default (`std::thread::available_parallelism()`).
/// `1` forces the fully sequential path.
pub fn set_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// The worker count parallel calls on this thread will use right now:
/// the innermost [`with_threads`] override, else [`set_threads`], else
/// `std::thread::available_parallelism()`.
pub fn threads() -> usize {
    let local = LOCAL_THREADS.with(|t| t.get());
    if local > 0 {
        return local;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `f` with the calling thread's worker count pinned to `n`
/// (restored afterwards, panic-safe). Scoped and per-thread, so
/// concurrently running tests cannot perturb each other's setting.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_THREADS.with(|t| t.set(self.0));
        }
    }
    let _restore = LOCAL_THREADS.with(|t| {
        let prev = t.get();
        t.set(n);
        Restore(prev)
    });
    f()
}

/// Shared result buffer: each slot is written exactly once, by whichever
/// worker claimed its index. Disjointness is guaranteed by the atomic
/// claim counter; the scope join publishes the writes.
struct Slots<T> {
    ptr: *mut Option<T>,
}
unsafe impl<T: Send> Send for Slots<T> {}
unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    /// # Safety
    /// `i` must be in bounds and claimed by exactly one worker.
    unsafe fn write(&self, i: usize, value: T) {
        unsafe { *self.ptr.add(i) = Some(value) };
    }
}

/// Maps `f` over `0..n` in parallel; results come back in index order,
/// bit-identical to `(0..n).map(f).collect()` at any thread count.
pub fn par_map_indexed<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let workers = threads().min(n);
    if workers <= 1 {
        let timer = RegionTimer::start("par_map_indexed", n, 1);
        let Some(timer) = timer else {
            return (0..n).map(f).collect();
        };
        let mut lane = LaneRaw::default();
        let out = (0..n)
            .map(|i| {
                let j0 = timer.elapsed_ns();
                let value = f(i);
                let j1 = timer.elapsed_ns();
                lane.exec_ns += j1.saturating_sub(j0);
                lane.units.record(j1.saturating_sub(j0));
                lane.jobs += 1;
                lane.done_ns = j1;
                value
            })
            .collect();
        timer.finish(vec![lane]);
        return out;
    }
    let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let shared = Slots { ptr: slots.as_mut_ptr() };
    let next = AtomicUsize::new(0);
    // One check per region, not per job: profiling is on only when the
    // caller wrapped this in `profile::collect`.
    let timer = RegionTimer::start("par_map_indexed", n, workers);
    let mut lanes: Vec<LaneRaw> = Vec::with_capacity(if timer.is_some() { workers } else { 0 });
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let timer = timer.as_ref();
                    // Propagate the caller's collector into this worker so
                    // nested regions and telemetry hooks attribute here.
                    let _guard =
                        timer.map(|t| profile::install(Some(t.collector())));
                    let mut lane = LaneRaw::default();
                    if let Some(t) = timer {
                        lane.spawn_delay_ns = t.elapsed_ns();
                    }
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        match timer {
                            None => {
                                let value = f(i);
                                // SAFETY: `i` < n and fetch_add hands each
                                // index to one worker only.
                                unsafe { shared.write(i, value) };
                            }
                            Some(t) => {
                                let j0 = t.elapsed_ns();
                                let value = f(i);
                                // SAFETY: as above.
                                unsafe { shared.write(i, value) };
                                let j1 = t.elapsed_ns();
                                lane.exec_ns += j1.saturating_sub(j0);
                                lane.units.record(j1.saturating_sub(j0));
                                lane.jobs += 1;
                                lane.done_ns = j1;
                            }
                        }
                    }
                    lane
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(lane) => lanes.push(lane),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    if let Some(timer) = timer {
        timer.finish(lanes);
    }
    slots.into_iter().map(|s| s.expect("every claimed slot is written")).collect()
}

/// Maps `f` over `items` in parallel; results merge in input order
/// (bit-identical to `items.iter().map(f).collect()`).
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(items.len(), |i| f(&items[i]))
}

/// Runs `f(slice_index, slice)` over a set of disjoint mutable slices in
/// parallel. The slices must come from one buffer (e.g. via
/// `split_at_mut`/`chunks_mut`); each is visited exactly once.
pub fn par_slices_mut<T, F>(slices: Vec<&mut [T]>, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = slices.len();
    let workers = threads().min(n);
    if workers <= 1 {
        let timer = RegionTimer::start("par_slices_mut", n, 1);
        let Some(timer) = timer else {
            for (i, s) in slices.into_iter().enumerate() {
                f(i, s);
            }
            return;
        };
        let mut lane = LaneRaw::default();
        for (i, s) in slices.into_iter().enumerate() {
            let j0 = timer.elapsed_ns();
            f(i, s);
            let j1 = timer.elapsed_ns();
            lane.exec_ns += j1.saturating_sub(j0);
            lane.units.record(j1.saturating_sub(j0));
            lane.jobs += 1;
            lane.done_ns = j1;
        }
        timer.finish(vec![lane]);
        return;
    }
    // Decompose the exclusive borrows into raw windows so idle workers can
    // claim them through a shared reference; the atomic counter keeps the
    // windows exclusive.
    struct Windows<T> {
        parts: Vec<(*mut T, usize)>,
    }
    unsafe impl<T: Send> Send for Windows<T> {}
    unsafe impl<T: Send> Sync for Windows<T> {}
    let windows = Windows {
        parts: slices.into_iter().map(|s| (s.as_mut_ptr(), s.len())).collect(),
    };
    // Capture the struct (not its field) so the `Sync` impl applies.
    let windows = &windows;
    let next = AtomicUsize::new(0);
    let timer = RegionTimer::start("par_slices_mut", n, workers);
    let mut lanes: Vec<LaneRaw> = Vec::with_capacity(if timer.is_some() { workers } else { 0 });
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let timer = timer.as_ref();
                    let _guard =
                        timer.map(|t| profile::install(Some(t.collector())));
                    let mut lane = LaneRaw::default();
                    if let Some(t) = timer {
                        lane.spawn_delay_ns = t.elapsed_ns();
                    }
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let (ptr, len) = windows.parts[i];
                        // SAFETY: window `i` is claimed by exactly one
                        // worker and the source slices were disjoint
                        // exclusive borrows that outlive the scope.
                        let slice = unsafe { std::slice::from_raw_parts_mut(ptr, len) };
                        match timer {
                            None => f(i, slice),
                            Some(t) => {
                                let j0 = t.elapsed_ns();
                                f(i, slice);
                                let j1 = t.elapsed_ns();
                                lane.exec_ns += j1.saturating_sub(j0);
                                lane.units.record(j1.saturating_sub(j0));
                                lane.jobs += 1;
                                lane.done_ns = j1;
                            }
                        }
                    }
                    lane
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(lane) => lanes.push(lane),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    if let Some(timer) = timer {
        timer.finish(lanes);
    }
}

/// Runs `f(chunk_index, chunk)` over `chunk_len`-sized windows of `data`
/// in parallel (last window may be shorter). Equivalent to a sequential
/// `chunks_mut` loop for any thread count.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    let chunk_len = chunk_len.max(1);
    par_slices_mut(data.chunks_mut(chunk_len).collect(), f);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_merges_in_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let want: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for t in [1, 2, 4, 7, 16] {
            let got = with_threads(t, || par_map(&items, |&x| x * x + 1));
            assert_eq!(got, want, "{t} threads");
        }
    }

    #[test]
    fn par_map_indexed_handles_degenerate_sizes() {
        for n in [0usize, 1, 2] {
            for t in [1, 3, 8] {
                let got = with_threads(t, || par_map_indexed(n, |i| i * 3));
                assert_eq!(got, (0..n).map(|i| i * 3).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn float_results_are_bit_identical_across_thread_counts() {
        // Each job does its own order-sensitive float reduction; the merge
        // preserves job boundaries, so bits match exactly.
        let job = |i: usize| -> f64 {
            let mut acc = 0.0f64;
            for k in 0..100 {
                acc += 1.0 / (1.0 + (i * 100 + k) as f64);
            }
            acc
        };
        let seq: Vec<u64> = (0..31).map(|i| job(i).to_bits()).collect();
        for t in [2, 4, 7] {
            let par: Vec<u64> = with_threads(t, || par_map_indexed(31, job))
                .into_iter()
                .map(f64::to_bits)
                .collect();
            assert_eq!(par, seq, "{t} threads");
        }
    }

    #[test]
    fn par_chunks_mut_tiles_the_buffer() {
        let mut seq = vec![0u32; 103];
        for (i, c) in seq.chunks_mut(10).enumerate() {
            for (j, v) in c.iter_mut().enumerate() {
                *v = (i * 1000 + j) as u32;
            }
        }
        for t in [1, 2, 4, 7] {
            let mut par = vec![0u32; 103];
            with_threads(t, || {
                par_chunks_mut(&mut par, 10, |i, c| {
                    for (j, v) in c.iter_mut().enumerate() {
                        *v = (i * 1000 + j) as u32;
                    }
                })
            });
            assert_eq!(par, seq, "{t} threads");
        }
    }

    #[test]
    fn par_slices_mut_visits_every_slice_once() {
        let mut data = [0u8; 64];
        let (a, rest) = data.split_at_mut(5);
        let (b, c) = rest.split_at_mut(40);
        with_threads(4, || {
            par_slices_mut(vec![a, b, c], |i, s| {
                for v in s.iter_mut() {
                    *v += 1 + i as u8;
                }
            })
        });
        assert!(data[..5].iter().all(|&v| v == 1));
        assert!(data[5..45].iter().all(|&v| v == 2));
        assert!(data[45..].iter().all(|&v| v == 3));
    }

    #[test]
    fn with_threads_is_scoped_and_restores() {
        set_threads(0);
        let outer = threads();
        let inner = with_threads(5, threads);
        assert_eq!(inner, 5);
        assert_eq!(threads(), outer);
        // Nested overrides unwind correctly.
        let (a, b) = with_threads(3, || (threads(), with_threads(2, threads)));
        assert_eq!((a, b), (3, 2));
    }

    #[test]
    fn set_threads_one_forces_sequential_path() {
        // A job observing its own thread id: with 1 worker everything runs
        // on the caller.
        let caller = std::thread::current().id();
        let ids = with_threads(1, || par_map_indexed(8, |_| std::thread::current().id()));
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn uneven_job_costs_still_merge_in_order() {
        // Front-loaded work: early indices are much slower, so claim order
        // diverges wildly from completion order.
        let job = |i: usize| -> usize {
            let spins = if i < 4 { 200_000 } else { 10 };
            let mut acc = i;
            for _ in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (acc & 0xff) ^ i
        };
        let want: Vec<usize> = (0..64).map(job).collect();
        let got = with_threads(7, || par_map_indexed(64, job));
        assert_eq!(got, want);
    }
}
