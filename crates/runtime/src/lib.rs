//! Deterministic parallel execution runtime for the MGG host stack.
//!
//! Every parallel surface in this workspace (bench sweep cells, functional
//! aggregation, chaos seed matrices, speculative tuner probes) runs through
//! this crate so there is exactly one place where the determinism contract
//! is enforced:
//!
//! * **Slot merge** — [`par_map`]/[`par_map_indexed`] write each job's
//!   result into a preallocated, cache-line-padded slot owned by its input
//!   index (written exactly once, read only after the region barrier) and
//!   return the slots in input order, so the output `Vec` is bit-identical
//!   to a sequential `map` at *any* thread count (including odd counts and
//!   oversubscription) and workers never share a hot cache line while
//!   writing results.
//! * **Disjoint writes** — [`par_chunks_mut`]/[`par_slices_mut`] hand each
//!   worker exclusive `&mut` windows of one buffer; the windows tile the
//!   buffer, so there is no accumulation-order freedom to lose.
//! * **No wall-clock, no RNG in jobs** — jobs must be pure functions of
//!   their input index/item. The runtime provides no ambient randomness and
//!   no timing information to jobs; anything time- or schedule-dependent
//!   belongs on the caller's side of the join.
//!
//! Scheduling is work-stealing-lite: workers claim job indices one at a
//! time from a shared atomic counter, which self-balances uneven job costs
//! without per-worker deques. The claim order is nondeterministic; the
//! merge order is not, which is all that matters for output bits.
//!
//! Execution runs on a **persistent worker pool** ([`pool`]): workers are
//! spawned lazily on first use, park between regions, and are reused by
//! every subsequent parallel call, so a region dispatch costs a mutex
//! handoff instead of per-call thread spawn/teardown. The caller
//! participates as lane 0. Nested parallel calls from inside a job run
//! sequentially on the claiming worker (no oversubscription, same bits).
//! A 1-thread configuration (or an empty/1-item input) short-circuits to a
//! plain sequential loop on the calling thread, and [`shutdown_pool`]
//! joins the workers for clean teardown.

#![deny(missing_docs)]

pub mod pool;
pub mod profile;

pub use pool::{shutdown as shutdown_pool, spawned_workers};

use profile::{LaneRaw, RegionTimer};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide thread-count setting: 0 = auto (`available_parallelism`).
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread override installed by [`with_threads`]; 0 = none.
    static LOCAL_THREADS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Sets the process-wide worker count used by subsequent parallel calls.
/// `0` restores the default (`std::thread::available_parallelism()`).
/// `1` forces the fully sequential path.
///
/// The persistent pool resizes on demand: growing spawns the missing
/// workers at the next parallel region; shrinking leaves the extra workers
/// parked (they hold no scratch and cost only their stack) so a later
/// wider setting reuses them without respawning.
pub fn set_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// The worker count parallel calls on this thread will use right now:
/// the innermost [`with_threads`] override, else [`set_threads`], else
/// `std::thread::available_parallelism()`.
pub fn threads() -> usize {
    let local = LOCAL_THREADS.with(|t| t.get());
    if local > 0 {
        return local;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `f` with the calling thread's worker count pinned to `n`
/// (restored afterwards, panic-safe). Scoped and per-thread, so
/// concurrently running tests cannot perturb each other's setting.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_THREADS.with(|t| t.set(self.0));
        }
    }
    let _restore = LOCAL_THREADS.with(|t| {
        let prev = t.get();
        t.set(n);
        Restore(prev)
    });
    f()
}

/// Deterministic chunk length for splitting `total` work items across the
/// current worker count: one contiguous chunk per worker (ceil division),
/// floored at `min_per_chunk` so tiny inputs do not shatter into jobs
/// smaller than their dispatch cost. Callers that split work by rows use
/// this so granularity follows `rows / threads` instead of a fixed size;
/// the chunk boundary never influences output values (each item is a pure
/// function of its index), so bit-identity across thread counts holds.
pub fn chunk_len(total: usize, min_per_chunk: usize) -> usize {
    let w = threads().max(1);
    total.div_ceil(w).max(min_per_chunk.max(1))
}

/// One result slot, padded to a cache line so workers completing adjacent
/// jobs never write to the same line (the false-sharing half of the PR 7
/// merge-wait finding). Written exactly once by the worker that claimed
/// the index, read by the caller after the region barrier.
#[repr(align(64))]
struct Slot<T>(UnsafeCell<Option<T>>);

// SAFETY: the atomic claim counter hands each slot index to exactly one
// worker, and the caller only reads after the region completes.
unsafe impl<T: Send> Sync for Slot<T> {}

/// Effective worker count for a region of `n` jobs on this thread. Nested
/// regions (called from inside a pool job) always run sequentially: the
/// pool is already saturated, and re-entering dispatch would deadlock.
fn region_workers(n: usize) -> usize {
    if pool::in_worker() {
        return 1;
    }
    threads().min(n)
}

/// Maps `f` over `0..n` in parallel; results come back in index order,
/// bit-identical to `(0..n).map(f).collect()` at any thread count.
pub fn par_map_indexed<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let workers = region_workers(n);
    if workers <= 1 {
        let timer = RegionTimer::start("par_map_indexed", n, 1);
        let Some(timer) = timer else {
            return (0..n).map(f).collect();
        };
        let mut lane = LaneRaw::default();
        let out = (0..n)
            .map(|i| {
                let (j0, c0) = (timer.elapsed_ns(), profile::thread_cpu_ns());
                let value = f(i);
                let (j1, c1) = (timer.elapsed_ns(), profile::thread_cpu_ns());
                lane.note_job(j1.saturating_sub(j0), c1.saturating_sub(c0), j1);
                value
            })
            .collect();
        timer.finish(vec![lane]);
        return out;
    }
    let slots: Vec<Slot<U>> = (0..n).map(|_| Slot(UnsafeCell::new(None))).collect();
    let next = AtomicUsize::new(0);
    // One check per region, not per job: profiling is on only when the
    // caller wrapped this in `profile::collect`.
    let timer = RegionTimer::start("par_map_indexed", n, workers);
    let lanes = run_pool_region(workers, timer.as_ref(), |i| {
        let value = f(i);
        // SAFETY: `i` < n and the claim counter hands each index to one
        // lane only; the caller reads only after the region barrier.
        unsafe { *slots[i].0.get() = Some(value) };
    }, &next, n);
    if let Some(timer) = timer {
        timer.finish(lanes);
    }
    slots
        .into_iter()
        .map(|s| s.0.into_inner().expect("every claimed slot is written"))
        .collect()
}

/// Shared claim-loop body for pool-backed regions: each lane pulls job
/// indices from `next` and runs `body(i)`, with per-job attribution when
/// `timer` is live. Returns the per-lane profiles (empty when unprofiled).
fn run_pool_region<B>(
    workers: usize,
    timer: Option<&RegionTimer>,
    body: B,
    next: &AtomicUsize,
    n: usize,
) -> Vec<LaneRaw>
where
    B: Fn(usize) + Sync,
{
    let lane_slots: Vec<Slot<LaneRaw>> =
        (0..if timer.is_some() { workers } else { 0 })
            .map(|_| Slot(UnsafeCell::new(None)))
            .collect();
    pool::run_region(workers, |lane| {
        // Pool lanes need the caller's collector for nested regions and
        // telemetry hooks; lane 0 is the caller and already has it.
        let _guard = if lane > 0 {
            timer.map(|t| profile::install(Some(t.collector())))
        } else {
            None
        };
        let mut lane_raw = LaneRaw::default();
        if let Some(t) = timer {
            lane_raw.spawn_delay_ns = t.elapsed_ns();
        }
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            match timer {
                None => body(i),
                Some(t) => {
                    let (j0, c0) = (t.elapsed_ns(), profile::thread_cpu_ns());
                    body(i);
                    let (j1, c1) = (t.elapsed_ns(), profile::thread_cpu_ns());
                    lane_raw.note_job(j1.saturating_sub(j0), c1.saturating_sub(c0), j1);
                }
            }
        }
        if timer.is_some() {
            // SAFETY: each lane index is owned by exactly one lane.
            unsafe { *lane_slots[lane].0.get() = Some(lane_raw) };
        }
    });
    lane_slots
        .into_iter()
        .map(|s| s.0.into_inner().expect("every lane reports"))
        .collect()
}

/// Maps `f` over `items` in parallel; results merge in input order
/// (bit-identical to `items.iter().map(f).collect()`).
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(items.len(), |i| f(&items[i]))
}

/// Runs `f(slice_index, slice)` over a set of disjoint mutable slices in
/// parallel. The slices must come from one buffer (e.g. via
/// `split_at_mut`/`chunks_mut`); each is visited exactly once.
pub fn par_slices_mut<T, F>(slices: Vec<&mut [T]>, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = slices.len();
    let workers = region_workers(n);
    if workers <= 1 {
        let timer = RegionTimer::start("par_slices_mut", n, 1);
        let Some(timer) = timer else {
            for (i, s) in slices.into_iter().enumerate() {
                f(i, s);
            }
            return;
        };
        let mut lane = LaneRaw::default();
        for (i, s) in slices.into_iter().enumerate() {
            let (j0, c0) = (timer.elapsed_ns(), profile::thread_cpu_ns());
            f(i, s);
            let (j1, c1) = (timer.elapsed_ns(), profile::thread_cpu_ns());
            lane.note_job(j1.saturating_sub(j0), c1.saturating_sub(c0), j1);
        }
        timer.finish(vec![lane]);
        return;
    }
    // Decompose the exclusive borrows into raw windows so idle workers can
    // claim them through a shared reference; the atomic counter keeps the
    // windows exclusive.
    struct Windows<T> {
        parts: Vec<(*mut T, usize)>,
    }
    unsafe impl<T: Send> Send for Windows<T> {}
    unsafe impl<T: Send> Sync for Windows<T> {}
    let windows = Windows {
        parts: slices.into_iter().map(|s| (s.as_mut_ptr(), s.len())).collect(),
    };
    // Capture the struct (not its field) so the `Sync` impl applies.
    let windows = &windows;
    let next = AtomicUsize::new(0);
    let timer = RegionTimer::start("par_slices_mut", n, workers);
    let lanes = run_pool_region(workers, timer.as_ref(), |i| {
        let (ptr, len) = windows.parts[i];
        // SAFETY: window `i` is claimed by exactly one lane and the source
        // slices were disjoint exclusive borrows that outlive the region.
        let slice = unsafe { std::slice::from_raw_parts_mut(ptr, len) };
        f(i, slice);
    }, &next, n);
    if let Some(timer) = timer {
        timer.finish(lanes);
    }
}

/// Runs `f(chunk_index, chunk)` over `chunk_len`-sized windows of `data`
/// in parallel (last window may be shorter). Equivalent to a sequential
/// `chunks_mut` loop for any thread count.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    let chunk_len = chunk_len.max(1);
    par_slices_mut(data.chunks_mut(chunk_len).collect(), f);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_merges_in_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let want: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for t in [1, 2, 4, 7, 16] {
            let got = with_threads(t, || par_map(&items, |&x| x * x + 1));
            assert_eq!(got, want, "{t} threads");
        }
    }

    #[test]
    fn par_map_indexed_handles_degenerate_sizes() {
        for n in [0usize, 1, 2] {
            for t in [1, 3, 8] {
                let got = with_threads(t, || par_map_indexed(n, |i| i * 3));
                assert_eq!(got, (0..n).map(|i| i * 3).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn float_results_are_bit_identical_across_thread_counts() {
        // Each job does its own order-sensitive float reduction; the merge
        // preserves job boundaries, so bits match exactly.
        let job = |i: usize| -> f64 {
            let mut acc = 0.0f64;
            for k in 0..100 {
                acc += 1.0 / (1.0 + (i * 100 + k) as f64);
            }
            acc
        };
        let seq: Vec<u64> = (0..31).map(|i| job(i).to_bits()).collect();
        for t in [2, 4, 7] {
            let par: Vec<u64> = with_threads(t, || par_map_indexed(31, job))
                .into_iter()
                .map(f64::to_bits)
                .collect();
            assert_eq!(par, seq, "{t} threads");
        }
    }

    #[test]
    fn par_chunks_mut_tiles_the_buffer() {
        let mut seq = vec![0u32; 103];
        for (i, c) in seq.chunks_mut(10).enumerate() {
            for (j, v) in c.iter_mut().enumerate() {
                *v = (i * 1000 + j) as u32;
            }
        }
        for t in [1, 2, 4, 7] {
            let mut par = vec![0u32; 103];
            with_threads(t, || {
                par_chunks_mut(&mut par, 10, |i, c| {
                    for (j, v) in c.iter_mut().enumerate() {
                        *v = (i * 1000 + j) as u32;
                    }
                })
            });
            assert_eq!(par, seq, "{t} threads");
        }
    }

    #[test]
    fn par_slices_mut_visits_every_slice_once() {
        let mut data = [0u8; 64];
        let (a, rest) = data.split_at_mut(5);
        let (b, c) = rest.split_at_mut(40);
        with_threads(4, || {
            par_slices_mut(vec![a, b, c], |i, s| {
                for v in s.iter_mut() {
                    *v += 1 + i as u8;
                }
            })
        });
        assert!(data[..5].iter().all(|&v| v == 1));
        assert!(data[5..45].iter().all(|&v| v == 2));
        assert!(data[45..].iter().all(|&v| v == 3));
    }

    #[test]
    fn with_threads_is_scoped_and_restores() {
        set_threads(0);
        let outer = threads();
        let inner = with_threads(5, threads);
        assert_eq!(inner, 5);
        assert_eq!(threads(), outer);
        // Nested overrides unwind correctly.
        let (a, b) = with_threads(3, || (threads(), with_threads(2, threads)));
        assert_eq!((a, b), (3, 2));
    }

    #[test]
    fn set_threads_one_forces_sequential_path() {
        // A job observing its own thread id: with 1 worker everything runs
        // on the caller.
        let caller = std::thread::current().id();
        let ids = with_threads(1, || par_map_indexed(8, |_| std::thread::current().id()));
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn uneven_job_costs_still_merge_in_order() {
        // Front-loaded work: early indices are much slower, so claim order
        // diverges wildly from completion order.
        let job = |i: usize| -> usize {
            let spins = if i < 4 { 200_000 } else { 10 };
            let mut acc = i;
            for _ in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (acc & 0xff) ^ i
        };
        let want: Vec<usize> = (0..64).map(job).collect();
        let got = with_threads(7, || par_map_indexed(64, job));
        assert_eq!(got, want);
    }

    #[test]
    fn nested_parallel_calls_run_sequentially_and_stay_correct() {
        // A job that itself calls par_map: the nested region must take the
        // sequential path (no pool re-entry) and still produce exact bits.
        let want: Vec<Vec<u64>> = (0..12u64)
            .map(|i| (0..8u64).map(|j| i * 100 + j * j).collect())
            .collect();
        for t in [2, 4, 7] {
            let got = with_threads(t, || {
                par_map_indexed(12, |i| {
                    with_threads(4, || par_map_indexed(8, |j| (i as u64) * 100 + (j * j) as u64))
                })
            });
            assert_eq!(got, want, "{t} threads");
        }
    }

    #[test]
    fn chunk_len_tracks_threads_with_floor() {
        with_threads(4, || {
            assert_eq!(chunk_len(1000, 1), 250);
            assert_eq!(chunk_len(1001, 1), 251);
            // The floor wins when rows/threads would shatter the work.
            assert_eq!(chunk_len(16, 64), 64);
            assert_eq!(chunk_len(0, 8), 8);
        });
        with_threads(1, || assert_eq!(chunk_len(1000, 1), 1000));
    }
}
