//! Host-side attribution profiler for the worker pool.
//!
//! `ext_hostperf` showed the deterministic runtime losing wall-clock at
//! 2–8 threads while producing bit-identical results — a loss that was
//! unattributable because telemetry only saw engine phases, never the
//! workers. This module answers "where did the speedup go" by accounting
//! every nanosecond of every worker lane in a parallel region to one of a
//! small set of named categories:
//!
//! * **exec** — running claimed jobs (the only useful time),
//! * **contended-exec** — the slice of in-job wall time the thread was
//!   *not* on a CPU (wall minus `CLOCK_THREAD_CPUTIME_ID` per job):
//!   scheduler preemption from oversubscription, allocator stalls, page
//!   faults. This is the category that used to be smeared into exec and
//!   made per-lane exec appear to inflate linearly with thread count,
//! * **spawn** — from region entry until the worker claims its first job
//!   (pool dispatch/wake latency),
//! * **merge-wait** — from the worker's last job finishing until the
//!   region joins (the price of the ordered merge: finished workers park
//!   while stragglers run),
//! * **idle** — the remainder (claim-counter gaps, scheduler preemption
//!   between jobs).
//!
//! Per worker and per region, `spawn + exec + idle + merge_wait == wall`
//! exactly (idle is defined as the remainder, and exec splits internally
//! into on-CPU exec + contended-exec), so the attribution always covers
//! 100% of the parallel-vs-ideal gap. Two host overheads that occur
//! *inside* exec are refined separately rather than double-counted:
//! telemetry shard fork/merge time and recorder-mutex contention
//! (acquire counts plus a blocked-time histogram), both reported by the
//! `mgg-telemetry` hooks below.
//!
//! # Determinism contract
//!
//! Profiling records wall-clock timing *around* jobs and never feeds
//! anything back into them, so results are bit-identical whether the
//! profiler is on or off (pinned by `tests/host_profile.rs`). It is also
//! zero-cost when disabled: the pool checks one thread-local per region
//! (not per job), and every hook is behind the same check.
//!
//! # Scoping
//!
//! Collection is scoped, not global: [`collect`] installs a collector on
//! the calling thread, the pool propagates it into its workers for the
//! duration of each region, and concurrently running code (other tests,
//! other sessions) is never observed.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of buckets in the blocked-time and unit-time histograms.
pub const HIST_BUCKETS: usize = 8;

/// Upper bounds (ns, inclusive) of the histogram buckets; the last bucket
/// is open-ended.
pub const HIST_BOUNDS_NS: [u64; HIST_BUCKETS] =
    [250, 1_000, 4_000, 16_000, 64_000, 256_000, 1_000_000, u64::MAX];

fn bucket_of(ns: u64) -> usize {
    HIST_BOUNDS_NS.iter().position(|&b| ns <= b).unwrap_or(HIST_BUCKETS - 1)
}

/// One worker lane of one parallel region. The four categories tile the
/// region wall exactly: `spawn_delay + exec + idle + merge_wait == wall`.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct WorkerLane {
    /// Worker index within the region (0-based).
    pub worker: u64,
    /// Jobs this worker claimed and executed.
    pub jobs: u64,
    /// Wall time spent executing claimed jobs, ns.
    pub exec_ns: u64,
    /// Portion of `exec_ns` the thread was descheduled (wall minus thread
    /// CPU time per job), ns — contention/oversubscription inside jobs.
    pub contended_exec_ns: u64,
    /// Region entry → first claim attempt, ns (pool dispatch latency).
    pub spawn_delay_ns: u64,
    /// Last job finished → region join, ns (ordered-merge parking).
    pub merge_wait_ns: u64,
    /// Remainder: wall − spawn − exec − merge_wait, ns.
    pub idle_ns: u64,
}

/// Histogram of per-job execution times — the work-unit size distribution
/// that decides whether the pool's claim granularity is too fine.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct UnitHistogram {
    /// Number of jobs observed.
    pub count: u64,
    /// Total execution time across all jobs, ns.
    pub sum_ns: u64,
    /// Fastest job, ns.
    pub min_ns: u64,
    /// Slowest job, ns.
    pub max_ns: u64,
    /// Counts per bucket; bounds are [`HIST_BOUNDS_NS`].
    pub buckets: Vec<u64>,
}

impl UnitHistogram {
    fn new() -> Self {
        UnitHistogram { buckets: vec![0; HIST_BUCKETS], ..Default::default() }
    }

    pub(crate) fn record(&mut self, ns: u64) {
        if self.buckets.len() != HIST_BUCKETS {
            self.buckets = vec![0; HIST_BUCKETS];
        }
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.sum_ns += ns;
        self.buckets[bucket_of(ns)] += 1;
    }

    fn merge(&mut self, other: &UnitHistogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min_ns = other.min_ns;
            self.max_ns = other.max_ns;
        } else {
            self.min_ns = self.min_ns.min(other.min_ns);
            self.max_ns = self.max_ns.max(other.max_ns);
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        for (d, s) in self.buckets.iter_mut().zip(&other.buckets) {
            *d += s;
        }
    }

    /// Mean job execution time, ns.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }
}

/// One `par_map`/`par_map_indexed`/`par_slices_mut` region.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct RegionProfile {
    /// Region label (from [`labeled`], else the entry-point name).
    pub name: String,
    /// Entry point: `par_map_indexed` or `par_slices_mut`.
    pub kind: String,
    /// Region start, ns since the collector was created.
    pub start_ns: u64,
    /// Region wall-clock (entry → ordered results ready), ns.
    pub wall_ns: u64,
    /// Jobs executed in the region.
    pub jobs: u64,
    /// Worker lanes that participated (pool width at entry).
    pub workers: u64,
    /// Per-worker activity breakdown.
    pub lanes: Vec<WorkerLane>,
    /// Per-job execution-time distribution across all lanes.
    pub units: UnitHistogram,
}

/// Recorder-mutex contention observed by the `mgg-telemetry` hooks.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct MutexStats {
    /// Lock acquisitions on the telemetry recorder mutex.
    pub acquires: u64,
    /// Acquisitions that found the lock held and had to block.
    pub contended: u64,
    /// Total time spent blocked, ns.
    pub blocked_ns: u64,
    /// Blocked-time histogram; bounds are [`HIST_BOUNDS_NS`].
    pub blocked_hist: Vec<u64>,
}

/// Sum of every worker-lane category across all regions, plus the
/// in-exec host overheads — the "where did the speedup go" totals.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct OverheadBreakdown {
    /// Worker-lane *on-CPU* time running jobs, ns (the useful part; thread
    /// CPU clock, so oversubscription cannot inflate it).
    pub exec_ns: u64,
    /// In-job wall time the thread was descheduled, ns — the former
    /// "exec inflation": allocator stalls, preemption, page faults.
    pub contended_exec_ns: u64,
    /// Worker-lane time waiting to start, ns.
    pub spawn_ns: u64,
    /// Worker-lane time idle mid-region, ns.
    pub idle_ns: u64,
    /// Worker-lane time parked on the ordered merge, ns.
    pub merge_wait_ns: u64,
    /// Inside exec: telemetry shard allocation (`Telemetry::fork`), ns.
    pub telemetry_fork_ns: u64,
    /// On the caller: shard replay (`Telemetry::merge_child`), ns.
    pub telemetry_merge_ns: u64,
    /// Inside exec: blocked on the telemetry recorder mutex, ns.
    pub mutex_blocked_ns: u64,
    /// Fraction of non-exec worker-lane time covered by the named
    /// categories (spawn/idle/merge-wait). 1.0 by construction — idle is
    /// the remainder — so anything below signals an accounting bug.
    pub attributed_fraction: f64,
}

impl OverheadBreakdown {
    /// Total worker-lane time not spent doing useful (on-CPU) job work, ns.
    pub fn overhead_ns(&self) -> u64 {
        self.contended_exec_ns + self.spawn_ns + self.idle_ns + self.merge_wait_ns
    }
}

/// Everything one [`collect`] call observed.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct RuntimeProfile {
    /// One entry per profiled parallel region, in entry order.
    pub regions: Vec<RegionProfile>,
    /// Contention counters for the runtime's shared locks.
    pub mutex: MutexStats,
    /// Total `Telemetry::fork` time inside profiled regions, ns.
    pub telemetry_fork_ns: u64,
    /// Total `Telemetry::merge_child` time under the collector, ns.
    pub telemetry_merge_ns: u64,
}

impl RuntimeProfile {
    /// Sums the lane categories across all regions.
    pub fn breakdown(&self) -> OverheadBreakdown {
        let mut b = OverheadBreakdown::default();
        for r in &self.regions {
            for l in &r.lanes {
                b.exec_ns += l.exec_ns.saturating_sub(l.contended_exec_ns);
                b.contended_exec_ns += l.contended_exec_ns;
                b.spawn_ns += l.spawn_delay_ns;
                b.idle_ns += l.idle_ns;
                b.merge_wait_ns += l.merge_wait_ns;
            }
        }
        b.telemetry_fork_ns = self.telemetry_fork_ns;
        b.telemetry_merge_ns = self.telemetry_merge_ns;
        b.mutex_blocked_ns = self.mutex.blocked_ns;
        // Total lane time minus exec is the gap to attribute; spawn, idle
        // and merge-wait tile it by construction.
        let lane_total: u64 = self
            .regions
            .iter()
            .flat_map(|r| &r.lanes)
            .map(|l| l.spawn_delay_ns + l.exec_ns + l.idle_ns + l.merge_wait_ns)
            .sum();
        let gap = lane_total.saturating_sub(b.exec_ns);
        b.attributed_fraction = if gap == 0 { 1.0 } else { b.overhead_ns() as f64 / gap as f64 };
        b
    }

    /// The "where did the speedup go" table: given the sequential and
    /// parallel wall-clock of the same workload, attributes the lost time
    /// to the named categories.
    pub fn render_attribution(&self, seq_wall_ns: u64, par_wall_ns: u64) -> String {
        let b = self.breakdown();
        let jobs: u64 = self.regions.iter().map(|r| r.jobs).sum();
        let max_workers = self.regions.iter().map(|r| r.workers).max().unwrap_or(1);
        let mut out = String::new();
        out.push_str(&format!(
            "== host attribution ({} regions, {} jobs, up to {} workers) ==\n",
            self.regions.len(),
            jobs,
            max_workers
        ));
        let speedup = seq_wall_ns as f64 / par_wall_ns.max(1) as f64;
        out.push_str(&format!("sequential wall      {:>12.3} ms\n", seq_wall_ns as f64 / 1e6));
        out.push_str(&format!(
            "parallel wall        {:>12.3} ms   ({speedup:.2}x speedup)\n",
            par_wall_ns as f64 / 1e6
        ));
        let lane_total = b.exec_ns + b.overhead_ns();
        out.push_str(&format!(
            "worker-lane time     {:>12.3} ms   (exec + overhead; attributed {:.1}%)\n",
            lane_total as f64 / 1e6,
            100.0 * b.attributed_fraction
        ));
        let pct = |ns: u64| {
            if lane_total == 0 {
                0.0
            } else {
                100.0 * ns as f64 / lane_total as f64
            }
        };
        out.push_str("category                      time        % of lane-time\n");
        for (name, ns) in [
            ("task-exec (on-cpu)", b.exec_ns),
            ("contended-exec", b.contended_exec_ns),
            ("spawn", b.spawn_ns),
            ("idle", b.idle_ns),
            ("ordered-merge-wait", b.merge_wait_ns),
        ] {
            out.push_str(&format!(
                "  {:26} {:>10.3} ms {:>8.1}%\n",
                name,
                ns as f64 / 1e6,
                pct(ns)
            ));
        }
        out.push_str("within exec / on caller:\n");
        for (name, ns) in [
            ("telemetry-fork", b.telemetry_fork_ns),
            ("telemetry-merge", b.telemetry_merge_ns),
            ("recorder-mutex-blocked", b.mutex_blocked_ns),
        ] {
            out.push_str(&format!("  {:26} {:>10.3} ms\n", name, ns as f64 / 1e6));
        }
        out.push_str(&format!(
            "recorder mutex: {} acquires, {} contended\n",
            self.mutex.acquires, self.mutex.contended
        ));
        if !self.regions.is_empty() {
            out.push_str("regions:\n");
            for r in &self.regions {
                out.push_str(&format!(
                    "  {:24} {:>4} jobs x {:<2} workers  wall {:>9.3} ms  mean unit {:>9.1} us\n",
                    r.name,
                    r.jobs,
                    r.workers,
                    r.wall_ns as f64 / 1e6,
                    r.units.mean_ns() / 1e3,
                ));
            }
        }
        out
    }
}

/// Shared collector state: region list behind a mutex (pushed once per
/// region), hot counters as atomics so telemetry hooks never serialize
/// the workers they are measuring.
pub(crate) struct Collector {
    epoch: Instant,
    regions: Mutex<Vec<RegionProfile>>,
    mutex_acquires: AtomicU64,
    mutex_contended: AtomicU64,
    mutex_blocked_ns: AtomicU64,
    mutex_blocked_hist: [AtomicU64; HIST_BUCKETS],
    telemetry_fork_ns: AtomicU64,
    telemetry_merge_ns: AtomicU64,
}

impl Collector {
    fn new() -> Self {
        Collector {
            epoch: Instant::now(),
            regions: Mutex::new(Vec::new()),
            mutex_acquires: AtomicU64::new(0),
            mutex_contended: AtomicU64::new(0),
            mutex_blocked_ns: AtomicU64::new(0),
            mutex_blocked_hist: Default::default(),
            telemetry_fork_ns: AtomicU64::new(0),
            telemetry_merge_ns: AtomicU64::new(0),
        }
    }

    pub(crate) fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    pub(crate) fn push_region(&self, region: RegionProfile) {
        self.regions.lock().unwrap_or_else(|p| p.into_inner()).push(region);
    }

    fn drain(&self) -> RuntimeProfile {
        let regions = std::mem::take(&mut *self.regions.lock().unwrap_or_else(|p| p.into_inner()));
        RuntimeProfile {
            regions,
            mutex: MutexStats {
                acquires: self.mutex_acquires.load(Ordering::Relaxed),
                contended: self.mutex_contended.load(Ordering::Relaxed),
                blocked_ns: self.mutex_blocked_ns.load(Ordering::Relaxed),
                blocked_hist: self
                    .mutex_blocked_hist
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect(),
            },
            telemetry_fork_ns: self.telemetry_fork_ns.load(Ordering::Relaxed),
            telemetry_merge_ns: self.telemetry_merge_ns.load(Ordering::Relaxed),
        }
    }
}

thread_local! {
    /// The collector this thread reports into (installed by [`collect`] on
    /// the caller, and by the pool on its workers for a region's duration).
    static COLLECTOR: std::cell::RefCell<Option<Arc<Collector>>> =
        const { std::cell::RefCell::new(None) };
    /// Label the next parallel region records under; see [`labeled`].
    static LABEL: std::cell::Cell<&'static str> = const { std::cell::Cell::new("") };
}

pub(crate) fn current_collector() -> Option<Arc<Collector>> {
    COLLECTOR.with(|c| c.borrow().clone())
}

pub(crate) fn current_label(default: &'static str) -> &'static str {
    let l = LABEL.with(|l| l.get());
    if l.is_empty() {
        default
    } else {
        l
    }
}

/// Installs `collector` on this thread until the guard drops (panic-safe);
/// used by the pool to propagate the caller's collector into workers so
/// nested regions and telemetry hooks attribute correctly.
pub(crate) struct InstallGuard(Option<Arc<Collector>>);

pub(crate) fn install(collector: Option<Arc<Collector>>) -> InstallGuard {
    let prev = COLLECTOR.with(|c| std::mem::replace(&mut *c.borrow_mut(), collector));
    InstallGuard(prev)
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let prev = self.0.take();
        COLLECTOR.with(|c| *c.borrow_mut() = prev);
    }
}

/// Whether a profiler is collecting on this thread. Hooks bail on `false`
/// — the zero-cost-when-disabled check.
pub fn is_profiling() -> bool {
    COLLECTOR.with(|c| c.borrow().is_some())
}

/// Runs `f` with host profiling active on this thread and returns its
/// result together with everything the profiler observed. Parallel
/// regions entered by `f` (directly or through nested calls) record
/// per-worker attribution; `mgg-telemetry` contention and fork/merge
/// hooks report into the same profile. Results of `f` are bit-identical
/// to running it without `collect`.
pub fn collect<R>(f: impl FnOnce() -> R) -> (R, RuntimeProfile) {
    let collector = Arc::new(Collector::new());
    let result = {
        let _guard = install(Some(Arc::clone(&collector)));
        f()
    };
    (result, collector.drain())
}

/// Labels the parallel regions entered by `f` (e.g. `"engine.aggregate"`)
/// in the collected profile. Cheap enough to leave on unconditionally;
/// without an active collector it only sets a thread-local.
pub fn labeled<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    let _guard = region_label(name);
    f()
}

/// RAII form of [`labeled`]: parallel regions entered on this thread while
/// the guard lives are recorded under `name`. Restores the previous label
/// (panic-safe) on drop.
pub fn region_label(name: &'static str) -> LabelGuard {
    let prev = LABEL.with(|l| {
        let prev = l.get();
        l.set(name);
        prev
    });
    LabelGuard(prev)
}

/// Guard returned by [`region_label`]; restores the prior label on drop.
pub struct LabelGuard(&'static str);

impl Drop for LabelGuard {
    fn drop(&mut self) {
        LABEL.with(|l| l.set(self.0));
    }
}

/// Telemetry hook: one recorder-mutex acquisition; `blocked_ns` > 0 when
/// the lock was contended. No-op without an active collector.
pub fn note_recorder_lock(blocked_ns: u64) {
    let Some(c) = current_collector() else { return };
    c.mutex_acquires.fetch_add(1, Ordering::Relaxed);
    if blocked_ns > 0 {
        c.mutex_contended.fetch_add(1, Ordering::Relaxed);
        c.mutex_blocked_ns.fetch_add(blocked_ns, Ordering::Relaxed);
        c.mutex_blocked_hist[bucket_of(blocked_ns)].fetch_add(1, Ordering::Relaxed);
    }
}

/// Telemetry hook: time spent allocating a telemetry shard
/// (`Telemetry::fork`). No-op without an active collector.
pub fn note_telemetry_fork(ns: u64) {
    if let Some(c) = current_collector() {
        c.telemetry_fork_ns.fetch_add(ns, Ordering::Relaxed);
    }
}

/// Telemetry hook: time spent replaying a shard into its parent
/// (`Telemetry::merge_child`). No-op without an active collector.
pub fn note_telemetry_merge(ns: u64) {
    if let Some(c) = current_collector() {
        c.telemetry_merge_ns.fetch_add(ns, Ordering::Relaxed);
    }
}

/// Current thread's CPU time in ns (`CLOCK_THREAD_CPUTIME_ID`). Unlike
/// wall clocks, this does not advance while the thread is descheduled, so
/// per-job `wall − cpu` isolates contention/oversubscription from real
/// work. Returns 0 where the clock is unavailable (non-Linux fallback);
/// the lane's per-job accounting then degrades to all-wall.
pub fn thread_cpu_ns() -> u64 {
    #[cfg(target_os = "linux")]
    {
        #[repr(C)]
        struct Timespec {
            tv_sec: i64,
            tv_nsec: i64,
        }
        extern "C" {
            fn clock_gettime(clk_id: i32, tp: *mut Timespec) -> i32;
        }
        const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
        let mut ts = Timespec { tv_sec: 0, tv_nsec: 0 };
        // SAFETY: `ts` is a valid, exclusively owned out-pointer and the
        // clock id is a compile-time constant the kernel accepts.
        if unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) } != 0 {
            return 0;
        }
        (ts.tv_sec as u64).saturating_mul(1_000_000_000).saturating_add(ts.tv_nsec as u64)
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// Per-worker raw measurements taken inside the region; converted to a
/// [`WorkerLane`] once the region wall is known.
#[derive(Default)]
pub(crate) struct LaneRaw {
    pub spawn_delay_ns: u64,
    pub exec_ns: u64,
    /// On-CPU portion of `exec_ns` (thread CPU clock).
    pub exec_cpu_ns: u64,
    /// Region-relative time the worker finished its last job.
    pub done_ns: u64,
    pub jobs: u64,
    pub units: UnitHistogram,
}

impl LaneRaw {
    /// Records one executed job: `wall_ns` elapsed, `cpu_ns` of thread CPU
    /// time consumed, finishing at region-relative `done_ns`. A zero
    /// `cpu_ns` (CPU clock unavailable) counts the job as fully on-CPU so
    /// the contended category degrades to zero rather than to noise.
    pub(crate) fn note_job(&mut self, wall_ns: u64, cpu_ns: u64, done_ns: u64) {
        self.exec_ns += wall_ns;
        self.exec_cpu_ns += if cpu_ns == 0 { wall_ns } else { cpu_ns.min(wall_ns) };
        self.units.record(wall_ns);
        self.jobs += 1;
        self.done_ns = done_ns;
    }
}

/// Region-scope measurement helper used by the pool entry points.
pub(crate) struct RegionTimer {
    collector: Arc<Collector>,
    start: Instant,
    start_ns: u64,
    name: &'static str,
    kind: &'static str,
    jobs: u64,
    workers: u64,
}

impl RegionTimer {
    /// Starts timing a region, if a collector is active on this thread.
    pub(crate) fn start(kind: &'static str, jobs: usize, workers: usize) -> Option<RegionTimer> {
        let collector = current_collector()?;
        let start_ns = collector.now_ns();
        Some(RegionTimer {
            collector,
            start: Instant::now(),
            start_ns,
            name: current_label(kind),
            kind,
            jobs: jobs as u64,
            workers: workers as u64,
        })
    }

    pub(crate) fn collector(&self) -> Arc<Collector> {
        Arc::clone(&self.collector)
    }

    /// Region-relative ns since the region started.
    pub(crate) fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Closes the region: converts raw lanes (idle = remainder) and pushes
    /// the profile into the collector.
    pub(crate) fn finish(self, raw: Vec<LaneRaw>) {
        let wall_ns = self.elapsed_ns();
        let mut units = UnitHistogram::new();
        let lanes: Vec<WorkerLane> = raw
            .iter()
            .enumerate()
            .map(|(w, r)| {
                units.merge(&r.units);
                // Lanes with no jobs still waited for the join; everything
                // after spawn is merge-wait for them.
                let merge_wait_ns = wall_ns.saturating_sub(r.done_ns.max(r.spawn_delay_ns));
                let idle_ns =
                    wall_ns.saturating_sub(r.spawn_delay_ns + r.exec_ns + merge_wait_ns);
                WorkerLane {
                    worker: w as u64,
                    jobs: r.jobs,
                    exec_ns: r.exec_ns,
                    contended_exec_ns: r.exec_ns.saturating_sub(r.exec_cpu_ns),
                    spawn_delay_ns: r.spawn_delay_ns,
                    merge_wait_ns,
                    idle_ns,
                }
            })
            .collect();
        self.collector.push_region(RegionProfile {
            name: self.name.to_string(),
            kind: self.kind.to_string(),
            start_ns: self.start_ns,
            wall_ns,
            jobs: self.jobs,
            workers: self.workers,
            lanes,
            units,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hooks_are_noops() {
        assert!(!is_profiling());
        note_recorder_lock(500);
        note_telemetry_fork(10);
        note_telemetry_merge(10);
        // Nothing to observe: no collector exists to have recorded them.
        let ((), profile) = collect(|| {});
        assert!(profile.regions.is_empty());
        assert_eq!(profile.mutex.acquires, 0);
    }

    #[test]
    fn collect_scopes_to_the_calling_thread() {
        let ((), profile) = collect(|| {
            assert!(is_profiling());
            note_recorder_lock(0);
            note_recorder_lock(2_000);
            note_telemetry_fork(7);
            note_telemetry_merge(9);
        });
        assert!(!is_profiling());
        assert_eq!(profile.mutex.acquires, 2);
        assert_eq!(profile.mutex.contended, 1);
        assert_eq!(profile.mutex.blocked_ns, 2_000);
        assert_eq!(profile.mutex.blocked_hist[bucket_of(2_000)], 1);
        assert_eq!(profile.telemetry_fork_ns, 7);
        assert_eq!(profile.telemetry_merge_ns, 9);
    }

    #[test]
    fn regions_record_lanes_that_tile_the_wall() {
        let ((), profile) = collect(|| {
            crate::with_threads(4, || {
                crate::par_map_indexed(16, |i| {
                    // Make jobs long enough to be visible.
                    let mut acc = i as u64;
                    for _ in 0..20_000 {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                    std::hint::black_box(acc)
                });
            })
        });
        assert_eq!(profile.regions.len(), 1);
        let r = &profile.regions[0];
        assert_eq!(r.jobs, 16);
        assert_eq!(r.workers, 4);
        assert_eq!(r.lanes.len(), 4);
        assert_eq!(r.lanes.iter().map(|l| l.jobs).sum::<u64>(), 16);
        assert_eq!(r.units.count, 16);
        for l in &r.lanes {
            assert!(
                l.spawn_delay_ns + l.exec_ns + l.idle_ns + l.merge_wait_ns <= r.wall_ns,
                "lane {} exceeds region wall",
                l.worker
            );
        }
        let b = profile.breakdown();
        assert!(b.exec_ns > 0);
        assert!((b.attributed_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sequential_regions_profile_too() {
        let ((), profile) = collect(|| {
            crate::with_threads(1, || {
                crate::par_map_indexed(5, |i| std::hint::black_box(i * 2));
            })
        });
        assert_eq!(profile.regions.len(), 1);
        let r = &profile.regions[0];
        assert_eq!(r.workers, 1);
        assert_eq!(r.lanes.len(), 1);
        assert_eq!(r.lanes[0].jobs, 5);
        assert_eq!(r.units.count, 5);
    }

    #[test]
    fn labels_name_regions() {
        let ((), profile) = collect(|| {
            labeled("test.region", || {
                crate::with_threads(2, || {
                    crate::par_map_indexed(4, |i| i);
                })
            });
            crate::with_threads(2, || {
                crate::par_map_indexed(4, |i| i);
            });
        });
        assert_eq!(profile.regions.len(), 2);
        assert_eq!(profile.regions[0].name, "test.region");
        assert_eq!(profile.regions[1].name, "par_map_indexed");
    }

    #[test]
    fn attribution_table_renders() {
        let ((), profile) = collect(|| {
            crate::with_threads(2, || {
                crate::par_map_indexed(8, |i| std::hint::black_box(i));
            })
        });
        let text = profile.render_attribution(2_000_000, 1_500_000);
        for needle in
            ["task-exec", "spawn", "idle", "ordered-merge-wait", "recorder-mutex-blocked"]
        {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn profiled_results_match_unprofiled() {
        let job = |i: usize| ((i as f64) + 0.5).sqrt().to_bits();
        let plain = crate::with_threads(4, || crate::par_map_indexed(64, job));
        let (profiled, _) =
            collect(|| crate::with_threads(4, || crate::par_map_indexed(64, job)));
        assert_eq!(plain, profiled);
    }
}
