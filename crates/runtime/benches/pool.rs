//! Criterion micro-benchmarks of the runtime primitives behind the
//! persistent-pool refactor, so pool changes are measurable without a full
//! `ext_hostperf` sweep:
//!
//! * **merge strategy** — `par_map` through the pool's preallocated slot
//!   merge vs a scoped-thread baseline that funnels `(index, value)` pairs
//!   through a mutex and sorts afterwards (the pre-refactor shape).
//! * **dispatch latency** — an empty region through the persistent pool
//!   (park/unpark) vs spawning fresh scoped threads per region.
//! * **event-queue drain** — the simulator's calendar queue vs the
//!   GPU-sharded queue on the same deterministic push/pop stream.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The pre-refactor merge shape: scoped threads claim indices from an
/// atomic, push tagged results through a shared mutex, and the caller
/// sorts by index to restore input order.
fn scoped_ordered_map<T: Send, F: Fn(usize) -> T + Sync>(n: usize, threads: usize, f: F) -> Vec<T> {
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n.max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let v = f(i);
                results.lock().unwrap().push((i, v));
            });
        }
    });
    let mut tagged = results.into_inner().unwrap();
    tagged.sort_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, v)| v).collect()
}

fn bench_merge_strategy(c: &mut Criterion) {
    const N: usize = 4096;
    const THREADS: usize = 4;
    let work = |i: usize| {
        let mut h = i as u64 ^ 0x9e37_79b9_7f4a_7c15;
        for _ in 0..64 {
            h = h.wrapping_mul(0x0000_0100_0000_01b3).rotate_left(17);
        }
        h
    };
    let mut group = c.benchmark_group("par_map_merge");
    group.sample_size(20);
    group.bench_function("slot_merge_pool", |b| {
        b.iter(|| {
            mgg_runtime::with_threads(THREADS, || {
                mgg_runtime::par_map_indexed(N, std::hint::black_box(work))
            })
        })
    });
    group.bench_function("mutex_ordered_scoped", |b| {
        b.iter(|| scoped_ordered_map(N, THREADS, std::hint::black_box(work)))
    });
    group.finish();
}

fn bench_dispatch_latency(c: &mut Criterion) {
    const THREADS: usize = 4;
    let mut group = c.benchmark_group("region_dispatch");
    group.sample_size(50);
    // Warm the pool so the first persistent-dispatch sample does not pay
    // the one-time lazy spawn.
    mgg_runtime::with_threads(THREADS, || mgg_runtime::par_map_indexed(THREADS, |i| i));
    group.bench_function("persistent_pool", |b| {
        b.iter(|| {
            mgg_runtime::with_threads(THREADS, || {
                mgg_runtime::par_map_indexed(THREADS, std::hint::black_box(|i| i))
            })
        })
    });
    group.bench_function("scoped_spawn", |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                for _ in 0..THREADS {
                    scope.spawn(|| std::hint::black_box(0usize));
                }
            })
        })
    });
    group.finish();
}

/// The simulator's event-loop access pattern: bursts of near-future events
/// with occasional far-future stragglers, one push per pop.
fn bench_event_queue_drain(c: &mut Criterion) {
    const N: u64 = 200_000;
    const GPUS: usize = 8;
    let mut group = c.benchmark_group("event_queue_drain");
    group.sample_size(10);
    group.bench_function("calendar", |b| {
        b.iter(|| {
            let mut q: mgg_sim::EventQueue<u64> = mgg_sim::EventQueue::new();
            let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
            for g in 0..GPUS as u64 {
                q.push(g, g);
            }
            let mut processed = 0u64;
            let mut sink = 0u64;
            while let Some((now, v)) = q.pop() {
                sink = sink.wrapping_add(v);
                processed += 1;
                if processed < N {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let delta =
                        if state % 32 == 0 { 50_000 + state % 100_000 } else { 1 + state % 700 };
                    q.push(now + delta, state);
                }
            }
            std::hint::black_box(sink)
        })
    });
    group.bench_with_input(BenchmarkId::new("sharded", GPUS), &GPUS, |b, &gpus| {
        b.iter(|| {
            let mut q: mgg_sim::ShardedEventQueue<u64> = mgg_sim::ShardedEventQueue::new(gpus);
            let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
            for g in 0..gpus as u64 {
                q.push(g as usize, g, g);
            }
            let mut processed = 0u64;
            let mut sink = 0u64;
            while let Some((now, v)) = q.pop() {
                sink = sink.wrapping_add(v);
                processed += 1;
                if processed < N {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let delta =
                        if state % 32 == 0 { 50_000 + state % 100_000 } else { 1 + state % 700 };
                    q.push((state % gpus as u64) as usize, now + delta, state);
                }
            }
            std::hint::black_box(sink)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_merge_strategy, bench_dispatch_latency, bench_event_queue_drain);
criterion_main!(benches);
