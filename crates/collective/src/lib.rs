//! NCCL-like collective communication substrate.
//!
//! Reproduces the properties of host-initiated collectives that §2.1 of the
//! paper analyzes:
//!
//! * Operations are launched from the host and run as their own GPU
//!   kernels, so they **cannot overlap** an application kernel — callers
//!   pay a launch overhead per call and must serialize phases (the
//!   "non-trivial transitioning costs between communication and
//!   computation").
//! * Ring algorithms move bulk, *regular* traffic efficiently; they are a
//!   bad fit for fine-grained irregular neighbor access, which is exactly
//!   the mismatch Figure 2 demonstrates.
//!
//! All functions return simulated durations (the data plane stays with the
//! callers, who hold the real embedding matrices).

#![deny(missing_docs)]

use mgg_sim::{Cluster, SimTime};
use mgg_telemetry::Telemetry;

/// Per-call host launch overhead of a collective (kernel launch + stream
/// synchronization on the way out).
pub const COLLECTIVE_LAUNCH_NS: u64 = 14_000;

/// [`ring_allreduce`] recorded as a `collective.allreduce` span plus
/// `collective.allreduce_bytes` / `collective.allreduce_ns` counters.
pub fn ring_allreduce_telemetry(
    cluster: &mut Cluster,
    bytes: u64,
    telemetry: &Telemetry,
) -> SimTime {
    let _span = telemetry.span("collective.allreduce");
    let t = ring_allreduce(cluster, bytes);
    telemetry.counter_add("collective.allreduces", 1);
    telemetry.counter_add("collective.allreduce_bytes", bytes);
    telemetry.counter_add("collective.allreduce_ns", t);
    t
}

/// [`ring_allgather`] recorded as a `collective.allgather` span plus
/// `collective.allgather_bytes` / `collective.allgather_ns` counters.
pub fn ring_allgather_telemetry(
    cluster: &mut Cluster,
    contrib: &[u64],
    telemetry: &Telemetry,
) -> SimTime {
    let _span = telemetry.span("collective.allgather");
    let t = ring_allgather(cluster, contrib);
    telemetry.counter_add("collective.allgathers", 1);
    telemetry.counter_add("collective.allgather_bytes", contrib.iter().sum());
    telemetry.counter_add("collective.allgather_ns", t);
    t
}

/// Simulated duration of a ring all-reduce of `bytes` per GPU.
///
/// Classic two-phase ring: `2(n-1)` steps, each moving `bytes / n` along
/// every ring edge concurrently.
pub fn ring_allreduce(cluster: &mut Cluster, bytes: u64) -> SimTime {
    let n = cluster.num_gpus();
    if n <= 1 || bytes == 0 {
        return COLLECTIVE_LAUNCH_NS;
    }
    let shard = bytes.div_ceil(n as u64);
    let mut t = 0;
    for _ in 0..2 * (n - 1) {
        t = ring_step(cluster, t, shard);
    }
    t + COLLECTIVE_LAUNCH_NS
}

/// Simulated duration of a ring all-gather where GPU `i` contributes
/// `contrib[i]` bytes and every GPU ends with all contributions.
///
/// `n - 1` steps; in step `s`, GPU `i` forwards the shard that originated
/// at GPU `(i - s) mod n` to its successor.
pub fn ring_allgather(cluster: &mut Cluster, contrib: &[u64]) -> SimTime {
    let n = cluster.num_gpus();
    assert_eq!(contrib.len(), n, "one contribution per GPU");
    if n <= 1 {
        return COLLECTIVE_LAUNCH_NS;
    }
    let mut t = 0;
    for s in 0..n - 1 {
        let mut step_end = t;
        for pe in 0..n {
            let origin = (pe + n - s) % n;
            let bytes = contrib[origin];
            if bytes > 0 {
                let done = cluster.ic.bulk_link_transfer(t, pe, (pe + 1) % n, bytes);
                step_end = step_end.max(done);
            }
        }
        t = step_end;
    }
    t + COLLECTIVE_LAUNCH_NS
}

/// Simulated duration of one point-to-point bulk send.
pub fn sendrecv(cluster: &mut Cluster, from: usize, to: usize, bytes: u64) -> SimTime {
    if from == to || bytes == 0 {
        return COLLECTIVE_LAUNCH_NS;
    }
    cluster.ic.bulk_link_transfer(0, from, to, bytes) + COLLECTIVE_LAUNCH_NS
}

/// One step of ring shard rotation (every GPU sends `shard` bytes to its
/// successor starting at `t`); returns the step's completion time.
///
/// Exposed for the Figure-2 NCCL GNN study, which alternates rotation
/// steps with aggregation kernels.
pub fn ring_step(cluster: &mut Cluster, t: SimTime, shard: u64) -> SimTime {
    let n = cluster.num_gpus();
    let mut step_end = t;
    for pe in 0..n {
        let done = cluster.ic.bulk_link_transfer(t, pe, (pe + 1) % n, shard);
        step_end = step_end.max(done);
    }
    step_end
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgg_sim::ClusterSpec;

    #[test]
    fn allreduce_scales_with_bytes() {
        let mut c = Cluster::new(ClusterSpec::dgx_a100(4));
        let small = ring_allreduce(&mut c, 1 << 20);
        c.reset();
        let big = ring_allreduce(&mut c, 64 << 20);
        assert!(big > 4 * small, "big={big} small={small}");
    }

    #[test]
    fn allreduce_single_gpu_is_launch_only() {
        let mut c = Cluster::new(ClusterSpec::dgx_a100(1));
        assert_eq!(ring_allreduce(&mut c, 1 << 20), COLLECTIVE_LAUNCH_NS);
    }

    #[test]
    fn allgather_duration_dominated_by_total_volume() {
        let mut c = Cluster::new(ClusterSpec::dgx_a100(4));
        let even = ring_allgather(&mut c, &[8 << 20; 4]);
        c.reset();
        let skewed = ring_allgather(&mut c, &[32 << 20, 0, 0, 0]);
        // The skewed gather moves the same total bytes but serializes on
        // the single origin's shard each step, so it must not be faster.
        assert!(skewed >= even, "skewed={skewed} even={even}");
    }

    #[test]
    #[should_panic(expected = "one contribution per GPU")]
    fn allgather_checks_lengths() {
        let mut c = Cluster::new(ClusterSpec::dgx_a100(4));
        let _ = ring_allgather(&mut c, &[1, 2]);
    }

    #[test]
    fn sendrecv_pays_wire_time() {
        let mut c = Cluster::new(ClusterSpec::dgx_a100(2));
        let t = sendrecv(&mut c, 0, 1, 256 << 20);
        // 256 MiB over ~255 GB/s is ~1.05 ms.
        assert!(t > 900_000, "t={t}");
    }

    #[test]
    fn instrumented_collectives_cost_the_same_and_record() {
        let tel = Telemetry::enabled();
        let mut c1 = Cluster::new(ClusterSpec::dgx_a100(4));
        let plain = ring_allreduce(&mut c1, 4 << 20);
        let mut c2 = Cluster::new(ClusterSpec::dgx_a100(4));
        let instrumented = ring_allreduce_telemetry(&mut c2, 4 << 20, &tel);
        assert_eq!(plain, instrumented);
        assert_eq!(tel.counter_value("collective.allreduces"), 1);
        assert_eq!(tel.counter_value("collective.allreduce_bytes"), 4 << 20);
        assert_eq!(tel.counter_value("collective.allreduce_ns"), plain);

        c2.reset();
        let contrib = [1 << 20, 2 << 20, 0, 3 << 20];
        let t = ring_allgather_telemetry(&mut c2, &contrib, &tel);
        assert!(t > 0);
        assert_eq!(tel.counter_value("collective.allgather_bytes"), 6 << 20);
        assert_eq!(tel.counter_value("collective.allgather_ns"), t);
        let names: Vec<String> =
            tel.snapshot().spans.iter().map(|s| s.name.clone()).collect();
        assert!(names.contains(&"collective.allreduce".to_string()));
        assert!(names.contains(&"collective.allgather".to_string()));
    }

    #[test]
    fn deterministic() {
        let mut c1 = Cluster::new(ClusterSpec::dgx_a100(8));
        let mut c2 = Cluster::new(ClusterSpec::dgx_a100(8));
        assert_eq!(ring_allreduce(&mut c1, 3 << 20), ring_allreduce(&mut c2, 3 << 20));
    }
}

/// Simulated duration of a ring broadcast of `bytes` from `root` to all
/// GPUs (pipelined chunking: `n - 1` hops, chunks overlap across hops).
pub fn broadcast(cluster: &mut Cluster, root: usize, bytes: u64) -> SimTime {
    let n = cluster.num_gpus();
    assert!(root < n, "root must be a valid GPU");
    if n <= 1 || bytes == 0 {
        return COLLECTIVE_LAUNCH_NS;
    }
    // Pipeline in 1 MiB chunks around the ring.
    let chunk = bytes.min(1 << 20);
    let chunks = bytes.div_ceil(chunk);
    let mut t_hop_start = vec![0u64; n]; // time chunk stream reaches GPU i
    let mut done = 0;
    for c in 0..chunks {
        let sz = if c + 1 == chunks { bytes - c * chunk } else { chunk };
        let mut t = t_hop_start[root];
        for hop in 0..n - 1 {
            let from = (root + hop) % n;
            let to = (root + hop + 1) % n;
            t = cluster.ic.bulk_link_transfer(t, from, to, sz);
            t_hop_start[to] = t_hop_start[to].max(t);
            done = done.max(t);
        }
    }
    done + COLLECTIVE_LAUNCH_NS
}

/// Simulated duration of a ring reduce-scatter of `bytes` per GPU
/// (`n - 1` steps of `bytes / n` shards, the first phase of the classic
/// two-phase all-reduce).
pub fn reduce_scatter(cluster: &mut Cluster, bytes: u64) -> SimTime {
    let n = cluster.num_gpus();
    if n <= 1 || bytes == 0 {
        return COLLECTIVE_LAUNCH_NS;
    }
    let shard = bytes.div_ceil(n as u64);
    let mut t = 0;
    for _ in 0..n - 1 {
        t = ring_step(cluster, t, shard);
    }
    t + COLLECTIVE_LAUNCH_NS
}

#[cfg(test)]
mod extra_tests {
    use super::*;
    use mgg_sim::ClusterSpec;

    #[test]
    fn broadcast_scales_with_bytes_and_gpus() {
        let mut c = Cluster::new(ClusterSpec::dgx_a100(4));
        let small = broadcast(&mut c, 0, 1 << 20);
        c.reset();
        let big = broadcast(&mut c, 0, 32 << 20);
        assert!(big > 4 * small, "big={big} small={small}");
        let mut c8 = Cluster::new(ClusterSpec::dgx_a100(8));
        let more_hops = broadcast(&mut c8, 0, 1 << 20);
        assert!(more_hops > small);
    }

    #[test]
    fn broadcast_root_position_is_irrelevant_on_a_ring() {
        let mut c1 = Cluster::new(ClusterSpec::dgx_a100(4));
        let mut c2 = Cluster::new(ClusterSpec::dgx_a100(4));
        assert_eq!(broadcast(&mut c1, 0, 4 << 20), broadcast(&mut c2, 2, 4 << 20));
    }

    #[test]
    #[should_panic(expected = "root must be a valid GPU")]
    fn broadcast_rejects_bad_root() {
        let mut c = Cluster::new(ClusterSpec::dgx_a100(2));
        let _ = broadcast(&mut c, 5, 1024);
    }

    #[test]
    fn reduce_scatter_is_half_an_allreduce() {
        let bytes = 16 << 20;
        let mut c1 = Cluster::new(ClusterSpec::dgx_a100(8));
        let rs = reduce_scatter(&mut c1, bytes);
        let mut c2 = Cluster::new(ClusterSpec::dgx_a100(8));
        let ar = ring_allreduce(&mut c2, bytes);
        // All-reduce = reduce-scatter + all-gather: roughly double the
        // wire time (launch overheads aside).
        let rs_wire = rs - COLLECTIVE_LAUNCH_NS;
        let ar_wire = ar - COLLECTIVE_LAUNCH_NS;
        assert!(ar_wire > rs_wire * 3 / 2, "ar={ar_wire} rs={rs_wire}");
    }

    #[test]
    fn single_gpu_collectives_are_launch_only() {
        let mut c = Cluster::new(ClusterSpec::dgx_a100(1));
        assert_eq!(broadcast(&mut c, 0, 1 << 20), COLLECTIVE_LAUNCH_NS);
        assert_eq!(reduce_scatter(&mut c, 1 << 20), COLLECTIVE_LAUNCH_NS);
    }
}
