//! Zero-cost-when-disabled telemetry for the MGG engine stack.
//!
//! MGG's whole contribution is a *scheduling* effect — remote GET latency
//! hidden under local aggregation (paper Fig. 7, §5.1) — which is invisible
//! without a timeline. This crate provides the one instrumentation surface
//! every layer reports through:
//!
//! * **Spans** — hierarchical wall-clock phases of the host-side engine
//!   (`partition → plan → launch → aggregate → barrier → recover`), closed
//!   RAII-style by [`SpanGuard`].
//! * **Counters / gauges / histograms** — monotonic event counts (GETs,
//!   retries, probes), point-in-time values, and latency distributions.
//! * **Warp trace adoption** — the simulator's [`TraceEvent`] stream
//!   (sim-time, per-warp) is attached verbatim via
//!   [`Telemetry::add_trace_events`] and merged with host spans by the
//!   Chrome-trace exporter ([`chrome_trace_json`]).
//! * **Derived pipeline metrics** — [`PipelineMetrics::derive`] turns a
//!   `KernelStats` + trace into overlap efficiency, per-GPU-pair traffic,
//!   occupancy, and recovery overhead.
//!
//! The handle is a single `Option<Arc<Mutex<..>>>`: a disabled [`Telemetry`]
//! is one `None` branch per call site, records nothing, and allocates
//! nothing, so instrumented hot paths stay bit-identical to uninstrumented
//! ones (a property the engine tests assert on `KernelStats`).

#![deny(missing_docs)]

pub mod chrome;
pub mod pipeline;
pub mod snapshot;

pub use chrome::{chrome_trace_json, chrome_trace_json_with_runtime};
pub use pipeline::{overlap_efficiency, PairTraffic, PipelineMetrics};
pub use snapshot::{
    percentile_sorted, percentile_sorted_u64, CounterSnapshot, GaugeSnapshot, HistogramSnapshot,
    MetricsSnapshot, SpanSnapshot,
};

use mgg_sim::TraceEvent;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// A cheap, cloneable telemetry handle.
///
/// [`Telemetry::disabled`] (also the `Default`) is a `None` that makes every
/// recording call a no-op; [`Telemetry::enabled`] allocates one shared
/// recorder. Clones alias the same recorder, so an engine, its tuner, and
/// its shmem regions all report into one snapshot.
#[derive(Clone, Default)]
pub struct Telemetry(Option<Arc<Mutex<Recorder>>>);

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.is_enabled() { "Telemetry(enabled)" } else { "Telemetry(disabled)" })
    }
}

impl Telemetry {
    /// A no-op handle: records nothing, allocates nothing.
    pub fn disabled() -> Self {
        Telemetry(None)
    }

    /// A live handle backed by a fresh shared recorder.
    pub fn enabled() -> Self {
        Telemetry(Some(Arc::new(Mutex::new(Recorder::new()))))
    }

    /// True when this handle actually records (non-disabled).
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    fn lock(&self) -> Option<MutexGuard<'_, Recorder>> {
        self.0.as_ref().map(|m| lock_recorder(m))
    }

    /// Opens a phase span, closed when the returned guard drops. Nesting
    /// depth is derived from the spans still open at entry.
    pub fn span(&self, name: &str) -> SpanGuard {
        let Some(rec) = self.0.as_ref() else {
            return SpanGuard(None);
        };
        let idx = {
            let mut r = lock_recorder(rec);
            let start_ns = r.now_ns();
            let depth = r.open.len() as u32;
            r.spans.push(SpanRecord { name: name.to_string(), start_ns, end_ns: None, depth });
            let idx = r.spans.len() - 1;
            r.open.push(idx);
            idx
        };
        SpanGuard(Some((Arc::clone(rec), idx)))
    }

    /// Adds `delta` to the named monotonic counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(mut r) = self.lock() {
            *r.counters.entry(name.to_string()).or_insert(0) += delta;
        }
    }

    /// Sets the named gauge to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(mut r) = self.lock() {
            r.gauges.insert(name.to_string(), value);
        }
    }

    /// Records one observation into the named histogram.
    pub fn histogram_record(&self, name: &str, value: f64) {
        if let Some(mut r) = self.lock() {
            r.histograms.entry(name.to_string()).or_default().record(value);
        }
    }

    /// Current value of a counter (0 if never written or disabled).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.lock().and_then(|r| r.counters.get(name).copied()).unwrap_or(0)
    }

    /// Attaches simulator warp events (sim-time domain; kept separate from
    /// the wall-clock host spans until export).
    pub fn add_trace_events(&self, events: &[TraceEvent]) {
        if let Some(mut r) = self.lock() {
            r.trace_events.extend_from_slice(events);
        }
    }

    /// Records the derived pipeline metrics for the latest simulated kernel.
    pub fn set_pipeline(&self, metrics: PipelineMetrics) {
        if let Some(mut r) = self.lock() {
            r.pipeline = Some(metrics);
        }
    }

    /// All warp events attached so far.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.lock().map(|r| r.trace_events.clone()).unwrap_or_default()
    }

    /// A point-in-time copy of everything recorded. Still-open spans are
    /// snapshotted as ending now.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(r) = self.lock() else {
            return MetricsSnapshot::default();
        };
        let now = r.now_ns();
        MetricsSnapshot {
            spans: r
                .spans
                .iter()
                .map(|s| SpanSnapshot {
                    name: s.name.clone(),
                    start_ns: s.start_ns,
                    end_ns: s.end_ns.unwrap_or(now),
                    depth: s.depth,
                })
                .collect(),
            counters: r
                .counters
                .iter()
                .map(|(name, &value)| CounterSnapshot { name: name.clone(), value })
                .collect(),
            gauges: r
                .gauges
                .iter()
                .map(|(name, &value)| GaugeSnapshot { name: name.clone(), value })
                .collect(),
            histograms: r
                .histograms
                .iter()
                .map(|(name, h)| {
                    let mut sorted = h.samples.clone();
                    sorted.sort_by(f64::total_cmp);
                    HistogramSnapshot {
                        name: name.clone(),
                        count: h.count,
                        sum: h.sum,
                        min: if h.count == 0 { 0.0 } else { h.min },
                        max: if h.count == 0 { 0.0 } else { h.max },
                        p50: snapshot::percentile_sorted(&sorted, 0.50),
                        p95: snapshot::percentile_sorted(&sorted, 0.95),
                        p99: snapshot::percentile_sorted(&sorted, 0.99),
                    }
                })
                .collect(),
            pipeline: r.pipeline.clone(),
            runtime: r.runtime.clone(),
        }
    }

    /// Chrome-trace JSON of host spans merged with attached warp events
    /// (plus per-worker host-pool tracks when a runtime profile is
    /// attached).
    pub fn chrome_trace(&self) -> String {
        let snap = self.snapshot();
        chrome::chrome_trace_json_with_runtime(
            &snap.spans,
            &self.trace_events(),
            snap.runtime.as_ref(),
        )
    }

    /// A fresh shard for one parallel job: enabled iff `self` is, but
    /// backed by its *own* recorder, so concurrent jobs never interleave
    /// writes. Merge shards back with [`Telemetry::merge_child`] in the
    /// jobs' input order; metrics then come out bit-identical to the jobs
    /// having recorded sequentially, at any thread count.
    pub fn fork(&self) -> Telemetry {
        if !self.is_enabled() {
            return Telemetry::disabled();
        }
        if !mgg_runtime::profile::is_profiling() {
            return Telemetry::enabled();
        }
        let t0 = Instant::now();
        let shard = Telemetry::enabled();
        mgg_runtime::profile::note_telemetry_fork(t0.elapsed().as_nanos() as u64);
        shard
    }

    /// Folds a shard's recordings into this handle, preserving sequential
    /// semantics when children are merged in input order: counters add,
    /// gauges take the child's value (last write wins), histograms replay
    /// the child's samples one by one (keeping f64 sums bit-identical),
    /// and trace events append. Child spans append as recorded; their
    /// timestamps stay in the child's wall-clock epoch, so spans are
    /// timing-diagnostic only — never part of determinism comparisons.
    pub fn merge_child(&self, child: &Telemetry) {
        if !mgg_runtime::profile::is_profiling() {
            return self.merge_child_inner(child);
        }
        let t0 = Instant::now();
        self.merge_child_inner(child);
        mgg_runtime::profile::note_telemetry_merge(t0.elapsed().as_nanos() as u64);
    }

    fn merge_child_inner(&self, child: &Telemetry) {
        let Some(child_rec) = child.lock() else { return };
        let Some(mut r) = self.lock() else { return };
        for (name, &value) in &child_rec.counters {
            *r.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, &value) in &child_rec.gauges {
            r.gauges.insert(name.clone(), value);
        }
        for (name, h) in &child_rec.histograms {
            let dst = r.histograms.entry(name.clone()).or_default();
            for &sample in &h.samples {
                dst.record(sample);
            }
        }
        r.trace_events.extend_from_slice(&child_rec.trace_events);
        for s in &child_rec.spans {
            r.spans.push(SpanRecord {
                name: s.name.clone(),
                start_ns: s.start_ns,
                end_ns: s.end_ns,
                depth: s.depth,
            });
        }
        if child_rec.pipeline.is_some() {
            r.pipeline = child_rec.pipeline.clone();
        }
        if child_rec.runtime.is_some() {
            r.runtime = child_rec.runtime.clone();
        }
    }

    /// Attaches a host-pool attribution profile (from
    /// `mgg_runtime::profile::collect`) so it travels with the snapshot
    /// (JSON `--metrics-out`, text report, Chrome trace worker tracks).
    pub fn attach_runtime_profile(&self, profile: mgg_runtime::profile::RuntimeProfile) {
        if let Some(mut r) = self.lock() {
            r.runtime = Some(profile);
        }
    }

    /// Starts a write batch against this handle: counter/gauge/histogram
    /// records accumulate in the batch without touching the recorder mutex
    /// and flush under **one** lock acquisition when [`TelemetryBatch::flush`]
    /// is called or the batch drops. Use in per-item hot loops (per-query,
    /// per-remote-edge) where a lock per record is measurable contention.
    ///
    /// Replay order is preserved within the batch, so flushed histograms
    /// are bit-identical (f64 sums included) to unbatched recording from
    /// the same thread; counters add and gauges keep last-write-wins.
    pub fn batch(&self) -> TelemetryBatch {
        TelemetryBatch {
            target: self.clone(),
            counters: BTreeMap::new(),
            ordered: Vec::new(),
        }
    }
}

/// Locks a recorder, reporting the acquisition (and any blocked time) to
/// the host profiler when one is collecting on this thread. Without a
/// profiler this is exactly the old poison-tolerant `lock()`.
fn lock_recorder(m: &Mutex<Recorder>) -> MutexGuard<'_, Recorder> {
    if !mgg_runtime::profile::is_profiling() {
        return m.lock().unwrap_or_else(|p| p.into_inner());
    }
    match m.try_lock() {
        Ok(guard) => {
            mgg_runtime::profile::note_recorder_lock(0);
            guard
        }
        Err(std::sync::TryLockError::Poisoned(p)) => {
            mgg_runtime::profile::note_recorder_lock(0);
            p.into_inner()
        }
        Err(std::sync::TryLockError::WouldBlock) => {
            let t0 = Instant::now();
            let guard = m.lock().unwrap_or_else(|p| p.into_inner());
            // Count contended acquisitions even when the wait rounds to 0ns.
            mgg_runtime::profile::note_recorder_lock(t0.elapsed().as_nanos().max(1) as u64);
            guard
        }
    }
}

/// An ordered record buffered by a [`TelemetryBatch`]; replayed at flush.
enum BatchRecord {
    Gauge(String, f64),
    HistSample(String, f64),
}

/// A thread-local write buffer created by [`Telemetry::batch`]; flushes
/// everything under a single recorder lock on [`TelemetryBatch::flush`]
/// or drop.
pub struct TelemetryBatch {
    target: Telemetry,
    counters: BTreeMap<String, u64>,
    /// Gauge writes and histogram samples in record order (both are
    /// order-sensitive: last-write-wins and f64 replay respectively).
    ordered: Vec<BatchRecord>,
}

impl TelemetryBatch {
    /// Buffered [`Telemetry::counter_add`].
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        if self.target.is_enabled() {
            *self.counters.entry(name.to_string()).or_insert(0) += delta;
        }
    }

    /// Buffered [`Telemetry::gauge_set`].
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        if self.target.is_enabled() {
            self.ordered.push(BatchRecord::Gauge(name.to_string(), value));
        }
    }

    /// Buffered [`Telemetry::histogram_record`].
    pub fn histogram_record(&mut self, name: &str, value: f64) {
        if self.target.is_enabled() {
            self.ordered.push(BatchRecord::HistSample(name.to_string(), value));
        }
    }

    /// Pushes everything buffered so far into the recorder under one lock;
    /// the batch is empty (and reusable) afterwards.
    pub fn flush(&mut self) {
        if self.counters.is_empty() && self.ordered.is_empty() {
            return;
        }
        let counters = std::mem::take(&mut self.counters);
        let ordered = std::mem::take(&mut self.ordered);
        let Some(mut r) = self.target.lock() else { return };
        for (name, delta) in counters {
            *r.counters.entry(name).or_insert(0) += delta;
        }
        for rec in ordered {
            match rec {
                BatchRecord::Gauge(name, value) => {
                    r.gauges.insert(name, value);
                }
                BatchRecord::HistSample(name, value) => {
                    r.histograms.entry(name).or_default().record(value);
                }
            }
        }
    }
}

impl Drop for TelemetryBatch {
    fn drop(&mut self) {
        self.flush();
    }
}

/// RAII span handle; dropping it closes the span.
pub struct SpanGuard(Option<(Arc<Mutex<Recorder>>, usize)>);

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((rec, idx)) = self.0.take() {
            let mut r = rec.lock().unwrap_or_else(|p| p.into_inner());
            let now = r.now_ns();
            if let Some(span) = r.spans.get_mut(idx) {
                span.end_ns = Some(now);
            }
            r.open.retain(|&i| i != idx);
        }
    }
}

struct SpanRecord {
    name: String,
    start_ns: u64,
    end_ns: Option<u64>,
    depth: u32,
}

/// Min/max/sum/count summary of a stream of observations.
///
/// Raw samples are retained so a shard merge can *replay* them through
/// [`Histogram::record`] in shard order: f64 summation is order-dependent,
/// and replay is what keeps a merged `sum` bit-identical to the sequential
/// recording order (adding pre-summed shard totals would not be).
#[derive(Default)]
struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    samples: Vec<f64>,
}

impl Histogram {
    fn record(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        self.samples.push(value);
    }
}

/// The shared state behind an enabled handle. `BTreeMap`s keep snapshot
/// ordering deterministic regardless of insertion order.
struct Recorder {
    epoch: Instant,
    spans: Vec<SpanRecord>,
    /// Indices into `spans` of spans not yet closed (a stack).
    open: Vec<usize>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    trace_events: Vec<TraceEvent>,
    pipeline: Option<PipelineMetrics>,
    runtime: Option<mgg_runtime::profile::RuntimeProfile>,
}

impl Recorder {
    fn new() -> Self {
        Recorder {
            epoch: Instant::now(),
            spans: Vec::new(),
            open: Vec::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            trace_events: Vec::new(),
            pipeline: None,
            runtime: None,
        }
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgg_sim::{TraceEvent, TraceKind};

    fn ev(gpu: u16, warp: u32, kind: TraceKind, start: u64, end: u64) -> TraceEvent {
        TraceEvent { gpu, sm: 0, warp, kind, start, end }
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        let _s = t.span("phase");
        t.counter_add("c", 5);
        t.gauge_set("g", 1.0);
        t.histogram_record("h", 2.0);
        t.add_trace_events(&[ev(0, 0, TraceKind::Compute, 0, 10)]);
        let snap = t.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.pipeline.is_none());
        assert!(t.trace_events().is_empty());
        assert_eq!(t.counter_value("c"), 0);
    }

    #[test]
    fn spans_nest_and_close() {
        let t = Telemetry::enabled();
        {
            let _outer = t.span("outer");
            {
                let _inner = t.span("inner");
            }
            let _sibling = t.span("sibling");
        }
        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 3);
        assert_eq!(snap.spans[0].name, "outer");
        assert_eq!(snap.spans[0].depth, 0);
        assert_eq!(snap.spans[1].name, "inner");
        assert_eq!(snap.spans[1].depth, 1);
        assert_eq!(snap.spans[2].name, "sibling");
        assert_eq!(snap.spans[2].depth, 1);
        for s in &snap.spans {
            assert!(s.end_ns >= s.start_ns);
        }
        // inner closed before sibling opened
        assert!(snap.spans[1].end_ns <= snap.spans[2].start_ns);
    }

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let t = Telemetry::enabled();
        t.counter_add("gets", 3);
        t.counter_add("gets", 4);
        t.gauge_set("occ", 0.5);
        t.gauge_set("occ", 0.75);
        t.histogram_record("lat", 10.0);
        t.histogram_record("lat", 2.0);
        t.histogram_record("lat", 6.0);
        assert_eq!(t.counter_value("gets"), 7);
        let snap = t.snapshot();
        assert_eq!(snap.counters, vec![CounterSnapshot { name: "gets".into(), value: 7 }]);
        assert_eq!(snap.gauges[0].value, 0.75);
        let h = &snap.histograms[0];
        assert_eq!((h.count, h.sum, h.min, h.max), (3, 18.0, 2.0, 10.0));
    }

    #[test]
    fn clones_share_one_recorder() {
        let t = Telemetry::enabled();
        let t2 = t.clone();
        t.counter_add("x", 1);
        t2.counter_add("x", 2);
        assert_eq!(t.counter_value("x"), 3);
        assert_eq!(t2.counter_value("x"), 3);
    }

    #[test]
    fn snapshot_ordering_is_name_sorted() {
        let t = Telemetry::enabled();
        t.counter_add("zeta", 1);
        t.counter_add("alpha", 1);
        t.counter_add("mid", 1);
        let names: Vec<_> = t.snapshot().counters.into_iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn fork_of_disabled_is_disabled_and_merge_is_noop() {
        let t = Telemetry::disabled();
        let shard = t.fork();
        assert!(!shard.is_enabled());
        shard.counter_add("x", 1);
        t.merge_child(&shard);
        assert_eq!(t.counter_value("x"), 0);
    }

    #[test]
    fn ordered_shard_merge_matches_sequential_bitwise() {
        // Per-job observations whose f64 sum is order-sensitive.
        let obs = |job: usize| -> Vec<f64> {
            (0..8).map(|k| 1.0 / (1.0 + (job * 8 + k) as f64)).collect()
        };
        // Sequential baseline: jobs record in input order on one handle.
        let seq = Telemetry::enabled();
        for job in 0..16 {
            for v in obs(job) {
                seq.histogram_record("lat", v);
            }
            seq.counter_add("jobs", 1);
            seq.gauge_set("last_job", job as f64);
        }
        // Parallel: concurrent shards recorded in arbitrary completion
        // order, merged back in input order.
        for threads in [1usize, 2, 4, 7] {
            let par = Telemetry::enabled();
            let shards: Vec<Telemetry> = mgg_runtime::with_threads(threads, || {
                mgg_runtime::par_map_indexed(16, |job| {
                    let shard = par.fork();
                    for v in obs(job) {
                        shard.histogram_record("lat", v);
                    }
                    shard.counter_add("jobs", 1);
                    shard.gauge_set("last_job", job as f64);
                    shard
                })
            });
            for shard in &shards {
                par.merge_child(shard);
            }
            let (s, p) = (seq.snapshot(), par.snapshot());
            assert_eq!(p.counters, s.counters, "{threads} threads");
            assert_eq!(p.gauges.len(), s.gauges.len());
            assert_eq!(p.gauges[0].value.to_bits(), s.gauges[0].value.to_bits());
            assert_eq!(p.histograms.len(), s.histograms.len());
            let (hs, hp) = (&s.histograms[0], &p.histograms[0]);
            assert_eq!(hp.count, hs.count);
            // Bit-identical, not approximately equal: the merge replays
            // samples in order instead of adding shard subtotals.
            assert_eq!(hp.sum.to_bits(), hs.sum.to_bits(), "{threads} threads");
            assert_eq!(hp.min.to_bits(), hs.min.to_bits());
            assert_eq!(hp.max.to_bits(), hs.max.to_bits());
        }
    }

    #[test]
    fn batch_flush_matches_direct_recording_bitwise() {
        let direct = Telemetry::enabled();
        let batched = Telemetry::enabled();
        let mut batch = batched.batch();
        for i in 0..40 {
            let v = 1.0 / (1.0 + i as f64);
            direct.counter_add("ops", 2);
            direct.histogram_record("lat", v);
            direct.gauge_set("last", v);
            batch.counter_add("ops", 2);
            batch.histogram_record("lat", v);
            batch.gauge_set("last", v);
        }
        batch.flush();
        let (d, b) = (direct.snapshot(), batched.snapshot());
        assert_eq!(d.counters, b.counters);
        assert_eq!(d.gauges[0].value.to_bits(), b.gauges[0].value.to_bits());
        assert_eq!(d.histograms[0].sum.to_bits(), b.histograms[0].sum.to_bits());
        assert_eq!(d.histograms[0].p50.to_bits(), b.histograms[0].p50.to_bits());
    }

    #[test]
    fn batch_flushes_on_drop_and_is_noop_when_disabled() {
        let t = Telemetry::enabled();
        {
            let mut batch = t.batch();
            batch.counter_add("dropped", 3);
        }
        assert_eq!(t.counter_value("dropped"), 3);
        let off = Telemetry::disabled();
        let mut batch = off.batch();
        batch.counter_add("x", 1);
        batch.flush();
        assert_eq!(off.counter_value("x"), 0);
    }

    #[test]
    fn snapshot_histograms_carry_percentiles() {
        let t = Telemetry::enabled();
        for i in 1..=100 {
            t.histogram_record("lat", i as f64);
        }
        let h = &t.snapshot().histograms[0];
        assert_eq!((h.p50, h.p95, h.p99), (50.0, 95.0, 99.0));
    }

    #[test]
    fn runtime_profile_attaches_and_snapshots() {
        let t = Telemetry::enabled();
        assert!(t.snapshot().runtime.is_none());
        let ((), profile) = mgg_runtime::profile::collect(|| {
            mgg_runtime::with_threads(2, || {
                mgg_runtime::par_map_indexed(4, |i| i);
            })
        });
        t.attach_runtime_profile(profile.clone());
        let snap = t.snapshot();
        assert_eq!(snap.runtime, Some(profile));
        assert!(snap.render_text().contains("host worker pool"));
        // Lock accounting reaches the profiler: recording under a
        // collector bumps the acquire counter.
        let ((), p2) = mgg_runtime::profile::collect(|| t.counter_add("c", 1));
        assert!(p2.mutex.acquires >= 1);
    }

    #[test]
    fn fork_merge_report_into_active_profiler() {
        let t = Telemetry::enabled();
        let ((), profile) = mgg_runtime::profile::collect(|| {
            let shard = t.fork();
            shard.histogram_record("h", 1.0);
            t.merge_child(&shard);
        });
        assert!(profile.telemetry_fork_ns > 0);
        assert!(profile.telemetry_merge_ns > 0);
    }

    #[test]
    fn trace_events_round_trip() {
        let t = Telemetry::enabled();
        let events = vec![
            ev(0, 0, TraceKind::Compute, 0, 10),
            ev(1, 3, TraceKind::RemoteWire, 5, 25),
        ];
        t.add_trace_events(&events);
        assert_eq!(t.trace_events(), events);
    }
}
