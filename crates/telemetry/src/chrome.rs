//! Chrome-trace-format exporter (the JSON consumed by `chrome://tracing`
//! and [Perfetto](https://ui.perfetto.dev)).
//!
//! One timeline merges two clock domains:
//!
//! * **pid 0 "host"** — the engine's wall-clock phase spans
//!   (partition/plan/launch/aggregate/barrier/recover), one row per
//!   nesting depth.
//! * **pid 1+g "gpuN"** — GPU `g`'s simulated warp events, one thread row
//!   per SM, in simulated nanoseconds.
//!
//! Both use complete events (`ph: "X"`) with microsecond `ts`/`dur`, plus
//! `M` metadata records naming the processes and threads. The two domains
//! share an origin at 0 but tick different clocks; the trace is for
//! structure (what overlapped what within a domain), not for comparing
//! host time to sim time.

use crate::snapshot::SpanSnapshot;
use mgg_runtime::profile::RuntimeProfile;
use mgg_sim::TraceEvent;
use serde_json::Value;
use std::collections::BTreeSet;

const NS_PER_US: f64 = 1000.0;

/// Renders host spans + warp events as a Chrome-trace JSON document.
pub fn chrome_trace_json(spans: &[SpanSnapshot], events: &[TraceEvent]) -> String {
    chrome_trace_json_with_runtime(spans, events, None)
}

/// [`chrome_trace_json`] plus per-worker host-pool tracks: when a
/// [`RuntimeProfile`] is given, each profiled parallel region emits one
/// row per worker on pid 0 (tid `1 + worker`) with the worker's
/// spawn → exec → idle → merge-wait lifecycle laid out as contiguous
/// segments inside the region window. The per-category *durations* are
/// measured; their *placement* within the region is schematic (the pool
/// records aggregates, not per-job intervals).
pub fn chrome_trace_json_with_runtime(
    spans: &[SpanSnapshot],
    events: &[TraceEvent],
    runtime: Option<&RuntimeProfile>,
) -> String {
    let mut out: Vec<Value> = Vec::new();

    let has_lanes = runtime.is_some_and(|rt| rt.regions.iter().any(|r| !r.lanes.is_empty()));
    if !spans.is_empty() || has_lanes {
        out.push(meta("process_name", 0, 0, "host"));
    }
    if !spans.is_empty() {
        out.push(meta("thread_name", 0, 0, "engine phases"));
    }
    if let Some(rt) = runtime {
        let max_workers =
            rt.regions.iter().map(|r| r.lanes.len()).max().unwrap_or(0);
        for w in 0..max_workers {
            out.push(meta("thread_name", 0, 1 + w as u64, &format!("pool worker{w}")));
        }
        for region in &rt.regions {
            for lane in &region.lanes {
                let tid = 1 + lane.worker;
                let mut cursor = region.start_ns;
                // `exec` spans cover in-job wall time; the descheduled
                // share is reported as a separate `contended` span so the
                // track still tiles `spawn + exec + idle + merge == wall`.
                for (name, dur) in [
                    ("spawn", lane.spawn_delay_ns),
                    ("exec", lane.exec_ns.saturating_sub(lane.contended_exec_ns)),
                    ("contended", lane.contended_exec_ns),
                    ("idle", lane.idle_ns),
                    ("merge-wait", lane.merge_wait_ns),
                ] {
                    if dur > 0 {
                        out.push(complete(
                            &format!("{}:{}", region.name, name),
                            "host-pool",
                            0,
                            tid,
                            cursor as f64 / NS_PER_US,
                            dur as f64 / NS_PER_US,
                            vec![("jobs".to_string(), Value::UInt(lane.jobs))],
                        ));
                    }
                    cursor += dur;
                }
            }
        }
    }
    for s in spans {
        out.push(complete(
            &s.name,
            "phase",
            0,
            0,
            s.start_ns as f64 / NS_PER_US,
            s.duration_ns() as f64 / NS_PER_US,
            vec![("depth".to_string(), Value::UInt(u64::from(s.depth)))],
        ));
    }

    // One process per GPU, one thread per SM; name each exactly once.
    let tracks: BTreeSet<(u16, u16)> = events.iter().map(|e| (e.gpu, e.sm)).collect();
    let gpus: BTreeSet<u16> = tracks.iter().map(|&(g, _)| g).collect();
    for &g in &gpus {
        out.push(meta("process_name", pid_of(g), 0, &format!("gpu{g}")));
    }
    for &(g, sm) in &tracks {
        out.push(meta("thread_name", pid_of(g), u64::from(sm), &format!("sm{sm}")));
    }
    for e in events {
        out.push(complete(
            kind_name(e),
            "warp",
            pid_of(e.gpu),
            u64::from(e.sm),
            e.start as f64 / NS_PER_US,
            e.duration() as f64 / NS_PER_US,
            vec![("warp".to_string(), Value::UInt(u64::from(e.warp)))],
        ));
    }

    let doc = Value::Object(vec![
        ("traceEvents".to_string(), Value::Array(out)),
        ("displayTimeUnit".to_string(), Value::Str("ns".to_string())),
    ]);
    serde_json::to_string_pretty(&doc).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
}

/// Host spans live in pid 0; GPU `g`'s warp events in pid `1 + g`.
fn pid_of(gpu: u16) -> u64 {
    1 + u64::from(gpu)
}

fn kind_name(e: &TraceEvent) -> &'static str {
    use mgg_sim::TraceKind::*;
    match e.kind {
        Compute => "Compute",
        GlobalRead => "GlobalRead",
        RemoteIssue => "RemoteIssue",
        RemoteWire => "RemoteWire",
        WaitRemote => "WaitRemote",
        PageAccess => "PageAccess",
        CacheHit => "CacheHit",
        L2Hit => "L2Hit",
        Prefetch => "Prefetch",
    }
}

fn complete(
    name: &str,
    cat: &str,
    pid: u64,
    tid: u64,
    ts_us: f64,
    dur_us: f64,
    args: Vec<(String, Value)>,
) -> Value {
    Value::Object(vec![
        ("name".to_string(), Value::Str(name.to_string())),
        ("cat".to_string(), Value::Str(cat.to_string())),
        ("ph".to_string(), Value::Str("X".to_string())),
        ("ts".to_string(), Value::Float(ts_us)),
        ("dur".to_string(), Value::Float(dur_us)),
        ("pid".to_string(), Value::UInt(pid)),
        ("tid".to_string(), Value::UInt(tid)),
        ("args".to_string(), Value::Object(args)),
    ])
}

fn meta(name: &str, pid: u64, tid: u64, label: &str) -> Value {
    Value::Object(vec![
        ("name".to_string(), Value::Str(name.to_string())),
        ("ph".to_string(), Value::Str("M".to_string())),
        ("pid".to_string(), Value::UInt(pid)),
        ("tid".to_string(), Value::UInt(tid)),
        (
            "args".to_string(),
            Value::Object(vec![("name".to_string(), Value::Str(label.to_string()))]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgg_sim::TraceKind;

    fn ev(gpu: u16, sm: u16, warp: u32, kind: TraceKind, start: u64, end: u64) -> TraceEvent {
        TraceEvent { gpu, sm, warp, kind, start, end }
    }

    fn events_of(doc: &Value) -> &Vec<Value> {
        doc.get("traceEvents").and_then(Value::as_array).unwrap()
    }

    #[test]
    fn empty_inputs_still_produce_a_valid_document() {
        let json = chrome_trace_json(&[], &[]);
        let doc: Value = serde_json::from_str(&json).unwrap();
        assert!(events_of(&doc).is_empty());
    }

    #[test]
    fn spans_and_events_land_on_separate_pids() {
        let spans = vec![SpanSnapshot {
            name: "aggregate".into(),
            start_ns: 1000,
            end_ns: 5000,
            depth: 0,
        }];
        let events = vec![
            ev(0, 2, 7, TraceKind::Compute, 0, 300),
            ev(1, 0, 0, TraceKind::RemoteWire, 100, 900),
        ];
        let json = chrome_trace_json(&spans, &events);
        let doc: Value = serde_json::from_str(&json).unwrap();
        let items = events_of(&doc);

        // Every record has the mandatory fields.
        for it in items {
            assert!(it.get("name").is_some());
            assert!(it.get("ph").is_some());
            assert!(it.get("pid").is_some());
        }
        // Host span on pid 0.
        let host: Vec<_> = items
            .iter()
            .filter(|it| {
                it.get("ph").and_then(Value::as_str) == Some("X")
                    && it.get("pid").and_then(Value::as_u64) == Some(0)
            })
            .collect();
        assert_eq!(host.len(), 1);
        assert_eq!(host[0].get("name").and_then(Value::as_str), Some("aggregate"));
        assert_eq!(host[0].get("ts").and_then(Value::as_f64), Some(1.0));
        assert_eq!(host[0].get("dur").and_then(Value::as_f64), Some(4.0));

        // Warp events: gpu0 -> pid 1 tid 2, gpu1 -> pid 2 tid 0.
        let warp0: Vec<_> = items
            .iter()
            .filter(|it| {
                it.get("ph").and_then(Value::as_str) == Some("X")
                    && it.get("pid").and_then(Value::as_u64) == Some(1)
            })
            .collect();
        assert_eq!(warp0.len(), 1);
        assert_eq!(warp0[0].get("tid").and_then(Value::as_u64), Some(2));
        assert_eq!(warp0[0].get("name").and_then(Value::as_str), Some("Compute"));
        assert_eq!(
            warp0[0].get("args").and_then(|a| a.get("warp")).and_then(Value::as_u64),
            Some(7)
        );

        // Metadata names each process and SM thread.
        let metas: Vec<_> = items
            .iter()
            .filter(|it| it.get("ph").and_then(Value::as_str) == Some("M"))
            .collect();
        let labels: Vec<&str> = metas
            .iter()
            .filter_map(|m| m.get("args").and_then(|a| a.get("name")).and_then(Value::as_str))
            .collect();
        assert!(labels.contains(&"host"));
        assert!(labels.contains(&"gpu0"));
        assert!(labels.contains(&"gpu1"));
        assert!(labels.contains(&"sm2"));
    }

    #[test]
    fn runtime_profile_adds_worker_tracks_on_host_pid() {
        let ((), profile) = mgg_runtime::profile::collect(|| {
            mgg_runtime::with_threads(3, || {
                mgg_runtime::par_map_indexed(9, |i| std::hint::black_box(i * i));
            })
        });
        let json = chrome_trace_json_with_runtime(&[], &[], Some(&profile));
        let doc: Value = serde_json::from_str(&json).unwrap();
        let items = events_of(&doc);
        let pool: Vec<_> = items
            .iter()
            .filter(|it| it.get("cat").and_then(Value::as_str) == Some("host-pool"))
            .collect();
        assert!(!pool.is_empty());
        // All pool events on pid 0, worker tids start at 1.
        for it in &pool {
            assert_eq!(it.get("pid").and_then(Value::as_u64), Some(0));
            assert!(it.get("tid").and_then(Value::as_u64).unwrap() >= 1);
        }
        let labels: Vec<&str> = items
            .iter()
            .filter(|it| it.get("ph").and_then(Value::as_str) == Some("M"))
            .filter_map(|m| m.get("args").and_then(|a| a.get("name")).and_then(Value::as_str))
            .collect();
        assert!(labels.contains(&"pool worker0"));
        assert!(labels.contains(&"pool worker2"));
    }

    #[test]
    fn every_gpu_present_in_events_gets_events_in_the_trace() {
        let events: Vec<TraceEvent> =
            (0..4).map(|g| ev(g, 0, 0, TraceKind::Compute, 0, 10)).collect();
        let json = chrome_trace_json(&[], &events);
        let doc: Value = serde_json::from_str(&json).unwrap();
        for g in 0..4u64 {
            let n = events_of(&doc)
                .iter()
                .filter(|it| {
                    it.get("ph").and_then(Value::as_str) == Some("X")
                        && it.get("pid").and_then(Value::as_u64) == Some(1 + g)
                })
                .count();
            assert_eq!(n, 1, "gpu {g} missing from trace");
        }
    }
}
