//! Derived pipeline metrics: the quantified Figure-7 effect.
//!
//! The raw simulator output is a warp-level span stream plus aggregate
//! `KernelStats`. This module reduces them to the numbers the paper argues
//! about: **overlap efficiency** (what fraction of remote-wire time was
//! hidden under that warp's own compute), achieved occupancy and SM
//! utilization (§5.1), per-GPU-pair fabric traffic, and recovery overhead.

use mgg_sim::{KernelStats, RecoveryStats, TraceEvent, TraceKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

pub use mgg_sim::PairStats as PairTraffic;

/// One simulated kernel reduced to its headline pipeline numbers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineMetrics {
    /// End-to-end kernel time (max over GPUs).
    pub makespan_ns: u64,
    /// Resident-warp occupancy achieved, in `[0, 1]`.
    pub achieved_occupancy: f64,
    /// Fraction of SM-time with at least one schedulable warp, in `[0, 1]`.
    pub sm_utilization: f64,
    /// Fraction of communication time hidden under compute, in `[0, 1]`.
    /// This is the Fig. 7(b) pipelining effect: a blocking design scores
    /// ~0, the non-blocking GET pipeline scores high.
    pub overlap_efficiency: f64,
    /// Total warp compute time across all warps.
    pub compute_ns: u64,
    /// Total communication time (remote wire + UVM page access) across all
    /// warps.
    pub comm_ns: u64,
    /// The part of `comm_ns` that overlapped the owning warp's compute.
    pub hidden_comm_ns: u64,
    /// Total time warps spent blocked in `WaitRemote`.
    pub wait_ns: u64,
    /// Summed idle time between each GPU's finish and the global makespan —
    /// the load-imbalance cost a barrier turns into waiting.
    pub barrier_skew_ns: u64,
    /// Bytes moved over the inter-GPU fabric.
    pub remote_bytes: u64,
    /// Fabric transfer requests issued.
    pub remote_requests: u64,
    /// Per-(source, destination) fabric traffic, nonzero pairs only.
    pub pair_traffic: Vec<PairTraffic>,
    /// Fault-recovery counters for the run (all zero when fault-free).
    pub recovery: RecoveryStats,
}

impl PipelineMetrics {
    /// Reduces one kernel's stats + warp trace to pipeline metrics.
    pub fn derive(stats: &KernelStats, events: &[TraceEvent]) -> Self {
        let makespan = stats.makespan_ns();
        let barrier_skew_ns = stats
            .per_gpu
            .iter()
            .map(|g| makespan.saturating_sub(g.finish_ns))
            .sum();
        let (compute_ns, comm_ns, hidden_comm_ns, wait_ns) = overlap_breakdown(events);
        PipelineMetrics {
            makespan_ns: makespan,
            achieved_occupancy: stats.achieved_occupancy(),
            sm_utilization: stats.sm_utilization(),
            overlap_efficiency: ratio(hidden_comm_ns, comm_ns),
            compute_ns,
            comm_ns,
            hidden_comm_ns,
            wait_ns,
            barrier_skew_ns,
            remote_bytes: stats.traffic.remote_bytes(),
            remote_requests: stats.traffic.remote_requests(),
            pair_traffic: stats.traffic.pairs.clone(),
            recovery: stats.recovery,
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        (num as f64 / den as f64).clamp(0.0, 1.0)
    }
}

/// Fraction of communication time (remote wire + page access) hidden under
/// the owning warp's compute, in `[0, 1]`. Returns 0 when the trace has no
/// communication at all.
pub fn overlap_efficiency(events: &[TraceEvent]) -> f64 {
    let (_, comm, hidden, _) = overlap_breakdown(events);
    ratio(hidden, comm)
}

/// `(compute_ns, comm_ns, hidden_comm_ns, wait_ns)` for a warp trace.
///
/// Hidden time is computed per warp: each communication span is intersected
/// with the union of that same warp's compute spans, so a GET in flight
/// counts as hidden only while *its* warp is doing useful work — exactly
/// the intra-warp pipelining the kernel is designed around. Compute by
/// *other* warps deliberately does not count; latency tolerance via
/// multithreading is already captured by occupancy.
fn overlap_breakdown(events: &[TraceEvent]) -> (u64, u64, u64, u64) {
    // Per-(gpu, warp): (compute intervals, communication intervals).
    type Intervals = (Vec<(u64, u64)>, Vec<(u64, u64)>);
    let mut warps: BTreeMap<(u16, u32), Intervals> = BTreeMap::new();
    let mut compute_ns = 0u64;
    let mut wait_ns = 0u64;
    for e in events {
        if e.end <= e.start {
            continue;
        }
        let slot = warps.entry((e.gpu, e.warp)).or_default();
        match e.kind {
            TraceKind::Compute => {
                compute_ns += e.end - e.start;
                slot.0.push((e.start, e.end));
            }
            // L2 hits (PCIe) and prefetch fills (fabric) are off-GPU
            // transfers whose latency the pipeline is meant to hide —
            // communication for the overlap accounting, like remote wires.
            TraceKind::RemoteWire
            | TraceKind::PageAccess
            | TraceKind::L2Hit
            | TraceKind::Prefetch => slot.1.push((e.start, e.end)),
            TraceKind::WaitRemote => wait_ns += e.end - e.start,
            // Cache hits are local HBM reads, not fabric communication —
            // grouped with GlobalRead for the overlap accounting.
            TraceKind::GlobalRead | TraceKind::RemoteIssue | TraceKind::CacheHit => {}
        }
    }
    let mut comm_ns = 0u64;
    let mut hidden_ns = 0u64;
    for (compute, comm) in warps.into_values() {
        let merged = merge_intervals(compute);
        for (s, e) in comm {
            comm_ns += e - s;
            hidden_ns += covered_len(&merged, s, e);
        }
    }
    (compute_ns, comm_ns, hidden_ns, wait_ns)
}

/// Sorts and unions intervals into a disjoint, ordered list.
fn merge_intervals(mut xs: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    xs.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(xs.len());
    for (s, e) in xs {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Length of `[s, e)` covered by the disjoint ordered intervals in `merged`.
fn covered_len(merged: &[(u64, u64)], s: u64, e: u64) -> u64 {
    let mut covered = 0;
    for &(ms, me) in merged {
        if me <= s {
            continue;
        }
        if ms >= e {
            break;
        }
        covered += me.min(e) - ms.max(s);
    }
    covered
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgg_sim::TraceKind;

    fn ev(gpu: u16, warp: u32, kind: TraceKind, start: u64, end: u64) -> TraceEvent {
        TraceEvent { gpu, sm: 0, warp, kind, start, end }
    }

    #[test]
    fn empty_trace_scores_zero() {
        assert_eq!(overlap_efficiency(&[]), 0.0);
    }

    #[test]
    fn compute_only_trace_scores_zero() {
        let events = [ev(0, 0, TraceKind::Compute, 0, 100)];
        assert_eq!(overlap_efficiency(&events), 0.0);
    }

    #[test]
    fn fully_hidden_wire_scores_one() {
        let events = [
            ev(0, 0, TraceKind::Compute, 0, 100),
            ev(0, 0, TraceKind::RemoteWire, 10, 60),
        ];
        assert_eq!(overlap_efficiency(&events), 1.0);
    }

    #[test]
    fn blocking_page_access_scores_zero() {
        // UVM shape: page access, then compute — no concurrency.
        let events = [
            ev(0, 0, TraceKind::PageAccess, 0, 50),
            ev(0, 0, TraceKind::Compute, 50, 100),
        ];
        assert_eq!(overlap_efficiency(&events), 0.0);
    }

    #[test]
    fn partial_overlap_is_proportional() {
        // Wire spans [0, 80); compute covers [40, 80) → half hidden.
        let events = [
            ev(0, 0, TraceKind::RemoteWire, 0, 80),
            ev(0, 0, TraceKind::Compute, 40, 80),
        ];
        assert_eq!(overlap_efficiency(&events), 0.5);
    }

    #[test]
    fn other_warps_compute_does_not_hide() {
        // Wire on warp 0 concurrent with compute on warp 1 only.
        let events = [
            ev(0, 0, TraceKind::RemoteWire, 0, 100),
            ev(0, 1, TraceKind::Compute, 0, 100),
        ];
        assert_eq!(overlap_efficiency(&events), 0.0);
    }

    #[test]
    fn overlapping_compute_spans_are_not_double_counted() {
        let events = [
            ev(0, 0, TraceKind::Compute, 0, 60),
            ev(0, 0, TraceKind::Compute, 40, 80),
            ev(0, 0, TraceKind::RemoteWire, 50, 100),
        ];
        // Compute union is [0, 80); wire [50, 100) → 30 of 50 hidden.
        assert_eq!(overlap_efficiency(&events), 0.6);
    }

    #[test]
    fn zero_duration_spans_are_ignored() {
        let events = [
            ev(0, 0, TraceKind::RemoteWire, 10, 10),
            ev(0, 0, TraceKind::Compute, 0, 0),
        ];
        assert_eq!(overlap_efficiency(&events), 0.0);
    }

    #[test]
    fn breakdown_counts_wait_and_compute() {
        let events = [
            ev(0, 0, TraceKind::Compute, 0, 30),
            ev(0, 0, TraceKind::WaitRemote, 30, 50),
            ev(0, 0, TraceKind::RemoteWire, 10, 40),
        ];
        let (compute, comm, hidden, wait) = overlap_breakdown(&events);
        assert_eq!(compute, 30);
        assert_eq!(comm, 30);
        assert_eq!(hidden, 20);
        assert_eq!(wait, 20);
    }

    #[test]
    fn merge_and_cover_helpers() {
        let merged = merge_intervals(vec![(10, 20), (0, 5), (18, 30)]);
        assert_eq!(merged, vec![(0, 5), (10, 30)]);
        assert_eq!(covered_len(&merged, 0, 40), 25);
        assert_eq!(covered_len(&merged, 6, 9), 0);
        assert_eq!(covered_len(&merged, 4, 12), 3);
    }
}
