//! Point-in-time copies of a recorder's contents, serializable to JSON and
//! renderable as the `mgg-cli profile` text report.

use crate::pipeline::PipelineMetrics;
use mgg_runtime::profile::RuntimeProfile;
use serde::Serialize;

/// Percentile of an ascending-sorted f64 sample set, `p` in `[0, 1]`:
/// the smallest sample whose rank is ≥ ⌈len·p⌉ (the ceil-rank rule the
/// serving layer has always used for its latency p50/p95/p99). Returns
/// 0.0 on an empty set.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[percentile_index(sorted.len(), p)]
}

/// [`percentile_sorted`] for integer samples (e.g. latency nanoseconds).
pub fn percentile_sorted_u64(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[percentile_index(sorted.len(), p)]
}

fn percentile_index(len: usize, p: f64) -> usize {
    ((len as f64 * p).ceil() as usize).clamp(1, len) - 1
}

/// One closed (or still-open, snapshotted-as-now) host phase span.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SpanSnapshot {
    /// Phase label the span was opened with.
    pub name: String,
    /// Wall-clock ns since the recorder was created.
    pub start_ns: u64,
    /// Close time (or snapshot time for a still-open span), ns.
    pub end_ns: u64,
    /// Nesting depth at open time (0 = top level).
    pub depth: u32,
}

impl SpanSnapshot {
    /// Span length in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A monotonically incremented named counter, frozen.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CounterSnapshot {
    /// The counter's name.
    pub name: String,
    /// Its value at snapshot time.
    pub value: u64,
}

/// A last-write-wins named gauge, frozen.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GaugeSnapshot {
    /// The gauge's name.
    pub name: String,
    /// Its last written value.
    pub value: f64,
}

/// Summary statistics of a named sample distribution, frozen.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HistogramSnapshot {
    /// The histogram's name.
    pub name: String,
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// Ceil-rank percentiles over the recorded samples (0 when empty);
    /// see [`percentile_sorted`].
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Everything a [`crate::Telemetry`] recorded, frozen at snapshot time.
#[derive(Debug, Clone, Default, Serialize)]
pub struct MetricsSnapshot {
    /// Closed and still-open phase spans, in open order.
    pub spans: Vec<SpanSnapshot>,
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Pipeline-overlap attribution, when a kernel trace was ingested.
    pub pipeline: Option<PipelineMetrics>,
    /// Host worker-pool attribution, when the run was wrapped in
    /// `mgg_runtime::profile::collect` and attached via
    /// [`crate::Telemetry::attach_runtime_profile`].
    pub runtime: Option<RuntimeProfile>,
}

impl MetricsSnapshot {
    /// Pretty-printed JSON (the `--metrics-out` format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
    }

    /// The human-readable profile report: per-phase breakdown, derived
    /// pipeline metrics, counters, gauges, histograms.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("== engine phases ==\n");
        if self.spans.is_empty() {
            out.push_str("(no spans recorded)\n");
        }
        let top_total: u64 =
            self.spans.iter().filter(|s| s.depth == 0).map(SpanSnapshot::duration_ns).sum();
        for s in &self.spans {
            let ms = s.duration_ns() as f64 / 1e6;
            let share = if top_total == 0 || s.depth != 0 {
                String::new()
            } else {
                format!("  {:5.1}%", 100.0 * s.duration_ns() as f64 / top_total as f64)
            };
            out.push_str(&format!(
                "{:indent$}{:24} {:>10.3} ms{}\n",
                "",
                s.name,
                ms,
                share,
                indent = 2 * s.depth as usize
            ));
        }
        if let Some(p) = &self.pipeline {
            out.push_str("\n== pipeline ==\n");
            out.push_str(&format!("makespan             {:>12} ns\n", p.makespan_ns));
            out.push_str(&format!("achieved occupancy   {:>12.4}\n", p.achieved_occupancy));
            out.push_str(&format!("sm utilization       {:>12.4}\n", p.sm_utilization));
            out.push_str(&format!("overlap efficiency   {:>12.4}\n", p.overlap_efficiency));
            out.push_str(&format!(
                "comm hidden/total    {:>12} / {} ns\n",
                p.hidden_comm_ns, p.comm_ns
            ));
            out.push_str(&format!("compute              {:>12} ns\n", p.compute_ns));
            out.push_str(&format!("wait-remote          {:>12} ns\n", p.wait_ns));
            out.push_str(&format!("barrier skew         {:>12} ns\n", p.barrier_skew_ns));
            out.push_str(&format!(
                "remote traffic       {:>12} B in {} requests\n",
                p.remote_bytes, p.remote_requests
            ));
            if !p.pair_traffic.is_empty() {
                out.push_str("per-pair traffic (src -> dst):\n");
                for t in &p.pair_traffic {
                    out.push_str(&format!(
                        "  gpu{:<2} -> gpu{:<2} {:>12} B {:>8} reqs\n",
                        t.src, t.dst, t.bytes, t.requests
                    ));
                }
            }
            let r = &p.recovery;
            if *r != Default::default() {
                out.push_str(&format!(
                    "recovery: {} retried gets, {} dropped completions, {} degraded transfers, \
                     {} replans, {} uvm fallbacks, {} ns latency\n",
                    r.retried_gets,
                    r.dropped_completions,
                    r.degraded_transfers,
                    r.replans,
                    r.uvm_fallbacks,
                    r.recovery_latency_ns
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("\n== counters ==\n");
            for c in &self.counters {
                out.push_str(&format!("{:32} {:>14}\n", c.name, c.value));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("\n== gauges ==\n");
            for g in &self.gauges {
                out.push_str(&format!("{:32} {:>14.4}\n", g.name, g.value));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("\n== histograms ==\n");
            for h in &self.histograms {
                out.push_str(&format!(
                    "{:32} n={} mean={:.1} min={:.1} p50={:.1} p95={:.1} p99={:.1} max={:.1}\n",
                    h.name,
                    h.count,
                    h.mean(),
                    h.min,
                    h.p50,
                    h.p95,
                    h.p99,
                    h.max
                ));
            }
        }
        if let Some(rt) = &self.runtime {
            out.push_str("\n== host worker pool ==\n");
            let b = rt.breakdown();
            let lane_total = b.exec_ns + b.overhead_ns();
            let pct = |ns: u64| {
                if lane_total == 0 {
                    0.0
                } else {
                    100.0 * ns as f64 / lane_total as f64
                }
            };
            for (name, ns) in [
                ("task-exec (on-cpu)", b.exec_ns),
                ("contended-exec", b.contended_exec_ns),
                ("spawn", b.spawn_ns),
                ("idle", b.idle_ns),
                ("ordered-merge-wait", b.merge_wait_ns),
            ] {
                out.push_str(&format!(
                    "{:32} {:>10.3} ms {:>6.1}%\n",
                    name,
                    ns as f64 / 1e6,
                    pct(ns)
                ));
            }
            out.push_str(&format!(
                "telemetry fork/merge             {:>10.3} ms (in exec) / {:.3} ms (caller)\n",
                b.telemetry_fork_ns as f64 / 1e6,
                b.telemetry_merge_ns as f64 / 1e6
            ));
            out.push_str(&format!(
                "recorder mutex                   {} acquires, {} contended, {:.3} ms blocked\n",
                rt.mutex.acquires,
                rt.mutex.contended,
                rt.mutex.blocked_ns as f64 / 1e6
            ));
            for r in &rt.regions {
                out.push_str(&format!(
                    "  region {:24} {:>5} jobs x {:<2} workers  wall {:>9.3} ms\n",
                    r.name,
                    r.jobs,
                    r.workers,
                    r.wall_ns as f64 / 1e6
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_helpers_use_ceil_rank() {
        let f: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile_sorted(&f, 0.50), 50.0);
        assert_eq!(percentile_sorted(&f, 0.95), 95.0);
        assert_eq!(percentile_sorted(&f, 0.99), 99.0);
        assert_eq!(percentile_sorted(&[], 0.5), 0.0);
        assert_eq!(percentile_sorted_u64(&[], 0.5), 0);
        assert_eq!(percentile_sorted_u64(&[7], 0.99), 7);
        assert_eq!(percentile_sorted_u64(&[10, 20, 30], 0.50), 20);
        assert_eq!(percentile_sorted_u64(&[10, 20, 30], 1.0), 30);
    }

    #[test]
    fn empty_snapshot_renders_and_serializes() {
        let snap = MetricsSnapshot::default();
        let text = snap.render_text();
        assert!(text.contains("no spans recorded"));
        let json = snap.to_json();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(v.get("spans").is_some());
    }

    #[test]
    fn render_text_shows_phases_and_pipeline() {
        let snap = MetricsSnapshot {
            spans: vec![
                SpanSnapshot { name: "aggregate".into(), start_ns: 0, end_ns: 2_000_000, depth: 0 },
                SpanSnapshot { name: "launch".into(), start_ns: 0, end_ns: 500_000, depth: 1 },
            ],
            counters: vec![CounterSnapshot { name: "shmem.gets".into(), value: 42 }],
            gauges: vec![],
            histograms: vec![HistogramSnapshot {
                name: "probe_ns".into(),
                count: 2,
                sum: 10.0,
                min: 4.0,
                max: 6.0,
                p50: 4.0,
                p95: 6.0,
                p99: 6.0,
            }],
            pipeline: Some(PipelineMetrics {
                makespan_ns: 1234,
                overlap_efficiency: 0.75,
                ..Default::default()
            }),
            runtime: None,
        };
        let text = snap.render_text();
        assert!(text.contains("aggregate"));
        assert!(text.contains("  launch"));
        assert!(text.contains("overlap efficiency"));
        assert!(text.contains("0.7500"));
        assert!(text.contains("shmem.gets"));
        assert!(text.contains("mean=5.0"));
    }

    #[test]
    fn json_contains_pipeline_fields() {
        let snap = MetricsSnapshot {
            pipeline: Some(PipelineMetrics {
                overlap_efficiency: 0.5,
                remote_bytes: 100,
                ..Default::default()
            }),
            ..Default::default()
        };
        let v: serde_json::Value = serde_json::from_str(&snap.to_json()).unwrap();
        let p = v.get("pipeline").unwrap();
        assert_eq!(p.get("overlap_efficiency").and_then(|x| x.as_f64()), Some(0.5));
        assert_eq!(p.get("remote_bytes").and_then(|x| x.as_u64()), Some(100));
        assert!(p.get("recovery").is_some());
        assert!(p.get("pair_traffic").is_some());
    }
}
