//! Property tests for the derived pipeline metrics: every ratio the
//! profiler reports must stay in `[0, 1]` for *any* kernel the simulator
//! can run, and deriving metrics must not perturb the simulation.

use mgg_sim::{
    Cluster, ClusterSpec, GpuSim, KernelLaunch, KernelProgram, NoPaging, WarpOp,
};
use mgg_telemetry::{overlap_efficiency, PipelineMetrics};
use proptest::prelude::*;

/// A kernel whose warps run arbitrary (sanitized) op traces.
struct FuzzKernel {
    launch: KernelLaunch,
    traces: Vec<Vec<WarpOp>>,
}

impl KernelProgram for FuzzKernel {
    fn launch(&self, _pe: usize) -> KernelLaunch {
        self.launch
    }
    fn warp_ops(&self, pe: usize, block: u32, warp: u32) -> Vec<WarpOp> {
        let idx = (block * self.launch.warps_per_block + warp) as usize;
        self.traces
            .get(idx % self.traces.len().max(1))
            .cloned()
            .unwrap_or_default()
            .into_iter()
            .map(|op| match op {
                // A PE never GETs from itself.
                WarpOp::RemoteGet { peer, bytes, nbi } if peer as usize == pe => {
                    WarpOp::RemoteGet { peer: (peer + 1) % 3, bytes, nbi }
                }
                WarpOp::RemotePut { peer, bytes } if peer as usize == pe => {
                    WarpOp::RemotePut { peer: (peer + 1) % 3, bytes }
                }
                other => other,
            })
            .collect()
    }
}

fn arb_op() -> impl Strategy<Value = WarpOp> {
    prop_oneof![
        (1u32..5_000).prop_map(|cycles| WarpOp::Compute { cycles }),
        (1u32..100_000).prop_map(|bytes| WarpOp::GlobalRead { bytes }),
        (0u16..3, 1u32..10_000, proptest::bool::ANY)
            .prop_map(|(peer, bytes, nbi)| WarpOp::RemoteGet { peer, bytes, nbi }),
        Just(WarpOp::WaitRemote),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Occupancy, utilization, and overlap efficiency derived from any
    /// random kernel all lie in [0, 1], and the hidden communication time
    /// never exceeds the total.
    #[test]
    fn derived_metrics_stay_in_unit_range(
        traces in proptest::collection::vec(
            proptest::collection::vec(arb_op(), 0..12), 1..6),
        blocks in 0u32..16,
        wpb in 1u32..8,
    ) {
        let kernel = FuzzKernel {
            launch: KernelLaunch { blocks, warps_per_block: wpb, smem_per_block: 256 },
            traces,
        };
        let mut cluster = Cluster::new(ClusterSpec::dgx_a100(3));
        let (stats, events) =
            GpuSim::run_traced(&mut cluster, &kernel, &mut NoPaging).expect("valid launch");
        let m = PipelineMetrics::derive(&stats, &events);
        prop_assert!((0.0..=1.0).contains(&m.achieved_occupancy), "occ {}", m.achieved_occupancy);
        prop_assert!((0.0..=1.0).contains(&m.sm_utilization), "util {}", m.sm_utilization);
        prop_assert!(
            (0.0..=1.0).contains(&m.overlap_efficiency),
            "overlap {}",
            m.overlap_efficiency
        );
        prop_assert_eq!(m.overlap_efficiency, overlap_efficiency(&events));
        prop_assert!(m.hidden_comm_ns <= m.comm_ns, "{} > {}", m.hidden_comm_ns, m.comm_ns);
        prop_assert_eq!(m.makespan_ns, stats.makespan_ns());
        // Pair traffic totals agree with the aggregate fabric counters.
        let pair_bytes: u64 = m.pair_traffic.iter().map(|p| p.bytes).sum();
        prop_assert_eq!(pair_bytes, m.remote_bytes);
    }

    /// Deriving metrics is a pure function of the run's outputs: the
    /// traced run's stats equal the untraced run's stats.
    #[test]
    fn deriving_metrics_does_not_perturb_stats(
        traces in proptest::collection::vec(
            proptest::collection::vec(arb_op(), 0..10), 1..4),
        blocks in 0u32..10,
        wpb in 1u32..6,
    ) {
        let kernel = FuzzKernel {
            launch: KernelLaunch { blocks, warps_per_block: wpb, smem_per_block: 256 },
            traces,
        };
        let mut c1 = Cluster::new(ClusterSpec::dgx_a100(3));
        let plain = GpuSim::run(&mut c1, &kernel, &mut NoPaging).expect("valid launch");
        let mut c2 = Cluster::new(ClusterSpec::dgx_a100(3));
        let (traced, events) =
            GpuSim::run_traced(&mut c2, &kernel, &mut NoPaging).expect("valid launch");
        let _ = PipelineMetrics::derive(&traced, &events);
        prop_assert_eq!(plain, traced);
    }
}
