//! Seed-driven deterministic fault injection for the MGG simulator.
//!
//! Real multi-GPU platforms degrade in ways the paper's evaluation machines
//! did not: NVLink lanes drop to half rate after a correctable-error storm,
//! one GPU is thermally throttled, a one-sided GET is victim to a transient
//! fabric fault and must be retried. This crate models those failure classes
//! *deterministically*: a [`FaultSpec`] (four scalar knobs plus a `u64`
//! seed) expands into a concrete [`FaultSchedule`] — per-GPU link
//! degradation windows, per-GPU compute slowdowns, and a stateless
//! drop-decision function for one-sided operations — derived purely from
//! the seed, so every run replays identically.
//!
//! Faults perturb *timing only*. The functional data plane (what values an
//! aggregation produces) is never corrupted; a dropped GET is re-issued and
//! the retry returns the true data, it just arrives later. This keeps the
//! simulator's core invariant: identical inputs give identical outputs.
//!
//! The crate is dependency-free (`serde` aside) so that `mgg-sim` can take
//! it as a dependency without cycles.

#![deny(missing_docs)]

use serde::{Deserialize, Serialize};

/// Backoff charged before re-issuing a dropped one-sided GET, in
/// nanoseconds. Models the detection + re-issue path of a resilient
/// communication layer (sequence-number check plus a fresh descriptor).
pub const RETRY_BACKOFF_NS: u64 = 500;

/// Time after which an un-signalled non-blocking operation is declared
/// complete by timeout, in nanoseconds. Models a `quiet`/`wait_until`
/// deadline on a lost completion flag.
pub const COMPLETION_TIMEOUT_NS: u64 = 2_000;

/// Period of the failover health monitor's simulated heartbeat probes, in
/// nanoseconds. Each GPU is probed over the fabric once per period.
pub const HEARTBEAT_PERIOD_NS: u64 = 1_000;

/// Deadline after which an operation targeting a permanently dead peer is
/// abandoned instead of retried, in nanoseconds. Bounds the detection cost
/// of any single GET: a dead PE surfaces as an error within this budget,
/// never as a hang.
pub const PEER_DEATH_TIMEOUT_NS: u64 = 5_000;

/// User-facing fault knobs. All default to the "quiet" values, under which
/// the derived schedule injects nothing and the simulation is bit-identical
/// to a run without any fault layer installed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Seed from which every schedule decision is derived.
    pub seed: u64,
    /// Bandwidth multiplier applied to degraded links during fault windows,
    /// in `(0, 1]`. `1.0` disables link degradation.
    pub link_degrade: f64,
    /// Compute slowdown factor of straggler GPUs, `>= 1.0`. `1.0` disables
    /// stragglers.
    pub straggler: f64,
    /// Probability that a one-sided GET (or its completion signal) is
    /// transiently dropped, in `[0, 1)`. `0.0` disables drops.
    pub drop_rate: f64,
    /// Number of GPUs that fail permanently at a seed-derived instant
    /// (clamped to the cluster size at derivation). `0` disables.
    pub gpu_failures: u32,
    /// Number of links that go down permanently at a seed-derived instant
    /// (clamped to the number of unordered pairs). `0` disables.
    pub link_failures: u32,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 0,
            link_degrade: 1.0,
            straggler: 1.0,
            drop_rate: 0.0,
            gpu_failures: 0,
            link_failures: 0,
        }
    }
}

impl FaultSpec {
    /// The no-fault spec (same as `Default`).
    pub fn quiet() -> Self {
        Self::default()
    }

    /// True when no fault class is enabled.
    pub fn is_quiet(&self) -> bool {
        self.link_degrade >= 1.0
            && self.straggler <= 1.0
            && self.drop_rate <= 0.0
            && self.gpu_failures == 0
            && self.link_failures == 0
    }

    /// Checks the knobs are inside their documented domains.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.link_degrade > 0.0 && self.link_degrade <= 1.0) {
            return Err(format!(
                "link_degrade must be in (0, 1], got {}",
                self.link_degrade
            ));
        }
        if self.straggler < 1.0 || self.straggler.is_nan() {
            return Err(format!("straggler must be >= 1.0, got {}", self.straggler));
        }
        if !(0.0..1.0).contains(&self.drop_rate) {
            return Err(format!("drop_rate must be in [0, 1), got {}", self.drop_rate));
        }
        Ok(())
    }
}

/// One interval during which a link's bandwidth is degraded and its
/// latency jitters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFaultWindow {
    /// Window start (inclusive), in simulated nanoseconds.
    pub start_ns: u64,
    /// Window end (exclusive), in simulated nanoseconds.
    pub end_ns: u64,
    /// Bandwidth multiplier in `(0, 1]` while the window is active.
    pub bw_multiplier: f64,
    /// Extra per-transfer latency while the window is active.
    pub jitter_ns: u64,
}

/// A failure with no recovery window: the component stays down for the
/// rest of the run. Unlike [`LinkFaultWindow`] degradation (which ends),
/// permanent faults can only be handled by re-routing, evacuating the
/// dead GPU's shard, or degrading to the UVM path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PermanentFault {
    /// GPU `gpu` dies at `at_ns`: its warps halt, its memory becomes
    /// unreachable, and operations targeting it fail after a bounded
    /// detection timeout.
    GpuFailure {
        /// The GPU that dies.
        gpu: usize,
        /// Simulated time of death in nanoseconds.
        at_ns: u64,
    },
    /// The (unordered) link between `src` and `dst` goes down at `at_ns`;
    /// traffic between the pair must be re-routed or host-staged.
    LinkDown {
        /// One endpoint of the dead link.
        src: usize,
        /// The other endpoint.
        dst: usize,
        /// Simulated time the link drops, in nanoseconds.
        at_ns: u64,
    },
}

// Manual impls: the in-tree serde shim derives only named-field structs and
// unit-variant enums, so the data-carrying variants use a tagged object.
impl Serialize for PermanentFault {
    fn to_value(&self) -> serde::Value {
        use serde::Value;
        match *self {
            PermanentFault::GpuFailure { gpu, at_ns } => Value::Object(vec![
                ("kind".into(), Value::Str("gpu_failure".into())),
                ("gpu".into(), Value::UInt(gpu as u64)),
                ("at_ns".into(), Value::UInt(at_ns)),
            ]),
            PermanentFault::LinkDown { src, dst, at_ns } => Value::Object(vec![
                ("kind".into(), Value::Str("link_down".into())),
                ("src".into(), Value::UInt(src as u64)),
                ("dst".into(), Value::UInt(dst as u64)),
                ("at_ns".into(), Value::UInt(at_ns)),
            ]),
        }
    }
}

impl Deserialize for PermanentFault {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            v.get(name)
                .and_then(serde::Value::as_u64)
                .ok_or_else(|| serde::Error::missing_field(name))
        };
        let kind = v
            .get("kind")
            .and_then(serde::Value::as_str)
            .ok_or_else(|| serde::Error::missing_field("kind"))?;
        match kind {
            "gpu_failure" => Ok(PermanentFault::GpuFailure {
                gpu: field("gpu")? as usize,
                at_ns: field("at_ns")?,
            }),
            "link_down" => Ok(PermanentFault::LinkDown {
                src: field("src")? as usize,
                dst: field("dst")? as usize,
                at_ns: field("at_ns")?,
            }),
            other => Err(serde::Error::unknown_variant(other, "PermanentFault")),
        }
    }
}

impl PermanentFault {
    /// The instant the component fails, in simulated nanoseconds.
    pub fn at_ns(&self) -> u64 {
        match *self {
            PermanentFault::GpuFailure { at_ns, .. } => at_ns,
            PermanentFault::LinkDown { at_ns, .. } => at_ns,
        }
    }
}

// Distinct stream constants decorrelate the schedule's sub-decisions, so
// turning one knob never shifts another knob's draws.
const STREAM_LINK: u64 = 0x6c69_6e6b_6465_6772; // "linkdegr"
const STREAM_STRAGGLER: u64 = 0x7374_7261_6767_6c65; // "straggle"
const STREAM_DROP_GET: u64 = 0x6472_6f70_5f67_6574; // "drop_get"
const STREAM_DROP_NBI: u64 = 0x6472_6f70_5f6e_6269; // "drop_nbi"
const STREAM_GPU_FAIL: u64 = 0x6770_755f_6661_696c; // "gpu_fail"
const STREAM_LINK_FAIL: u64 = 0x6c69_6e6b_6661_696c; // "linkfail"

/// SplitMix64 step: advances `state` and returns the next draw.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    mix64(*state)
}

/// The SplitMix64 output finalizer, also used as a stateless hash.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws a uniform value in `[0, n)` (multiply-shift; `n` is tiny here so
/// the modulo bias of simpler schemes would be negligible anyway).
fn below(state: &mut u64, n: u64) -> u64 {
    ((splitmix64(state) as u128 * n as u128) >> 64) as u64
}

/// Maps a hash to a uniform `f64` in `[0, 1)` using its top 53 bits.
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A concrete, fully materialized fault scenario for `num_gpus` GPUs.
///
/// Derived from a [`FaultSpec`] by [`FaultSchedule::derive`], or built
/// manually (e.g. [`FaultSchedule::link_outage`]) for pinned test
/// scenarios. Timing hooks in `mgg-sim` query it; the resilience layer in
/// `mgg-shmem` consults the same drop decisions so the functional and
/// timing planes agree on *which* operations failed.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    spec: FaultSpec,
    /// Per-GPU link degradation windows (empty for healthy GPUs).
    link_windows: Vec<Vec<LinkFaultWindow>>,
    /// Per-GPU compute slowdown (1.0 for non-stragglers).
    compute_scale: Vec<f64>,
    /// Permanent GPU and link failures (empty for recoverable scenarios).
    permanent: Vec<PermanentFault>,
}

impl FaultSchedule {
    /// Expands `spec` into a concrete schedule for `num_gpus` GPUs. The
    /// same `(spec, num_gpus)` always yields the same schedule.
    pub fn derive(spec: &FaultSpec, num_gpus: usize) -> Self {
        let mut sched = Self::quiet_for(*spec, num_gpus);
        if num_gpus == 0 {
            return sched;
        }
        if spec.link_degrade < 1.0 {
            let mut st = spec.seed ^ STREAM_LINK;
            // A quarter of the GPUs (at least one) see degraded links.
            let degraded = pick_distinct(&mut st, num_gpus, (num_gpus / 4).max(1));
            for gpu in degraded {
                let mut windows = Vec::with_capacity(2);
                let start = below(&mut st, 2_048);
                let dur = 8_192 + below(&mut st, 24_576);
                let jitter = below(&mut st, 33);
                windows.push(LinkFaultWindow {
                    start_ns: start,
                    end_ns: start + dur,
                    bw_multiplier: spec.link_degrade,
                    jitter_ns: jitter,
                });
                // A second flap later on, so long kernels see recurrence.
                let gap = 4_096 + below(&mut st, 12_288);
                let start2 = start + dur + gap;
                let dur2 = 8_192 + below(&mut st, 24_576);
                windows.push(LinkFaultWindow {
                    start_ns: start2,
                    end_ns: start2 + dur2,
                    bw_multiplier: spec.link_degrade,
                    jitter_ns: jitter,
                });
                sched.link_windows[gpu] = windows;
            }
        }
        if spec.straggler > 1.0 {
            let mut st = spec.seed ^ STREAM_STRAGGLER;
            for gpu in pick_distinct(&mut st, num_gpus, (num_gpus / 8).max(1)) {
                sched.compute_scale[gpu] = spec.straggler;
            }
        }
        if spec.gpu_failures > 0 {
            let mut st = spec.seed ^ STREAM_GPU_FAIL;
            let k = (spec.gpu_failures as usize).min(num_gpus);
            for gpu in pick_distinct(&mut st, num_gpus, k) {
                let at_ns = 1_000 + below(&mut st, 14_336);
                sched.permanent.push(PermanentFault::GpuFailure { gpu, at_ns });
            }
        }
        if spec.link_failures > 0 && num_gpus >= 2 {
            let mut st = spec.seed ^ STREAM_LINK_FAIL;
            let pairs = num_gpus * (num_gpus - 1) / 2;
            let k = (spec.link_failures as usize).min(pairs);
            for idx in pick_distinct(&mut st, pairs, k) {
                let (src, dst) = unordered_pair(idx, num_gpus);
                let at_ns = 500 + below(&mut st, 14_336);
                sched.permanent.push(PermanentFault::LinkDown { src, dst, at_ns });
            }
        }
        sched
    }

    /// A schedule that injects nothing (used when faults are disabled but a
    /// schedule object is structurally required).
    pub fn quiet(num_gpus: usize) -> Self {
        Self::quiet_for(FaultSpec::quiet(), num_gpus)
    }

    fn quiet_for(spec: FaultSpec, num_gpus: usize) -> Self {
        FaultSchedule {
            spec,
            link_windows: vec![Vec::new(); num_gpus],
            compute_scale: vec![1.0; num_gpus],
            permanent: Vec::new(),
        }
    }

    /// Builds a pinned scenario: one GPU's links degraded over one fixed
    /// window, nothing else. Used by golden tests so recovery counters are
    /// reproducible independent of the seed-derivation policy.
    pub fn link_outage(
        num_gpus: usize,
        gpu: usize,
        window: LinkFaultWindow,
    ) -> Self {
        assert!(gpu < num_gpus, "GPU {gpu} out of range for {num_gpus} GPUs");
        let mut spec = FaultSpec::quiet();
        spec.link_degrade = window.bw_multiplier;
        let mut sched = Self::quiet_for(spec, num_gpus);
        sched.link_windows[gpu] = vec![window];
        sched
    }

    /// Builds a pinned scenario: one GPU fails permanently at `at_ns`,
    /// nothing else. Used by failover goldens and the CLI's
    /// `--fault-gpu-fail` flag.
    pub fn gpu_failure(num_gpus: usize, gpu: usize, at_ns: u64) -> Self {
        assert!(gpu < num_gpus, "GPU {gpu} out of range for {num_gpus} GPUs");
        let mut spec = FaultSpec::quiet();
        spec.gpu_failures = 1;
        let mut sched = Self::quiet_for(spec, num_gpus);
        sched.permanent.push(PermanentFault::GpuFailure { gpu, at_ns });
        sched
    }

    /// Builds a pinned scenario: the `(src, dst)` link goes down
    /// permanently at `at_ns`, nothing else.
    pub fn link_down(num_gpus: usize, src: usize, dst: usize, at_ns: u64) -> Self {
        assert!(src < num_gpus && dst < num_gpus && src != dst, "bad link ({src}, {dst})");
        let mut spec = FaultSpec::quiet();
        spec.link_failures = 1;
        let mut sched = Self::quiet_for(spec, num_gpus);
        sched.permanent.push(PermanentFault::LinkDown { src, dst, at_ns });
        sched
    }

    /// Appends a permanent fault to the schedule (chainable; used by the
    /// CLI to combine pinned failures with seed-derived transients).
    pub fn with_permanent(mut self, fault: PermanentFault) -> Self {
        match fault {
            PermanentFault::GpuFailure { gpu, .. } => {
                assert!(gpu < self.num_gpus(), "GPU {gpu} out of range");
            }
            PermanentFault::LinkDown { src, dst, .. } => {
                assert!(
                    src < self.num_gpus() && dst < self.num_gpus() && src != dst,
                    "bad link ({src}, {dst})"
                );
            }
        }
        self.permanent.push(fault);
        self
    }

    /// The spec this schedule was derived from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Number of GPUs the schedule covers.
    pub fn num_gpus(&self) -> usize {
        self.compute_scale.len()
    }

    /// True when the schedule injects nothing at all.
    pub fn is_quiet(&self) -> bool {
        self.spec.drop_rate <= 0.0
            && self.link_windows.iter().all(Vec::is_empty)
            && self.compute_scale.iter().all(|&s| s == 1.0)
            && self.permanent.is_empty()
    }

    /// All permanent faults of this schedule, in derivation order.
    pub fn permanent(&self) -> &[PermanentFault] {
        &self.permanent
    }

    /// True when the schedule contains any permanent GPU or link failure.
    pub fn has_permanent(&self) -> bool {
        !self.permanent.is_empty()
    }

    /// When `gpu` dies permanently, if ever (earliest failure wins).
    pub fn gpu_dead_at(&self, gpu: usize) -> Option<u64> {
        self.permanent
            .iter()
            .filter_map(|f| match *f {
                PermanentFault::GpuFailure { gpu: g, at_ns } if g == gpu => Some(at_ns),
                _ => None,
            })
            .min()
    }

    /// When the unordered link `(a, b)` goes down permanently, if ever.
    /// A link also counts as down once either endpoint GPU has died.
    pub fn link_dead_at(&self, a: usize, b: usize) -> Option<u64> {
        self.permanent
            .iter()
            .filter_map(|f| match *f {
                PermanentFault::LinkDown { src, dst, at_ns }
                    if (src, dst) == (a, b) || (src, dst) == (b, a) =>
                {
                    Some(at_ns)
                }
                PermanentFault::GpuFailure { gpu, at_ns } if gpu == a || gpu == b => {
                    Some(at_ns)
                }
                _ => None,
            })
            .min()
    }

    /// GPUs that die permanently at some point, in ascending order.
    pub fn dead_gpus(&self) -> Vec<usize> {
        let mut dead: Vec<usize> = self
            .permanent
            .iter()
            .filter_map(|f| match *f {
                PermanentFault::GpuFailure { gpu, .. } => Some(gpu),
                _ => None,
            })
            .collect();
        dead.sort_unstable();
        dead.dedup();
        dead
    }

    /// The earliest permanent failure instant, if any.
    pub fn first_failure_ns(&self) -> Option<u64> {
        self.permanent.iter().map(PermanentFault::at_ns).min()
    }

    /// Link degradation windows of `gpu` (empty when healthy).
    pub fn link_windows(&self, gpu: usize) -> &[LinkFaultWindow] {
        &self.link_windows[gpu]
    }

    /// Compute slowdown of `gpu` (1.0 when not a straggler).
    pub fn compute_scale(&self, gpu: usize) -> f64 {
        self.compute_scale[gpu]
    }

    /// Whether the `serial`-th one-sided GET issued by `pe` is transiently
    /// dropped. Stateless: the (seed, pe, serial) triple fully determines
    /// the outcome, so the timing simulator and the functional resilience
    /// layer agree without sharing state.
    pub fn drops_get(&self, pe: usize, serial: u64) -> bool {
        self.drops(STREAM_DROP_GET, pe, serial)
    }

    /// Whether the completion signal of the `serial`-th non-blocking GET
    /// issued by `pe` is lost (the data arrives; the flag does not).
    pub fn drops_completion(&self, pe: usize, serial: u64) -> bool {
        self.drops(STREAM_DROP_NBI, pe, serial)
    }

    fn drops(&self, stream: u64, pe: usize, serial: u64) -> bool {
        if self.spec.drop_rate <= 0.0 {
            return false;
        }
        let h = mix64(
            self.spec.seed ^ stream ^ mix64((pe as u64) << 32 ^ serial),
        );
        unit_f64(h) < self.spec.drop_rate
    }

    /// Effective health of `gpu` in `(0, 1]`: the product of its worst
    /// link multiplier and the inverse of its compute slowdown. Used by
    /// the engine as a re-planning capacity weight.
    pub fn health(&self, gpu: usize) -> f64 {
        let link = self.link_windows[gpu]
            .iter()
            .map(|w| w.bw_multiplier)
            .fold(1.0_f64, f64::min);
        link / self.compute_scale[gpu]
    }

    /// GPUs whose health is below 1.0, i.e. touched by any fault class
    /// other than transient drops.
    pub fn impaired_gpus(&self) -> Vec<usize> {
        (0..self.num_gpus()).filter(|&g| self.health(g) < 1.0).collect()
    }
}

/// Decodes pair index `idx` into the `idx`-th unordered pair `(a, b)` with
/// `a < b` of `0..n` in lexicographic order: (0,1), (0,2), .., (1,2), ..
fn unordered_pair(idx: usize, n: usize) -> (usize, usize) {
    debug_assert!(n >= 2 && idx < n * (n - 1) / 2);
    let mut remaining = idx;
    for a in 0..n - 1 {
        let row = n - 1 - a;
        if remaining < row {
            return (a, a + 1 + remaining);
        }
        remaining -= row;
    }
    unreachable!("pair index {idx} out of range for {n} GPUs")
}

/// Picks `k` distinct values from `0..n`, deterministically from `state`
/// (partial Fisher-Yates).
fn pick_distinct(state: &mut u64, n: usize, k: usize) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..n).collect();
    let k = k.min(n);
    for i in 0..k {
        let j = i + below(state, (n - i) as u64) as usize;
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_spec_derives_quiet_schedule() {
        let sched = FaultSchedule::derive(&FaultSpec::quiet(), 8);
        assert!(sched.is_quiet());
        for g in 0..8 {
            assert!(sched.link_windows(g).is_empty());
            assert_eq!(sched.compute_scale(g), 1.0);
            assert_eq!(sched.health(g), 1.0);
            assert!(!sched.drops_get(g, 0));
            assert!(!sched.drops_completion(g, 0));
        }
        assert!(sched.impaired_gpus().is_empty());
    }

    #[test]
    fn same_seed_same_schedule() {
        let spec = FaultSpec {
            seed: 42,
            link_degrade: 0.5,
            straggler: 2.0,
            drop_rate: 0.1,
            ..FaultSpec::quiet()
        };
        let a = FaultSchedule::derive(&spec, 8);
        let b = FaultSchedule::derive(&spec, 8);
        assert_eq!(a, b);
        for pe in 0..8 {
            for serial in 0..64 {
                assert_eq!(a.drops_get(pe, serial), b.drops_get(pe, serial));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            FaultSchedule::derive(
                &FaultSpec { seed, link_degrade: 0.5, ..FaultSpec::quiet() },
                8,
            )
        };
        // Window placement is seed-driven, so some seed pair must differ.
        assert!((1..10).any(|s| mk(s) != mk(0)));
    }

    #[test]
    fn link_degrade_touches_at_least_one_gpu() {
        let spec = FaultSpec { seed: 7, link_degrade: 0.25, ..FaultSpec::quiet() };
        let sched = FaultSchedule::derive(&spec, 4);
        let touched: Vec<_> =
            (0..4).filter(|&g| !sched.link_windows(g).is_empty()).collect();
        assert_eq!(touched.len(), 1, "4 GPUs -> one degraded");
        let g = touched[0];
        for w in sched.link_windows(g) {
            assert!(w.start_ns < w.end_ns);
            assert_eq!(w.bw_multiplier, 0.25);
        }
        assert_eq!(sched.health(g), 0.25);
        assert_eq!(sched.impaired_gpus(), vec![g]);
    }

    #[test]
    fn straggler_slows_exactly_the_chosen_gpus() {
        let spec = FaultSpec { seed: 3, straggler: 2.5, ..FaultSpec::quiet() };
        let sched = FaultSchedule::derive(&spec, 8);
        let slow: Vec<_> = (0..8).filter(|&g| sched.compute_scale(g) > 1.0).collect();
        assert_eq!(slow.len(), 1);
        assert_eq!(sched.compute_scale(slow[0]), 2.5);
        assert!((sched.health(slow[0]) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn drop_rate_is_roughly_honored() {
        let spec = FaultSpec { seed: 11, drop_rate: 0.2, ..FaultSpec::quiet() };
        let sched = FaultSchedule::derive(&spec, 4);
        let n = 10_000;
        let dropped = (0..n).filter(|&s| sched.drops_get(1, s)).count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "rate={rate}");
        // GET and completion streams are decorrelated.
        let both = (0..n)
            .filter(|&s| sched.drops_get(1, s) && sched.drops_completion(1, s))
            .count();
        assert!((both as f64 / n as f64) < 0.08);
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        let ok = FaultSpec {
            link_degrade: 0.5,
            straggler: 1.5,
            drop_rate: 0.1,
            ..FaultSpec::quiet()
        };
        assert!(ok.validate().is_ok());
        assert!(FaultSpec { link_degrade: 0.0, ..ok }.validate().is_err());
        assert!(FaultSpec { link_degrade: 1.5, ..ok }.validate().is_err());
        assert!(FaultSpec { straggler: 0.5, ..ok }.validate().is_err());
        assert!(FaultSpec { drop_rate: 1.0, ..ok }.validate().is_err());
        assert!(FaultSpec { drop_rate: -0.1, ..ok }.validate().is_err());
    }

    #[test]
    fn link_outage_is_pinned() {
        let w = LinkFaultWindow {
            start_ns: 1_000,
            end_ns: 9_000,
            bw_multiplier: 0.5,
            jitter_ns: 10,
        };
        let sched = FaultSchedule::link_outage(4, 2, w);
        assert_eq!(sched.link_windows(2), &[w]);
        assert!(sched.link_windows(0).is_empty());
        assert_eq!(sched.health(2), 0.5);
        assert!(!sched.drops_get(2, 0));
    }

    #[test]
    fn gpu_failures_derive_deterministically() {
        let spec = FaultSpec { seed: 5, gpu_failures: 2, ..FaultSpec::quiet() };
        let a = FaultSchedule::derive(&spec, 8);
        let b = FaultSchedule::derive(&spec, 8);
        assert_eq!(a, b);
        assert!(a.has_permanent());
        assert!(!a.is_quiet());
        assert_eq!(a.dead_gpus().len(), 2);
        for &g in &a.dead_gpus() {
            let at = a.gpu_dead_at(g).unwrap();
            assert!(at >= 1_000, "failure instant {at} before warmup");
        }
        assert!(a.first_failure_ns().is_some());
    }

    #[test]
    fn link_failures_derive_valid_pairs() {
        let spec = FaultSpec { seed: 9, link_failures: 3, ..FaultSpec::quiet() };
        let sched = FaultSchedule::derive(&spec, 4);
        let links: Vec<_> = sched
            .permanent()
            .iter()
            .filter_map(|f| match *f {
                PermanentFault::LinkDown { src, dst, at_ns } => Some((src, dst, at_ns)),
                _ => None,
            })
            .collect();
        assert_eq!(links.len(), 3);
        for &(src, dst, at_ns) in &links {
            assert!(src < dst && dst < 4, "bad pair ({src}, {dst})");
            assert!(at_ns >= 500);
            assert_eq!(sched.link_dead_at(src, dst), Some(at_ns));
            assert_eq!(sched.link_dead_at(dst, src), Some(at_ns));
        }
        // Distinct pairs.
        let mut pairs: Vec<_> = links.iter().map(|&(s, d, _)| (s, d)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), 3);
        assert!(sched.dead_gpus().is_empty());
    }

    #[test]
    fn pinned_gpu_failure_builder() {
        let sched = FaultSchedule::gpu_failure(4, 2, 2_000);
        assert_eq!(sched.gpu_dead_at(2), Some(2_000));
        assert_eq!(sched.gpu_dead_at(0), None);
        assert_eq!(sched.dead_gpus(), vec![2]);
        // Links touching the dead GPU count as down from its death.
        assert_eq!(sched.link_dead_at(2, 3), Some(2_000));
        assert_eq!(sched.link_dead_at(0, 1), None);
        assert!(!sched.is_quiet());
        assert!(!sched.spec().is_quiet());
    }

    #[test]
    fn pinned_link_down_builder() {
        let sched = FaultSchedule::link_down(4, 0, 3, 1_500);
        assert_eq!(sched.link_dead_at(0, 3), Some(1_500));
        assert_eq!(sched.link_dead_at(3, 0), Some(1_500));
        assert_eq!(sched.link_dead_at(0, 1), None);
        assert!(sched.dead_gpus().is_empty());
        assert_eq!(sched.first_failure_ns(), Some(1_500));
    }

    #[test]
    fn with_permanent_chains() {
        let sched = FaultSchedule::gpu_failure(4, 1, 2_000)
            .with_permanent(PermanentFault::LinkDown { src: 2, dst: 3, at_ns: 3_000 });
        assert_eq!(sched.permanent().len(), 2);
        assert_eq!(sched.first_failure_ns(), Some(2_000));
        assert_eq!(sched.link_dead_at(2, 3), Some(3_000));
    }

    #[test]
    fn unordered_pair_enumerates_lexicographically() {
        let expected = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        for (idx, &pair) in expected.iter().enumerate() {
            assert_eq!(unordered_pair(idx, 4), pair);
        }
    }

    #[test]
    fn pick_distinct_is_distinct_and_in_range() {
        let mut st = 99u64;
        let picked = pick_distinct(&mut st, 8, 3);
        assert_eq!(picked.len(), 3);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
        assert!(picked.iter().all(|&g| g < 8));
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    fn arb_spec() -> impl Strategy<Value = FaultSpec> {
        (0u64..1_000, 0.1f64..1.0, 1.0f64..4.0, 0.0f64..0.5, 0u32..3, 0u32..3).prop_map(
            |(seed, link_degrade, straggler, drop_rate, gpu_failures, link_failures)| {
                FaultSpec {
                    seed,
                    link_degrade,
                    straggler,
                    drop_rate,
                    gpu_failures,
                    link_failures,
                }
            },
        )
    }

    proptest! {
        #[test]
        fn derivation_is_deterministic(spec in arb_spec(), n in 1usize..16) {
            let a = FaultSchedule::derive(&spec, n);
            let b = FaultSchedule::derive(&spec, n);
            prop_assert_eq!(a, b);
        }

        #[test]
        fn windows_are_well_formed(spec in arb_spec(), n in 1usize..16) {
            let sched = FaultSchedule::derive(&spec, n);
            for g in 0..n {
                for w in sched.link_windows(g) {
                    prop_assert!(w.start_ns < w.end_ns);
                    prop_assert!(w.bw_multiplier > 0.0 && w.bw_multiplier <= 1.0);
                }
                let h = sched.health(g);
                prop_assert!(h > 0.0 && h <= 1.0);
                let s = sched.compute_scale(g);
                prop_assert!(s >= 1.0);
            }
        }
    }
}
