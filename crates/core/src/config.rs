//! MGG's tunable configuration knobs (§4).

use serde::Serialize;

/// The three runtime knobs the analytical model and tuner optimize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct MggConfig {
    /// Neighbor-partition size (`ps`): neighbors per unit of warp work.
    /// `0` disables neighbor partitioning (whole neighborhoods — the
    /// Figure-9(a) ablation only; the tuner never produces 0).
    pub ps: u32,
    /// Interleaving distance (`dist`): local/remote partition *pairs*
    /// assigned to each warp (§3.3, Figure 6).
    pub dist: u32,
    /// Warps per thread block (`wpb`).
    pub wpb: u32,
}

impl MggConfig {
    /// Paper search bounds: `ps ∈ [1,32]`.
    pub const PS_RANGE: std::ops::RangeInclusive<u32> = 1..=32;
    /// Paper search bounds: `dist ∈ [1,16]`.
    pub const DIST_RANGE: std::ops::RangeInclusive<u32> = 1..=16;
    /// Paper search bounds: `wpb ∈ [1,16]`.
    pub const WPB_RANGE: std::ops::RangeInclusive<u32> = 1..=16;

    /// The tuner's starting point (§4: "ps, dist, and wpb are initialized
    /// as the value 1").
    pub fn initial() -> Self {
        MggConfig { ps: 1, dist: 1, wpb: 1 }
    }

    /// A sensible fixed default when not auto-tuning (the ablation studies
    /// of §5.3 fix `ps = 16` and `wpb = 2`).
    pub fn default_fixed() -> Self {
        MggConfig { ps: 16, dist: 2, wpb: 2 }
    }

    /// True when every knob lies within the paper's search bounds.
    pub fn in_search_space(&self) -> bool {
        Self::PS_RANGE.contains(&self.ps)
            && Self::DIST_RANGE.contains(&self.dist)
            && Self::WPB_RANGE.contains(&self.wpb)
    }

    /// Validates knobs for kernel construction (ablation configs with
    /// `ps == 0` are allowed; `dist`/`wpb` must be positive).
    pub fn validate(&self) -> Result<(), String> {
        if self.dist == 0 {
            return Err("dist must be at least 1".into());
        }
        if self.wpb == 0 {
            return Err("wpb must be at least 1".into());
        }
        Ok(())
    }
}

impl Default for MggConfig {
    fn default() -> Self {
        Self::default_fixed()
    }
}

impl std::fmt::Display for MggConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ps={} dist={} wpb={}", self.ps, self.dist, self.wpb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_is_all_ones() {
        assert_eq!(MggConfig::initial(), MggConfig { ps: 1, dist: 1, wpb: 1 });
        assert!(MggConfig::initial().in_search_space());
    }

    #[test]
    fn bounds_match_paper() {
        assert!(MggConfig { ps: 32, dist: 16, wpb: 16 }.in_search_space());
        assert!(!MggConfig { ps: 33, dist: 1, wpb: 1 }.in_search_space());
        assert!(!MggConfig { ps: 1, dist: 17, wpb: 1 }.in_search_space());
        assert!(!MggConfig { ps: 0, dist: 1, wpb: 1 }.in_search_space());
    }

    #[test]
    fn validation_allows_ablation_ps_zero() {
        assert!(MggConfig { ps: 0, dist: 1, wpb: 2 }.validate().is_ok());
        assert!(MggConfig { ps: 4, dist: 0, wpb: 2 }.validate().is_err());
        assert!(MggConfig { ps: 4, dist: 1, wpb: 0 }.validate().is_err());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(MggConfig::default_fixed().to_string(), "ps=16 dist=2 wpb=2");
    }
}
