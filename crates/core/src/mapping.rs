//! Warp-based mapping with workload interleaving (§3.3, Figure 6).
//!
//! Each warp receives `dist` local partitions **and** `dist` remote
//! partitions (the interleaving distance), so that (i) every warp can
//! overlap its own remote fetches with its own local aggregation
//! (intra-warp pipelining, Figure 7) and (ii) every SM hosts a mix of
//! communication-heavy and computation-heavy work, keeping its schedulers
//! fed while some warps wait on the fabric (inter-warp overlap).
//!
//! The non-interleaved mapping (remote and local partitions on disjoint
//! warp ranges, as a naive design would produce) is kept for the
//! Figure-9(b) ablation.

use mgg_graph::partition::neighbor::NeighborPartition;

use crate::workload::WorkPlan;

/// The work assigned to one warp: up to `dist` (local, remote) partition
/// pairs, element `i` holding the warp's `i`-th local and remote
/// partition (either may be absent near the tail).
#[derive(Debug, Clone, Default)]
pub struct WarpAssignment {
    /// The warp's (local, remote) partition pairs, in issue order.
    pub pairs: Vec<(Option<NeighborPartition>, Option<NeighborPartition>)>,
}

impl WarpAssignment {
    /// True when the warp has nothing to do.
    pub fn is_empty(&self) -> bool {
        self.pairs.iter().all(|(l, r)| l.is_none() && r.is_none())
    }

    /// Neighbor count summed over both kinds.
    pub fn total_neighbors(&self) -> u64 {
        self.pairs
            .iter()
            .flat_map(|(l, r)| [l, r])
            .filter_map(|p| p.as_ref())
            .map(|p| p.len as u64)
            .sum()
    }
}

/// How local/remote partitions map onto warps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingMode {
    /// MGG's interleaved mapping: warp `w` gets local partitions
    /// `[w*dist, (w+1)*dist)` and remote partitions `[w*dist, (w+1)*dist)`.
    Interleaved,
    /// Ablation: all-local warps first, then all-remote warps, `dist`
    /// partitions each (continuous ids — remote-heavy blocks cluster on
    /// the same SMs, the imbalance Figure 6 illustrates).
    Separated,
}

/// Builds the per-warp assignment list for one GPU's plan.
pub fn map_warps(plan: &WorkPlan, dist: u32, mode: MappingMode) -> Vec<WarpAssignment> {
    assert!(dist >= 1, "dist must be at least 1");
    let d = dist as usize;
    match mode {
        MappingMode::Interleaved => {
            let pairs_needed = plan.lnps.len().max(plan.rnps.len());
            let num_warps = pairs_needed.div_ceil(d);
            (0..num_warps)
                .map(|w| WarpAssignment {
                    pairs: (0..d)
                        .map(|i| {
                            let idx = w * d + i;
                            (plan.lnps.get(idx).copied(), plan.rnps.get(idx).copied())
                        })
                        .collect(),
                })
                .collect()
        }
        MappingMode::Separated => {
            let local_warps = plan.lnps.len().div_ceil(d);
            let remote_warps = plan.rnps.len().div_ceil(d);
            let mut out = Vec::with_capacity(local_warps + remote_warps);
            for w in 0..local_warps {
                out.push(WarpAssignment {
                    pairs: (0..d)
                        .map(|i| (plan.lnps.get(w * d + i).copied(), None))
                        .collect(),
                });
            }
            for w in 0..remote_warps {
                out.push(WarpAssignment {
                    pairs: (0..d)
                        .map(|i| (None, plan.rnps.get(w * d + i).copied()))
                        .collect(),
                });
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::HybridPlacement;
    use crate::workload::build_plans;
    use mgg_graph::generators::rmat::{rmat, RmatConfig};
    use mgg_graph::partition::neighbor::PartitionKind;

    fn plan() -> WorkPlan {
        let g = rmat(&RmatConfig::graph500(9, 4_000, 19));
        let placement = HybridPlacement::plan(&g, 4);
        build_plans(&placement, 8).remove(1)
    }

    fn covered(assignments: &[WarpAssignment]) -> (u64, u64) {
        let mut local = 0u64;
        let mut remote = 0u64;
        for a in assignments {
            for (l, r) in &a.pairs {
                if let Some(p) = l {
                    assert_eq!(p.kind, PartitionKind::Local);
                    local += p.len as u64;
                }
                if let Some(p) = r {
                    assert_eq!(p.kind, PartitionKind::Remote);
                    remote += p.len as u64;
                }
            }
        }
        (local, remote)
    }

    #[test]
    fn interleaved_covers_everything_once() {
        let plan = plan();
        let want_local: u64 = plan.lnps.iter().map(|p| p.len as u64).sum();
        let want_remote: u64 = plan.rnps.iter().map(|p| p.len as u64).sum();
        for dist in [1, 2, 3, 16] {
            let warps = map_warps(&plan, dist, MappingMode::Interleaved);
            let (l, r) = covered(&warps);
            assert_eq!((l, r), (want_local, want_remote), "dist={dist}");
        }
    }

    #[test]
    fn separated_covers_everything_once() {
        let plan = plan();
        let want_local: u64 = plan.lnps.iter().map(|p| p.len as u64).sum();
        let want_remote: u64 = plan.rnps.iter().map(|p| p.len as u64).sum();
        let warps = map_warps(&plan, 2, MappingMode::Separated);
        let (l, r) = covered(&warps);
        assert_eq!((l, r), (want_local, want_remote));
    }

    #[test]
    fn warp_count_follows_equation_2() {
        // numWarps = ceil(max(local, remote) / dist).
        let plan = plan();
        for dist in [1u32, 2, 4, 8] {
            let warps = map_warps(&plan, dist, MappingMode::Interleaved);
            let expect = plan.lnps.len().max(plan.rnps.len()).div_ceil(dist as usize);
            assert_eq!(warps.len(), expect, "dist={dist}");
        }
    }

    #[test]
    fn interleaved_warps_mix_kinds() {
        // With dist = 1, exactly min(#lnp, #rnp) warps carry both kinds;
        // the tail of the longer list is single-kind.
        let plan = plan();
        let warps = map_warps(&plan, 1, MappingMode::Interleaved);
        let mixed = warps
            .iter()
            .filter(|a| a.pairs.iter().any(|(l, r)| l.is_some() && r.is_some()))
            .count();
        assert_eq!(mixed, plan.lnps.len().min(plan.rnps.len()));
        assert!(mixed > 0);
    }

    #[test]
    fn separated_warps_are_single_kind() {
        let plan = plan();
        let warps = map_warps(&plan, 2, MappingMode::Separated);
        for a in &warps {
            let has_local = a.pairs.iter().any(|(l, _)| l.is_some());
            let has_remote = a.pairs.iter().any(|(_, r)| r.is_some());
            assert!(!(has_local && has_remote), "separated warp mixes kinds");
        }
    }

    #[test]
    fn bigger_dist_means_fewer_warps() {
        let plan = plan();
        let w1 = map_warps(&plan, 1, MappingMode::Interleaved).len();
        let w4 = map_warps(&plan, 4, MappingMode::Interleaved).len();
        assert!(w4 <= w1.div_ceil(4) + 1);
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;
    use mgg_graph::partition::neighbor::NeighborPartition;
    use mgg_graph::partition::neighbor::PartitionKind;

    fn arb_plan() -> impl Strategy<Value = WorkPlan> {
        let part = |kind: PartitionKind| {
            move |(row, start, len): (u32, u64, u32)| NeighborPartition {
                row: row % 64,
                start,
                len: len % 32 + 1,
                kind,
            }
        };
        (
            proptest::collection::vec((0u32..64, 0u64..1000, 0u32..32), 0..80),
            proptest::collection::vec((0u32..64, 0u64..1000, 0u32..32), 0..80),
        )
            .prop_map(move |(l, r)| WorkPlan {
                pe: 0,
                lnps: l.into_iter().map(part(PartitionKind::Local)).collect(),
                rnps: r.into_iter().map(part(PartitionKind::Remote)).collect(),
            })
    }

    proptest! {
        #[test]
        fn both_mappings_cover_every_partition_exactly_once(
            plan in arb_plan(),
            dist in 1u32..17,
        ) {
            for mode in [MappingMode::Interleaved, MappingMode::Separated] {
                let warps = map_warps(&plan, dist, mode);
                let mut local = 0usize;
                let mut remote = 0usize;
                for a in &warps {
                    prop_assert!(a.pairs.len() <= dist as usize);
                    for (l, r) in &a.pairs {
                        local += l.is_some() as usize;
                        remote += r.is_some() as usize;
                    }
                }
                prop_assert_eq!(local, plan.lnps.len(), "{:?}", mode);
                prop_assert_eq!(remote, plan.rnps.len(), "{:?}", mode);
            }
        }

        #[test]
        fn interleaved_warp_count_is_equation_2(
            plan in arb_plan(),
            dist in 1u32..17,
        ) {
            let warps = map_warps(&plan, dist, MappingMode::Interleaved);
            let expect = plan.lnps.len().max(plan.rnps.len()).div_ceil(dist as usize);
            prop_assert_eq!(warps.len(), expect);
        }
    }
}
