//! Analytical performance/resource modeling (§4, Equations 1–3).
//!
//! Two modeled quantities steer the tuner:
//!
//! ```text
//! WPW  = 2 · ps · D · dist                      (workload per warp)
//! SMEM = ps · wpb · IntS + 2 · wpb · D · FloatS (shared memory per block)
//! numWarps    = max(local, remote) / dist       (Equation 2)
//! numBlocks   = numWarps / wpb                  (Equation 3)
//! blocksPerSM = numBlocks / numSMs
//! ```
//!
//! Note: the paper's Listing 2 computes a larger shared-memory size
//! (`ps·wpb·IntS + 2·ps·wpb·D·FloatS`, i.e. a full `ps x D` staging area
//! per warp); Equation 1 keeps one `D`-vector per warp for the partial
//! result and one for the remote staging buffer. The two disagree in the
//! paper itself; we follow Equation 1 for modeling (and expose the
//! Listing-2 formula separately), since Equation 1 is what the constraint
//! `SMEM ≤ c2` is stated over.

use mgg_sim::{GpuSpec, KernelLaunch};
use serde::Serialize;

use crate::config::MggConfig;
use crate::workload::WorkPlan;

const INT_S: u64 = 4;
const FLOAT_S: u64 = 4;

/// The §4 model, bound to a GPU spec and an embedding dimension.
#[derive(Debug, Clone)]
pub struct AnalyticalModel {
    /// The GPU the model prices constraints against.
    pub spec: GpuSpec,
    /// Node embedding dimension `D`.
    pub dim: usize,
}

/// Model outputs for one configuration and workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ModelEstimate {
    /// Workload per warp (Equation 1).
    pub wpw: u64,
    /// Shared memory per block (Equation 2).
    pub smem_bytes: u64,
    /// Total warps the configuration launches.
    pub num_warps: u64,
    /// Total thread blocks (Equation 3).
    pub num_blocks: u64,
    /// Resident blocks per SM the configuration implies.
    pub blocks_per_sm: f64,
}

impl AnalyticalModel {
    /// Creates the model.
    pub fn new(spec: GpuSpec, dim: usize) -> Self {
        assert!(dim > 0, "dim must be positive");
        AnalyticalModel { spec, dim }
    }

    /// Equation 1 (first line): workload per warp in elements.
    pub fn wpw(&self, cfg: &MggConfig) -> u64 {
        2 * cfg.ps as u64 * self.dim as u64 * cfg.dist as u64
    }

    /// Equation 1 (second line): dynamic shared memory per block in bytes.
    pub fn smem_bytes(&self, cfg: &MggConfig) -> u64 {
        cfg.ps as u64 * cfg.wpb as u64 * INT_S
            + 2 * cfg.wpb as u64 * self.dim as u64 * FLOAT_S
    }

    /// Listing 2's (larger) shared-memory size, kept for reference.
    pub fn smem_bytes_listing2(&self, cfg: &MggConfig) -> u64 {
        cfg.ps as u64 * cfg.wpb as u64 * INT_S
            + 2 * cfg.ps as u64 * cfg.wpb as u64 * self.dim as u64 * FLOAT_S
    }

    /// Equations 2–3 for a given per-GPU partition census.
    pub fn estimate(&self, cfg: &MggConfig, local: usize, remote: usize) -> ModelEstimate {
        let num_warps = local.max(remote).div_ceil(cfg.dist.max(1) as usize) as u64;
        let num_blocks = num_warps.div_ceil(cfg.wpb.max(1) as u64);
        ModelEstimate {
            wpw: self.wpw(cfg),
            smem_bytes: self.smem_bytes(cfg),
            num_warps,
            num_blocks,
            blocks_per_sm: num_blocks as f64 / self.spec.num_sms as f64,
        }
    }

    /// Hardware-constraint check (`SMEM ≤ c2`, §4 constraint 4) plus the
    /// search-space bounds (§4 constraints 1–3).
    pub fn feasible(&self, cfg: &MggConfig) -> bool {
        cfg.in_search_space() && self.smem_bytes(cfg) <= self.spec.smem_per_sm as u64
    }

    /// Builds the simulator launch configuration for one GPU's plan —
    /// the host-side computation of Listing 2 lines 28–32.
    pub fn launch_for(&self, cfg: &MggConfig, plan: &WorkPlan) -> KernelLaunch {
        let est = self.estimate(cfg, plan.lnps.len(), plan.rnps.len());
        KernelLaunch {
            blocks: est.num_blocks as u32,
            warps_per_block: cfg.wpb,
            smem_per_block: est.smem_bytes as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AnalyticalModel {
        AnalyticalModel::new(GpuSpec::a100(), 602)
    }

    #[test]
    fn wpw_formula() {
        let m = model();
        let cfg = MggConfig { ps: 16, dist: 2, wpb: 4 };
        assert_eq!(m.wpw(&cfg), 2 * 16 * 602 * 2);
    }

    #[test]
    fn smem_formula_eq1() {
        let m = model();
        let cfg = MggConfig { ps: 16, dist: 1, wpb: 2 };
        assert_eq!(m.smem_bytes(&cfg), 16 * 2 * 4 + 2 * 2 * 602 * 4);
    }

    #[test]
    fn listing2_is_larger() {
        let m = model();
        let cfg = MggConfig { ps: 16, dist: 1, wpb: 2 };
        assert!(m.smem_bytes_listing2(&cfg) > m.smem_bytes(&cfg));
    }

    #[test]
    fn warp_and_block_counts() {
        let m = model();
        let cfg = MggConfig { ps: 16, dist: 2, wpb: 4 };
        let est = m.estimate(&cfg, 1_000, 600);
        assert_eq!(est.num_warps, 500); // ceil(max(1000,600)/2)
        assert_eq!(est.num_blocks, 125);
        assert!((est.blocks_per_sm - 125.0 / 108.0).abs() < 1e-9);
    }

    #[test]
    fn feasibility_respects_smem_cap() {
        let m = model();
        // Every in-bounds config fits A100's 164 KiB under Equation 1.
        assert!(m.feasible(&MggConfig { ps: 32, dist: 16, wpb: 16 }));
        // Out-of-bounds knobs are infeasible regardless of memory.
        assert!(!m.feasible(&MggConfig { ps: 64, dist: 1, wpb: 1 }));
        // A huge dim can exceed shared memory.
        let wide = AnalyticalModel::new(GpuSpec::a100(), 10_000);
        assert!(!wide.feasible(&MggConfig { ps: 1, dist: 1, wpb: 16 }));
    }

    #[test]
    fn launch_matches_estimate() {
        let m = model();
        let cfg = MggConfig { ps: 8, dist: 2, wpb: 2 };
        let plan = WorkPlan { pe: 0, lnps: vec![], rnps: vec![] };
        let launch = m.launch_for(&cfg, &plan);
        assert_eq!(launch.blocks, 0);
        assert_eq!(launch.warps_per_block, 2);
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        #[test]
        fn smem_and_wpw_are_monotone_in_every_knob(
            ps in 1u32..32,
            dist in 1u32..16,
            wpb in 1u32..16,
            dim in 1usize..1024,
        ) {
            let m = AnalyticalModel::new(GpuSpec::a100(), dim);
            let cfg = MggConfig { ps, dist, wpb };
            let up_ps = MggConfig { ps: ps + 1, ..cfg };
            let up_wpb = MggConfig { wpb: wpb + 1, ..cfg };
            let up_dist = MggConfig { dist: dist + 1, ..cfg };
            prop_assert!(m.smem_bytes(&up_ps) >= m.smem_bytes(&cfg));
            prop_assert!(m.smem_bytes(&up_wpb) > m.smem_bytes(&cfg));
            prop_assert!(m.wpw(&up_ps) > m.wpw(&cfg));
            prop_assert!(m.wpw(&up_dist) > m.wpw(&cfg));
        }

        #[test]
        fn estimate_counts_are_consistent(
            local in 0usize..10_000,
            remote in 0usize..10_000,
            dist in 1u32..17,
            wpb in 1u32..17,
        ) {
            let m = AnalyticalModel::new(GpuSpec::a100(), 64);
            let cfg = MggConfig { ps: 16, dist, wpb };
            let est = m.estimate(&cfg, local, remote);
            // Warps cover the longer list at `dist` per warp; blocks cover
            // warps at `wpb` per block.
            prop_assert!(est.num_warps * dist as u64 >= local.max(remote) as u64);
            prop_assert!(est.num_blocks * wpb as u64 >= est.num_warps);
            prop_assert!((est.num_blocks.saturating_sub(1)) * wpb as u64 <= est.num_warps.max(1));
        }
    }
}
