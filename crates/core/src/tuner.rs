//! Cross-iteration optimization (§4).
//!
//! MGG tunes `(ps, dist, wpb)` during the first training iterations:
//!
//! 1. All knobs start at 1.
//! 2. Increase `ps` (doubling through its range) while latency improves;
//!    stop at the first regression.
//! 3. Do the same for `dist`.
//! 4. Do the same for `wpb`. If increasing `wpb` regresses immediately,
//!    "retreat" `ps` to its second-best value and retry the `wpb` climb.
//! 5. Stop when further moves cannot beat the top-3 lowest latencies seen.
//!
//! Every evaluated configuration and its latency are recorded in a lookup
//! table; the best configuration is applied for all following iterations
//! (the up-to-68% latency cut reported for Figure 10).

use std::collections::HashMap;

use mgg_telemetry::Telemetry;
use serde::Serialize;

use crate::config::MggConfig;

/// One tuner probe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TuneStep {
    /// The probed configuration.
    pub config: MggConfig,
    /// Simulated latency the probe measured.
    pub latency_ns: u64,
}

/// Result of a tuning run.
#[derive(Debug, Clone, Serialize)]
pub struct TuneResult {
    /// The winning configuration.
    pub best: MggConfig,
    /// Its simulated latency.
    pub best_latency_ns: u64,
    /// Every evaluation, in order (the "configuration lookup table").
    pub trace: Vec<TuneStep>,
    /// Number of distinct configurations evaluated.
    pub iterations: usize,
}

impl TuneResult {
    /// Latency of the initial all-ones configuration, for the §5.3
    /// "decrease the execution time by up to 68%" comparison.
    pub fn initial_latency_ns(&self) -> u64 {
        self.trace.first().map(|s| s.latency_ns).unwrap_or(0)
    }

    /// Relative improvement of best over initial, in [0, 1).
    pub fn improvement(&self) -> f64 {
        let init = self.initial_latency_ns();
        if init == 0 {
            0.0
        } else {
            1.0 - self.best_latency_ns as f64 / init as f64
        }
    }
}

/// The cross-iteration tuner. Generic over the latency oracle so it can
/// drive the real simulator or synthetic cost surfaces in tests.
///
/// # Examples
///
/// ```
/// use mgg_core::{MggConfig, Tuner};
///
/// // A synthetic latency surface whose optimum is ps=8, dist=2, wpb=2.
/// let result = Tuner::new(|cfg: &MggConfig| {
///     let d = |a: u32, b: u32| ((a as f64).log2() - (b as f64).log2()).abs();
///     10_000 + (1_000.0 * (d(cfg.ps, 8) + d(cfg.dist, 2) + d(cfg.wpb, 2))) as u64
/// })
/// .run();
/// assert_eq!(result.best, MggConfig { ps: 8, dist: 2, wpb: 2 });
/// assert!(result.iterations <= 14); // the paper reports ~10 probes
/// ```
/// Evaluates a candidate set concurrently on the worker pool.
type BatchEval<F> = fn(&F, &[MggConfig]) -> Vec<u64>;

/// The §4 cross-iteration optimizer: greedy `ps → dist → wpb` coordinate
/// search with the "retreat ps" rule and top-3 stopping criterion.
pub struct Tuner<F> {
    eval: F,
    table: HashMap<MggConfig, u64>,
    trace: Vec<TuneStep>,
    /// Feasibility filter (the §4 hardware constraints).
    feasible: Box<dyn Fn(&MggConfig) -> bool>,
    telemetry: Telemetry,
    /// Latencies pre-computed by speculative batch evaluation, consumed by
    /// [`Tuner::probe`] at commit time. Leftovers (speculation past the
    /// climb's stop point) are discarded and never reach table or trace.
    speculated: HashMap<MggConfig, u64>,
    /// Batch evaluator installed by [`Tuner::with_speculation`]. A
    /// monomorphized fn pointer so the plain [`FnMut`] constructor stays
    /// available.
    batch: Option<BatchEval<F>>,
}

/// How many upcoming doubling candidates a speculative climb evaluates
/// concurrently ahead of the commit point.
const SPECULATION_DEPTH: u32 = 3;

impl<F: FnMut(&MggConfig) -> u64> Tuner<F> {
    /// Creates a tuner over a latency oracle (`eval` returns nanoseconds).
    pub fn new(eval: F) -> Self {
        Tuner {
            eval,
            table: HashMap::new(),
            trace: Vec::new(),
            feasible: Box::new(|_| true),
            telemetry: Telemetry::disabled(),
            speculated: HashMap::new(),
            batch: None,
        }
    }

    /// Installs a feasibility filter; infeasible configs are never probed.
    pub fn with_feasibility(mut self, f: impl Fn(&MggConfig) -> bool + 'static) -> Self {
        self.feasible = Box::new(f);
        self
    }

    /// Reports probes into `telemetry` (`tuner.probes` counter plus a
    /// `tuner.probe_latency_ns` histogram) and wraps [`Tuner::run`] in a
    /// `tune` span.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    fn probe(&mut self, cfg: MggConfig) -> Option<u64> {
        if !(self.feasible)(&cfg) {
            return None;
        }
        if let Some(&lat) = self.table.get(&cfg) {
            return Some(lat);
        }
        // Commit point: a speculatively evaluated latency enters the table,
        // trace and telemetry here, in exactly the order the sequential
        // search would have evaluated it.
        let lat = match self.speculated.remove(&cfg) {
            Some(lat) => lat,
            None => (self.eval)(&cfg),
        };
        self.table.insert(cfg, lat);
        self.trace.push(TuneStep { config: cfg, latency_ns: lat });
        self.telemetry.counter_add("tuner.probes", 1);
        self.telemetry.histogram_record("tuner.probe_latency_ns", lat as f64);
        Some(lat)
    }

    /// Climbs one knob through doubling steps while latency improves;
    /// returns `(best value, best latency, all probed (value, latency))`.
    fn climb(
        &mut self,
        base: MggConfig,
        set: impl Fn(MggConfig, u32) -> MggConfig,
        max: u32,
        start_latency: u64,
    ) -> (u32, u64, Vec<(u32, u64)>) {
        let mut best_v = 1u32;
        let mut best_lat = start_latency;
        let mut probed = vec![(1u32, start_latency)];
        let mut v = 2u32;
        while v <= max {
            self.speculate_ahead(base, &set, max, v);
            let cfg = set(base, v);
            let Some(lat) = self.probe(cfg) else { break };
            probed.push((v, lat));
            if lat < best_lat {
                best_lat = lat;
                best_v = v;
            } else {
                // First regression ends the climb (§4: "when further
                // increasing ... would also increase the latency, we would
                // stop the search").
                break;
            }
            v *= 2;
        }
        (best_v, best_lat, probed)
    }

    /// With speculation installed, batch-evaluates the next
    /// [`SPECULATION_DEPTH`] un-cached doubling candidates from `v`
    /// concurrently and parks the latencies for [`Tuner::probe`] to commit.
    /// Purely a scheduling optimization: candidates past the climb's stop
    /// point stay parked and never affect the search.
    fn speculate_ahead(
        &mut self,
        base: MggConfig,
        set: &impl Fn(MggConfig, u32) -> MggConfig,
        max: u32,
        v: u32,
    ) {
        let Some(batch) = self.batch else { return };
        let mut candidates = Vec::new();
        let mut cand = v;
        for _ in 0..SPECULATION_DEPTH {
            if cand > max {
                break;
            }
            let cfg = set(base, cand);
            if (self.feasible)(&cfg)
                && !self.table.contains_key(&cfg)
                && !self.speculated.contains_key(&cfg)
            {
                candidates.push(cfg);
            }
            cand *= 2;
        }
        if candidates.len() < 2 {
            return; // nothing to overlap
        }
        let lats = batch(&self.eval, &candidates);
        for (cfg, lat) in candidates.into_iter().zip(lats) {
            self.speculated.insert(cfg, lat);
        }
    }

    /// Runs the full §4 search.
    pub fn run(mut self) -> TuneResult {
        let tel = self.telemetry.clone();
        let _span = tel.span("tune");
        let initial = MggConfig::initial();
        let init_lat = self.probe(initial).expect("initial configuration must be feasible");

        // Phase 1: ps.
        let (best_ps, ps_lat, ps_probes) =
            self.climb(initial, |c, v| MggConfig { ps: v, ..c }, *MggConfig::PS_RANGE.end(), init_lat);

        // Phase 2: dist, with ps fixed.
        let base_dist = MggConfig { ps: best_ps, ..initial };
        let (best_dist, dist_lat, _) = self.climb(
            base_dist,
            |c, v| MggConfig { dist: v, ..c },
            *MggConfig::DIST_RANGE.end(),
            ps_lat,
        );

        // Phase 3: wpb, with ps and dist fixed.
        let base_wpb = MggConfig { ps: best_ps, dist: best_dist, wpb: 1 };
        let (mut best_wpb, mut wpb_lat, wpb_probes) = self.climb(
            base_wpb,
            |c, v| MggConfig { wpb: v, ..c },
            *MggConfig::WPB_RANGE.end(),
            dist_lat,
        );

        let mut best = MggConfig { ps: best_ps, dist: best_dist, wpb: best_wpb };
        let mut best_lat = wpb_lat;

        // Retreat rule: if the wpb climb never improved, retreat ps to its
        // second-best probed value and restart the wpb climb there.
        let wpb_improved = wpb_probes.iter().any(|&(v, lat)| v > 1 && lat < dist_lat);
        if !wpb_improved && ps_probes.len() >= 2 {
            let mut by_lat = ps_probes.clone();
            by_lat.sort_by_key(|&(_, lat)| lat);
            let second_ps = by_lat
                .iter()
                .map(|&(v, _)| v)
                .find(|&v| v != best_ps)
                .unwrap_or(best_ps);
            if second_ps != best_ps {
                let retreat_base = MggConfig { ps: second_ps, dist: best_dist, wpb: 1 };
                if let Some(retreat_lat) = self.probe(retreat_base) {
                    let (r_wpb, r_lat, _) = self.climb(
                        retreat_base,
                        |c, v| MggConfig { wpb: v, ..c },
                        *MggConfig::WPB_RANGE.end(),
                        retreat_lat,
                    );
                    if r_lat < best_lat {
                        best = MggConfig { ps: second_ps, dist: best_dist, wpb: r_wpb };
                        best_lat = r_lat;
                        best_wpb = r_wpb;
                        wpb_lat = r_lat;
                    }
                }
            }
        }
        let _ = (best_wpb, wpb_lat);

        // Final sanity: the lookup table may hold something better than
        // the greedy endpoint (ties, retreat paths).
        if let Some((&cfg, &lat)) = self.table.iter().min_by_key(|(_, &l)| l) {
            if lat < best_lat {
                best = cfg;
                best_lat = lat;
            }
        }

        TuneResult {
            best,
            best_latency_ns: best_lat,
            iterations: self.trace.len(),
            trace: self.trace,
        }
    }
}

impl<F: Fn(&MggConfig) -> u64 + Sync> Tuner<F> {
    /// Enables speculative climbing: each climb step batch-evaluates the
    /// next few doubling candidates concurrently on the [`mgg_runtime`]
    /// worker pool, committing results in deterministic search order. The
    /// produced [`TuneResult`] — best config, latency, trace and table —
    /// is identical to the sequential search; only wall-clock changes.
    /// Requires a shareable oracle (`Fn + Sync`, e.g. one driving
    /// independent simulator instances).
    pub fn with_speculation(mut self) -> Self {
        self.batch = Some(|eval, cfgs| {
            mgg_runtime::profile::labeled("tuner.speculate", || mgg_runtime::par_map(cfgs, eval))
        });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic convex-ish latency surface with a known optimum.
    fn surface(opt: MggConfig) -> impl FnMut(&MggConfig) -> u64 {
        move |c: &MggConfig| {
            let d = |a: u32, b: u32| {
                let (la, lb) = ((a as f64).log2(), (b as f64).log2());
                (la - lb).abs()
            };
            let score = d(c.ps, opt.ps) + d(c.dist, opt.dist) + d(c.wpb, opt.wpb);
            10_000 + (score * 1_000.0) as u64
        }
    }

    #[test]
    fn finds_power_of_two_optimum() {
        let opt = MggConfig { ps: 16, dist: 4, wpb: 2 };
        let result = Tuner::new(surface(opt)).run();
        assert_eq!(result.best, opt, "trace: {:?}", result.trace);
        assert!(result.iterations <= 16, "took {} probes", result.iterations);
    }

    #[test]
    fn converges_in_about_ten_iterations() {
        // §5.3: "the overall searching process only requires about 10
        // iterations".
        let opt = MggConfig { ps: 8, dist: 2, wpb: 4 };
        let result = Tuner::new(surface(opt)).run();
        assert!(result.iterations <= 14, "took {} probes", result.iterations);
        assert_eq!(result.best, opt);
    }

    #[test]
    fn improvement_measured_against_initial() {
        let opt = MggConfig { ps: 32, dist: 16, wpb: 16 };
        let result = Tuner::new(surface(opt)).run();
        assert!(result.improvement() > 0.0);
        assert_eq!(result.initial_latency_ns(), result.trace[0].latency_ns);
    }

    #[test]
    fn respects_feasibility_filter() {
        let opt = MggConfig { ps: 32, dist: 1, wpb: 1 };
        let result = Tuner::new(surface(opt))
            .with_feasibility(|c| c.ps <= 8)
            .run();
        assert!(result.best.ps <= 8);
        assert!(result.trace.iter().all(|s| s.config.ps <= 8));
    }

    #[test]
    fn retreat_rule_explores_second_best_ps() {
        // Latency surface where wpb only helps at ps=4, but ps=8 looks
        // marginally better in phase 1.
        let eval = |c: &MggConfig| -> u64 {
            match (c.ps, c.dist, c.wpb) {
                (1, 1, 1) => 1_000,
                (2, 1, 1) => 960,
                (4, 1, 1) => 950,
                (8, 1, 1) => 900,
                (16, 1, 1) => 1_100,
                (8, 2, 1) => 1_200,
                (8, 1, _) => 2_000,
                (4, 1, 2) => 500, // big win after retreating
                (4, 1, _) => 600,
                _ => 3_000,
            }
        };
        let result = Tuner::new(eval).run();
        assert_eq!(result.best.ps, 4);
        assert!(result.best.wpb > 1);
        assert_eq!(result.best_latency_ns, 500);
    }

    #[test]
    fn telemetry_counts_probes_and_spans_the_search() {
        let tel = Telemetry::enabled();
        let opt = MggConfig { ps: 8, dist: 2, wpb: 4 };
        let result = Tuner::new(surface(opt)).with_telemetry(tel.clone()).run();
        assert_eq!(tel.counter_value("tuner.probes"), result.iterations as u64);
        let snap = tel.snapshot();
        let hist = snap
            .histograms
            .iter()
            .find(|h| h.name == "tuner.probe_latency_ns")
            .expect("probe latency histogram");
        assert_eq!(hist.count, result.iterations as u64);
        assert_eq!(hist.min, result.best_latency_ns as f64);
        assert!(snap.spans.iter().any(|s| s.name == "tune" && s.end_ns >= s.start_ns));
        // Instrumentation must not steer the search.
        let plain = Tuner::new(surface(opt)).run();
        assert_eq!(plain.best, result.best);
        assert_eq!(plain.iterations, result.iterations);
    }

    #[test]
    fn speculative_search_matches_sequential_exactly() {
        // Fn + Sync variant of the synthetic surface.
        let surf = |opt: MggConfig| {
            move |c: &MggConfig| -> u64 {
                let d = |a: u32, b: u32| ((a as f64).log2() - (b as f64).log2()).abs();
                let score = d(c.ps, opt.ps) + d(c.dist, opt.dist) + d(c.wpb, opt.wpb);
                10_000 + (score * 1_000.0) as u64
            }
        };
        for opt in [
            MggConfig { ps: 16, dist: 4, wpb: 2 },
            MggConfig { ps: 1, dist: 1, wpb: 1 },
            MggConfig { ps: 4, dist: 1, wpb: 16 },
            MggConfig { ps: 32, dist: 16, wpb: 16 },
        ] {
            let seq = Tuner::new(surf(opt)).run();
            for threads in [1usize, 2, 4, 7] {
                let spec = mgg_runtime::with_threads(threads, || {
                    Tuner::new(surf(opt)).with_speculation().run()
                });
                assert_eq!(spec.best, seq.best, "{opt:?} @ {threads} threads");
                assert_eq!(spec.best_latency_ns, seq.best_latency_ns);
                // The probe trace (order included) must be identical:
                // speculation may only change wall-clock, never the search.
                assert_eq!(spec.trace, seq.trace, "{opt:?} @ {threads} threads");
                assert_eq!(spec.iterations, seq.iterations);
            }
        }
    }

    #[test]
    fn speculative_search_respects_feasibility() {
        let eval = |c: &MggConfig| 10_000 - (c.ps * 10 + c.dist + c.wpb) as u64;
        let seq = Tuner::new(eval).with_feasibility(|c| c.ps <= 8 && c.wpb <= 4).run();
        let spec = Tuner::new(eval)
            .with_feasibility(|c| c.ps <= 8 && c.wpb <= 4)
            .with_speculation()
            .run();
        assert_eq!(spec.best, seq.best);
        assert_eq!(spec.trace, seq.trace);
        assert!(spec.trace.iter().all(|s| s.config.ps <= 8 && s.config.wpb <= 4));
    }

    #[test]
    fn lookup_table_never_reevaluates() {
        let mut calls = 0usize;
        let result = Tuner::new(|c: &MggConfig| {
            calls += 1;
            1_000 + c.ps as u64 + c.dist as u64 + c.wpb as u64
        })
        .run();
        assert_eq!(result.iterations, result.trace.len());
        // Each traced step is a distinct config: calls == trace length.
        let distinct: std::collections::HashSet<_> =
            result.trace.iter().map(|s| s.config).collect();
        assert_eq!(distinct.len(), result.trace.len());
    }
}
