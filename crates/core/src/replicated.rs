//! Workload-driven partitioning with replicated outputs (§6).
//!
//! The paper's Discussion notes MGG can host partitioning schemes from
//! prior work: *workload-driven* partitioning (NeuGraph-style) splits the
//! **edge set** across GPUs instead of the node set, so every GPU holds a
//! replica of the output buffer, aggregates its edge shard into it, and
//! the replicas are combined with an NVSHMEM collective
//! (`nvshmem_float_sum_reduce`) at the end.
//!
//! This engine implements that mode on the same substrates: edges are
//! dealt round-robin by source partition for balance, the per-GPU
//! aggregation kernel is all-local (each GPU also holds the full input
//! replica), and consistency costs one ring sum-reduce of `n x dim`
//! floats. The tradeoff it exposes: zero fine-grained remote traffic
//! during aggregation, but a collective whose volume scales with the
//! *output* size — which is why MGG's node-split pipeline wins whenever
//! the output is large relative to the cut.

use mgg_gnn::models::Aggregator;
use mgg_gnn::reference::{aggregate, AggregateMode};
use mgg_gnn::Matrix;
use mgg_graph::partition::neighbor::{partition_rows, NeighborPartition, PartitionKind};
use mgg_graph::CsrGraph;
use mgg_shmem::{sum_reduce_all, SymmetricRegion};
use mgg_sim::{
    Cluster, ClusterSpec, GpuSim, KernelLaunch, KernelProgram, KernelStats, NoPaging, SimTime,
    WarpOp,
};

use crate::kernel::aggregation_cycles;

/// Warps per block of the replicated kernel.
const WPB: u32 = 4;

/// Edge-sharded, output-replicated execution (NeuGraph-style under MGG's
/// substrates).
pub struct ReplicatedEngine {
    /// The simulated multi-GPU platform the engine launches on.
    pub cluster: Cluster,
    graph: CsrGraph,
    /// Per GPU: the rows (by destination node) this GPU aggregates, as
    /// neighbor partitions rebased onto that GPU's private adjacency copy.
    shard_parts: Vec<Vec<NeighborPartition>>,
    mode: AggregateMode,
    /// Simulated duration of the last sum-reduce phase.
    pub last_reduce_ns: SimTime,
    /// Statistics of the last aggregation kernel.
    pub last_stats: Option<KernelStats>,
}

struct ShardKernel<'a> {
    parts: &'a [Vec<NeighborPartition>],
    dim: usize,
}

impl ReplicatedEngine {
    /// Shards the edge set across the GPUs of `spec`: node `v`'s neighbor
    /// list is cut into `ps`-sized partitions which are dealt round-robin
    /// to GPUs — a balanced edge split with no regard for locality
    /// (locality is irrelevant: inputs are replicated).
    pub fn new(graph: &CsrGraph, spec: ClusterSpec, ps: u32, mode: AggregateMode) -> Self {
        let num_gpus = spec.num_gpus;
        let all_parts = partition_rows(graph.row_ptr(), ps as usize, PartitionKind::Local);
        let mut shard_parts: Vec<Vec<NeighborPartition>> = vec![Vec::new(); num_gpus];
        let mut shard_cursor = vec![0u64; num_gpus];
        for (i, p) in all_parts.iter().enumerate() {
            let pe = i % num_gpus;
            // Rebase the partition onto this GPU's private adjacency copy.
            let start = shard_cursor[pe];
            shard_cursor[pe] += p.len as u64;
            shard_parts[pe].push(NeighborPartition { start, ..*p });
        }
        ReplicatedEngine {
            cluster: Cluster::new(spec),
            graph: graph.clone(),
            shard_parts,
            mode,
            last_reduce_ns: 0,
            last_stats: None,
        }
    }

    /// Simulates one aggregation: the all-local shard kernel, then the
    /// replica sum-reduce.
    pub fn simulate_aggregation_ns(&mut self, dim: usize) -> SimTime {
        self.cluster.reset();
        let kernel = ShardKernel { parts: &self.shard_parts, dim };
        let stats = GpuSim::run(&mut self.cluster, &kernel, &mut NoPaging)
            .expect("shard kernel launch is valid");
        let agg_ns = stats.makespan_ns();
        self.last_stats = Some(stats);
        // Consistency: sum-reduce the n x dim output replicas.
        let n = self.graph.num_nodes();
        let mut replicas =
            SymmetricRegion::zeros(&vec![n; self.cluster.num_gpus()], dim.max(1));
        self.last_reduce_ns = sum_reduce_all(&mut self.cluster, &mut replicas);
        agg_ns + self.last_reduce_ns + self.cluster.spec.kernel_launch_ns
    }

    /// Functional aggregation: each shard accumulates into its replica;
    /// replicas sum to the full result (here computed directly, since
    /// addition is associative and the shards tile the edge set).
    pub fn aggregate_values(&self, x: &Matrix) -> Matrix {
        aggregate(&self.graph, x, self.mode)
    }
}

impl KernelProgram for ShardKernel<'_> {
    fn launch(&self, pe: usize) -> KernelLaunch {
        let warps = self.parts[pe].len() as u32;
        KernelLaunch {
            blocks: warps.div_ceil(WPB).max(1),
            warps_per_block: WPB,
            smem_per_block: 2 * (self.dim as u32) * 4,
        }
    }

    fn warp_ops(&self, pe: usize, block: u32, warp: u32) -> Vec<WarpOp> {
        let i = (block * WPB + warp) as usize;
        let Some(p) = self.parts[pe].get(i) else {
            return Vec::new();
        };
        let row_bytes = (self.dim * 4) as u32;
        // Everything is local: replicated inputs, replicated outputs.
        vec![
            WarpOp::GlobalRead { bytes: p.len * row_bytes },
            WarpOp::Compute { cycles: aggregation_cycles(p.len, self.dim) },
            WarpOp::GlobalWrite { bytes: row_bytes },
        ]
    }
}

impl Aggregator for ReplicatedEngine {
    fn aggregate(&mut self, x: &Matrix) -> (Matrix, u64) {
        let ns = self.simulate_aggregation_ns(x.cols());
        (self.aggregate_values(x), ns)
    }

    fn aggregate_only(&mut self, x: &Matrix) -> Matrix {
        self.aggregate_values(x)
    }

    fn mode(&self) -> AggregateMode {
        self.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MggConfig, MggEngine};
    use mgg_graph::generators::rmat::{rmat, RmatConfig};

    fn graph() -> CsrGraph {
        rmat(&RmatConfig::graph500(9, 5_000, 71))
    }

    #[test]
    fn shards_tile_the_edge_set() {
        let g = graph();
        let e = ReplicatedEngine::new(&g, ClusterSpec::dgx_a100(4), 16, AggregateMode::Sum);
        let total: u64 = e
            .shard_parts
            .iter()
            .flatten()
            .map(|p| p.len as u64)
            .sum();
        assert_eq!(total, g.num_edges() as u64);
        // Balance: no shard more than 2x the ideal share.
        for (pe, parts) in e.shard_parts.iter().enumerate() {
            let edges: u64 = parts.iter().map(|p| p.len as u64).sum();
            assert!(
                edges <= g.num_edges() as u64 / 2,
                "shard {pe} holds {edges} of {} edges",
                g.num_edges()
            );
        }
    }

    #[test]
    fn values_match_reference() {
        let g = graph();
        let x = Matrix::glorot(g.num_nodes(), 8, 1);
        let mut e = ReplicatedEngine::new(&g, ClusterSpec::dgx_a100(4), 16, AggregateMode::Sum);
        let (vals, ns) = e.aggregate(&x);
        assert!(ns > 0);
        let want = aggregate(&g, &x, AggregateMode::Sum);
        assert!(vals.max_abs_diff(&want) < 1e-6);
    }

    #[test]
    fn reduce_phase_scales_with_output_size() {
        // Wide dims make the replica volume dominate the ring latency.
        let g = rmat(&RmatConfig::graph500(11, 20_000, 73));
        let mut e = ReplicatedEngine::new(&g, ClusterSpec::dgx_a100(4), 16, AggregateMode::Sum);
        let _ = e.simulate_aggregation_ns(16);
        let small = e.last_reduce_ns;
        let _ = e.simulate_aggregation_ns(1024);
        let big = e.last_reduce_ns;
        assert!(big > 2 * small, "big={big} small={small}");
    }

    #[test]
    fn mgg_wins_at_large_output_dims() {
        // The §6 tradeoff: the replica reduction's n*dim volume dwarfs
        // MGG's cut-proportional traffic at wide dims.
        let g = graph();
        let dim = 256;
        let mut rep = ReplicatedEngine::new(&g, ClusterSpec::dgx_a100(8), 16, AggregateMode::Sum);
        let t_rep = rep.simulate_aggregation_ns(dim);
        let mut mgg = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(8),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let t_mgg = mgg.simulate_aggregation_ns(dim).unwrap();
        assert!(t_rep > t_mgg, "replicated {t_rep} vs mgg {t_mgg}");
    }
}
