//! The end-to-end MGG execution engine.
//!
//! Combines placement, workload management, the pipelined kernel and the
//! simulated cluster into an [`Aggregator`] that GNN models consume:
//! functional outputs match the CPU reference (up to floating-point
//! reassociation) while timing comes from the discrete-event simulation.

use mgg_gnn::models::Aggregator;
use mgg_gnn::reference::AggregateMode;
use mgg_gnn::Matrix;
use mgg_graph::{CsrGraph, NodeSplit};
use mgg_sim::{Cluster, ClusterSpec, GpuSim, KernelStats, LaunchError, NoPaging, SimTime};

use crate::config::MggConfig;
use crate::kernel::{KernelVariant, MggKernel};
use crate::mapping::MappingMode;
use crate::model::AnalyticalModel;
use crate::placement::HybridPlacement;
use crate::workload::{build_plans, WorkPlan};

/// The MGG multi-GPU aggregation engine.
pub struct MggEngine {
    pub cluster: Cluster,
    pub placement: HybridPlacement,
    pub plans: Vec<WorkPlan>,
    config: MggConfig,
    pub variant: KernelVariant,
    pub mapping: MappingMode,
    mode: AggregateMode,
    /// Global GCN normalization coefficients (empty for other modes).
    norm: Vec<f32>,
    /// Statistics of the most recent simulated kernel.
    pub last_stats: Option<KernelStats>,
}

impl MggEngine {
    /// Builds the engine with MGG's defaults (edge-balanced split, async
    /// pipelined kernel, interleaved mapping).
    pub fn new(
        graph: &CsrGraph,
        spec: ClusterSpec,
        config: MggConfig,
        mode: AggregateMode,
    ) -> Self {
        let placement = HybridPlacement::plan(graph, spec.num_gpus);
        Self::with_placement(graph, spec, placement, config, mode)
    }

    /// Builds the engine with a caller-chosen node split (ablations).
    pub fn with_split(
        graph: &CsrGraph,
        spec: ClusterSpec,
        split: NodeSplit,
        config: MggConfig,
        mode: AggregateMode,
    ) -> Self {
        let placement = HybridPlacement::from_split(graph, split);
        Self::with_placement(graph, spec, placement, config, mode)
    }

    fn with_placement(
        graph: &CsrGraph,
        spec: ClusterSpec,
        placement: HybridPlacement,
        config: MggConfig,
        mode: AggregateMode,
    ) -> Self {
        config.validate().expect("invalid MGG configuration");
        let plans = build_plans(&placement, config.ps);
        let norm = match mode {
            AggregateMode::GcnNorm => graph.gcn_norm(),
            _ => Vec::new(),
        };
        MggEngine {
            cluster: Cluster::new(spec),
            placement,
            plans,
            config,
            variant: KernelVariant::AsyncPipelined,
            mapping: MappingMode::Interleaved,
            mode,
            norm,
            last_stats: None,
        }
    }

    /// Current configuration.
    pub fn config(&self) -> MggConfig {
        self.config
    }

    /// Replaces the configuration, rebuilding work plans when `ps` changed.
    pub fn set_config(&mut self, config: MggConfig) {
        config.validate().expect("invalid MGG configuration");
        if config.ps != self.config.ps {
            self.plans = build_plans(&self.placement, config.ps);
        }
        self.config = config;
    }

    /// Simulates one aggregation pass at embedding dimension `dim` and
    /// returns the kernel statistics. Channels are reset first, so calls
    /// are independent measurements.
    pub fn simulate_aggregation(&mut self, dim: usize) -> Result<KernelStats, LaunchError> {
        let model = AnalyticalModel::new(self.cluster.spec.gpu.clone(), dim);
        let kernel = MggKernel::build(
            &self.placement,
            &self.plans,
            &self.config,
            dim,
            &model,
            self.variant,
            self.mapping,
        );
        self.cluster.reset();
        let stats = GpuSim::run(&mut self.cluster, &kernel, &mut NoPaging)?;
        self.last_stats = Some(stats.clone());
        Ok(stats)
    }

    /// Simulated end-to-end duration of one aggregation (kernel makespan
    /// plus the host launch overhead).
    pub fn simulate_aggregation_ns(&mut self, dim: usize) -> Result<SimTime, LaunchError> {
        let launch_overhead = self.cluster.spec.kernel_launch_ns;
        Ok(self.simulate_aggregation(dim)?.makespan_ns() + launch_overhead)
    }

    /// Functional aggregation: computes the same values the simulated
    /// kernel would produce, using the locality-split virtual CSRs and the
    /// symmetric-heap addressing.
    pub fn aggregate_values(&self, x: &Matrix) -> Matrix {
        let dim = x.cols();
        let region = self.placement.place_embeddings(x);
        let mut out = Matrix::zeros(x.rows(), dim);
        for part in &self.placement.parts {
            let base = part.node_range.start as usize;
            for r in 0..part.local.num_rows() as u32 {
                let v = base + r as usize;
                let out_row_start = v * dim;
                // Local neighbor partition aggregation (device memory).
                for lr in part.local.row(r) {
                    let w = self.weight(v, base + lr.local as usize);
                    let src = region.row(part.pe, lr.local);
                    let dst = &mut out.data_mut()[out_row_start..out_row_start + dim];
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d += w * s;
                    }
                }
                // Remote neighbor partition aggregation (symmetric heap).
                for rr in part.remote.row(r) {
                    let owner_base = self.placement.split.range(rr.owner as usize).start;
                    let w = self.weight(v, (owner_base + rr.local) as usize);
                    let src = region.row(rr.owner as usize, rr.local);
                    let dst = &mut out.data_mut()[out_row_start..out_row_start + dim];
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d += w * s;
                    }
                }
                // Mode-specific fixups.
                match self.mode {
                    AggregateMode::GcnNorm => {
                        // Self-loop term of \hat{A}.
                        let w = self.norm[v] * self.norm[v];
                        let src: Vec<f32> = x.row(v).to_vec();
                        let dst = &mut out.data_mut()[out_row_start..out_row_start + dim];
                        for (d, s) in dst.iter_mut().zip(src) {
                            *d += w * s;
                        }
                    }
                    AggregateMode::Mean => {
                        let deg = part.local.row(r).len() + part.remote.row(r).len();
                        if deg > 0 {
                            let inv = 1.0 / deg as f32;
                            let dst = &mut out.data_mut()[out_row_start..out_row_start + dim];
                            for d in dst {
                                *d *= inv;
                            }
                        }
                    }
                    AggregateMode::Sum => {}
                }
            }
        }
        out
    }

    #[inline]
    fn weight(&self, v: usize, u: usize) -> f32 {
        match self.mode {
            AggregateMode::GcnNorm => self.norm[v] * self.norm[u],
            // Mean divides at the end; Sum uses unit weights.
            AggregateMode::Mean | AggregateMode::Sum => 1.0,
        }
    }
}

/// Pure edge-weighted aggregation (no mode fixups): used by GAT.
impl MggEngine {
    /// Aggregates `x` with per-edge weights indexed by the input graph's
    /// flat adjacency (see `mgg_graph::partition::locality`'s edge ids).
    pub fn aggregate_values_weighted(&self, x: &Matrix, w: &[f32]) -> Matrix {
        let dim = x.cols();
        let region = self.placement.place_embeddings(x);
        let mut out = Matrix::zeros(x.rows(), dim);
        for part in &self.placement.parts {
            let base = part.node_range.start as usize;
            for r in 0..part.local.num_rows() as u32 {
                let v = base + r as usize;
                let out_row_start = v * dim;
                for lr in part.local.row(r) {
                    let weight = w[lr.edge as usize];
                    let src = region.row(part.pe, lr.local);
                    let dst = &mut out.data_mut()[out_row_start..out_row_start + dim];
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d += weight * s;
                    }
                }
                for rr in part.remote.row(r) {
                    let weight = w[rr.edge as usize];
                    let src = region.row(rr.owner as usize, rr.local);
                    let dst = &mut out.data_mut()[out_row_start..out_row_start + dim];
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d += weight * s;
                    }
                }
            }
        }
        out
    }
}

impl mgg_gnn::gat::GatBackend for MggEngine {
    fn attention(&mut self, s_dst: &[f32], s_src: &[f32], slope: f32) -> (Vec<f32>, u64) {
        // Timing: exchanging the scalar neighbor scores is an aggregation
        // pass at dimension 1 (same access pattern, 4-byte rows).
        let ns = self
            .simulate_aggregation_ns(1)
            .expect("MGG launch must be valid for the configured GPU");
        // Functional: leaky-ReLU scores then a per-destination softmax over
        // the union of the row's local and remote entries.
        let num_edges: usize = self
            .placement
            .parts
            .iter()
            .map(|p| p.local.num_entries() + p.remote.num_entries())
            .sum();
        let mut w = vec![0.0f32; num_edges];
        let leaky = |x: f32| if x >= 0.0 { x } else { slope * x };
        for part in &self.placement.parts {
            let base = part.node_range.start as usize;
            for r in 0..part.local.num_rows() as u32 {
                let v = base + r as usize;
                // (edge id, raw score) for every neighbor of v.
                let mut entries: Vec<(u32, f32)> = Vec::with_capacity(
                    part.local.row(r).len() + part.remote.row(r).len(),
                );
                for lr in part.local.row(r) {
                    let u = base + lr.local as usize;
                    entries.push((lr.edge, leaky(s_dst[v] + s_src[u])));
                }
                for rr in part.remote.row(r) {
                    let u = (self.placement.split.range(rr.owner as usize).start
                        + rr.local) as usize;
                    entries.push((rr.edge, leaky(s_dst[v] + s_src[u])));
                }
                if entries.is_empty() {
                    continue;
                }
                let max = entries.iter().map(|&(_, e)| e).fold(f32::NEG_INFINITY, f32::max);
                let mut sum = 0.0f32;
                for (_, e) in entries.iter_mut() {
                    *e = (*e - max).exp();
                    sum += *e;
                }
                for (edge, e) in entries {
                    w[edge as usize] = if sum > 0.0 { e / sum } else { 0.0 };
                }
            }
        }
        (w, ns)
    }

    fn aggregate_weighted(&mut self, x: &Matrix, w: &[f32]) -> (Matrix, u64) {
        let ns = self
            .simulate_aggregation_ns(x.cols())
            .expect("MGG launch must be valid for the configured GPU");
        (self.aggregate_values_weighted(x, w), ns)
    }
}

impl Aggregator for MggEngine {
    fn aggregate(&mut self, x: &Matrix) -> (Matrix, u64) {
        let ns = self
            .simulate_aggregation_ns(x.cols())
            .expect("MGG launch must be valid for the configured GPU");
        (self.aggregate_values(x), ns)
    }

    fn aggregate_only(&mut self, x: &Matrix) -> Matrix {
        self.aggregate_values(x)
    }

    fn mode(&self) -> AggregateMode {
        self.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgg_gnn::reference::aggregate;
    use mgg_graph::generators::rmat::{rmat, RmatConfig};

    fn graph() -> CsrGraph {
        rmat(&RmatConfig::graph500(9, 5_000, 29))
    }

    fn features(n: usize, dim: usize) -> Matrix {
        Matrix::from_vec(n, dim, (0..n * dim).map(|i| ((i % 13) as f32) - 6.0).collect())
    }

    #[test]
    fn values_match_reference_all_modes() {
        let g = graph();
        let x = features(g.num_nodes(), 17);
        for mode in [AggregateMode::Sum, AggregateMode::Mean, AggregateMode::GcnNorm] {
            let engine =
                MggEngine::new(&g, ClusterSpec::dgx_a100(4), MggConfig::default_fixed(), mode);
            let got = engine.aggregate_values(&x);
            let want = aggregate(&g, &x, mode);
            assert!(
                got.max_abs_diff(&want) < 1e-3,
                "mode {mode:?}: diff {}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn values_independent_of_config_and_gpus() {
        let g = graph();
        let x = features(g.num_nodes(), 8);
        let base = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(2),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        )
        .aggregate_values(&x);
        for gpus in [1, 4, 8] {
            for cfg in [MggConfig { ps: 1, dist: 1, wpb: 1 }, MggConfig { ps: 32, dist: 16, wpb: 16 }] {
                let engine =
                    MggEngine::new(&g, ClusterSpec::dgx_a100(gpus), cfg, AggregateMode::Sum);
                let got = engine.aggregate_values(&x);
                assert!(got.max_abs_diff(&base) < 1e-3, "gpus={gpus} cfg={cfg}");
            }
        }
    }

    #[test]
    fn simulation_time_positive_and_deterministic() {
        let g = graph();
        let mut e1 = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let mut e2 = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let t1 = e1.simulate_aggregation_ns(64).unwrap();
        let t2 = e2.simulate_aggregation_ns(64).unwrap();
        assert!(t1 > 0);
        assert_eq!(t1, t2);
    }

    #[test]
    fn repeated_simulation_is_stable() {
        // Channel state must be reset between measurements.
        let g = graph();
        let mut e = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let a = e.simulate_aggregation_ns(64).unwrap();
        let b = e.simulate_aggregation_ns(64).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn set_config_rebuilds_plans() {
        let g = graph();
        let mut e = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(2),
            MggConfig { ps: 32, dist: 1, wpb: 1 },
            AggregateMode::Sum,
        );
        let coarse: usize = e.plans.iter().map(|p| p.lnps.len() + p.rnps.len()).sum();
        e.set_config(MggConfig { ps: 2, dist: 1, wpb: 1 });
        let fine: usize = e.plans.iter().map(|p| p.lnps.len() + p.rnps.len()).sum();
        assert!(fine > coarse);
    }

    #[test]
    fn aggregator_trait_roundtrip() {
        let g = graph();
        let x = features(g.num_nodes(), 16);
        let mut e = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::GcnNorm,
        );
        let (vals, ns) = e.aggregate(&x);
        assert!(ns > 0);
        let want = aggregate(&g, &x, AggregateMode::GcnNorm);
        assert!(vals.max_abs_diff(&want) < 1e-3);
    }
}

#[cfg(test)]
mod gat_tests {
    use super::*;
    use mgg_gnn::gat::{Gat, GatBackend, ReferenceGatBackend};
    use mgg_graph::generators::rmat::{rmat, RmatConfig};

    #[test]
    fn weighted_aggregation_matches_reference() {
        let g = rmat(&RmatConfig::graph500(9, 4_000, 77));
        let x = Matrix::glorot(g.num_nodes(), 9, 1);
        let w: Vec<f32> = (0..g.num_edges()).map(|i| ((i % 11) as f32) / 10.0).collect();
        let engine = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let got = engine.aggregate_values_weighted(&x, &w);
        let want = mgg_gnn::reference::aggregate_edge_weighted(&g, &x, &w);
        assert!(got.max_abs_diff(&want) < 1e-4, "diff {}", got.max_abs_diff(&want));
    }

    #[test]
    fn gat_forward_matches_reference_backend() {
        let g = rmat(&RmatConfig::graph500(8, 2_000, 79));
        let x = Matrix::glorot(g.num_nodes(), 10, 3);
        let model = Gat::new(10, 6, 4, 5);

        let mut reference = ReferenceGatBackend { graph: g.clone() };
        let (want, _) = model.forward(&mut reference, &x);

        let mut engine = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let (got, timings) = model.forward(&mut engine, &x);
        assert!(got.max_abs_diff(&want) < 1e-3, "diff {}", got.max_abs_diff(&want));
        assert!(timings.iter().all(|t| t.attention_ns > 0 && t.aggregate_ns > 0));
        // The scalar score exchange must be far cheaper than the
        // hidden-width aggregation.
        assert!(timings[0].attention_ns < timings[0].aggregate_ns);
    }

    #[test]
    fn mgg_attention_weights_match_reference() {
        let g = rmat(&RmatConfig::graph500(8, 2_000, 83));
        let n = g.num_nodes();
        let s_dst: Vec<f32> = (0..n).map(|i| ((i * 7) % 13) as f32 / 13.0 - 0.5).collect();
        let s_src: Vec<f32> = (0..n).map(|i| ((i * 3) % 5) as f32 / 5.0).collect();
        let mut engine = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(3),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let (got, _) = engine.attention(&s_dst, &s_src, 0.2);
        let want = mgg_gnn::gat::reference_attention(&g, &s_dst, &s_src, 0.2);
        let diff = got
            .iter()
            .zip(&want)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(diff < 1e-5, "max weight diff {diff}");
    }
}
