//! The end-to-end MGG execution engine.
//!
//! Combines placement, workload management, the pipelined kernel and the
//! simulated cluster into an [`Aggregator`] that GNN models consume:
//! functional outputs match the CPU reference (up to floating-point
//! reassociation) while timing comes from the discrete-event simulation.

use mgg_cache::{CacheConfig, CacheKey, CacheStats, TierStats, TieredCache};
use mgg_churn::{apply_deltas, GraphDelta};
use mgg_failover::checkpoint::Checkpoint;
use mgg_failover::{plan_route, ClusterView, HealthMonitor, Route};
use mgg_fault::{FaultSchedule, FaultSpec};
use mgg_gnn::models::Aggregator;
use mgg_gnn::reference::AggregateMode;
use mgg_gnn::Matrix;
use mgg_graph::partition::locality::{LocalRef, RemoteRef};
use mgg_graph::{CsrGraph, NodeSplit};
use mgg_shmem::cached::CachedRegion;
use mgg_shmem::resilience::{ResilienceStats, ResilientRegion};
use mgg_sim::{Cluster, ClusterSpec, GpuSim, KernelStats, NoPaging, SimTime, TraceEvent};
use mgg_telemetry::{PipelineMetrics, Telemetry};

use crate::config::MggConfig;
use crate::error::MggError;
use crate::kernel::{KernelVariant, MggKernel};
use crate::mapping::MappingMode;
use crate::model::AnalyticalModel;
use crate::placement::HybridPlacement;
use crate::workload::{build_plans, WorkPlan};

/// Below this per-GPU health the engine re-plans placement around the
/// impaired GPU instead of riding out the degradation.
const REPLAN_HEALTH_THRESHOLD: f64 = 0.9;

/// Below this health the degradation is severe enough that the engine also
/// recommends abandoning peer-to-peer access for the UVM path.
const UVM_FALLBACK_HEALTH_THRESHOLD: f64 = 0.25;

/// Device-memory fraction kept free for activations and scratch when
/// deciding whether survivors can absorb an evacuated shard.
const EVACUATION_HEADROOM: f64 = 0.5;

/// What the engine decided to do about an installed fault scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Faults (if any) are mild: retries and timeouts absorb them.
    None,
    /// Re-balance the impaired GPUs' share of the workload.
    Rebalance,
    /// Degradation is severe: re-balance, and fall back to the UVM path.
    UvmFallback,
    /// A link died but both endpoints survive: relay traffic around it.
    Reroute,
    /// A GPU died: evacuate its shard onto the survivors.
    Evacuate,
}

/// What [`MggEngine::recover`] actually executed.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// The degradation step the engine took (the final rung when the
    /// ladder escalated, e.g. an evacuation that overflowed into UVM).
    pub action: RecoveryAction,
    /// The health monitor's cluster view at the detection horizon.
    pub view: ClusterView,
    /// Relay routes installed around dead links.
    pub routes_installed: usize,
    /// Dead GPUs whose shards were evacuated onto survivors.
    pub evacuated_gpus: usize,
    /// Simulated time from the first failure to full detection.
    pub detection_ns: u64,
}

/// What one [`MggEngine::apply_graph_deltas`] epoch fence actually did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaReport {
    /// Deltas in the applied batch.
    pub applied: usize,
    /// Pre-existing rows whose adjacency or features changed.
    pub affected_rows: usize,
    /// Resident cache entries dropped by targeted invalidation (summed
    /// over all per-GPU caches; 0 when caching is disabled).
    pub invalidated: usize,
    /// Nodes appended to the graph (the node split was re-extended, not
    /// re-planned, so every pre-existing `(PE, row)` address survived).
    pub inserted_nodes: usize,
    /// Nodes tombstoned.
    pub removed_nodes: usize,
    /// Undirected edges added.
    pub edges_added: u64,
    /// Undirected edges removed.
    pub edges_removed: u64,
}

/// What one elastic-membership change ([`MggEngine::drain_shard`] /
/// [`MggEngine::rejoin_shard`]) migrated. Unlike a failure evacuation the
/// migration is *planned*: it is cost-charged to the next simulation but
/// loses nothing (no detection pass, no halted warps).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MembershipReport {
    /// Embedding rows whose owner changed in the rebalance.
    pub rows_moved: usize,
    /// Bytes those rows represent at the migration dimension.
    pub bytes_moved: u64,
    /// Host-link cost of the migration, charged to the next simulation's
    /// `recovery.recovery_latency_ns`.
    pub migration_ns: u64,
    /// Shards currently administratively down after the change.
    pub admin_down: usize,
}

/// A neighbor reference from either virtual CSR, tagged by origin.
#[derive(Clone, Copy)]
enum Neighbor<'a> {
    Local(&'a LocalRef),
    Remote(&'a RemoteRef),
}

/// Merges a row's local and remote adjacency by originating edge id,
/// reconstructing the input graph's CSR neighbor order (each virtual CSR
/// keeps its entries in ascending edge order, so this is a two-pointer
/// merge). Aggregating in this order makes functional outputs bit-identical
/// across *any* node split — the invariant elastic failover leans on when
/// it evacuates a dead GPU's shard: the recovered placement reproduces the
/// fault-free run's floats exactly.
fn merge_by_edge<'a>(
    local: &'a [LocalRef],
    remote: &'a [RemoteRef],
    mut f: impl FnMut(Neighbor<'a>),
) {
    let (mut i, mut j) = (0, 0);
    while i < local.len() && j < remote.len() {
        if local[i].edge < remote[j].edge {
            f(Neighbor::Local(&local[i]));
            i += 1;
        } else {
            f(Neighbor::Remote(&remote[j]));
            j += 1;
        }
    }
    local[i..].iter().for_each(|lr| f(Neighbor::Local(lr)));
    remote[j..].iter().for_each(|rr| f(Neighbor::Remote(rr)));
}

/// Minimum output rows per parallel aggregation job. Below this, the
/// per-job dispatch cost outweighs the row math, so small graphs collapse
/// into fewer (or one) jobs instead of paying the fan-out.
const MIN_AGG_ROWS_PER_JOB: usize = 64;

/// The MGG multi-GPU aggregation engine.
pub struct MggEngine {
    /// The simulated multi-GPU platform the engine launches on.
    pub cluster: Cluster,
    /// Hybrid data placement: symmetric-heap embeddings + private topology.
    pub placement: HybridPlacement,
    /// Per-GPU decomposed workloads (LNP/RNP lists).
    pub plans: Vec<WorkPlan>,
    config: MggConfig,
    /// Which kernel pipeline to lower (async Figure-7(b) or sync 7(a)).
    pub variant: KernelVariant,
    /// Warp mapping mode (interleaved or separated, the Figure-9b ablation).
    pub mapping: MappingMode,
    mode: AggregateMode,
    /// Global GCN normalization coefficients (empty for other modes).
    norm: Vec<f32>,
    /// The input graph, kept for fault-driven re-planning.
    graph: CsrGraph,
    /// True once placement has been re-planned around the current faults.
    replanned: bool,
    /// Remote-embedding cache configuration. `None` — the default —
    /// disables caching entirely; the kernel then lowers to traces
    /// byte-identical to pre-cache builds (pinned by the golden tests).
    cache_cfg: Option<CacheConfig>,
    /// Host-DRAM L2 tier configuration. Only meaningful while `cache_cfg`
    /// is set; `None` — the default — keeps the cache single-tier and the
    /// lowered traces byte-identical to pre-tiering builds.
    cache_l2: Option<CacheConfig>,
    /// Per-warp deterministic prefetch budget (0 — the default — disables
    /// prediction and keeps traces byte-identical to reactive builds).
    prefetch_depth: u32,
    /// Per-GPU timing-plane embedding caches (L1, with an optional host
    /// L2 behind each). Residency persists across kernels (that is the
    /// point: layer `k+1` hits on rows layer `k` fetched) until an
    /// invalidation hook flushes them.
    caches: Vec<TieredCache>,
    /// Embedding dimension the caches were sized for; capacity is counted
    /// in rows, so a dimension change rebuilds them.
    cache_dim: usize,
    /// Host-tier / prefetch counters of the most recent cached kernel
    /// build (kept out of `KernelStats`, which is serialized into
    /// committed baselines).
    last_tier_stats: TierStats,
    /// Per-node row versions, bumped by every epoch-fence delta that
    /// touches the row. The cached kernel build checks each access
    /// against this table ([`EmbedCache::access_versioned`]), so a delta
    /// that somehow bypassed invalidation fails loudly (debug) or
    /// self-heals and counts ([`MggEngine::stale_reads`]) instead of
    /// serving a stale embedding. Empty until the first delta batch —
    /// version 0 everywhere, the static-graph fast path.
    row_versions: Vec<u64>,
    /// Shards administratively out of rotation (drained or left). Unlike
    /// dead GPUs these are healthy and can re-join; the rebalance weights
    /// treat both as zero-capacity.
    admin_down: Vec<bool>,
    /// Checkpoint restores executed since the last simulation, merged into
    /// the next run's recovery stats (one-shot).
    checkpoint_restores: u64,
    /// Analytic host-link cost of those restores, in nanoseconds.
    pending_restore_ns: u64,
    /// Statistics of the most recent simulated kernel.
    pub last_stats: Option<KernelStats>,
    /// Warp trace of the most recent simulated kernel, when it was traced.
    pub last_trace: Option<Vec<TraceEvent>>,
    /// Telemetry sink for engine phases and counters (disabled by default,
    /// in which case every recording call is a no-op).
    telemetry: Telemetry,
}

impl MggEngine {
    /// Builds the engine with MGG's defaults (edge-balanced split, async
    /// pipelined kernel, interleaved mapping). Panics on an invalid
    /// configuration; use [`MggEngine::try_new`] to handle it.
    pub fn new(
        graph: &CsrGraph,
        spec: ClusterSpec,
        config: MggConfig,
        mode: AggregateMode,
    ) -> Self {
        Self::try_new(graph, spec, config, mode).expect("invalid MGG configuration")
    }

    /// Fallible [`MggEngine::new`].
    pub fn try_new(
        graph: &CsrGraph,
        spec: ClusterSpec,
        config: MggConfig,
        mode: AggregateMode,
    ) -> Result<Self, MggError> {
        let placement = HybridPlacement::plan(graph, spec.num_gpus);
        Self::with_placement(graph, spec, placement, config, mode)
    }

    /// [`MggEngine::try_new`] with a telemetry sink attached from the
    /// start, so the `partition` and `plan` phases are recorded too.
    pub fn try_new_with_telemetry(
        graph: &CsrGraph,
        spec: ClusterSpec,
        config: MggConfig,
        mode: AggregateMode,
        telemetry: Telemetry,
    ) -> Result<Self, MggError> {
        let placement = {
            let _span = telemetry.span("partition");
            HybridPlacement::plan(graph, spec.num_gpus)
        };
        let mut engine = {
            let _span = telemetry.span("plan");
            Self::with_placement(graph, spec, placement, config, mode)?
        };
        engine.telemetry = telemetry;
        Ok(engine)
    }

    /// Attaches (or replaces) the engine's telemetry sink.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The engine's telemetry handle (disabled unless one was attached).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Builds the engine with a caller-chosen node split (ablations).
    pub fn with_split(
        graph: &CsrGraph,
        spec: ClusterSpec,
        split: NodeSplit,
        config: MggConfig,
        mode: AggregateMode,
    ) -> Self {
        let placement = HybridPlacement::from_split(graph, split);
        Self::with_placement(graph, spec, placement, config, mode)
            .expect("invalid MGG configuration")
    }

    fn with_placement(
        graph: &CsrGraph,
        spec: ClusterSpec,
        placement: HybridPlacement,
        config: MggConfig,
        mode: AggregateMode,
    ) -> Result<Self, MggError> {
        config.validate().map_err(MggError::InvalidConfig)?;
        let plans = build_plans(&placement, config.ps);
        let norm = match mode {
            AggregateMode::GcnNorm => graph.gcn_norm(),
            _ => Vec::new(),
        };
        Ok(MggEngine {
            cluster: Cluster::new(spec),
            placement,
            plans,
            config,
            variant: KernelVariant::AsyncPipelined,
            mapping: MappingMode::Interleaved,
            mode,
            norm,
            graph: graph.clone(),
            replanned: false,
            cache_cfg: None,
            cache_l2: None,
            prefetch_depth: 0,
            caches: Vec::new(),
            cache_dim: 0,
            last_tier_stats: TierStats::default(),
            row_versions: Vec::new(),
            admin_down: Vec::new(),
            checkpoint_restores: 0,
            pending_restore_ns: 0,
            last_stats: None,
            last_trace: None,
            telemetry: Telemetry::disabled(),
        })
    }

    /// Current configuration.
    pub fn config(&self) -> MggConfig {
        self.config
    }

    /// Replaces the configuration, rebuilding work plans when `ps` changed.
    pub fn set_config(&mut self, config: MggConfig) -> Result<(), MggError> {
        config.validate().map_err(MggError::InvalidConfig)?;
        if config.ps != self.config.ps {
            self.plans = build_plans(&self.placement, config.ps);
            // The warp layout (and so the cache access stream) changed;
            // start the next run from a cold cache so results depend only
            // on the new configuration, not on tuning history.
            self.flush_cache();
        }
        self.config = config;
        Ok(())
    }

    /// Enables (`Some`) or disables (`None`) the per-GPU remote-embedding
    /// cache for subsequent simulations. Enabling or re-configuring always
    /// starts cold. Caching changes *timing only*: functional outputs are
    /// bit-identical either way (see
    /// [`MggEngine::aggregate_values_cached`]), and with `None` the lowered
    /// traces are byte-identical to an engine that never had a cache.
    pub fn set_cache(&mut self, cfg: Option<CacheConfig>) {
        self.cache_cfg = cfg;
        self.caches = Vec::new();
        self.cache_dim = 0;
    }

    /// The active cache configuration, if caching is enabled.
    pub fn cache_config(&self) -> Option<CacheConfig> {
        self.cache_cfg
    }

    /// Attaches (`Some`) or detaches (`None`) a host-DRAM L2 tier behind
    /// every per-GPU L1 cache. Takes effect only while an L1 is configured
    /// ([`MggEngine::set_cache`]). Re-configuring always starts cold. Like
    /// the L1, the tier changes *timing only*: L1 evictions demote over
    /// the PCIe host link instead of dropping, and L1 misses probe the
    /// tier before paying a fabric GET. With `None` the lowered traces are
    /// byte-identical to a single-tier engine.
    pub fn set_cache_l2(&mut self, cfg: Option<CacheConfig>) {
        self.cache_l2 = cfg;
        self.caches = Vec::new();
        self.cache_dim = 0;
    }

    /// The active L2 tier configuration, if one is attached.
    pub fn cache_l2_config(&self) -> Option<CacheConfig> {
        self.cache_l2
    }

    /// Sets the deterministic per-warp prefetch budget (0 disables). While
    /// planning warp *w* of a cached build, up to `depth` predicted rows
    /// of warp *w+1*'s remote window are speculatively admitted and issued
    /// as posted `_nbi` fills from warp *w*, so the fabric round trip
    /// overlaps a full warp of work. Re-configuring starts the caches
    /// cold so results depend only on the new setting, not tuning history.
    pub fn set_prefetch_depth(&mut self, depth: u32) {
        self.prefetch_depth = depth;
        self.caches = Vec::new();
        self.cache_dim = 0;
    }

    /// The active per-warp prefetch budget (0 when prefetch is off).
    pub fn prefetch_depth(&self) -> u32 {
        self.prefetch_depth
    }

    /// Drops all cached rows (counters survive). This is the invalidation
    /// hook of the recovery ladder: any event that re-plans placement or
    /// changes fault state re-maps `(PE, row)` addresses, so the engine
    /// calls this from [`MggEngine::recover`], [`MggEngine::resume`],
    /// fault installation and re-planning. Callers embedding the engine in
    /// a larger system can also invalidate explicitly (e.g. when
    /// embeddings are updated between epochs).
    pub fn flush_cache(&mut self) {
        for c in &mut self.caches {
            c.flush();
        }
    }

    /// Cumulative cache counters summed over all GPUs since the caches
    /// were (re)built — across kernels, unlike the per-run
    /// `KernelStats::cache` figure. All zero when caching is disabled.
    pub fn cache_stats(&self) -> CacheStats {
        let mut acc = CacheStats::default();
        for c in &self.caches {
            acc.merge(&c.stats());
        }
        acc
    }

    /// Cumulative host-tier / prefetch counters summed over all GPUs since
    /// the caches were (re)built. All zero when tiering and prefetch are
    /// both disabled.
    pub fn tier_stats(&self) -> TierStats {
        let mut acc = TierStats::default();
        for c in &self.caches {
            acc.merge(&c.tier_stats());
        }
        acc
    }

    /// Host-tier / prefetch counters of the most recent cached kernel run
    /// (the per-run delta, like `KernelStats::cache` is for the L1 — but
    /// kept out of `KernelStats`, which is serialized into committed
    /// baselines).
    pub fn last_tier_stats(&self) -> TierStats {
        self.last_tier_stats
    }

    /// True when every per-GPU host tier satisfies the demotion
    /// conservation identity (`demotions == resident + dropped +
    /// invalidated`). Trivially true with tiering disabled.
    pub fn l2_conserves(&self) -> bool {
        self.caches.iter().all(|c| c.l2_conserves())
    }

    /// (Re)builds the per-GPU caches when the embedding dimension or GPU
    /// count changed since they were last sized.
    fn ensure_caches(&mut self, dim: usize) {
        let Some(cfg) = self.cache_cfg else { return };
        let gpus = self.placement.num_gpus();
        if self.cache_dim == dim && self.caches.len() == gpus {
            return;
        }
        let row_bytes = (dim * 4) as u32;
        let rows = cfg.capacity_rows(row_bytes);
        // The thrash guard keeps undersized budgets from paying fill-write
        // bandwidth for rows they immediately re-evict (never slower than
        // uncached); right-sized budgets behave exactly as before.
        self.caches = (0..gpus)
            .map(|_| {
                let c = TieredCache::new(rows, cfg.policy);
                match self.cache_l2 {
                    Some(l2) => c.with_host_tier(l2.capacity_rows(row_bytes), l2.policy),
                    None => c,
                }
            })
            .collect();
        self.cache_dim = dim;
    }

    /// Derives a deterministic fault scenario from `spec` and installs it
    /// on the cluster. Subsequent simulations run under these faults (and
    /// may trigger graceful degradation — see
    /// [`MggEngine::simulate_aggregation`]).
    pub fn install_faults(&mut self, spec: FaultSpec) -> Result<(), MggError> {
        spec.validate().map_err(MggError::InvalidFaultSpec)?;
        let sched = FaultSchedule::derive(&spec, self.cluster.num_gpus());
        self.cluster.install_faults(sched);
        self.replanned = false;
        self.flush_cache();
        Ok(())
    }

    /// Installs an explicit fault schedule (pinned test scenarios).
    pub fn install_fault_schedule(&mut self, sched: FaultSchedule) {
        self.cluster.install_faults(sched);
        self.replanned = false;
        self.flush_cache();
    }

    /// Removes any installed fault scenario.
    pub fn clear_faults(&mut self) {
        self.cluster.clear_faults();
        self.replanned = false;
        self.flush_cache();
    }

    /// The installed fault schedule, if any.
    pub fn fault_schedule(&self) -> Option<&FaultSchedule> {
        self.cluster.faults()
    }

    /// What graceful degradation the installed faults call for.
    pub fn recovery_action(&self) -> RecoveryAction {
        let Some(sched) = self.cluster.faults() else { return RecoveryAction::None };
        if !sched.dead_gpus().is_empty() {
            return RecoveryAction::Evacuate;
        }
        if sched.has_permanent() {
            return RecoveryAction::Reroute;
        }
        let min_health = (0..sched.num_gpus())
            .map(|g| sched.health(g))
            .fold(1.0_f64, f64::min);
        if min_health < UVM_FALLBACK_HEALTH_THRESHOLD {
            RecoveryAction::UvmFallback
        } else if min_health < REPLAN_HEALTH_THRESHOLD {
            RecoveryAction::Rebalance
        } else {
            RecoveryAction::None
        }
    }

    /// Executes recovery for the installed fault scenario at embedding
    /// dimension `dim` (the dimension decides whether survivors can hold an
    /// evacuated shard). Walks the degradation ladder for real:
    ///
    /// 1. dead links between surviving GPUs get relay routes installed on
    ///    the interconnect (shortest surviving path; host staging when the
    ///    fabric is partitioned);
    /// 2. dead GPUs' shards are evacuated by re-splitting the graph over
    ///    the survivors, weighted by their health;
    /// 3. when the survivors cannot hold the evacuated embeddings, the
    ///    whole job degrades to UVM (every fabric transfer host-staged).
    ///
    /// Returns what was done, or [`MggError::Unrecoverable`] when no GPU
    /// survives. Idempotent for a given installed schedule.
    pub fn recover(&mut self, dim: usize) -> Result<RecoveryReport, MggError> {
        // Every recovery rung may change routes or addressing; resident
        // cache rows are suspect from here on. (Re-planning flushes again,
        // but the reroute-only rung would otherwise keep stale rows.)
        self.flush_cache();
        let num_gpus = self.cluster.num_gpus();
        let Some(sched) = self.cluster.faults().cloned() else {
            let view = HealthMonitor::with_defaults(num_gpus)
                .observe(&FaultSchedule::quiet(num_gpus), 0);
            return Ok(RecoveryReport {
                action: RecoveryAction::None,
                view,
                routes_installed: 0,
                evacuated_gpus: 0,
                detection_ns: 0,
            });
        };
        let monitor = HealthMonitor::with_defaults(num_gpus);
        if !sched.has_permanent() {
            // Transient-only impairment: the health-weighted rebalance is
            // the whole recovery.
            let action = self.recovery_action();
            if action != RecoveryAction::None {
                let weights: Vec<f64> =
                    (0..num_gpus).map(|g| sched.health(g).max(0.05)).collect();
                self.replan_weighted(&weights);
            }
            return Ok(RecoveryReport {
                action,
                view: monitor.observe(&sched, 0),
                routes_installed: 0,
                evacuated_gpus: 0,
                detection_ns: 0,
            });
        }
        let detection_ns = monitor.detection_horizon_ns(&sched).unwrap_or(0);
        let view = monitor.observe(&sched, detection_ns);
        if view.survivors().is_empty() {
            return Err(MggError::Unrecoverable(format!(
                "all {num_gpus} GPUs are dead; nowhere to evacuate their shards"
            )));
        }
        // Rung 1: relay routes around dead links whose endpoints survive.
        let mut routes_installed = 0;
        for a in 0..num_gpus {
            for b in a + 1..num_gpus {
                if view.is_dead(a) || view.is_dead(b) || view.link_usable(a, b) {
                    continue;
                }
                if let Some(Route::Relay(hops)) = plan_route(&view, a, b) {
                    self.cluster.ic.install_route(
                        a,
                        b,
                        hops.iter().map(|&h| h as u16).collect(),
                    );
                    routes_installed += 1;
                }
                // HostStaged needs no wiring: the interconnect falls back
                // to the host channel by itself when no route is installed.
            }
        }
        // Rung 2: evacuate dead GPUs' shards onto the survivors.
        let evacuated_gpus =
            view.dead.iter().filter(|&&g| self.placement.split.part_nodes(g) > 0).count();
        let mut action =
            if view.dead.is_empty() { RecoveryAction::Reroute } else { RecoveryAction::Evacuate };
        if view.dead.is_empty() {
            self.replanned = true;
        } else {
            let weights: Vec<f64> = (0..num_gpus)
                .map(|g| if view.is_dead(g) { 0.0 } else { sched.health(g).max(0.05) })
                .collect();
            self.replan_weighted(&weights);
            // Rung 3: survivors over capacity — degrade to UVM for real.
            if self.placement.check_memory(dim, &self.cluster.spec.gpu, EVACUATION_HEADROOM).is_err()
            {
                self.cluster.ic.set_uvm_degraded(true);
                action = RecoveryAction::UvmFallback;
            }
        }
        self.telemetry.counter_add("engine.routes_installed", routes_installed as u64);
        self.telemetry.counter_add("engine.evacuations", evacuated_gpus as u64);
        Ok(RecoveryReport { action, view, routes_installed, evacuated_gpus, detection_ns })
    }

    /// Captures an epoch-boundary checkpoint: the node split in effect plus
    /// the aggregated features, checksummed for corruption detection.
    pub fn checkpoint(&self, epoch: u64, features: &Matrix) -> Checkpoint {
        Checkpoint::new(
            epoch,
            features.cols(),
            self.placement.split.bounds().to_vec(),
            features.data().to_vec(),
        )
    }

    /// Restores partition state and features from `ckpt`, so a run
    /// interrupted mid-epoch resumes from the last epoch boundary. The
    /// restore's host-link transfer cost is charged to the next
    /// simulation's `recovery.recovery_latency_ns`.
    pub fn resume(&mut self, ckpt: &Checkpoint) -> Result<Matrix, MggError> {
        if !ckpt.is_valid() {
            return Err(MggError::Unrecoverable(format!(
                "checkpoint for epoch {} failed checksum validation",
                ckpt.epoch
            )));
        }
        if ckpt.dim == 0 || !ckpt.features.len().is_multiple_of(ckpt.dim) {
            return Err(MggError::Unrecoverable(format!(
                "checkpoint for epoch {} has inconsistent shape",
                ckpt.epoch
            )));
        }
        let split = NodeSplit::from_bounds(ckpt.bounds.clone());
        self.placement = HybridPlacement::from_split(&self.graph, split);
        self.plans = build_plans(&self.placement, self.config.ps);
        // The restored split re-maps (PE, row) addresses.
        self.flush_cache();
        self.checkpoint_restores += 1;
        // Reloading the features from host storage costs one host-link
        // transfer of the checkpoint payload.
        let bytes = (ckpt.features.len() * 4) as u64;
        let host = &self.cluster.spec.host_link;
        self.pending_restore_ns += host.latency_ns
            + host.request_overhead_ns
            + (bytes as f64 / host.bw_gbps).ceil() as u64;
        Ok(Matrix::from_vec(ckpt.features.len() / ckpt.dim, ckpt.dim, ckpt.features.clone()))
    }

    /// Applies one epoch-fence batch of live-graph `deltas` transactionally.
    ///
    /// Ordering is the safety argument: **invalidation happens under the
    /// old addressing, before anything is rebuilt.** Each affected row's
    /// current `(owner, local)` cache key is dropped from every per-GPU
    /// cache and its version bumped; only then are the graph, placement
    /// and work plans swapped. Node insertion *re-extends* the current
    /// split (the last part's bound grows) instead of re-planning from
    /// scratch, so every pre-existing node keeps its `(PE, row)` address
    /// — which is exactly why targeted invalidation is sufficient and
    /// unaffected rows stay legitimately resident across the fence.
    ///
    /// The whole batch is validated first; on [`MggError::InvalidDelta`]
    /// nothing was applied. A quiet batch (`deltas.is_empty()`) is a
    /// no-op that still reports.
    pub fn apply_graph_deltas(&mut self, deltas: &[GraphDelta]) -> Result<DeltaReport, MggError> {
        let (new_graph, fx) =
            apply_deltas(&self.graph, deltas).map_err(MggError::InvalidDelta)?;
        // 1. Targeted invalidation, old addressing. Every GPU's cache keys
        //    remote rows globally by (owner PE, local row), so the same key
        //    is dropped from each.
        let mut invalidated = 0usize;
        for &node in &fx.affected {
            let key = CacheKey {
                pe: self.placement.split.owner(node) as u16,
                row: self.placement.split.local_index(node),
            };
            for c in &mut self.caches {
                if c.invalidate(key) {
                    invalidated += 1;
                }
            }
        }
        // 2. Version bumps for affected rows; inserted rows start at 0.
        if self.row_versions.len() < self.graph.num_nodes() {
            self.row_versions.resize(self.graph.num_nodes(), 0);
        }
        for &node in &fx.affected {
            self.row_versions[node as usize] += 1;
        }
        self.row_versions.resize(new_graph.num_nodes(), 0);
        // 3. Incremental split re-extension + placement/plan rebuild.
        let mut bounds = self.placement.split.bounds().to_vec();
        if fx.inserted_nodes > 0 {
            *bounds.last_mut().expect("split has bounds") = new_graph.num_nodes() as u32;
        }
        self.graph = new_graph;
        self.placement =
            HybridPlacement::from_split(&self.graph, NodeSplit::from_bounds(bounds));
        self.plans = build_plans(&self.placement, self.config.ps);
        if self.mode == AggregateMode::GcnNorm {
            self.norm = self.graph.gcn_norm();
        }
        self.telemetry.counter_add("churn.deltas_applied", deltas.len() as u64);
        self.telemetry.counter_add("churn.rows_invalidated", invalidated as u64);
        Ok(DeltaReport {
            applied: deltas.len(),
            affected_rows: fx.affected.len(),
            invalidated,
            inserted_nodes: fx.inserted_nodes,
            removed_nodes: fx.removed_nodes,
            edges_added: fx.edges_added,
            edges_removed: fx.edges_removed,
        })
    }

    /// Takes `shard` out of rotation as a *planned* migration: its rows
    /// move to the remaining in-rotation shards via the same
    /// health-weighted re-split the failover ladder uses for evacuation,
    /// but nothing is lost and the cost is charged analytically (one
    /// host-link transfer of the moved rows at dimension `dim`) to the
    /// next simulation. Refused when it would leave no shard in rotation.
    pub fn drain_shard(&mut self, shard: usize, dim: usize) -> Result<MembershipReport, MggError> {
        self.set_admin_down(shard, true, dim)
    }

    /// Returns a drained shard to rotation, health-gated: a shard the
    /// fault plane reports dead (or critically degraded) may not re-join.
    /// The rebalance moves rows back onto it, cost-charged like
    /// [`MggEngine::drain_shard`]; the caches keep serving (the moved
    /// rows' keys are invalidated, resident survivors stay warm).
    pub fn rejoin_shard(&mut self, shard: usize, dim: usize) -> Result<MembershipReport, MggError> {
        if shard >= self.cluster.num_gpus() {
            return Err(MggError::MembershipRejected(format!(
                "shard {shard} does not exist (cluster has {})",
                self.cluster.num_gpus()
            )));
        }
        if let Some(sched) = self.cluster.faults() {
            if sched.dead_gpus().contains(&shard) {
                return Err(MggError::MembershipRejected(format!(
                    "shard {shard} is dead; it cannot re-join"
                )));
            }
            if sched.health(shard) < UVM_FALLBACK_HEALTH_THRESHOLD {
                return Err(MggError::MembershipRejected(format!(
                    "shard {shard} health {:.2} is below the re-join gate {:.2}",
                    sched.health(shard),
                    UVM_FALLBACK_HEALTH_THRESHOLD
                )));
            }
        }
        self.set_admin_down(shard, false, dim)
    }

    /// Shards currently administratively out of rotation.
    pub fn admin_down(&self) -> Vec<usize> {
        self.admin_down
            .iter()
            .enumerate()
            .filter_map(|(g, &down)| down.then_some(g))
            .collect()
    }

    fn set_admin_down(
        &mut self,
        shard: usize,
        down: bool,
        dim: usize,
    ) -> Result<MembershipReport, MggError> {
        let num_gpus = self.cluster.num_gpus();
        if shard >= num_gpus {
            return Err(MggError::MembershipRejected(format!(
                "shard {shard} does not exist (cluster has {num_gpus})"
            )));
        }
        if self.admin_down.len() < num_gpus {
            self.admin_down.resize(num_gpus, false);
        }
        if self.admin_down[shard] == down {
            // Idempotent: draining a drained shard (or re-joining an
            // in-rotation one) moves nothing.
            return Ok(MembershipReport {
                admin_down: self.admin_down.iter().filter(|&&d| d).count(),
                ..MembershipReport::default()
            });
        }
        // Capacity weights fold administrative state into the same plane
        // the failover ladder uses: dead or drained shards get zero,
        // survivors their health. Refuse to drain the last live shard.
        let sched = self.cluster.faults().cloned();
        let weight = |g: usize| -> f64 {
            let drained = if g == shard { down } else { self.admin_down[g] };
            if drained {
                return 0.0;
            }
            match &sched {
                Some(s) if s.dead_gpus().contains(&g) => 0.0,
                Some(s) => s.health(g).max(0.05),
                None => 1.0,
            }
        };
        let weights: Vec<f64> = (0..num_gpus).map(weight).collect();
        if weights.iter().all(|&w| w <= 0.0) {
            return Err(MggError::MembershipRejected(format!(
                "draining shard {shard} would leave no shard in rotation"
            )));
        }
        // Permanent failures not yet recovered need their relay routes
        // before the rebalance claims the placement is fault-accurate.
        if self.cluster.faults().is_some_and(FaultSchedule::has_permanent) && !self.replanned {
            self.recover(dim)?;
        }
        self.admin_down[shard] = down;
        let old_bounds = self.placement.split.bounds().to_vec();
        self.replan_weighted(&weights);
        // Planned-migration cost: rows whose owner changed cross the host
        // link once (same analytic formula as a checkpoint restore).
        let rows_moved = Self::rows_moved(&old_bounds, self.placement.split.bounds());
        let bytes_moved = (rows_moved * dim * 4) as u64;
        let host = &self.cluster.spec.host_link;
        let migration_ns = if rows_moved > 0 {
            host.latency_ns
                + host.request_overhead_ns
                + (bytes_moved as f64 / host.bw_gbps).ceil() as u64
        } else {
            0
        };
        self.pending_restore_ns += migration_ns;
        self.telemetry.counter_add("churn.membership_changes", 1);
        self.telemetry.counter_add("churn.rows_migrated", rows_moved as u64);
        Ok(MembershipReport {
            rows_moved,
            bytes_moved,
            migration_ns,
            admin_down: self.admin_down.iter().filter(|&&d| d).count(),
        })
    }

    /// Rows whose owning part changed between two bounds vectors over the
    /// same node count: total nodes minus the per-part overlap of old and
    /// new ranges.
    fn rows_moved(old_bounds: &[u32], new_bounds: &[u32]) -> usize {
        let n = *old_bounds.last().unwrap_or(&0) as usize;
        let mut same = 0usize;
        let mut old_start = 0u32;
        let mut new_start = 0u32;
        for (&oe, &ne) in old_bounds.iter().zip(new_bounds) {
            let lo = old_start.max(new_start);
            let hi = oe.min(ne);
            if hi > lo {
                same += (hi - lo) as usize;
            }
            old_start = oe;
            new_start = ne;
        }
        n.saturating_sub(same)
    }

    /// Stale-read detections summed over the per-GPU caches: accesses
    /// that found a resident row at the wrong version. Any non-zero value
    /// means a delta bypassed invalidation — the churn drills assert 0.
    pub fn stale_reads(&self) -> u64 {
        self.caches.iter().map(|c| c.stale_hits()).sum()
    }

    /// The engine's current (post-churn) graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Simulates one aggregation pass at embedding dimension `dim` and
    /// returns the kernel statistics. Channels are reset first, so calls
    /// are independent measurements.
    ///
    /// Under an installed fault scenario with impaired GPUs, the first
    /// call additionally performs graceful degradation: the run that
    /// observed the degradation is treated as the detection pass, placement
    /// is re-planned with capacity weights proportional to each GPU's
    /// health, and the kernel is re-run on the re-balanced placement. The
    /// returned statistics are those of the recovered run, with the
    /// detection pass charged to `recovery.recovery_latency_ns`.
    pub fn simulate_aggregation(&mut self, dim: usize) -> Result<KernelStats, MggError> {
        Ok(self.simulate_aggregation_impl(dim, false)?.0)
    }

    /// [`MggEngine::simulate_aggregation`] with the per-warp trace captured
    /// end-to-end — including the recovery re-run, whose trace replaces the
    /// detection pass's, matching the returned statistics.
    pub fn simulate_aggregation_traced(
        &mut self,
        dim: usize,
    ) -> Result<(KernelStats, Vec<TraceEvent>), MggError> {
        let (stats, trace) = self.simulate_aggregation_impl(dim, true)?;
        Ok((stats, trace.expect("trace was requested")))
    }

    fn simulate_aggregation_impl(
        &mut self,
        dim: usize,
        want_trace: bool,
    ) -> Result<(KernelStats, Option<Vec<TraceEvent>>), MggError> {
        let tel = self.telemetry.clone();
        // With telemetry attached, always capture the trace: the derived
        // pipeline metrics need it, and tracing never changes the
        // simulation outcome (the sim crate's tests pin that equivalence).
        let want_trace = want_trace || tel.is_enabled();
        let (mut stats, mut trace) = self.run_kernel(dim, want_trace)?;
        let action = self.recovery_action();
        let permanent = self.cluster.faults().is_some_and(FaultSchedule::has_permanent);
        if permanent && !self.replanned {
            // Permanent GPU/link failures: the first run is the detection
            // pass (it halts at the failure), then the engine executes
            // recovery — reroute, evacuate, possibly degrade to UVM — and
            // re-runs on the recovered configuration.
            let _span = tel.span("recover");
            let report = self.recover(dim)?;
            let (mut recovered, recovered_trace) = self.run_kernel(dim, want_trace)?;
            if report.evacuated_gpus > 0 || report.action == RecoveryAction::UvmFallback {
                recovered.recovery.replans += 1;
            }
            recovered.recovery.evacuations += report.evacuated_gpus as u64;
            if report.action == RecoveryAction::UvmFallback {
                recovered.recovery.uvm_fallbacks += 1;
            }
            // The failure's blast radius, observed by the detection pass.
            recovered.recovery.halted_warps += stats.recovery.halted_warps;
            recovered.recovery.dead_peer_gets += stats.recovery.dead_peer_gets;
            // Detection → resume latency: the aborted pass overlaps the
            // monitor's detection horizon; the longer of the two dominates.
            let detection_ns = stats.makespan_ns().max(report.detection_ns);
            recovered.recovery.recovery_latency_ns += detection_ns;
            tel.counter_add("engine.replans", u64::from(recovered.recovery.replans > 0));
            tel.counter_add("engine.recovery_detection_ns", detection_ns);
            stats = recovered;
            trace = recovered_trace;
        } else if action != RecoveryAction::None && !self.replanned {
            let _span = tel.span("recover");
            let sched = self.cluster.faults().expect("action implies faults").clone();
            let weights: Vec<f64> =
                (0..sched.num_gpus()).map(|g| sched.health(g).max(0.05)).collect();
            let detection_ns = stats.makespan_ns();
            self.replan_weighted(&weights);
            let (mut recovered, recovered_trace) = self.run_kernel(dim, want_trace)?;
            recovered.recovery.replans += 1;
            if action == RecoveryAction::UvmFallback {
                recovered.recovery.uvm_fallbacks += 1;
            }
            recovered.recovery.recovery_latency_ns += detection_ns;
            tel.counter_add("engine.replans", 1);
            tel.counter_add("engine.recovery_detection_ns", detection_ns);
            stats = recovered;
            trace = recovered_trace;
        }
        if self.checkpoint_restores > 0 || self.pending_restore_ns > 0 {
            // One-shot: resumed-from-checkpoint and planned-migration work
            // is attributed to the first simulation after it.
            stats.recovery.checkpoint_restores += self.checkpoint_restores;
            stats.recovery.recovery_latency_ns += self.pending_restore_ns;
            tel.counter_add("engine.checkpoint_restores", self.checkpoint_restores);
            self.checkpoint_restores = 0;
            self.pending_restore_ns = 0;
        }
        {
            // The inter-GPU barrier closing the aggregation: each GPU idles
            // from its own finish until the global makespan.
            let _span = tel.span("barrier");
            let makespan = stats.makespan_ns();
            let skew: u64 =
                stats.per_gpu.iter().map(|g| makespan.saturating_sub(g.finish_ns)).sum();
            tel.counter_add("engine.barrier_skew_ns", skew);
        }
        if tel.is_enabled() {
            tel.counter_add("engine.kernels", 1);
            let events = trace.as_deref().unwrap_or(&[]);
            tel.add_trace_events(events);
            tel.set_pipeline(PipelineMetrics::derive(&stats, events));
        }
        self.last_stats = Some(stats.clone());
        self.last_trace = trace.clone();
        Ok((stats, trace))
    }

    /// One raw kernel simulation on the current placement (no recovery).
    fn run_kernel(
        &mut self,
        dim: usize,
        want_trace: bool,
    ) -> Result<(KernelStats, Option<Vec<TraceEvent>>), MggError> {
        let tel = self.telemetry.clone();
        self.ensure_caches(dim);
        let kernel = {
            let _span = tel.span("launch");
            let model = AnalyticalModel::new(self.cluster.spec.gpu.clone(), dim);
            if self.cache_cfg.is_some() {
                MggKernel::build_cached(
                    &self.placement,
                    &self.plans,
                    &self.config,
                    dim,
                    &model,
                    self.variant,
                    self.mapping,
                    &mut self.caches,
                    &self.row_versions,
                    self.prefetch_depth,
                )
            } else {
                MggKernel::build(
                    &self.placement,
                    &self.plans,
                    &self.config,
                    dim,
                    &model,
                    self.variant,
                    self.mapping,
                )
            }
        };
        self.cluster.reset();
        let _span = tel.span("aggregate");
        let (mut stats, events) = if want_trace {
            let (stats, events) = GpuSim::run_traced(&mut self.cluster, &kernel, &mut NoPaging)?;
            (stats, Some(events))
        } else {
            (GpuSim::run(&mut self.cluster, &kernel, &mut NoPaging)?, None)
        };
        if self.cache_cfg.is_some() {
            // The builder planned the cache outcomes; attribute them to
            // this run (the simulator only priced the resulting ops).
            let cs = kernel.cache_stats();
            stats.cache = cs;
            tel.counter_add("cache.hits", cs.hits);
            tel.counter_add("cache.misses", cs.misses);
            tel.counter_add("cache.coalesced", cs.coalesced);
            tel.counter_add("cache.evictions", cs.evictions);
            tel.gauge_set("cache.hit_rate", cs.hit_rate());
            // Host-tier / prefetch counters ride alongside but stay out of
            // `KernelStats` (whose shape is frozen by committed baselines).
            let ts = kernel.tier_stats();
            self.last_tier_stats = ts;
            if self.cache_l2.is_some() || self.prefetch_depth > 0 {
                tel.counter_add("cache.l2_hits", ts.l2_hits);
                tel.counter_add("cache.l2_misses", ts.l2_misses);
                tel.counter_add("cache.demotions", ts.demotions);
                tel.counter_add("cache.promotions", ts.promotions);
                tel.counter_add("cache.prefetch_issued", ts.prefetch_issued);
                tel.counter_add("cache.prefetch_useful", ts.prefetch_useful);
                tel.gauge_set("cache.l2_hit_rate", ts.l2_hit_rate());
            }
        }
        Ok((stats, events))
    }

    /// Rebuilds split, placement and work plans with per-GPU capacity
    /// weights. Functional outputs are split-invariant, so this only moves
    /// work, never changes values.
    fn replan_weighted(&mut self, weights: &[f64]) {
        let split = NodeSplit::edge_balanced_weighted(&self.graph, weights);
        self.placement = HybridPlacement::from_split(&self.graph, split);
        self.plans = build_plans(&self.placement, self.config.ps);
        self.replanned = true;
        // Re-splitting re-maps every (PE, row) address: resident cache
        // entries now name the wrong rows. Invalidate.
        self.flush_cache();
    }

    /// Simulated end-to-end duration of one aggregation (kernel makespan
    /// plus the host launch overhead).
    pub fn simulate_aggregation_ns(&mut self, dim: usize) -> Result<SimTime, MggError> {
        let launch_overhead = self.cluster.spec.kernel_launch_ns;
        Ok(self.simulate_aggregation(dim)?.makespan_ns() + launch_overhead)
    }

    /// Functional aggregation: computes the same values the simulated
    /// kernel would produce, using the locality-split virtual CSRs and the
    /// symmetric-heap addressing.
    pub fn aggregate_values(&self, x: &Matrix) -> Matrix {
        let dim = x.cols();
        let region = self.placement.place_embeddings(x);
        let mut out = Matrix::zeros(x.rows(), dim);
        if x.rows() == 0 || dim == 0 {
            return out;
        }
        // Row-chunk decomposition at pool granularity: jobs are contiguous
        // row ranges sized to `rows / threads` with a minimum-work floor
        // (one job per partition underfills wide pools and overfills small
        // graphs with spawn overhead). Each row is computed exactly as in
        // the serial loop — chunk boundaries never enter the math — so the
        // result is bit-identical at any thread count.
        let chunk_rows = mgg_runtime::chunk_len(x.rows(), MIN_AGG_ROWS_PER_JOB);
        let slices: Vec<&mut [f32]> = out.data_mut().chunks_mut(chunk_rows * dim).collect();
        let region = &region;
        let _lbl = mgg_runtime::profile::region_label("engine.aggregate");
        mgg_runtime::par_slices_mut(slices, |ci, out_chunk| {
            let first = ci * chunk_rows;
            let mut pi = self.part_of(first);
            for (k, dst) in out_chunk.chunks_mut(dim).enumerate() {
                let v = first + k;
                while self.placement.parts[pi].node_range.end as usize <= v {
                    pi += 1;
                }
                let part = &self.placement.parts[pi];
                let base = part.node_range.start as usize;
                let r = (v - base) as u32;
                // Local (device memory) and remote (symmetric heap)
                // neighbors, summed in the input graph's edge order.
                merge_by_edge(part.local.row(r), part.remote.row(r), |nb| {
                    let (w, src) = match nb {
                        Neighbor::Local(lr) => (
                            self.weight(v, base + lr.local as usize),
                            region.row(part.pe, lr.local),
                        ),
                        Neighbor::Remote(rr) => {
                            let owner_base =
                                self.placement.split.range(rr.owner as usize).start;
                            (
                                self.weight(v, (owner_base + rr.local) as usize),
                                region.row(rr.owner as usize, rr.local),
                            )
                        }
                    };
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d += w * s;
                    }
                });
                // Mode-specific fixups.
                match self.mode {
                    AggregateMode::GcnNorm => {
                        // Self-loop term of \hat{A}.
                        let w = self.norm[v] * self.norm[v];
                        for (d, &s) in dst.iter_mut().zip(x.row(v)) {
                            *d += w * s;
                        }
                    }
                    AggregateMode::Mean => {
                        let deg = part.local.row(r).len() + part.remote.row(r).len();
                        if deg > 0 {
                            let inv = 1.0 / deg as f32;
                            for d in dst.iter_mut() {
                                *d *= inv;
                            }
                        }
                    }
                    AggregateMode::Sum => {}
                }
            }
        });
        out
    }

    /// Index of the partition owning global node `v` (the partitions'
    /// node ranges tile `0..n` in order).
    fn part_of(&self, v: usize) -> usize {
        self.placement
            .parts
            .partition_point(|p| (p.node_range.end as usize) <= v)
    }

    /// Functional aggregation through the resilience plane: remote rows are
    /// fetched with non-blocking resilient GETs (retrying transiently
    /// dropped ones) and settled per destination row. Values are identical
    /// to [`MggEngine::aggregate_values`] — faults never corrupt data, they
    /// only cost retries — and the resilience counters report what recovery
    /// work was needed.
    pub fn aggregate_values_resilient(
        &self,
        x: &Matrix,
    ) -> Result<(Matrix, ResilienceStats), MggError> {
        let dim = x.cols();
        let region = self.placement.place_embeddings(x);
        let mut resilient = ResilientRegion::new(&region, self.cluster.faults())
            .with_telemetry(self.telemetry.clone());
        let mut out = Matrix::zeros(x.rows(), dim);
        let mut fetched = vec![0.0f32; dim];
        for part in &self.placement.parts {
            let base = part.node_range.start as usize;
            for r in 0..part.local.num_rows() as u32 {
                let v = base + r as usize;
                let out_row_start = v * dim;
                // Same edge-order merge as `aggregate_values`; remote rows
                // go through the resilience plane (fallible), so the merged
                // order is materialized instead of visited by closure.
                let mut merged =
                    Vec::with_capacity(part.local.row(r).len() + part.remote.row(r).len());
                merge_by_edge(part.local.row(r), part.remote.row(r), |nb| merged.push(nb));
                for nb in merged {
                    match nb {
                        Neighbor::Local(lr) => {
                            let w = self.weight(v, base + lr.local as usize);
                            let src = region.row(part.pe, lr.local);
                            let dst = &mut out.data_mut()[out_row_start..out_row_start + dim];
                            for (d, &s) in dst.iter_mut().zip(src) {
                                *d += w * s;
                            }
                        }
                        Neighbor::Remote(rr) => {
                            let owner_base =
                                self.placement.split.range(rr.owner as usize).start;
                            let w = self.weight(v, (owner_base + rr.local) as usize);
                            resilient.get_nbi(&mut fetched, part.pe, rr.owner as usize, rr.local)?;
                            let dst = &mut out.data_mut()[out_row_start..out_row_start + dim];
                            for (d, &s) in dst.iter_mut().zip(fetched.iter()) {
                                *d += w * s;
                            }
                        }
                    }
                }
                resilient.quiet(part.pe)?;
                match self.mode {
                    AggregateMode::GcnNorm => {
                        let w = self.norm[v] * self.norm[v];
                        let src: Vec<f32> = x.row(v).to_vec();
                        let dst = &mut out.data_mut()[out_row_start..out_row_start + dim];
                        for (d, s) in dst.iter_mut().zip(src) {
                            *d += w * s;
                        }
                    }
                    AggregateMode::Mean => {
                        let deg = part.local.row(r).len() + part.remote.row(r).len();
                        if deg > 0 {
                            let inv = 1.0 / deg as f32;
                            let dst = &mut out.data_mut()[out_row_start..out_row_start + dim];
                            for d in dst {
                                *d *= inv;
                            }
                        }
                    }
                    AggregateMode::Sum => {}
                }
            }
        }
        Ok((out, resilient.stats()))
    }

    /// Functional aggregation through the caching read path: remote rows
    /// go through a [`CachedRegion`] in front of the symmetric heap, so
    /// repeated references are served from the per-GPU cache (and
    /// duplicate in-flight requests coalesce) instead of re-crossing the
    /// fabric. Values are **bit-identical** to
    /// [`MggEngine::aggregate_values`] at any thread count — the cache
    /// stores exact copies of current rows and the merge order is
    /// untouched — which the `cache_consistency` property tests pin.
    ///
    /// Uses the engine's cache configuration; when caching is disabled the
    /// fetches are uncached and the returned counters are all zero. The
    /// returned stats are this call's own (the functional plane does not
    /// share residency with the timing-plane caches).
    pub fn aggregate_values_cached(&self, x: &Matrix) -> Result<(Matrix, CacheStats), MggError> {
        self.aggregate_values_tiered(x).map(|(m, cs, _)| (m, cs))
    }

    /// [`MggEngine::aggregate_values_cached`] with the host-tier and
    /// prefetch counters alongside. When [`MggEngine::set_cache_l2`] has
    /// attached a host tier, L1 evictions demote into it and misses probe
    /// it before the fabric; when [`MggEngine::set_prefetch_depth`] is
    /// non-zero, each row's first remote references are staged while the
    /// previous row computes. Values stay bit-identical to
    /// [`MggEngine::aggregate_values`] either way — the tiers store exact
    /// copies and the merge order is untouched.
    pub fn aggregate_values_tiered(
        &self,
        x: &Matrix,
    ) -> Result<(Matrix, CacheStats, TierStats), MggError> {
        let dim = x.cols();
        let cfg = self
            .cache_cfg
            .unwrap_or(CacheConfig { capacity_bytes: 0, policy: mgg_cache::CachePolicy::Lru });
        let region = self.placement.place_embeddings(x);
        let region = &region;
        let faults = self.cluster.faults();
        let parts = &self.placement.parts;
        // One job per partition, each with its own issuing-PE cache over
        // the shared region; parts are merged back in index order, so the
        // output layout matches `aggregate_values` exactly. Unlike the
        // pure paths this one deliberately stays at partition granularity:
        // cache residency is per issuing PE, and thread-count-dependent
        // row chunks would make the returned hit/miss counters vary with
        // the pool width (values would not, but stats determinism is part
        // of this path's contract).
        let _lbl = mgg_runtime::profile::region_label("engine.aggregate_cached");
        let l2_cfg = self.cache_l2;
        let prefetch_depth = self.prefetch_depth;
        let results = mgg_runtime::par_map_indexed(parts.len(), |pi| {
            let part = &parts[pi];
            let mut cached = CachedRegion::new(region, faults, cfg, dim);
            if let Some(l2) = l2_cfg {
                cached = cached.with_host_tier(l2);
            }
            let mut out_part = vec![0.0f32; part.local.num_rows() * dim];
            let mut fetched = vec![0.0f32; dim];
            let base = part.node_range.start as usize;
            for r in 0..part.local.num_rows() as u32 {
                let v = base + r as usize;
                let row_start = r as usize * dim;
                cached.begin_batch(part.pe);
                // Stage the *next* row's first remote references while this
                // row computes — the value-plane twin of the planner's
                // next-warp `_nbi` prefetch. Sequential within the
                // partition job, so thread count cannot reorder it.
                if prefetch_depth > 0 && r + 1 < part.local.num_rows() as u32 {
                    for rr in part.remote.row(r + 1).iter().take(prefetch_depth as usize) {
                        cached.prefetch(part.pe, rr.owner as usize, rr.local);
                    }
                }
                let mut merged =
                    Vec::with_capacity(part.local.row(r).len() + part.remote.row(r).len());
                merge_by_edge(part.local.row(r), part.remote.row(r), |nb| merged.push(nb));
                for nb in merged {
                    match nb {
                        Neighbor::Local(lr) => {
                            let w = self.weight(v, base + lr.local as usize);
                            let src = region.row(part.pe, lr.local);
                            let dst = &mut out_part[row_start..row_start + dim];
                            for (d, &s) in dst.iter_mut().zip(src) {
                                *d += w * s;
                            }
                        }
                        Neighbor::Remote(rr) => {
                            let owner_base =
                                self.placement.split.range(rr.owner as usize).start;
                            let w = self.weight(v, (owner_base + rr.local) as usize);
                            cached.get_nbi(&mut fetched, part.pe, rr.owner as usize, rr.local)?;
                            let dst = &mut out_part[row_start..row_start + dim];
                            for (d, &s) in dst.iter_mut().zip(fetched.iter()) {
                                *d += w * s;
                            }
                        }
                    }
                }
                cached.quiet(part.pe)?;
                match self.mode {
                    AggregateMode::GcnNorm => {
                        let w = self.norm[v] * self.norm[v];
                        let dst = &mut out_part[row_start..row_start + dim];
                        for (d, &s) in dst.iter_mut().zip(x.row(v)) {
                            *d += w * s;
                        }
                    }
                    AggregateMode::Mean => {
                        let deg = part.local.row(r).len() + part.remote.row(r).len();
                        if deg > 0 {
                            let inv = 1.0 / deg as f32;
                            let dst = &mut out_part[row_start..row_start + dim];
                            for d in dst {
                                *d *= inv;
                            }
                        }
                    }
                    AggregateMode::Sum => {}
                }
            }
            debug_assert!(cached.l2_conserves(), "host tier leaked or double-counted a row");
            debug_assert_eq!(cached.stale_reads(), 0, "a delta bypassed tier invalidation");
            Ok::<_, mgg_shmem::ShmemError>((out_part, cached.stats(), cached.tier_stats()))
        });
        let mut out = Vec::with_capacity(x.rows() * dim);
        let mut stats = CacheStats::default();
        let mut tier = TierStats::default();
        for res in results {
            let (part_out, s, ts) = res?;
            out.extend_from_slice(&part_out);
            stats.merge(&s);
            tier.merge(&ts);
        }
        Ok((Matrix::from_vec(x.rows(), dim, out), stats, tier))
    }

    #[inline]
    fn weight(&self, v: usize, u: usize) -> f32 {
        match self.mode {
            AggregateMode::GcnNorm => self.norm[v] * self.norm[u],
            // Mean divides at the end; Sum uses unit weights.
            AggregateMode::Mean | AggregateMode::Sum => 1.0,
        }
    }
}

/// Pure edge-weighted aggregation (no mode fixups): used by GAT.
impl MggEngine {
    /// Aggregates `x` with per-edge weights indexed by the input graph's
    /// flat adjacency (see `mgg_graph::partition::locality`'s edge ids).
    pub fn aggregate_values_weighted(&self, x: &Matrix, w: &[f32]) -> Matrix {
        let dim = x.cols();
        let region = self.placement.place_embeddings(x);
        let mut out = Matrix::zeros(x.rows(), dim);
        if x.rows() == 0 || dim == 0 {
            return out;
        }
        // Same row-chunk parallel decomposition as `aggregate_values`.
        let chunk_rows = mgg_runtime::chunk_len(x.rows(), MIN_AGG_ROWS_PER_JOB);
        let slices: Vec<&mut [f32]> = out.data_mut().chunks_mut(chunk_rows * dim).collect();
        let region = &region;
        let _lbl = mgg_runtime::profile::region_label("engine.aggregate_weighted");
        mgg_runtime::par_slices_mut(slices, |ci, out_chunk| {
            let first = ci * chunk_rows;
            let mut pi = self.part_of(first);
            for (k, dst) in out_chunk.chunks_mut(dim).enumerate() {
                let v = first + k;
                while self.placement.parts[pi].node_range.end as usize <= v {
                    pi += 1;
                }
                let part = &self.placement.parts[pi];
                let r = (v - part.node_range.start as usize) as u32;
                merge_by_edge(part.local.row(r), part.remote.row(r), |nb| {
                    let (weight, src) = match nb {
                        Neighbor::Local(lr) => {
                            (w[lr.edge as usize], region.row(part.pe, lr.local))
                        }
                        Neighbor::Remote(rr) => {
                            (w[rr.edge as usize], region.row(rr.owner as usize, rr.local))
                        }
                    };
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d += weight * s;
                    }
                });
            }
        });
        out
    }
}

impl mgg_gnn::gat::GatBackend for MggEngine {
    fn attention(&mut self, s_dst: &[f32], s_src: &[f32], slope: f32) -> (Vec<f32>, u64) {
        // Timing: exchanging the scalar neighbor scores is an aggregation
        // pass at dimension 1 (same access pattern, 4-byte rows).
        let ns = self
            .simulate_aggregation_ns(1)
            .expect("MGG launch must be valid for the configured GPU");
        // Functional: leaky-ReLU scores then a per-destination softmax over
        // the union of the row's local and remote entries.
        let num_edges: usize = self
            .placement
            .parts
            .iter()
            .map(|p| p.local.num_entries() + p.remote.num_entries())
            .sum();
        let mut w = vec![0.0f32; num_edges];
        let leaky = |x: f32| if x >= 0.0 { x } else { slope * x };
        for part in &self.placement.parts {
            let base = part.node_range.start as usize;
            for r in 0..part.local.num_rows() as u32 {
                let v = base + r as usize;
                // (edge id, raw score) for every neighbor of v.
                let mut entries: Vec<(u32, f32)> = Vec::with_capacity(
                    part.local.row(r).len() + part.remote.row(r).len(),
                );
                // Edge-order merge keeps the softmax reduction order (and
                // so the weights, bitwise) independent of the node split.
                merge_by_edge(part.local.row(r), part.remote.row(r), |nb| match nb {
                    Neighbor::Local(lr) => {
                        let u = base + lr.local as usize;
                        entries.push((lr.edge, leaky(s_dst[v] + s_src[u])));
                    }
                    Neighbor::Remote(rr) => {
                        let u = (self.placement.split.range(rr.owner as usize).start
                            + rr.local) as usize;
                        entries.push((rr.edge, leaky(s_dst[v] + s_src[u])));
                    }
                });
                if entries.is_empty() {
                    continue;
                }
                let max = entries.iter().map(|&(_, e)| e).fold(f32::NEG_INFINITY, f32::max);
                let mut sum = 0.0f32;
                for (_, e) in entries.iter_mut() {
                    *e = (*e - max).exp();
                    sum += *e;
                }
                for (edge, e) in entries {
                    w[edge as usize] = if sum > 0.0 { e / sum } else { 0.0 };
                }
            }
        }
        (w, ns)
    }

    fn aggregate_weighted(&mut self, x: &Matrix, w: &[f32]) -> (Matrix, u64) {
        let ns = self
            .simulate_aggregation_ns(x.cols())
            .expect("MGG launch must be valid for the configured GPU");
        (self.aggregate_values_weighted(x, w), ns)
    }
}

impl Aggregator for MggEngine {
    fn aggregate(&mut self, x: &Matrix) -> (Matrix, u64) {
        let ns = self
            .simulate_aggregation_ns(x.cols())
            .expect("MGG launch must be valid for the configured GPU");
        (self.aggregate_values(x), ns)
    }

    fn aggregate_only(&mut self, x: &Matrix) -> Matrix {
        self.aggregate_values(x)
    }

    fn mode(&self) -> AggregateMode {
        self.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgg_gnn::reference::aggregate;
    use mgg_graph::generators::rmat::{rmat, RmatConfig};

    fn graph() -> CsrGraph {
        rmat(&RmatConfig::graph500(9, 5_000, 29))
    }

    fn features(n: usize, dim: usize) -> Matrix {
        Matrix::from_vec(n, dim, (0..n * dim).map(|i| ((i % 13) as f32) - 6.0).collect())
    }

    #[test]
    fn values_match_reference_all_modes() {
        let g = graph();
        let x = features(g.num_nodes(), 17);
        for mode in [AggregateMode::Sum, AggregateMode::Mean, AggregateMode::GcnNorm] {
            let engine =
                MggEngine::new(&g, ClusterSpec::dgx_a100(4), MggConfig::default_fixed(), mode);
            let got = engine.aggregate_values(&x);
            let want = aggregate(&g, &x, mode);
            assert!(
                got.max_abs_diff(&want) < 1e-3,
                "mode {mode:?}: diff {}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn values_independent_of_config_and_gpus() {
        let g = graph();
        let x = features(g.num_nodes(), 8);
        let base = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(2),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        )
        .aggregate_values(&x);
        for gpus in [1, 4, 8] {
            for cfg in [MggConfig { ps: 1, dist: 1, wpb: 1 }, MggConfig { ps: 32, dist: 16, wpb: 16 }] {
                let engine =
                    MggEngine::new(&g, ClusterSpec::dgx_a100(gpus), cfg, AggregateMode::Sum);
                let got = engine.aggregate_values(&x);
                assert!(got.max_abs_diff(&base) < 1e-3, "gpus={gpus} cfg={cfg}");
            }
        }
    }

    #[test]
    fn simulation_time_positive_and_deterministic() {
        let g = graph();
        let mut e1 = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let mut e2 = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let t1 = e1.simulate_aggregation_ns(64).unwrap();
        let t2 = e2.simulate_aggregation_ns(64).unwrap();
        assert!(t1 > 0);
        assert_eq!(t1, t2);
    }

    #[test]
    fn repeated_simulation_is_stable() {
        // Channel state must be reset between measurements.
        let g = graph();
        let mut e = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let a = e.simulate_aggregation_ns(64).unwrap();
        let b = e.simulate_aggregation_ns(64).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn set_config_rebuilds_plans() {
        let g = graph();
        let mut e = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(2),
            MggConfig { ps: 32, dist: 1, wpb: 1 },
            AggregateMode::Sum,
        );
        let coarse: usize = e.plans.iter().map(|p| p.lnps.len() + p.rnps.len()).sum();
        e.set_config(MggConfig { ps: 2, dist: 1, wpb: 1 }).unwrap();
        let fine: usize = e.plans.iter().map(|p| p.lnps.len() + p.rnps.len()).sum();
        assert!(fine > coarse);
    }

    #[test]
    fn quiet_faults_leave_engine_bit_identical() {
        let g = graph();
        let x = features(g.num_nodes(), 16);
        let mut plain = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let mut faulty = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        faulty.install_faults(mgg_fault::FaultSpec::quiet()).unwrap();
        assert_eq!(faulty.recovery_action(), RecoveryAction::None);
        let a = plain.simulate_aggregation(64).unwrap();
        let b = faulty.simulate_aggregation(64).unwrap();
        assert_eq!(a, b, "quiet fault spec must not perturb timing");
        let (va, _) = plain.aggregate_values_resilient(&x).unwrap();
        let vb = faulty.aggregate_values(&x);
        assert_eq!(va.data(), vb.data(), "quiet faults must not perturb values");
    }

    #[test]
    fn degraded_link_triggers_replan_and_keeps_values_exact() {
        let g = graph();
        let x = features(g.num_nodes(), 16);
        let mut e = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::GcnNorm,
        );
        let spec = mgg_fault::FaultSpec { seed: 42, link_degrade: 0.5, ..Default::default() };
        e.install_faults(spec).unwrap();
        assert_eq!(e.recovery_action(), RecoveryAction::Rebalance);
        let stats = e.simulate_aggregation(64).unwrap();
        assert_eq!(stats.recovery.replans, 1);
        assert!(stats.recovery.recovery_latency_ns > 0);
        // Re-planning moves work, never values.
        let got = e.aggregate_values(&x);
        let want = aggregate(&g, &x, AggregateMode::GcnNorm);
        assert!(got.max_abs_diff(&want) < 1e-3);
        // Second run is on the recovered placement: no further replans.
        let again = e.simulate_aggregation(64).unwrap();
        assert_eq!(again.recovery.replans, 0);
    }

    #[test]
    fn severe_degradation_recommends_uvm_fallback() {
        let g = graph();
        let mut e = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let spec = mgg_fault::FaultSpec { seed: 7, link_degrade: 0.1, ..Default::default() };
        e.install_faults(spec).unwrap();
        assert_eq!(e.recovery_action(), RecoveryAction::UvmFallback);
        let stats = e.simulate_aggregation(32).unwrap();
        assert_eq!(stats.recovery.uvm_fallbacks, 1);
        e.clear_faults();
        assert_eq!(e.recovery_action(), RecoveryAction::None);
    }

    #[test]
    fn dropped_gets_recover_with_exact_values() {
        let g = graph();
        let x = features(g.num_nodes(), 8);
        let mut e = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        e.install_faults(mgg_fault::FaultSpec {
            seed: 3,
            drop_rate: 0.2,
            ..Default::default()
        })
        .unwrap();
        let stats = e.simulate_aggregation(32).unwrap();
        assert!(stats.recovery.retried_gets > 0, "drop rate 0.2 must hit some gets");
        let (got, rstats) = e.aggregate_values_resilient(&x).unwrap();
        assert!(rstats.retries > 0);
        let want = aggregate(&g, &x, AggregateMode::Sum);
        assert!(got.max_abs_diff(&want) < 1e-3, "recovered values must stay exact");
    }

    #[test]
    fn invalid_config_and_spec_are_reported_not_panicked() {
        let g = graph();
        let bad = MggConfig { ps: 4, dist: 0, wpb: 1 };
        match MggEngine::try_new(&g, ClusterSpec::dgx_a100(2), bad, AggregateMode::Sum) {
            Err(MggError::InvalidConfig(_)) => {}
            Err(e) => panic!("wrong error: {e}"),
            Ok(_) => panic!("dist=0 must be rejected"),
        }
        let mut e = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(2),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let err = e
            .install_faults(mgg_fault::FaultSpec { drop_rate: 1.5, ..Default::default() })
            .unwrap_err();
        assert!(matches!(err, MggError::InvalidFaultSpec(_)));
    }

    #[test]
    fn telemetry_does_not_change_kernel_stats() {
        let g = graph();
        let mut plain = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let tel = Telemetry::enabled();
        let mut instrumented = MggEngine::try_new_with_telemetry(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
            tel.clone(),
        )
        .unwrap();
        let a = plain.simulate_aggregation(64).unwrap();
        let b = instrumented.simulate_aggregation(64).unwrap();
        assert_eq!(a, b, "telemetry must not perturb the simulation");

        let snap = tel.snapshot();
        let names: Vec<&str> = snap.spans.iter().map(|s| s.name.as_str()).collect();
        for phase in ["partition", "plan", "launch", "aggregate", "barrier"] {
            assert!(names.contains(&phase), "missing phase {phase}: {names:?}");
        }
        let p = snap.pipeline.expect("pipeline metrics recorded");
        assert_eq!(p.makespan_ns, a.makespan_ns());
        assert!(
            p.overlap_efficiency > 0.0,
            "the async pipeline must hide some remote-wire time"
        );
        assert!(!p.pair_traffic.is_empty());
        assert!(!tel.trace_events().is_empty());
    }

    #[test]
    fn traced_simulation_matches_untraced() {
        let g = graph();
        let mk = || {
            MggEngine::new(
                &g,
                ClusterSpec::dgx_a100(4),
                MggConfig::default_fixed(),
                AggregateMode::Sum,
            )
        };
        let plain = mk().simulate_aggregation(64).unwrap();
        let mut traced_engine = mk();
        let (traced, events) = traced_engine.simulate_aggregation_traced(64).unwrap();
        assert_eq!(plain, traced);
        assert!(!events.is_empty());
        // Every GPU contributed events, and the engine kept the trace.
        for g in 0..4u16 {
            assert!(events.iter().any(|e| e.gpu == g), "gpu {g} missing from trace");
        }
        assert_eq!(traced_engine.last_trace.as_deref(), Some(&events[..]));
    }

    #[test]
    fn recovery_is_recorded_as_a_phase() {
        let g = graph();
        let tel = Telemetry::enabled();
        let mut e = MggEngine::try_new_with_telemetry(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
            tel.clone(),
        )
        .unwrap();
        let spec = mgg_fault::FaultSpec { seed: 42, link_degrade: 0.5, ..Default::default() };
        e.install_faults(spec).unwrap();
        let stats = e.simulate_aggregation(64).unwrap();
        assert_eq!(stats.recovery.replans, 1);
        let snap = tel.snapshot();
        assert!(snap.spans.iter().any(|s| s.name == "recover"));
        assert_eq!(tel.counter_value("engine.replans"), 1);
        let p = snap.pipeline.expect("pipeline recorded");
        assert_eq!(p.recovery.replans, 1);
    }

    #[test]
    fn values_are_bit_identical_across_splits() {
        // The edge-order merge makes aggregation split-invariant *bitwise*,
        // not just within tolerance — the guarantee evacuation relies on.
        let g = graph();
        let x = features(g.num_nodes(), 8);
        let base = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(1),
            MggConfig::default_fixed(),
            AggregateMode::GcnNorm,
        )
        .aggregate_values(&x);
        for gpus in [2, 3, 4, 8] {
            let engine = MggEngine::new(
                &g,
                ClusterSpec::dgx_a100(gpus),
                MggConfig::default_fixed(),
                AggregateMode::GcnNorm,
            );
            let got = engine.aggregate_values(&x);
            assert_eq!(got.data(), base.data(), "split over {gpus} GPUs changed bits");
        }
    }

    #[test]
    fn dead_gpu_is_evacuated_and_values_survive_bit_exact() {
        let g = graph();
        let x = features(g.num_nodes(), 16);
        let mut e = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let healthy = e.aggregate_values(&x);
        e.install_fault_schedule(FaultSchedule::gpu_failure(4, 2, 2_000));
        assert_eq!(e.recovery_action(), RecoveryAction::Evacuate);
        let stats = e.simulate_aggregation(32).unwrap();
        assert_eq!(stats.recovery.evacuations, 1);
        assert_eq!(stats.recovery.replans, 1);
        assert!(stats.recovery.recovery_latency_ns >= 2_000, "detection must be charged");
        // The dead GPU owns nothing after evacuation.
        assert_eq!(e.placement.split.part_nodes(2), 0);
        // The recovered placement reproduces the healthy floats exactly.
        let recovered = e.aggregate_values(&x);
        assert_eq!(recovered.data(), healthy.data());
        // Second simulation runs on the recovered placement: no re-recovery.
        let again = e.simulate_aggregation(32).unwrap();
        assert_eq!(again.recovery.evacuations, 0);
        assert_eq!(again.recovery.replans, 0);
    }

    #[test]
    fn dead_link_gets_a_relay_route() {
        let g = graph();
        let mut e = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        e.install_fault_schedule(FaultSchedule::link_down(4, 0, 1, 500));
        assert_eq!(e.recovery_action(), RecoveryAction::Reroute);
        let report = e.recover(32).unwrap();
        assert_eq!(report.action, RecoveryAction::Reroute);
        assert_eq!(report.routes_installed, 1);
        assert_eq!(report.evacuated_gpus, 0);
        let stats = e.simulate_aggregation(32).unwrap();
        assert!(
            stats.recovery.rerouted_transfers > 0,
            "traffic between the pair must relay around the dead link"
        );
        assert_eq!(stats.recovery.evacuations, 0);
    }

    #[test]
    fn overflowing_evacuation_degrades_to_uvm() {
        let g = graph();
        let mut spec = ClusterSpec::dgx_a100(4);
        // Device memory too small for three survivors to absorb the
        // evacuated shard under the headroom rule.
        spec.gpu.dram_bytes = 32 * 1024;
        let mut e = MggEngine::new(&g, spec, MggConfig::default_fixed(), AggregateMode::Sum);
        e.install_fault_schedule(FaultSchedule::gpu_failure(4, 1, 1_000));
        let stats = e.simulate_aggregation(32).unwrap();
        assert_eq!(stats.recovery.uvm_fallbacks, 1);
        assert!(e.cluster.ic.uvm_degraded(), "the interconnect must actually degrade");
        assert!(
            stats.recovery.host_staged_transfers > 0,
            "degraded mode stages every fabric transfer through the host"
        );
    }

    #[test]
    fn losing_every_gpu_is_unrecoverable_not_a_hang() {
        let g = graph();
        let mut e = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(2),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let sched = FaultSchedule::gpu_failure(2, 0, 1_000).with_permanent(
            mgg_fault::PermanentFault::GpuFailure { gpu: 1, at_ns: 1_500 },
        );
        e.install_fault_schedule(sched);
        match e.simulate_aggregation(32) {
            Err(MggError::Unrecoverable(msg)) => {
                assert!(msg.contains("dead"), "{msg}");
            }
            other => panic!("expected Unrecoverable, got {other:?}"),
        }
    }

    #[test]
    fn checkpoint_resume_restores_placement_and_features() {
        let g = graph();
        let x = features(g.num_nodes(), 8);
        let mut e = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let agg = e.aggregate_values(&x);
        let ckpt = e.checkpoint(3, &agg);
        assert!(ckpt.is_valid());

        // A corrupted checkpoint is a typed error, not silent wrong data.
        let mut bad = ckpt.clone();
        bad.features[0] += 1.0;
        assert!(matches!(e.resume(&bad), Err(MggError::Unrecoverable(_))));

        // Fail GPU 0, recover (placement changes), then resume from the
        // checkpoint: the pre-failure placement and features come back.
        e.install_fault_schedule(FaultSchedule::gpu_failure(4, 0, 1_000));
        e.simulate_aggregation(8).unwrap();
        assert_eq!(e.placement.split.part_nodes(0), 0);
        e.clear_faults();
        let restored = e.resume(&ckpt).unwrap();
        assert_eq!(restored.data(), agg.data());
        assert!(e.placement.split.part_nodes(0) > 0, "bounds restored from checkpoint");
        let stats = e.simulate_aggregation(8).unwrap();
        assert_eq!(stats.recovery.checkpoint_restores, 1);
        assert!(stats.recovery.recovery_latency_ns > 0, "restore transfer must be charged");
        // One-shot: the next run is clean.
        let again = e.simulate_aggregation(8).unwrap();
        assert_eq!(again.recovery.checkpoint_restores, 0);
    }

    #[test]
    fn aggregator_trait_roundtrip() {
        let g = graph();
        let x = features(g.num_nodes(), 16);
        let mut e = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::GcnNorm,
        );
        let (vals, ns) = e.aggregate(&x);
        assert!(ns > 0);
        let want = aggregate(&g, &x, AggregateMode::GcnNorm);
        assert!(vals.max_abs_diff(&want) < 1e-3);
    }

    #[test]
    fn cached_values_are_bit_identical_to_uncached() {
        let g = graph();
        let x = features(g.num_nodes(), 16);
        for mode in [AggregateMode::Sum, AggregateMode::Mean, AggregateMode::GcnNorm] {
            let mut engine =
                MggEngine::new(&g, ClusterSpec::dgx_a100(4), MggConfig::default_fixed(), mode);
            engine.set_cache(Some(CacheConfig::from_mb(4)));
            let want = engine.aggregate_values(&x);
            let (got, stats) = engine.aggregate_values_cached(&x).unwrap();
            assert_eq!(got.data(), want.data(), "mode {mode:?} must be bit-identical");
            assert!(stats.hits > 0, "the reuse pattern must produce hits");
        }
    }

    #[test]
    fn cache_makes_the_simulated_kernel_faster() {
        let g = graph();
        let mk = |cache: Option<CacheConfig>| {
            let mut e = MggEngine::new(
                &g,
                ClusterSpec::dgx_a100(4),
                MggConfig::default_fixed(),
                AggregateMode::Sum,
            );
            e.set_cache(cache);
            let stats = e.simulate_aggregation(64).unwrap();
            (stats.makespan_ns(), stats.cache, stats.traffic.remote_bytes())
        };
        let (base_ns, base_cache, base_bytes) = mk(None);
        let (cached_ns, cached_cache, cached_bytes) = mk(Some(CacheConfig::from_mb(16)));
        assert_eq!(base_cache, mgg_cache::CacheStats::default());
        assert!(cached_cache.hits > 0, "expected hits: {cached_cache:?}");
        assert!(
            cached_bytes < base_bytes,
            "hits must come off the fabric ({cached_bytes} vs {base_bytes})"
        );
        assert!(
            cached_ns < base_ns,
            "cache must shorten the kernel ({cached_ns} vs {base_ns})"
        );
    }

    #[test]
    fn tiered_values_are_bit_identical_to_uncached() {
        let g = graph();
        let x = features(g.num_nodes(), 16);
        for mode in [AggregateMode::Sum, AggregateMode::Mean, AggregateMode::GcnNorm] {
            let mut engine =
                MggEngine::new(&g, ClusterSpec::dgx_a100(4), MggConfig::default_fixed(), mode);
            // Tiny L1 (32 rows at dim 16) so the host tier and prefetcher
            // actually carry load.
            engine.set_cache(Some(CacheConfig {
                capacity_bytes: 2048,
                policy: mgg_cache::CachePolicy::Lru,
            }));
            engine.set_cache_l2(Some(CacheConfig::from_mb(16)));
            engine.set_prefetch_depth(4);
            let want = engine.aggregate_values(&x);
            let (got, _, tier) = engine.aggregate_values_tiered(&x).unwrap();
            assert_eq!(got.data(), want.data(), "mode {mode:?} must be bit-identical");
            assert!(tier.demotions > 0, "undersized L1 must demote: {tier:?}");
        }
    }

    #[test]
    fn tiering_and_prefetch_shorten_the_simulated_kernel() {
        // Big enough for fabric pressure: the host tier's win is relieving
        // per-GET scheduler occupancy and remote-HBM/port contention, not
        // unloaded latency (PCIe is *slower* than NVSwitch per access).
        let g = rmat(&RmatConfig::graph500(12, 60_000, 7));
        // Undersized L1 (512 rows at dim 64) so evictions and L2 traffic
        // happen; warm residency across two layers.
        let l1 = CacheConfig { capacity_bytes: 1 << 17, policy: mgg_cache::CachePolicy::Lru };
        let mk = |l2: Option<CacheConfig>, depth: u32| {
            let mut e = MggEngine::new(
                &g,
                ClusterSpec::dgx_a100(8),
                MggConfig::default_fixed(),
                AggregateMode::Sum,
            );
            e.set_cache(Some(l1));
            e.set_cache_l2(l2);
            e.set_prefetch_depth(depth);
            let a = e.simulate_aggregation(64).unwrap();
            let b = e.simulate_aggregation(64).unwrap();
            (a.makespan_ns() + b.makespan_ns(), b.cache, e.last_tier_stats())
        };
        let (base_ns, base_cache, base_tier) = mk(None, 0);
        assert_eq!(base_tier, TierStats::default());
        // L2 alone leaves the L1 counters untouched: an L2 hit is still an
        // L1 miss there, so committed single-tier baselines stay valid.
        let (l2_ns, l2_cache, l2_tier) = mk(Some(CacheConfig::from_mb(64)), 0);
        assert_eq!(base_cache, l2_cache, "L1 counters must be L2-invariant");
        assert!(l2_tier.l2_hits > 0, "expected L2 traffic: {l2_tier:?}");
        assert!(l2_ns < base_ns, "host tier must shorten the kernel ({l2_ns} vs {base_ns})");
        // Prefetch on top converts some demand misses into planned hits.
        let (pf_ns, _, pf_tier) = mk(Some(CacheConfig::from_mb(64)), 4);
        assert!(pf_tier.prefetch_issued > 0);
        assert!(
            pf_ns <= l2_ns,
            "prefetch must not slow the tiered kernel ({pf_ns} vs {l2_ns})"
        );
    }

    #[test]
    fn disabling_the_tier_restores_the_untiered_kernel_exactly() {
        let g = graph();
        let mut e = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        e.set_cache(Some(CacheConfig::from_mb(8)));
        let want = e.simulate_aggregation(64).unwrap();
        e.set_cache_l2(Some(CacheConfig::from_mb(32)));
        e.set_prefetch_depth(8);
        e.simulate_aggregation(64).unwrap();
        e.set_cache_l2(None);
        e.set_prefetch_depth(0);
        let back = e.simulate_aggregation(64).unwrap();
        assert_eq!(back.makespan_ns(), want.makespan_ns(), "lowering must be byte-identical");
        assert_eq!(back.cache, want.cache);
        assert_eq!(e.last_tier_stats(), TierStats::default());
    }

    #[test]
    fn cache_residency_persists_across_layers() {
        let g = graph();
        let mut e = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        e.set_cache(Some(CacheConfig::from_mb(64)));
        let first = e.simulate_aggregation(64).unwrap().cache;
        let second = e.simulate_aggregation(64).unwrap().cache;
        assert!(
            second.misses < first.misses,
            "layer 2 must reuse layer 1's residency ({second:?} vs {first:?})"
        );
        assert!(second.hit_rate() > first.hit_rate());
    }

    #[test]
    fn cache_simulation_is_deterministic() {
        let g = graph();
        let run = || {
            let mut e = MggEngine::new(
                &g,
                ClusterSpec::dgx_a100(4),
                MggConfig::default_fixed(),
                AggregateMode::Sum,
            );
            e.set_cache(Some(CacheConfig::from_mb(8)));
            let a = e.simulate_aggregation(64).unwrap();
            let b = e.simulate_aggregation(64).unwrap();
            (a.makespan_ns(), a.cache, b.makespan_ns(), b.cache)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn replanning_flushes_the_cache() {
        let g = graph();
        let mut e = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        e.set_cache(Some(CacheConfig::from_mb(64)));
        e.simulate_aggregation(64).unwrap();
        assert!(e.cache_stats().misses > 0);
        // A degraded GPU triggers the health-weighted replan, which
        // re-maps (PE, row) addresses: the next run must start cold, i.e.
        // its misses include all first-touches again.
        let warm_misses = e.simulate_aggregation(64).unwrap().cache.misses;
        e.install_faults(mgg_fault::FaultSpec {
            seed: 42,
            link_degrade: 0.5,
            ..Default::default()
        })
        .unwrap();
        let after_replan = e.simulate_aggregation(64).unwrap().cache;
        assert!(
            after_replan.misses > warm_misses,
            "cold restart expected after replan ({after_replan:?} vs warm {warm_misses})"
        );
        // Values stay exact through all of it.
        let x = features(g.num_nodes(), 16);
        let (got, _) = e.aggregate_values_cached(&x).unwrap();
        assert_eq!(got.data(), e.aggregate_values(&x).data());
    }

    #[test]
    fn graph_deltas_apply_and_values_match_reference() {
        let g = graph();
        let deltas = vec![
            GraphDelta::EdgeInsert { src: 3, dst: 200 },
            GraphDelta::FeatureUpdate { node: 7 },
            GraphDelta::NodeRemove { node: 11 },
            GraphDelta::NodeInsert { neighbors: vec![1, 5, 9] },
            GraphDelta::EdgeRemove { src: 3, dst: 200 },
        ];
        let (g2, _) = apply_deltas(&g, &deltas).unwrap();
        let x2 = features(g2.num_nodes(), 16);
        for mode in [AggregateMode::Sum, AggregateMode::GcnNorm] {
            let mut e =
                MggEngine::new(&g, ClusterSpec::dgx_a100(4), MggConfig::default_fixed(), mode);
            let report = e.apply_graph_deltas(&deltas).unwrap();
            assert_eq!(report.applied, 5);
            assert_eq!(report.inserted_nodes, 1);
            assert_eq!(report.removed_nodes, 1);
            assert_eq!(e.graph().num_nodes(), g2.num_nodes());
            // The post-fence engine computes on the mutated graph — same
            // values as an engine built from it directly (GcnNorm checks
            // the degree-dependent norm recompute too).
            let got = e.aggregate_values(&x2);
            let want = aggregate(&g2, &x2, mode);
            assert!(
                got.max_abs_diff(&want) < 1e-3,
                "mode {mode:?}: post-churn diff {}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn delta_fence_invalidates_exactly_the_affected_rows() {
        let g = graph();
        let mut e = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        e.set_cache(Some(CacheConfig::from_mb(64)));
        e.simulate_aggregation(64).unwrap();
        let warm_misses = e.simulate_aggregation(64).unwrap().cache.misses;
        // Feature-update a handful of rows: only those rows' cache
        // entries drop, so the next run is nearly as warm as before (a
        // full flush would re-miss every first touch).
        let deltas: Vec<GraphDelta> =
            (0..8).map(|i| GraphDelta::FeatureUpdate { node: i * 31 }).collect();
        let report = e.apply_graph_deltas(&deltas).unwrap();
        assert_eq!(report.affected_rows, 8);
        assert!(
            report.invalidated <= 8 * 4,
            "at most one entry per affected row per GPU cache ({report:?})"
        );
        let after = e.simulate_aggregation(64).unwrap().cache.misses;
        assert!(
            after <= warm_misses + 8 * 4,
            "targeted invalidation must not cold-start the cache \
             ({after} misses vs warm {warm_misses})"
        );
        assert_eq!(e.stale_reads(), 0, "versioned accesses must never see a stale row");
    }

    #[test]
    fn node_insert_extends_the_split_without_replanning() {
        let g = graph();
        let mut e = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let before = e.placement.split.bounds().to_vec();
        e.apply_graph_deltas(&[
            GraphDelta::NodeInsert { neighbors: vec![0] },
            GraphDelta::NodeInsert { neighbors: vec![2, 4] },
        ])
        .unwrap();
        let after = e.placement.split.bounds().to_vec();
        assert_eq!(after.len(), before.len());
        assert_eq!(&after[..after.len() - 1], &before[..before.len() - 1],
            "interior bounds must survive a node insert");
        assert_eq!(*after.last().unwrap(), *before.last().unwrap() + 2);
    }

    #[test]
    fn invalid_delta_batch_is_rejected_transactionally() {
        let g = graph();
        let n = g.num_nodes();
        let mut e = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let err = e
            .apply_graph_deltas(&[
                GraphDelta::EdgeInsert { src: 0, dst: 1 },
                GraphDelta::FeatureUpdate { node: n as u32 + 5 },
            ])
            .unwrap_err();
        assert!(matches!(err, MggError::InvalidDelta(_)), "{err:?}");
        assert_eq!(e.graph().num_nodes(), n, "a rejected batch must change nothing");
        assert_eq!(e.graph().num_edges(), g.num_edges());
    }

    #[test]
    fn drain_leave_join_cycle_is_loss_free_and_cost_charged() {
        let g = graph();
        let x = features(g.num_nodes(), 16);
        let mut e = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let healthy = e.aggregate_values(&x);
        let report = e.drain_shard(2, 16).unwrap();
        assert!(report.rows_moved > 0);
        assert!(report.migration_ns > 0);
        assert_eq!(report.admin_down, 1);
        assert_eq!(e.placement.split.part_nodes(2), 0, "drained shard owns nothing");
        assert_eq!(e.admin_down(), vec![2]);
        // Planned migration: values survive bit-exact, and the migration
        // cost lands on the next simulation's recovery ledger.
        assert_eq!(e.aggregate_values(&x).data(), healthy.data());
        let stats = e.simulate_aggregation(16).unwrap();
        assert!(stats.recovery.recovery_latency_ns >= report.migration_ns);
        // Drain is idempotent.
        assert_eq!(e.drain_shard(2, 16).unwrap().rows_moved, 0);
        // Re-join moves rows back; values still exact.
        let back = e.rejoin_shard(2, 16).unwrap();
        assert!(back.rows_moved > 0);
        assert_eq!(back.admin_down, 0);
        assert!(e.placement.split.part_nodes(2) > 0, "re-joined shard owns rows again");
        assert_eq!(e.aggregate_values(&x).data(), healthy.data());
    }

    #[test]
    fn membership_gates_refuse_unsafe_changes() {
        let g = graph();
        let mut e = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(2),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        // Dead shards may not re-join.
        e.install_fault_schedule(FaultSchedule::gpu_failure(2, 1, 1_000));
        e.drain_shard(1, 16).unwrap_or_else(|_| MembershipReport::default());
        match e.rejoin_shard(1, 16) {
            Err(MggError::MembershipRejected(msg)) => assert!(msg.contains("dead"), "{msg}"),
            other => panic!("expected MembershipRejected, got {other:?}"),
        }
        // Draining the last live shard is refused.
        match e.drain_shard(0, 16) {
            Err(MggError::MembershipRejected(msg)) => {
                assert!(msg.contains("no shard"), "{msg}")
            }
            other => panic!("expected MembershipRejected, got {other:?}"),
        }
        // Nonexistent shards are typed errors, not panics.
        assert!(matches!(
            e.rejoin_shard(7, 16),
            Err(MggError::MembershipRejected(_))
        ));
    }

    #[test]
    fn invalidation_audit_every_replan_path_starts_cold() {
        // The invalidation audit: every path that re-maps (PE, row)
        // addresses — set_config(ps), resume, recover, drain — must leave
        // the cache cold (first-touch misses reappear), while a fence
        // that touches nothing keeps it warm.
        let g = graph();
        let x = features(g.num_nodes(), 8);
        let cold_misses = {
            let mut e = MggEngine::new(
                &g,
                ClusterSpec::dgx_a100(4),
                MggConfig::default_fixed(),
                AggregateMode::Sum,
            );
            e.set_cache(Some(CacheConfig::from_mb(64)));
            e.simulate_aggregation(32).unwrap().cache.misses
        };
        let run_after = |prep: &dyn Fn(&mut MggEngine)| {
            let mut e = MggEngine::new(
                &g,
                ClusterSpec::dgx_a100(4),
                MggConfig::default_fixed(),
                AggregateMode::Sum,
            );
            e.set_cache(Some(CacheConfig::from_mb(64)));
            e.simulate_aggregation(32).unwrap();
            prep(&mut e);
            e.simulate_aggregation(32).unwrap().cache.misses
        };
        let warm = run_after(&|_| {});
        assert!(warm < cold_misses / 2, "baseline: second run must be warm");
        let after_set_config = run_after(&|e| {
            let mut cfg = e.config();
            cfg.ps = if cfg.ps == 16 { 32 } else { 16 };
            e.set_config(cfg).unwrap();
        });
        // ps changes the warp layout and so the access stream; cold-start
        // means misses rebound to at least the cold first-touch count of
        // the *new* stream — conservatively, well above the warm count.
        assert!(after_set_config > warm, "set_config(ps) must flush");
        let after_resume = run_after(&|e| {
            let ckpt = e.checkpoint(1, &x);
            e.resume(&ckpt).unwrap();
        });
        assert!(after_resume >= cold_misses, "resume must flush");
        let after_recover = run_after(&|e| {
            e.install_fault_schedule(FaultSchedule::link_down(4, 0, 1, 500));
            e.recover(32).unwrap();
        });
        assert!(after_recover >= cold_misses, "recover must flush even reroute-only");
        let after_drain = run_after(&|e| {
            e.drain_shard(3, 32).unwrap();
        });
        assert!(after_drain >= warm, "drain re-maps addresses and must not serve stale rows");
    }
}

#[cfg(test)]
mod gat_tests {
    use super::*;
    use mgg_gnn::gat::{Gat, GatBackend, ReferenceGatBackend};
    use mgg_graph::generators::rmat::{rmat, RmatConfig};

    #[test]
    fn weighted_aggregation_matches_reference() {
        let g = rmat(&RmatConfig::graph500(9, 4_000, 77));
        let x = Matrix::glorot(g.num_nodes(), 9, 1);
        let w: Vec<f32> = (0..g.num_edges()).map(|i| ((i % 11) as f32) / 10.0).collect();
        let engine = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let got = engine.aggregate_values_weighted(&x, &w);
        let want = mgg_gnn::reference::aggregate_edge_weighted(&g, &x, &w);
        assert!(got.max_abs_diff(&want) < 1e-4, "diff {}", got.max_abs_diff(&want));
    }

    #[test]
    fn gat_forward_matches_reference_backend() {
        let g = rmat(&RmatConfig::graph500(8, 2_000, 79));
        let x = Matrix::glorot(g.num_nodes(), 10, 3);
        let model = Gat::new(10, 6, 4, 5);

        let mut reference = ReferenceGatBackend { graph: g.clone() };
        let (want, _) = model.forward(&mut reference, &x);

        let mut engine = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let (got, timings) = model.forward(&mut engine, &x);
        assert!(got.max_abs_diff(&want) < 1e-3, "diff {}", got.max_abs_diff(&want));
        assert!(timings.iter().all(|t| t.attention_ns > 0 && t.aggregate_ns > 0));
        // The scalar score exchange must be far cheaper than the
        // hidden-width aggregation.
        assert!(timings[0].attention_ns < timings[0].aggregate_ns);
    }

    #[test]
    fn mgg_attention_weights_match_reference() {
        let g = rmat(&RmatConfig::graph500(8, 2_000, 83));
        let n = g.num_nodes();
        let s_dst: Vec<f32> = (0..n).map(|i| ((i * 7) % 13) as f32 / 13.0 - 0.5).collect();
        let s_src: Vec<f32> = (0..n).map(|i| ((i * 3) % 5) as f32 / 5.0).collect();
        let mut engine = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(3),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let (got, _) = engine.attention(&s_dst, &s_src, 0.2);
        let want = mgg_gnn::gat::reference_attention(&g, &s_dst, &s_src, 0.2);
        let diff = got
            .iter()
            .zip(&want)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(diff < 1e-5, "max weight diff {diff}");
    }

}
