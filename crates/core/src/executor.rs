//! The end-to-end MGG execution engine.
//!
//! Combines placement, workload management, the pipelined kernel and the
//! simulated cluster into an [`Aggregator`] that GNN models consume:
//! functional outputs match the CPU reference (up to floating-point
//! reassociation) while timing comes from the discrete-event simulation.

use mgg_fault::{FaultSchedule, FaultSpec};
use mgg_gnn::models::Aggregator;
use mgg_gnn::reference::AggregateMode;
use mgg_gnn::Matrix;
use mgg_graph::{CsrGraph, NodeSplit};
use mgg_shmem::resilience::{ResilienceStats, ResilientRegion};
use mgg_sim::{Cluster, ClusterSpec, GpuSim, KernelStats, NoPaging, SimTime, TraceEvent};
use mgg_telemetry::{PipelineMetrics, Telemetry};

use crate::config::MggConfig;
use crate::error::MggError;
use crate::kernel::{KernelVariant, MggKernel};
use crate::mapping::MappingMode;
use crate::model::AnalyticalModel;
use crate::placement::HybridPlacement;
use crate::workload::{build_plans, WorkPlan};

/// Below this per-GPU health the engine re-plans placement around the
/// impaired GPU instead of riding out the degradation.
const REPLAN_HEALTH_THRESHOLD: f64 = 0.9;

/// Below this health the degradation is severe enough that the engine also
/// recommends abandoning peer-to-peer access for the UVM path.
const UVM_FALLBACK_HEALTH_THRESHOLD: f64 = 0.25;

/// What the engine decided to do about an installed fault scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Faults (if any) are mild: retries and timeouts absorb them.
    None,
    /// Re-balance the impaired GPUs' share of the workload.
    Rebalance,
    /// Degradation is severe: re-balance, and recommend the UVM path.
    UvmFallback,
}

/// The MGG multi-GPU aggregation engine.
pub struct MggEngine {
    pub cluster: Cluster,
    pub placement: HybridPlacement,
    pub plans: Vec<WorkPlan>,
    config: MggConfig,
    pub variant: KernelVariant,
    pub mapping: MappingMode,
    mode: AggregateMode,
    /// Global GCN normalization coefficients (empty for other modes).
    norm: Vec<f32>,
    /// The input graph, kept for fault-driven re-planning.
    graph: CsrGraph,
    /// True once placement has been re-planned around the current faults.
    replanned: bool,
    /// Statistics of the most recent simulated kernel.
    pub last_stats: Option<KernelStats>,
    /// Warp trace of the most recent simulated kernel, when it was traced.
    pub last_trace: Option<Vec<TraceEvent>>,
    /// Telemetry sink for engine phases and counters (disabled by default,
    /// in which case every recording call is a no-op).
    telemetry: Telemetry,
}

impl MggEngine {
    /// Builds the engine with MGG's defaults (edge-balanced split, async
    /// pipelined kernel, interleaved mapping). Panics on an invalid
    /// configuration; use [`MggEngine::try_new`] to handle it.
    pub fn new(
        graph: &CsrGraph,
        spec: ClusterSpec,
        config: MggConfig,
        mode: AggregateMode,
    ) -> Self {
        Self::try_new(graph, spec, config, mode).expect("invalid MGG configuration")
    }

    /// Fallible [`MggEngine::new`].
    pub fn try_new(
        graph: &CsrGraph,
        spec: ClusterSpec,
        config: MggConfig,
        mode: AggregateMode,
    ) -> Result<Self, MggError> {
        let placement = HybridPlacement::plan(graph, spec.num_gpus);
        Self::with_placement(graph, spec, placement, config, mode)
    }

    /// [`MggEngine::try_new`] with a telemetry sink attached from the
    /// start, so the `partition` and `plan` phases are recorded too.
    pub fn try_new_with_telemetry(
        graph: &CsrGraph,
        spec: ClusterSpec,
        config: MggConfig,
        mode: AggregateMode,
        telemetry: Telemetry,
    ) -> Result<Self, MggError> {
        let placement = {
            let _span = telemetry.span("partition");
            HybridPlacement::plan(graph, spec.num_gpus)
        };
        let mut engine = {
            let _span = telemetry.span("plan");
            Self::with_placement(graph, spec, placement, config, mode)?
        };
        engine.telemetry = telemetry;
        Ok(engine)
    }

    /// Attaches (or replaces) the engine's telemetry sink.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The engine's telemetry handle (disabled unless one was attached).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Builds the engine with a caller-chosen node split (ablations).
    pub fn with_split(
        graph: &CsrGraph,
        spec: ClusterSpec,
        split: NodeSplit,
        config: MggConfig,
        mode: AggregateMode,
    ) -> Self {
        let placement = HybridPlacement::from_split(graph, split);
        Self::with_placement(graph, spec, placement, config, mode)
            .expect("invalid MGG configuration")
    }

    fn with_placement(
        graph: &CsrGraph,
        spec: ClusterSpec,
        placement: HybridPlacement,
        config: MggConfig,
        mode: AggregateMode,
    ) -> Result<Self, MggError> {
        config.validate().map_err(MggError::InvalidConfig)?;
        let plans = build_plans(&placement, config.ps);
        let norm = match mode {
            AggregateMode::GcnNorm => graph.gcn_norm(),
            _ => Vec::new(),
        };
        Ok(MggEngine {
            cluster: Cluster::new(spec),
            placement,
            plans,
            config,
            variant: KernelVariant::AsyncPipelined,
            mapping: MappingMode::Interleaved,
            mode,
            norm,
            graph: graph.clone(),
            replanned: false,
            last_stats: None,
            last_trace: None,
            telemetry: Telemetry::disabled(),
        })
    }

    /// Current configuration.
    pub fn config(&self) -> MggConfig {
        self.config
    }

    /// Replaces the configuration, rebuilding work plans when `ps` changed.
    pub fn set_config(&mut self, config: MggConfig) -> Result<(), MggError> {
        config.validate().map_err(MggError::InvalidConfig)?;
        if config.ps != self.config.ps {
            self.plans = build_plans(&self.placement, config.ps);
        }
        self.config = config;
        Ok(())
    }

    /// Derives a deterministic fault scenario from `spec` and installs it
    /// on the cluster. Subsequent simulations run under these faults (and
    /// may trigger graceful degradation — see
    /// [`MggEngine::simulate_aggregation`]).
    pub fn install_faults(&mut self, spec: FaultSpec) -> Result<(), MggError> {
        spec.validate().map_err(MggError::InvalidFaultSpec)?;
        let sched = FaultSchedule::derive(&spec, self.cluster.num_gpus());
        self.cluster.install_faults(sched);
        self.replanned = false;
        Ok(())
    }

    /// Installs an explicit fault schedule (pinned test scenarios).
    pub fn install_fault_schedule(&mut self, sched: FaultSchedule) {
        self.cluster.install_faults(sched);
        self.replanned = false;
    }

    /// Removes any installed fault scenario.
    pub fn clear_faults(&mut self) {
        self.cluster.clear_faults();
        self.replanned = false;
    }

    /// The installed fault schedule, if any.
    pub fn fault_schedule(&self) -> Option<&FaultSchedule> {
        self.cluster.faults()
    }

    /// What graceful degradation the installed faults call for.
    pub fn recovery_action(&self) -> RecoveryAction {
        let Some(sched) = self.cluster.faults() else { return RecoveryAction::None };
        let min_health = (0..sched.num_gpus())
            .map(|g| sched.health(g))
            .fold(1.0_f64, f64::min);
        if min_health < UVM_FALLBACK_HEALTH_THRESHOLD {
            RecoveryAction::UvmFallback
        } else if min_health < REPLAN_HEALTH_THRESHOLD {
            RecoveryAction::Rebalance
        } else {
            RecoveryAction::None
        }
    }

    /// Simulates one aggregation pass at embedding dimension `dim` and
    /// returns the kernel statistics. Channels are reset first, so calls
    /// are independent measurements.
    ///
    /// Under an installed fault scenario with impaired GPUs, the first
    /// call additionally performs graceful degradation: the run that
    /// observed the degradation is treated as the detection pass, placement
    /// is re-planned with capacity weights proportional to each GPU's
    /// health, and the kernel is re-run on the re-balanced placement. The
    /// returned statistics are those of the recovered run, with the
    /// detection pass charged to `recovery.recovery_latency_ns`.
    pub fn simulate_aggregation(&mut self, dim: usize) -> Result<KernelStats, MggError> {
        Ok(self.simulate_aggregation_impl(dim, false)?.0)
    }

    /// [`MggEngine::simulate_aggregation`] with the per-warp trace captured
    /// end-to-end — including the recovery re-run, whose trace replaces the
    /// detection pass's, matching the returned statistics.
    pub fn simulate_aggregation_traced(
        &mut self,
        dim: usize,
    ) -> Result<(KernelStats, Vec<TraceEvent>), MggError> {
        let (stats, trace) = self.simulate_aggregation_impl(dim, true)?;
        Ok((stats, trace.expect("trace was requested")))
    }

    fn simulate_aggregation_impl(
        &mut self,
        dim: usize,
        want_trace: bool,
    ) -> Result<(KernelStats, Option<Vec<TraceEvent>>), MggError> {
        let tel = self.telemetry.clone();
        // With telemetry attached, always capture the trace: the derived
        // pipeline metrics need it, and tracing never changes the
        // simulation outcome (the sim crate's tests pin that equivalence).
        let want_trace = want_trace || tel.is_enabled();
        let (mut stats, mut trace) = self.run_kernel(dim, want_trace)?;
        let action = self.recovery_action();
        if action != RecoveryAction::None && !self.replanned {
            let _span = tel.span("recover");
            let sched = self.cluster.faults().expect("action implies faults").clone();
            let weights: Vec<f64> =
                (0..sched.num_gpus()).map(|g| sched.health(g).max(0.05)).collect();
            let detection_ns = stats.makespan_ns();
            self.replan_weighted(&weights);
            let (mut recovered, recovered_trace) = self.run_kernel(dim, want_trace)?;
            recovered.recovery.replans += 1;
            if action == RecoveryAction::UvmFallback {
                recovered.recovery.uvm_fallbacks += 1;
            }
            recovered.recovery.recovery_latency_ns += detection_ns;
            tel.counter_add("engine.replans", 1);
            tel.counter_add("engine.recovery_detection_ns", detection_ns);
            stats = recovered;
            trace = recovered_trace;
        }
        {
            // The inter-GPU barrier closing the aggregation: each GPU idles
            // from its own finish until the global makespan.
            let _span = tel.span("barrier");
            let makespan = stats.makespan_ns();
            let skew: u64 =
                stats.per_gpu.iter().map(|g| makespan.saturating_sub(g.finish_ns)).sum();
            tel.counter_add("engine.barrier_skew_ns", skew);
        }
        if tel.is_enabled() {
            tel.counter_add("engine.kernels", 1);
            let events = trace.as_deref().unwrap_or(&[]);
            tel.add_trace_events(events);
            tel.set_pipeline(PipelineMetrics::derive(&stats, events));
        }
        self.last_stats = Some(stats.clone());
        self.last_trace = trace.clone();
        Ok((stats, trace))
    }

    /// One raw kernel simulation on the current placement (no recovery).
    fn run_kernel(
        &mut self,
        dim: usize,
        want_trace: bool,
    ) -> Result<(KernelStats, Option<Vec<TraceEvent>>), MggError> {
        let tel = self.telemetry.clone();
        let kernel = {
            let _span = tel.span("launch");
            let model = AnalyticalModel::new(self.cluster.spec.gpu.clone(), dim);
            MggKernel::build(
                &self.placement,
                &self.plans,
                &self.config,
                dim,
                &model,
                self.variant,
                self.mapping,
            )
        };
        self.cluster.reset();
        let _span = tel.span("aggregate");
        if want_trace {
            let (stats, events) = GpuSim::run_traced(&mut self.cluster, &kernel, &mut NoPaging)?;
            Ok((stats, Some(events)))
        } else {
            Ok((GpuSim::run(&mut self.cluster, &kernel, &mut NoPaging)?, None))
        }
    }

    /// Rebuilds split, placement and work plans with per-GPU capacity
    /// weights. Functional outputs are split-invariant, so this only moves
    /// work, never changes values.
    fn replan_weighted(&mut self, weights: &[f64]) {
        let split = NodeSplit::edge_balanced_weighted(&self.graph, weights);
        self.placement = HybridPlacement::from_split(&self.graph, split);
        self.plans = build_plans(&self.placement, self.config.ps);
        self.replanned = true;
    }

    /// Simulated end-to-end duration of one aggregation (kernel makespan
    /// plus the host launch overhead).
    pub fn simulate_aggregation_ns(&mut self, dim: usize) -> Result<SimTime, MggError> {
        let launch_overhead = self.cluster.spec.kernel_launch_ns;
        Ok(self.simulate_aggregation(dim)?.makespan_ns() + launch_overhead)
    }

    /// Functional aggregation: computes the same values the simulated
    /// kernel would produce, using the locality-split virtual CSRs and the
    /// symmetric-heap addressing.
    pub fn aggregate_values(&self, x: &Matrix) -> Matrix {
        let dim = x.cols();
        let region = self.placement.place_embeddings(x);
        let mut out = Matrix::zeros(x.rows(), dim);
        for part in &self.placement.parts {
            let base = part.node_range.start as usize;
            for r in 0..part.local.num_rows() as u32 {
                let v = base + r as usize;
                let out_row_start = v * dim;
                // Local neighbor partition aggregation (device memory).
                for lr in part.local.row(r) {
                    let w = self.weight(v, base + lr.local as usize);
                    let src = region.row(part.pe, lr.local);
                    let dst = &mut out.data_mut()[out_row_start..out_row_start + dim];
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d += w * s;
                    }
                }
                // Remote neighbor partition aggregation (symmetric heap).
                for rr in part.remote.row(r) {
                    let owner_base = self.placement.split.range(rr.owner as usize).start;
                    let w = self.weight(v, (owner_base + rr.local) as usize);
                    let src = region.row(rr.owner as usize, rr.local);
                    let dst = &mut out.data_mut()[out_row_start..out_row_start + dim];
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d += w * s;
                    }
                }
                // Mode-specific fixups.
                match self.mode {
                    AggregateMode::GcnNorm => {
                        // Self-loop term of \hat{A}.
                        let w = self.norm[v] * self.norm[v];
                        let src: Vec<f32> = x.row(v).to_vec();
                        let dst = &mut out.data_mut()[out_row_start..out_row_start + dim];
                        for (d, s) in dst.iter_mut().zip(src) {
                            *d += w * s;
                        }
                    }
                    AggregateMode::Mean => {
                        let deg = part.local.row(r).len() + part.remote.row(r).len();
                        if deg > 0 {
                            let inv = 1.0 / deg as f32;
                            let dst = &mut out.data_mut()[out_row_start..out_row_start + dim];
                            for d in dst {
                                *d *= inv;
                            }
                        }
                    }
                    AggregateMode::Sum => {}
                }
            }
        }
        out
    }

    /// Functional aggregation through the resilience plane: remote rows are
    /// fetched with non-blocking resilient GETs (retrying transiently
    /// dropped ones) and settled per destination row. Values are identical
    /// to [`MggEngine::aggregate_values`] — faults never corrupt data, they
    /// only cost retries — and the resilience counters report what recovery
    /// work was needed.
    pub fn aggregate_values_resilient(
        &self,
        x: &Matrix,
    ) -> Result<(Matrix, ResilienceStats), MggError> {
        let dim = x.cols();
        let region = self.placement.place_embeddings(x);
        let mut resilient = ResilientRegion::new(&region, self.cluster.faults())
            .with_telemetry(self.telemetry.clone());
        let mut out = Matrix::zeros(x.rows(), dim);
        let mut fetched = vec![0.0f32; dim];
        for part in &self.placement.parts {
            let base = part.node_range.start as usize;
            for r in 0..part.local.num_rows() as u32 {
                let v = base + r as usize;
                let out_row_start = v * dim;
                for lr in part.local.row(r) {
                    let w = self.weight(v, base + lr.local as usize);
                    let src = region.row(part.pe, lr.local);
                    let dst = &mut out.data_mut()[out_row_start..out_row_start + dim];
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d += w * s;
                    }
                }
                for rr in part.remote.row(r) {
                    let owner_base = self.placement.split.range(rr.owner as usize).start;
                    let w = self.weight(v, (owner_base + rr.local) as usize);
                    resilient.get_nbi(&mut fetched, part.pe, rr.owner as usize, rr.local)?;
                    let dst = &mut out.data_mut()[out_row_start..out_row_start + dim];
                    for (d, &s) in dst.iter_mut().zip(fetched.iter()) {
                        *d += w * s;
                    }
                }
                resilient.quiet(part.pe)?;
                match self.mode {
                    AggregateMode::GcnNorm => {
                        let w = self.norm[v] * self.norm[v];
                        let src: Vec<f32> = x.row(v).to_vec();
                        let dst = &mut out.data_mut()[out_row_start..out_row_start + dim];
                        for (d, s) in dst.iter_mut().zip(src) {
                            *d += w * s;
                        }
                    }
                    AggregateMode::Mean => {
                        let deg = part.local.row(r).len() + part.remote.row(r).len();
                        if deg > 0 {
                            let inv = 1.0 / deg as f32;
                            let dst = &mut out.data_mut()[out_row_start..out_row_start + dim];
                            for d in dst {
                                *d *= inv;
                            }
                        }
                    }
                    AggregateMode::Sum => {}
                }
            }
        }
        Ok((out, resilient.stats()))
    }

    #[inline]
    fn weight(&self, v: usize, u: usize) -> f32 {
        match self.mode {
            AggregateMode::GcnNorm => self.norm[v] * self.norm[u],
            // Mean divides at the end; Sum uses unit weights.
            AggregateMode::Mean | AggregateMode::Sum => 1.0,
        }
    }
}

/// Pure edge-weighted aggregation (no mode fixups): used by GAT.
impl MggEngine {
    /// Aggregates `x` with per-edge weights indexed by the input graph's
    /// flat adjacency (see `mgg_graph::partition::locality`'s edge ids).
    pub fn aggregate_values_weighted(&self, x: &Matrix, w: &[f32]) -> Matrix {
        let dim = x.cols();
        let region = self.placement.place_embeddings(x);
        let mut out = Matrix::zeros(x.rows(), dim);
        for part in &self.placement.parts {
            let base = part.node_range.start as usize;
            for r in 0..part.local.num_rows() as u32 {
                let v = base + r as usize;
                let out_row_start = v * dim;
                for lr in part.local.row(r) {
                    let weight = w[lr.edge as usize];
                    let src = region.row(part.pe, lr.local);
                    let dst = &mut out.data_mut()[out_row_start..out_row_start + dim];
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d += weight * s;
                    }
                }
                for rr in part.remote.row(r) {
                    let weight = w[rr.edge as usize];
                    let src = region.row(rr.owner as usize, rr.local);
                    let dst = &mut out.data_mut()[out_row_start..out_row_start + dim];
                    for (d, &s) in dst.iter_mut().zip(src) {
                        *d += weight * s;
                    }
                }
            }
        }
        out
    }
}

impl mgg_gnn::gat::GatBackend for MggEngine {
    fn attention(&mut self, s_dst: &[f32], s_src: &[f32], slope: f32) -> (Vec<f32>, u64) {
        // Timing: exchanging the scalar neighbor scores is an aggregation
        // pass at dimension 1 (same access pattern, 4-byte rows).
        let ns = self
            .simulate_aggregation_ns(1)
            .expect("MGG launch must be valid for the configured GPU");
        // Functional: leaky-ReLU scores then a per-destination softmax over
        // the union of the row's local and remote entries.
        let num_edges: usize = self
            .placement
            .parts
            .iter()
            .map(|p| p.local.num_entries() + p.remote.num_entries())
            .sum();
        let mut w = vec![0.0f32; num_edges];
        let leaky = |x: f32| if x >= 0.0 { x } else { slope * x };
        for part in &self.placement.parts {
            let base = part.node_range.start as usize;
            for r in 0..part.local.num_rows() as u32 {
                let v = base + r as usize;
                // (edge id, raw score) for every neighbor of v.
                let mut entries: Vec<(u32, f32)> = Vec::with_capacity(
                    part.local.row(r).len() + part.remote.row(r).len(),
                );
                for lr in part.local.row(r) {
                    let u = base + lr.local as usize;
                    entries.push((lr.edge, leaky(s_dst[v] + s_src[u])));
                }
                for rr in part.remote.row(r) {
                    let u = (self.placement.split.range(rr.owner as usize).start
                        + rr.local) as usize;
                    entries.push((rr.edge, leaky(s_dst[v] + s_src[u])));
                }
                if entries.is_empty() {
                    continue;
                }
                let max = entries.iter().map(|&(_, e)| e).fold(f32::NEG_INFINITY, f32::max);
                let mut sum = 0.0f32;
                for (_, e) in entries.iter_mut() {
                    *e = (*e - max).exp();
                    sum += *e;
                }
                for (edge, e) in entries {
                    w[edge as usize] = if sum > 0.0 { e / sum } else { 0.0 };
                }
            }
        }
        (w, ns)
    }

    fn aggregate_weighted(&mut self, x: &Matrix, w: &[f32]) -> (Matrix, u64) {
        let ns = self
            .simulate_aggregation_ns(x.cols())
            .expect("MGG launch must be valid for the configured GPU");
        (self.aggregate_values_weighted(x, w), ns)
    }
}

impl Aggregator for MggEngine {
    fn aggregate(&mut self, x: &Matrix) -> (Matrix, u64) {
        let ns = self
            .simulate_aggregation_ns(x.cols())
            .expect("MGG launch must be valid for the configured GPU");
        (self.aggregate_values(x), ns)
    }

    fn aggregate_only(&mut self, x: &Matrix) -> Matrix {
        self.aggregate_values(x)
    }

    fn mode(&self) -> AggregateMode {
        self.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgg_gnn::reference::aggregate;
    use mgg_graph::generators::rmat::{rmat, RmatConfig};

    fn graph() -> CsrGraph {
        rmat(&RmatConfig::graph500(9, 5_000, 29))
    }

    fn features(n: usize, dim: usize) -> Matrix {
        Matrix::from_vec(n, dim, (0..n * dim).map(|i| ((i % 13) as f32) - 6.0).collect())
    }

    #[test]
    fn values_match_reference_all_modes() {
        let g = graph();
        let x = features(g.num_nodes(), 17);
        for mode in [AggregateMode::Sum, AggregateMode::Mean, AggregateMode::GcnNorm] {
            let engine =
                MggEngine::new(&g, ClusterSpec::dgx_a100(4), MggConfig::default_fixed(), mode);
            let got = engine.aggregate_values(&x);
            let want = aggregate(&g, &x, mode);
            assert!(
                got.max_abs_diff(&want) < 1e-3,
                "mode {mode:?}: diff {}",
                got.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn values_independent_of_config_and_gpus() {
        let g = graph();
        let x = features(g.num_nodes(), 8);
        let base = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(2),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        )
        .aggregate_values(&x);
        for gpus in [1, 4, 8] {
            for cfg in [MggConfig { ps: 1, dist: 1, wpb: 1 }, MggConfig { ps: 32, dist: 16, wpb: 16 }] {
                let engine =
                    MggEngine::new(&g, ClusterSpec::dgx_a100(gpus), cfg, AggregateMode::Sum);
                let got = engine.aggregate_values(&x);
                assert!(got.max_abs_diff(&base) < 1e-3, "gpus={gpus} cfg={cfg}");
            }
        }
    }

    #[test]
    fn simulation_time_positive_and_deterministic() {
        let g = graph();
        let mut e1 = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let mut e2 = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let t1 = e1.simulate_aggregation_ns(64).unwrap();
        let t2 = e2.simulate_aggregation_ns(64).unwrap();
        assert!(t1 > 0);
        assert_eq!(t1, t2);
    }

    #[test]
    fn repeated_simulation_is_stable() {
        // Channel state must be reset between measurements.
        let g = graph();
        let mut e = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let a = e.simulate_aggregation_ns(64).unwrap();
        let b = e.simulate_aggregation_ns(64).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn set_config_rebuilds_plans() {
        let g = graph();
        let mut e = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(2),
            MggConfig { ps: 32, dist: 1, wpb: 1 },
            AggregateMode::Sum,
        );
        let coarse: usize = e.plans.iter().map(|p| p.lnps.len() + p.rnps.len()).sum();
        e.set_config(MggConfig { ps: 2, dist: 1, wpb: 1 }).unwrap();
        let fine: usize = e.plans.iter().map(|p| p.lnps.len() + p.rnps.len()).sum();
        assert!(fine > coarse);
    }

    #[test]
    fn quiet_faults_leave_engine_bit_identical() {
        let g = graph();
        let x = features(g.num_nodes(), 16);
        let mut plain = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let mut faulty = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        faulty.install_faults(mgg_fault::FaultSpec::quiet()).unwrap();
        assert_eq!(faulty.recovery_action(), RecoveryAction::None);
        let a = plain.simulate_aggregation(64).unwrap();
        let b = faulty.simulate_aggregation(64).unwrap();
        assert_eq!(a, b, "quiet fault spec must not perturb timing");
        let (va, _) = plain.aggregate_values_resilient(&x).unwrap();
        let vb = faulty.aggregate_values(&x);
        assert_eq!(va.data(), vb.data(), "quiet faults must not perturb values");
    }

    #[test]
    fn degraded_link_triggers_replan_and_keeps_values_exact() {
        let g = graph();
        let x = features(g.num_nodes(), 16);
        let mut e = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::GcnNorm,
        );
        let spec = mgg_fault::FaultSpec { seed: 42, link_degrade: 0.5, ..Default::default() };
        e.install_faults(spec).unwrap();
        assert_eq!(e.recovery_action(), RecoveryAction::Rebalance);
        let stats = e.simulate_aggregation(64).unwrap();
        assert_eq!(stats.recovery.replans, 1);
        assert!(stats.recovery.recovery_latency_ns > 0);
        // Re-planning moves work, never values.
        let got = e.aggregate_values(&x);
        let want = aggregate(&g, &x, AggregateMode::GcnNorm);
        assert!(got.max_abs_diff(&want) < 1e-3);
        // Second run is on the recovered placement: no further replans.
        let again = e.simulate_aggregation(64).unwrap();
        assert_eq!(again.recovery.replans, 0);
    }

    #[test]
    fn severe_degradation_recommends_uvm_fallback() {
        let g = graph();
        let mut e = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let spec = mgg_fault::FaultSpec { seed: 7, link_degrade: 0.1, ..Default::default() };
        e.install_faults(spec).unwrap();
        assert_eq!(e.recovery_action(), RecoveryAction::UvmFallback);
        let stats = e.simulate_aggregation(32).unwrap();
        assert_eq!(stats.recovery.uvm_fallbacks, 1);
        e.clear_faults();
        assert_eq!(e.recovery_action(), RecoveryAction::None);
    }

    #[test]
    fn dropped_gets_recover_with_exact_values() {
        let g = graph();
        let x = features(g.num_nodes(), 8);
        let mut e = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        e.install_faults(mgg_fault::FaultSpec {
            seed: 3,
            drop_rate: 0.2,
            ..Default::default()
        })
        .unwrap();
        let stats = e.simulate_aggregation(32).unwrap();
        assert!(stats.recovery.retried_gets > 0, "drop rate 0.2 must hit some gets");
        let (got, rstats) = e.aggregate_values_resilient(&x).unwrap();
        assert!(rstats.retries > 0);
        let want = aggregate(&g, &x, AggregateMode::Sum);
        assert!(got.max_abs_diff(&want) < 1e-3, "recovered values must stay exact");
    }

    #[test]
    fn invalid_config_and_spec_are_reported_not_panicked() {
        let g = graph();
        let bad = MggConfig { ps: 4, dist: 0, wpb: 1 };
        match MggEngine::try_new(&g, ClusterSpec::dgx_a100(2), bad, AggregateMode::Sum) {
            Err(MggError::InvalidConfig(_)) => {}
            Err(e) => panic!("wrong error: {e}"),
            Ok(_) => panic!("dist=0 must be rejected"),
        }
        let mut e = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(2),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let err = e
            .install_faults(mgg_fault::FaultSpec { drop_rate: 1.5, ..Default::default() })
            .unwrap_err();
        assert!(matches!(err, MggError::InvalidFaultSpec(_)));
    }

    #[test]
    fn telemetry_does_not_change_kernel_stats() {
        let g = graph();
        let mut plain = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let tel = Telemetry::enabled();
        let mut instrumented = MggEngine::try_new_with_telemetry(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
            tel.clone(),
        )
        .unwrap();
        let a = plain.simulate_aggregation(64).unwrap();
        let b = instrumented.simulate_aggregation(64).unwrap();
        assert_eq!(a, b, "telemetry must not perturb the simulation");

        let snap = tel.snapshot();
        let names: Vec<&str> = snap.spans.iter().map(|s| s.name.as_str()).collect();
        for phase in ["partition", "plan", "launch", "aggregate", "barrier"] {
            assert!(names.contains(&phase), "missing phase {phase}: {names:?}");
        }
        let p = snap.pipeline.expect("pipeline metrics recorded");
        assert_eq!(p.makespan_ns, a.makespan_ns());
        assert!(
            p.overlap_efficiency > 0.0,
            "the async pipeline must hide some remote-wire time"
        );
        assert!(!p.pair_traffic.is_empty());
        assert!(!tel.trace_events().is_empty());
    }

    #[test]
    fn traced_simulation_matches_untraced() {
        let g = graph();
        let mk = || {
            MggEngine::new(
                &g,
                ClusterSpec::dgx_a100(4),
                MggConfig::default_fixed(),
                AggregateMode::Sum,
            )
        };
        let plain = mk().simulate_aggregation(64).unwrap();
        let mut traced_engine = mk();
        let (traced, events) = traced_engine.simulate_aggregation_traced(64).unwrap();
        assert_eq!(plain, traced);
        assert!(!events.is_empty());
        // Every GPU contributed events, and the engine kept the trace.
        for g in 0..4u16 {
            assert!(events.iter().any(|e| e.gpu == g), "gpu {g} missing from trace");
        }
        assert_eq!(traced_engine.last_trace.as_deref(), Some(&events[..]));
    }

    #[test]
    fn recovery_is_recorded_as_a_phase() {
        let g = graph();
        let tel = Telemetry::enabled();
        let mut e = MggEngine::try_new_with_telemetry(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
            tel.clone(),
        )
        .unwrap();
        let spec = mgg_fault::FaultSpec { seed: 42, link_degrade: 0.5, ..Default::default() };
        e.install_faults(spec).unwrap();
        let stats = e.simulate_aggregation(64).unwrap();
        assert_eq!(stats.recovery.replans, 1);
        let snap = tel.snapshot();
        assert!(snap.spans.iter().any(|s| s.name == "recover"));
        assert_eq!(tel.counter_value("engine.replans"), 1);
        let p = snap.pipeline.expect("pipeline recorded");
        assert_eq!(p.recovery.replans, 1);
    }

    #[test]
    fn aggregator_trait_roundtrip() {
        let g = graph();
        let x = features(g.num_nodes(), 16);
        let mut e = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::GcnNorm,
        );
        let (vals, ns) = e.aggregate(&x);
        assert!(ns > 0);
        let want = aggregate(&g, &x, AggregateMode::GcnNorm);
        assert!(vals.max_abs_diff(&want) < 1e-3);
    }
}

#[cfg(test)]
mod gat_tests {
    use super::*;
    use mgg_gnn::gat::{Gat, GatBackend, ReferenceGatBackend};
    use mgg_graph::generators::rmat::{rmat, RmatConfig};

    #[test]
    fn weighted_aggregation_matches_reference() {
        let g = rmat(&RmatConfig::graph500(9, 4_000, 77));
        let x = Matrix::glorot(g.num_nodes(), 9, 1);
        let w: Vec<f32> = (0..g.num_edges()).map(|i| ((i % 11) as f32) / 10.0).collect();
        let engine = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let got = engine.aggregate_values_weighted(&x, &w);
        let want = mgg_gnn::reference::aggregate_edge_weighted(&g, &x, &w);
        assert!(got.max_abs_diff(&want) < 1e-4, "diff {}", got.max_abs_diff(&want));
    }

    #[test]
    fn gat_forward_matches_reference_backend() {
        let g = rmat(&RmatConfig::graph500(8, 2_000, 79));
        let x = Matrix::glorot(g.num_nodes(), 10, 3);
        let model = Gat::new(10, 6, 4, 5);

        let mut reference = ReferenceGatBackend { graph: g.clone() };
        let (want, _) = model.forward(&mut reference, &x);

        let mut engine = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let (got, timings) = model.forward(&mut engine, &x);
        assert!(got.max_abs_diff(&want) < 1e-3, "diff {}", got.max_abs_diff(&want));
        assert!(timings.iter().all(|t| t.attention_ns > 0 && t.aggregate_ns > 0));
        // The scalar score exchange must be far cheaper than the
        // hidden-width aggregation.
        assert!(timings[0].attention_ns < timings[0].aggregate_ns);
    }

    #[test]
    fn mgg_attention_weights_match_reference() {
        let g = rmat(&RmatConfig::graph500(8, 2_000, 83));
        let n = g.num_nodes();
        let s_dst: Vec<f32> = (0..n).map(|i| ((i * 7) % 13) as f32 / 13.0 - 0.5).collect();
        let s_src: Vec<f32> = (0..n).map(|i| ((i * 3) % 5) as f32 / 5.0).collect();
        let mut engine = MggEngine::new(
            &g,
            ClusterSpec::dgx_a100(3),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let (got, _) = engine.attention(&s_dst, &s_src, 0.2);
        let want = mgg_gnn::gat::reference_attention(&g, &s_dst, &s_src, 0.2);
        let diff = got
            .iter()
            .zip(&want)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(diff < 1e-5, "max weight diff {diff}");
    }
}
