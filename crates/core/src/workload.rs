//! Pipeline-aware workload management (§3.1): per-GPU work plans.
//!
//! Composes the three splits — edge-balanced node split, locality-aware
//! edge split, workload-aware neighbor split — into, per GPU, two flat
//! lists of neighbor partitions (LNPs and RNPs in the paper's Figure 4/6
//! terminology) ready for warp mapping.

use mgg_graph::partition::neighbor::{partition_rows, NeighborPartition, PartitionKind};

use crate::placement::HybridPlacement;

/// One GPU's decomposed aggregation workload.
#[derive(Debug, Clone)]
pub struct WorkPlan {
    /// The GPU (PE) this plan belongs to.
    pub pe: usize,
    /// Local neighbor partitions (low-latency device-memory aggregation).
    pub lnps: Vec<NeighborPartition>,
    /// Remote neighbor partitions (symmetric-heap gets + aggregation).
    pub rnps: Vec<NeighborPartition>,
}

impl WorkPlan {
    /// Total neighbor entries covered by this plan.
    pub fn total_neighbors(&self) -> u64 {
        self.lnps.iter().chain(&self.rnps).map(|p| p.len as u64).sum()
    }

    /// Ratio of the largest to the smallest nonzero partition length — 1.0
    /// means perfectly uniform warp workloads.
    pub fn partition_skew(&self) -> f64 {
        let lens: Vec<u32> =
            self.lnps.iter().chain(&self.rnps).map(|p| p.len).filter(|&l| l > 0).collect();
        match (lens.iter().max(), lens.iter().min()) {
            (Some(&max), Some(&min)) if min > 0 => max as f64 / min as f64,
            _ => 1.0,
        }
    }
}

/// Builds every GPU's [`WorkPlan`] with neighbor-partition size `ps`
/// (`ps == 0` disables neighbor partitioning, the Figure-9(a) ablation).
pub fn build_plans(placement: &HybridPlacement, ps: u32) -> Vec<WorkPlan> {
    placement
        .parts
        .iter()
        .map(|part| WorkPlan {
            pe: part.pe,
            lnps: partition_rows(part.local.row_ptr(), ps as usize, PartitionKind::Local),
            rnps: partition_rows(part.remote.row_ptr(), ps as usize, PartitionKind::Remote),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgg_graph::generators::regular::star;
    use mgg_graph::generators::rmat::{rmat, RmatConfig};
    use mgg_graph::partition::neighbor::verify_tiling;

    #[test]
    fn plans_tile_every_virtual_csr() {
        let g = rmat(&RmatConfig::graph500(10, 8_000, 11));
        let placement = HybridPlacement::plan(&g, 4);
        let plans = build_plans(&placement, 8);
        for (plan, part) in plans.iter().zip(&placement.parts) {
            assert!(verify_tiling(part.local.row_ptr(), &plan.lnps));
            assert!(verify_tiling(part.remote.row_ptr(), &plan.rnps));
        }
    }

    #[test]
    fn neighbor_conservation() {
        let g = rmat(&RmatConfig::graph500(10, 8_000, 13));
        let placement = HybridPlacement::plan(&g, 3);
        let plans = build_plans(&placement, 16);
        let total: u64 = plans.iter().map(|p| p.total_neighbors()).sum();
        assert_eq!(total, g.num_edges() as u64);
    }

    #[test]
    fn partitioning_bounds_skew_on_star() {
        // Global skew across all GPUs: without neighbor partitioning the
        // hub's single giant partition dwarfs the leaves' length-1 ones.
        let g = star(4_000);
        let placement = HybridPlacement::plan(&g, 2);
        let global_skew = |plans: &[WorkPlan]| -> f64 {
            let lens: Vec<u32> = plans
                .iter()
                .flat_map(|p| p.lnps.iter().chain(&p.rnps))
                .map(|p| p.len)
                .collect();
            let max = *lens.iter().max().unwrap() as f64;
            let min = *lens.iter().min().unwrap() as f64;
            max / min
        };
        let skew_with = global_skew(&build_plans(&placement, 16));
        let skew_without = global_skew(&build_plans(&placement, 0));
        assert!(skew_with <= 16.0, "skew_with={skew_with}");
        assert!(skew_without > 100.0, "skew_without={skew_without}");
    }

    #[test]
    fn ps_controls_partition_count() {
        let g = rmat(&RmatConfig::graph500(9, 4_000, 17));
        let placement = HybridPlacement::plan(&g, 2);
        let coarse = build_plans(&placement, 32);
        let fine = build_plans(&placement, 4);
        let count = |plans: &[WorkPlan]| -> usize {
            plans.iter().map(|p| p.lnps.len() + p.rnps.len()).sum()
        };
        assert!(count(&fine) > 2 * count(&coarse));
    }
}
