//! The pipeline-centric aggregation kernel (§3.3–§3.4).
//!
//! Lowers every warp's [`WarpAssignment`] into a `mgg-sim` operation trace.
//! The default [`KernelVariant::AsyncPipelined`] implements Figure 7(b):
//! for each (LNP, RNP) pair the warp
//!
//! 1. issues non-blocking symmetric-heap GETs for every remote neighbor of
//!    the RNP (`nvshmem_float_get_nbi` at warp scope),
//! 2. aggregates the LNP from local device memory while the remote rows
//!    are in flight,
//! 3. waits for the GETs (`nvshmem_quiet`), aggregates the landed rows
//!    from the shared-memory staging buffer, and
//! 4. writes back both partial results.
//!
//! [`KernelVariant::SyncRemote`] is Figure 7(a): blocking GETs, no
//! overlap — kept for the intra-warp pipelining ablation.

use mgg_cache::{CacheKey, CacheStats, Prefetcher, TierStats, TieredCache, WarpCoalescer};
use mgg_sim::{KernelLaunch, KernelProgram, WarpOp};

use crate::config::MggConfig;
use crate::mapping::{map_warps, MappingMode, WarpAssignment};
use crate::model::AnalyticalModel;
use crate::placement::HybridPlacement;
use crate::workload::WorkPlan;

/// Cycle cost of aggregating one neighbor's 32-lane dimension chunk
/// (fused multiply-add plus shared-memory traffic plus index math).
pub const CYCLES_PER_DIM_CHUNK: u32 = 6;

/// Fixed per-partition cycle overhead (loop setup, partition metadata).
pub const PARTITION_OVERHEAD_CYCLES: u32 = 24;

/// Which Figure-7 schedule the kernel uses for remote partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelVariant {
    /// Figure 7(b): non-blocking gets overlapped with local aggregation.
    AsyncPipelined,
    /// Figure 7(a): blocking gets, strictly sequential.
    SyncRemote,
}

/// Aggregation cycles for a partition of `len` neighbors at dimension
/// `dim` (one warp processes 32 lanes of the embedding at a time).
pub fn aggregation_cycles(len: u32, dim: usize) -> u32 {
    let chunks = dim.div_ceil(32) as u32;
    len * chunks * CYCLES_PER_DIM_CHUNK + PARTITION_OVERHEAD_CYCLES
}

/// Precomputed cache outcome for one warp's (LNP, RNP) pair: which remote
/// references must still cross the fabric, and how many were served from
/// the local embedding cache or merged into an in-flight request.
///
/// The cache is consulted once, at [`MggKernel::build_cached`] time, in a
/// fixed deterministic order (PE-major, then warp, then pair, then
/// adjacency order). `warp_ops_into` only replays the plan, which keeps
/// the `KernelProgram` contract — identical trace on every call — intact
/// even though the cache itself is stateful.
#[derive(Debug, Clone, Default)]
struct PairCachePlan {
    /// Owner PE of each remote reference that missed both tiers, in
    /// adjacency order.
    miss_peers: Vec<u16>,
    /// Misses actually admitted into the cache. Misses the eviction-thrash
    /// guard bypassed still fetch over the fabric but fill nothing, so
    /// only admitted misses cost a posted HBM fill write.
    admitted: u32,
    /// Remote references served from the resident L1 cache (no fabric).
    hits: u32,
    /// L1 misses the host-DRAM tier absorbed: read over the PCIe host
    /// link (`L2Get`), no fabric GET.
    l2_hits: u32,
    /// L2 hits promoted into L1 — they cost an HBM fill write like an
    /// admitted miss (the row's new L1 residency has to be written).
    promoted: u32,
    /// L1 victims this pair's admissions demoted into the host tier: one
    /// posted PCIe write-back each.
    demoted: u32,
    /// Duplicate references merged into an earlier request of the same
    /// warp-scope batch window.
    coalesced: u32,
}

/// One warp's cache outcomes: per-pair plans plus the speculative fills
/// the prefetcher attached to this warp (predicted from the *next* warp's
/// remote window, so the fabric round trip overlaps this warp's work).
#[derive(Debug, Clone, Default)]
struct WarpCachePlan {
    pairs: Vec<PairCachePlan>,
    /// Per-peer speculative fill batches issued at this warp's start:
    /// `(owner PE, row count)`.
    prefetch: Vec<(u16, u32)>,
    /// L1 victims displaced by those speculative admissions — posted PCIe
    /// write-backs into the host tier.
    prefetch_demoted: u32,
}

/// A fully-lowered MGG kernel, ready for the simulator.
pub struct MggKernel<'a> {
    placement: &'a HybridPlacement,
    /// Per PE, per warp assignments.
    assignments: Vec<Vec<WarpAssignment>>,
    launches: Vec<KernelLaunch>,
    dim: usize,
    wpb: u32,
    variant: KernelVariant,
    /// Per PE, per warp cache outcomes; `None` when the kernel was built
    /// without a cache (the default path — traces are then byte-identical
    /// to pre-cache builds).
    cache_plans: Option<Vec<Vec<WarpCachePlan>>>,
    /// Cache counters accumulated while planning this kernel (delta over
    /// the caches' state before the build).
    cache_stats: CacheStats,
    /// Host-tier / prefetch counters accumulated while planning (all-zero
    /// for uncached and untiered builds).
    tier_stats: TierStats,
}

impl<'a> MggKernel<'a> {
    /// Lowers `plans` into per-warp traces under `cfg`.
    pub fn build(
        placement: &'a HybridPlacement,
        plans: &[WorkPlan],
        cfg: &MggConfig,
        dim: usize,
        model: &AnalyticalModel,
        variant: KernelVariant,
        mapping: MappingMode,
    ) -> Self {
        assert_eq!(plans.len(), placement.num_gpus(), "one plan per GPU");
        cfg.validate().expect("invalid MGG configuration");
        let assignments: Vec<Vec<WarpAssignment>> =
            plans.iter().map(|p| map_warps(p, cfg.dist, mapping)).collect();
        let launches = plans
            .iter()
            .zip(&assignments)
            .map(|(plan, warps)| {
                let mut launch = model.launch_for(cfg, plan);
                // The separated mapping changes the warp count (local and
                // remote ranges are disjoint); size the grid from the
                // actual assignment list.
                launch.blocks = (warps.len() as u32).div_ceil(cfg.wpb);
                launch
            })
            .collect();
        MggKernel {
            placement,
            assignments,
            launches,
            dim,
            wpb: cfg.wpb,
            variant,
            cache_plans: None,
            cache_stats: CacheStats::default(),
            tier_stats: TierStats::default(),
        }
    }

    /// Like [`MggKernel::build`], but runs every remote reference through
    /// the per-GPU embedding `caches` (one per PE, mutated in place so
    /// residency persists across kernels) and records the hit / miss /
    /// coalesce outcome per warp pair.
    ///
    /// In the [`KernelVariant::AsyncPipelined`] variant each warp pair is
    /// one warp-scope non-blocking batch window: duplicate `(pe, row)`
    /// references inside the window coalesce onto the first request and
    /// never touch the cache or fabric. The blocking
    /// [`KernelVariant::SyncRemote`] variant has no in-flight window, so
    /// every reference consults the cache (a duplicate is simply a hit
    /// after the first fill).
    ///
    /// `row_versions` is the engine's per-global-node version table under
    /// live-graph churn: each access is checked against the referenced
    /// row's current version, so a resident row a delta should have
    /// invalidated trips the stale-row assertion instead of being served.
    /// Pass `&[]` for a static graph (every row at version 0 — bitwise
    /// the unversioned behaviour).
    ///
    /// `prefetch_depth` arms the deterministic prefetcher (0 = off): while
    /// planning warp *w*, up to `prefetch_depth` rows of warp *w+1*'s
    /// remote window (ranked by in-window multiplicity, then recent-miss
    /// streak extension) are speculatively admitted and lowered as posted
    /// `PrefetchFill` ops at warp *w*'s start, so the fabric round trip
    /// overlaps a whole warp's work instead of stalling the demand access.
    /// Prefetch only applies to [`KernelVariant::AsyncPipelined`] — the
    /// blocking ablation stays strictly reactive.
    #[allow(clippy::too_many_arguments)]
    pub fn build_cached(
        placement: &'a HybridPlacement,
        plans: &[WorkPlan],
        cfg: &MggConfig,
        dim: usize,
        model: &AnalyticalModel,
        variant: KernelVariant,
        mapping: MappingMode,
        caches: &mut [TieredCache],
        row_versions: &[u64],
        prefetch_depth: u32,
    ) -> Self {
        let mut kernel = Self::build(placement, plans, cfg, dim, model, variant, mapping);
        assert_eq!(caches.len(), placement.num_gpus(), "one cache per GPU");
        let before: Vec<CacheStats> = caches.iter().map(|c| c.stats()).collect();
        let tier_before: Vec<TierStats> = caches.iter().map(|c| c.tier_stats()).collect();
        let mut coalescer = WarpCoalescer::new();
        let mut cache_plans = Vec::with_capacity(kernel.assignments.len());
        // Scratch reused across warps: the next warp's remote window and
        // the prefetcher's prediction list.
        let mut window: Vec<CacheKey> = Vec::new();
        let mut predicted: Vec<CacheKey> = Vec::new();
        for (pe, warps) in kernel.assignments.iter().enumerate() {
            let cache = &mut caches[pe];
            let remote_adj = placement.parts[pe].remote.adj();
            let mut prefetcher = Prefetcher::new(prefetch_depth);
            let mut pe_plans = Vec::with_capacity(warps.len());
            for (w, assignment) in warps.iter().enumerate() {
                let mut wplan = WarpCachePlan {
                    pairs: Vec::with_capacity(assignment.pairs.len()),
                    ..Default::default()
                };
                for (_, rnp) in &assignment.pairs {
                    let mut plan = PairCachePlan::default();
                    if let Some(r) = rnp {
                        coalescer.begin();
                        let refs =
                            &remote_adj[r.start as usize..(r.start + r.len as u64) as usize];
                        for rr in refs {
                            let key = CacheKey { pe: rr.owner, row: rr.local };
                            if variant == KernelVariant::AsyncPipelined
                                && !coalescer.admit(key)
                            {
                                // Duplicate inside this warp's batch
                                // window: rides the in-flight request (or
                                // re-reads the already-resident row).
                                plan.coalesced += 1;
                                cache.note_coalesced(1);
                                continue;
                            }
                            let global = placement.split.range(rr.owner as usize).start
                                + rr.local;
                            let version =
                                row_versions.get(global as usize).copied().unwrap_or(0);
                            let look = cache.access_versioned(key, version);
                            if look.l1_hit {
                                plan.hits += 1;
                            } else if look.l2_hit {
                                plan.l2_hits += 1;
                                if look.admitted {
                                    plan.promoted += 1;
                                }
                            } else {
                                plan.miss_peers.push(rr.owner);
                                if look.admitted {
                                    plan.admitted += 1;
                                }
                                prefetcher.note_miss(key);
                            }
                            if look.demoted {
                                plan.demoted += 1;
                            }
                        }
                    }
                    wplan.pairs.push(plan);
                }
                // Predict the next warp's remote window and attach the
                // accepted speculative fills to *this* warp.
                if variant == KernelVariant::AsyncPipelined && prefetcher.enabled() {
                    if let Some(next) = warps.get(w + 1) {
                        window.clear();
                        for (_, rnp) in &next.pairs {
                            if let Some(r) = rnp {
                                for rr in &remote_adj
                                    [r.start as usize..(r.start + r.len as u64) as usize]
                                {
                                    window.push(CacheKey { pe: rr.owner, row: rr.local });
                                }
                            }
                        }
                        let split = &placement.split;
                        prefetcher.predict(
                            &window,
                            |owner| split.range(owner as usize).len() as u32,
                            &mut predicted,
                        );
                        for &key in &predicted {
                            let global =
                                placement.split.range(key.pe as usize).start + key.row;
                            let version =
                                row_versions.get(global as usize).copied().unwrap_or(0);
                            if let Some(adm) = cache.admit_prefetch(key, version) {
                                if adm.demoted {
                                    wplan.prefetch_demoted += 1;
                                }
                                match wplan.prefetch.iter_mut().find(|(p, _)| *p == key.pe)
                                {
                                    Some(batch) => batch.1 += 1,
                                    None => wplan.prefetch.push((key.pe, 1)),
                                }
                            }
                        }
                    }
                }
                pe_plans.push(wplan);
            }
            pe_plans.shrink_to_fit();
            cache_plans.push(pe_plans);
        }
        kernel.cache_stats = caches
            .iter()
            .zip(&before)
            .map(|(c, b)| c.stats().delta_since(*b))
            .fold(CacheStats::default(), |mut acc, d| {
                acc.merge(&d);
                acc
            });
        kernel.tier_stats = caches
            .iter()
            .zip(&tier_before)
            .map(|(c, b)| c.tier_stats().delta_since(*b))
            .fold(TierStats::default(), |mut acc, d| {
                acc.merge(&d);
                acc
            });
        kernel.cache_plans = Some(cache_plans);
        kernel
    }

    /// Total warps across all GPUs.
    pub fn total_warps(&self) -> usize {
        self.assignments.iter().map(|a| a.len()).sum()
    }

    /// Cache counters accumulated while planning this kernel: zero for
    /// uncached builds, otherwise the per-run delta summed over all PEs.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache_stats
    }

    /// Host-tier / prefetch counters accumulated while planning this
    /// kernel: zero for uncached, untiered, unprefetched builds.
    pub fn tier_stats(&self) -> TierStats {
        self.tier_stats
    }

    fn row_bytes(&self) -> u32 {
        (self.dim * 4) as u32
    }
}

impl KernelProgram for MggKernel<'_> {
    fn launch(&self, pe: usize) -> KernelLaunch {
        self.launches[pe]
    }

    fn warp_ops(&self, pe: usize, block: u32, warp: u32) -> Vec<WarpOp> {
        let mut ops = Vec::new();
        self.warp_ops_into(pe, block, warp, &mut ops);
        ops
    }

    // Hot-path form: the simulator hands in a recycled buffer, so trace
    // generation for every admitted warp is allocation-free in steady
    // state.
    fn warp_ops_into(&self, pe: usize, block: u32, warp: u32, ops: &mut Vec<WarpOp>) {
        ops.clear();
        let w = (block * self.wpb + warp) as usize;
        let Some(assignment) = self.assignments[pe].get(w) else {
            return; // padding warp in the last block
        };
        let row_bytes = self.row_bytes();
        let remote_adj = self.placement.parts[pe].remote.adj();
        let warp_plan = self.cache_plans.as_ref().map(|p| &p[pe][w]);
        if let Some(wp) = warp_plan {
            // Speculative fills for the *next* warp's predicted rows,
            // issued first so the fabric round trip overlaps everything
            // this warp does. Posted: nothing ever waits on them.
            for &(peer, rows) in &wp.prefetch {
                ops.push(WarpOp::PrefetchFill { peer, bytes: rows * row_bytes });
            }
            if wp.prefetch_demoted > 0 {
                ops.push(WarpOp::L2Demote { bytes: wp.prefetch_demoted * row_bytes });
            }
        }
        for (pair, (lnp, rnp)) in assignment.pairs.iter().enumerate() {
            let plan = warp_plan.map(|p| &p.pairs[pair]);
            match self.variant {
                KernelVariant::AsyncPipelined => {
                    // (1) Launch non-blocking gets for the remote rows.
                    // With a cache plan only the misses hit the fabric;
                    // hits become one batched HBM read below, coalesced
                    // duplicates cost nothing.
                    if let Some(r) = rnp {
                        match plan {
                            Some(p) => {
                                for &peer in &p.miss_peers {
                                    ops.push(WarpOp::RemoteGet {
                                        peer,
                                        bytes: row_bytes,
                                        nbi: true,
                                    });
                                }
                                if p.l2_hits > 0 {
                                    // Host-tier hits ride the PCIe link
                                    // non-blocking and join the same
                                    // WaitRemote as the fabric misses.
                                    ops.push(WarpOp::L2Get {
                                        bytes: p.l2_hits * row_bytes,
                                        nbi: true,
                                    });
                                }
                                if p.hits > 0 {
                                    // L1 hits launch here too: an async
                                    // local HBM read that overlaps the
                                    // local partition below and joins the
                                    // same WaitRemote. A blocking read
                                    // instead would stall through the HBM
                                    // FIFO, which under GET-source load
                                    // queues deeper than the fabric.
                                    ops.push(WarpOp::CacheHit {
                                        bytes: p.hits * row_bytes,
                                        nbi: true,
                                    });
                                }
                            }
                            None => {
                                for rr in &remote_adj
                                    [r.start as usize..(r.start + r.len as u64) as usize]
                                {
                                    ops.push(WarpOp::RemoteGet {
                                        peer: rr.owner,
                                        bytes: row_bytes,
                                        nbi: true,
                                    });
                                }
                            }
                        }
                    }
                    // (2) Aggregate the local partition while data flies.
                    if let Some(l) = lnp {
                        ops.push(WarpOp::GlobalRead { bytes: l.len * row_bytes });
                        ops.push(WarpOp::Compute {
                            cycles: aggregation_cycles(l.len, self.dim),
                        });
                        ops.push(WarpOp::GlobalWrite { bytes: row_bytes });
                    }

                    // (3) Join the gets (and the async hit read), aggregate
                    // the landed rows.
                    if let Some(r) = rnp {
                        ops.push(WarpOp::WaitRemote);
                        ops.push(WarpOp::Compute {
                            cycles: aggregation_cycles(r.len, self.dim),
                        });
                        if let Some(p) = plan {
                            let fills = p.admitted + p.promoted;
                            if fills > 0 {
                                // Landed misses and promoted L2 rows both
                                // gain L1 residency: a posted HBM write,
                                // off the critical path. Thrash-bypassed
                                // misses and non-exclusive L2 serves fill
                                // nothing.
                                ops.push(WarpOp::CacheFill { bytes: fills * row_bytes });
                            }
                            if p.demoted > 0 {
                                // Victims of those admissions drop one
                                // level, not out: posted PCIe write-back.
                                ops.push(WarpOp::L2Demote { bytes: p.demoted * row_bytes });
                            }
                        }
                        ops.push(WarpOp::GlobalWrite { bytes: row_bytes });
                    }
                }
                KernelVariant::SyncRemote => {
                    if let Some(l) = lnp {
                        ops.push(WarpOp::GlobalRead { bytes: l.len * row_bytes });
                        ops.push(WarpOp::Compute {
                            cycles: aggregation_cycles(l.len, self.dim),
                        });
                        ops.push(WarpOp::GlobalWrite { bytes: row_bytes });
                    }
                    if let Some(r) = rnp {
                        match plan {
                            Some(p) => {
                                if p.hits > 0 {
                                    // Blocking ablation: the cached read
                                    // stalls through the HBM queue.
                                    ops.push(WarpOp::CacheHit {
                                        bytes: p.hits * row_bytes,
                                        nbi: false,
                                    });
                                }
                                if p.l2_hits > 0 {
                                    // Blocking ablation: the PCIe read
                                    // stalls the warp like everything else.
                                    ops.push(WarpOp::L2Get {
                                        bytes: p.l2_hits * row_bytes,
                                        nbi: false,
                                    });
                                }
                                for &peer in &p.miss_peers {
                                    ops.push(WarpOp::RemoteGet {
                                        peer,
                                        bytes: row_bytes,
                                        nbi: false,
                                    });
                                }
                            }
                            None => {
                                for rr in &remote_adj
                                    [r.start as usize..(r.start + r.len as u64) as usize]
                                {
                                    ops.push(WarpOp::RemoteGet {
                                        peer: rr.owner,
                                        bytes: row_bytes,
                                        nbi: false,
                                    });
                                }
                            }
                        }
                        ops.push(WarpOp::Compute {
                            cycles: aggregation_cycles(r.len, self.dim),
                        });
                        if let Some(p) = plan {
                            let fills = p.admitted + p.promoted;
                            if fills > 0 {
                                ops.push(WarpOp::CacheFill { bytes: fills * row_bytes });
                            }
                            if p.demoted > 0 {
                                ops.push(WarpOp::L2Demote { bytes: p.demoted * row_bytes });
                            }
                        }
                        ops.push(WarpOp::GlobalWrite { bytes: row_bytes });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::build_plans;
    use mgg_graph::generators::rmat::{rmat, RmatConfig};
    use mgg_sim::{Cluster, ClusterSpec, GpuSim, NoPaging};

    fn setup(gpus: usize) -> (HybridPlacement, AnalyticalModel) {
        let g = rmat(&RmatConfig::graph500(10, 10_000, 23));
        let placement = HybridPlacement::plan(&g, gpus);
        let model = AnalyticalModel::new(mgg_sim::GpuSpec::a100(), 128);
        (placement, model)
    }

    #[test]
    fn cycles_scale_with_len_and_dim() {
        assert!(aggregation_cycles(16, 602) > aggregation_cycles(16, 32));
        assert!(aggregation_cycles(16, 128) > aggregation_cycles(4, 128));
        assert_eq!(
            aggregation_cycles(1, 32),
            CYCLES_PER_DIM_CHUNK + PARTITION_OVERHEAD_CYCLES
        );
    }

    #[test]
    fn kernel_runs_and_produces_time() {
        let (placement, model) = setup(4);
        let cfg = MggConfig::default_fixed();
        let plans = build_plans(&placement, cfg.ps);
        let kernel = MggKernel::build(
            &placement,
            &plans,
            &cfg,
            128,
            &model,
            KernelVariant::AsyncPipelined,
            MappingMode::Interleaved,
        );
        let mut cluster = Cluster::new(ClusterSpec::dgx_a100(4));
        let stats = GpuSim::run(&mut cluster, &kernel, &mut NoPaging).unwrap();
        assert!(stats.makespan_ns() > 0);
        assert!(stats.traffic.remote_bytes() > 0, "remote gets must hit the fabric");
    }

    #[test]
    fn async_beats_sync() {
        let (placement, model) = setup(4);
        let cfg = MggConfig::default_fixed();
        let plans = build_plans(&placement, cfg.ps);
        let time = |variant| {
            let kernel = MggKernel::build(
                &placement,
                &plans,
                &cfg,
                128,
                &model,
                variant,
                MappingMode::Interleaved,
            );
            let mut cluster = Cluster::new(ClusterSpec::dgx_a100(4));
            GpuSim::run(&mut cluster, &kernel, &mut NoPaging).unwrap().makespan_ns()
        };
        let async_t = time(KernelVariant::AsyncPipelined);
        let sync_t = time(KernelVariant::SyncRemote);
        assert!(
            async_t < sync_t,
            "pipelined ({async_t}) must beat sync ({sync_t})"
        );
    }

    #[test]
    fn interleaved_beats_separated() {
        let (placement, model) = setup(4);
        let cfg = MggConfig { ps: 16, dist: 1, wpb: 2 };
        let plans = build_plans(&placement, cfg.ps);
        let time = |mapping| {
            let kernel = MggKernel::build(
                &placement,
                &plans,
                &cfg,
                128,
                &model,
                KernelVariant::AsyncPipelined,
                mapping,
            );
            let mut cluster = Cluster::new(ClusterSpec::dgx_a100(4));
            GpuSim::run(&mut cluster, &kernel, &mut NoPaging).unwrap().makespan_ns()
        };
        let inter = time(MappingMode::Interleaved);
        let sep = time(MappingMode::Separated);
        assert!(inter < sep, "interleaved ({inter}) must beat separated ({sep})");
    }

    #[test]
    fn every_neighbor_appears_in_some_trace() {
        let (placement, model) = setup(2);
        let cfg = MggConfig { ps: 8, dist: 2, wpb: 2 };
        let plans = build_plans(&placement, cfg.ps);
        let kernel = MggKernel::build(
            &placement,
            &plans,
            &cfg,
            64,
            &model,
            KernelVariant::AsyncPipelined,
            MappingMode::Interleaved,
        );
        // Count remote gets in all traces; must equal total remote edges.
        let mut gets = 0u64;
        for pe in 0..2 {
            let launch = kernel.launch(pe);
            for b in 0..launch.blocks {
                for w in 0..launch.warps_per_block {
                    for op in kernel.warp_ops(pe, b, w) {
                        if matches!(op, WarpOp::RemoteGet { .. }) {
                            gets += 1;
                        }
                    }
                }
            }
        }
        let want: u64 =
            placement.parts.iter().map(|p| p.remote.num_entries() as u64).sum();
        assert_eq!(gets, want);
    }
}
