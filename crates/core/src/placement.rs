//! Hybrid GNN data placement (§3.2, Figure 5).
//!
//! Node embeddings (large, remotely accessed) go into the NVSHMEM
//! symmetric heap, partitioned across GPUs by the edge-balanced node
//! split. Graph topology (small, scalar, locally accessed) goes into each
//! GPU's private memory, with remote neighbor ids pre-translated from
//! global node ids to `(owner GPU, local offset)` pairs — the Figure-5
//! conversion that makes symmetric-heap addressing work.

use mgg_graph::partition::locality::{self, LocalityPartition};
use mgg_graph::{CsrGraph, NodeSplit};
use mgg_gnn::Matrix;
use mgg_shmem::SymmetricRegion;

/// The placed input of one multi-GPU aggregation.
#[derive(Debug, Clone)]
pub struct HybridPlacement {
    /// Node ownership ranges (edge-balanced by default).
    pub split: NodeSplit,
    /// Per-GPU local/remote virtual CSRs ("private" graph memory).
    pub parts: Vec<LocalityPartition>,
    /// Rows owned per GPU, for symmetric-heap allocation.
    pub rows_per_pe: Vec<usize>,
}

impl HybridPlacement {
    /// Plans placement of `graph` over `num_gpus` GPUs using the
    /// edge-balanced node split (Algorithm 1).
    pub fn plan(graph: &CsrGraph, num_gpus: usize) -> Self {
        let split = NodeSplit::edge_balanced(graph, num_gpus);
        Self::from_split(graph, split)
    }

    /// Plans placement with a caller-provided split (e.g. uniform, for
    /// baselines or ablations).
    pub fn from_split(graph: &CsrGraph, split: NodeSplit) -> Self {
        let parts = locality::build(graph, &split);
        let rows_per_pe = (0..split.num_parts()).map(|g| split.part_nodes(g)).collect();
        HybridPlacement { split, parts, rows_per_pe }
    }

    /// Number of GPUs planned for.
    pub fn num_gpus(&self) -> usize {
        self.parts.len()
    }

    /// Scatters a dense feature matrix into the symmetric heap according
    /// to the node split (the `nvshmem_malloc` + partition step).
    pub fn place_embeddings(&self, x: &Matrix) -> SymmetricRegion {
        SymmetricRegion::scatter_rows(x.data(), &self.rows_per_pe, x.cols())
    }

    /// Gathers a symmetric region back into a dense matrix (host-side
    /// readback after the kernel).
    pub fn gather_embeddings(&self, region: &SymmetricRegion) -> Matrix {
        let total: usize = self.rows_per_pe.iter().sum();
        Matrix::from_vec(total, region.dim(), region.gather_rows())
    }

    /// Bytes of embedding storage each GPU's symmetric-heap partition
    /// needs at dimension `dim` (rows x dim x 4).
    pub fn embedding_bytes_per_gpu(&self, dim: usize) -> Vec<u64> {
        self.rows_per_pe.iter().map(|&r| r as u64 * dim as u64 * 4).collect()
    }

    /// Checks that every GPU's embedding partition (plus the private graph
    /// structure) fits its device memory, leaving `headroom` of the
    /// capacity for activations and scratch.
    pub fn check_memory(
        &self,
        dim: usize,
        spec: &mgg_sim::GpuSpec,
        headroom: f64,
    ) -> Result<(), String> {
        assert!((0.0..1.0).contains(&headroom), "headroom must be in [0, 1)");
        let budget = (spec.dram_bytes as f64 * (1.0 - headroom)) as u64;
        for (pe, (bytes, part)) in self
            .embedding_bytes_per_gpu(dim)
            .iter()
            .zip(&self.parts)
            .enumerate()
        {
            // Edge lists: ~8 B per local entry, ~12 B per remote entry.
            let graph_bytes =
                8 * part.local.num_entries() as u64 + 12 * part.remote.num_entries() as u64;
            let total = bytes + graph_bytes;
            if total > budget {
                return Err(format!(
                    "GPU {pe} needs {total} B (embeddings {bytes} + graph {graph_bytes})                      but only {budget} B are available"
                ));
            }
        }
        Ok(())
    }

    /// Average remote-edge fraction over GPUs — the communication pressure
    /// this placement faces.
    pub fn remote_fraction(&self) -> f64 {
        if self.parts.is_empty() {
            return 0.0;
        }
        self.parts.iter().map(|p| p.remote_fraction()).sum::<f64>() / self.parts.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgg_graph::generators::regular::ring;
    use mgg_graph::generators::rmat::{rmat, RmatConfig};

    #[test]
    fn plan_covers_all_nodes_and_edges() {
        let g = rmat(&RmatConfig::graph500(10, 8_000, 3));
        let p = HybridPlacement::plan(&g, 4);
        assert_eq!(p.num_gpus(), 4);
        let nodes: usize = p.rows_per_pe.iter().sum();
        assert_eq!(nodes, g.num_nodes());
        let edges: usize =
            p.parts.iter().map(|lp| lp.local.num_entries() + lp.remote.num_entries()).sum();
        assert_eq!(edges, g.num_edges());
    }

    #[test]
    fn scatter_gather_roundtrip() {
        let g = ring(10);
        let p = HybridPlacement::plan(&g, 3);
        let x = Matrix::glorot(10, 4, 7);
        let region = p.place_embeddings(&x);
        let back = p.gather_embeddings(&region);
        assert_eq!(back, x);
    }

    #[test]
    fn region_rows_match_split() {
        let g = ring(9);
        let p = HybridPlacement::plan(&g, 2);
        let x = Matrix::glorot(9, 2, 1);
        let region = p.place_embeddings(&x);
        for pe in 0..2 {
            assert_eq!(region.rows_on(pe), p.split.part_nodes(pe));
        }
    }

    #[test]
    fn memory_check_accepts_and_rejects() {
        let g = rmat(&RmatConfig::graph500(10, 8_000, 7));
        let p = HybridPlacement::plan(&g, 4);
        let spec = mgg_sim::GpuSpec::a100();
        // Realistic dims fit a 40 GB device easily.
        assert!(p.check_memory(602, &spec, 0.5).is_ok());
        // A tiny device does not fit.
        let mut small = spec.clone();
        small.dram_bytes = 64 * 1024;
        let err = p.check_memory(602, &small, 0.0).unwrap_err();
        assert!(err.contains("needs"), "{err}");
    }

    #[test]
    fn remote_fraction_bounded() {
        let g = rmat(&RmatConfig::graph500(9, 4_000, 5));
        let p = HybridPlacement::plan(&g, 8);
        let f = p.remote_fraction();
        assert!((0.0..=1.0).contains(&f));
        assert!(f > 0.5, "8-way split of a random graph is mostly remote, got {f}");
    }
}
