//! The MGG system: fine-grained intra-kernel communication-computation
//! pipelining for multi-GPU GNNs.
//!
//! This crate is the paper's primary contribution, structured after its §3
//! and §4:
//!
//! * [`config`] — the three tunable knobs: neighbor-partition size `ps`,
//!   interleaving distance `dist`, warps per block `wpb`, with the paper's
//!   search bounds (`ps ∈ [1,32]`, `dist ∈ [1,16]`, `wpb ∈ [1,16]`).
//! * [`placement`] — **hybrid GNN data placement** (§3.2): node embeddings
//!   in the NVSHMEM symmetric heap partitioned by the edge-balanced node
//!   split; graph topology in per-GPU private memory with remote ids
//!   pre-translated to `(owner, offset)`.
//! * [`workload`] — **pipeline-aware workload management** (§3.1):
//!   composes the node split, locality split and neighbor split into
//!   per-GPU lists of local/remote neighbor partitions.
//! * [`mapping`] — **warp-based mapping & interleaving** (§3.3): assigns
//!   `dist` local and `dist` remote partitions to each warp so every warp
//!   can overlap communication with computation, and so SMs receive a mix
//!   of both workload types.
//! * [`kernel`] — the **pipeline-centric kernel** (§3.3–§3.4): per-warp
//!   operation traces implementing the asynchronous Figure-7(b) pipeline
//!   (issue non-blocking remote gets, aggregate local neighbors while data
//!   flies, then aggregate the landed remote data), the synchronous
//!   Figure-7(a) variant for ablation, and the Listing-2 shared-memory
//!   layout.
//! * [`model`] — **analytical modeling** (§4, Equations 1–3): workload per
//!   warp, shared memory per block, warp/block/SM counts, and hardware
//!   constraint checks.
//! * [`tuner`] — **cross-iteration optimization** (§4): the greedy
//!   `ps → dist → wpb` coordinate search with the "retreat ps" rule,
//!   top-3 stopping criterion and a configuration lookup table.
//! * [`executor`] — the end-to-end engine: implements
//!   [`mgg_gnn::Aggregator`] so GCN/GIN forward passes run on MGG, with
//!   functional outputs equal to the CPU reference and simulated timing
//!   from `mgg-sim`.

pub mod config;
pub mod error;
pub mod executor;
pub mod kernel;
pub mod mapping;
pub mod model;
pub mod placement;
pub mod replicated;
pub mod tuner;
pub mod workload;

pub use config::MggConfig;
pub use error::MggError;
pub use executor::{MggEngine, RecoveryAction, RecoveryReport};
pub use kernel::{KernelVariant, MggKernel};
pub use model::AnalyticalModel;
pub use replicated::ReplicatedEngine;
pub use tuner::{TuneResult, Tuner};
pub use workload::WorkPlan;
