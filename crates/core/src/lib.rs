//! The MGG system: fine-grained intra-kernel communication-computation
//! pipelining for multi-GPU GNNs.
//!
//! This crate is the paper's primary contribution, structured after its §3
//! and §4:
//!
//! * [`config`] — the three tunable knobs: neighbor-partition size `ps`,
//!   interleaving distance `dist`, warps per block `wpb`, with the paper's
//!   search bounds (`ps ∈ [1,32]`, `dist ∈ [1,16]`, `wpb ∈ [1,16]`).
//! * [`placement`] — **hybrid GNN data placement** (§3.2): node embeddings
//!   in the NVSHMEM symmetric heap partitioned by the edge-balanced node
//!   split; graph topology in per-GPU private memory with remote ids
//!   pre-translated to `(owner, offset)`.
//! * [`workload`] — **pipeline-aware workload management** (§3.1):
//!   composes the node split, locality split and neighbor split into
//!   per-GPU lists of local/remote neighbor partitions.
//! * [`mapping`] — **warp-based mapping & interleaving** (§3.3): assigns
//!   `dist` local and `dist` remote partitions to each warp so every warp
//!   can overlap communication with computation, and so SMs receive a mix
//!   of both workload types.
//! * [`kernel`] — the **pipeline-centric kernel** (§3.3–§3.4): per-warp
//!   operation traces implementing the asynchronous Figure-7(b) pipeline
//!   (issue non-blocking remote gets, aggregate local neighbors while data
//!   flies, then aggregate the landed remote data), the synchronous
//!   Figure-7(a) variant for ablation, and the Listing-2 shared-memory
//!   layout.
//! * [`model`] — **analytical modeling** (§4, Equations 1–3): workload per
//!   warp, shared memory per block, warp/block/SM counts, and hardware
//!   constraint checks.
//! * [`tuner`] — **cross-iteration optimization** (§4): the greedy
//!   `ps → dist → wpb` coordinate search with the "retreat ps" rule,
//!   top-3 stopping criterion and a configuration lookup table.
//! * [`executor`] — the end-to-end engine: implements
//!   [`mgg_gnn::Aggregator`] so GCN/GIN forward passes run on MGG, with
//!   functional outputs equal to the CPU reference and simulated timing
//!   from `mgg-sim`.
//!
//! # Quick start
//!
//! ```
//! use mgg_core::{CacheConfig, MggConfig, MggEngine};
//! use mgg_gnn::reference::AggregateMode;
//! use mgg_gnn::Matrix;
//! use mgg_graph::generators::rmat::{rmat, RmatConfig};
//! use mgg_sim::ClusterSpec;
//!
//! let graph = rmat(&RmatConfig::graph500(8, 2_000, 42));
//! let x = Matrix::glorot(graph.num_nodes(), 16, 7);
//!
//! // MGG on a simulated 4-GPU DGX-A100 slice.
//! let mut engine = MggEngine::new(
//!     &graph,
//!     ClusterSpec::dgx_a100(4),
//!     MggConfig::default_fixed(),
//!     AggregateMode::Sum,
//! );
//! let values = engine.aggregate_values(&x); // real f32 numbers
//! assert_eq!(values.rows(), graph.num_nodes());
//!
//! let nanos = engine.simulate_aggregation_ns(16)?; // simulated time
//! assert!(nanos > 0);
//!
//! // Opt into the remote-embedding cache: bit-identical values, fewer
//! // fabric round-trips.
//! engine.set_cache(Some(CacheConfig::from_mb(16)));
//! let (cached, stats) = engine.aggregate_values_cached(&x)?;
//! assert_eq!(cached.data(), values.data());
//! assert!(stats.hits + stats.misses > 0);
//!
//! // Tier it: L1 victims demote to a host-DRAM L2, the next warp's
//! // remote rows prefetch ahead. Still bit-identical.
//! engine.set_cache_l2(Some(CacheConfig::from_mb(256)));
//! engine.set_prefetch_depth(4);
//! let (tiered, _l1, tier) = engine.aggregate_values_tiered(&x)?;
//! assert_eq!(tiered.data(), values.data());
//! assert!(tier.dropped + tier.invalidated <= tier.demotions);
//! # Ok::<(), mgg_core::MggError>(())
//! ```

#![deny(missing_docs)]

pub mod config;
pub mod error;
pub mod executor;
pub mod kernel;
pub mod mapping;
pub mod model;
pub mod placement;
pub mod replicated;
pub mod tuner;
pub mod workload;

pub use config::MggConfig;
pub use error::MggError;
pub use mgg_cache::{CacheConfig, CachePolicy, CacheStats, TierStats};
pub use executor::{DeltaReport, MembershipReport, MggEngine, RecoveryAction, RecoveryReport};
pub use kernel::{KernelVariant, MggKernel};
pub use model::AnalyticalModel;
pub use replicated::ReplicatedEngine;
pub use tuner::{TuneResult, Tuner};
pub use workload::WorkPlan;
