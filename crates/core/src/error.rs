//! Structured error taxonomy of the MGG engine.
//!
//! The executor and CLI hot paths report failures through [`MggError`]
//! instead of panicking, so callers (the CLI, the bench harness, library
//! users) can distinguish a misconfiguration from a hardware-limit
//! violation from a communication failure and react accordingly.

use std::fmt;

use mgg_shmem::ShmemError;
use mgg_sim::LaunchError;

/// Any failure the MGG engine can report.
#[derive(Debug, Clone, PartialEq)]
pub enum MggError {
    /// The `(ps, dist, wpb)` configuration is outside the paper's bounds.
    InvalidConfig(String),
    /// A fault-injection spec is outside its documented domain.
    InvalidFaultSpec(String),
    /// The kernel launch violates a hardware limit of the target GPU.
    Launch(LaunchError),
    /// A resilient one-sided operation exhausted its recovery budget.
    Shmem(ShmemError),
    /// The installed failures exceed what elastic failover can absorb
    /// (e.g. no surviving GPU, or a corrupt checkpoint): the run cannot
    /// produce a correct answer and says so instead of hanging.
    Unrecoverable(String),
    /// A live-graph delta batch references nodes outside the graph (the
    /// whole batch is rejected; nothing was applied).
    InvalidDelta(String),
    /// An elastic-membership change was refused by its health gate (e.g.
    /// re-joining a dead shard, or draining the last live one).
    MembershipRejected(String),
}

impl fmt::Display for MggError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MggError::InvalidConfig(msg) => write!(f, "invalid MGG configuration: {msg}"),
            MggError::InvalidFaultSpec(msg) => write!(f, "invalid fault spec: {msg}"),
            MggError::Launch(e) => write!(f, "kernel launch rejected: {e}"),
            MggError::Shmem(e) => write!(f, "communication failure: {e}"),
            MggError::Unrecoverable(msg) => write!(f, "unrecoverable failure: {msg}"),
            MggError::InvalidDelta(msg) => write!(f, "invalid graph delta: {msg}"),
            MggError::MembershipRejected(msg) => write!(f, "membership change rejected: {msg}"),
        }
    }
}

impl std::error::Error for MggError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MggError::Launch(e) => Some(e),
            MggError::Shmem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LaunchError> for MggError {
    fn from(e: LaunchError) -> Self {
        MggError::Launch(e)
    }
}

impl From<ShmemError> for MggError {
    fn from(e: ShmemError) -> Self {
        MggError::Shmem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = MggError::InvalidConfig("ps out of range".into());
        assert!(e.to_string().contains("ps out of range"));
        let e: MggError = LaunchError::ZeroWarps.into();
        assert!(e.to_string().contains("launch rejected"));
        let e: MggError = ShmemError::GetFailed { pe: 2, row: 5, attempts: 4 }.into();
        assert!(e.to_string().contains("communication failure"));
        let e = MggError::Unrecoverable("all GPUs dead".into());
        assert!(e.to_string().contains("unrecoverable"));
        let e = MggError::InvalidDelta("node 99 out of range".into());
        assert!(e.to_string().contains("invalid graph delta"));
        let e = MggError::MembershipRejected("shard 2 is dead".into());
        assert!(e.to_string().contains("rejected"));
    }

    #[test]
    fn sources_chain() {
        use std::error::Error;
        let e: MggError = LaunchError::ZeroWarps.into();
        assert!(e.source().is_some());
        assert!(MggError::InvalidConfig("x".into()).source().is_none());
    }
}
