//! Figure 8: MGG vs the UVM-based design, end to end.
//!
//! Paper result: on DGX-A100, MGG averages 3.16× (GCN) and 4.15× (GIN)
//! over the UVM design across the five datasets and 4/8 GPU settings,
//! with speedups growing with GPU count and edge count.

use mgg_baselines::UvmGnnEngine;
use mgg_core::{MggConfig, MggEngine, Tuner};
use mgg_gnn::models::{DenseCostModel, ModelKind};
use mgg_gnn::reference::AggregateMode;
use mgg_sim::ClusterSpec;
use serde::Serialize;

use crate::experiments::common::{datasets, model_time_ns};
use crate::report::{geomean, ExperimentReport};

/// Serialized `fig8 row` record of this experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Model.
    pub model: &'static str,
    /// Number of GPUs.
    pub gpus: usize,
    /// Uvm, in simulated ms.
    pub uvm_ms: f64,
    /// Mgg, in simulated ms.
    pub mgg_ms: f64,
    /// Baseline latency over this configuration’s.
    pub speedup: f64,
}

/// Serialized `fig8 report` record of this experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Report {
    /// Per-cell sweep rows.
    pub rows: Vec<Fig8Row>,
    /// Geomean gcn.
    pub geomean_gcn: f64,
    /// Geomean gin.
    pub geomean_gin: f64,
}

/// Picks a good MGG configuration for this workload with the §4 tuner.
pub fn tuned_engine(
    graph: &mgg_graph::CsrGraph,
    spec: ClusterSpec,
    mode: AggregateMode,
    dim: usize,
) -> MggEngine {
    let mut engine = MggEngine::new(graph, spec.clone(), MggConfig::initial(), mode);
    let model = mgg_core::AnalyticalModel::new(spec.gpu.clone(), dim);
    let result = {
        let engine_cell = std::cell::RefCell::new(&mut engine);
        Tuner::new(|cfg: &MggConfig| {
            let mut e = engine_cell.borrow_mut();
            e.set_config(*cfg).expect("search configs are valid");
            e.simulate_aggregation_ns(dim).unwrap_or(u64::MAX)
        })
        .with_feasibility(move |cfg| model.feasible(cfg))
        .run()
    };
    engine.set_config(result.best).expect("search configs are valid");
    engine
}

/// Runs the full Figure-8 sweep.
pub fn run(scale: f64) -> Fig8Report {
    // The dataset x GPU-count x model grid: every cell is an independent
    // tuned-vs-UVM comparison, so the whole grid fans out as parallel jobs
    // and merges in grid order (identical rows to the serial nested loop).
    let ds = datasets(scale);
    let mut cells: Vec<(usize, usize, ModelKind, &'static str)> = Vec::new();
    for di in 0..ds.len() {
        for &gpus in &[4usize, 8] {
            for (kind, name) in [(ModelKind::Gcn, "GCN"), (ModelKind::Gin, "GIN")] {
                cells.push((di, gpus, kind, name));
            }
        }
    }
    let _lbl = mgg_runtime::profile::region_label("bench.fig8");
    let rows: Vec<Fig8Row> = mgg_runtime::par_map(&cells, |&(di, gpus, kind, name)| {
        let d = &ds[di];
        let spec = ClusterSpec::dgx_a100(gpus);
        let cost = DenseCostModel::a100(gpus);
        let n = d.graph.num_nodes();
        let mode = kind.aggregate_mode();
        // Tune for the model's dominant aggregation dimension:
        // GCN aggregates at the hidden width (transform-first),
        // GIN's first layer aggregates the raw features.
        let tune_dim = match kind {
            ModelKind::Gcn => kind.hidden_dim().min(d.spec.dim),
            ModelKind::Gin => d.spec.dim,
        };

        let mut mgg = tuned_engine(&d.graph, spec.clone(), mode, tune_dim);
        let mgg_ns = model_time_ns(&mut mgg, kind, n, d.spec.dim, d.spec.classes, &cost);

        let mut uvm = UvmGnnEngine::new(&d.graph, spec, mode);
        let uvm_ns = model_time_ns(&mut uvm, kind, n, d.spec.dim, d.spec.classes, &cost);

        Fig8Row {
            dataset: d.spec.name,
            model: name,
            gpus,
            uvm_ms: uvm_ns as f64 / 1e6,
            mgg_ms: mgg_ns as f64 / 1e6,
            speedup: uvm_ns as f64 / mgg_ns.max(1) as f64,
        }
    });
    let geo = |model: &str| {
        geomean(
            &rows
                .iter()
                .filter(|r| r.model == model)
                .map(|r| r.speedup)
                .collect::<Vec<_>>(),
        )
    };
    let geomean_gcn = geo("GCN");
    let geomean_gin = geo("GIN");
    Fig8Report { rows, geomean_gcn, geomean_gin }
}

impl ExperimentReport for Fig8Report {
    fn id(&self) -> &'static str {
        "fig8"
    }

    fn print(&self) {
        println!("Figure 8: MGG vs UVM-based design on DGX-A100");
        println!(
            "{:<8} {:<5} {:>5} {:>10} {:>10} {:>9}",
            "dataset", "model", "GPUs", "UVM (ms)", "MGG (ms)", "speedup"
        );
        let max_speedup = self.rows.iter().map(|r| r.speedup).fold(0.0f64, f64::max);
        for r in &self.rows {
            println!(
                "{:<8} {:<5} {:>5} {:>10.3} {:>10.3} {:>8.2}x {}",
                r.dataset,
                r.model,
                r.gpus,
                r.uvm_ms,
                r.mgg_ms,
                r.speedup,
                crate::report::bar(r.speedup, max_speedup, 24)
            );
        }
        println!(
            "geomean speedup: GCN {:.2}x, GIN {:.2}x (paper: 3.16x and 4.15x)",
            self.geomean_gcn, self.geomean_gin
        );
    }
}
