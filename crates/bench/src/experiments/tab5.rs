//! Table 5: accuracy-latency tradeoff of GNNs with and without sampling.
//!
//! Paper result (RDD, PROT): full-graph (no-sampling) GNNs gain 2–5
//! points of node-classification accuracy over sampled training, at a
//! modest 1.07–1.25× latency premium.
//!
//! Our stand-in trains a real 2-layer GCN on SBM graphs with planted
//! communities and label-correlated features, sized after the two
//! datasets' class counts. Accuracy comes from actual training; the
//! latency ratio comes from simulating MGG aggregation on the full vs the
//! sampled graph (8×A100, as in the paper).

use mgg_core::{MggConfig, MggEngine};
use mgg_gnn::features::{label_features, split_masks};
use mgg_gnn::reference::AggregateMode;
use mgg_gnn::sampling::{sample_neighbors, SamplingConfig};
use mgg_gnn::train::{train_gcn, TrainConfig};
use mgg_graph::generators::random::{sbm, SbmConfig};
use mgg_sim::ClusterSpec;
use serde::Serialize;

use crate::report::ExperimentReport;

/// Serialized `tab5 row` record of this experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Tab5Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Acc sampled.
    pub acc_sampled: f64,
    /// Acc full.
    pub acc_full: f64,
    /// Latency of full-graph aggregation relative to sampled (>= 1).
    pub latency_ratio: f64,
}

/// Serialized `tab5 report` record of this experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Tab5Report {
    /// Number of GPUs.
    pub gpus: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Fanout.
    pub fanout: usize,
    /// Per-cell sweep rows.
    pub rows: Vec<Tab5Row>,
}

struct Task {
    name: &'static str,
    blocks: usize,
    block_size: usize,
    avg_degree_in: f64,
    avg_degree_out: f64,
    dim: usize,
    signal: f64,
    seed: u64,
}

/// Runs both classification tasks.
pub fn run(scale: f64, gpus: usize) -> Tab5Report {
    let epochs = 100;
    let fanout = 2;
    let size = |base: usize| ((base as f64 * scale) as usize).max(60);
    let tasks = [
        // Reddit-like: fewer classes, dense neighborhoods.
        Task {
            name: "RDD",
            blocks: 8,
            block_size: size(220),
            avg_degree_in: 14.0,
            avg_degree_out: 5.0,
            dim: 64,
            signal: 0.06,
            seed: 61,
        },
        // Proteins-like: many classes, harder task.
        Task {
            name: "PROT",
            blocks: 12,
            block_size: size(120),
            avg_degree_in: 12.0,
            avg_degree_out: 6.0,
            dim: 48,
            signal: 0.12,
            seed: 67,
        },
    ];
    // The two classification tasks (training + simulation) are independent;
    // run them as parallel jobs on the deterministic worker pool.
    let _lbl = mgg_runtime::profile::region_label("bench.tab5");
    let rows = mgg_runtime::par_map(&tasks, |t| {
        let out = sbm(&SbmConfig {
            block_sizes: vec![t.block_size; t.blocks],
            avg_degree_in: t.avg_degree_in,
            avg_degree_out: t.avg_degree_out,
            seed: t.seed,
        });
        let x = label_features(&out.labels, t.blocks, t.dim, t.signal, t.seed + 1);
        let n = out.graph.num_nodes();
        let (tr, va, te) = split_masks(n, 0.3, 0.2, t.seed + 2);

        let full = train_gcn(
            &out.graph,
            &x,
            &out.labels,
            t.blocks,
            &tr,
            &va,
            &te,
            &TrainConfig::paper(epochs, t.seed + 3),
        );
        let sampled = train_gcn(
            &out.graph,
            &x,
            &out.labels,
            t.blocks,
            &tr,
            &va,
            &te,
            &TrainConfig::paper_sampled(epochs, t.seed + 3, fanout),
        );

        // Latency ratio: simulated MGG aggregation on the full graph
        // vs a representative sampled subgraph.
        let spec = ClusterSpec::dgx_a100(gpus);
        let mut full_engine = MggEngine::new(
            &out.graph,
            spec.clone(),
            MggConfig::default_fixed(),
            AggregateMode::GcnNorm,
        );
        let t_full =
            full_engine.simulate_aggregation_ns(t.dim).expect("valid launch");
        let sampled_graph =
            sample_neighbors(&out.graph, &SamplingConfig { fanout, seed: t.seed + 4 });
        let mut sampled_engine = MggEngine::new(
            &sampled_graph,
            spec,
            MggConfig::default_fixed(),
            AggregateMode::GcnNorm,
        );
        let t_sampled =
            sampled_engine.simulate_aggregation_ns(t.dim).expect("valid launch");

        Tab5Row {
            dataset: t.name,
            acc_sampled: sampled.test_accuracy,
            acc_full: full.test_accuracy,
            latency_ratio: t_full as f64 / t_sampled.max(1) as f64,
        }
    });
    Tab5Report { gpus, epochs, fanout, rows }
}

impl ExperimentReport for Tab5Report {
    fn id(&self) -> &'static str {
        "tab5"
    }

    fn print(&self) {
        println!(
            "Table 5: accuracy-latency of GNNs w/ and w/o sampling ({} GPUs, {} epochs, fanout {})",
            self.gpus, self.epochs, self.fanout
        );
        println!(
            "{:<8} {:>14} {:>14} {:>22}",
            "dataset", "acc w/ sample", "acc w/o sample", "latency (w/o vs w/)"
        );
        for r in &self.rows {
            println!(
                "{:<8} {:>14.3} {:>14.3} {:>21.2}x",
                r.dataset, r.acc_sampled, r.acc_full, r.latency_ratio
            );
        }
        println!("(paper: +2-5 accuracy points without sampling, at 1.07x-1.25x latency)");
    }
}
