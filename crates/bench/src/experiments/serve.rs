//! `ext_serve`: overload and degradation behaviour of the serving layer —
//! the artifact behind `mgg-serve`.
//!
//! For every Table-3 dataset the experiment calibrates a [`Server`] on the
//! MGG engine, then offers seeded Poisson query streams at 0.5x, 1.0x and
//! 2.0x the calibrated saturation rate, plus a degraded-GPU scenario (a
//! 4.0x straggler under 1.0x load). The same scenario set runs on the
//! sequential and the parallel worker pool and must produce identical
//! decision digests (`replay_matches`).
//!
//! The stable robustness signals (the JSON's raison d'être in CI):
//!
//! * at 2.0x overload the server sheds (`overload_sheds`) while admitted
//!   queries still meet their deadline p99 (`overload_p99_within_deadline`)
//!   and goodput stays within 10% of the measured saturation goodput
//!   (`overload_goodput_ratio >= 0.9`) — shedding, not congestion collapse;
//! * under a straggling GPU the affected shard's breaker opens and rerouting
//!   never manufactures a deadline violation
//!   (`degraded_breaker_opened`, `degraded_routing_violations == 0`).

use mgg_core::{MggConfig, MggEngine};
use mgg_fault::{FaultSchedule, FaultSpec};
use mgg_gnn::reference::AggregateMode;
use mgg_serve::{ServeConfig, ServeOutcome, Server, WorkloadSpec};
use mgg_sim::ClusterSpec;
use serde::Serialize;

use crate::experiments::common::datasets;
use crate::report::ExperimentReport;

/// Offered-load multipliers of the calibrated saturation rate.
const LOAD_MULTS: &[f64] = &[0.5, 1.0, 2.0];

/// Straggler slowdown of the degraded-GPU scenario.
const STRAGGLER: f64 = 4.0;

/// One (dataset, offered-load) cell of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ServeLoadRow {
    /// Dataset name.
    pub dataset: String,
    /// Offered load as a multiple of calibrated saturation.
    pub load_mult: f64,
    /// Offered.
    pub offered: u64,
    /// Queries admitted past the queue.
    pub admitted: u64,
    /// Shed queue.
    pub shed_queue: u64,
    /// Shed fraction.
    pub shed_rate: u64,
    /// Shed infeasible.
    pub shed_infeasible: u64,
    /// Shed unavailable.
    pub shed_unavailable: u64,
    /// Shed fraction.
    pub shed_fraction: f64,
    /// In-deadline completions per second of simulated time.
    pub goodput_qps: f64,
    /// Calibrated full-batch healthy throughput.
    pub saturation_qps: f64,
    /// Median latency, ns.
    pub p50_ns: u64,
    /// P95, in simulated ns.
    pub p95_ns: u64,
    /// 99th-percentile latency, ns.
    pub p99_ns: u64,
    /// The per-query latency budget of this run.
    pub deadline_ns: u64,
    /// P99 within deadline.
    pub p99_within_deadline: bool,
    /// Deadline violations.
    pub deadline_violations: u64,
    /// Rerouted.
    pub rerouted: u64,
    /// Batches.
    pub batches: u64,
    /// Mean batch.
    pub mean_batch: f64,
    /// FNV-1a fingerprint of the full decision trace.
    pub digest: String,
}

/// The degraded-GPU scenario of one dataset.
#[derive(Debug, Clone, Serialize)]
pub struct ServeFaultRow {
    /// Dataset name.
    pub dataset: String,
    /// Shards the fault schedule impairs.
    pub impaired_shards: Vec<usize>,
    /// Whether a breaker opened on every impaired shard.
    pub breaker_opened: bool,
    /// Breaker transitions.
    pub breaker_transitions: u64,
    /// Rerouted.
    pub rerouted: u64,
    /// Hedges.
    pub hedges: u64,
    /// Deadline violations attributable to rerouting (must stay 0: the
    /// admission feasibility check prices the relay surcharge up front).
    pub routing_violations: u64,
    /// Deadline violations.
    pub deadline_violations: u64,
    /// Shed fraction.
    pub shed_fraction: f64,
    /// Queries answered within deadline per second.
    pub goodput_qps: f64,
    /// Digest.
    pub digest: String,
}

/// The `ext_serve` report: load sweep, degradation runs, replay check.
#[derive(Debug, Clone, Serialize)]
pub struct ServeBenchReport {
    /// Number of GPUs.
    pub gpus: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Simulated workload window per run, in ns.
    pub duration_ns: u64,
    /// Per-cell sweep rows.
    pub rows: Vec<ServeLoadRow>,
    /// Faults.
    pub faults: Vec<ServeFaultRow>,
    /// Worst-case over datasets of goodput(2.0x) / goodput(1.0x): overload
    /// must not collapse the measured saturation goodput.
    pub overload_goodput_ratio: f64,
    /// Every dataset shed at 2.0x offered load.
    pub overload_sheds: bool,
    /// Every dataset's admitted p99 stayed inside the deadline at 2.0x.
    pub overload_p99_within_deadline: bool,
    /// Every degraded run opened the impaired shard's breaker.
    pub degraded_breaker_opened: bool,
    /// Total routing-attributable deadline violations across all degraded
    /// runs (must be 0).
    pub degraded_routing_violations: u64,
    /// The whole scenario set replays digest-identically on a sequential
    /// (`--threads 1`) and a parallel pool.
    pub replay_matches: bool,
}

fn load_row(dataset: &str, mult: f64, spec: &WorkloadSpec, out: &ServeOutcome) -> ServeLoadRow {
    let s = &out.summary;
    ServeLoadRow {
        dataset: dataset.to_string(),
        load_mult: mult,
        offered: s.offered,
        admitted: s.admitted,
        shed_queue: s.shed_queue,
        shed_rate: s.shed_rate,
        shed_infeasible: s.shed_infeasible,
        shed_unavailable: s.shed_unavailable,
        shed_fraction: s.shed_fraction,
        goodput_qps: s.goodput_qps,
        saturation_qps: s.saturation_qps,
        p50_ns: s.p50_ns,
        p95_ns: s.p95_ns,
        p99_ns: s.p99_ns,
        deadline_ns: spec.deadline_ns,
        p99_within_deadline: s.p99_ns <= spec.deadline_ns,
        deadline_violations: s.deadline_violations,
        rerouted: s.rerouted,
        batches: s.batches,
        mean_batch: s.mean_batch,
        digest: s.digest.clone(),
    }
}

/// Runs the `ext_serve` experiment.
pub fn run(scale: f64, gpus: usize) -> ServeBenchReport {
    let dim = 64;
    let mut rows = Vec::new();
    let mut faults = Vec::new();
    let mut goodput_ratio = f64::INFINITY;
    let mut sheds = true;
    let mut p99_ok = true;
    let mut breaker_opened = true;
    let mut routing_violations = 0u64;
    let mut replay_matches = true;
    let mut duration_ns = 0;

    for ds in datasets(scale) {
        let mut engine = MggEngine::new(
            &ds.graph,
            ClusterSpec::dgx_a100(gpus),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let server = Server::new(&mut engine, dim, ServeConfig::default())
            .expect("serving calibration");
        let sat = server.calibration().saturation_qps;

        // Scenario set: the load sweep plus the degraded-GPU run, all
        // executed through the same deterministic fan-out.
        let mut scenarios: Vec<(WorkloadSpec, FaultSchedule)> = LOAD_MULTS
            .iter()
            .map(|m| {
                (WorkloadSpec::poisson(42, sat * m, ds.graph.num_nodes()), FaultSchedule::quiet(gpus))
            })
            .collect();
        let straggler = FaultSchedule::derive(
            &FaultSpec { seed: 5, straggler: STRAGGLER, ..FaultSpec::default() },
            gpus,
        );
        scenarios.push((
            WorkloadSpec::poisson(42, sat, ds.graph.num_nodes()),
            straggler.clone(),
        ));
        duration_ns = scenarios[0].0.duration_ns;

        let outs = server.run_sweep(&scenarios);
        let seq_outs = mgg_runtime::with_threads(1, || server.run_sweep(&scenarios));
        replay_matches &= outs
            .iter()
            .zip(&seq_outs)
            .all(|(a, b)| a.summary.digest == b.summary.digest && a == b);

        let mut goodput_at = [0.0f64; 2]; // [1.0x, 2.0x]
        for (i, mult) in LOAD_MULTS.iter().enumerate() {
            let row = load_row(ds.spec.name, *mult, &scenarios[i].0, &outs[i]);
            if *mult >= 1.0 {
                goodput_at[if *mult >= 2.0 { 1 } else { 0 }] = row.goodput_qps;
            }
            if *mult >= 2.0 {
                sheds &= row.shed_fraction > 0.0;
                p99_ok &= row.p99_within_deadline;
            }
            rows.push(row);
        }
        if goodput_at[0] > 0.0 {
            goodput_ratio = goodput_ratio.min(goodput_at[1] / goodput_at[0]);
        }

        let fo = &outs[LOAD_MULTS.len()];
        let impaired = straggler.impaired_gpus();
        let opened = impaired.iter().all(|s| {
            fo.transitions
                .iter()
                .any(|t| t.shard == *s && t.to == mgg_serve::BreakerState::Open)
        });
        breaker_opened &= opened;
        routing_violations += fo.summary.routing_violations;
        faults.push(ServeFaultRow {
            dataset: ds.spec.name.to_string(),
            impaired_shards: impaired,
            breaker_opened: opened,
            breaker_transitions: fo.transitions.len() as u64,
            rerouted: fo.summary.rerouted,
            hedges: fo.summary.hedges,
            routing_violations: fo.summary.routing_violations,
            deadline_violations: fo.summary.deadline_violations,
            shed_fraction: fo.summary.shed_fraction,
            goodput_qps: fo.summary.goodput_qps,
            digest: fo.summary.digest.clone(),
        });
    }

    ServeBenchReport {
        gpus,
        dim,
        duration_ns,
        rows,
        faults,
        overload_goodput_ratio: goodput_ratio,
        overload_sheds: sheds,
        overload_p99_within_deadline: p99_ok,
        degraded_breaker_opened: breaker_opened,
        degraded_routing_violations: routing_violations,
        replay_matches,
    }
}

impl ExperimentReport for ServeBenchReport {
    fn id(&self) -> &'static str {
        "ext_serve"
    }

    fn print(&self) {
        println!(
            "serving sweep on {} GPUs, dim {}, {:.1} ms window per run",
            self.gpus,
            self.dim,
            self.duration_ns as f64 / 1e6
        );
        println!(
            "{:<8} {:>5} {:>9} {:>9} {:>7} {:>11} {:>11} {:>9} {:>6}",
            "dataset", "load", "offered", "admitted", "shed%", "goodput", "saturation", "p99_us", "ok"
        );
        for r in &self.rows {
            println!(
                "{:<8} {:>4.1}x {:>9} {:>9} {:>6.1}% {:>9.2}M {:>9.2}M {:>9.1} {:>6}",
                r.dataset,
                r.load_mult,
                r.offered,
                r.admitted,
                100.0 * r.shed_fraction,
                r.goodput_qps / 1e6,
                r.saturation_qps / 1e6,
                r.p99_ns as f64 / 1e3,
                if r.p99_within_deadline { "yes" } else { "NO" }
            );
        }
        println!("\ndegraded-GPU runs ({STRAGGLER}x straggler, 1.0x load):");
        for f in &self.faults {
            println!(
                "  {:<8} impaired {:?}: breaker {}, {} transitions, {} rerouted, {} hedged, {} routing violations, goodput {:.2}M",
                f.dataset,
                f.impaired_shards,
                if f.breaker_opened { "opened" } else { "NEVER OPENED" },
                f.breaker_transitions,
                f.rerouted,
                f.hedges,
                f.routing_violations,
                f.goodput_qps / 1e6
            );
        }
        println!(
            "\noverload goodput ratio (2.0x vs 1.0x, worst dataset): {:.3}; sheds: {}; p99 in deadline: {}; breaker opened: {}; routing violations: {}; seq/par replay identical: {}",
            self.overload_goodput_ratio,
            self.overload_sheds,
            self.overload_p99_within_deadline,
            self.degraded_breaker_opened,
            self.degraded_routing_violations,
            self.replay_matches
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_report_holds_robustness_claims() {
        let r = run(0.05, 4);
        assert_eq!(r.rows.len(), 5 * LOAD_MULTS.len());
        assert_eq!(r.faults.len(), 5);
        assert!(r.overload_sheds, "2x overload must shed on every dataset");
        assert!(r.overload_p99_within_deadline);
        assert!(
            r.overload_goodput_ratio >= 0.9,
            "goodput ratio {} collapsed under overload",
            r.overload_goodput_ratio
        );
        assert!(r.degraded_breaker_opened);
        assert_eq!(r.degraded_routing_violations, 0);
        assert!(r.replay_matches);
    }
}
