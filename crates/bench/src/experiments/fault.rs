//! Extension: fault injection and graceful degradation.
//!
//! Measures what each deterministic fault class costs and how much of it
//! MGG's resilience layer claws back, against the UVM baseline under the
//! *same* fault schedule. Per fault class:
//!
//! * `mgg_healthy_ms` — MGG with no faults installed (reference).
//! * `mgg_faulty_ms` — MGG under the fault schedule, with graceful
//!   degradation (retries, completion timeouts, health-weighted
//!   re-planning) active.
//! * `overhead_pct` — faulty vs healthy slowdown after recovery.
//! * recovery counters — retried GETs, timed-out completions, degraded
//!   transfers, re-plans, and the recovery latency (detection pass plus
//!   retry/timeout charges).
//! * `uvm_faulty_ms` — the UVM baseline under the same schedule, which has
//!   no recovery path and simply rides out the degradation.
//!
//! Everything derives from one seed, so the table replays identically.

use mgg_core::{MggConfig, MggEngine};
use mgg_fault::{FaultSchedule, FaultSpec};
use mgg_gnn::reference::AggregateMode;
use mgg_graph::datasets::DatasetSpec;
use mgg_sim::ClusterSpec;
use serde::Serialize;

use crate::report::ExperimentReport;

const FAULT_SEED: u64 = 42;
const DIM: usize = 64;

/// Overhead at one fault intensity.
#[derive(Debug, Clone, Serialize)]
pub struct FaultRow {
    /// Class.
    pub class: &'static str,
    /// Mgg healthy ms.
    pub mgg_healthy_ms: f64,
    /// Mgg faulty ms.
    pub mgg_faulty_ms: f64,
    /// Overhead fraction.
    pub overhead_pct: f64,
    /// Retried gets.
    pub retried_gets: u64,
    /// Timed out completions.
    pub timed_out_completions: u64,
    /// Degraded transfers.
    pub degraded_transfers: u64,
    /// Replans.
    pub replans: u64,
    /// Recovery latency ms.
    pub recovery_latency_ms: f64,
    /// Uvm faulty ms.
    pub uvm_faulty_ms: f64,
}

/// The transient-fault overhead sweep.
#[derive(Debug, Clone, Serialize)]
pub struct FaultReport {
    /// Number of GPUs.
    pub gpus: usize,
    /// Workload RNG seed.
    pub seed: u64,
    /// Dataset name.
    pub dataset: String,
    /// Per-cell sweep rows.
    pub rows: Vec<FaultRow>,
}

fn fault_classes() -> Vec<(&'static str, FaultSpec)> {
    let quiet = FaultSpec { seed: FAULT_SEED, ..Default::default() };
    vec![
        ("none", quiet),
        ("link-degrade", FaultSpec { link_degrade: 0.5, ..quiet }),
        ("straggler", FaultSpec { straggler: 2.0, ..quiet }),
        ("drop-get", FaultSpec { drop_rate: 0.05, ..quiet }),
        (
            "combined",
            FaultSpec { link_degrade: 0.5, straggler: 2.0, drop_rate: 0.05, ..quiet },
        ),
    ]
}

/// Runs the fault-overhead study on the reddit stand-in.
pub fn run(scale: f64, gpus: usize) -> FaultReport {
    let d = DatasetSpec::rdd().build(scale);
    let spec = ClusterSpec::dgx_a100(gpus);

    let rows = fault_classes()
        .into_iter()
        .map(|(class, fs)| {
            let mut mgg = MggEngine::new(
                &d.graph,
                spec.clone(),
                MggConfig::default_fixed(),
                AggregateMode::Sum,
            );
            let healthy = mgg.simulate_aggregation_ns(DIM).expect("valid launch");
            mgg.install_faults(fs).expect("fault classes are valid");
            let stats = mgg.simulate_aggregation(DIM).expect("valid launch");
            let faulty = stats.makespan_ns() + spec.kernel_launch_ns;

            let mut uvm = mgg_baselines::UvmGnnEngine::new(&d.graph, spec.clone(), AggregateMode::Sum);
            uvm.cluster.install_faults(FaultSchedule::derive(&fs, gpus));
            let uvm_faulty = uvm.simulate_aggregation_ns(DIM);

            FaultRow {
                class,
                mgg_healthy_ms: healthy as f64 / 1e6,
                mgg_faulty_ms: faulty as f64 / 1e6,
                overhead_pct: 100.0 * (faulty as f64 / healthy.max(1) as f64 - 1.0),
                retried_gets: stats.recovery.retried_gets,
                timed_out_completions: stats.recovery.dropped_completions,
                degraded_transfers: stats.recovery.degraded_transfers,
                replans: stats.recovery.replans,
                recovery_latency_ms: stats.recovery.recovery_latency_ns as f64 / 1e6,
                uvm_faulty_ms: uvm_faulty as f64 / 1e6,
            }
        })
        .collect();

    FaultReport { gpus, seed: FAULT_SEED, dataset: d.spec.name.to_string(), rows }
}

impl ExperimentReport for FaultReport {
    fn id(&self) -> &'static str {
        "ext_fault"
    }

    fn print(&self) {
        println!(
            "Extension: fault injection and graceful degradation ({} on {} GPUs, seed {}, dim {})",
            self.dataset, self.gpus, self.seed, DIM
        );
        println!(
            "{:<14} {:>11} {:>10} {:>9} {:>8} {:>9} {:>9} {:>7} {:>10} {:>10}",
            "fault class",
            "healthy ms",
            "faulty ms",
            "ovhd %",
            "retries",
            "timeouts",
            "degraded",
            "replans",
            "rec. ms",
            "UVM ms"
        );
        for r in &self.rows {
            println!(
                "{:<14} {:>11.3} {:>10.3} {:>8.1}% {:>8} {:>9} {:>9} {:>7} {:>10.3} {:>10.3}",
                r.class,
                r.mgg_healthy_ms,
                r.mgg_faulty_ms,
                r.overhead_pct,
                r.retried_gets,
                r.timed_out_completions,
                r.degraded_transfers,
                r.replans,
                r.recovery_latency_ms,
                r.uvm_faulty_ms
            );
        }
        println!(
            "faults perturb timing only: functional outputs stay exact under every class"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_deterministic_and_sane() {
        let a = run(0.02, 4);
        let b = run(0.02, 4);
        assert_eq!(a.rows.len(), 5);
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.mgg_faulty_ms, rb.mgg_faulty_ms, "{}", ra.class);
            assert_eq!(ra.retried_gets, rb.retried_gets, "{}", ra.class);
        }
        // The quiet class is exactly overhead-free.
        let none = &a.rows[0];
        assert_eq!(none.mgg_healthy_ms, none.mgg_faulty_ms);
        assert_eq!(none.retried_gets + none.replans + none.degraded_transfers, 0);
        // Drop class recovers via retries.
        let drop = a.rows.iter().find(|r| r.class == "drop-get").unwrap();
        assert!(drop.retried_gets > 0);
        assert!(drop.mgg_faulty_ms >= drop.mgg_healthy_ms);
    }
}
