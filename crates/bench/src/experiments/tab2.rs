//! Table 2: qualitative comparison of the three communication designs.
//!
//! Reproduced verbatim from the paper and backed by this repository's
//! quantitative experiments: "CG" flexibility shows up in fig2/tab1, "GI"
//! (GPU-initiated) in fig7, programmability in the engine APIs, and
//! random-access quality in tab1/fig8.

use serde::Serialize;

use crate::report::ExperimentReport;

/// Serialized `tab2 row` record of this experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Tab2Row {
    /// Solution.
    pub solution: &'static str,
    /// Comm granularity.
    pub comm_granularity: &'static str,
    /// Gpu initiated.
    pub gpu_initiated: &'static str,
    /// Programmability.
    pub programmability: &'static str,
    /// Random access.
    pub random_access: &'static str,
}

/// Serialized `tab2 report` record of this experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Tab2Report {
    /// Per-cell sweep rows.
    pub rows: Vec<Tab2Row>,
}

/// Produces the qualitative table.
pub fn run() -> Tab2Report {
    Tab2Report {
        rows: vec![
            Tab2Row {
                solution: "Collective (2.1)",
                comm_granularity: "Flexible",
                gpu_initiated: "No",
                programmability: "High",
                random_access: "Poor",
            },
            Tab2Row {
                solution: "UVM (2.2)",
                comm_granularity: "Fixed",
                gpu_initiated: "No",
                programmability: "Low",
                random_access: "Moderate",
            },
            Tab2Row {
                solution: "SHMEM (2.3)",
                comm_granularity: "Flexible",
                gpu_initiated: "Yes",
                programmability: "High",
                random_access: "Good",
            },
        ],
    }
}

impl ExperimentReport for Tab2Report {
    fn id(&self) -> &'static str {
        "tab2"
    }

    fn print(&self) {
        println!("Table 2: Collective vs UVM vs SHMEM (qualitative)");
        println!(
            "{:<18} {:>10} {:>5} {:>6} {:>10}",
            "solution", "CG", "GI", "PG", "RA"
        );
        for r in &self.rows {
            println!(
                "{:<18} {:>10} {:>5} {:>6} {:>10}",
                r.solution, r.comm_granularity, r.gpu_initiated, r.programmability, r.random_access
            );
        }
    }
}
