//! `ext_cache`: remote-embedding cache sweep — the artifact behind
//! `mgg-cache`.
//!
//! For every Table-3 dataset the experiment simulates a multi-layer
//! aggregation pass uncached, then repeats it with the per-GPU
//! remote-embedding cache enabled at increasing capacity budgets. Each
//! cached row reports the per-layer mean latency, the hit/miss/coalesce
//! counters, and the speedup against the uncached baseline of the same
//! dataset. Because the engine keeps cache residency across kernels,
//! later layers re-hit rows fetched by earlier layers — the sweep shows
//! both intra-kernel coalescing and cross-layer reuse.
//!
//! The stable correctness signals (the JSON's raison d'être in CI):
//! hit rates are non-zero wherever capacity is, and the mean latency of
//! the best cached configuration beats the uncached baseline on at
//! least two datasets (`datasets_improved`).

use mgg_core::{CacheConfig, CachePolicy, MggConfig, MggEngine};
use mgg_gnn::reference::AggregateMode;
use mgg_sim::ClusterSpec;
use serde::Serialize;

use crate::experiments::common::datasets;
use crate::report::ExperimentReport;

/// Cache capacities swept per dataset, in MiB per GPU. `0` encodes the
/// uncached baseline row.
const SWEEP_MB: &[u32] = &[0, 1, 4, 16, 64];

/// One (dataset, cache-capacity) cell of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct CacheRow {
    pub dataset: String,
    /// Cache budget in MiB per GPU; 0 = caching disabled.
    pub cache_mb: u32,
    pub policy: String,
    /// Mean simulated latency of one aggregation layer, in ns.
    pub mean_latency_ns: u64,
    pub hits: u64,
    pub misses: u64,
    pub coalesced: u64,
    pub evictions: u64,
    /// hits / (hits + misses); coalesced requests are counted separately.
    pub hit_rate: f64,
    /// Uncached mean latency of the same dataset over this row's mean
    /// (> 1 means the cache helped).
    pub speedup_vs_uncached: f64,
}

/// The `ext_cache` report: the full sweep plus its headline claim.
#[derive(Debug, Clone, Serialize)]
pub struct CacheReport {
    pub gpus: usize,
    pub dim: usize,
    /// Aggregation layers simulated back-to-back per cell (residency
    /// carries across layers).
    pub layers: usize,
    pub rows: Vec<CacheRow>,
    /// Datasets whose best cached mean latency beats their uncached mean.
    pub datasets_improved: usize,
    pub dataset_count: usize,
}

/// Simulates `layers` aggregation passes and returns the mean makespan
/// with the cache counters accumulated across all of them.
fn run_cell(
    eng: &mut MggEngine,
    dim: usize,
    layers: usize,
    cfg: Option<CacheConfig>,
) -> (u64, mgg_core::CacheStats) {
    eng.set_cache(cfg); // resets residency and counters for this cell
    let mut total_ns: u64 = 0;
    for _ in 0..layers {
        let stats = eng.simulate_aggregation(dim).expect("valid launch");
        total_ns += stats.makespan_ns();
    }
    (total_ns / layers as u64, eng.cache_stats())
}

/// Runs the cache sweep at `scale`.
pub fn run(scale: f64, gpus: usize) -> CacheReport {
    let ds = datasets(scale);
    let dim = 64;
    let layers = 3;
    let mut rows: Vec<CacheRow> = Vec::new();
    let mut datasets_improved = 0usize;

    for d in &ds {
        let spec = ClusterSpec::dgx_a100(gpus);
        let mut eng =
            MggEngine::new(&d.graph, spec, MggConfig::default_fixed(), AggregateMode::Sum);

        let (base_ns, _) = run_cell(&mut eng, dim, layers, None);
        rows.push(CacheRow {
            dataset: d.spec.name.to_string(),
            cache_mb: 0,
            policy: "none".to_string(),
            mean_latency_ns: base_ns,
            hits: 0,
            misses: 0,
            coalesced: 0,
            evictions: 0,
            hit_rate: 0.0,
            speedup_vs_uncached: 1.0,
        });

        let mut best_cached = u64::MAX;
        for &mb in SWEEP_MB.iter().filter(|&&mb| mb > 0) {
            let cfg = CacheConfig::from_mb(mb).with_policy(CachePolicy::Lru);
            let (ns, cs) = run_cell(&mut eng, dim, layers, Some(cfg));
            best_cached = best_cached.min(ns);
            rows.push(CacheRow {
                dataset: d.spec.name.to_string(),
                cache_mb: mb,
                policy: cfg.policy.to_string(),
                mean_latency_ns: ns,
                hits: cs.hits,
                misses: cs.misses,
                coalesced: cs.coalesced,
                evictions: cs.evictions,
                hit_rate: cs.hit_rate(),
                speedup_vs_uncached: base_ns as f64 / ns.max(1) as f64,
            });
        }
        if best_cached < base_ns {
            datasets_improved += 1;
        }
    }

    CacheReport { gpus, dim, layers, rows, datasets_improved, dataset_count: ds.len() }
}

impl ExperimentReport for CacheReport {
    fn id(&self) -> &'static str {
        "ext_cache"
    }

    fn print(&self) {
        println!(
            "Remote-embedding cache sweep: {} layers of dim-{} aggregation on {} GPUs",
            self.layers, self.dim, self.gpus
        );
        println!(
            "{:<8} {:>6} {:>12} {:>10} {:>10} {:>9} {:>9} {:>8}",
            "dataset", "MiB", "mean (ms)", "hits", "misses", "coalesce", "hit rate", "speedup"
        );
        for r in &self.rows {
            println!(
                "{:<8} {:>6} {:>12.3} {:>10} {:>10} {:>9} {:>8.1}% {:>7.2}x",
                r.dataset,
                if r.cache_mb == 0 { "off".to_string() } else { r.cache_mb.to_string() },
                r.mean_latency_ns as f64 / 1e6,
                r.hits,
                r.misses,
                r.coalesced,
                100.0 * r.hit_rate,
                r.speedup_vs_uncached
            );
        }
        println!(
            "cache beat the uncached baseline on {}/{} datasets",
            self.datasets_improved, self.dataset_count
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_sweep_hits_and_beats_uncached() {
        let report = run(0.05, 4);
        assert_eq!(report.rows.len(), report.dataset_count * SWEEP_MB.len());
        // Every cached row must see traffic, and every enabled capacity a hit.
        for r in report.rows.iter().filter(|r| r.cache_mb > 0) {
            assert!(r.hits > 0, "{} @ {} MiB had no hits", r.dataset, r.cache_mb);
            assert!(r.hit_rate > 0.0, "{} @ {} MiB", r.dataset, r.cache_mb);
        }
        // The headline acceptance claim: faster than no-cache on >= 2 datasets.
        assert!(
            report.datasets_improved >= 2,
            "cache improved only {}/{} datasets",
            report.datasets_improved,
            report.dataset_count
        );
    }

    #[test]
    fn uncached_baseline_rows_report_no_cache_activity() {
        let report = run(0.03, 4);
        for r in report.rows.iter().filter(|r| r.cache_mb == 0) {
            assert_eq!((r.hits, r.misses, r.coalesced), (0, 0, 0), "{}", r.dataset);
            assert_eq!(r.speedup_vs_uncached, 1.0);
        }
    }
}
