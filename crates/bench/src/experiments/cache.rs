//! `ext_cache`: cache-tiering and prefetch sweep — the artifact behind
//! `mgg-cache`'s HBM cache, its host-DRAM L2 tier, and the deterministic
//! `_nbi` prefetcher.
//!
//! For every Table-3 dataset the experiment simulates a multi-layer
//! aggregation pass uncached, then repeats it across a grid of cache
//! configurations: the single-tier HBM sweep at increasing budgets (the
//! shape shipped by the original cache PR), an LFU cell at the 1 MiB
//! eviction-thrash point, and tiered cells that attach the host-DRAM L2
//! and the look-ahead prefetcher. Each cached row reports the per-layer
//! mean latency, the full L1/L2/prefetch counter set, and the speedup
//! against the uncached baseline of the same dataset. Because the engine
//! keeps cache residency across kernels, later layers re-hit rows fetched
//! by earlier layers — the sweep shows intra-kernel coalescing,
//! cross-layer reuse, demotion/promotion traffic, and prefetch accuracy
//! in one table.
//!
//! The stable correctness signals (the JSON's raison d'être in CI):
//!
//! * `datasets_improved`: the best cached configuration beats the
//!   uncached baseline on every dataset.
//! * `one_mib_floor`: the best 1 MiB configuration is never a slowdown —
//!   the eviction-thrash point is held at >= 1.0x by LFU + the pipelined
//!   (non-blocking) hit path.
//! * `replay_matches`: values digest and `CacheStats`/`TierStats` are
//!   bit-identical at 1, 2, 4, and 7 worker threads.
//! * `stale_reads == 0` and `l2_conserves`: the tier never serves a stale
//!   row and every demotion is accounted resident, dropped, or
//!   invalidated.
//! * `showcase`: a Zipf-skewed serving calibration — the tiered cache
//!   raises the calibrated saturation ceiling on a skewed query mix.

use mgg_core::{CacheConfig, CachePolicy, MggConfig, MggEngine};
use mgg_gnn::tensor::Matrix;
use mgg_gnn::reference::AggregateMode;
use mgg_serve::{Server, ServeConfig, WorkloadSpec};
use mgg_sim::ClusterSpec;
use mgg_telemetry::Telemetry;
use serde::Serialize;

use crate::experiments::common::datasets;
use crate::report::ExperimentReport;

/// Single-tier cache capacities swept per dataset, in MiB per GPU. `0`
/// encodes the uncached baseline row.
const SWEEP_MB: &[u32] = &[0, 1, 4, 16, 64];

/// Host-DRAM budget of the tiered cells, in MiB per GPU.
const L2_MB: u32 = 256;

/// Look-ahead depth of the prefetch cells, in warps.
const PF_DEPTH: u32 = 4;

/// Worker-pool widths the replay check runs under.
const REPLAY_THREADS: &[usize] = &[1, 2, 4, 7];

/// Best single-tier LRU mean latencies shipped by the original cache PR
/// at the canonical full-scale run (scale 1.0, 8 GPUs, dim 64, 3
/// layers). The tiering acceptance bar: at full scale at least one
/// tiered/prefetch configuration must beat these on >= 4/5 datasets.
const SHIPPED_SINGLE_TIER_BEST: &[(&str, u64)] = &[
    ("RDD", 31_713),
    ("ENWIKI", 72_676),
    ("PROD", 57_279),
    ("PROT", 28_816),
    ("ORKT", 33_180),
];

/// One (dataset, cache-configuration) cell of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct CacheRow {
    /// Dataset name.
    pub dataset: String,
    /// L1 (HBM) budget in MiB per GPU; 0 = caching disabled.
    pub cache_mb: u32,
    /// Replacement policy name.
    pub policy: String,
    /// Host-DRAM L2 budget in MiB per GPU; 0 = single-tier.
    pub l2_mb: u32,
    /// Prefetch look-ahead in warps; 0 = prefetching disabled.
    pub prefetch_depth: u32,
    /// Mean simulated latency of one aggregation layer, in ns.
    pub mean_latency_ns: u64,
    /// Cache hits.
    pub hits: u64,
    /// Cache misses (fabric GETs issued).
    pub misses: u64,
    /// Requests folded into an in-flight fetch of the same row.
    pub coalesced: u64,
    /// Rows displaced from the L1 cache.
    pub evictions: u64,
    /// hits / (hits + misses); coalesced requests are counted separately.
    pub hit_rate: f64,
    /// L1 misses the host tier absorbed (no fabric GET issued).
    pub l2_hits: u64,
    /// L1 eviction write-backs into the host tier (payload moves only).
    pub demotions: u64,
    /// L2 hits copied back up into L1 (the clean L2 copy is retained).
    pub promotions: u64,
    /// Speculative fills issued by the look-ahead prefetcher.
    pub prefetch_issued: u64,
    /// Prefetched rows that a demand access later hit.
    pub prefetch_useful: u64,
    /// Uncached mean latency of the same dataset over this row's mean
    /// (> 1 means the configuration helped).
    pub speedup_vs_uncached: f64,
}

/// The Zipf-skewed serving showcase: the same skewed query mix calibrated
/// against an uncached engine and against a warmed tiered-cache engine.
#[derive(Debug, Clone, Serialize)]
pub struct ServeShowcase {
    /// Dataset name.
    pub dataset: String,
    /// Zipf skew of the query mix (hotter than the serving default).
    pub zipf_s: f64,
    /// Offered load, queries/s — the *uncached* saturation ceiling, so
    /// both runs face the same absolute demand.
    pub offered_qps: f64,
    /// Uncached saturation, queries/s.
    pub uncached_saturation_qps: f64,
    /// Tiered saturation, queries/s.
    pub tiered_saturation_qps: f64,
    /// Uncached p99, in simulated ns.
    pub uncached_p99_ns: u64,
    /// Tiered p99, in simulated ns.
    pub tiered_p99_ns: u64,
    /// Uncached goodput, queries/s.
    pub uncached_goodput_qps: f64,
    /// Tiered goodput, queries/s.
    pub tiered_goodput_qps: f64,
    /// tiered_saturation / uncached_saturation (> 1: the tier raised the
    /// serving ceiling).
    pub saturation_uplift: f64,
}

/// The `ext_cache` report: the full sweep plus its headline claims.
#[derive(Debug, Clone, Serialize)]
pub struct CacheReport {
    /// Number of GPUs.
    pub gpus: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Aggregation layers simulated back-to-back per cell (residency
    /// carries across layers).
    pub layers: usize,
    /// Per-cell sweep rows.
    pub rows: Vec<CacheRow>,
    /// Datasets whose best cached mean latency beats their uncached mean.
    pub datasets_improved: usize,
    /// Dataset count.
    pub dataset_count: usize,
    /// Minimum over datasets of the best 1 MiB configuration's speedup.
    /// The eviction-thrash guarantee: this never drops below 1.0.
    pub one_mib_floor: f64,
    /// Datasets where a tiered or prefetch configuration beats the best
    /// single-tier latency shipped by the original cache PR. Only
    /// populated at the canonical full-scale run (scale 1.0, 8 GPUs)
    /// where those shipped numbers are comparable.
    pub tiered_beats_shipped: Option<usize>,
    /// Values digest and cache/tier counters bit-identical at 1, 2, 4,
    /// and 7 worker threads.
    pub replay_matches: bool,
    /// Rows served from a cache at a stale version, summed over every
    /// cell. Must be zero: versioned admission refuses stale copies.
    pub stale_reads: u64,
    /// Every L2 demotion is still resident, was dropped by L2 pressure,
    /// or was invalidated — checked after every cell.
    pub l2_conserves: bool,
    /// Showcase.
    pub showcase: ServeShowcase,
}

/// One cache configuration of the sweep grid.
#[derive(Clone, Copy)]
struct Cell {
    l1_mb: u32,
    policy: CachePolicy,
    l2: bool,
    pf: u32,
}

/// The sweep grid: the original single-tier LRU sweep, the LFU cell at
/// the 1 MiB thrash point, and the tiered/prefetch cells.
fn grid() -> Vec<Cell> {
    let mut cells: Vec<Cell> = SWEEP_MB
        .iter()
        .filter(|&&mb| mb > 0)
        .map(|&mb| Cell { l1_mb: mb, policy: CachePolicy::Lru, l2: false, pf: 0 })
        .collect();
    // The 1 MiB eviction-thrash point under frequency-aware replacement.
    cells.push(Cell { l1_mb: 1, policy: CachePolicy::Lfu, l2: false, pf: 0 });
    // Small-HBM rescue: LFU L1 + host tier + prefetch.
    cells.push(Cell { l1_mb: 1, policy: CachePolicy::Lfu, l2: true, pf: PF_DEPTH });
    // Prefetch on the largest single tier.
    cells.push(Cell { l1_mb: 64, policy: CachePolicy::Lru, l2: false, pf: PF_DEPTH });
    // The headline tiered configuration.
    cells.push(Cell { l1_mb: 64, policy: CachePolicy::Lru, l2: true, pf: PF_DEPTH });
    cells
}

fn config_of(c: Cell) -> (Option<CacheConfig>, Option<CacheConfig>, u32) {
    let l1 = CacheConfig::from_mb(c.l1_mb).with_policy(c.policy);
    let l2 = c.l2.then(|| CacheConfig::from_mb(L2_MB));
    (Some(l1), l2, c.pf)
}

/// Simulates `layers` aggregation passes and returns the mean makespan
/// with the cache and tier counters accumulated across all of them.
fn run_cell(
    eng: &mut MggEngine,
    dim: usize,
    layers: usize,
    cfg: (Option<CacheConfig>, Option<CacheConfig>, u32),
) -> (u64, mgg_core::CacheStats, mgg_core::TierStats) {
    eng.set_cache(cfg.0); // resets residency and counters for this cell
    eng.set_cache_l2(cfg.1);
    eng.set_prefetch_depth(cfg.2);
    let mut total_ns: u64 = 0;
    for _ in 0..layers {
        let stats = eng.simulate_aggregation(dim).expect("valid launch");
        total_ns += stats.makespan_ns();
    }
    (total_ns / layers as u64, eng.cache_stats(), eng.tier_stats())
}

fn fnv1a(values: impl Iterator<Item = u64>) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

/// Runs the headline tiered configuration's value plane under `threads`
/// workers and returns the output digest plus the counters — the replay
/// check compares these across pool widths.
fn digest_at_threads(
    graph: &mgg_graph::CsrGraph,
    gpus: usize,
    threads: usize,
) -> (String, mgg_core::CacheStats, mgg_core::TierStats) {
    mgg_runtime::with_threads(threads, || {
        let mut engine = MggEngine::new(
            graph,
            ClusterSpec::dgx_a100(gpus),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let (l1, l2, pf) = config_of(Cell {
            l1_mb: 4,
            policy: CachePolicy::Lfu,
            l2: true,
            pf: PF_DEPTH,
        });
        engine.set_cache(l1);
        engine.set_cache_l2(l2);
        engine.set_prefetch_depth(pf);
        let n = engine.graph().num_nodes();
        let dim = 16;
        let mut x = Matrix::zeros(n, dim);
        for (i, v) in x.data_mut().iter_mut().enumerate() {
            *v = ((i * 31 + 7) % 97) as f32 * 0.01;
        }
        let (y, cs, ts) = engine.aggregate_values_tiered(&x).expect("tiered values");
        (fnv1a(y.data().iter().map(|f| f.to_bits() as u64)), cs, ts)
    })
}

/// Calibrates serving against an engine and runs one Zipf-skewed window,
/// returning (saturation_qps, p99_ns, goodput_qps).
fn serve_skewed(
    eng: &mut MggEngine,
    dim: usize,
    gpus: usize,
    offered_qps: Option<f64>,
    zipf_s: f64,
) -> (f64, u64, f64) {
    let server = Server::new(eng, dim, ServeConfig::default()).expect("serving calibration");
    let sat = server.calibration().saturation_qps;
    let qps = offered_qps.unwrap_or(sat);
    let mut spec = WorkloadSpec::poisson(42, qps, eng.graph().num_nodes());
    spec.zipf_s = zipf_s;
    let out = server.run(
        &spec,
        &mgg_fault::FaultSchedule::quiet(gpus),
        &Telemetry::disabled(),
    );
    (sat, out.summary.p99_ns, out.summary.goodput_qps)
}

/// The Zipf-skewed serving showcase on the most skew-sensitive dataset:
/// calibrate once uncached, once with a warmed tiered cache, and serve
/// the same skewed mix at the uncached saturation point.
fn showcase(scale: f64, gpus: usize, dim: usize) -> ServeShowcase {
    let ds = datasets(scale);
    let d = &ds[1]; // ENWIKI: heavy-skew degree distribution
    let zipf_s = 1.2;

    let mut plain = MggEngine::new(
        &d.graph,
        ClusterSpec::dgx_a100(gpus),
        MggConfig::default_fixed(),
        AggregateMode::Sum,
    );
    let (un_sat, _, _) = serve_skewed(&mut plain, dim, gpus, None, zipf_s);
    let (_, un_p99, un_goodput) = serve_skewed(&mut plain, dim, gpus, Some(un_sat), zipf_s);

    let mut tiered = MggEngine::new(
        &d.graph,
        ClusterSpec::dgx_a100(gpus),
        MggConfig::default_fixed(),
        AggregateMode::Sum,
    );
    let (l1, l2, pf) =
        config_of(Cell { l1_mb: 64, policy: CachePolicy::Lfu, l2: true, pf: PF_DEPTH });
    tiered.set_cache(l1);
    tiered.set_cache_l2(l2);
    tiered.set_prefetch_depth(pf);
    // Warm the tiers so calibration sees steady-state residency — a
    // serving deployment amortizes its fill traffic across the window.
    tiered.simulate_aggregation(dim).expect("warm-up launch");
    let (t_sat, _, _) = serve_skewed(&mut tiered, dim, gpus, None, zipf_s);
    let (_, t_p99, t_goodput) = serve_skewed(&mut tiered, dim, gpus, Some(un_sat), zipf_s);

    ServeShowcase {
        dataset: d.spec.name.to_string(),
        zipf_s,
        offered_qps: un_sat,
        uncached_saturation_qps: un_sat,
        tiered_saturation_qps: t_sat,
        uncached_p99_ns: un_p99,
        tiered_p99_ns: t_p99,
        uncached_goodput_qps: un_goodput,
        tiered_goodput_qps: t_goodput,
        saturation_uplift: t_sat / un_sat.max(f64::MIN_POSITIVE),
    }
}

/// Runs the cache-tiering sweep at `scale`.
pub fn run(scale: f64, gpus: usize) -> CacheReport {
    let ds = datasets(scale);
    let dim = 64;
    let layers = 3;
    let cells = grid();
    let mut rows: Vec<CacheRow> = Vec::new();
    let mut datasets_improved = 0usize;
    let mut one_mib_floor = f64::INFINITY;
    let mut tiered_beats = 0usize;
    let mut replay_matches = true;
    let mut stale_reads = 0u64;
    let mut l2_conserves = true;

    for d in &ds {
        let spec = ClusterSpec::dgx_a100(gpus);
        let mut eng =
            MggEngine::new(&d.graph, spec, MggConfig::default_fixed(), AggregateMode::Sum);

        eng.set_cache(None);
        eng.set_cache_l2(None);
        eng.set_prefetch_depth(0);
        let mut base_total = 0u64;
        for _ in 0..layers {
            base_total += eng.simulate_aggregation(dim).expect("valid launch").makespan_ns();
        }
        let base_ns = base_total / layers as u64;
        rows.push(CacheRow {
            dataset: d.spec.name.to_string(),
            cache_mb: 0,
            policy: "none".to_string(),
            l2_mb: 0,
            prefetch_depth: 0,
            mean_latency_ns: base_ns,
            hits: 0,
            misses: 0,
            coalesced: 0,
            evictions: 0,
            hit_rate: 0.0,
            l2_hits: 0,
            demotions: 0,
            promotions: 0,
            prefetch_issued: 0,
            prefetch_useful: 0,
            speedup_vs_uncached: 1.0,
        });

        let mut best_cached = u64::MAX;
        let mut best_1mib = u64::MAX;
        let mut best_tiered = u64::MAX;
        for &cell in &cells {
            let (ns, cs, ts) = run_cell(&mut eng, dim, layers, config_of(cell));
            best_cached = best_cached.min(ns);
            if cell.l1_mb == 1 {
                best_1mib = best_1mib.min(ns);
            }
            if cell.l2 || cell.pf > 0 {
                best_tiered = best_tiered.min(ns);
            }
            l2_conserves &= eng.l2_conserves();
            rows.push(CacheRow {
                dataset: d.spec.name.to_string(),
                cache_mb: cell.l1_mb,
                policy: cell.policy.to_string(),
                l2_mb: if cell.l2 { L2_MB } else { 0 },
                prefetch_depth: cell.pf,
                mean_latency_ns: ns,
                hits: cs.hits,
                misses: cs.misses,
                coalesced: cs.coalesced,
                evictions: cs.evictions,
                hit_rate: cs.hit_rate(),
                l2_hits: ts.l2_hits,
                demotions: ts.demotions,
                promotions: ts.promotions,
                prefetch_issued: ts.prefetch_issued,
                prefetch_useful: ts.prefetch_useful,
                speedup_vs_uncached: base_ns as f64 / ns.max(1) as f64,
            });
        }
        if best_cached < base_ns {
            datasets_improved += 1;
        }
        one_mib_floor = one_mib_floor.min(base_ns as f64 / best_1mib.max(1) as f64);
        if let Some(&(_, shipped)) =
            SHIPPED_SINGLE_TIER_BEST.iter().find(|(n, _)| *n == d.spec.name)
        {
            if best_tiered < shipped {
                tiered_beats += 1;
            }
        }
        stale_reads += eng.stale_reads();

        // Replay check: the headline tiered value plane digests the same
        // under every pool width, counters included.
        let reference = digest_at_threads(&d.graph, gpus, REPLAY_THREADS[0]);
        for &t in &REPLAY_THREADS[1..] {
            let got = digest_at_threads(&d.graph, gpus, t);
            replay_matches &=
                got.0 == reference.0 && got.1 == reference.1 && got.2 == reference.2;
        }
    }

    let canonical = (scale - 1.0).abs() < f64::EPSILON && gpus == 8;
    CacheReport {
        gpus,
        dim,
        layers,
        rows,
        datasets_improved,
        dataset_count: ds.len(),
        one_mib_floor,
        tiered_beats_shipped: canonical.then_some(tiered_beats),
        replay_matches,
        stale_reads,
        l2_conserves,
        showcase: showcase(scale, gpus, dim),
    }
}

impl ExperimentReport for CacheReport {
    fn id(&self) -> &'static str {
        "ext_cache"
    }

    fn print(&self) {
        println!(
            "Cache tiering + prefetch sweep: {} layers of dim-{} aggregation on {} GPUs",
            self.layers, self.dim, self.gpus
        );
        println!(
            "{:<8} {:>10} {:>5} {:>3} {:>12} {:>9} {:>8} {:>8} {:>8} {:>8}",
            "dataset", "config", "L2", "pf", "mean (ms)", "hit rate", "L2 hits", "demote", "pf use", "speedup"
        );
        for r in &self.rows {
            let cfg = if r.cache_mb == 0 {
                "off".to_string()
            } else {
                format!("{}MiB {}", r.cache_mb, r.policy)
            };
            println!(
                "{:<8} {:>10} {:>5} {:>3} {:>12.3} {:>7.1}% {:>8} {:>8} {:>8} {:>7.2}x",
                r.dataset,
                cfg,
                if r.l2_mb == 0 { "-".to_string() } else { format!("{}", r.l2_mb) },
                r.prefetch_depth,
                r.mean_latency_ns as f64 / 1e6,
                100.0 * r.hit_rate,
                r.l2_hits,
                r.demotions,
                r.prefetch_useful,
                r.speedup_vs_uncached
            );
        }
        println!(
            "cache beat the uncached baseline on {}/{} datasets; 1 MiB floor {:.3}x",
            self.datasets_improved, self.dataset_count, self.one_mib_floor
        );
        if let Some(n) = self.tiered_beats_shipped {
            println!("tiered/prefetch beat the shipped single-tier best on {n}/{} datasets", self.dataset_count);
        }
        let s = &self.showcase;
        println!(
            "zipf {:.1} serving on {}: saturation {:.0} -> {:.0} qps ({:.2}x), p99 {:.2} -> {:.2} us",
            s.zipf_s,
            s.dataset,
            s.uncached_saturation_qps,
            s.tiered_saturation_qps,
            s.saturation_uplift,
            s.uncached_p99_ns as f64 / 1e3,
            s.tiered_p99_ns as f64 / 1e3
        );
        println!(
            "replay across {:?} threads: {}; stale reads: {}; L2 conservation: {}",
            REPLAY_THREADS,
            if self.replay_matches { "bit-identical" } else { "DIVERGED" },
            self.stale_reads,
            if self.l2_conserves { "holds" } else { "VIOLATED" }
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_sweep_hits_and_beats_uncached() {
        let report = run(0.05, 4);
        assert_eq!(report.rows.len(), report.dataset_count * (grid().len() + 1));
        // Every cached row must see traffic, and every enabled capacity a hit.
        for r in report.rows.iter().filter(|r| r.cache_mb > 0) {
            assert!(r.hits > 0, "{} @ {} MiB had no hits", r.dataset, r.cache_mb);
            assert!(r.hit_rate > 0.0, "{} @ {} MiB", r.dataset, r.cache_mb);
        }
        // Tiered rows must exercise the tier plumbing wherever L1 actually
        // overflowed (an L1 big enough for the working set demotes nothing).
        for r in report.rows.iter().filter(|r| r.l2_mb > 0 && r.evictions > 0) {
            assert!(r.demotions > 0, "{} @ {} MiB evicted without demoting", r.dataset, r.cache_mb);
        }
        // The headline acceptance claims.
        assert!(
            report.datasets_improved >= 2,
            "cache improved only {}/{} datasets",
            report.datasets_improved,
            report.dataset_count
        );
        assert!(
            report.one_mib_floor >= 1.0,
            "1 MiB thrash point regressed below uncached: {:.3}x",
            report.one_mib_floor
        );
        assert!(report.replay_matches, "thread-count replay diverged");
        assert_eq!(report.stale_reads, 0, "stale cache reads detected");
        assert!(report.l2_conserves, "L2 conservation violated");
    }

    #[test]
    fn uncached_baseline_rows_report_no_cache_activity() {
        let report = run(0.03, 4);
        for r in report.rows.iter().filter(|r| r.cache_mb == 0) {
            assert_eq!((r.hits, r.misses, r.coalesced), (0, 0, 0), "{}", r.dataset);
            assert_eq!(r.speedup_vs_uncached, 1.0);
        }
    }

    #[test]
    fn skewed_serving_showcase_raises_the_ceiling() {
        let s = showcase(0.05, 4, 64);
        assert!(
            s.saturation_uplift > 1.0,
            "tiered cache did not raise the skewed serving ceiling: {:.3}x",
            s.saturation_uplift
        );
        assert!(s.tiered_p99_ns <= s.uncached_p99_ns, "tiered p99 regressed");
    }
}
