//! Figure 2: NCCL profiling for a 1-layer GNN.
//!
//! Paper result: ring forwarding of node embeddings over NCCL costs more
//! than 5× the aggregation computation on Reddit and enwiki-2013 (8
//! GPUs). We reproduce the two-bar comparison with the Table-3 stand-ins.

use mgg_baselines::nccl_ring_study;
use mgg_graph::datasets::DatasetSpec;
use mgg_sim::ClusterSpec;
use serde::Serialize;

use crate::report::{ms, ExperimentReport};

/// Serialized `fig2 row` record of this experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Comm, in simulated ms.
    pub comm_ms: f64,
    /// Comp, in simulated ms.
    pub comp_ms: f64,
    /// Comm to comp.
    pub comm_to_comp: f64,
}

/// Serialized `fig2 report` record of this experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2Report {
    /// Number of GPUs.
    pub gpus: usize,
    /// Per-cell sweep rows.
    pub rows: Vec<Fig2Row>,
}

/// Runs the study on RDD and ENWIKI (the paper's two Figure-2 datasets).
pub fn run(scale: f64, gpus: usize) -> Fig2Report {
    // Both dataset cells are independent; parallel jobs, input-order merge.
    let specs = [DatasetSpec::rdd(), DatasetSpec::enwiki()];
    let _lbl = mgg_runtime::profile::region_label("bench.fig2");
    let rows = mgg_runtime::par_map(&specs, |spec| {
        let d = spec.build(scale);
        let report = nccl_ring_study(&d.graph, ClusterSpec::dgx_a100(gpus), spec.dim);
        Fig2Row {
            dataset: spec.name,
            comm_ms: report.comm_ns as f64 / 1e6,
            comp_ms: report.comp_ns as f64 / 1e6,
            comm_to_comp: report.comm_to_comp(),
        }
    });
    Fig2Report { gpus, rows }
}

impl ExperimentReport for Fig2Report {
    fn id(&self) -> &'static str {
        "fig2"
    }

    fn print(&self) {
        println!("Figure 2: NCCL ring-forwarding 1-layer GNN ({} GPUs)", self.gpus);
        println!("{:<8} {:>12} {:>12} {:>12}", "dataset", "comm (ms)", "comp (ms)", "comm/comp");
        for r in &self.rows {
            println!(
                "{:<8} {:>12} {:>12} {:>11.2}x",
                r.dataset,
                ms((r.comm_ms * 1e6) as u64),
                ms((r.comp_ms * 1e6) as u64),
                r.comm_to_comp
            );
        }
        println!("(paper: data transfer via NCCL takes >5x the aggregation latency)");
    }
}
