//! Figure 7 ablation (bonus): asynchronous vs synchronous intra-warp
//! remote memory operations.
//!
//! The paper motivates the async design with a single-warp schedule
//! sketch; here we measure the full-kernel effect of switching every warp
//! from the Figure-7(b) pipeline to the Figure-7(a) blocking schedule.

use mgg_core::kernel::KernelVariant;
use mgg_core::{MggConfig, MggEngine};
use mgg_gnn::reference::AggregateMode;
use mgg_sim::ClusterSpec;
use serde::Serialize;

use crate::experiments::common::datasets;
use crate::report::{geomean, ExperimentReport};

/// Serialized `fig7 row` record of this experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Sync, in simulated ms.
    pub sync_ms: f64,
    /// Async, in simulated ms.
    pub async_ms: f64,
    /// Slowdown.
    pub slowdown: f64,
}

/// Serialized `fig7 report` record of this experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Report {
    /// Number of GPUs.
    pub gpus: usize,
    /// Per-cell sweep rows.
    pub rows: Vec<Fig7Row>,
    /// Geomean slowdown.
    pub geomean_slowdown: f64,
}

/// Runs the async-vs-sync comparison across datasets.
pub fn run(scale: f64, gpus: usize) -> Fig7Report {
    let cfg = MggConfig::default_fixed();
    // Measure at the GCN aggregation width (16), where remote latency —
    // the thing the async pipeline hides — dominates over wire bytes.
    let agg_dim = 16usize;
    // Dataset cells are independent simulations; run them as parallel jobs
    // on the deterministic worker pool (results merge in dataset order).
    let ds = datasets(scale);
    let _lbl = mgg_runtime::profile::region_label("bench.fig7");
    let rows: Vec<Fig7Row> = mgg_runtime::par_map(&ds, |d| {
        let spec = ClusterSpec::dgx_a100(gpus);
        let mut a = MggEngine::new(&d.graph, spec.clone(), cfg, AggregateMode::Sum);
        a.variant = KernelVariant::AsyncPipelined;
        let t_async = a.simulate_aggregation_ns(agg_dim).expect("valid launch");
        let mut s = MggEngine::new(&d.graph, spec, cfg, AggregateMode::Sum);
        s.variant = KernelVariant::SyncRemote;
        let t_sync = s.simulate_aggregation_ns(agg_dim).expect("valid launch");
        Fig7Row {
            dataset: d.spec.name,
            sync_ms: t_sync as f64 / 1e6,
            async_ms: t_async as f64 / 1e6,
            slowdown: t_sync as f64 / t_async.max(1) as f64,
        }
    });
    let geomean_slowdown = geomean(&rows.iter().map(|r| r.slowdown).collect::<Vec<_>>());
    Fig7Report { gpus, rows, geomean_slowdown }
}

impl ExperimentReport for Fig7Report {
    fn id(&self) -> &'static str {
        "fig7"
    }

    fn print(&self) {
        println!(
            "Figure 7 ablation: async (7b) vs sync (7a) remote operations ({} GPUs)",
            self.gpus
        );
        println!("{:<8} {:>10} {:>11} {:>10}", "dataset", "sync (ms)", "async (ms)", "slowdown");
        for r in &self.rows {
            println!(
                "{:<8} {:>10.3} {:>11.3} {:>9.2}x",
                r.dataset, r.sync_ms, r.async_ms, r.slowdown
            );
        }
        println!(
            "geomean cost of losing the async pipeline: {:.2}x",
            self.geomean_slowdown
        );
    }
}
