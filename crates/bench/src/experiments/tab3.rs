//! Table 3: the evaluation datasets.
//!
//! Prints each stand-in's realized statistics next to the paper's
//! originals, making the scaling transparent: node/edge counts shrink by
//! the scale factor while average degree (÷4), skew class, feature dim
//! and class count match the original's character (see
//! `mgg_graph::datasets`).

use mgg_graph::datasets::DatasetSpec;
use serde::Serialize;

use crate::report::ExperimentReport;

/// Original Table-3 rows (from the paper).
const PAPER: [(&str, u64, u64, usize, usize); 5] = [
    ("RDD", 232_965, 114_615_892, 602, 41),
    ("ENWIKI", 4_203_323, 202_623_226, 96, 128),
    ("PROD", 2_449_029, 61_859_140, 100, 64),
    ("PROT", 132_534, 39_561_252, 128, 112),
    ("ORKT", 3_072_441, 117_185_083, 128, 32),
];

/// Serialized `tab3 row` record of this experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Tab3Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Paper nodes.
    pub paper_nodes: u64,
    /// Paper edges.
    pub paper_edges: u64,
    /// Number of nodes.
    pub nodes: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Avg degree.
    pub avg_degree: f64,
    /// Max degree.
    pub max_degree: usize,
    /// P99 degree.
    pub p99_degree: usize,
    /// Degree cv.
    pub degree_cv: f64,
    /// Top1pct edge share.
    pub top1pct_edge_share: f64,
    /// Embedding dimension.
    pub dim: usize,
    /// Classes.
    pub classes: usize,
}

/// Serialized `tab3 report` record of this experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Tab3Report {
    /// Dataset size multiplier.
    pub scale: f64,
    /// Per-cell sweep rows.
    pub rows: Vec<Tab3Row>,
}

/// Realizes every stand-in and reports its statistics.
pub fn run(scale: f64) -> Tab3Report {
    let rows = DatasetSpec::table3()
        .into_iter()
        .map(|spec| {
            let d = spec.build(scale);
            let (_, p_nodes, p_edges, p_dim, p_classes) = *PAPER
                .iter()
                .find(|(name, ..)| *name == spec.name)
                .expect("every stand-in has a paper row");
            assert_eq!(spec.dim, p_dim, "dim must match the paper");
            assert_eq!(spec.classes, p_classes, "classes must match the paper");
            let stats = mgg_graph::stats::degree_stats(&d.graph);
            Tab3Row {
                dataset: spec.name,
                paper_nodes: p_nodes,
                paper_edges: p_edges,
                nodes: d.graph.num_nodes(),
                edges: d.graph.num_edges(),
                avg_degree: d.graph.avg_degree(),
                max_degree: d.graph.max_degree(),
                p99_degree: stats.p99,
                degree_cv: stats.cv,
                top1pct_edge_share: stats.top1pct_edge_share,
                dim: spec.dim,
                classes: spec.classes,
            }
        })
        .collect();
    Tab3Report { scale, rows }
}

impl ExperimentReport for Tab3Report {
    fn id(&self) -> &'static str {
        "tab3"
    }

    fn print(&self) {
        println!("Table 3: datasets (stand-ins at scale {})", self.scale);
        println!(
            "{:<8} {:>12} {:>13} | {:>8} {:>9} {:>8} {:>8} {:>6} {:>5} {:>6} {:>5} {:>7}",
            "dataset", "paper #V", "paper #E", "#V", "#E", "avg deg", "max deg", "p99", "cv", "top1%E", "#Dim", "#Class"
        );
        for r in &self.rows {
            println!(
                "{:<8} {:>12} {:>13} | {:>8} {:>9} {:>8.1} {:>8} {:>6} {:>5.1} {:>5.0}% {:>5} {:>7}",
                r.dataset,
                r.paper_nodes,
                r.paper_edges,
                r.nodes,
                r.edges,
                r.avg_degree,
                r.max_degree,
                r.p99_degree,
                r.degree_cv,
                100.0 * r.top1pct_edge_share,
                r.dim,
                r.classes
            );
        }
        println!("(#Dim and #Class are the originals; degree is the original / 4)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_has_paper_metadata() {
        let r = run(0.125);
        assert_eq!(r.rows.len(), 5);
        for row in &r.rows {
            assert!(row.edges > 0);
            assert!(row.paper_edges > row.edges as u64, "stand-ins are scaled down");
        }
    }
}
