//! §5.1 GPU-kernel metrics: achieved occupancy and SM utilization.
//!
//! Paper result: MGG improves SM utilization by ~21% and achieved
//! occupancy by ~39% on average over the UVM design — the mechanism
//! behind Figure 8's speedups.
//!
//! Extended with the pipeline view: overlap efficiency (the fraction of
//! remote-wire time hidden under the same warp's compute) derived from the
//! warp traces, the quantity Figure 7(b)'s interleaving exists to raise.

use mgg_baselines::UvmGnnEngine;
use mgg_gnn::reference::AggregateMode;
use mgg_sim::ClusterSpec;
use mgg_telemetry::overlap_efficiency;
use serde::Serialize;

use crate::experiments::common::datasets;
use crate::report::ExperimentReport;

/// One configuration’s predicted occupancy cell.
#[derive(Debug, Clone, Serialize)]
pub struct OccupancyRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Mgg occupancy.
    pub mgg_occupancy: f64,
    /// Uvm occupancy.
    pub uvm_occupancy: f64,
    /// Mgg sm util.
    pub mgg_sm_util: f64,
    /// Uvm sm util.
    pub uvm_sm_util: f64,
    /// Mgg overlap.
    pub mgg_overlap: f64,
    /// Uvm overlap.
    pub uvm_overlap: f64,
}

/// The SM-occupancy model validation report.
#[derive(Debug, Clone, Serialize)]
pub struct OccupancyReport {
    /// Number of GPUs.
    pub gpus: usize,
    /// Per-cell sweep rows.
    pub rows: Vec<OccupancyRow>,
    /// Avg occupancy gain.
    pub avg_occupancy_gain: f64,
    /// Avg sm util gain.
    pub avg_sm_util_gain: f64,
    /// Avg overlap gain.
    pub avg_overlap_gain: f64,
}

/// Compares the kernel metrics of MGG and UVM across datasets.
pub fn run(scale: f64, gpus: usize) -> OccupancyReport {
    // Dataset cells are independent simulations; run them as parallel jobs
    // on the deterministic worker pool (results merge in dataset order).
    let ds = datasets(scale);
    let _lbl = mgg_runtime::profile::region_label("bench.occupancy");
    let rows: Vec<OccupancyRow> = mgg_runtime::par_map(&ds, |d| {
        let spec = ClusterSpec::dgx_a100(gpus);
        let mut mgg = crate::experiments::fig8::tuned_engine(
            &d.graph,
            spec.clone(),
            AggregateMode::Sum,
            d.spec.dim,
        );
        let (mgg_stats, mgg_trace) =
            mgg.simulate_aggregation_traced(d.spec.dim).expect("valid launch");
        let mut uvm = UvmGnnEngine::new(&d.graph, spec, AggregateMode::Sum);
        let (uvm_stats, uvm_trace) = uvm.simulate_aggregation_traced(d.spec.dim);
        OccupancyRow {
            dataset: d.spec.name,
            mgg_occupancy: mgg_stats.achieved_occupancy(),
            uvm_occupancy: uvm_stats.achieved_occupancy(),
            mgg_sm_util: mgg_stats.sm_utilization(),
            uvm_sm_util: uvm_stats.sm_utilization(),
            mgg_overlap: overlap_efficiency(&mgg_trace),
            uvm_overlap: overlap_efficiency(&uvm_trace),
        }
    });
    let avg_occupancy_gain = rows
        .iter()
        .map(|r| r.mgg_occupancy - r.uvm_occupancy)
        .sum::<f64>()
        / rows.len() as f64;
    let avg_sm_util_gain =
        rows.iter().map(|r| r.mgg_sm_util - r.uvm_sm_util).sum::<f64>() / rows.len() as f64;
    let avg_overlap_gain =
        rows.iter().map(|r| r.mgg_overlap - r.uvm_overlap).sum::<f64>() / rows.len() as f64;
    OccupancyReport { gpus, rows, avg_occupancy_gain, avg_sm_util_gain, avg_overlap_gain }
}

impl ExperimentReport for OccupancyReport {
    fn id(&self) -> &'static str {
        "occupancy"
    }

    fn print(&self) {
        println!("Section 5.1 metrics: achieved occupancy & SM utilization ({} GPUs)", self.gpus);
        println!(
            "{:<8} {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
            "dataset", "MGG occ", "UVM occ", "MGG util", "UVM util", "MGG ovlp", "UVM ovlp"
        );
        for r in &self.rows {
            println!(
                "{:<8} {:>8.1}% {:>8.1}% | {:>8.1}% {:>8.1}% | {:>8.1}% {:>8.1}%",
                r.dataset,
                100.0 * r.mgg_occupancy,
                100.0 * r.uvm_occupancy,
                100.0 * r.mgg_sm_util,
                100.0 * r.uvm_sm_util,
                100.0 * r.mgg_overlap,
                100.0 * r.uvm_overlap
            );
        }
        println!(
            "average gains: occupancy +{:.1} points, SM utilization +{:.1} points, \
             overlap +{:.1} points (paper: +39.2% occupancy, +21.2% SM utilization)",
            100.0 * self.avg_occupancy_gain,
            100.0 * self.avg_sm_util_gain,
            100.0 * self.avg_overlap_gain
        );
    }
}
