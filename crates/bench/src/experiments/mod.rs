//! One module per paper artifact.

pub mod cache;
pub mod churn;
pub mod common;
pub mod ext;
pub mod failover;
pub mod fault;
pub mod fig10;
pub mod fig2;
pub mod fig3;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod hostperf;
pub mod microcal;
pub mod occupancy;
pub mod serve;
pub mod tab1;
pub mod tab2;
pub mod tab3;
pub mod tab4;
pub mod tab5;
