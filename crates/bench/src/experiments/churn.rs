//! `ext_churn`: live-graph churn and elastic membership under load — the
//! artifact behind `mgg-churn` and the serving layer's scenario replay.
//!
//! Three phases per Table-3 dataset, all on the same calibrated server:
//!
//! 1. **Steady ceiling** — a quiet-churn run at 1.5x saturation measures
//!    the goodput ceiling the drill is judged against.
//! 2. **Drill** — the same 1.5x load through a full membership cycle
//!    (drain at 20%, leave at 35%, join at 55% of the window) while a
//!    steady delta stream with a 4x mutation burst applies at epoch
//!    fences. Claims: goodput stays within 10% of the ceiling
//!    (`drill_goodput_ratio >= 0.9`), no admitted query is lost
//!    (`drill_loss_free`), and the join passes the health gate.
//! 3. **Priority mix** — a 0.2/0.3/0.5 gold/silver/bronze mix at 1.0x
//!    and 2.0x load. Claims: shedding is strictly priority-ordered at
//!    overload (`bronze_sheds_first`) and the gold deadline-miss rate
//!    does not increase when load doubles (`gold_miss_rate_holds`).
//!
//! A fourth, engine-level check replays every fence's delta batch through
//! [`MggEngine::apply_graph_deltas`] on 1 and 4 host threads: the mutated
//! graph's functional aggregation must digest identically and the
//! versioned cache must report zero stale reads (`stale_reads == 0`,
//! `replay_matches`). The serving scenario set itself also replays on the
//! sequential pool and must match the parallel pool bitwise.

use mgg_churn::{BurstWindow, ChurnEventKind, ChurnSchedule, ChurnSpec, MembershipChange, MembershipEvent};
use mgg_core::{CacheConfig, MggConfig, MggEngine};
use mgg_fault::FaultSchedule;
use mgg_gnn::reference::AggregateMode;
use mgg_gnn::tensor::Matrix;
use mgg_serve::{PriorityMix, ServeConfig, Server, WorkloadSpec};
use mgg_sim::ClusterSpec;
use serde::Serialize;

use crate::experiments::common::datasets;
use crate::report::ExperimentReport;

/// Offered load of the ceiling run and the drill, as a multiple of
/// calibrated saturation.
const DRILL_LOAD: f64 = 1.5;

/// Steady delta rate of the drill's churn plane, per simulated second.
const DELTA_RATE: f64 = 500_000.0;

/// Mutation-burst multiplier applied in the middle of the drill window.
const BURST_MULT: f64 = 4.0;

/// Gold/silver/bronze weights of the priority-mix phase.
const MIX: [f64; 3] = [0.2, 0.3, 0.5];

/// The drain / leave / join instants as fractions of the window.
const DRAIN_AT: f64 = 0.20;
const LEAVE_AT: f64 = 0.35;
const JOIN_AT: f64 = 0.55;

/// The ceiling-vs-drill drill of one dataset.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnDrillRow {
    /// Dataset name.
    pub dataset: String,
    /// Offered.
    pub offered: u64,
    /// Queries admitted past the queue.
    pub admitted: u64,
    /// In-deadline completions per second through the drill.
    pub goodput_qps: f64,
    /// Quiet-churn goodput at the same offered load.
    pub steady_goodput_qps: f64,
    /// Drill goodput over the steady ceiling.
    pub goodput_ratio: f64,
    /// Fences.
    pub fences: u64,
    /// Deltas applied.
    pub deltas_applied: u64,
    /// Drains.
    pub drains: u64,
    /// Leaves.
    pub leaves: u64,
    /// Joins.
    pub joins: u64,
    /// Join rejections.
    pub join_rejections: u64,
    /// Pending queries migrated off the leaving shard (all dispatched).
    pub migrated_queries: u64,
    /// Fence stall, in simulated ns.
    pub fence_stall_ns: u64,
    /// offered == admitted + shed: nothing vanished mid-migration.
    pub loss_free: bool,
    /// Digest.
    pub digest: String,
}

/// One (dataset, load, class) cell of the priority phase.
#[derive(Debug, Clone, Serialize)]
pub struct PriorityClassRow {
    /// Dataset name.
    pub dataset: String,
    /// Offered load as a multiple of calibrated saturation.
    pub load_mult: f64,
    /// Class.
    pub class: String,
    /// Offered.
    pub offered: u64,
    /// Queries admitted past the queue.
    pub admitted: u64,
    /// Shed.
    pub shed: u64,
    /// shed / offered for this class.
    pub shed_fraction: f64,
    /// deadline_violations / admitted for this class.
    pub deadline_miss_rate: f64,
    /// 99th-percentile latency, ns.
    pub p99_ns: u64,
}

/// The engine-level mutation replay of one dataset.
#[derive(Debug, Clone, Serialize)]
pub struct MutationRow {
    /// Dataset name.
    pub dataset: String,
    /// Deltas applied.
    pub deltas_applied: u64,
    /// Affected rows.
    pub affected_rows: u64,
    /// Cache entries dropped by targeted fence invalidation.
    pub invalidated: u64,
    /// Inserted nodes.
    pub inserted_nodes: u64,
    /// Removed nodes.
    pub removed_nodes: u64,
    /// Versioned-read violations (must be 0).
    pub stale_reads: u64,
    /// FNV-1a of the post-churn functional aggregation output.
    pub digest: String,
    /// 1-thread and 4-thread replays digested identically.
    pub threads_match: bool,
}

/// The `ext_churn` report: drill, priority phase, mutation replay.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnBenchReport {
    /// Number of GPUs.
    pub gpus: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Simulated workload window per run, in ns.
    pub duration_ns: u64,
    /// Drill.
    pub drill: Vec<ChurnDrillRow>,
    /// Priority.
    pub priority: Vec<PriorityClassRow>,
    /// Mutation.
    pub mutation: Vec<MutationRow>,
    /// Worst-case over datasets of drill goodput over the steady ceiling.
    pub drill_goodput_ratio: f64,
    /// Every drill conserved queries and completed its membership cycle.
    pub drill_loss_free: bool,
    /// At 2.0x load the gold deadline-miss rate is no worse than at 1.0x
    /// on every dataset.
    pub gold_miss_rate_holds: bool,
    /// At 2.0x load shed fractions are ordered bronze >= silver >= gold
    /// with bronze actually shedding, on every dataset.
    pub bronze_sheds_first: bool,
    /// Total stale versioned reads across all mutation replays (must be 0).
    pub stale_reads: u64,
    /// Serving scenarios and engine mutations replay digest-identically
    /// on sequential and parallel pools.
    pub replay_matches: bool,
}

fn fnv1a(values: impl Iterator<Item = u64>) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

/// The drill's churn plane: steady deltas, a mid-window burst, and the
/// scripted drain -> leave -> join cycle on shard 1.
fn drill_spec(duration_ns: u64) -> ChurnSpec {
    let at = |f: f64| (duration_ns as f64 * f) as u64;
    let mut spec = ChurnSpec::steady(7, duration_ns, DELTA_RATE);
    spec.burst = Some(BurstWindow { start_ns: at(0.40), end_ns: at(0.60), mult: BURST_MULT });
    spec.membership = vec![
        MembershipEvent { shard: 1, at_ns: at(DRAIN_AT), change: MembershipChange::Drain },
        MembershipEvent { shard: 1, at_ns: at(LEAVE_AT), change: MembershipChange::Leave },
        MembershipEvent { shard: 1, at_ns: at(JOIN_AT), change: MembershipChange::Join },
    ];
    spec
}

/// Replays every fence of `sched` through the engine, then digests the
/// functional aggregation of the mutated graph. Runs the whole thing
/// under `threads` workers.
fn mutate_and_digest(
    graph: &mgg_graph::CsrGraph,
    gpus: usize,
    sched: &ChurnSchedule,
    threads: usize,
) -> (mgg_core::DeltaReport, u64, String) {
    mgg_runtime::with_threads(threads, || {
        let mut engine = MggEngine::new(
            graph,
            ClusterSpec::dgx_a100(gpus),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        engine.set_cache(Some(CacheConfig::from_mb(64)));
        // Warm the remote-row cache so fence invalidation has resident
        // entries to target (a cold cache trivially invalidates nothing).
        engine.simulate_aggregation(16).expect("warm-up launch");
        let mut total = mgg_core::DeltaReport::default();
        for ev in sched.events() {
            if let ChurnEventKind::Fence { deltas } = &ev.kind {
                if deltas.is_empty() {
                    continue;
                }
                let r = engine.apply_graph_deltas(deltas).expect("fence applies");
                total.applied += r.applied;
                total.affected_rows += r.affected_rows;
                total.invalidated += r.invalidated;
                total.inserted_nodes += r.inserted_nodes;
                total.removed_nodes += r.removed_nodes;
                total.edges_added += r.edges_added;
                total.edges_removed += r.edges_removed;
            }
        }
        let n = engine.graph().num_nodes();
        let dim = 16;
        let mut x = Matrix::zeros(n, dim);
        for (i, v) in x.data_mut().iter_mut().enumerate() {
            *v = ((i * 31 + 7) % 97) as f32 * 0.01;
        }
        let y = engine.aggregate_values(&x);
        let digest = fnv1a(y.data().iter().map(|f| f.to_bits() as u64));
        (total, engine.stale_reads(), digest)
    })
}

/// Runs the `ext_churn` experiment.
pub fn run(scale: f64, gpus: usize) -> ChurnBenchReport {
    let dim = 64;
    let mut drill = Vec::new();
    let mut priority = Vec::new();
    let mut mutation = Vec::new();
    let mut goodput_ratio = f64::INFINITY;
    let mut loss_free = true;
    let mut gold_holds = true;
    let mut bronze_first = true;
    let mut stale_total = 0u64;
    let mut replay_matches = true;
    let mut duration_ns = 0;

    for ds in datasets(scale) {
        let mut engine = MggEngine::new(
            &ds.graph,
            ClusterSpec::dgx_a100(gpus),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let server =
            Server::new(&mut engine, dim, ServeConfig::default()).expect("serving calibration");
        let sat = server.calibration().saturation_qps;
        let nodes = ds.graph.num_nodes();
        let base = WorkloadSpec::poisson(42, sat * DRILL_LOAD, nodes);
        duration_ns = base.duration_ns;

        let mix = PriorityMix::new(MIX[0], MIX[1], MIX[2]);
        let mixed = |mult: f64| WorkloadSpec { qps: sat * mult, mix, ..base };
        let quiet = || ChurnSchedule::quiet(duration_ns);
        let scenarios = vec![
            // 0: steady ceiling at the drill load, no churn.
            (base, FaultSchedule::quiet(gpus), quiet()),
            // 1: the drill — same load through the membership cycle + burst.
            (
                base,
                FaultSchedule::quiet(gpus),
                ChurnSchedule::derive(&drill_spec(duration_ns), nodes),
            ),
            // 2/3: priority mix at nominal and doubled load, no churn.
            (mixed(1.0), FaultSchedule::quiet(gpus), quiet()),
            (mixed(2.0), FaultSchedule::quiet(gpus), quiet()),
        ];

        let outs = server.run_churn_sweep(&scenarios);
        let seq_outs = mgg_runtime::with_threads(1, || server.run_churn_sweep(&scenarios));
        replay_matches &= outs
            .iter()
            .zip(&seq_outs)
            .all(|(a, b)| a.summary.digest == b.summary.digest && a == b);

        let ceiling = &outs[0].summary;
        let s = &outs[1].summary;
        let c = &s.churn;
        let ratio = if ceiling.goodput_qps > 0.0 { s.goodput_qps / ceiling.goodput_qps } else { 0.0 };
        goodput_ratio = goodput_ratio.min(ratio);
        let shed = s.shed_queue + s.shed_rate + s.shed_infeasible + s.shed_unavailable;
        let conserved = s.offered == s.admitted + shed;
        let cycled = c.drains == 1 && c.leaves == 1 && c.joins == 1 && c.join_rejections == 0;
        loss_free &= conserved && cycled;
        drill.push(ChurnDrillRow {
            dataset: ds.spec.name.to_string(),
            offered: s.offered,
            admitted: s.admitted,
            goodput_qps: s.goodput_qps,
            steady_goodput_qps: ceiling.goodput_qps,
            goodput_ratio: ratio,
            fences: c.fences,
            deltas_applied: c.deltas_applied,
            drains: c.drains,
            leaves: c.leaves,
            joins: c.joins,
            join_rejections: c.join_rejections,
            migrated_queries: c.migrated_queries,
            fence_stall_ns: c.fence_stall_ns,
            loss_free: conserved && cycled,
            digest: s.digest.clone(),
        });

        // Priority phase: per-class rows at 1.0x and 2.0x.
        let mut miss = [[0.0f64; 3]; 2]; // [load][class] deadline-miss rate
        let mut shed_frac = [[0.0f64; 3]; 2];
        for (li, (mult, out)) in [(1.0, &outs[2]), (2.0, &outs[3])].iter().enumerate() {
            for (ci, pc) in out.summary.per_class.iter().enumerate() {
                let miss_rate = if pc.admitted > 0 {
                    pc.deadline_violations as f64 / pc.admitted as f64
                } else {
                    0.0
                };
                let sf =
                    if pc.offered > 0 { pc.shed as f64 / pc.offered as f64 } else { 0.0 };
                miss[li][ci] = miss_rate;
                shed_frac[li][ci] = sf;
                priority.push(PriorityClassRow {
                    dataset: ds.spec.name.to_string(),
                    load_mult: *mult,
                    class: pc.class.clone(),
                    offered: pc.offered,
                    admitted: pc.admitted,
                    shed: pc.shed,
                    shed_fraction: sf,
                    deadline_miss_rate: miss_rate,
                    p99_ns: pc.p99_ns,
                });
            }
        }
        // Doubling the load must not worsen gold's deadline-miss rate...
        gold_holds &= miss[1][0] <= miss[0][0] + 1e-9;
        // ...because the extra pressure lands on bronze (then silver) first.
        bronze_first &= shed_frac[1][2] > 0.0
            && shed_frac[1][2] >= shed_frac[1][1]
            && shed_frac[1][1] >= shed_frac[1][0];

        // Engine-level mutation replay at 1 and 4 host threads.
        let msched = ChurnSchedule::derive(&drill_spec(duration_ns), nodes);
        let (rep, stale1, d1) = mutate_and_digest(&ds.graph, gpus, &msched, 1);
        let (_, stale4, d4) = mutate_and_digest(&ds.graph, gpus, &msched, 4);
        stale_total += stale1 + stale4;
        replay_matches &= d1 == d4;
        mutation.push(MutationRow {
            dataset: ds.spec.name.to_string(),
            deltas_applied: rep.applied as u64,
            affected_rows: rep.affected_rows as u64,
            invalidated: rep.invalidated as u64,
            inserted_nodes: rep.inserted_nodes as u64,
            removed_nodes: rep.removed_nodes as u64,
            stale_reads: stale1 + stale4,
            digest: d1.clone(),
            threads_match: d1 == d4,
        });
    }

    ChurnBenchReport {
        gpus,
        dim,
        duration_ns,
        drill,
        priority,
        mutation,
        drill_goodput_ratio: goodput_ratio,
        drill_loss_free: loss_free,
        gold_miss_rate_holds: gold_holds,
        bronze_sheds_first: bronze_first,
        stale_reads: stale_total,
        replay_matches,
    }
}

impl ExperimentReport for ChurnBenchReport {
    fn id(&self) -> &'static str {
        "ext_churn"
    }

    fn print(&self) {
        println!(
            "churn drill on {} GPUs, dim {}, {:.1} ms window, {DRILL_LOAD}x load, \
             drain/leave/join at {:.0}/{:.0}/{:.0}% of window",
            self.gpus,
            self.dim,
            self.duration_ns as f64 / 1e6,
            100.0 * DRAIN_AT,
            100.0 * LEAVE_AT,
            100.0 * JOIN_AT,
        );
        println!(
            "{:<8} {:>9} {:>9} {:>10} {:>10} {:>6} {:>7} {:>7} {:>9} {:>5}",
            "dataset", "offered", "admitted", "goodput", "ceiling", "ratio", "fences", "deltas", "migrated", "ok"
        );
        for r in &self.drill {
            println!(
                "{:<8} {:>9} {:>9} {:>8.2}M {:>8.2}M {:>6.3} {:>7} {:>7} {:>9} {:>5}",
                r.dataset,
                r.offered,
                r.admitted,
                r.goodput_qps / 1e6,
                r.steady_goodput_qps / 1e6,
                r.goodput_ratio,
                r.fences,
                r.deltas_applied,
                r.migrated_queries,
                if r.loss_free { "yes" } else { "NO" }
            );
        }
        println!("\npriority mix {MIX:?} (gold/silver/bronze):");
        for r in &self.priority {
            println!(
                "  {:<8} {:>4.1}x {:<6} offered {:>8} shed {:>6.1}% miss {:>6.2}% p99 {:>8.1} us",
                r.dataset,
                r.load_mult,
                r.class,
                r.offered,
                100.0 * r.shed_fraction,
                100.0 * r.deadline_miss_rate,
                r.p99_ns as f64 / 1e3,
            );
        }
        println!("\nengine mutation replay (1 vs 4 threads):");
        for m in &self.mutation {
            println!(
                "  {:<8} {} deltas, {} rows touched, {} invalidated, +{}/-{} nodes, {} stale reads, digest {} ({})",
                m.dataset,
                m.deltas_applied,
                m.affected_rows,
                m.invalidated,
                m.inserted_nodes,
                m.removed_nodes,
                m.stale_reads,
                m.digest,
                if m.threads_match { "threads match" } else { "THREAD MISMATCH" }
            );
        }
        println!(
            "\ndrill goodput ratio (worst dataset): {:.3}; loss-free: {}; gold miss rate holds at 2x: {}; bronze sheds first: {}; stale reads: {}; replay identical: {}",
            self.drill_goodput_ratio,
            self.drill_loss_free,
            self.gold_miss_rate_holds,
            self.bronze_sheds_first,
            self.stale_reads,
            self.replay_matches
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_report_holds_robustness_claims() {
        // 8 GPUs to match the committed artifact: the drill retires one of
        // the fleet's shards for 35% of the window, so the goodput-ratio
        // claim is a statement about *that* capacity fraction (1/8 here; a
        // 4-GPU drill loses 25% of its fleet and sits near 0.88).
        let r = run(0.05, 8);
        assert_eq!(r.drill.len(), 5);
        assert_eq!(r.priority.len(), 5 * 2 * 3);
        assert_eq!(r.mutation.len(), 5);
        assert!(
            r.drill_goodput_ratio >= 0.9,
            "drill goodput ratio {} fell below 0.9x the steady ceiling",
            r.drill_goodput_ratio
        );
        assert!(r.drill_loss_free, "membership cycle must conserve queries");
        assert!(r.gold_miss_rate_holds, "gold deadline-miss rate rose at 2x load");
        assert!(r.bronze_sheds_first, "shedding must be priority-ordered");
        assert_eq!(r.stale_reads, 0, "versioned reads must never see a stale row");
        assert!(r.replay_matches, "1-vs-4-thread replays diverged");
        assert!(r.drill.iter().all(|d| d.fences > 0 && d.deltas_applied > 0));
        assert!(r.mutation.iter().all(|m| m.deltas_applied > 0 && m.invalidated > 0));
    }
}
