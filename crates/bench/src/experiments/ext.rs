//! §6 extension studies (the paper's Discussion, beyond its evaluation).
//!
//! * [`run_reorder`] — **locality-driven partitioning** composed with MGG:
//!   BFS locality reordering (the Rabbit-order stand-in) relabels a
//!   community-structured graph so that MGG's contiguous node split
//!   captures the communities, cutting the remote fraction and the
//!   aggregation time. Community graphs (SBM with scrambled ids) are used
//!   because that is the structure locality reordering exists to exploit;
//!   R-MAT stand-ins have no communities to recover.
//! * [`run_replicated`] — **workload-driven partitioning** under MGG's
//!   substrates: edge-sharded execution with replicated inputs/outputs
//!   combined by `nvshmem_float_sum_reduce`. Exposes the real tradeoff:
//!   replication can win wall-clock time on small graphs (its collective
//!   moves ~2·N·D bytes vs MGG's per-edge cut traffic) but needs the
//!   *whole* embedding matrix on every GPU — forfeiting the memory
//!   scaling that motivates multi-GPU GNNs in the first place (§2.2).

use mgg_core::{MggConfig, MggEngine, ReplicatedEngine};
use mgg_gnn::reference::AggregateMode;
use mgg_graph::generators::random::{sbm, SbmConfig};
use mgg_graph::partition::reorder;
use mgg_graph::{CsrGraph, NodeId};
use mgg_sim::ClusterSpec;
use serde::Serialize;

use crate::experiments::common::datasets;
use crate::report::{geomean, ExperimentReport};

/// Remote-traffic change from reordering one dataset.
#[derive(Debug, Clone, Serialize)]
pub struct ReorderRow {
    /// Graph.
    pub graph: String,
    /// Remote frac before.
    pub remote_frac_before: f64,
    /// Remote frac after.
    pub remote_frac_after: f64,
    /// Ms before.
    pub ms_before: f64,
    /// Ms after.
    pub ms_after: f64,
    /// Baseline latency over this configuration’s.
    pub speedup: f64,
}

/// The node-reordering locality experiment.
#[derive(Debug, Clone, Serialize)]
pub struct ReorderReport {
    /// Number of GPUs.
    pub gpus: usize,
    /// Per-cell sweep rows.
    pub rows: Vec<ReorderRow>,
    /// Geomean speedup.
    pub geomean_speedup: f64,
}

/// Builds a community graph whose node ids are deterministically
/// scrambled (round-robin over communities), destroying id locality.
fn scrambled_community_graph(
    communities: usize,
    size: usize,
    deg_in: f64,
    deg_out: f64,
    seed: u64,
) -> CsrGraph {
    let out = sbm(&SbmConfig {
        block_sizes: vec![size; communities],
        avg_degree_in: deg_in,
        avg_degree_out: deg_out,
        seed,
    });
    let n = out.graph.num_nodes();
    // perm[v] = new id: interleave communities round-robin.
    let mut perm = vec![0 as NodeId; n];
    let mut counters = vec![0u32; communities];
    for (v, &c) in out.labels.iter().enumerate() {
        perm[v] = counters[c as usize] * communities as u32 + c;
        counters[c as usize] += 1;
    }
    out.graph.relabel(&perm)
}

/// MGG with vs without BFS locality reordering on community graphs.
pub fn run_reorder(scale: f64, gpus: usize) -> ReorderReport {
    let cfg = MggConfig::default_fixed();
    let dim = 128;
    let size = |base: usize| ((base as f64 * scale) as usize).max(64);
    let tasks = [
        ("16 communities, dense", 16usize, size(512), 40.0, 4.0, 81u64),
        ("64 communities, sparse", 64, size(128), 16.0, 2.0, 83),
        ("8 communities, huge", 8, size(1024), 24.0, 6.0, 85),
    ];
    let rows: Vec<ReorderRow> = tasks
        .into_iter()
        .map(|(name, communities, sz, din, dout, seed)| {
            let g = scrambled_community_graph(communities, sz, din, dout, seed);
            let spec = ClusterSpec::dgx_a100(gpus);
            let mut plain = MggEngine::new(&g, spec.clone(), cfg, AggregateMode::Sum);
            let t_plain = plain.simulate_aggregation_ns(dim).expect("valid launch");
            let (relabeled, _) = reorder::reorder(&g);
            let mut better = MggEngine::new(&relabeled, spec, cfg, AggregateMode::Sum);
            let t_better = better.simulate_aggregation_ns(dim).expect("valid launch");
            ReorderRow {
                graph: name.to_string(),
                remote_frac_before: plain.placement.remote_fraction(),
                remote_frac_after: better.placement.remote_fraction(),
                ms_before: t_plain as f64 / 1e6,
                ms_after: t_better as f64 / 1e6,
                speedup: t_plain as f64 / t_better.max(1) as f64,
            }
        })
        .collect();
    let geomean_speedup = geomean(&rows.iter().map(|r| r.speedup).collect::<Vec<_>>());
    ReorderReport { gpus, rows, geomean_speedup }
}

impl ExperimentReport for ReorderReport {
    fn id(&self) -> &'static str {
        "ext_reorder"
    }

    fn print(&self) {
        println!(
            "Extension (§6): locality reordering composed with MGG ({} GPUs, community graphs)",
            self.gpus
        );
        println!(
            "{:<24} {:>12} {:>8} {:>11} {:>10} {:>9}",
            "graph", "remote frac", "after", "before(ms)", "after(ms)", "speedup"
        );
        for r in &self.rows {
            println!(
                "{:<24} {:>11.1}% {:>7.1}% {:>11.3} {:>10.3} {:>8.2}x",
                r.graph,
                100.0 * r.remote_frac_before,
                100.0 * r.remote_frac_after,
                r.ms_before,
                r.ms_after,
                r.speedup
            );
        }
        println!(
            "geomean speedup from reordering: {:.2}x \
             (MGG accommodates reduced-communication partitionings, §6)",
            self.geomean_speedup
        );
    }
}

/// One dataset’s replicated-engine cell.
#[derive(Debug, Clone, Serialize)]
pub struct ReplicatedRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Embedding dimension.
    pub dim: usize,
    /// Mgg ms.
    pub mgg_ms: f64,
    /// Replicated ms.
    pub replicated_ms: f64,
    /// Replicated reduce ms.
    pub replicated_reduce_ms: f64,
    /// `replicated / mgg` — above 1 means MGG wins on time.
    pub mgg_time_advantage: f64,
    /// Embedding bytes each GPU must hold: MGG partitions (N/n · D · 4).
    pub mgg_bytes_per_gpu: u64,
    /// Replicated execution holds the full matrix per GPU (N · D · 4).
    pub replicated_bytes_per_gpu: u64,
}

/// The replication-vs-partitioning memory/time trade.
#[derive(Debug, Clone, Serialize)]
pub struct ReplicatedReport {
    /// Number of GPUs.
    pub gpus: usize,
    /// Per-cell sweep rows.
    pub rows: Vec<ReplicatedRow>,
}

/// MGG's node-split pipeline vs edge-sharded replicated execution, at a
/// small and the native aggregation dimension.
pub fn run_replicated(scale: f64, gpus: usize) -> ReplicatedReport {
    let cfg = MggConfig::default_fixed();
    let mut rows = Vec::new();
    for d in datasets(scale) {
        for dim in [16usize, d.spec.dim.max(64)] {
            let spec = ClusterSpec::dgx_a100(gpus);
            let n = d.graph.num_nodes() as u64;
            let mut mgg = MggEngine::new(&d.graph, spec.clone(), cfg, AggregateMode::Sum);
            let t_mgg = mgg.simulate_aggregation_ns(dim).expect("valid launch");
            let mut rep = ReplicatedEngine::new(&d.graph, spec, cfg.ps, AggregateMode::Sum);
            let t_rep = rep.simulate_aggregation_ns(dim);
            rows.push(ReplicatedRow {
                dataset: d.spec.name,
                dim,
                mgg_ms: t_mgg as f64 / 1e6,
                replicated_ms: t_rep as f64 / 1e6,
                replicated_reduce_ms: rep.last_reduce_ns as f64 / 1e6,
                mgg_time_advantage: t_rep as f64 / t_mgg.max(1) as f64,
                mgg_bytes_per_gpu: n.div_ceil(gpus as u64) * dim as u64 * 4,
                replicated_bytes_per_gpu: n * dim as u64 * 4,
            });
        }
    }
    ReplicatedReport { gpus, rows }
}

impl ExperimentReport for ReplicatedReport {
    fn id(&self) -> &'static str {
        "ext_replicated"
    }

    fn print(&self) {
        println!(
            "Extension (§6): node-split MGG vs edge-sharded replicated execution ({} GPUs)",
            self.gpus
        );
        println!(
            "{:<8} {:>5} {:>9} {:>12} {:>11} | {:>12} {:>12}",
            "dataset", "dim", "MGG (ms)", "repl. (ms)", "(reduce)", "MGG MiB/GPU", "repl MiB/GPU"
        );
        for r in &self.rows {
            println!(
                "{:<8} {:>5} {:>9.3} {:>12.3} {:>11.3} | {:>12.2} {:>12.2}",
                r.dataset,
                r.dim,
                r.mgg_ms,
                r.replicated_ms,
                r.replicated_reduce_ms,
                r.mgg_bytes_per_gpu as f64 / (1 << 20) as f64,
                r.replicated_bytes_per_gpu as f64 / (1 << 20) as f64,
            );
        }
        println!(
            "(replication can win wall-clock on small graphs but holds the whole \
             matrix on every GPU — {}x the memory — forfeiting the out-of-single-GPU \
             scaling that motivates multi-GPU GNNs, §2.2)",
            self.gpus
        );
    }
}

/// Makespan on one platform preset.
#[derive(Debug, Clone, Serialize)]
pub struct FabricRow {
    /// Fabric.
    pub fabric: &'static str,
    /// Link gbps.
    pub link_gbps: f64,
    /// Mgg ms.
    pub mgg_ms: f64,
    /// Uvm ms.
    pub uvm_ms: f64,
    /// Baseline latency over this configuration’s.
    pub speedup: f64,
}

/// The fabric-topology sensitivity sweep.
#[derive(Debug, Clone, Serialize)]
pub struct FabricReport {
    /// Number of GPUs.
    pub gpus: usize,
    /// Dataset name.
    pub dataset: &'static str,
    /// Per-cell sweep rows.
    pub rows: Vec<FabricRow>,
}

/// Fabric sensitivity: MGG vs UVM on NVSwitch, a half-bandwidth fabric,
/// and a PCIe-only box (§2.4: prior systems targeted PCIe, where
/// fine-grained remote access is hopeless; MGG's design leans on the
/// "recent software/hardware advancement in communication").
pub fn run_fabric(scale: f64, gpus: usize) -> FabricReport {
    use mgg_baselines::UvmGnnEngine;
    use mgg_graph::datasets::DatasetSpec;
    use mgg_sim::LinkSpec;

    let d = DatasetSpec::rdd().build(scale);
    let dim = 16; // the GCN aggregation width
    let mut half = ClusterSpec::dgx_a100(gpus);
    half.link = LinkSpec {
        bw_gbps: half.link.bw_gbps / 2.0,
        latency_ns: half.link.latency_ns * 2,
        request_overhead_ns: half.link.request_overhead_ns,
    };
    let fabrics: Vec<(&'static str, ClusterSpec)> = vec![
        ("NVSwitch (DGX-A100)", ClusterSpec::dgx_a100(gpus)),
        ("half-bandwidth fabric", half),
        ("PCIe-only box", ClusterSpec::pcie_box(gpus)),
    ];
    let rows = fabrics
        .into_iter()
        .map(|(name, spec)| {
            let link_gbps = spec.link.bw_gbps;
            let mut mgg =
                MggEngine::new(&d.graph, spec.clone(), MggConfig::default_fixed(), AggregateMode::Sum);
            let t_mgg = mgg.simulate_aggregation_ns(dim).expect("valid launch");
            let mut uvm = UvmGnnEngine::new(&d.graph, spec, AggregateMode::Sum);
            let t_uvm = uvm.simulate_aggregation_ns(dim);
            FabricRow {
                fabric: name,
                link_gbps,
                mgg_ms: t_mgg as f64 / 1e6,
                uvm_ms: t_uvm as f64 / 1e6,
                speedup: t_uvm as f64 / t_mgg.max(1) as f64,
            }
        })
        .collect();
    FabricReport { gpus, dataset: "RDD", rows }
}

impl ExperimentReport for FabricReport {
    fn id(&self) -> &'static str {
        "ext_fabric"
    }

    fn print(&self) {
        println!(
            "Extension (§2.4): fabric sensitivity of MGG vs UVM ({} stand-in, {} GPUs, GCN width)",
            self.dataset, self.gpus
        );
        println!(
            "{:<22} {:>10} {:>10} {:>10} {:>9}",
            "fabric", "GB/s/dir", "MGG (ms)", "UVM (ms)", "speedup"
        );
        for r in &self.rows {
            println!(
                "{:<22} {:>10.0} {:>10.3} {:>10.3} {:>8.2}x",
                r.fabric, r.link_gbps, r.mgg_ms, r.uvm_ms, r.speedup
            );
        }
        println!("(fine-grained pipelining needs a fast fabric; PCIe shrinks the gap)");
    }
}

/// One engine’s epoch time and accuracy.
#[derive(Debug, Clone, Serialize)]
pub struct TrainRow {
    /// Engine label.
    pub engine: &'static str,
    /// Epoch ms.
    pub epoch_ms: f64,
    /// Total ms.
    pub total_ms: f64,
    /// Test accuracy.
    pub test_accuracy: f64,
}

/// End-to-end training comparison across engines.
#[derive(Debug, Clone, Serialize)]
pub struct TrainReport {
    /// Number of GPUs.
    pub gpus: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Per-cell sweep rows.
    pub rows: Vec<TrainRow>,
}

/// End-to-end GCN *training* on the distributed engines: identical
/// accuracy (same math), different simulated epoch times — the §5.3
/// "end-to-end GNN training consists of more than 100 iterations" story.
pub fn run_train(scale: f64, gpus: usize) -> TrainReport {
    use mgg_baselines::UvmGnnEngine;
    use mgg_gnn::features::{label_features, split_masks};
    use mgg_gnn::models::DenseCostModel;
    use mgg_gnn::train::{train_gcn_on_engine, TrainConfig};
    use mgg_graph::generators::random::{sbm, SbmConfig};

    let epochs = 100;
    let size = ((160.0 * scale) as usize).max(60);
    let out = sbm(&SbmConfig {
        block_sizes: vec![size; 10],
        avg_degree_in: 14.0,
        avg_degree_out: 5.0,
        seed: 91,
    });
    let x = label_features(&out.labels, 10, 32, 0.15, 92);
    let (tr, va, te) = split_masks(out.graph.num_nodes(), 0.3, 0.2, 93);
    let cfg = TrainConfig::paper(epochs, 94);
    let cost = DenseCostModel::a100(gpus);
    let spec = ClusterSpec::dgx_a100(gpus);

    // Data-parallel dense layers: the weight gradients (W1: dim x 16,
    // W2: 16 x classes) all-reduce across GPUs once per epoch.
    let grad_bytes = (x.cols() * 16 + 16 * 10) as u64 * 4;
    let allreduce_ns = {
        let mut c = mgg_sim::Cluster::new(spec.clone());
        mgg_collective::ring_allreduce(&mut c, grad_bytes)
    };

    let mut rows = Vec::new();
    {
        let mut engine = MggEngine::new(
            &out.graph,
            spec.clone(),
            MggConfig::default_fixed(),
            AggregateMode::GcnNorm,
        );
        let r = train_gcn_on_engine(
            &mut engine, &x, &out.labels, 10, &tr, &va, &te, &cfg, &cost,
        );
        let epoch_ns = r.epoch_ns + allreduce_ns;
        rows.push(TrainRow {
            engine: "MGG",
            epoch_ms: epoch_ns as f64 / 1e6,
            total_ms: (epoch_ns * epochs as u64) as f64 / 1e6,
            test_accuracy: r.result.test_accuracy,
        });
    }
    {
        let mut engine = UvmGnnEngine::new(&out.graph, spec, AggregateMode::GcnNorm);
        let r = train_gcn_on_engine(
            &mut engine, &x, &out.labels, 10, &tr, &va, &te, &cfg, &cost,
        );
        let epoch_ns = r.epoch_ns + allreduce_ns;
        rows.push(TrainRow {
            engine: "UVM",
            epoch_ms: epoch_ns as f64 / 1e6,
            total_ms: (epoch_ns * epochs as u64) as f64 / 1e6,
            test_accuracy: r.result.test_accuracy,
        });
    }
    TrainReport { gpus, epochs, rows }
}

impl ExperimentReport for TrainReport {
    fn id(&self) -> &'static str {
        "ext_train"
    }

    fn print(&self) {
        println!(
            "Extension (§5.3): end-to-end GCN training on the engines ({} GPUs, {} epochs)",
            self.gpus, self.epochs
        );
        println!(
            "{:<8} {:>12} {:>12} {:>10}",
            "engine", "epoch (ms)", "total (ms)", "test acc"
        );
        for r in &self.rows {
            println!(
                "{:<8} {:>12.3} {:>12.3} {:>10.3}",
                r.engine, r.epoch_ms, r.total_ms, r.test_accuracy
            );
        }
        println!("(same math, same accuracy; only the aggregation engine differs)");
    }
}

/// Reference-CPU vs simulated-GPU latency on one dataset.
#[derive(Debug, Clone, Serialize)]
pub struct CpuRow {
    /// Platform preset label.
    pub platform: &'static str,
    /// Async ms.
    pub async_ms: f64,
    /// Sync ms.
    pub sync_ms: f64,
    /// Pipelining gain.
    pub pipelining_gain: f64,
    /// Tuned.
    pub tuned: String,
    /// Tuned ms.
    pub tuned_ms: f64,
}

/// The host-CPU (reference) comparison across datasets.
#[derive(Debug, Clone, Serialize)]
pub struct CpuReport {
    /// Number of nodes.
    pub nodes: usize,
    /// Per-cell sweep rows.
    pub rows: Vec<CpuRow>,
}

/// §6 hardware generality: the same pipelined design on a GPU fabric and
/// on a multi-CPU OpenSHMEM cluster. The pattern transfers (async beats
/// sync on both) and the tuner lands on different knobs per platform.
pub fn run_cpu(scale: f64, nodes: usize) -> CpuReport {
    use mgg_core::kernel::KernelVariant;
    use mgg_core::{AnalyticalModel, Tuner};
    use mgg_graph::datasets::DatasetSpec;

    let d = DatasetSpec::orkt().build(scale);
    let dim = d.spec.dim;
    let platforms: Vec<(&'static str, ClusterSpec)> = vec![
        ("DGX-A100 (GPUs)", ClusterSpec::dgx_a100(nodes)),
        ("OpenSHMEM CPU cluster", ClusterSpec::cpu_cluster(nodes)),
    ];
    let rows = platforms
        .into_iter()
        .map(|(name, spec)| {
            let time = |variant: KernelVariant| {
                let mut e = MggEngine::new(
                    &d.graph,
                    spec.clone(),
                    MggConfig::default_fixed(),
                    AggregateMode::Sum,
                );
                e.variant = variant;
                e.simulate_aggregation_ns(dim).expect("valid launch")
            };
            let t_async = time(KernelVariant::AsyncPipelined);
            let t_sync = time(KernelVariant::SyncRemote);
            // Retune for the platform.
            let mut engine = MggEngine::new(
                &d.graph,
                spec.clone(),
                MggConfig::initial(),
                AggregateMode::Sum,
            );
            let model = AnalyticalModel::new(spec.gpu.clone(), dim);
            let result = {
                let cell = std::cell::RefCell::new(&mut engine);
                Tuner::new(|cfg: &MggConfig| {
                    let mut e = cell.borrow_mut();
                    e.set_config(*cfg).expect("search configs are valid");
                    e.simulate_aggregation_ns(dim).unwrap_or(u64::MAX)
                })
                .with_feasibility(move |cfg| model.feasible(cfg))
                .run()
            };
            CpuRow {
                platform: name,
                async_ms: t_async as f64 / 1e6,
                sync_ms: t_sync as f64 / 1e6,
                pipelining_gain: t_sync as f64 / t_async.max(1) as f64,
                tuned: result.best.to_string(),
                tuned_ms: result.best_latency_ns as f64 / 1e6,
            }
        })
        .collect();
    CpuReport { nodes, rows }
}

impl ExperimentReport for CpuReport {
    fn id(&self) -> &'static str {
        "ext_cpu"
    }

    fn print(&self) {
        println!(
            "Extension (§6): hardware generality — the pipeline on GPUs vs a CPU cluster ({} nodes)",
            self.nodes
        );
        println!(
            "{:<24} {:>10} {:>10} {:>9} {:>20} {:>10}",
            "platform", "async(ms)", "sync(ms)", "gain", "retuned config", "tuned(ms)"
        );
        for r in &self.rows {
            println!(
                "{:<24} {:>10.3} {:>10.3} {:>8.2}x {:>20} {:>10.3}",
                r.platform, r.async_ms, r.sync_ms, r.pipelining_gain, r.tuned, r.tuned_ms
            );
        }
        println!("(the overlap pattern transfers; the knobs do not — exactly §6's point)");
    }
}

/// PUT-based vs GET-based makespan on one dataset.
#[derive(Debug, Clone, Serialize)]
pub struct PutGetRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Get ms.
    pub get_ms: f64,
    /// Put ms.
    pub put_ms: f64,
    /// Put barrier ms.
    pub put_barrier_ms: f64,
    /// Get advantage.
    pub get_advantage: f64,
}

/// The PUT-vs-GET comparison across datasets.
#[derive(Debug, Clone, Serialize)]
pub struct PutGetReport {
    /// Number of GPUs.
    pub gpus: usize,
    /// Per-cell sweep rows.
    pub rows: Vec<PutGetRow>,
    /// Geomean advantage.
    pub geomean_advantage: f64,
}

/// §3.3's design-choice ablation: the GET pipeline vs the rejected
/// PUT-based variant (staging + barrier + receiver-side polling).
pub fn run_putget(scale: f64, gpus: usize) -> PutGetReport {
    use mgg_baselines::PutBasedEngine;
    let dim = 64;
    let rows: Vec<PutGetRow> = datasets(scale)
        .into_iter()
        .map(|d| {
            let spec = ClusterSpec::dgx_a100(gpus);
            let mut get = MggEngine::new(
                &d.graph,
                spec.clone(),
                MggConfig::default_fixed(),
                AggregateMode::Sum,
            );
            let t_get = get.simulate_aggregation_ns(dim).expect("valid launch");
            let mut put = PutBasedEngine::new(&d.graph, spec, AggregateMode::Sum);
            let t_put = put.simulate_aggregation_ns(dim);
            PutGetRow {
                dataset: d.spec.name,
                get_ms: t_get as f64 / 1e6,
                put_ms: t_put as f64 / 1e6,
                put_barrier_ms: put.last_barrier_ns as f64 / 1e6,
                get_advantage: t_put as f64 / t_get.max(1) as f64,
            }
        })
        .collect();
    let geomean_advantage =
        geomean(&rows.iter().map(|r| r.get_advantage).collect::<Vec<_>>());
    PutGetReport { gpus, rows, geomean_advantage }
}

impl ExperimentReport for PutGetReport {
    fn id(&self) -> &'static str {
        "ext_putget"
    }

    fn print(&self) {
        println!(
            "Extension (§3.3): GET pipeline vs the rejected PUT design ({} GPUs, dim 64)",
            self.gpus
        );
        println!(
            "{:<8} {:>10} {:>10} {:>14} {:>10}",
            "dataset", "GET (ms)", "PUT (ms)", "(barrier ms)", "GET adv."
        );
        for r in &self.rows {
            println!(
                "{:<8} {:>10.3} {:>10.3} {:>14.3} {:>9.2}x",
                r.dataset, r.get_ms, r.put_ms, r.put_barrier_ms, r.get_advantage
            );
        }
        println!(
            "geomean GET advantage: {:.2}x (the paper picks GET to avoid the PUT \
             variant's receiver-side synchronization)",
            self.geomean_advantage
        );
    }
}

/// Makespan at one embedding dimension.
#[derive(Debug, Clone, Serialize)]
pub struct DimRow {
    /// Embedding dimension.
    pub dim: usize,
    /// Mgg ms.
    pub mgg_ms: f64,
    /// Uvm ms.
    pub uvm_ms: f64,
    /// Baseline latency over this configuration’s.
    pub speedup: f64,
    /// Fabric bytes MGG moved at this dim.
    pub mgg_fabric_mib: f64,
}

/// The embedding-dimension sweep: one row per hidden width.
#[derive(Debug, Clone, Serialize)]
pub struct DimReport {
    /// Number of GPUs.
    pub gpus: usize,
    /// Dataset name.
    pub dataset: &'static str,
    /// Per-cell sweep rows.
    pub rows: Vec<DimRow>,
}

/// Dimension sensitivity: MGG vs UVM as the aggregation width grows from
/// the GCN hidden size to Reddit's raw features — the regime shift from
/// request-overhead-bound to wire-bandwidth-bound.
pub fn run_dims(scale: f64, gpus: usize) -> DimReport {
    use mgg_baselines::UvmGnnEngine;
    use mgg_graph::datasets::DatasetSpec;
    let d = DatasetSpec::rdd().build(scale);
    let spec = ClusterSpec::dgx_a100(gpus);
    let rows = [16usize, 32, 64, 128, 256, 602]
        .into_iter()
        .map(|dim| {
            let mut mgg =
                MggEngine::new(&d.graph, spec.clone(), MggConfig::default_fixed(), AggregateMode::Sum);
            let stats = mgg.simulate_aggregation(dim).expect("valid launch");
            let t_mgg = stats.makespan_ns() + spec.kernel_launch_ns;
            let fabric = stats.traffic.remote_bytes() as f64 / (1 << 20) as f64;
            let mut uvm = UvmGnnEngine::new(&d.graph, spec.clone(), AggregateMode::Sum);
            let t_uvm = uvm.simulate_aggregation_ns(dim);
            DimRow {
                dim,
                mgg_ms: t_mgg as f64 / 1e6,
                uvm_ms: t_uvm as f64 / 1e6,
                speedup: t_uvm as f64 / t_mgg.max(1) as f64,
                mgg_fabric_mib: fabric,
            }
        })
        .collect();
    DimReport { gpus, dataset: "RDD", rows }
}

impl ExperimentReport for DimReport {
    fn id(&self) -> &'static str {
        "ext_dims"
    }

    fn print(&self) {
        println!(
            "Extension: aggregation-width sensitivity ({} stand-in, {} GPUs)",
            self.dataset, self.gpus
        );
        println!(
            "{:>5} {:>10} {:>10} {:>9} {:>14}",
            "dim", "MGG (ms)", "UVM (ms)", "speedup", "fabric (MiB)"
        );
        for r in &self.rows {
            println!(
                "{:>5} {:>10.3} {:>10.3} {:>8.2}x {:>14.2}",
                r.dim, r.mgg_ms, r.uvm_ms, r.speedup, r.mgg_fabric_mib
            );
        }
        println!(
            "(narrow dims are request-bound — where the tuner matters; wide dims \
             become wire-bandwidth-bound)"
        );
    }
}

/// Makespan at one GPU count.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingRow {
    /// Number of GPUs.
    pub gpus: usize,
    /// Mgg ms.
    pub mgg_ms: f64,
    /// Uvm ms.
    pub uvm_ms: f64,
    /// Baseline latency over this configuration’s.
    pub speedup: f64,
}

/// The GPU-count scaling experiment: one row per cluster size.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingReport {
    /// Dataset name.
    pub dataset: &'static str,
    /// Embedding dimension.
    pub dim: usize,
    /// Per-cell sweep rows.
    pub rows: Vec<ScalingRow>,
}

/// Strong scaling from 1 to 8 GPUs (the Figure-8 trend, resolved per GPU
/// count): MGG's advantage grows with the GPU count because fine-grained
/// pipelining keeps the added remote traffic off the critical path.
pub fn run_scaling(scale: f64) -> ScalingReport {
    use mgg_baselines::UvmGnnEngine;
    use mgg_graph::datasets::DatasetSpec;
    let d = DatasetSpec::rdd().build(scale);
    let dim = 16; // GCN aggregation width
    let rows = [1usize, 2, 4, 8]
        .into_iter()
        .map(|gpus| {
            let spec = ClusterSpec::dgx_a100(gpus);
            let mut mgg =
                MggEngine::new(&d.graph, spec.clone(), MggConfig::default_fixed(), AggregateMode::Sum);
            let t_mgg = mgg.simulate_aggregation_ns(dim).expect("valid launch");
            let mut uvm = UvmGnnEngine::new(&d.graph, spec, AggregateMode::Sum);
            let t_uvm = uvm.simulate_aggregation_ns(dim);
            ScalingRow {
                gpus,
                mgg_ms: t_mgg as f64 / 1e6,
                uvm_ms: t_uvm as f64 / 1e6,
                speedup: t_uvm as f64 / t_mgg.max(1) as f64,
            }
        })
        .collect();
    ScalingReport { dataset: "RDD", dim, rows }
}

impl ExperimentReport for ScalingReport {
    fn id(&self) -> &'static str {
        "ext_scaling"
    }

    fn print(&self) {
        println!(
            "Extension: strong scaling 1-8 GPUs ({} stand-in, dim {})",
            self.dataset, self.dim
        );
        println!("{:>5} {:>10} {:>10} {:>9}", "GPUs", "MGG (ms)", "UVM (ms)", "speedup");
        for r in &self.rows {
            println!(
                "{:>5} {:>10.3} {:>10.3} {:>8.2}x",
                r.gpus, r.mgg_ms, r.uvm_ms, r.speedup
            );
        }
        println!("(the Figure-8 trend: MGG's advantage grows with the GPU count)");
    }
}
