//! Table 1: Direct NVSHMEM vs UVM speedup.
//!
//! Paper result: naively replacing UVM with on-demand blocking NVSHMEM
//! gets is *not* a free lunch — speedups range from 0.20× (ORKT) to
//! 1.44× (PROD), 23% slower on average.

use mgg_baselines::{DirectNvshmemEngine, UvmGnnEngine};
use mgg_gnn::reference::AggregateMode;
use mgg_sim::ClusterSpec;
use serde::Serialize;

use crate::experiments::common::datasets;
use crate::report::{geomean, ExperimentReport};

/// Serialized `tab1 row` record of this experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Tab1Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Uvm, in simulated ms.
    pub uvm_ms: f64,
    /// Direct, in simulated ms.
    pub direct_ms: f64,
    /// `uvm / direct` — above 1 means direct NVSHMEM wins.
    pub speedup: f64,
}

/// Serialized `tab1 report` record of this experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Tab1Report {
    /// Number of GPUs.
    pub gpus: usize,
    /// Per-cell sweep rows.
    pub rows: Vec<Tab1Row>,
    /// Geomean speedup.
    pub geomean_speedup: f64,
}

/// Runs the aggregation comparison across all five datasets.
pub fn run(scale: f64, gpus: usize) -> Tab1Report {
    // Independent per-dataset simulations: parallel jobs, dataset-order merge.
    let ds = datasets(scale);
    let _lbl = mgg_runtime::profile::region_label("bench.tab1");
    let rows: Vec<Tab1Row> = mgg_runtime::par_map(&ds, |d| {
        let spec = ClusterSpec::dgx_a100(gpus);
        let mut uvm = UvmGnnEngine::new(&d.graph, spec.clone(), AggregateMode::Sum);
        let uvm_ns = uvm.simulate_aggregation_ns(d.spec.dim);
        let mut direct = DirectNvshmemEngine::new(&d.graph, spec, AggregateMode::Sum);
        let direct_ns = direct.simulate_aggregation_ns(d.spec.dim);
        Tab1Row {
            dataset: d.spec.name,
            uvm_ms: uvm_ns as f64 / 1e6,
            direct_ms: direct_ns as f64 / 1e6,
            speedup: uvm_ns as f64 / direct_ns.max(1) as f64,
        }
    });
    let geomean_speedup = geomean(&rows.iter().map(|r| r.speedup).collect::<Vec<_>>());
    Tab1Report { gpus, rows, geomean_speedup }
}

impl ExperimentReport for Tab1Report {
    fn id(&self) -> &'static str {
        "tab1"
    }

    fn print(&self) {
        println!("Table 1: Direct NVSHMEM vs UVM ({} GPUs)", self.gpus);
        println!("{:<8} {:>10} {:>12} {:>9}", "dataset", "UVM (ms)", "direct (ms)", "speedup");
        for r in &self.rows {
            println!(
                "{:<8} {:>10.3} {:>12.3} {:>8.2}x",
                r.dataset, r.uvm_ms, r.direct_ms, r.speedup
            );
        }
        println!(
            "geomean speedup: {:.2}x (paper: 0.20x-1.44x, mixed; direct NVSHMEM is no free lunch)",
            self.geomean_speedup
        );
    }
}
