//! Figure 10: parameter selection under the analytical model and tuner.
//!
//! Three settings, as in the paper: (I) Reddit GCN on 4×A100, (II) on
//! 8×A100, (III) on 4×V100. For each we sweep the full `(ps, dist)` grid
//! (at `wpb = 1`) and the `(wpb, dist)` grid (at the tuned `ps`), then run
//! the cross-iteration tuner and report where it lands, in how many
//! probes, and the latency cut vs the all-ones initial configuration
//! (paper: ~10 probes, up to 68% reduction).

use mgg_core::{AnalyticalModel, MggConfig, MggEngine, Tuner};
use mgg_gnn::reference::AggregateMode;
use mgg_sim::ClusterSpec;
use serde::Serialize;

use mgg_graph::datasets::DatasetSpec;

use crate::report::ExperimentReport;

/// Serialized `grid cell` record of this experiment.
#[derive(Debug, Clone, Serialize)]
pub struct GridCell {
    /// Neighbor-partition size knob.
    pub ps: u32,
    /// Interleaving distance knob.
    pub dist: u32,
    /// Warps-per-block knob.
    pub wpb: u32,
    /// Simulated latency, ms.
    pub latency_ms: f64,
}

/// Serialized `fig10 setting` record of this experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10Setting {
    /// Row label.
    pub name: String,
    /// Latencies over (ps, dist) at wpb = 1.
    pub ps_dist_grid: Vec<GridCell>,
    /// Latencies over (wpb, dist) at the tuned ps.
    pub wpb_dist_grid: Vec<GridCell>,
    /// The tuner’s pick.
    pub tuned: MggConfig,
    /// Tuned latency, in simulated ms.
    pub tuned_latency_ms: f64,
    /// Initial latency, in simulated ms.
    pub initial_latency_ms: f64,
    /// Tuner iterations.
    pub tuner_iterations: usize,
    /// Improvement fraction.
    pub improvement_pct: f64,
    /// Best latency anywhere on the sweeps, to judge tuner quality.
    pub grid_best_ms: f64,
}

/// Serialized `fig10 report` record of this experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10Report {
    /// Per-dataset tuning settings.
    pub settings: Vec<Fig10Setting>,
}

const PS_STEPS: [u32; 6] = [1, 2, 4, 8, 16, 32];
const DIST_STEPS: [u32; 5] = [1, 2, 4, 8, 16];
const WPB_STEPS: [u32; 5] = [1, 2, 4, 8, 16];

fn sweep_setting(name: String, spec: ClusterSpec, dim: usize, scale: f64) -> Fig10Setting {
    let d = DatasetSpec::rdd().build(scale);
    let mut engine =
        MggEngine::new(&d.graph, spec.clone(), MggConfig::initial(), AggregateMode::GcnNorm);
    let model = AnalyticalModel::new(spec.gpu.clone(), dim);

    let mut eval = |cfg: MggConfig| -> Option<u64> {
        if !model.feasible(&cfg) {
            return None;
        }
        engine.set_config(cfg).expect("search configs are valid");
        engine.simulate_aggregation_ns(dim).ok()
    };

    // (ps, dist) grid at wpb = 1.
    let mut ps_dist_grid = Vec::new();
    for &ps in &PS_STEPS {
        for &dist in &DIST_STEPS {
            let cfg = MggConfig { ps, dist, wpb: 1 };
            if let Some(ns) = eval(cfg) {
                ps_dist_grid.push(GridCell { ps, dist, wpb: 1, latency_ms: ns as f64 / 1e6 });
            }
        }
    }

    // Tuner run (fresh table; reuses the same engine through a RefCell).
    let engine_cell = std::cell::RefCell::new(&mut engine);
    let model2 = model.clone();
    let result = Tuner::new(|cfg: &MggConfig| {
        let mut e = engine_cell.borrow_mut();
        e.set_config(*cfg).expect("search configs are valid");
        e.simulate_aggregation_ns(dim).unwrap_or(u64::MAX)
    })
    .with_feasibility(move |cfg| model2.feasible(cfg))
    .run();
    let _ = engine_cell;

    // (wpb, dist) grid at the tuned ps.
    let mut wpb_dist_grid = Vec::new();
    for &wpb in &WPB_STEPS {
        for &dist in &DIST_STEPS {
            let cfg = MggConfig { ps: result.best.ps, dist, wpb };
            if model.feasible(&cfg) {
                engine.set_config(cfg).expect("search configs are valid");
                if let Ok(ns) = engine.simulate_aggregation_ns(dim) {
                    wpb_dist_grid.push(GridCell {
                        ps: result.best.ps,
                        dist,
                        wpb,
                        latency_ms: ns as f64 / 1e6,
                    });
                }
            }
        }
    }

    let grid_best_ms = ps_dist_grid
        .iter()
        .chain(&wpb_dist_grid)
        .map(|c| c.latency_ms)
        .fold(f64::INFINITY, f64::min);

    Fig10Setting {
        name,
        ps_dist_grid,
        wpb_dist_grid,
        tuned: result.best,
        tuned_latency_ms: result.best_latency_ns as f64 / 1e6,
        initial_latency_ms: result.initial_latency_ns() as f64 / 1e6,
        tuner_iterations: result.iterations,
        improvement_pct: 100.0 * result.improvement(),
        grid_best_ms,
    }
}

/// Runs all three settings.
///
/// The swept aggregation dimension is the GCN hidden size (16): GCN
/// layers aggregate at the narrow side of the weight multiply, so this is
/// the dimension the runtime actually tunes for — and the regime where
/// the knobs matter (per-request overheads, not wire bytes, dominate).
pub fn run(scale: f64) -> Fig10Report {
    let dim = 16usize;
    let settings = vec![
        sweep_setting("I: RDD GCN on 4xA100".into(), ClusterSpec::dgx_a100(4), dim, scale),
        sweep_setting("II: RDD GCN on 8xA100".into(), ClusterSpec::dgx_a100(8), dim, scale),
        sweep_setting("III: RDD GCN on 4xV100".into(), ClusterSpec::dgx1_v100(4), dim, scale),
        // Beyond the paper: the full DGX-1V, whose hybrid cube-mesh makes
        // some peers two hops away — another knob-shifting platform.
        sweep_setting(
            "IV: RDD GCN on 8xV100 (cube mesh)".into(),
            ClusterSpec::dgx1_v100(8),
            dim,
            scale,
        ),
    ];
    Fig10Report { settings }
}

impl ExperimentReport for Fig10Report {
    fn id(&self) -> &'static str {
        "fig10"
    }

    fn print(&self) {
        println!("Figure 10: parameter selection for three settings");
        for s in &self.settings {
            println!("\nSetting {}", s.name);
            println!("  (ps x dist) latency grid at wpb=1, ms:");
            print!("  {:>6}", "ps\\d");
            for &d in &DIST_STEPS {
                print!(" {d:>8}");
            }
            println!();
            for &ps in &PS_STEPS {
                print!("  {ps:>6}");
                for &d in &DIST_STEPS {
                    match s.ps_dist_grid.iter().find(|c| c.ps == ps && c.dist == d) {
                        Some(c) => print!(" {:>8.3}", c.latency_ms),
                        None => print!(" {:>8}", "-"),
                    }
                }
                println!();
            }
            println!("  (wpb x dist) latency grid at tuned ps={}, ms:", s.tuned.ps);
            print!("  {:>6}", "wpb\\d");
            for &d in &DIST_STEPS {
                print!(" {d:>8}");
            }
            println!();
            for &wpb in &WPB_STEPS {
                print!("  {wpb:>6}");
                for &d in &DIST_STEPS {
                    match s.wpb_dist_grid.iter().find(|c| c.wpb == wpb && c.dist == d) {
                        Some(c) => print!(" {:>8.3}", c.latency_ms),
                        None => print!(" {:>8}", "-"),
                    }
                }
                println!();
            }
            println!(
                "  tuner: {} in {} probes | initial {:.3} ms -> tuned {:.3} ms ({:.0}% cut, grid best {:.3} ms)",
                s.tuned,
                s.tuner_iterations,
                s.initial_latency_ms,
                s.tuned_latency_ms,
                s.improvement_pct,
                s.grid_best_ms
            );
        }
        println!("\n(paper: ~10 probe iterations, up to 68% latency reduction vs initial)");
    }
}
