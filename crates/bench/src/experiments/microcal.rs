//! Micro-calibration: the simulator's first-order operation costs.
//!
//! §4 notes the parameter search space was defined "based on our
//! micro-benchmarking results on diverse datasets"; this experiment is
//! the reproduction's equivalent: targeted single-op kernels measure the
//! platform model's primitive costs, so readers can sanity-check every
//! constant behind the headline results (and see the latency/bandwidth
//! regimes that make the knobs matter).

use mgg_sim::{
    Cluster, ClusterSpec, GpuSim, KernelLaunch, KernelProgram, NoPaging, WarpOp,
};
use serde::Serialize;

/// One calibrated primitive (latency/bandwidth point).
#[derive(Debug, Clone, Serialize)]
pub struct MicrocalRow {
    /// What.
    pub what: String,
    /// , in simulated ns.
    pub ns: u64,
}

/// Microbenchmark calibration against vendor numbers.
#[derive(Debug, Clone, Serialize)]
pub struct MicrocalReport {
    /// Platform preset label.
    pub platform: String,
    /// Per-cell sweep rows.
    pub rows: Vec<MicrocalRow>,
}

/// One warp running one fixed trace.
struct OneWarp {
    ops: Vec<WarpOp>,
}

impl KernelProgram for OneWarp {
    fn launch(&self, pe: usize) -> KernelLaunch {
        KernelLaunch {
            blocks: if pe == 0 { 1 } else { 0 },
            warps_per_block: 1,
            smem_per_block: 0,
        }
    }
    fn warp_ops(&self, _pe: usize, _b: u32, _w: u32) -> Vec<WarpOp> {
        self.ops.clone()
    }
}

fn measure(spec: &ClusterSpec, ops: Vec<WarpOp>) -> u64 {
    let mut cluster = Cluster::new(spec.clone());
    GpuSim::run(&mut cluster, &OneWarp { ops }, &mut NoPaging)
        .expect("valid launch")
        .makespan_ns()
}

/// Measures the primitive costs on the given platform.
pub fn run_on(spec: ClusterSpec) -> MicrocalReport {
    let name = format!("{} x{}", spec.gpu.name, spec.num_gpus);
    let mut rows = Vec::new();
    let mut probe = |what: &str, ops: Vec<WarpOp>| {
        rows.push(MicrocalRow { what: what.to_string(), ns: measure(&spec, ops) });
    };

    probe("compute: 1000 cycles", vec![WarpOp::compute(1_000)]);
    probe("local read: 64 B row", vec![WarpOp::GlobalRead { bytes: 64 }]);
    probe("local read: 2.4 KiB row (dim 602)", vec![WarpOp::GlobalRead { bytes: 2_408 }]);
    probe(
        "blocking remote get: 64 B row",
        vec![WarpOp::RemoteGet { peer: 1, bytes: 64, nbi: false }],
    );
    probe(
        "blocking remote get: 2.4 KiB row",
        vec![WarpOp::RemoteGet { peer: 1, bytes: 2_408, nbi: false }],
    );
    probe(
        "nbi remote get + wait: 64 B row",
        vec![WarpOp::RemoteGet { peer: 1, bytes: 64, nbi: true }, WarpOp::WaitRemote],
    );
    probe(
        "nbi get hidden behind 3000 cycles",
        vec![
            WarpOp::RemoteGet { peer: 1, bytes: 64, nbi: true },
            WarpOp::compute(3_000),
            WarpOp::WaitRemote,
        ],
    );
    probe(
        "16 serialized blocking gets (direct-NVSHMEM pattern)",
        (0..16)
            .map(|_| WarpOp::RemoteGet { peer: 1, bytes: 64, nbi: false })
            .collect(),
    );
    probe(
        "16 nbi gets + one wait (MGG pattern)",
        (0..16)
            .map(|_| WarpOp::RemoteGet { peer: 1, bytes: 64, nbi: true })
            .chain([WarpOp::WaitRemote])
            .collect(),
    );
    MicrocalReport { platform: name, rows }
}

/// Measures A100 and V100 platforms.
pub fn run() -> Vec<MicrocalReport> {
    vec![run_on(ClusterSpec::dgx_a100(2)), run_on(ClusterSpec::dgx1_v100(2))]
}

impl crate::report::ExperimentReport for Vec<MicrocalReport> {
    fn id(&self) -> &'static str {
        "microcal"
    }

    fn print(&self) {
        println!("Micro-calibration: primitive operation costs of the platform model");
        for report in self {
            println!("\n{}", report.platform);
            for r in &report.rows {
                println!("  {:<48} {:>9} ns", r.what, r.ns);
            }
        }
        println!(
            "\n(the gap between the serialized-gets and nbi-gets rows is the \
             intra-warp pipelining headroom MGG exploits)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_have_sane_ordering() {
        let r = run_on(ClusterSpec::dgx_a100(2));
        let get = |what: &str| {
            r.rows
                .iter()
                .find(|row| row.what.starts_with(what))
                .unwrap_or_else(|| panic!("missing row {what}"))
                .ns
        };
        // Remote costs more than local; blocking chains cost more than
        // pipelined ones; hiding works.
        assert!(get("blocking remote get: 64") > get("local read: 64"));
        assert!(
            get("16 serialized blocking gets") > 4 * get("16 nbi gets"),
            "serialized {} vs pipelined {}",
            get("16 serialized blocking gets"),
            get("16 nbi gets")
        );
        let hidden = get("nbi get hidden behind 3000 cycles");
        let compute_only = get("compute: 1000 cycles") * 3;
        assert!(
            hidden < compute_only + 1_000,
            "a hidden get must cost barely more than the compute ({hidden})"
        );
    }

    #[test]
    fn v100_remote_costs_more_than_a100() {
        let a = run_on(ClusterSpec::dgx_a100(2));
        let v = run_on(ClusterSpec::dgx1_v100(2));
        let pick = |r: &MicrocalReport| {
            r.rows
                .iter()
                .find(|row| row.what.starts_with("blocking remote get: 2.4"))
                .unwrap()
                .ns
        };
        assert!(pick(&v) > pick(&a));
    }
}
