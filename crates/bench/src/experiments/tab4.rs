//! Table 4: comparison with DGCL on a 1-layer GCN, 8 GPUs.
//!
//! Paper result: MGG beats DGCL by ~7.4× on the GCN kernel and by more
//! than 100× on graph preprocessing. Preprocessing columns are *measured
//! wall-clock* (both are host CPU algorithms: DGCL's multilevel
//! partitioner vs MGG's binary-search split); GCN columns are simulated.

use mgg_baselines::DgclEngine;
use mgg_core::MggConfig;
use mgg_gnn::models::DenseCostModel;
use mgg_gnn::reference::AggregateMode;
use mgg_sim::ClusterSpec;
use serde::Serialize;

use crate::experiments::common::datasets;
use crate::report::{geomean, ExperimentReport};

/// Serialized `tab4 row` record of this experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Tab4Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Dgcl prep, in simulated ms.
    pub dgcl_prep_ms: f64,
    /// Mgg prep, in simulated ms.
    pub mgg_prep_ms: f64,
    /// Prep speedup.
    pub prep_speedup: f64,
    /// Dgcl gcn, in simulated ms.
    pub dgcl_gcn_ms: f64,
    /// Mgg gcn, in simulated ms.
    pub mgg_gcn_ms: f64,
    /// Gcn speedup.
    pub gcn_speedup: f64,
    /// Dgcl edge cut.
    pub dgcl_edge_cut: u64,
}

/// Serialized `tab4 report` record of this experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Tab4Report {
    /// Number of GPUs.
    pub gpus: usize,
    /// Per-cell sweep rows.
    pub rows: Vec<Tab4Row>,
    /// Geomean gcn speedup.
    pub geomean_gcn_speedup: f64,
    /// Geomean prep speedup.
    pub geomean_prep_speedup: f64,
}

/// Runs the Table-4 comparison (1-layer GCN, 16 hidden dims).
pub fn run(scale: f64, gpus: usize) -> Tab4Report {
    let hidden = 16usize;
    // Each dataset row is an independent simulation; fan the cells out on
    // the deterministic worker pool (results merge in dataset order).
    let ds = datasets(scale);
    let _lbl = mgg_runtime::profile::region_label("bench.tab4");
    let rows: Vec<Tab4Row> = mgg_runtime::par_map(&ds, |d| {
        let spec = ClusterSpec::dgx_a100(gpus);
        let cost = DenseCostModel::a100(gpus);
        let n = d.graph.num_nodes();
        let dense = cost.gemm_ns(n, d.spec.dim, hidden);
        // The GCN layer transforms to 16 dims first and aggregates the
        // narrow embedding (see `Gcn::forward`); both systems do.
        let agg_dim = hidden.min(d.spec.dim);

        let (mut dgcl, prep) =
            DgclEngine::new(&d.graph, spec.clone(), AggregateMode::GcnNorm);
        let dgcl_ns = dgcl.simulate_aggregation_ns(agg_dim) + dense;

        let mut mgg = crate::experiments::fig8::tuned_engine(
            &d.graph,
            spec,
            AggregateMode::GcnNorm,
            agg_dim,
        );
        let mgg_ns = mgg.simulate_aggregation_ns(agg_dim).expect("valid launch") + dense;
        // MGG's preprocessing wall-clock includes tuning-time plan
        // rebuilds in practice; the prep report's measurement covers
        // the split pipeline, as in the paper.
        let _ = MggConfig::default_fixed();

        Tab4Row {
            dataset: d.spec.name,
            dgcl_prep_ms: prep.dgcl_wall_ns as f64 / 1e6,
            mgg_prep_ms: prep.mgg_wall_ns as f64 / 1e6,
            prep_speedup: prep.mgg_speedup(),
            dgcl_gcn_ms: dgcl_ns as f64 / 1e6,
            mgg_gcn_ms: mgg_ns as f64 / 1e6,
            gcn_speedup: dgcl_ns as f64 / mgg_ns.max(1) as f64,
            dgcl_edge_cut: prep.dgcl_edge_cut,
        }
    });
    let geomean_gcn_speedup =
        geomean(&rows.iter().map(|r| r.gcn_speedup).collect::<Vec<_>>());
    let geomean_prep_speedup =
        geomean(&rows.iter().map(|r| r.prep_speedup).collect::<Vec<_>>());
    Tab4Report { gpus, rows, geomean_gcn_speedup, geomean_prep_speedup }
}

impl ExperimentReport for Tab4Report {
    fn id(&self) -> &'static str {
        "tab4"
    }

    fn print(&self) {
        println!("Table 4: vs DGCL, 1-layer GCN ({} GPUs)", self.gpus);
        println!(
            "{:<8} {:>14} {:>13} {:>9} | {:>13} {:>12} {:>9}",
            "dataset", "DGCL prep(ms)", "MGG prep(ms)", "speedup", "DGCL GCN(ms)", "MGG GCN(ms)", "speedup"
        );
        for r in &self.rows {
            println!(
                "{:<8} {:>14.2} {:>13.2} {:>8.0}x | {:>13.3} {:>12.3} {:>8.2}x",
                r.dataset,
                r.dgcl_prep_ms,
                r.mgg_prep_ms,
                r.prep_speedup,
                r.dgcl_gcn_ms,
                r.mgg_gcn_ms,
                r.gcn_speedup
            );
        }
        println!(
            "geomean: preprocessing {:.0}x, GCN {:.2}x (paper: >100x and 7.38x)",
            self.geomean_prep_speedup, self.geomean_gcn_speedup
        );
    }
}
