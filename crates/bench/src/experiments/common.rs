//! Shared experiment plumbing.

use mgg_baselines::{DgclEngine, DirectNvshmemEngine, UvmGnnEngine};
use mgg_core::MggEngine;
use mgg_gnn::models::{DenseCostModel, ModelKind};
use mgg_graph::datasets::{Dataset, DatasetSpec};

/// Builds all five Table-3 stand-ins at `scale`.
pub fn datasets(scale: f64) -> Vec<Dataset> {
    DatasetSpec::table3().into_iter().map(|s| s.build(scale)).collect()
}

/// A uniform handle over every engine's timing entry point.
pub trait SimAggregator {
    /// Simulated duration of one aggregation pass at dimension `dim`,
    /// including launch overhead.
    fn sim_ns(&mut self, dim: usize) -> u64;
}

impl SimAggregator for MggEngine {
    fn sim_ns(&mut self, dim: usize) -> u64 {
        self.simulate_aggregation_ns(dim).expect("valid MGG launch")
    }
}

impl SimAggregator for UvmGnnEngine {
    fn sim_ns(&mut self, dim: usize) -> u64 {
        self.simulate_aggregation_ns(dim)
    }
}

impl SimAggregator for DirectNvshmemEngine {
    fn sim_ns(&mut self, dim: usize) -> u64 {
        self.simulate_aggregation_ns(dim)
    }
}

impl SimAggregator for DgclEngine {
    fn sim_ns(&mut self, dim: usize) -> u64 {
        self.simulate_aggregation_ns(dim)
    }
}

/// Simulated end-to-end forward-pass time of a paper model on `engine`
/// (aggregation via the engine, dense side via the analytic cuBLAS
/// stand-in). Matches the timing composition of
/// [`mgg_gnn::models::Gcn::forward`] / [`mgg_gnn::models::Gin::forward`]
/// without paying for functional value computation.
pub fn model_time_ns(
    engine: &mut dyn SimAggregator,
    kind: ModelKind,
    num_nodes: usize,
    input_dim: usize,
    classes: usize,
    cost: &DenseCostModel,
) -> u64 {
    let hidden = kind.hidden_dim();
    let n = num_nodes;
    match kind {
        ModelKind::Gcn => {
            // GCN layers aggregate at the narrow side of each weight
            // multiply (transform-first when it shrinks the embedding),
            // matching `Gcn::forward`.
            let l1 = engine.sim_ns(input_dim.min(hidden))
                + cost.gemm_ns(n, input_dim, hidden)
                + cost.elementwise_ns(n, hidden);
            let l2 = engine.sim_ns(hidden.min(classes)) + cost.gemm_ns(n, hidden, classes);
            l1 + l2
        }
        ModelKind::Gin => {
            let mut total = 0u64;
            let mut d = input_dim;
            for _ in 0..kind.num_layers() {
                total += engine.sim_ns(d)
                    + cost.gemm_ns(n, d, hidden)
                    + cost.elementwise_ns(n, hidden)
                    + cost.gemm_ns(n, hidden, hidden);
                d = hidden;
            }
            total + cost.gemm_ns(n, hidden, classes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgg_core::MggConfig;
    use mgg_gnn::reference::AggregateMode;
    use mgg_sim::ClusterSpec;

    #[test]
    fn datasets_build_at_tiny_scale() {
        let ds = datasets(0.0625);
        assert_eq!(ds.len(), 5);
        assert!(ds.iter().all(|d| d.graph.num_edges() > 0));
    }

    #[test]
    fn model_time_gin_exceeds_gcn() {
        let d = DatasetSpec::prot().build(0.125);
        let mut engine = MggEngine::new(
            &d.graph,
            ClusterSpec::dgx_a100(4),
            MggConfig::default_fixed(),
            AggregateMode::Sum,
        );
        let cost = DenseCostModel::a100(4);
        let n = d.graph.num_nodes();
        let gcn = model_time_ns(&mut engine, ModelKind::Gcn, n, d.spec.dim, d.spec.classes, &cost);
        let gin = model_time_ns(&mut engine, ModelKind::Gin, n, d.spec.dim, d.spec.classes, &cost);
        assert!(gin > gcn, "5-layer GIN ({gin}) must exceed 2-layer GCN ({gcn})");
    }
}
