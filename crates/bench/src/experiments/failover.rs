//! Extension: elastic failover under permanent GPU and link failures.
//!
//! The transient-fault study (`ext_fault`) measures what recoverable noise
//! costs; this one measures what *losing hardware* costs. Each scenario
//! pins a permanent fault on a 4-GPU R-MAT run and reports the full
//! detection → recovery → resume arc:
//!
//! * `fault_free_ms` — the same engine with no faults (reference).
//! * `first_epoch_ms` — the epoch that hits the fault: detection pass
//!   (halted warps, dead-peer GETs riding the bounded timeout) plus the
//!   recovered re-run.
//! * `steady_state_ms` — the next epoch on the recovered placement; its
//!   gap to `fault_free_ms` is the permanent post-recovery overhead.
//! * `detection_ms` / `recovery_latency_ms` — the phi-accrual detection
//!   horizon and the total charged recovery latency (detection pass,
//!   evacuation re-run, checkpoint restore where applicable).
//! * recovery counters — evacuations, relay-routed and host-staged
//!   transfers, checkpoint restores.
//! * `bit_exact` — whether post-recovery functional outputs still match
//!   the fault-free values bit-for-bit (the split-invariance guarantee).
//!
//! Everything is pinned (graph seed, fault times), so the table replays
//! identically.

use mgg_core::{MggConfig, MggEngine};
use mgg_fault::{FaultSchedule, PermanentFault};
use mgg_gnn::reference::AggregateMode;
use mgg_gnn::Matrix;
use mgg_graph::generators::rmat::{rmat, RmatConfig};
use mgg_graph::CsrGraph;
use mgg_sim::ClusterSpec;
use serde::Serialize;

use crate::report::ExperimentReport;

const GPUS: usize = 4;
const DIM: usize = 64;
const FEATURE_SEED: u64 = 3;

/// One failure scenario’s detection/recovery outcome.
#[derive(Debug, Clone, Serialize)]
pub struct FailoverRow {
    /// Scenario.
    pub scenario: &'static str,
    /// Fault free ms.
    pub fault_free_ms: f64,
    /// First epoch ms.
    pub first_epoch_ms: f64,
    /// Steady state ms.
    pub steady_state_ms: f64,
    /// Post recovery overhead fraction.
    pub post_recovery_overhead_pct: f64,
    /// Detection ms.
    pub detection_ms: f64,
    /// Recovery latency ms.
    pub recovery_latency_ms: f64,
    /// Evacuations.
    pub evacuations: u64,
    /// Rerouted transfers.
    pub rerouted_transfers: u64,
    /// Host staged transfers.
    pub host_staged_transfers: u64,
    /// Dead peer gets.
    pub dead_peer_gets: u64,
    /// Checkpoint restores.
    pub checkpoint_restores: u64,
    /// Bit exact.
    pub bit_exact: bool,
}

/// The failover experiment: recovery timeline per scenario.
#[derive(Debug, Clone, Serialize)]
pub struct FailoverReport {
    /// Number of GPUs.
    pub gpus: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Number of nodes.
    pub nodes: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Per-cell sweep rows.
    pub rows: Vec<FailoverRow>,
}

fn graph(scale: f64) -> CsrGraph {
    let edges = ((5_000.0 * scale.max(0.05)) as usize).max(500);
    rmat(&RmatConfig::graph500(9, edges, 29))
}

fn scenarios() -> Vec<(&'static str, Vec<PermanentFault>)> {
    vec![
        ("gpu-fail", vec![PermanentFault::GpuFailure { gpu: 2, at_ns: 2_000 }]),
        ("link-down", vec![PermanentFault::LinkDown { src: 0, dst: 1, at_ns: 500 }]),
        (
            "gpu+link",
            vec![
                PermanentFault::GpuFailure { gpu: 3, at_ns: 2_000 },
                PermanentFault::LinkDown { src: 0, dst: 1, at_ns: 500 },
            ],
        ),
    ]
}

fn schedule(gpus: usize, faults: &[PermanentFault]) -> FaultSchedule {
    faults.iter().fold(FaultSchedule::quiet(gpus), |s, f| s.with_permanent(*f))
}

fn row_for(
    g: &CsrGraph,
    spec: &ClusterSpec,
    scenario: &'static str,
    faults: &[PermanentFault],
    want: &Matrix,
    x: &Matrix,
    fault_free_ns: u64,
) -> FailoverRow {
    let mut e =
        MggEngine::new(g, spec.clone(), MggConfig::default_fixed(), AggregateMode::Sum);
    e.install_fault_schedule(schedule(spec.num_gpus, faults));

    // Detection horizon from a probe engine so the measured run still
    // exercises the in-simulation recovery path.
    let mut probe =
        MggEngine::new(g, spec.clone(), MggConfig::default_fixed(), AggregateMode::Sum);
    probe.install_fault_schedule(schedule(spec.num_gpus, faults));
    let detection_ns = probe.recover(DIM).expect("survivors exist").detection_ns;

    let first = e.simulate_aggregation(DIM).expect("recoverable scenario");
    let first_ns = first.makespan_ns() + spec.kernel_launch_ns;
    let steady = e.simulate_aggregation(DIM).expect("recovered engine is healthy");
    let steady_ns = steady.makespan_ns() + spec.kernel_launch_ns;
    let bit_exact = e.aggregate_values(x).data() == want.data();

    let r = &first.recovery;
    FailoverRow {
        scenario,
        fault_free_ms: fault_free_ns as f64 / 1e6,
        first_epoch_ms: first_ns as f64 / 1e6,
        steady_state_ms: steady_ns as f64 / 1e6,
        post_recovery_overhead_pct: 100.0 * (steady_ns as f64 / fault_free_ns.max(1) as f64 - 1.0),
        detection_ms: detection_ns as f64 / 1e6,
        recovery_latency_ms: r.recovery_latency_ns as f64 / 1e6,
        evacuations: r.evacuations,
        rerouted_transfers: r.rerouted_transfers,
        host_staged_transfers: r.host_staged_transfers,
        dead_peer_gets: r.dead_peer_gets,
        checkpoint_restores: r.checkpoint_restores,
        bit_exact,
    }
}

/// The checkpoint/resume arc: a fresh engine restarts from an epoch
/// checkpoint (paying the host-link restore cost) and then rides out a GPU
/// loss on top of it.
fn checkpoint_row(
    g: &CsrGraph,
    spec: &ClusterSpec,
    want: &Matrix,
    x: &Matrix,
    fault_free_ns: u64,
) -> FailoverRow {
    let healthy =
        MggEngine::new(g, spec.clone(), MggConfig::default_fixed(), AggregateMode::Sum);
    let ckpt = healthy.checkpoint(1, want);

    let faults = [PermanentFault::GpuFailure { gpu: 2, at_ns: 2_000 }];
    let mut e =
        MggEngine::new(g, spec.clone(), MggConfig::default_fixed(), AggregateMode::Sum);
    e.install_fault_schedule(schedule(spec.num_gpus, &faults));
    let restored = e.resume(&ckpt).expect("checkpoint validates");
    let restored_exact = restored.data() == want.data();

    let mut probe =
        MggEngine::new(g, spec.clone(), MggConfig::default_fixed(), AggregateMode::Sum);
    probe.install_fault_schedule(schedule(spec.num_gpus, &faults));
    let detection_ns = probe.recover(DIM).expect("survivors exist").detection_ns;

    let first = e.simulate_aggregation(DIM).expect("recoverable scenario");
    let first_ns = first.makespan_ns() + spec.kernel_launch_ns;
    let steady = e.simulate_aggregation(DIM).expect("recovered engine is healthy");
    let steady_ns = steady.makespan_ns() + spec.kernel_launch_ns;
    let bit_exact = restored_exact && e.aggregate_values(x).data() == want.data();

    let r = &first.recovery;
    FailoverRow {
        scenario: "ckpt-resume+gpu-fail",
        fault_free_ms: fault_free_ns as f64 / 1e6,
        first_epoch_ms: first_ns as f64 / 1e6,
        steady_state_ms: steady_ns as f64 / 1e6,
        post_recovery_overhead_pct: 100.0 * (steady_ns as f64 / fault_free_ns.max(1) as f64 - 1.0),
        detection_ms: detection_ns as f64 / 1e6,
        recovery_latency_ms: r.recovery_latency_ns as f64 / 1e6,
        evacuations: r.evacuations,
        rerouted_transfers: r.rerouted_transfers,
        host_staged_transfers: r.host_staged_transfers,
        dead_peer_gets: r.dead_peer_gets,
        checkpoint_restores: r.checkpoint_restores,
        bit_exact,
    }
}

/// Runs the failover study on the pinned 4-GPU R-MAT graph.
pub fn run(scale: f64) -> FailoverReport {
    let g = graph(scale);
    let spec = ClusterSpec::dgx_a100(GPUS);
    let x = Matrix::glorot(g.num_nodes(), DIM, FEATURE_SEED);

    let mut reference =
        MggEngine::new(&g, spec.clone(), MggConfig::default_fixed(), AggregateMode::Sum);
    let fault_free_ns =
        reference.simulate_aggregation_ns(DIM).expect("valid launch") + spec.kernel_launch_ns;
    let want = reference.aggregate_values(&x);

    let mut rows: Vec<FailoverRow> = scenarios()
        .into_iter()
        .map(|(name, faults)| row_for(&g, &spec, name, &faults, &want, &x, fault_free_ns))
        .collect();
    rows.push(checkpoint_row(&g, &spec, &want, &x, fault_free_ns));

    FailoverReport {
        gpus: GPUS,
        dim: DIM,
        nodes: g.num_nodes(),
        edges: g.num_edges(),
        rows,
    }
}

impl ExperimentReport for FailoverReport {
    fn id(&self) -> &'static str {
        "ext_failover"
    }

    fn print(&self) {
        println!(
            "Extension: elastic failover under permanent faults (R-MAT {} nodes / {} edges on {} GPUs, dim {})",
            self.nodes, self.edges, self.gpus, self.dim
        );
        println!(
            "{:<22} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8} {:>5} {:>7} {:>7} {:>6} {:>5} {:>6}",
            "scenario",
            "free ms",
            "first ms",
            "steady",
            "ovhd %",
            "detect",
            "rec. ms",
            "evac",
            "reroute",
            "staged",
            "dead",
            "ckpt",
            "exact"
        );
        for r in &self.rows {
            println!(
                "{:<22} {:>9.3} {:>9.3} {:>9.3} {:>7.1}% {:>8.3} {:>8.3} {:>5} {:>7} {:>7} {:>6} {:>5} {:>6}",
                r.scenario,
                r.fault_free_ms,
                r.first_epoch_ms,
                r.steady_state_ms,
                r.post_recovery_overhead_pct,
                r.detection_ms,
                r.recovery_latency_ms,
                r.evacuations,
                r.rerouted_transfers,
                r.host_staged_transfers,
                r.dead_peer_gets,
                r.checkpoint_restores,
                if r.bit_exact { "yes" } else { "NO" }
            );
        }
        println!(
            "recovery keeps functional outputs bit-exact; steady-state overhead is the price of running one GPU short"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_deterministic_and_recovers_bit_exact() {
        let a = run(0.2);
        let b = run(0.2);
        assert_eq!(a.rows.len(), 4);
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.first_epoch_ms, rb.first_epoch_ms, "{}", ra.scenario);
            assert_eq!(ra.recovery_latency_ms, rb.recovery_latency_ms, "{}", ra.scenario);
            assert!(ra.bit_exact, "{} lost bit-exactness", ra.scenario);
        }

        let gpu_fail = &a.rows[0];
        assert_eq!(gpu_fail.evacuations, 1);
        assert!(gpu_fail.recovery_latency_ms > 0.0);
        assert!(gpu_fail.dead_peer_gets > 0, "detection pass must hit the dead peer");

        let link_down = &a.rows[1];
        assert_eq!(link_down.evacuations, 0);
        assert!(link_down.rerouted_transfers > 0, "dead link must be relayed around");

        let ckpt = a.rows.iter().find(|r| r.scenario == "ckpt-resume+gpu-fail").unwrap();
        assert_eq!(ckpt.checkpoint_restores, 1);
        assert!(
            ckpt.recovery_latency_ms > gpu_fail.recovery_latency_ms,
            "restore cost must be charged on top of the evacuation"
        );
    }
}
