//! Figure 3: UVM page-fault analysis across GPU counts.
//!
//! Paper result: on DGX-A100, growing the GPU count from 2 to 8 grows
//! both the total page-fault count and the total fault-handling duration
//! of the basic UVM GNN kernel, hindering scaling.

use mgg_baselines::UvmGnnEngine;
use mgg_gnn::reference::AggregateMode;
use mgg_graph::datasets::DatasetSpec;
use mgg_sim::ClusterSpec;
use serde::Serialize;

use crate::report::ExperimentReport;

/// Serialized `fig3 row` record of this experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3Row {
    /// Number of GPUs.
    pub gpus: usize,
    /// Faults.
    pub faults: u64,
    /// Fault duration, in simulated ms.
    pub fault_duration_ms: f64,
    /// Normalized to the 2-GPU row, as the paper plots.
    pub faults_norm: f64,
    /// Duration norm.
    pub duration_norm: f64,
}

/// Serialized `fig3 report` record of this experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3Report {
    /// Dataset name.
    pub dataset: &'static str,
    /// Per-cell sweep rows.
    pub rows: Vec<Fig3Row>,
}

/// Profiles the UVM kernel on the Reddit stand-in at 2/4/8 GPUs.
pub fn run(scale: f64) -> Fig3Report {
    let spec = DatasetSpec::rdd();
    let d = spec.build(scale);
    // GPU-count cells are independent simulations; parallel jobs with
    // input-order merge keep the report identical to the serial sweep.
    let gpu_counts = [2usize, 4, 8];
    let _lbl = mgg_runtime::profile::region_label("bench.fig3");
    let mut rows: Vec<Fig3Row> = mgg_runtime::par_map(&gpu_counts, |&gpus| {
        let mut engine =
            UvmGnnEngine::new(&d.graph, ClusterSpec::dgx_a100(gpus), AggregateMode::Sum);
        engine.simulate_aggregation(spec.dim);
        let stats = engine.last_uvm_stats.as_ref().expect("stats recorded");
        Fig3Row {
            gpus,
            faults: stats.total_faults(),
            fault_duration_ms: stats.total_fault_duration_ns() as f64 / 1e6,
            faults_norm: 0.0,
            duration_norm: 0.0,
        }
    });
    let base_faults = rows[0].faults.max(1) as f64;
    let base_dur = rows[0].fault_duration_ms.max(1e-9);
    for r in &mut rows {
        r.faults_norm = r.faults as f64 / base_faults;
        r.duration_norm = r.fault_duration_ms / base_dur;
    }
    Fig3Report { dataset: spec.name, rows }
}

impl ExperimentReport for Fig3Report {
    fn id(&self) -> &'static str {
        "fig3"
    }

    fn print(&self) {
        println!("Figure 3: UVM page-fault analysis ({} stand-in)", self.dataset);
        println!(
            "{:>5} {:>10} {:>14} {:>12} {:>14}",
            "GPUs", "faults", "duration (ms)", "faults(norm)", "duration(norm)"
        );
        for r in &self.rows {
            println!(
                "{:>5} {:>10} {:>14.3} {:>11.2}x {:>13.2}x",
                r.gpus, r.faults, r.fault_duration_ms, r.faults_norm, r.duration_norm
            );
        }
        println!("(paper: more GPUs -> more page-fault events and handling cycles)");
    }
}
