//! Figure 9: optimization ablations.
//!
//! (a) Neighbor partitioning: disabling it (whole neighborhoods per warp)
//!     costs 3.47× on average across datasets (4 GPUs, interleaving on,
//!     wpb fixed at 2).
//! (b) Workload interleaving: mapping local and remote partitions to
//!     disjoint warp ranges instead of mixing them costs 1.32× on average
//!     (ps fixed at 16, wpb at 2).

use mgg_core::mapping::MappingMode;
use mgg_core::{MggConfig, MggEngine};
use mgg_gnn::reference::AggregateMode;
use mgg_sim::ClusterSpec;
use serde::Serialize;

use crate::experiments::common::datasets;
use crate::report::{geomean, ExperimentReport};

/// Serialized `ablation row` record of this experiment.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Baseline, in simulated ms.
    pub baseline_ms: f64,
    /// Mgg, in simulated ms.
    pub mgg_ms: f64,
    /// Slowdown of the ablated design relative to MGG.
    pub slowdown: f64,
}

/// Serialized `fig9 report` record of this experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9Report {
    /// Which.
    pub which: &'static str,
    /// Number of GPUs.
    pub gpus: usize,
    /// Per-cell sweep rows.
    pub rows: Vec<AblationRow>,
    /// Geomean slowdown.
    pub geomean_slowdown: f64,
}

/// Figure 9(a): with vs without neighbor partitioning.
pub fn run_9a(scale: f64, gpus: usize) -> Fig9Report {
    let cfg_with = MggConfig { ps: 16, dist: 1, wpb: 2 };
    let cfg_without = MggConfig { ps: 0, dist: 1, wpb: 2 };
    run_ablation("fig9a", scale, gpus, move |graph, spec, dim| {
        let mut with = MggEngine::new(graph, spec.clone(), cfg_with, AggregateMode::Sum);
        let t_with = with.simulate_aggregation_ns(dim).expect("valid launch");
        let mut without = MggEngine::new(graph, spec, cfg_without, AggregateMode::Sum);
        let t_without = without.simulate_aggregation_ns(dim).expect("valid launch");
        (t_without, t_with)
    })
}

/// Figure 9(b): interleaved vs separated warp mapping.
pub fn run_9b(scale: f64, gpus: usize) -> Fig9Report {
    let cfg = MggConfig { ps: 16, dist: 1, wpb: 2 };
    run_ablation("fig9b", scale, gpus, move |graph, spec, dim| {
        let mut inter = MggEngine::new(graph, spec.clone(), cfg, AggregateMode::Sum);
        inter.mapping = MappingMode::Interleaved;
        let t_inter = inter.simulate_aggregation_ns(dim).expect("valid launch");
        let mut sep = MggEngine::new(graph, spec, cfg, AggregateMode::Sum);
        sep.mapping = MappingMode::Separated;
        let t_sep = sep.simulate_aggregation_ns(dim).expect("valid launch");
        (t_sep, t_inter)
    })
}

fn run_ablation(
    which: &'static str,
    scale: f64,
    gpus: usize,
    eval: impl Fn(&mgg_graph::CsrGraph, ClusterSpec, usize) -> (u64, u64),
) -> Fig9Report {
    // The ablations measure the GCN kernel, which aggregates at the
    // hidden width (16) — the regime where kernel structure, not wire
    // bytes, decides performance.
    let agg_dim = 16usize;
    let rows: Vec<AblationRow> = datasets(scale)
        .into_iter()
        .map(|d| {
            let (baseline_ns, mgg_ns) =
                eval(&d.graph, ClusterSpec::dgx_a100(gpus), agg_dim.min(d.spec.dim));
            AblationRow {
                dataset: d.spec.name,
                baseline_ms: baseline_ns as f64 / 1e6,
                mgg_ms: mgg_ns as f64 / 1e6,
                slowdown: baseline_ns as f64 / mgg_ns.max(1) as f64,
            }
        })
        .collect();
    let geomean_slowdown = geomean(&rows.iter().map(|r| r.slowdown).collect::<Vec<_>>());
    Fig9Report { which, gpus, rows, geomean_slowdown }
}

impl ExperimentReport for Fig9Report {
    fn id(&self) -> &'static str {
        if self.which == "fig9a" {
            "fig9a"
        } else {
            "fig9b"
        }
    }

    fn print(&self) {
        let (title, paper) = if self.which == "fig9a" {
            ("Figure 9(a): neighbor partitioning ablation", "3.47x")
        } else {
            ("Figure 9(b): workload interleaving ablation", "1.32x")
        };
        println!("{title} ({} GPUs)", self.gpus);
        println!(
            "{:<8} {:>13} {:>10} {:>10}",
            "dataset", "ablated (ms)", "MGG (ms)", "slowdown"
        );
        for r in &self.rows {
            println!(
                "{:<8} {:>13.3} {:>10.3} {:>9.2}x",
                r.dataset, r.baseline_ms, r.mgg_ms, r.slowdown
            );
        }
        println!(
            "geomean slowdown without the optimization: {:.2}x (paper: {paper})",
            self.geomean_slowdown
        );
    }
}
