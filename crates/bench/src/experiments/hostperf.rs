//! `ext_hostperf`: host-side performance of the simulator and the
//! deterministic worker pool — the artifact behind the runtime overhaul.
//!
//! Two measurements:
//!
//! 1. **Sweep scaling.** Wall-clock of a dataset × dimension × GPU-count
//!    simulation sweep at 1/2/4/8 threads, each run producing an FNV-1a
//!    digest of every simulated latency. The pool merges job results in
//!    input order, so the digest must be identical at every thread count;
//!    `digests_match` makes that checkable in CI without wall-clock gating.
//! 2. **Event-loop throughput.** Events/sec through the calendar queue
//!    (deterministic push/pop stream), the simulator's single hottest path.
//!
//! Wall-clock numbers are hardware-dependent and reported for trend
//! tracking only; correctness signals (digests) are the stable part.

use mgg_core::{MggConfig, MggEngine};
use mgg_gnn::reference::AggregateMode;
use mgg_graph::datasets::Dataset;
use mgg_sim::{ClusterSpec, EventQueue};
use serde::Serialize;

use crate::experiments::common::datasets;
use crate::report::ExperimentReport;

#[derive(Debug, Clone, Serialize)]
pub struct HostPerfRow {
    pub threads: usize,
    pub wall_ns: u64,
    /// Wall-clock speedup over the 1-thread row (>= 1 when scaling works).
    pub speedup: f64,
    /// FNV-1a digest over every simulated latency, in sweep-cell order.
    pub digest: String,
}

#[derive(Debug, Clone, Serialize)]
pub struct HostPerfReport {
    pub sweep_cells: usize,
    pub rows: Vec<HostPerfRow>,
    /// True iff every thread count produced bit-identical sweep results.
    pub digests_match: bool,
    /// Calendar-queue throughput on the synthetic event stream.
    pub event_loop_events_per_sec: f64,
    pub event_loop_events: u64,
}

/// One sweep cell: dataset index × aggregation dim × GPU count.
type Cell = (usize, usize, usize);

fn fnv1a(values: &[u64]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

/// Runs the sweep once at `threads` workers, returning (wall_ns, latencies).
/// Dataset construction happens outside so the wall-clock covers only the
/// parallelizable simulation work.
fn run_sweep(ds: &[Dataset], threads: usize, cells: &[Cell]) -> (u64, Vec<u64>) {
    let start = std::time::Instant::now();
    let lats = mgg_runtime::with_threads(threads, || {
        mgg_runtime::par_map(cells, |&(di, dim, gpus)| {
            let d = &ds[di];
            let spec = ClusterSpec::dgx_a100(gpus);
            let mut eng =
                MggEngine::new(&d.graph, spec, MggConfig::default_fixed(), AggregateMode::Sum);
            eng.simulate_aggregation_ns(dim).expect("valid launch")
        })
    });
    (start.elapsed().as_nanos() as u64, lats)
}

/// Deterministic push/pop stream through the calendar queue, measuring raw
/// event-loop throughput. Mirrors the simulator's access pattern: bursts of
/// near-future events with occasional far-future stragglers.
fn event_loop_throughput() -> (u64, f64) {
    const N: u64 = 2_000_000;
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut next_rand = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut processed: u64 = 0;
    let mut sink: u64 = 0;
    let start = std::time::Instant::now();
    // Seed a burst, then steady-state pop-2-push-1 until drained.
    for i in 0..64 {
        q.push(i, i);
    }
    while let Some((now, v)) = q.pop() {
        sink = sink.wrapping_add(v);
        processed += 1;
        if processed < N {
            let r = next_rand();
            // 1/32 of events are far-future stragglers (bucket-lap path).
            let delta = if r % 32 == 0 { 50_000 + r % 100_000 } else { 1 + r % 700 };
            q.push(now + delta, r);
        }
    }
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    (processed, processed as f64 / secs.max(1e-9))
}

/// Runs the host-performance benchmark.
pub fn run(scale: f64) -> HostPerfReport {
    let ds = datasets(scale);
    let mut cells: Vec<Cell> = Vec::new();
    for di in 0..ds.len() {
        for dim in [16usize, 64] {
            for gpus in [4usize, 8] {
                cells.push((di, dim, gpus));
            }
        }
    }

    let mut rows: Vec<HostPerfRow> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let (wall_ns, lats) = run_sweep(&ds, threads, &cells);
        rows.push(HostPerfRow {
            threads,
            wall_ns,
            speedup: 0.0, // filled in below once the 1-thread row exists
            digest: fnv1a(&lats),
        });
    }
    let base = rows[0].wall_ns.max(1) as f64;
    for r in &mut rows {
        r.speedup = base / r.wall_ns.max(1) as f64;
    }
    let digests_match = rows.iter().all(|r| r.digest == rows[0].digest);

    let (event_loop_events, event_loop_events_per_sec) = event_loop_throughput();

    HostPerfReport {
        sweep_cells: cells.len(),
        rows,
        digests_match,
        event_loop_events_per_sec,
        event_loop_events,
    }
}

impl ExperimentReport for HostPerfReport {
    fn id(&self) -> &'static str {
        "ext_hostperf"
    }

    fn print(&self) {
        println!("Host performance: sweep scaling + event-loop throughput");
        println!("{:<8} {:>12} {:>9}  digest", "threads", "wall (ms)", "speedup");
        for r in &self.rows {
            println!(
                "{:<8} {:>12.1} {:>8.2}x  {}",
                r.threads,
                r.wall_ns as f64 / 1e6,
                r.speedup,
                r.digest
            );
        }
        println!(
            "sweep: {} cells, digests {} across thread counts",
            self.sweep_cells,
            if self.digests_match { "IDENTICAL" } else { "DIVERGED" }
        );
        println!(
            "event loop: {:.1}M events/sec over {} events (calendar queue)",
            self.event_loop_events_per_sec / 1e6,
            self.event_loop_events
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_digest_is_thread_count_invariant() {
        let ds = datasets(0.05);
        let cells: Vec<Cell> = vec![(0, 16, 4), (0, 16, 8), (1, 16, 4), (1, 16, 8)];
        let (_, seq) = run_sweep(&ds, 1, &cells);
        for threads in [2usize, 4, 7] {
            let (_, par) = run_sweep(&ds, threads, &cells);
            assert_eq!(seq, par, "sweep diverged at {threads} threads");
        }
    }

    #[test]
    fn event_loop_processes_full_stream() {
        let (events, eps) = event_loop_throughput();
        // 64 seed events plus one push per pop while under the N budget.
        assert_eq!(events, 2_000_000 + 63);
        assert!(eps > 0.0);
    }
}
