//! `ext_hostperf`: host-side performance of the simulator and the
//! deterministic worker pool — the artifact behind the runtime overhaul.
//!
//! Three measurements:
//!
//! 1. **Sweep scaling.** Wall-clock of a dataset × dimension × GPU-count
//!    simulation sweep at 1/2/4/8 threads (best of `RUNS_PER_THREADS`
//!    timed runs), each run producing an FNV-1a digest of every simulated
//!    latency. Pool jobs are dataset-level super-cells (the dim × gpus
//!    grid runs inside one task, engines reused per GPU count) but the
//!    flattened latency order is the per-cell order, so the digest is
//!    decomposition-independent and must be identical at every thread
//!    count; `digests_match` makes that checkable in CI without
//!    wall-clock gating. The cell list is part of the report so
//!    `perfdiff` comparisons are apples-to-apples.
//! 2. **Overhead attribution.** One additional run per thread count under
//!    `mgg_runtime::profile::collect`, breaking the worker-lane time into
//!    on-CPU task-exec / contended-exec (descheduled mid-job) / spawn /
//!    idle / ordered-merge-wait (plus telemetry fork/merge and
//!    recorder-mutex contention) — the "where did the speedup go" data
//!    for ROADMAP open item 1. The profiled run's digest is reported
//!    separately and must equal the unprofiled one: profiling is
//!    bit-identity-preserving by contract.
//! 3. **Event-loop throughput.** Events/sec through the calendar queue
//!    (deterministic push/pop stream), the simulator's single hottest path.
//!
//! Wall-clock numbers are hardware-dependent and reported for trend
//! tracking only; correctness signals (digests) are the stable part.

use mgg_core::{MggConfig, MggEngine};
use mgg_gnn::reference::AggregateMode;
use mgg_graph::datasets::Dataset;
use mgg_runtime::profile::{OverheadBreakdown, RuntimeProfile};
use mgg_sim::{ClusterSpec, EventQueue};
use serde::Serialize;

use crate::experiments::common::datasets;
use crate::report::ExperimentReport;

/// Timed (unprofiled) runs per thread count; the row reports the best.
pub const RUNS_PER_THREADS: usize = 3;

/// Aggregation dimensions swept per dataset, in latency order.
const DIMS: [usize; 2] = [16, 64];

/// GPU counts swept per dimension, in latency order.
const GPU_COUNTS: [usize; 2] = [4, 8];

/// One sweep cell, named so baselines can be compared cell-for-cell.
#[derive(Debug, Clone, Serialize)]
pub struct SweepCell {
    /// Dataset name.
    pub dataset: String,
    /// Embedding dimension.
    pub dim: usize,
    /// Number of GPUs.
    pub gpus: usize,
}

/// One parallel region’s attribution cell.
#[derive(Debug, Clone, Serialize)]
pub struct HostPerfRow {
    /// Worker-pool width.
    pub threads: usize,
    /// Timed runs taken at this thread count; `wall_ns` is their minimum.
    pub runs: usize,
    /// Wall, in simulated ns.
    pub wall_ns: u64,
    /// Wall-clock speedup over the 1-thread row (>= 1 when scaling works).
    pub speedup: f64,
    /// FNV-1a digest over every simulated latency, in sweep-cell order.
    pub digest: String,
    /// Digest of the profiled run — must equal `digest` (profiling is
    /// bit-identity-preserving).
    pub digest_profiled: String,
    /// Worker-lane attribution from the profiled run: where the non-exec
    /// time went, per category.
    pub overhead: OverheadBreakdown,
}

/// The host-runtime attribution report.
#[derive(Debug, Clone, Serialize)]
pub struct HostPerfReport {
    /// Sweep cells.
    pub sweep_cells: usize,
    /// The exact cells swept, in job order.
    pub cells: Vec<SweepCell>,
    /// Runs per thread count.
    pub runs_per_thread_count: usize,
    /// Per-cell sweep rows.
    pub rows: Vec<HostPerfRow>,
    /// True iff every thread count produced bit-identical sweep results,
    /// profiled runs included.
    pub digests_match: bool,
    /// Calendar-queue throughput on the synthetic event stream.
    pub event_loop_events_per_sec: f64,
    /// Event loop events.
    pub event_loop_events: u64,
}

fn fnv1a(values: &[u64]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{h:016x}")
}

/// Runs the sweep once at `threads` workers, returning (wall_ns, latencies).
/// Dataset construction happens outside so the wall-clock covers only the
/// parallelizable simulation work.
///
/// Work units are dataset-level **super-cells**: one pool job per dataset
/// iterates the dim × GPU-count grid inside, reusing one engine per GPU
/// count across dimensions, so the pool dispatches |datasets| coarse tasks
/// instead of 4× as many slivers and each task builds placement/plans once
/// per GPU count instead of once per cell. The flattened latency order
/// (dataset → dim → gpus) is exactly the old per-cell job order, and the
/// simulation is a pure function of (graph, spec, dim) — engine reuse
/// resets the cluster between launches — so digests are unchanged (pinned
/// by `super_cells_match_per_cell_sweep`).
fn run_sweep(ds: &[Dataset], threads: usize) -> (u64, Vec<u64>) {
    let start = std::time::Instant::now();
    let per_ds = mgg_runtime::with_threads(threads, || {
        let _lbl = mgg_runtime::profile::region_label("bench.hostperf");
        mgg_runtime::par_map_indexed(ds.len(), |di| {
            let d = &ds[di];
            let mut engines: Vec<MggEngine> = GPU_COUNTS
                .iter()
                .map(|&gpus| {
                    MggEngine::new(
                        &d.graph,
                        ClusterSpec::dgx_a100(gpus),
                        MggConfig::default_fixed(),
                        AggregateMode::Sum,
                    )
                })
                .collect();
            let mut lats = Vec::with_capacity(DIMS.len() * GPU_COUNTS.len());
            for dim in DIMS {
                for eng in engines.iter_mut() {
                    lats.push(eng.simulate_aggregation_ns(dim).expect("valid launch"));
                }
            }
            lats
        })
    });
    (start.elapsed().as_nanos() as u64, per_ds.into_iter().flatten().collect())
}

/// [`run_sweep`] under the attribution profiler: same jobs, same digest,
/// plus the per-worker lifecycle profile.
fn run_sweep_profiled(ds: &[Dataset], threads: usize) -> (u64, Vec<u64>, RuntimeProfile) {
    let ((wall_ns, lats), profile) = mgg_runtime::profile::collect(|| run_sweep(ds, threads));
    (wall_ns, lats, profile)
}

/// Deterministic push/pop stream through the calendar queue, measuring raw
/// event-loop throughput. Mirrors the simulator's access pattern: bursts of
/// near-future events with occasional far-future stragglers.
fn event_loop_throughput() -> (u64, f64) {
    const N: u64 = 2_000_000;
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut next_rand = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut processed: u64 = 0;
    let mut sink: u64 = 0;
    let start = std::time::Instant::now();
    // Seed a burst, then steady-state pop-2-push-1 until drained.
    for i in 0..64 {
        q.push(i, i);
    }
    while let Some((now, v)) = q.pop() {
        sink = sink.wrapping_add(v);
        processed += 1;
        if processed < N {
            let r = next_rand();
            // 1/32 of events are far-future stragglers (bucket-lap path).
            let delta = if r % 32 == 0 { 50_000 + r % 100_000 } else { 1 + r % 700 };
            q.push(now + delta, r);
        }
    }
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    (processed, processed as f64 / secs.max(1e-9))
}

/// Runs the host-performance benchmark.
pub fn run(scale: f64) -> HostPerfReport {
    let ds = datasets(scale);
    let mut cell_names: Vec<SweepCell> = Vec::new();
    for d in ds.iter() {
        for dim in DIMS {
            for gpus in GPU_COUNTS {
                cell_names.push(SweepCell { dataset: d.spec.name.to_string(), dim, gpus });
            }
        }
    }

    let mut rows: Vec<HostPerfRow> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let mut wall_ns = u64::MAX;
        let mut digest = String::new();
        for run in 0..RUNS_PER_THREADS {
            let (w, lats) = run_sweep(&ds, threads);
            wall_ns = wall_ns.min(w);
            if run == 0 {
                digest = fnv1a(&lats);
            }
        }
        let (_, profiled_lats, profile) = run_sweep_profiled(&ds, threads);
        rows.push(HostPerfRow {
            threads,
            runs: RUNS_PER_THREADS,
            wall_ns,
            speedup: 0.0, // filled in below once the 1-thread row exists
            digest,
            digest_profiled: fnv1a(&profiled_lats),
            overhead: profile.breakdown(),
        });
    }
    let base = rows[0].wall_ns.max(1) as f64;
    for r in &mut rows {
        r.speedup = base / r.wall_ns.max(1) as f64;
    }
    let digests_match = rows
        .iter()
        .all(|r| r.digest == rows[0].digest && r.digest_profiled == rows[0].digest);

    let (event_loop_events, event_loop_events_per_sec) = event_loop_throughput();

    HostPerfReport {
        sweep_cells: cell_names.len(),
        cells: cell_names,
        runs_per_thread_count: RUNS_PER_THREADS,
        rows,
        digests_match,
        event_loop_events_per_sec,
        event_loop_events,
    }
}

impl ExperimentReport for HostPerfReport {
    fn id(&self) -> &'static str {
        "ext_hostperf"
    }

    fn print(&self) {
        println!("Host performance: sweep scaling + overhead attribution");
        println!(
            "{:<8} {:>12} {:>9}  {:>6} {:>6} {:>6} {:>6} {:>6}  digest",
            "threads", "wall (ms)", "speedup", "exec%", "cont%", "spawn%", "idle%", "merge%"
        );
        for r in &self.rows {
            let lane = r.overhead.exec_ns + r.overhead.overhead_ns();
            let pct = |ns: u64| {
                if lane == 0 {
                    0.0
                } else {
                    100.0 * ns as f64 / lane as f64
                }
            };
            println!(
                "{:<8} {:>12.1} {:>8.2}x  {:>5.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1}  {}",
                r.threads,
                r.wall_ns as f64 / 1e6,
                r.speedup,
                pct(r.overhead.exec_ns),
                pct(r.overhead.contended_exec_ns),
                pct(r.overhead.spawn_ns),
                pct(r.overhead.idle_ns),
                pct(r.overhead.merge_wait_ns),
                r.digest
            );
        }
        println!(
            "sweep: {} cells x {} runs/thread-count, digests {} across thread counts \
             (profiled runs included)",
            self.sweep_cells,
            self.runs_per_thread_count,
            if self.digests_match { "IDENTICAL" } else { "DIVERGED" }
        );
        println!(
            "event loop: {:.1}M events/sec over {} events (calendar queue)",
            self.event_loop_events_per_sec / 1e6,
            self.event_loop_events
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_digest_is_thread_count_invariant() {
        let ds = datasets(0.05);
        let ds = &ds[..2];
        let (_, seq) = run_sweep(ds, 1);
        for threads in [2usize, 4, 7] {
            let (_, par) = run_sweep(ds, threads);
            assert_eq!(seq, par, "sweep diverged at {threads} threads");
        }
    }

    /// Pins the super-cell refactor: one engine per GPU count reused
    /// across dimensions must produce exactly the per-cell (fresh engine
    /// per config) latencies, in the same flattened order.
    #[test]
    fn super_cells_match_per_cell_sweep() {
        let ds = datasets(0.05);
        let ds = &ds[..2];
        let (_, coarse) = run_sweep(ds, 1);
        let mut fine = Vec::new();
        for d in ds {
            for dim in DIMS {
                for gpus in GPU_COUNTS {
                    let mut eng = MggEngine::new(
                        &d.graph,
                        ClusterSpec::dgx_a100(gpus),
                        MggConfig::default_fixed(),
                        AggregateMode::Sum,
                    );
                    fine.push(eng.simulate_aggregation_ns(dim).expect("valid launch"));
                }
            }
        }
        assert_eq!(coarse, fine, "engine reuse must not perturb simulated latencies");
    }

    #[test]
    fn profiled_sweep_is_bit_identical_and_attributed() {
        let ds = datasets(0.05);
        let ds = &ds[..2];
        let (_, plain) = run_sweep(ds, 1);
        for threads in [1usize, 2, 4, 7] {
            let (_, profiled, profile) = run_sweep_profiled(ds, threads);
            assert_eq!(plain, profiled, "profiler changed results at {threads} threads");
            assert!(!profile.regions.is_empty());
            assert_eq!(profile.regions[0].name, "bench.hostperf");
            let b = profile.breakdown();
            assert!(b.exec_ns > 0);
            // The named categories tile the non-exec lane time.
            assert!(b.attributed_fraction >= 0.9, "attributed {}", b.attributed_fraction);
        }
    }

    #[test]
    fn event_loop_processes_full_stream() {
        let (events, eps) = event_loop_throughput();
        // 64 seed events plus one push per pop while under the N budget.
        assert_eq!(events, 2_000_000 + 63);
        assert!(eps > 0.0);
    }
}
