//! Markdown digest of persisted experiment reports.
//!
//! `mgg-bench summary --out DIR` reads the `*.json` reports a previous run
//! wrote and emits a compact markdown table of the headline number per
//! experiment, next to the paper's value — the skeleton of
//! `EXPERIMENTS.md`, regenerated from data.

use std::path::Path;

use serde_json::Value;

/// One summarized experiment.
#[derive(Debug, Clone)]
pub struct SummaryLine {
    /// Id.
    pub id: &'static str,
    /// Paper.
    pub paper: &'static str,
    /// Measured.
    pub measured: String,
}

fn f(v: &Value, path: &[&str]) -> Option<f64> {
    let mut cur = v;
    for p in path {
        cur = cur.get(p)?;
    }
    cur.as_f64()
}

fn rows(v: &Value) -> &[Value] {
    v.get("rows").and_then(|r| r.as_array()).map(|a| a.as_slice()).unwrap_or(&[])
}

fn load(dir: &Path, id: &str) -> Option<Value> {
    let text = std::fs::read_to_string(dir.join(format!("{id}.json"))).ok()?;
    serde_json::from_str(&text).ok()
}

/// Builds the digest from whatever reports exist under `dir`.
pub fn summarize(dir: &Path) -> Vec<SummaryLine> {
    let mut out = Vec::new();
    let mut push = |id: &'static str, paper: &'static str, measured: Option<String>| {
        if let Some(m) = measured {
            out.push(SummaryLine { id, paper, measured: m });
        }
    };

    push(
        "fig2",
        "NCCL comm/comp > 5x",
        load(dir, "fig2").map(|v| {
            let ratios: Vec<String> = rows(&v)
                .iter()
                .filter_map(|r| f(r, &["comm_to_comp"]).map(|x| format!("{x:.1}x")))
                .collect();
            format!("comm/comp {}", ratios.join(", "))
        }),
    );
    push(
        "fig3",
        "faults & duration grow 2->8 GPUs",
        load(dir, "fig3").and_then(|v| {
            let last = rows(&v).last().cloned()?;
            Some(format!(
                "8-GPU faults {:.2}x, duration {:.2}x of 2-GPU",
                f(&last, &["faults_norm"])?,
                f(&last, &["duration_norm"])?
            ))
        }),
    );
    push(
        "tab1",
        "direct NVSHMEM 0.77x of UVM (avg)",
        load(dir, "tab1")
            .and_then(|v| f(&v, &["geomean_speedup"]))
            .map(|x| format!("geomean {x:.2}x")),
    );
    push(
        "fig8",
        "GCN 3.16x, GIN 4.15x over UVM",
        load(dir, "fig8").and_then(|v| {
            Some(format!(
                "GCN {:.2}x, GIN {:.2}x",
                f(&v, &["geomean_gcn"])?,
                f(&v, &["geomean_gin"])?
            ))
        }),
    );
    push(
        "fig9a",
        "no neighbor partitioning: 3.47x slower",
        load(dir, "fig9a")
            .and_then(|v| f(&v, &["geomean_slowdown"]))
            .map(|x| format!("{x:.2}x slower")),
    );
    push(
        "fig9b",
        "no interleaving: 1.32x slower",
        load(dir, "fig9b")
            .and_then(|v| f(&v, &["geomean_slowdown"]))
            .map(|x| format!("{x:.2}x slower")),
    );
    push(
        "fig10",
        "~10 probes, up to 68% latency cut",
        load(dir, "fig10").and_then(|v| {
            let settings = v.get("settings")?.as_array()?.clone();
            let probes: Vec<String> = settings
                .iter()
                .filter_map(|s| s.get("tuner_iterations")?.as_u64().map(|x| x.to_string()))
                .collect();
            let best_cut = settings
                .iter()
                .filter_map(|s| f(s, &["improvement_pct"]))
                .fold(0.0f64, f64::max);
            Some(format!("{} probes, up to {best_cut:.0}% cut", probes.join("/")))
        }),
    );
    push(
        "occupancy",
        "+39.2 occupancy / +21.2 SM-util points",
        load(dir, "occupancy").and_then(|v| {
            Some(format!(
                "+{:.1} occupancy / +{:.1} SM-util points",
                100.0 * f(&v, &["avg_occupancy_gain"])?,
                100.0 * f(&v, &["avg_sm_util_gain"])?
            ))
        }),
    );
    push(
        "tab4",
        ">100x preprocessing, 7.38x GCN over DGCL",
        load(dir, "tab4").and_then(|v| {
            Some(format!(
                "{:.0}x preprocessing, {:.2}x GCN",
                f(&v, &["geomean_prep_speedup"])?,
                f(&v, &["geomean_gcn_speedup"])?
            ))
        }),
    );
    push(
        "tab5",
        "+2.0/+4.9 accuracy points w/o sampling",
        load(dir, "tab5").map(|v| {
            let gains: Vec<String> = rows(&v)
                .iter()
                .filter_map(|r| {
                    let full = f(r, &["acc_full"])?;
                    let sampled = f(r, &["acc_sampled"])?;
                    Some(format!("{:+.1}", 100.0 * (full - sampled)))
                })
                .collect();
            format!("{} accuracy points", gains.join("/"))
        }),
    );
    push(
        "ext_fabric",
        "MGG's win rides the fast fabric (§2.4)",
        load(dir, "ext_fabric").map(|v| {
            let pairs: Vec<String> = rows(&v)
                .iter()
                .filter_map(|r| {
                    let name = r.get("fabric")?.as_str()?;
                    let sp = f(r, &["speedup"])?;
                    Some(format!("{}: {sp:.2}x", name.split(' ').next().unwrap_or(name)))
                })
                .collect();
            pairs.join(", ")
        }),
    );
    push(
        "ext_fault",
        "recovery absorbs faults with bounded overhead",
        load(dir, "ext_fault").and_then(|v| {
            let combined = rows(&v).iter().find(|r| {
                r.get("class").and_then(|c| c.as_str()) == Some("combined")
            })?;
            Some(format!(
                "combined: {:.1}% overhead, {} retries, {} timeouts, {} replans, {:.3} ms recovery",
                f(combined, &["overhead_pct"])?,
                f(combined, &["retried_gets"])? as u64,
                f(combined, &["timed_out_completions"])? as u64,
                f(combined, &["replans"])? as u64,
                f(combined, &["recovery_latency_ms"])?
            ))
        }),
    );
    push(
        "ext_failover",
        "permanent faults: detect, recover, resume bit-exact",
        load(dir, "ext_failover").and_then(|v| {
            let gpu_fail = rows(&v).iter().find(|r| {
                r.get("scenario").and_then(|c| c.as_str()) == Some("gpu-fail")
            })?;
            let exact = rows(&v)
                .iter()
                .all(|r| r.get("bit_exact").and_then(|b| b.as_bool()).unwrap_or(false));
            Some(format!(
                "gpu-fail: detect {:.3} ms, recover {:.3} ms, {:+.1}% steady-state, {}",
                f(gpu_fail, &["detection_ms"])?,
                f(gpu_fail, &["recovery_latency_ms"])?,
                f(gpu_fail, &["post_recovery_overhead_pct"])?,
                if exact { "all scenarios bit-exact" } else { "BIT-EXACTNESS LOST" }
            ))
        }),
    );
    push(
        "ext_putget",
        "GET beats the PUT design (§3.3)",
        load(dir, "ext_putget")
            .and_then(|v| f(&v, &["geomean_advantage"]))
            .map(|x| format!("GET {x:.2}x faster")),
    );
    push(
        "ext_train",
        "training epochs: MGG ~2x faster, same accuracy (§5.3)",
        load(dir, "ext_train").map(|v| {
            let parts: Vec<String> = rows(&v)
                .iter()
                .filter_map(|r| {
                    Some(format!(
                        "{} {:.3} ms",
                        r.get("engine")?.as_str()?,
                        f(r, &["epoch_ms"])?
                    ))
                })
                .collect();
            parts.join(", ")
        }),
    );
    out
}

/// Renders the digest as a markdown table.
pub fn to_markdown(lines: &[SummaryLine]) -> String {
    let mut s = String::from("| experiment | paper | measured |\n|---|---|---|\n");
    for l in lines {
        s.push_str(&format!("| {} | {} | {} |\n", l.id, l.paper, l.measured));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_tolerates_missing_dir() {
        let lines = summarize(Path::new("/nonexistent/definitely/missing"));
        assert!(lines.is_empty());
    }

    #[test]
    fn markdown_renders_rows() {
        let lines = vec![SummaryLine { id: "fig8", paper: "3.16x", measured: "3.06x".into() }];
        let md = to_markdown(&lines);
        assert!(md.contains("| fig8 | 3.16x | 3.06x |"));
    }

    #[test]
    fn summarize_surfaces_recovery_counters() {
        let dir = std::env::temp_dir().join(format!("mgg-summary-fault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("ext_fault.json"),
            r#"{"gpus":4,"seed":42,"dataset":"rdd","rows":[
                {"class":"none","overhead_pct":0.0,"retried_gets":0,
                 "timed_out_completions":0,"replans":0,"recovery_latency_ms":0.0},
                {"class":"combined","overhead_pct":37.5,"retried_gets":120,
                 "timed_out_completions":4,"replans":1,"recovery_latency_ms":0.25}
            ]}"#,
        )
        .unwrap();
        let lines = summarize(&dir);
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].id, "ext_fault");
        assert!(lines[0].measured.contains("120 retries"), "{}", lines[0].measured);
        assert!(lines[0].measured.contains("1 replans"), "{}", lines[0].measured);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn summarize_surfaces_failover_latency() {
        let dir =
            std::env::temp_dir().join(format!("mgg-summary-failover-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("ext_failover.json"),
            r#"{"gpus":4,"dim":64,"rows":[
                {"scenario":"gpu-fail","detection_ms":0.004,"recovery_latency_ms":0.467,
                 "post_recovery_overhead_pct":12.5,"bit_exact":true},
                {"scenario":"link-down","detection_ms":0.0,"recovery_latency_ms":0.0,
                 "post_recovery_overhead_pct":3.0,"bit_exact":true}
            ]}"#,
        )
        .unwrap();
        let lines = summarize(&dir);
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].id, "ext_failover");
        assert!(lines[0].measured.contains("detect 0.004 ms"), "{}", lines[0].measured);
        assert!(lines[0].measured.contains("all scenarios bit-exact"), "{}", lines[0].measured);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn summarize_reads_a_real_report() {
        let dir = std::env::temp_dir().join(format!("mgg-summary-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("tab1.json"),
            r#"{"gpus":8,"rows":[],"geomean_speedup":0.45}"#,
        )
        .unwrap();
        let lines = summarize(&dir);
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].id, "tab1");
        assert!(lines[0].measured.contains("0.45x"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
