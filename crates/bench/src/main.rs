//! `mgg-bench`: regenerates the paper's tables and figures.
//!
//! ```text
//! mgg-bench <experiment>... [--scale S] [--out DIR]
//! mgg-bench all [--scale S] [--out DIR]
//! ```
//!
//! Experiments: fig2 fig3 fig7 fig8 fig9a fig9b fig10 occupancy tab1 tab2
//! tab4 tab5 (plus `ext_*` extensions). Reports print to stdout and persist
//! as JSON under `--out` (default `bench-results/`). `--threads N` sizes the
//! deterministic worker pool (default: all cores; 1 = fully sequential —
//! results are bit-identical either way).

use std::path::PathBuf;

use mgg_bench::experiments::{
    cache, churn, ext, failover, fault, fig10, fig2, fig3, fig7, fig8, fig9, hostperf, occupancy, serve,
    tab1, tab2, tab3, tab4, tab5,
};
use mgg_bench::report::{write_json, ExperimentReport};
use mgg_bench::DEFAULT_SCALE;

const ALL: &[&str] = &[
    "fig2", "fig3", "tab1", "tab2", "fig7", "fig8", "fig9a", "fig9b", "fig10", "occupancy",
    "tab3", "tab4", "tab5", "ext_reorder", "ext_replicated", "ext_fabric", "ext_train", "ext_cpu", "ext_putget", "ext_dims", "ext_scaling", "ext_fault", "ext_failover", "ext_hostperf", "ext_cache", "ext_serve", "ext_churn", "microcal",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = DEFAULT_SCALE;
    let mut out = PathBuf::from("bench-results");
    let mut selected: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_else(|| usage("missing value for --scale"));
                scale = v.parse().unwrap_or_else(|_| usage("--scale expects a number"));
                if scale <= 0.0 {
                    usage("--scale must be positive");
                }
            }
            "--out" => {
                out = PathBuf::from(it.next().unwrap_or_else(|| usage("missing value for --out")));
            }
            "--threads" => {
                let v = it.next().unwrap_or_else(|| usage("missing value for --threads"));
                let n: usize =
                    v.parse().unwrap_or_else(|_| usage("--threads expects a positive integer"));
                if n == 0 {
                    usage("--threads must be >= 1 (1 = sequential)");
                }
                mgg_runtime::set_threads(n);
            }
            "--event-queue" => {
                let v = it.next().unwrap_or_else(|| usage("missing value for --event-queue"));
                let strategy = match v.as_str() {
                    "calendar" => mgg_sim::EventQueueStrategy::Calendar,
                    "sharded" => mgg_sim::EventQueueStrategy::ShardedByGpu,
                    _ => usage("--event-queue expects 'calendar' or 'sharded'"),
                };
                mgg_sim::set_event_queue_strategy(Some(strategy));
            }
            "all" => selected.extend(ALL.iter().map(|s| s.to_string())),
            "summary" => selected.push("summary".to_string()),
            "--help" | "-h" => usage(""),
            other if ALL.contains(&other) => selected.push(other.to_string()),
            other => usage(&format!("unknown experiment '{other}'")),
        }
    }
    if selected.is_empty() {
        usage("no experiment selected");
    }
    selected.dedup();

    for exp in &selected {
        let start = std::time::Instant::now();
        println!("\n=== {exp} (scale {scale}) ===");
        run_one(exp, scale, &out);
        println!("[{exp} done in {:.1}s]", start.elapsed().as_secs_f64());
    }
}

fn run_one(exp: &str, scale: f64, out: &std::path::Path) {
    match exp {
        "summary" => {
            let lines = mgg_bench::summary::summarize(out);
            if lines.is_empty() {
                eprintln!("no reports under {} — run experiments first", out.display());
            } else {
                print!("{}", mgg_bench::summary::to_markdown(&lines));
            }
        }
        "fig2" => emit(fig2::run(scale, 8), out),
        "fig3" => emit(fig3::run(scale), out),
        "tab1" => emit(tab1::run(scale, 8), out),
        "tab2" => emit(tab2::run(), out),
        "fig7" => emit(fig7::run(scale, 8), out),
        "fig8" => emit(fig8::run(scale), out),
        "fig9a" => emit(fig9::run_9a(scale, 4), out),
        "fig9b" => emit(fig9::run_9b(scale, 4), out),
        "fig10" => emit(fig10::run(scale), out),
        "occupancy" => emit(occupancy::run(scale, 8), out),
        "tab4" => emit(tab4::run(scale, 8), out),
        "tab5" => emit(tab5::run(scale, 8), out),
        "tab3" => emit(tab3::run(scale), out),
        "ext_reorder" => emit(ext::run_reorder(scale, 8), out),
        "ext_replicated" => emit(ext::run_replicated(scale, 8), out),
        "ext_fabric" => emit(ext::run_fabric(scale, 8), out),
        "ext_train" => emit(ext::run_train(scale, 8), out),
        "ext_cpu" => emit(ext::run_cpu(scale, 8), out),
        "ext_putget" => emit(ext::run_putget(scale, 8), out),
        "ext_dims" => emit(ext::run_dims(scale, 8), out),
        "ext_scaling" => emit(ext::run_scaling(scale), out),
        "ext_fault" => emit(fault::run(scale, 8), out),
        "ext_failover" => emit(failover::run(scale), out),
        "ext_hostperf" => emit(hostperf::run(scale), out),
        "ext_cache" => emit(cache::run(scale, 8), out),
        "ext_serve" => emit(serve::run(scale, 8), out),
        "ext_churn" => emit(churn::run(scale, 8), out),
        "microcal" => emit(mgg_bench::experiments::microcal::run(), out),
        other => unreachable!("validated experiment '{other}'"),
    }
}

fn emit<R: ExperimentReport>(report: R, out: &std::path::Path) {
    report.print();
    if let Err(e) = write_json(&report, out) {
        eprintln!("warning: could not write {}/{}.json: {e}", out.display(), report.id());
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}\n");
    }
    eprintln!(
        "usage: mgg-bench <experiment>... [--scale S] [--out DIR] [--threads N] \
         [--event-queue calendar|sharded]"
    );
    eprintln!("       mgg-bench all [--scale S] [--out DIR] [--threads N]");
    eprintln!("       mgg-bench summary [--out DIR]   # markdown digest of saved reports");
    eprintln!(
        "--event-queue picks the simulator's event-queue strategy (bit-identical \
         either way; default: compile-time feature selection)"
    );
    eprintln!("experiments: {}", ALL.join(" "));
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}
