//! Experiment harness for the MGG reproduction.
//!
//! One module per paper artifact (table or figure); each returns a
//! serializable report and can print itself in the paper's layout. The
//! `mgg-bench` binary dispatches to them; see `DESIGN.md` §3 for the
//! experiment index and `EXPERIMENTS.md` for recorded paper-vs-measured
//! results.

#![deny(missing_docs)]

pub mod experiments;
pub mod report;
pub mod summary;

pub use report::{write_json, ExperimentReport};

/// Default dataset scale for benchmark runs (multiplier on the Table-3
/// stand-in node counts; 1.0 keeps runs in seconds per experiment).
pub const DEFAULT_SCALE: f64 = 1.0;
