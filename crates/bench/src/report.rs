//! Report plumbing: printing and JSON persistence.

use std::path::Path;

use serde::Serialize;

/// Everything an experiment hands back to the harness.
pub trait ExperimentReport: Serialize {
    /// Paper artifact id, e.g. `"fig8"`.
    fn id(&self) -> &'static str;

    /// Prints the paper-style rows to stdout.
    fn print(&self);
}

/// Writes `report` as pretty JSON to `<dir>/<id>.json`.
pub fn write_json<R: ExperimentReport>(report: &R, dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.json", report.id()));
    let json = serde_json::to_string_pretty(report).expect("reports serialize");
    std::fs::write(path, json)
}

/// Formats nanoseconds as milliseconds with three decimals.
pub fn ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// A fixed-width ASCII bar for terminal charts, scaled so `max` fills
/// `width` characters.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.clamp(1, width))
}

/// Geometric mean of a slice of ratios.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.max(1e-12).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn bars_scale_and_clamp() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(10.0, 10.0, 10), "##########");
        assert_eq!(bar(0.01, 10.0, 10), "#");
        assert_eq!(bar(0.0, 10.0, 10), "");
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(ms(1_500_000), "1.500");
        assert_eq!(ms(0), "0.000");
    }
}
