//! Criterion micro-benchmarks of the reproduction's own hot paths: the
//! partitioning pipeline (Table 4's preprocessing story), kernel trace
//! simulation throughput, and the reference aggregation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mgg_core::{MggConfig, MggEngine};
use mgg_gnn::reference::{aggregate, AggregateMode};
use mgg_gnn::Matrix;
use mgg_graph::generators::rmat::{rmat, RmatConfig};
use mgg_graph::partition::multilevel::{self, MultilevelConfig};
use mgg_graph::NodeSplit;
use mgg_sim::ClusterSpec;

fn bench_partitioning(c: &mut Criterion) {
    let g = rmat(&RmatConfig::graph500(13, 120_000, 7));
    let mut group = c.benchmark_group("partitioning");
    group.sample_size(10);
    group.bench_function("mgg_edge_balanced_split", |b| {
        b.iter(|| NodeSplit::edge_balanced(std::hint::black_box(&g), 8))
    });
    group.bench_function("mgg_full_preprocess", |b| {
        b.iter(|| {
            let placement = mgg_core::placement::HybridPlacement::plan(&g, 8);
            mgg_core::workload::build_plans(&placement, 16)
        })
    });
    group.bench_function("dgcl_multilevel_partition", |b| {
        b.iter(|| multilevel::partition(std::hint::black_box(&g), &MultilevelConfig::new(8)))
    });
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let g = rmat(&RmatConfig::graph500(12, 60_000, 11));
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    for gpus in [2usize, 8] {
        group.bench_with_input(BenchmarkId::new("mgg_kernel", gpus), &gpus, |b, &gpus| {
            let mut engine = MggEngine::new(
                &g,
                ClusterSpec::dgx_a100(gpus),
                MggConfig::default_fixed(),
                AggregateMode::Sum,
            );
            b.iter(|| engine.simulate_aggregation_ns(128).unwrap())
        });
    }
    group.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let g = rmat(&RmatConfig::graph500(12, 60_000, 13));
    let x = Matrix::glorot(g.num_nodes(), 128, 1);
    let mut group = c.benchmark_group("reference_aggregation");
    group.sample_size(10);
    for mode in [AggregateMode::Sum, AggregateMode::GcnNorm] {
        group.bench_function(format!("{mode:?}"), |b| {
            b.iter(|| aggregate(std::hint::black_box(&g), &x, mode))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioning, bench_simulation, bench_aggregation);
criterion_main!(benches);
